package uaqetp

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/workload"
)

// TestFlightCancelDoesNotFailWaiters is the regression test for the
// coalesced-cache cancellation wart: a computation canceled by the
// caller that started it must not fail waiters whose own contexts are
// live — they retry under their own context and succeed.
func TestFlightCancelDoesNotFailWaiters(t *testing.T) {
	var g flightGroup[int]
	lru := cache.NewSharded[int](8, 1)

	ctxA, cancelA := context.WithCancel(context.Background())
	started := make(chan struct{})
	computerDone := make(chan error, 1)
	go func() {
		_, err := g.do(ctxA, "k", lru, func() (int, error) {
			close(started)
			<-ctxA.Done() // simulate a compute aborted by its caller's cancellation
			return 0, ctxA.Err()
		})
		computerDone <- err
	}()
	<-started

	waiterDone := make(chan struct{})
	var waiterVal int
	var waiterErr error
	go func() {
		defer close(waiterDone)
		waiterVal, waiterErr = g.do(context.Background(), "k", lru, func() (int, error) {
			return 42, nil
		})
	}()
	// Give the waiter time to join the in-progress flight, then cancel
	// the computing caller out from under it.
	time.Sleep(10 * time.Millisecond)
	cancelA()

	if err := <-computerDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("computing caller error = %v, want context.Canceled", err)
	}
	<-waiterDone
	if waiterErr != nil {
		t.Fatalf("waiter inherited the computer's cancellation: %v", waiterErr)
	}
	if waiterVal != 42 {
		t.Fatalf("waiter value = %d, want 42 from its own retry", waiterVal)
	}
	if v, ok := lru.Get("k"); !ok || v != 42 {
		t.Fatalf("retried value not cached: %v %v", v, ok)
	}
}

// TestFlightWaiterAbandonsOnOwnCancel: a waiter whose own context fires
// while waiting leaves with its own ctx.Err instead of blocking on a
// stuck computation.
func TestFlightWaiterAbandonsOnOwnCancel(t *testing.T) {
	var g flightGroup[int]
	lru := cache.NewSharded[int](8, 1)

	release := make(chan struct{})
	started := make(chan struct{})
	go func() {
		g.do(context.Background(), "k", lru, func() (int, error) {
			close(started)
			<-release
			return 1, nil
		})
	}()
	<-started

	ctxB, cancelB := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := g.do(ctxB, "k", lru, func() (int, error) { return 2, nil })
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancelB()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("abandoning waiter error = %v, want context.Canceled", err)
	}
	close(release)
}

// TestRunMemoSharedAcrossMachines pins the cross-machine run-result
// sharing: engine runs are machine-independent, so two Systems on one
// shared cache that differ only in machine profile execute each plan
// once — while still measuring different (per-profile) running times,
// identical to what private-cache Systems measure.
func TestRunMemoSharedAcrossMachines(t *testing.T) {
	shared := NewEstimateCache(128)
	cfgA := DefaultConfig()
	cfgA.Cache = shared
	cfgB := cfgA
	cfgB.Machine = "PC2"

	a, err := Open(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Open(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	qs, err := a.GenerateWorkload(workload.SelJoin, 4)
	if err != nil {
		t.Fatal(err)
	}

	timesA := make([]float64, len(qs))
	for i, q := range qs {
		if timesA[i], err = a.Execute(q); err != nil {
			t.Fatal(err)
		}
	}
	st := shared.Stats()
	if st.RunMisses == 0 || st.RunHits != 0 {
		t.Fatalf("after first system: run hits=%d misses=%d, want 0 hits", st.RunHits, st.RunMisses)
	}
	misses := st.RunMisses

	timesB := make([]float64, len(qs))
	for i, q := range qs {
		if timesB[i], err = b.Execute(q); err != nil {
			t.Fatal(err)
		}
	}
	st = shared.Stats()
	if st.RunMisses != misses {
		t.Errorf("PC2 re-executed %d plans despite the shared run memo", st.RunMisses-misses)
	}
	if st.RunHits == 0 {
		t.Error("no cross-machine run-result hits")
	}

	// The memo must not change measured times: a private-cache PC2
	// System measures the same values.
	cfgB.Cache = nil
	fresh, err := Open(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	var differ bool
	for i, q := range qs {
		got, err := fresh.Execute(q)
		if err != nil {
			t.Fatal(err)
		}
		if got != timesB[i] {
			t.Errorf("%s: shared-cache time %v != private-cache time %v", q.Name, timesB[i], got)
		}
		if timesA[i] != timesB[i] {
			differ = true
		}
	}
	if !differ {
		t.Error("PC1 and PC2 measured identical times for every query; profiles not applied")
	}
}
