package uaqetp

import (
	"testing"

	"repro/internal/hardware"
	"repro/internal/workload"
)

// openMachineTestSystem opens a small System over a fresh shared cache
// for the WithMachine tests.
func openMachineTestSystem(t *testing.T) (*System, *MemoryCache) {
	t.Helper()
	cache := NewEstimateCache(64)
	sys, err := Open(Config{
		DB: Uniform1G, Machine: "PC1", SamplingRatio: 0.05, Seed: 7, Cache: cache,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys, cache
}

// TestWithMachineSharesCachesNotUnits is the cache-namespace audit as a
// test: WithMachine siblings must share the machine-independent cache
// sections (plan estimates, subtree passes, run results) and must NOT
// share anything machine-dependent (calibrated units, measured times).
func TestWithMachineSharesCachesNotUnits(t *testing.T) {
	sys, cache := openMachineTestSystem(t)
	sib, err := sys.WithMachine(hardware.PC2())
	if err != nil {
		t.Fatal(err)
	}
	if sib == sys {
		t.Fatal("WithMachine(PC2) returned the receiver")
	}

	// Units are per machine: a PC2 sibling calibrates its own, and they
	// match what a from-scratch Open on PC2 would have found.
	u1, u2 := sys.UnitDists(), sib.UnitDists()
	if u1 == u2 {
		t.Fatal("WithMachine sibling shares calibration units with its parent")
	}
	fresh, err := Open(Config{DB: Uniform1G, Machine: "PC2", SamplingRatio: 0.05, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if fresh.UnitDists() != u2 {
		t.Error("WithMachine(PC2) units differ from Open(Machine: PC2) units")
	}

	qs, err := sys.GenerateWorkload(workload.SelJoin, 1)
	if err != nil {
		t.Fatal(err)
	}
	q := qs[0]

	// Estimates are machine-independent: the sibling's first prediction
	// of a plan the parent already predicted must hit the plan section,
	// not recompute the sampling pass.
	if _, err := sys.Predict(q); err != nil {
		t.Fatal(err)
	}
	before := cache.Stats()
	pred2, err := sib.Predict(q)
	if err != nil {
		t.Fatal(err)
	}
	after := cache.Stats()
	if after.Hits != before.Hits+1 || after.Misses != before.Misses {
		t.Errorf("sibling prediction did not reuse the parent's sampling pass: hits %d→%d, misses %d→%d",
			before.Hits, after.Hits, before.Misses, after.Misses)
	}
	if after.SubtreeMisses != before.SubtreeMisses {
		t.Errorf("sibling prediction recomputed subtree passes: subtree misses %d→%d",
			before.SubtreeMisses, after.SubtreeMisses)
	}

	// ... but the predictions themselves reflect each machine's units:
	// PC2 is strictly faster, so its predicted mean must be lower.
	pred1, err := sys.Predict(q)
	if err != nil {
		t.Fatal(err)
	}
	if pred2.Mean() >= pred1.Mean() {
		t.Errorf("PC2 predicted mean %g not below PC1's %g despite cheaper units",
			pred2.Mean(), pred1.Mean())
	}

	// Run results are machine-independent (the run-section namespace
	// omits the machine): the sibling's execution of the same query must
	// hit the run the parent computed, while its measured time reflects
	// the faster machine.
	t1, err := sys.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	beforeRun := cache.Stats()
	t2, err := sib.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	afterRun := cache.Stats()
	if afterRun.RunHits != beforeRun.RunHits+1 || afterRun.RunMisses != beforeRun.RunMisses {
		t.Errorf("sibling execution did not reuse the run result: run hits %d→%d, misses %d→%d",
			beforeRun.RunHits, afterRun.RunHits, beforeRun.RunMisses, afterRun.RunMisses)
	}
	if t1 == t2 {
		t.Error("PC1 and PC2 measured identical times for the same query")
	}
}

// TestWithMachineDriftedProfile pins the fleet-synthesis path: a
// drifted sibling calibrates honestly against its slower truth, so its
// units — and therefore its predictions — shift with the drift, while
// the same-profile fast path returns the receiver.
func TestWithMachineDriftedProfile(t *testing.T) {
	sys, _ := openMachineTestSystem(t)

	same, err := sys.WithMachine(hardware.PC1())
	if err != nil {
		t.Fatal(err)
	}
	if same != sys {
		t.Error("WithMachine with the current profile did not return the receiver")
	}

	drifted, err := hardware.PC1().WithDrift(0.5)
	if err != nil {
		t.Fatal(err)
	}
	sib, err := sys.WithMachine(drifted)
	if err != nil {
		t.Fatal(err)
	}
	if got := sib.Machine().Name; got != "PC1+d0.5" {
		t.Errorf("sibling machine name %q", got)
	}
	if got := sib.Config().Machine; got != "PC1+d0.5" {
		t.Errorf("sibling Config().Machine %q", got)
	}
	// Calibration sees the drift: every unit mean estimate should land
	// well above the undrifted one (50% drift dwarfs calibration noise).
	u0, ud := sys.UnitDists(), sib.UnitDists()
	for i := range u0 {
		if ud[i].Mu <= u0[i].Mu {
			t.Errorf("unit %d: drifted calibrated mean %g not above base %g", i, ud[i].Mu, u0[i].Mu)
		}
	}

	qs, err := sys.GenerateWorkload(workload.SelJoin, 1)
	if err != nil {
		t.Fatal(err)
	}
	p0, err := sys.Predict(qs[0])
	if err != nil {
		t.Fatal(err)
	}
	pd, err := sib.Predict(qs[0])
	if err != nil {
		t.Fatal(err)
	}
	if pd.Mean() <= p0.Mean() {
		t.Errorf("drifted machine predicted mean %g not above base %g", pd.Mean(), p0.Mean())
	}

	// Recalibrating the sibling stays on the sibling: the parent's units
	// are untouched (per-machine recalibration is what lets drifted
	// machines diverge honestly in the serving layer).
	if _, err := sib.Recalibrate(999); err != nil {
		t.Fatal(err)
	}
	if sys.UnitDists() != u0 {
		t.Error("recalibrating a sibling changed the parent's units")
	}
}
