// Benchmark harness: one testing.B target per table and figure of the
// paper's evaluation (Section 6 and Appendix C). Each target regenerates
// the corresponding artifact and prints it to stdout on its first
// iteration, so `go test -bench=. -benchmem` leaves a full reproduction
// transcript. Results are memoized inside the shared Lab, so the grid
// tables (4-9) reuse the runs the figures already triggered.
package uaqetp_test

import (
	"bytes"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"testing"

	uaqetp "repro"
	"repro/internal/exper"
)

var (
	benchLab     = exper.NewLab()
	benchPrinted sync.Map // report id -> struct{}: print each table once
)

// benchSizing balances fidelity against harness runtime; raise
// QueriesPerCell (e.g. via cmd/uaqp experiment -queries) for
// publication-grade grids.
func benchSizing() exper.Sizing {
	return exper.Sizing{QueriesPerCell: 32, Seed: 1}
}

func runReport(b *testing.B, id string) {
	b.Helper()
	rep, err := exper.ReportByID(id)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := rep.Gen(&buf, benchLab, benchSizing()); err != nil {
			b.Fatal(err)
		}
		if _, done := benchPrinted.LoadOrStore(id, struct{}{}); !done {
			fmt.Fprintf(os.Stdout, "\n===== %s =====\n%s\n", id, buf.String())
		}
	}
}

// BenchmarkTable1CostUnits regenerates Table 1: the five cost units as
// calibrated on both simulated machines.
func BenchmarkTable1CostUnits(b *testing.B) { runReport(b, "table1") }

// BenchmarkFigure2Correlation regenerates Figure 2: r_s and r_p versus
// sampling ratio for the three benchmark panels.
func BenchmarkFigure2Correlation(b *testing.B) { runReport(b, "figure2") }

// BenchmarkFigure3OutlierRobustness regenerates Figure 3: the outlier
// sensitivity contrast between r_s and r_p, with scatter data.
func BenchmarkFigure3OutlierRobustness(b *testing.B) { runReport(b, "figure3") }

// BenchmarkFigure4Dn regenerates Figure 4: D_n versus sampling ratio on
// the uniform 10GB databases for both machines.
func BenchmarkFigure4Dn(b *testing.B) { runReport(b, "figure4") }

// BenchmarkFigure5PrAlpha regenerates Figure 5: the proximity of the
// empirical Pr_n(alpha) to the model Pr(alpha).
func BenchmarkFigure5PrAlpha(b *testing.B) { runReport(b, "figure5") }

// BenchmarkFigure6MoreScatter regenerates Figure 6: the both-good and
// both-mediocre correlation case studies.
func BenchmarkFigure6MoreScatter(b *testing.B) { runReport(b, "figure6") }

// BenchmarkFigure8Ablations regenerates Figure 8: All vs NoVar[c] vs
// NoVar[X] vs NoCov on uniform databases at low sampling ratios.
func BenchmarkFigure8Ablations(b *testing.B) { runReport(b, "figure8") }

// BenchmarkFigure9Overhead regenerates Figure 9: the relative runtime
// overhead of sampling for TPCH queries on PC1.
func BenchmarkFigure9Overhead(b *testing.B) { runReport(b, "figure9") }

// BenchmarkFigure10AblationsSkew regenerates Figure 10 (Appendix C.3):
// the ablations on skewed databases.
func BenchmarkFigure10AblationsSkew(b *testing.B) { runReport(b, "figure10") }

// BenchmarkFigure11OverheadAll regenerates Figure 11 (Appendix C.4):
// sampling overhead for all benchmarks on both machines.
func BenchmarkFigure11OverheadAll(b *testing.B) { runReport(b, "figure11") }

// BenchmarkFigure12SelectivityScatter regenerates Figure 12 (Appendix
// C.5): estimated versus actual selectivities.
func BenchmarkFigure12SelectivityScatter(b *testing.B) { runReport(b, "figure12") }

// BenchmarkTable4CorrelationGrid regenerates Table 4: the full r_s (r_p)
// grid over benchmarks, machines, databases, and sampling ratios.
func BenchmarkTable4CorrelationGrid(b *testing.B) { runReport(b, "table4") }

// BenchmarkTable5DnGrid regenerates Table 5: the full D_n grid.
func BenchmarkTable5DnGrid(b *testing.B) { runReport(b, "table5") }

// BenchmarkTable6SelErrCorrelation regenerates Table 6: correlations
// between estimated and actual errors in selectivity estimates.
func BenchmarkTable6SelErrCorrelation(b *testing.B) { runReport(b, "table6") }

// BenchmarkTable7SelCorrelation regenerates Table 7: correlations
// between estimated and actual selectivities.
func BenchmarkTable7SelCorrelation(b *testing.B) { runReport(b, "table7") }

// BenchmarkTable8SelRelError regenerates Table 8: mean relative errors
// of the selectivity estimates.
func BenchmarkTable8SelRelError(b *testing.B) { runReport(b, "table8") }

// BenchmarkTable9LargeErrCorrelation regenerates Table 9: selectivity
// error correlations restricted to relative errors above 0.2.
func BenchmarkTable9LargeErrCorrelation(b *testing.B) { runReport(b, "table9") }

// BenchmarkPredictorLatency measures the prediction path itself
// (sampling pass + cost-function fitting + variance propagation) for a
// three-way join, supporting the paper's low-overhead claim: prediction
// cost is dominated by the sample pass, the same as the point-estimate
// predictor of [48].
func BenchmarkPredictorLatency(b *testing.B) {
	sys, err := uaqetp.Open(uaqetp.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	q := &uaqetp.Query{
		Name:   "bench-3way",
		Tables: []string{"customer", "orders", "lineitem"},
		Preds:  []uaqetp.Predicate{{Col: "o_orderdate", Op: uaqetp.Le, Lo: 1500}},
		Joins: []uaqetp.JoinCond{
			{LeftTable: "customer", LeftCol: "c_custkey", RightTable: "orders", RightCol: "o_custkey"},
			{LeftTable: "orders", LeftCol: "o_orderkey", RightTable: "lineitem", RightCol: "l_orderkey"},
		},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Predict(q); err != nil {
			b.Fatal(err)
		}
	}
}

// benchBatchSalt makes every benchmark iteration produce plans with
// fresh predicate constants, so the plan-signature memo cannot serve a
// cached sampling pass and the benchmark measures real prediction work.
var benchBatchSalt atomic.Int64

// benchBatchQueries builds a 64-query batch mixing scans, 2-way and
// 3-way joins, with salted predicate constants.
func benchBatchQueries(n int) []*uaqetp.Query {
	salt := benchBatchSalt.Add(1)
	qs := make([]*uaqetp.Query, n)
	for i := 0; i < n; i++ {
		price := int64(10000 + ((salt*int64(n)+int64(i))*911)%40000)
		switch i % 3 {
		case 0:
			qs[i] = &uaqetp.Query{
				Name:   fmt.Sprintf("b-scan-%d-%d", salt, i),
				Tables: []string{"lineitem"},
				Preds:  []uaqetp.Predicate{{Col: "l_extendedprice", Op: uaqetp.Le, Lo: price}},
			}
		case 1:
			qs[i] = &uaqetp.Query{
				Name:   fmt.Sprintf("b-join-%d-%d", salt, i),
				Tables: []string{"orders", "lineitem"},
				Preds:  []uaqetp.Predicate{{Col: "o_totalprice", Op: uaqetp.Le, Lo: price}},
				Joins: []uaqetp.JoinCond{{
					LeftTable: "orders", LeftCol: "o_orderkey",
					RightTable: "lineitem", RightCol: "l_orderkey",
				}},
			}
		default:
			qs[i] = &uaqetp.Query{
				Name:   fmt.Sprintf("b-3way-%d-%d", salt, i),
				Tables: []string{"customer", "orders", "lineitem"},
				Preds:  []uaqetp.Predicate{{Col: "o_totalprice", Op: uaqetp.Le, Lo: price}},
				Joins: []uaqetp.JoinCond{
					{LeftTable: "customer", LeftCol: "c_custkey", RightTable: "orders", RightCol: "o_custkey"},
					{LeftTable: "orders", LeftCol: "o_orderkey", RightTable: "lineitem", RightCol: "l_orderkey"},
				},
			}
		}
	}
	return qs
}

// BenchmarkPredictBatch contrasts a serial Predict loop against the
// pooled PredictBatch on a 64-query batch — the throughput trajectory
// behind the paper's batch consumers (admission control, scheduling,
// plan selection). Worker counts above the machine's core count cost
// only scheduling overhead, so the pooled targets approach serial
// throughput on one core and scale with cores elsewhere.
func BenchmarkPredictBatch(b *testing.B) {
	sys, err := uaqetp.Open(uaqetp.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	const batch = 64
	b.Run("serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, q := range benchBatchQueries(batch) {
				if _, err := sys.Predict(q); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	for _, workers := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sys.PredictBatch(benchBatchQueries(batch), uaqetp.BatchOptions{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
