// Command quickstart demonstrates the core workflow of the library:
// open a system (synthetic database + simulated hardware + calibration +
// offline samples), predict a query's running time distribution, and
// compare it against the measured time.
package main

import (
	"context"
	"fmt"
	"log"

	uaqetp "repro"
)

func main() {
	fmt.Println("uaqetp quickstart: uncertainty-aware query time prediction")
	fmt.Println()

	sys, err := uaqetp.Open(uaqetp.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Calibrated cost units (Table 1):")
	for _, line := range sys.CostUnits() {
		fmt.Println("  " + line)
	}
	fmt.Println()

	q := &uaqetp.Query{
		Name:   "orders-lineitem",
		Tables: []string{"orders", "lineitem"},
		Preds: []uaqetp.Predicate{
			{Col: "o_orderdate", Op: uaqetp.Le, Lo: 1200},
		},
		Joins: []uaqetp.JoinCond{{
			LeftTable: "orders", LeftCol: "o_orderkey",
			RightTable: "lineitem", RightCol: "l_orderkey",
		}},
	}

	planStr, err := sys.Plan(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Physical plan:")
	fmt.Print(planStr)
	fmt.Println()

	pred, actual, err := sys.PredictAndRunContext(context.Background(), q)
	if err != nil {
		log.Fatal(err)
	}
	lo70, hi70 := pred.Interval(0.70)
	lo95, hi95 := pred.Interval(0.95)
	fmt.Printf("Predicted running time: %.4f s (sigma %.4f s)\n", pred.Mean(), pred.Sigma())
	fmt.Printf("  70%% interval: [%.4f, %.4f] s\n", lo70, hi70)
	fmt.Printf("  95%% interval: [%.4f, %.4f] s\n", lo95, hi95)
	fmt.Printf("Actual running time:    %.4f s\n", actual)
	fmt.Printf("Within 95%% interval:    %v\n", actual >= lo95 && actual <= hi95)
}
