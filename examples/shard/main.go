// Command shard demonstrates the sharded serving topology over real
// HTTP: three `uaqp serve`-style shard processes (separate listeners on
// loopback ports, each its own serve.Server) register in a static
// directory file, a front process builds the consistent-hash directory
// from that file and routes tenant traffic to the owning shard — and
// the front door sheds hopeless work before it ever reaches a shard,
// predictively (no token spent) when the optimistic zero-wait bound
// P(T_q <= d) already rules the deadline out.
//
// The same topology runs as genuinely separate OS processes with:
//
//	uaqp serve -addr :8101 -shard shard-0 -dir dir.json
//	uaqp serve -addr :8102 -shard shard-1 -dir dir.json
//	uaqp front -addr :8090 -dir dir.json -rate 100 -predictive
//
// (see run.sh next to this file).
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"time"

	uaqetp "repro"
	"repro/internal/serve"
	"repro/internal/shard"
	"repro/internal/workload"
)

func main() {
	fmt.Println("Sharded serving demo (3 shards + front door over HTTP)")
	fmt.Println()

	dir, err := os.MkdirTemp("", "uaqp-shard-demo")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	dirFile := filepath.Join(dir, "dir.json")

	// Start three shard servers on loopback ports and register each in
	// the directory file — exactly what `uaqp serve -shard NAME -dir
	// FILE` does per process.
	file := &shard.File{Seed: 42}
	servers := make(map[string]*serve.Server, 3)
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("shard-%d", i)
		srv := serve.New(serve.Config{})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		go http.Serve(ln, srv.Handler())
		file.Register(name, "http://"+ln.Addr().String())
		servers[name] = srv
		fmt.Printf("  %s listening on %s\n", name, ln.Addr())
	}
	if err := file.Save(dirFile); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  directory file: %s\n\n", dirFile)

	// The front builds the consistent-hash directory from the file: a
	// token bucket plus predictive shedding guard the whole fleet.
	front, err := shard.NewFront(file, shard.FrontConfig{
		FrontDoor:  shard.FrontDoorConfig{Rate: 100, Burst: 10, Predictive: true},
		Confidence: 0.9,
	})
	if err != nil {
		log.Fatal(err)
	}
	fln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(fln, front.Handler())
	frontURL := "http://" + fln.Addr().String()
	fmt.Printf("front listening on %s\n\n", fln.Addr())

	// Tenants live only on the shard the directory places them on: ask
	// the front where each belongs, then create it there — the serving
	// state never spans shards.
	slo := serve.SLO{Confidence: 0.9, DefaultDeadline: 1.0}
	tenants := []string{"alpha", "beta", "gamma", "delta"}
	var queries []*uaqetp.Query
	for _, name := range tenants {
		placed := front.Directory().Place(name)
		t, err := servers[placed].AddTenant(name, uaqetp.DefaultConfig(), slo)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("tenant %-6s -> %s\n", name, placed)
		if queries == nil {
			if queries, err = t.System().GenerateWorkload(workload.SelJoin, 4); err != nil {
				log.Fatal(err)
			}
		}
	}
	fmt.Println()

	// Submit through the front: feasible deadlines forward to the
	// owning shard; a hopeless deadline is shed at the front door
	// without consuming a token.
	submit := func(tenant string, q *uaqetp.Query, deadline float64) {
		body, _ := json.Marshal(map[string]any{
			"tenant": tenant, "query": q, "deadline": deadline,
		})
		resp, err := http.Post(frontURL+"/submit", "application/json", bytes.NewReader(body))
		if err != nil {
			log.Fatal(err)
		}
		defer resp.Body.Close()
		out, _ := io.ReadAll(resp.Body)
		var v struct {
			Verdict  string  `json:"verdict"`
			Admitted bool    `json:"admitted"`
			Shard    string  `json:"shard"`
			PMeet    float64 `json:"p_meet"`
		}
		json.Unmarshal(out, &v)
		switch {
		case resp.StatusCode == http.StatusTooManyRequests && v.Verdict != "":
			fmt.Printf("  %-6s %-14s d=%-8g -> %s (front door, shard %s, P=%.4f)\n",
				tenant, q.Name, deadline, v.Verdict, v.Shard, v.PMeet)
		case resp.StatusCode == http.StatusOK:
			fmt.Printf("  %-6s %-14s d=%-8g -> admitted by its shard\n", tenant, q.Name, deadline)
		default:
			fmt.Printf("  %-6s %-14s d=%-8g -> status %d: %s\n", tenant, q.Name, deadline, resp.StatusCode, out)
		}
	}

	fmt.Println("submissions through the front:")
	for i, tenant := range tenants {
		submit(tenant, queries[i%len(queries)], 1.0)
	}
	// The flash-flood shape: a deadline no machine can meet is refused
	// predictively — before the token bucket is touched.
	submit("alpha", queries[0], 0.0001)
	fmt.Println()

	// Drain the admitted work shard-side and show the front's counters.
	for name, srv := range servers {
		if outs, err := srv.Drain(); err == nil && len(outs) > 0 {
			fmt.Printf("%s drained %d request(s)\n", name, len(outs))
		}
	}
	time.Sleep(10 * time.Millisecond)
	resp, err := http.Get(frontURL + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	metrics, _ := io.ReadAll(resp.Body)
	fmt.Println("\nfront /metrics:")
	fmt.Println(string(metrics))
}
