#!/bin/sh
# Multi-process form of the sharded serving demo: three `uaqp serve`
# processes register themselves in a static directory file, then a
# `uaqp front` process routes by consistent hash and sheds at the
# front door. Run from the repository root.
set -eu

DIR="$(mktemp -d)"
PIDS=""
cleanup() {
	[ -n "$PIDS" ] && kill $PIDS 2>/dev/null
	rm -rf "$DIR"
}
trap cleanup EXIT INT TERM

go build -o "$DIR/uaqp" ./cmd/uaqp

for i in 0 1 2; do
	"$DIR/uaqp" serve -addr "127.0.0.1:810$((i + 1))" -shard "shard-$i" \
		-dir "$DIR/dir.json" >"$DIR/shard-$i.log" 2>&1 &
	PIDS="$PIDS $!"
done
sleep 0.5

"$DIR/uaqp" front -addr 127.0.0.1:8090 -dir "$DIR/dir.json" \
	-rate 100 -burst 10 -predictive >"$DIR/front.log" 2>&1 &
PIDS="$PIDS $!"
sleep 0.5

echo "== directory file =="
cat "$DIR/dir.json"
echo

echo "== placement for tenant alpha =="
curl -s "http://127.0.0.1:8090/place?tenant=alpha"
echo

echo "== front metrics =="
curl -s http://127.0.0.1:8090/metrics | head -n 12
