// Command progress demonstrates the uncertainty-aware query progress
// indicator (Section 6.5.2): the predictor supplies a per-operator
// breakdown of the running-time distribution, and internal/progress
// turns it into a live remaining-time distribution that tightens as
// operators complete — confidence bands instead of a bare percentage,
// exactly the building block the paper proposes.
package main

import (
	"fmt"
	"log"
	"strings"

	uaqetp "repro"
	"repro/internal/progress"
)

func main() {
	fmt.Println("Uncertainty-aware query progress indicator demo")
	fmt.Println()

	sys, err := uaqetp.Open(uaqetp.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	q := &uaqetp.Query{
		Name:   "reporting-join",
		Tables: []string{"customer", "orders", "lineitem"},
		Preds: []uaqetp.Predicate{
			{Col: "o_orderdate", Op: uaqetp.Le, Lo: 2000},
		},
		Joins: []uaqetp.JoinCond{
			{LeftTable: "customer", LeftCol: "c_custkey", RightTable: "orders", RightCol: "o_custkey"},
			{LeftTable: "orders", LeftCol: "o_orderkey", RightTable: "lineitem", RightCol: "l_orderkey"},
		},
		Agg: &uaqetp.AggSpec{GroupCol: "c_nationkey"},
	}

	pred, actual, err := sys.PredictAndRun(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Predicted total: %.4f s (sigma %.4f); actual: %.4f s\n\n",
		pred.Mean(), pred.Sigma(), actual)

	ind := progress.New(pred)
	fmt.Printf("%-26s %-10s %-24s %s\n", "event", "% done", "90% ETA band (s)", "bar")
	report := func(event string) {
		lo, hi := ind.ETA(0.90)
		pct := 100 * ind.Fraction()
		fmt.Printf("%-26s %-10.1f [%8.4f, %8.4f]     %s\n", event, pct, lo, hi, bar(pct))
	}
	report("start")

	// Complete the operators bottom-up (leaves first), observing times
	// close to — but not exactly — the per-operator predictions, the way
	// a real executor would report them.
	ops := append([]uaqetp.OpPrediction{}, pred.PerOperator...)
	for i := len(ops) - 1; i >= 0; i-- {
		op := ops[i]
		observed := op.Mean * (0.9 + 0.02*float64(op.NodeID%10))
		if err := ind.CompleteOperator(op.NodeID, observed); err != nil {
			log.Fatal(err)
		}
		report(fmt.Sprintf("%v done", op.Kind))
	}
	fmt.Println()
	fmt.Println("The band starts wide (the ETA is soft) and collapses to the")
	fmt.Println("elapsed time as the last operators complete.")
}

func bar(pct float64) string {
	n := int(pct / 5)
	if n > 20 {
		n = 20
	}
	return "[" + strings.Repeat("#", n) + strings.Repeat(".", 20-n) + "]"
}
