// Command serve demonstrates the online prediction service in-process:
// two tenants over the same generated catalog share one sharded
// sampling-pass cache, the admission controller accepts or rejects
// against per-tenant SLOs using predicted distributions — queue backlog
// included — admitted work drains in risk-slack order on a virtual
// clock, the runtime feedback loop reports calibration drift per
// dominant cost unit, and a live recalibration swaps fresh units into
// one tenant's predictor without touching its neighbor.
package main

import (
	"context"
	"fmt"
	"log"

	uaqetp "repro"
	"repro/internal/serve"
	"repro/internal/workload"
)

func main() {
	ctx := context.Background()
	fmt.Println("Online prediction service demo (two tenants, shared sharded cache)")
	fmt.Println()

	srv := serve.New(serve.Config{})
	sysCfg := uaqetp.DefaultConfig()

	// Same catalog, different risk appetites: alpha is strict (95%
	// confidence), beta admits anything with a coin-flip chance.
	alpha, err := srv.AddTenant("alpha", sysCfg, serve.SLO{Confidence: 0.95, DefaultDeadline: 0.5})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := srv.AddTenant("beta", sysCfg, serve.SLO{Confidence: 0.5, DefaultDeadline: 0.5}); err != nil {
		log.Fatal(err)
	}

	qs, err := alpha.System().GenerateWorkload(workload.SelJoin, 6)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-6s %-14s %-10s %-10s %-10s %-10s %-8s\n",
		"tenant", "query", "mean(s)", "p_meet", "q_wait(s)", "deadline", "admit?")
	for i, q := range qs {
		for _, tenant := range []string{"alpha", "beta"} {
			d, err := srv.Submit(ctx, serve.Request{Tenant: tenant, Query: q, Deadline: 0.2 + 0.1*float64(i%3)})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-6s %-14s %-10.4f %-10.4f %-10.4f %-10.4f %-8v\n",
				tenant, q.Name, d.PredMean, d.PMeet, d.QueueWaitMean, d.Deadline, d.Admitted)
		}
	}

	outs, err := srv.Drain()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println("Drained in risk-slack order (virtual clock):")
	fmt.Printf("%-6s %-14s %-10s %-10s %-8s\n", "tenant", "query", "finish(s)", "deadline", "met?")
	for _, o := range outs {
		fmt.Printf("%-6s %-14s %-10.4f %-10.4f %-8v\n", o.Tenant, o.Query, o.Finish, o.Deadline, o.Met)
	}

	st := srv.Stats()
	fmt.Println()
	fmt.Printf("Shared cache: %d hits / %d misses / %d evictions across %d shards — \n",
		st.Cache.Hits, st.Cache.Misses, st.Cache.Evictions, st.Cache.Shards)
	fmt.Println("the second tenant's sampling passes were served from the first tenant's work.")
	for _, ts := range st.Tenants {
		fmt.Printf("\ntenant %s: admitted=%d rejected=%d executed=%d met=%d missed=%d\n",
			ts.Name, ts.Admitted, ts.Rejected, ts.Executed, ts.DeadlinesMet, ts.DeadlinesMissed)
		for _, ud := range ts.Drift.PerUnit {
			fmt.Printf("  drift[%s]: n=%d mean_z=%+.3f", ud.Unit, ud.N, ud.MeanZ)
			for _, c := range ud.Coverage {
				fmt.Printf("  cov%2.0f%%=%.2f", 100*c.Nominal, c.Observed)
			}
			fmt.Printf("  recalibrate=%v\n", ud.RecalibrationAdvised)
		}
	}

	// Close the loop: force a recalibration of alpha and show that beta
	// — sharing the same underlying System — keeps its units. A fresh
	// prediction on alpha picks up the swapped units immediately; no
	// queries were dropped to make the swap.
	before, err := srv.Predict(ctx, "alpha", qs[0])
	if err != nil {
		log.Fatal(err)
	}
	rec, err := srv.Recalibrate(ctx, serve.RecalibrateRequest{Tenant: "alpha", Seed: 42, Force: true})
	if err != nil {
		log.Fatal(err)
	}
	after, err := srv.Predict(ctx, "alpha", qs[0])
	if err != nil {
		log.Fatal(err)
	}
	betaPred, err := srv.Predict(ctx, "beta", qs[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Printf("Recalibrated alpha (advised=%v, forced): %s -> %s\n",
		rec.Advised, rec.UnitsBefore[0], rec.UnitsAfter[0])
	fmt.Printf("alpha %s: mean %0.4fs before, %0.4fs after swap; beta untouched at %0.4fs\n",
		qs[0].Name, before.Mean(), after.Mean(), betaPred.Mean())
}
