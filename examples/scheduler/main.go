// Command scheduler demonstrates distribution-based query scheduling
// (Section 6.5.3 of the paper, following Chi et al. [14]): when queries
// carry SLA deadlines, scheduling on a high quantile of the predicted
// running-time distribution beats scheduling on the point estimate,
// because it accounts for prediction risk.
//
// The demo builds a batch of queries with deadlines, schedules them on a
// single simulated server under two policies — shortest-mean-first
// (point estimates only) and risk-aware earliest-feasible-deadline using
// the 90th percentile — then reports deadline misses under each.
package main

import (
	"fmt"
	"log"

	uaqetp "repro"
	"repro/internal/sched"
)

type job struct {
	q        *uaqetp.Query
	pred     *uaqetp.Prediction
	actual   float64
	deadline float64 // relative deadline in seconds
}

// toSchedJobs converts to the scheduling substrate's job type.
func toSchedJobs(jobs []job) []sched.Job {
	out := make([]sched.Job, len(jobs))
	for i, j := range jobs {
		out[i] = sched.Job{
			Name:     j.q.Name,
			Dist:     j.pred.Dist,
			Deadline: j.deadline,
			Actual:   j.actual,
		}
	}
	return out
}

func main() {
	fmt.Println("Distribution-based query scheduling demo")
	fmt.Println()

	sys, err := uaqetp.Open(uaqetp.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	jobs := buildJobs(sys)
	fmt.Printf("%-22s %-10s %-10s %-12s %-10s\n",
		"query", "mean(s)", "p90(s)", "actual(s)", "deadline(s)")
	for _, j := range jobs {
		fmt.Printf("%-22s %-10.4f %-10.4f %-12.4f %-10.4f\n",
			j.q.Name, j.pred.Mean(), j.pred.Dist.Quantile(0.9), j.actual, j.deadline)
	}
	fmt.Println()

	sj := toSchedJobs(jobs)
	results := sched.Compare(sj,
		sched.FCFS{}, sched.SJFMean{}, sched.SJFQuantile{Q: 0.9},
		sched.EDF{}, sched.RiskSlack{Q: 0.9})
	fmt.Printf("%-16s %-8s %-12s %-10s\n", "policy", "misses", "tardiness", "mean flow")
	var meanMisses, distMisses = -1, -1
	for _, m := range results {
		fmt.Printf("%-16s %-8d %-12.4f %-10.4f\n",
			m.Policy, m.DeadlineMiss, m.Tardiness, m.MeanFlowTime)
		switch m.Policy {
		case "sjf-mean":
			meanMisses = m.DeadlineMiss
		case "risk-slack-q0.90":
			distMisses = m.DeadlineMiss
		}
	}
	fmt.Println()
	if distMisses <= meanMisses {
		fmt.Println("-> distributional information reduced (or matched) deadline misses")
	}
}

// buildJobs predicts a small mixed batch and assigns deadlines tight
// enough that scheduling order matters: each deadline is ~1.6x the p50
// of the query plus queueing headroom.
func buildJobs(sys *uaqetp.System) []job {
	queries := []*uaqetp.Query{
		{
			Name:   "short-scan",
			Tables: []string{"orders"},
			Preds:  []uaqetp.Predicate{{Col: "o_totalprice", Op: uaqetp.Le, Lo: 5000}},
		},
		{
			Name:   "medium-join",
			Tables: []string{"orders", "lineitem"},
			Preds:  []uaqetp.Predicate{{Col: "o_orderdate", Op: uaqetp.Le, Lo: 1800}},
			Joins: []uaqetp.JoinCond{{
				LeftTable: "orders", LeftCol: "o_orderkey",
				RightTable: "lineitem", RightCol: "l_orderkey",
			}},
		},
		{
			Name:   "wide-lineitem-scan",
			Tables: []string{"lineitem"},
			Preds:  []uaqetp.Predicate{{Col: "l_quantity", Op: uaqetp.Le, Lo: 45}},
		},
		{
			Name:   "part-join",
			Tables: []string{"lineitem", "part"},
			Preds:  []uaqetp.Predicate{{Col: "p_retailprice", Op: uaqetp.Le, Lo: 1000}},
			Joins: []uaqetp.JoinCond{{
				LeftTable: "lineitem", LeftCol: "l_partkey",
				RightTable: "part", RightCol: "p_partkey",
			}},
		},
		{
			Name:   "customer-orders",
			Tables: []string{"customer", "orders"},
			Preds:  []uaqetp.Predicate{{Col: "c_acctbal", Op: uaqetp.Le, Lo: 4000}},
			Joins: []uaqetp.JoinCond{{
				LeftTable: "customer", LeftCol: "c_custkey",
				RightTable: "orders", RightCol: "o_custkey",
			}},
		},
	}
	var jobs []job
	var cum float64
	for _, q := range queries {
		pred, actual, err := sys.PredictAndRun(q)
		if err != nil {
			log.Fatal(err)
		}
		cum += pred.Mean()
		jobs = append(jobs, job{
			q:        q,
			pred:     pred,
			actual:   actual,
			deadline: 1.6*pred.Mean() + 0.6*cum,
		})
	}
	return jobs
}
