// Command scheduler demonstrates distribution-based query scheduling
// (Section 6.5.3 of the paper, following Chi et al. [14]): when queries
// carry SLA deadlines, scheduling on a high quantile of the predicted
// running-time distribution beats scheduling on the point estimate,
// because it accounts for prediction risk.
//
// The demo builds a batch of queries with deadlines, schedules them on a
// single simulated server under two policies — shortest-mean-first
// (point estimates only) and risk-aware earliest-feasible-deadline using
// the 90th percentile — then reports deadline misses under each.
package main

import (
	"fmt"
	"log"

	uaqetp "repro"
	"repro/internal/sched"
	"repro/internal/stats"
)

func main() {
	fmt.Println("Distribution-based query scheduling demo")
	fmt.Println()

	sys, err := uaqetp.Open(uaqetp.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	queries := buildQueries()

	// Predict and execute the whole batch through the concurrent
	// pipeline: one bounded worker pool per phase instead of a serial
	// per-query loop.
	opts := uaqetp.BatchOptions{Workers: 4}
	preds, err := sys.PredictBatch(queries, opts)
	if err != nil {
		log.Fatal(err)
	}
	actuals, err := sys.ExecuteBatch(queries, opts)
	if err != nil {
		log.Fatal(err)
	}

	// Deadlines tight enough that scheduling order matters: ~1.6x the
	// query's own p50 plus queueing headroom.
	names := make([]string, len(queries))
	dists := make([]stats.Normal, len(queries))
	deadlines := make([]float64, len(queries))
	var cum float64
	for i, p := range preds {
		names[i] = queries[i].Name
		dists[i] = p.Dist
		cum += p.Mean()
		deadlines[i] = 1.6*p.Mean() + 0.6*cum
	}
	sj, err := sched.MakeJobs(names, dists, deadlines, actuals)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-22s %-10s %-10s %-12s %-10s\n",
		"query", "mean(s)", "p90(s)", "actual(s)", "deadline(s)")
	for i, j := range sj {
		fmt.Printf("%-22s %-10.4f %-10.4f %-12.4f %-10.4f\n",
			j.Name, preds[i].Mean(), j.Dist.Quantile(0.9), j.Actual, j.Deadline)
	}
	fmt.Println()

	results := sched.CompareParallel(sj,
		sched.FCFS{}, sched.SJFMean{}, sched.SJFQuantile{Q: 0.9},
		sched.EDF{}, sched.RiskSlack{Q: 0.9})
	fmt.Printf("%-16s %-8s %-12s %-10s\n", "policy", "misses", "tardiness", "mean flow")
	var meanMisses, distMisses = -1, -1
	for _, m := range results {
		fmt.Printf("%-16s %-8d %-12.4f %-10.4f\n",
			m.Policy, m.DeadlineMiss, m.Tardiness, m.MeanFlowTime)
		switch m.Policy {
		case "sjf-mean":
			meanMisses = m.DeadlineMiss
		case "risk-slack-q0.90":
			distMisses = m.DeadlineMiss
		}
	}
	fmt.Println()
	if distMisses <= meanMisses {
		fmt.Println("-> distributional information reduced (or matched) deadline misses")
	}
}

// buildQueries is a small mixed batch of scans and joins.
func buildQueries() []*uaqetp.Query {
	return []*uaqetp.Query{
		{
			Name:   "short-scan",
			Tables: []string{"orders"},
			Preds:  []uaqetp.Predicate{{Col: "o_totalprice", Op: uaqetp.Le, Lo: 5000}},
		},
		{
			Name:   "medium-join",
			Tables: []string{"orders", "lineitem"},
			Preds:  []uaqetp.Predicate{{Col: "o_orderdate", Op: uaqetp.Le, Lo: 1800}},
			Joins: []uaqetp.JoinCond{{
				LeftTable: "orders", LeftCol: "o_orderkey",
				RightTable: "lineitem", RightCol: "l_orderkey",
			}},
		},
		{
			Name:   "wide-lineitem-scan",
			Tables: []string{"lineitem"},
			Preds:  []uaqetp.Predicate{{Col: "l_quantity", Op: uaqetp.Le, Lo: 45}},
		},
		{
			Name:   "part-join",
			Tables: []string{"lineitem", "part"},
			Preds:  []uaqetp.Predicate{{Col: "p_retailprice", Op: uaqetp.Le, Lo: 1000}},
			Joins: []uaqetp.JoinCond{{
				LeftTable: "lineitem", LeftCol: "l_partkey",
				RightTable: "part", RightCol: "p_partkey",
			}},
		},
		{
			Name:   "customer-orders",
			Tables: []string{"customer", "orders"},
			Preds:  []uaqetp.Predicate{{Col: "c_acctbal", Op: uaqetp.Le, Lo: 4000}},
			Joins: []uaqetp.JoinCond{{
				LeftTable: "customer", LeftCol: "c_custkey",
				RightTable: "orders", RightCol: "o_custkey",
			}},
		},
	}
}
