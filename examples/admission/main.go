// Command admission demonstrates uncertainty-aware admission control
// for database-as-a-service (Section 6.5.3, following ActiveSLA [49]):
// instead of admitting every query whose point estimate fits the SLA,
// admit a query only when the predicted probability of meeting its
// deadline exceeds a confidence threshold. Queries with uncertain
// predictions near the deadline are rejected even when their point
// estimate looks safe.
package main

import (
	"context"
	"fmt"
	"log"

	uaqetp "repro"
)

func main() {
	fmt.Println("Uncertainty-aware admission control demo (SLA deadlines)")
	fmt.Println()

	sys, err := uaqetp.Open(uaqetp.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	type candidate struct {
		q        *uaqetp.Query
		deadline float64
	}
	candidates := []candidate{
		{
			q: &uaqetp.Query{
				Name:   "cheap-scan",
				Tables: []string{"customer"},
				Preds:  []uaqetp.Predicate{{Col: "c_acctbal", Op: uaqetp.Le, Lo: 2000}},
			},
			deadline: 0.05,
		},
		{
			q: &uaqetp.Query{
				Name:   "fk-join",
				Tables: []string{"orders", "lineitem"},
				Joins: []uaqetp.JoinCond{{
					LeftTable: "orders", LeftCol: "o_orderkey",
					RightTable: "lineitem", RightCol: "l_orderkey",
				}},
			},
			deadline: 0.4,
		},
		{
			q: &uaqetp.Query{
				Name:   "big-3way",
				Tables: []string{"customer", "orders", "lineitem"},
				Joins: []uaqetp.JoinCond{
					{LeftTable: "customer", LeftCol: "c_custkey", RightTable: "orders", RightCol: "o_custkey"},
					{LeftTable: "orders", LeftCol: "o_orderkey", RightTable: "lineitem", RightCol: "l_orderkey"},
				},
			},
			deadline: 0.15, // tight: point estimate may fit, risk does not
		},
	}

	const confidence = 0.9
	fmt.Printf("Admission rule: admit iff P(T <= deadline) >= %.0f%%\n\n", confidence*100)
	fmt.Printf("%-12s %-10s %-10s %-12s %-12s %-8s %-8s\n",
		"query", "mean(s)", "sigma(s)", "deadline(s)", "P(T<=d)", "point?", "admit?")

	// Admission control evaluates the whole arriving batch at once:
	// predict all candidates through the concurrent pipeline, then apply
	// the probabilistic rule per candidate.
	queries := make([]*uaqetp.Query, len(candidates))
	for i, c := range candidates {
		queries[i] = c.q
	}
	preds, err := sys.PredictBatchContext(context.Background(), queries, uaqetp.WithWorkers(len(queries)))
	if err != nil {
		log.Fatal(err)
	}

	for i, c := range candidates {
		pred := preds[i]
		pMeet := pred.Dist.CDF(c.deadline)
		pointOK := pred.Mean() <= c.deadline
		admit := pMeet >= confidence
		fmt.Printf("%-12s %-10.4f %-10.4f %-12.4f %-12.4f %-8v %-8v\n",
			c.q.Name, pred.Mean(), pred.Sigma(), c.deadline, pMeet, pointOK, admit)

		if pointOK && !admit {
			fmt.Printf("  -> point estimate fits the SLA but the risk of a miss is %.1f%%: rejected\n",
				100*(1-pMeet))
		}
	}
	fmt.Println()
	fmt.Println("The distributional predictor separates \"probably fine\" from")
	fmt.Println("\"fits on average but risky\" — the distinction point estimates cannot make.")
}
