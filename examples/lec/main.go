// Command lec demonstrates least-expected-cost plan selection (Section
// 6.5.1, following Chu, Halpern and Seshadri [15]): instead of betting
// on the plan whose point estimate is smallest, compare candidate join
// orders by their full predicted running-time distributions. A plan with
// a slightly larger mean but much smaller variance can be the safer —
// and under a risk quantile, the better — choice.
package main

import (
	"context"
	"fmt"
	"log"

	uaqetp "repro"
)

func main() {
	fmt.Println("Least-expected-cost / risk-aware plan selection demo")
	fmt.Println()

	sys, err := uaqetp.Open(uaqetp.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	q := &uaqetp.Query{
		Name:   "lec-3way",
		Tables: []string{"customer", "orders", "lineitem"},
		Preds: []uaqetp.Predicate{
			{Col: "c_acctbal", Op: uaqetp.Le, Lo: 3000},
			{Col: "o_orderdate", Op: uaqetp.Le, Lo: 1500},
		},
		Joins: []uaqetp.JoinCond{
			{LeftTable: "customer", LeftCol: "c_custkey", RightTable: "orders", RightCol: "o_custkey"},
			{LeftTable: "orders", LeftCol: "o_orderkey", RightTable: "lineitem", RightCol: "l_orderkey"},
		},
	}

	ctx := context.Background()
	choices, err := sys.AlternativesContext(ctx, q, uaqetp.WithMaxAlts(4))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Considered %d alternative join orders:\n\n", len(choices))
	for i, c := range choices {
		fmt.Printf("Plan %d: mean=%.4fs sigma=%.4fs p90=%.4fs\n%s\n",
			i, c.Pred.Mean(), c.Pred.Sigma(), c.Pred.Dist.Quantile(0.9), c.Plan)
	}

	byMean, _, err := sys.ChoosePlanContext(ctx, q, uaqetp.WithQuantile(0.5), uaqetp.WithMaxAlts(4))
	if err != nil {
		log.Fatal(err)
	}
	byRisk, _, err := sys.ChoosePlanContext(ctx, q, uaqetp.WithQuantile(0.9), uaqetp.WithMaxAlts(4))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Choice by median cost:  mean=%.4fs sigma=%.4fs\n", byMean.Pred.Mean(), byMean.Pred.Sigma())
	fmt.Printf("Choice by p90 (risk):   mean=%.4fs sigma=%.4fs\n", byRisk.Pred.Mean(), byRisk.Pred.Sigma())
	if byMean.Plan != byRisk.Plan {
		fmt.Println("-> the risk-aware criterion picked a different plan than the point estimate")
	} else {
		fmt.Println("-> both criteria agree here; on riskier queries they diverge")
	}

	// The chosen plan's signature replays through the executor: run
	// exactly the risk-chosen join order, not the planner's default.
	actual, err := sys.ExecuteContext(ctx, q, uaqetp.WithPlanHint(byRisk.Plan), uaqetp.WithMaxAlts(4))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Executed the risk-chosen plan via WithPlanHint: %.4fs (predicted %.4fs)\n",
		actual, byRisk.Pred.Mean())
}
