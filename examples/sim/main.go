// Command sim compares placement policies on the same simulated
// cluster scenario: a fleet of machines serving bursty multi-tenant
// traffic, where every arrival is routed by round-robin (blind),
// least-queue (load-aware, variance-blind), or least-risk — route to
// the machine maximizing the predicted probability of meeting the
// deadline, P(T_wait + T_q <= d), which folds in both the backlog's
// predicted variance and the query's own. On heterogeneous
// (machine-list) fleets the comparison adds least-risk-shared, the
// ablation that runs the risk arithmetic with fleet-shared units: the
// gap between it and least-risk is what per-machine calibration buys.
//
//	go run ./examples/sim                                              # homogeneous showcase
//	go run ./examples/sim -config examples/sim/scenario-hetero.json    # mixed-profile fleet
//
// Identical seed, identical arrival times, identical queries — the only
// difference between the runs is the placement decision, so the
// SLO-attainment gap is attributable to how each policy uses (or
// ignores) the predicted running-time distributions.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	config := flag.String("config", "examples/sim/scenario.json", "scenario file")
	flag.Parse()

	sc, err := sim.Load(*config)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Scenario %q: %d machines, %d tenants, horizon %gs, seed %d\n",
		sc.Name, sc.Machines.Size(), len(sc.Tenants), sc.Horizon, sc.Seed)
	fmt.Println()
	fmt.Printf("%-18s %-10s %-8s %-6s %-6s %-8s %-8s %-10s\n",
		"router", "attainment", "fitness", "adm", "rej", "missed", "p90 lat", "makespan")

	routers := []string{sim.RouterRoundRobin, sim.RouterLeastQueue, sim.RouterLeastRisk}
	if sc.Machines.Labeled() {
		// Heterogeneous fleet: show what per-machine units buy over the
		// same risk math with fleet-shared units.
		routers = []string{sim.RouterRoundRobin, sim.RouterLeastQueue, sim.RouterLeastRiskShared, sim.RouterLeastRisk}
	}
	counterfactuals := make(map[string]trace.CounterfactualSummary)
	for _, router := range routers {
		sc.Router = router
		rep, events, err := sim.RunTraced(sc, trace.Decisions)
		if err != nil {
			log.Fatal(err)
		}
		counterfactuals[router] = trace.CounterfactualK(events, 2)
		var adm, rej, missed int
		var p90 float64
		for _, t := range rep.Tenants {
			adm += t.Admitted
			rej += t.Rejected
			missed += t.DeadlinesMissed
			if t.Latency.P90 > p90 {
				p90 = t.Latency.P90
			}
		}
		fmt.Printf("%-18s %-10.4f %-8.4f %-6d %-6d %-8d %-8.3f %-10.2f\n",
			router, rep.SLOAttainment, rep.Fitness.Score, adm, rej, missed, p90, rep.MakeSpan)
	}

	fmt.Println()
	fmt.Println("Same arrivals, same queries, same seed: the attainment gap is the")
	fmt.Println("value of routing on predicted distributions instead of ignoring them.")

	// Counterfactual-K over each router's own decision trace: how often
	// did the router's 2nd-ranked candidate (by recorded P(meet)) look
	// strictly safer than the machine it actually chose? Load-only
	// routers record no probabilities, so they are never scored.
	fmt.Println()
	fmt.Println("Counterfactual-K (k=2), from the decision traces alone:")
	for _, router := range routers {
		cf := counterfactuals[router]
		if cf.Scored == 0 {
			fmt.Printf("  %-18s %d placements, none scored (no recorded risk vector)\n", router, cf.Placements)
			continue
		}
		fmt.Printf("  %-18s %d placements scored, 2nd choice strictly safer in %d (%.2f%%)\n",
			router, cf.Scored, cf.KthBetter, 100*cf.Rate())
	}

	// Counterfactual replay: re-run least-risk vs a distribution-blind
	// override on the identical arrival sequence and pinpoint where —
	// and for whom — the decisions diverge.
	sc.Router = sim.RouterLeastRisk
	res, err := sim.Replay(sc, nil, sim.Override{Router: sim.RouterLeastQueue})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Printf("Replay (%s): %d/%d decisions diverged\n", res.Override, res.Diverged, res.Decisions)
	if res.First != nil {
		fmt.Printf("  first divergence: decision #%d, %s %q at t=%.3fs — machine %d vs %d\n",
			res.First.Index, res.First.Base.Kind, res.First.Base.Query, res.First.Base.At,
			res.First.Base.Machine, res.First.Variant.Machine)
	}
	for _, td := range res.Tenants {
		fmt.Printf("  tenant %-8s attainment %.4f -> %.4f (delta %+.4f), from traces alone\n",
			td.Tenant, td.Base.Attainment(), td.Variant.Attainment(), td.Delta)
	}
}
