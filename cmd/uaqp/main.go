// Command uaqp is the command-line front end of the reproduction:
//
//	uaqp list                      list the regenerable tables and figures
//	uaqp experiment <id> [flags]   regenerate one table or figure
//	uaqp demo [flags]              predict-and-run a benchmark workload
//	uaqp batch [flags]             batched concurrent prediction throughput demo
//	uaqp serve [flags]             multi-tenant HTTP prediction service (one serving shard with -shard)
//	uaqp front [flags]             sharded-topology routing tier over a directory file
//	uaqp sim [flags]               discrete-event cluster simulation from a scenario file
//
// Flags:
//
//	-queries N   queries per experimental cell (default 24)
//	-seed S      master seed (default 1)
//	-bench B     demo benchmark: micro | seljoin | tpch (default tpch)
//	-db D        demo database: uniform-1G | skewed-1G | uniform-10G | skewed-10G
//	-machine M   demo machine: PC1 | PC2
//	-sr R        demo sampling ratio (default 0.05)
//	-workers W   batch worker pool size (default GOMAXPROCS)
//	-addr A      serve/front listen address (default :8080)
//	-tenants T   serve tenant names, comma-separated (default "alpha,beta")
//	-confidence  serve SLO admission confidence (default 0.95)
//	-deadline D  serve default deadline in virtual seconds (default 1.0)
//	-shard NAME  serve as the named shard, registering in -dir
//	-dir FILE    static shard-directory file (serve registration, front routing)
//	-rate R      front token-bucket refill rate, requests/second (0 = unlimited)
//	-burst B     front token-bucket capacity (default = rate)
//	-predictive  front sheds hopeless submissions before spending tokens
//	-trace FILE  sim decision-trace output file (JSONL, deterministic)
//	-trace-level sim trace detail: off | decisions | full
//	-calib FILE  sim calibration-stream output file (JSONL, deterministic)
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	uaqetp "repro"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/exper"
	"repro/internal/serve"
	"repro/internal/shard"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "list":
		err = list()
	case "experiment":
		err = experiment(args)
	case "demo":
		err = demo(args)
	case "batch":
		err = batch(args)
	case "serve":
		err = serveCmd(args)
	case "front":
		err = frontCmd(args)
	case "sim":
		err = simCmd(args)
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "uaqp:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  uaqp list
  uaqp experiment <id> [-queries N] [-seed S]
  uaqp demo [-bench B] [-db D] [-machine M] [-sr R] [-queries N] [-seed S]
  uaqp batch [-bench B] [-db D] [-machine M] [-sr R] [-queries N] [-seed S] [-workers W]
  uaqp serve [-addr A] [-db D] [-machine M] [-sr R] [-seed S] [-tenants T] [-confidence C] [-deadline D] [-shard NAME -dir FILE]
  uaqp front -dir FILE [-addr A] [-rate R] [-burst B] [-predictive] [-confidence C]
  uaqp sim -config FILE [-seed S] [-router R] [-o FILE] [-trace FILE] [-trace-level L] [-calib FILE] [-cpuprofile FILE] [-memprofile FILE]`)
}

// simCmd runs a discrete-event cluster-simulation scenario and prints
// the structured report. For a fixed scenario file and seed the output
// is byte-identical across runs — and so are the decision trace JSONL
// written by -trace and the calibration stream written by -calib (the
// basis of `make sim-smoke`).
func simCmd(args []string) error {
	fs := flag.NewFlagSet("sim", flag.ExitOnError)
	config := fs.String("config", "", "scenario JSON file (see examples/sim/scenario.json)")
	seed := fs.Int64("seed", 0, "override the scenario seed (0 keeps the file's)")
	router := fs.String("router", "", "override the scenario router: round-robin | least-queue | least-risk | least-risk-shared")
	out := fs.String("o", "", "write the report to a file instead of stdout")
	traceOut := fs.String("trace", "", "write the decision trace as JSONL to a file")
	traceLevel := fs.String("trace-level", "", "decision trace detail: off | decisions | full (default: the scenario's trace_level, or decisions when -trace is set)")
	calibOut := fs.String("calib", "", "write the calibration stream (one observed-vs-predicted event per executed request) as JSONL to a file")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile of the simulation to a file (inspect with go tool pprof)")
	memProfile := fs.String("memprofile", "", "write a heap profile taken after the simulation to a file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *config == "" {
		return fmt.Errorf("sim: -config is required")
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		// Snapshot after the run (and after a final GC) so the profile
		// shows the simulation's allocation sites, not startup noise.
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "sim: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "sim: memprofile:", err)
			}
		}()
	}
	sc, err := sim.Load(*config)
	if err != nil {
		return err
	}
	if *seed != 0 {
		sc.Seed = *seed
	}
	if *router != "" {
		sc.Router = *router
	}

	// Precedence: explicit -trace-level > the scenario's trace_level >
	// "decisions" when -trace asks for a file.
	level := trace.Off
	if *traceLevel != "" {
		if level, err = trace.ParseLevel(*traceLevel); err != nil {
			return err
		}
	} else if sc.TraceLevel != "" {
		if level, err = trace.ParseLevel(sc.TraceLevel); err != nil {
			return err
		}
	} else if *traceOut != "" {
		level = trace.Decisions
	}

	var rep *sim.Report
	if level > trace.Off || *traceOut != "" || *calibOut != "" {
		var events, calibEvents []trace.Event
		rep, events, calibEvents, err = sim.RunInstrumented(sc, level, *calibOut != "")
		if err != nil {
			return err
		}
		if *traceOut != "" {
			if err := writeJSONL(*traceOut, events); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "sim: %d trace events (%s) -> %s\n", len(events), level, *traceOut)
		}
		if *calibOut != "" {
			if err := writeJSONL(*calibOut, calibEvents); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "sim: %d calibration events -> %s\n", len(calibEvents), *calibOut)
		}
	} else {
		if rep, err = sim.Run(sc); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "sim: fitness %.4f (attainment %.4f, fairness %.4f, p95 %.3fs, util %.3f)\n",
		rep.Fitness.Score, rep.Fitness.Attainment, rep.Fitness.Fairness,
		rep.Fitness.LatencyP95, rep.Fitness.Utilization)

	data, err := rep.JSON()
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if *out != "" {
		return os.WriteFile(*out, data, 0o644)
	}
	_, err = os.Stdout.Write(data)
	return err
}

// writeJSONL writes a deterministic event stream to path.
func writeJSONL(path string, events []trace.Event) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.WriteJSONL(f, events); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// serveCmd starts the multi-tenant HTTP prediction service: one System
// per tenant over a shared sampling-pass cache, deadline-aware
// admission, and a background dispatcher draining admitted work. With
// -shard and -dir the process serves as one shard of a multi-process
// topology: it registers its name and address in the static directory
// file, which a `uaqp front` process routes from.
func serveCmd(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address")
	db := fs.String("db", "uniform-1G", "database kind (all tenants)")
	machine := fs.String("machine", "PC1", "machine profile")
	sr := fs.Float64("sr", 0.05, "sampling ratio")
	seed := fs.Int64("seed", 1, "master seed")
	tenants := fs.String("tenants", "alpha,beta", "comma-separated tenant names")
	confidence := fs.Float64("confidence", 0.95, "SLO admission confidence")
	deadline := fs.Float64("deadline", 1.0, "default deadline (virtual seconds)")
	shardName := fs.String("shard", "", "serve as this named shard, registering in -dir")
	dirFile := fs.String("dir", "", "shard directory file to register in (requires -shard)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	kind, err := parseDB(*db)
	if err != nil {
		return err
	}
	if (*shardName == "") != (*dirFile == "") {
		return fmt.Errorf("serve: -shard and -dir must be used together")
	}
	if *shardName != "" {
		if err := registerShard(*dirFile, *shardName, *addr, *seed); err != nil {
			return err
		}
		fmt.Printf("shard %q registered in %s\n", *shardName, *dirFile)
	}

	srv := serve.New(serve.Config{})
	slo := serve.SLO{Confidence: *confidence, DefaultDeadline: *deadline}
	for _, name := range strings.Split(*tenants, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if _, err := srv.AddTenant(name, uaqetp.Config{
			DB: kind, Machine: *machine, SamplingRatio: *sr, Seed: *seed,
		}, slo); err != nil {
			return err
		}
		fmt.Printf("tenant %q ready (%v on %s, SR=%g)\n", name, kind, *machine, *sr)
	}
	stop := srv.StartDispatcher(50 * time.Millisecond)
	defer stop()

	fmt.Printf("serving on %s — POST /predict /submit /drain /recalibrate, GET /stats /healthz\n", *addr)
	return http.ListenAndServe(*addr, srv.Handler())
}

// registerShard upserts this process into the static directory file,
// creating the file on first registration. The advertised address is
// the listen address with a loopback host filled in when only a port
// was given. Registration is a read-modify-write of a shared file, and
// shard processes typically start concurrently, so it runs under a
// sibling lockfile — without it, two shards loading the same snapshot
// would silently drop each other's entries.
func registerShard(dirFile, name, addr string, seed int64) error {
	unlock, err := lockFile(dirFile + ".lock")
	if err != nil {
		return err
	}
	defer unlock()

	file, err := shard.LoadFile(dirFile)
	if err != nil {
		if !os.IsNotExist(err) {
			return err
		}
		file = &shard.File{Seed: seed}
	}
	advertise := addr
	if strings.HasPrefix(advertise, ":") {
		advertise = "127.0.0.1" + advertise
	}
	if !strings.Contains(advertise, "://") {
		advertise = "http://" + advertise
	}
	file.Register(name, advertise)
	return file.Save(dirFile)
}

// lockFile takes an advisory lock by exclusively creating path,
// retrying briefly while another process holds it. A lock older than
// ten seconds is treated as abandoned (a crashed registrant) and
// broken.
func lockFile(path string) (func(), error) {
	deadline := time.Now().Add(5 * time.Second)
	for {
		f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err == nil {
			f.Close()
			return func() { os.Remove(path) }, nil
		}
		if !os.IsExist(err) {
			return nil, err
		}
		if st, serr := os.Stat(path); serr == nil && time.Since(st.ModTime()) > 10*time.Second {
			os.Remove(path)
			continue
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("uaqp: timed out waiting for lock %s", path)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// frontCmd starts the routing tier of the sharded topology: it builds
// the consistent-hash directory from the shared directory file and
// routes tenant traffic to the registered `uaqp serve -shard`
// processes, shedding at the front door first.
func frontCmd(args []string) error {
	fs := flag.NewFlagSet("front", flag.ExitOnError)
	addr := fs.String("addr", ":8090", "listen address")
	dirFile := fs.String("dir", "", "shard directory file (written by `uaqp serve -shard`)")
	rate := fs.Float64("rate", 0, "token-bucket refill rate, requests/second (0 = unlimited)")
	burst := fs.Float64("burst", 0, "token-bucket capacity (0 = rate)")
	predictive := fs.Bool("predictive", false, "shed hopeless submissions before spending tokens")
	confidence := fs.Float64("confidence", 0.5, "predictive-shed confidence for submissions without one")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dirFile == "" {
		return fmt.Errorf("front: -dir is required")
	}
	file, err := shard.LoadFile(*dirFile)
	if err != nil {
		return err
	}
	front, err := shard.NewFront(file, shard.FrontConfig{
		FrontDoor:  shard.FrontDoorConfig{Rate: *rate, Burst: *burst, Predictive: *predictive},
		Confidence: *confidence,
	})
	if err != nil {
		return err
	}
	fmt.Printf("front on %s over %d shard(s) — POST /predict /submit, GET /place /metrics /healthz\n",
		*addr, len(file.Shards))
	return http.ListenAndServe(*addr, front.Handler())
}

// batch demonstrates the concurrent batched prediction pipeline: it
// predicts a whole workload through System.PredictBatch and reports
// per-query results plus serial-vs-pooled wall-clock throughput.
func batch(args []string) error {
	fs := flag.NewFlagSet("batch", flag.ExitOnError)
	bench := fs.String("bench", "seljoin", "benchmark: micro | seljoin | tpch")
	db := fs.String("db", "uniform-1G", "database kind")
	machine := fs.String("machine", "PC1", "machine profile")
	sr := fs.Float64("sr", 0.05, "sampling ratio")
	queries := fs.Int("queries", 64, "number of queries in the batch")
	seed := fs.Int64("seed", 1, "master seed")
	workers := fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	b, err := parseBench(*bench)
	if err != nil {
		return err
	}
	kind, err := parseDB(*db)
	if err != nil {
		return err
	}

	sys, err := uaqetp.Open(uaqetp.Config{
		DB: kind, Machine: *machine, SamplingRatio: *sr, Seed: *seed,
	})
	if err != nil {
		return err
	}
	qs, err := sys.GenerateWorkload(b, *queries)
	if err != nil {
		return err
	}

	t0 := time.Now()
	preds, err := sys.PredictBatchContext(context.Background(), qs, uaqetp.WithWorkers(*workers))
	if err != nil {
		return err
	}
	pooled := time.Since(t0)

	fmt.Printf("%v on %v (%s), SR=%g: %d queries, workers=%d\n\n",
		b, kind, *machine, *sr, len(qs), *workers)
	fmt.Printf("%-18s %-12s %-12s %-12s\n", "query", "mean(s)", "sigma(s)", "p95(s)")
	for i, p := range preds {
		fmt.Printf("%-18s %-12.4f %-12.4f %-12.4f\n",
			qs[i].Name, p.Mean(), p.Sigma(), p.Dist.Quantile(0.95))
	}
	hits, misses := sys.MemoStats()
	fmt.Printf("\npooled wall clock: %v (%.1f predictions/s), plan-memo %d hits / %d misses\n",
		pooled, float64(len(qs))/pooled.Seconds(), hits, misses)
	return nil
}

func list() error {
	fmt.Println("Regenerable experiments (paper tables and figures):")
	for _, r := range exper.Reports {
		fmt.Printf("  %-10s %s\n", r.ID, r.Desc)
	}
	return nil
}

func experiment(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("experiment: missing id (try 'uaqp list')")
	}
	id := args[0]
	fs := flag.NewFlagSet("experiment", flag.ExitOnError)
	queries := fs.Int("queries", 24, "queries per experimental cell")
	seed := fs.Int64("seed", 1, "master seed")
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	rep, err := exper.ReportByID(id)
	if err != nil {
		return err
	}
	lab := exper.NewLab()
	return rep.Gen(os.Stdout, lab, exper.Sizing{QueriesPerCell: *queries, Seed: *seed})
}

func demo(args []string) error {
	fs := flag.NewFlagSet("demo", flag.ExitOnError)
	bench := fs.String("bench", "tpch", "benchmark: micro | seljoin | tpch")
	db := fs.String("db", "uniform-1G", "database kind")
	machine := fs.String("machine", "PC1", "machine profile")
	sr := fs.Float64("sr", 0.05, "sampling ratio")
	queries := fs.Int("queries", 14, "number of queries")
	seed := fs.Int64("seed", 1, "master seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	b, err := parseBench(*bench)
	if err != nil {
		return err
	}
	kind, err := parseDB(*db)
	if err != nil {
		return err
	}

	lab := exper.NewLab()
	res, err := lab.Run(exper.Setting{
		Bench: b, DB: kind, Machine: *machine, SR: *sr,
		Variant: core.All, NumQueries: *queries, Seed: *seed,
	})
	if err != nil {
		return err
	}
	fmt.Printf("%v on %v (%s), SR=%g, %d queries\n\n",
		b, kind, *machine, *sr, len(res.Outcomes))
	fmt.Printf("%-18s %-12s %-12s %-12s %-10s\n",
		"query", "pred(s)", "sigma(s)", "actual(s)", "|err|(s)")
	for _, o := range res.Outcomes {
		fmt.Printf("%-18s %-12.4f %-12.4f %-12.4f %-10.4f\n",
			o.Name, o.PredMean, o.PredSigma, o.Actual, o.Err)
	}
	fmt.Printf("\nr_s=%.4f  r_p=%.4f  D_n=%.4f  sampling overhead=%.4f\n",
		res.RS, res.RP, res.Dn, res.MeanOverhead)
	return nil
}

func parseBench(s string) (workload.Benchmark, error) {
	switch strings.ToLower(s) {
	case "micro":
		return workload.Micro, nil
	case "seljoin":
		return workload.SelJoin, nil
	case "tpch":
		return workload.TPCH, nil
	default:
		return 0, fmt.Errorf("unknown benchmark %q", s)
	}
}

func parseDB(s string) (datagen.DBKind, error) {
	for _, k := range []datagen.DBKind{
		datagen.Uniform1G, datagen.Skewed1G, datagen.Uniform10G, datagen.Skewed10G,
	} {
		if strings.EqualFold(k.String(), s) {
			return k, nil
		}
	}
	return 0, fmt.Errorf("unknown database %q", s)
}
