package uaqetp

import (
	"math"
	"testing"
)

func testSystem(t *testing.T) *System {
	t.Helper()
	cfg := DefaultConfig()
	sys, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func joinQuery() *Query {
	return &Query{
		Name:   "api-join",
		Tables: []string{"orders", "lineitem"},
		Preds: []Predicate{
			{Col: "o_totalprice", Op: Le, Lo: 25000},
		},
		Joins: []JoinCond{{
			LeftTable: "orders", LeftCol: "o_orderkey",
			RightTable: "lineitem", RightCol: "l_orderkey",
		}},
	}
}

func TestOpenDefaults(t *testing.T) {
	sys := testSystem(t)
	if len(sys.TableNames()) != 8 {
		t.Errorf("tables: %v", sys.TableNames())
	}
	if len(sys.CostUnits()) != 5 {
		t.Errorf("cost units: %v", sys.CostUnits())
	}
}

func TestOpenRejectsBadMachine(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Machine = "PC9"
	if _, err := Open(cfg); err == nil {
		t.Error("expected error for unknown machine")
	}
}

func TestPredictAndRun(t *testing.T) {
	sys := testSystem(t)
	pred, actual, err := sys.PredictAndRun(joinQuery())
	if err != nil {
		t.Fatal(err)
	}
	if pred.Mean() <= 0 || pred.Sigma() <= 0 || actual <= 0 {
		t.Fatalf("degenerate outcome: mean=%v sigma=%v actual=%v",
			pred.Mean(), pred.Sigma(), actual)
	}
	// Point estimate within 3x of actual for this simple FK join.
	ratio := pred.Mean() / actual
	if ratio < 1.0/3 || ratio > 3 {
		t.Errorf("prediction %v vs actual %v", pred.Mean(), actual)
	}
	lo, hi := pred.Interval(0.9)
	if lo >= hi {
		t.Errorf("interval [%v, %v]", lo, hi)
	}
}

func TestPlanRendering(t *testing.T) {
	sys := testSystem(t)
	s, err := sys.Plan(joinQuery())
	if err != nil {
		t.Fatal(err)
	}
	if len(s) == 0 {
		t.Error("empty plan string")
	}
}

func TestPredictUnknownTable(t *testing.T) {
	sys := testSystem(t)
	q := &Query{Name: "bad", Tables: []string{"nope"}}
	if _, err := sys.Predict(q); err == nil {
		t.Error("expected error")
	}
}

func TestProbabilityQueries(t *testing.T) {
	sys := testSystem(t)
	pred, err := sys.Predict(joinQuery())
	if err != nil {
		t.Fatal(err)
	}
	// P(T <= mean) must be 0.5 for a normal distribution.
	if p := pred.Dist.CDF(pred.Mean()); math.Abs(p-0.5) > 1e-9 {
		t.Errorf("CDF(mean) = %v", p)
	}
	if p := pred.Dist.Prob(pred.Mean()-pred.Sigma(), pred.Mean()+pred.Sigma()); math.Abs(p-0.6827) > 0.001 {
		t.Errorf("one-sigma mass = %v", p)
	}
}

func TestAlternativesAndChoosePlan(t *testing.T) {
	sys := testSystem(t)
	q := &Query{
		Name:   "choose",
		Tables: []string{"customer", "orders", "lineitem"},
		Preds:  []Predicate{{Col: "c_acctbal", Op: Le, Lo: 3000}},
		Joins: []JoinCond{
			{LeftTable: "customer", LeftCol: "c_custkey", RightTable: "orders", RightCol: "o_custkey"},
			{LeftTable: "orders", LeftCol: "o_orderkey", RightTable: "lineitem", RightCol: "l_orderkey"},
		},
	}
	choices, err := sys.Alternatives(q, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(choices) < 2 {
		t.Fatalf("got %d alternatives", len(choices))
	}
	best, all, err := sys.ChoosePlan(q, 0.9, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(choices) {
		t.Errorf("ChoosePlan saw %d plans, Alternatives %d", len(all), len(choices))
	}
	for _, c := range all {
		if best.Pred.Dist.Quantile(0.9) > c.Pred.Dist.Quantile(0.9) {
			t.Errorf("chosen plan p90 %v above alternative %v",
				best.Pred.Dist.Quantile(0.9), c.Pred.Dist.Quantile(0.9))
		}
	}
}

func TestVariantsViaConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Variant = NoVarC
	sysC, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sysAll := testSystem(t)
	q := joinQuery()
	pAll, err := sysAll.Predict(q)
	if err != nil {
		t.Fatal(err)
	}
	pC, err := sysC.Predict(q)
	if err != nil {
		t.Fatal(err)
	}
	if pC.Sigma() >= pAll.Sigma() {
		t.Errorf("NoVarC sigma %v not below All sigma %v", pC.Sigma(), pAll.Sigma())
	}
}
