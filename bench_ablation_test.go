// Ablation benchmarks for the design choices called out in DESIGN.md §5.
// These go beyond the paper's own evaluation: they quantify how much
// each implementation decision contributes.
package uaqetp

import (
	"fmt"
	"math"
	"os"
	"sync"
	"testing"

	"repro/internal/calibrate"
	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/engine"
	"repro/internal/hardware"
	"repro/internal/plan"
	"repro/internal/sample"
	"repro/internal/stats"
	"repro/internal/workload"
)

// ablEnv is a shared small environment for the ablation benches.
type ablEnv struct {
	db    *engine.DB
	cat   *catalog.Catalog
	hw    *hardware.Profile
	cal   *calibrate.Result
	plans []*engine.Node
	runs  []*engine.OpResult
}

var (
	ablOnce sync.Once
	abl     *ablEnv
	ablErr  error
)

func ablEnvGet(b *testing.B) *ablEnv {
	b.Helper()
	ablOnce.Do(func() {
		db := datagen.Generate(datagen.ConfigFor(datagen.Skewed1G, 1))
		cat := catalog.Build(db)
		hw := hardware.PC1()
		cal, err := calibrate.Run(hw, calibrate.DefaultConfig(2))
		if err != nil {
			ablErr = err
			return
		}
		queries, err := workload.Generate(workload.TPCH, cat, 28, 3)
		if err != nil {
			ablErr = err
			return
		}
		e := &ablEnv{db: db, cat: cat, hw: hw, cal: cal}
		for _, q := range queries {
			p, err := plan.Build(q, cat)
			if err != nil {
				ablErr = err
				return
			}
			res, err := engine.Run(db, p)
			if err != nil {
				ablErr = err
				return
			}
			e.plans = append(e.plans, p)
			e.runs = append(e.runs, res)
		}
		abl = e
	})
	if ablErr != nil {
		b.Fatal(ablErr)
	}
	return abl
}

// predictAll runs the predictor over the shared workload and returns the
// per-query (sigma, |error|) correlation and the mean relative error of
// the point estimate.
func (e *ablEnv) predictAll(b *testing.B, cfg core.Config, sr float64, copies int, opts sample.Opts) (rs, meanRel float64) {
	b.Helper()
	sdb, err := sample.Build(e.db, sr, copies, 7)
	if err != nil {
		b.Fatal(err)
	}
	pred := core.New(e.cat, e.cal.Units, cfg)
	var sigmas, errs, rels []float64
	for i, p := range e.plans {
		est, err := sample.EstimateWithOpts(p, sdb, e.cat, opts)
		if err != nil {
			b.Fatal(err)
		}
		pr, err := pred.Predict(p, est)
		if err != nil {
			b.Fatal(err)
		}
		actual := e.hw.ExpectedCost(e.runs[i].TotalCounts())
		sigmas = append(sigmas, pr.Sigma())
		errs = append(errs, math.Abs(pr.Mean()-actual))
		if actual > 0 {
			rels = append(rels, math.Abs(pr.Mean()-actual)/actual)
		}
	}
	return stats.Spearman(sigmas, errs), stats.Mean(rels)
}

var ablPrinted sync.Map

func ablPrintf(key, format string, args ...interface{}) {
	if _, done := ablPrinted.LoadOrStore(key, struct{}{}); !done {
		fmt.Fprintf(os.Stdout, format, args...)
	}
}

// BenchmarkAblationCovarianceBounds compares the tight covariance bounds
// (Theorem 7/8-10, the paper's contribution) against plain Cauchy-Schwarz
// and against dropping covariances entirely (NoCov).
func BenchmarkAblationCovarianceBounds(b *testing.B) {
	e := ablEnvGet(b)
	for i := 0; i < b.N; i++ {
		tightRS, _ := e.predictAll(b, core.Config{Variant: core.All}, 0.01, 2, sample.Opts{})
		looseRS, _ := e.predictAll(b, core.Config{Variant: core.All, LooseBounds: true}, 0.01, 2, sample.Opts{})
		noneRS, _ := e.predictAll(b, core.Config{Variant: core.NoCov}, 0.01, 2, sample.Opts{})
		ablPrintf("cov", "\n===== ablation: covariance bounds (TPCH, skewed 1G, SR=0.01) =====\n"+
			"tight (Thm 7-10): r_s=%.4f\nCauchy-Schwarz:  r_s=%.4f\nno covariances:  r_s=%.4f\n",
			tightRS, looseRS, noneRS)
	}
}

// BenchmarkAblationGridW measures the sensitivity of prediction accuracy
// to the probe grid resolution W of Section 4.2.
func BenchmarkAblationGridW(b *testing.B) {
	e := ablEnvGet(b)
	for i := 0; i < b.N; i++ {
		var lines string
		for _, w := range []int{2, 4, 8, 16} {
			rs, rel := e.predictAll(b, core.Config{Variant: core.All, GridW: w}, 0.05, 2, sample.Opts{})
			lines += fmt.Sprintf("W=%-3d r_s=%.4f mean-rel-err=%.4f\n", w, rs, rel)
		}
		ablPrintf("gridw", "\n===== ablation: cost-function probe grid W =====\n%s", lines)
	}
}

// BenchmarkAblationSampleCopies contrasts one shared sample table per
// relation against independent per-appearance copies (the Lemma 2/3
// independence device).
func BenchmarkAblationSampleCopies(b *testing.B) {
	e := ablEnvGet(b)
	for i := 0; i < b.N; i++ {
		oneRS, oneRel := e.predictAll(b, core.Config{Variant: core.All}, 0.05, 1, sample.Opts{})
		twoRS, twoRel := e.predictAll(b, core.Config{Variant: core.All}, 0.05, 2, sample.Opts{})
		ablPrintf("copies", "\n===== ablation: sample tables per relation =====\n"+
			"1 copy:  r_s=%.4f mean-rel-err=%.4f\n2 copies: r_s=%.4f mean-rel-err=%.4f\n",
			oneRS, oneRel, twoRS, twoRel)
	}
}

// BenchmarkAblationGEEAggregates compares the optimizer fallback for
// aggregate cardinalities against the GEE sampling estimator the paper
// names as future work, measuring the error of the aggregate output
// cardinality against ground truth.
func BenchmarkAblationGEEAggregates(b *testing.B) {
	e := ablEnvGet(b)
	for i := 0; i < b.N; i++ {
		sdb, err := sample.Build(e.db, 0.05, 2, 7)
		if err != nil {
			b.Fatal(err)
		}
		var optRel, geeRel []float64
		for qi, p := range e.plans {
			if p.Kind != engine.Aggregate {
				continue
			}
			truth := e.runs[qi].M
			if truth <= 0 {
				continue
			}
			for _, mode := range []sample.AggEstimator{sample.OptimizerAgg, sample.GEEAgg} {
				est, err := sample.EstimateWithOpts(p, sdb, e.cat, sample.Opts{Agg: mode})
				if err != nil {
					b.Fatal(err)
				}
				rel := math.Abs(est.ByID[p.ID].EstCard-truth) / truth
				if mode == sample.OptimizerAgg {
					optRel = append(optRel, rel)
				} else {
					geeRel = append(geeRel, rel)
				}
			}
		}
		ablPrintf("gee", "\n===== ablation: aggregate cardinality estimator (%d aggregates) =====\n"+
			"optimizer fallback: mean rel err=%.4f\nGEE on samples:     mean rel err=%.4f\n",
			len(optRel), stats.Mean(optRel), stats.Mean(geeRel))
	}
}

// BenchmarkAblationEstimators compares the paper's sampling-based
// selectivity estimator against the histogram-based alternative named as
// future work in Section 3.2, in terms of the sigma-vs-error rank
// correlation over the shared workload.
func BenchmarkAblationEstimators(b *testing.B) {
	e := ablEnvGet(b)
	for i := 0; i < b.N; i++ {
		sdb, err := sample.Build(e.db, 0.05, 2, 7)
		if err != nil {
			b.Fatal(err)
		}
		pred := core.New(e.cat, e.cal.Units, core.Config{Variant: core.All})
		type estimator struct {
			name string
			run  func(p *engine.Node) (*sample.Estimates, error)
		}
		estimators := []estimator{
			{"sampling", func(p *engine.Node) (*sample.Estimates, error) {
				return sample.Estimate(p, sdb, e.cat)
			}},
			{"histogram", func(p *engine.Node) (*sample.Estimates, error) {
				return sample.EstimateHistogram(p, e.cat, sample.HistogramOpts{})
			}},
		}
		var lines string
		for _, est := range estimators {
			var sigmas, errs []float64
			for qi, p := range e.plans {
				es, err := est.run(p)
				if err != nil {
					b.Fatal(err)
				}
				pr, err := pred.Predict(p, es)
				if err != nil {
					b.Fatal(err)
				}
				actual := e.hw.ExpectedCost(e.runs[qi].TotalCounts())
				sigmas = append(sigmas, pr.Sigma())
				errs = append(errs, math.Abs(pr.Mean()-actual))
			}
			lines += fmt.Sprintf("%-10s r_s=%.4f mean-err=%.4fs\n",
				est.name, stats.Spearman(sigmas, errs), stats.Mean(errs))
		}
		ablPrintf("estimators", "\n===== ablation: sampling vs histogram selectivity estimator =====\n%s", lines)
	}
}

// BenchmarkAblationMonteCarlo contrasts the analytic normal against the
// Monte-Carlo path: mean agreement and the analytic-to-MC sigma ratio
// (>= 1 expected on join plans because of the conservative bounds).
func BenchmarkAblationMonteCarlo(b *testing.B) {
	e := ablEnvGet(b)
	for i := 0; i < b.N; i++ {
		sdb, err := sample.Build(e.db, 0.05, 2, 7)
		if err != nil {
			b.Fatal(err)
		}
		pred := core.New(e.cat, e.cal.Units, core.Config{Variant: core.All})
		var ratios, meanDiffs []float64
		for _, p := range e.plans[:10] {
			est, err := sample.Estimate(p, sdb, e.cat)
			if err != nil {
				b.Fatal(err)
			}
			an, err := pred.Predict(p, est)
			if err != nil {
				b.Fatal(err)
			}
			mc, err := pred.PredictMonteCarlo(p, est, core.MCOptions{Draws: 4000, Seed: 9})
			if err != nil {
				b.Fatal(err)
			}
			if sr, md, err := mc.CompareAnalytic(an); err == nil {
				ratios = append(ratios, 1/math.Max(sr, 1e-9)) // analytic / MC
				meanDiffs = append(meanDiffs, math.Abs(md))
			}
		}
		ablPrintf("mc", "\n===== ablation: analytic vs Monte-Carlo distribution =====\n"+
			"analytic/MC sigma ratio: mean=%.3f\n|mean rel diff|:         mean=%.4f\n",
			stats.Mean(ratios), stats.Mean(meanDiffs))
	}
}
