package uaqetp

// BenchmarkAlternativesSubtreeMemo measures what subtree-granular
// memoization buys inside one Alternatives call: each iteration runs
// the 4-way join's alternatives against a cold cache, so every shared
// subtree is either recomputed (whole-plan-only baseline) or served
// from the subtree section (memo path). The reported subtree-hits/op
// and subtree-misses/op metrics are the acceptance numbers: misses
// equal the distinct subplan signatures, hits cover every further
// occurrence.

import (
	"context"
	"testing"

	"repro/internal/sample"
)

// wholePlanEstimator is the v1 estimation path — one un-shared sampling
// pass per whole plan — used as the baseline.
type wholePlanEstimator struct {
	samples *sample.DB
	sys     *System
}

func (e *wholePlanEstimator) Estimate(ctx context.Context, p *Plan) (*Estimates, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	est, err := sample.Estimate(p.root, e.samples, e.sys.cat)
	if err != nil {
		return nil, err
	}
	return &Estimates{est: est}, nil
}

func benchAlternatives(b *testing.B, subtree bool) {
	sys, err := Open(DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	q := fourWayJoinQuery()
	var hits, misses uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var fresh *System
		var cache *MemoryCache
		if subtree {
			cache = NewEstimateCache(256)
			fresh = sys.With(WithEstimator(&defaultEstimator{
				samples: sys.samples, cat: sys.cat, cache: cache, ns: sys.estNS,
			}))
		} else {
			fresh = sys.With(WithEstimator(&wholePlanEstimator{samples: sys.samples, sys: sys}))
		}
		if _, err := fresh.AlternativesContext(context.Background(), q, WithMaxAlts(6)); err != nil {
			b.Fatal(err)
		}
		if cache != nil {
			st := cache.Stats()
			hits += st.SubtreeHits
			misses += st.SubtreeMisses
		}
	}
	b.StopTimer()
	if subtree {
		if hits == 0 {
			b.Fatal("subtree memo recorded no hits across a 4-way join's alternatives")
		}
		b.ReportMetric(float64(hits)/float64(b.N), "subtree-hits/op")
		b.ReportMetric(float64(misses)/float64(b.N), "subtree-misses/op")
	}
}

// BenchmarkAlternativesSubtreeMemo: alternatives share their common
// subtrees' sampling passes; each distinct subplan signature is
// computed once per (cold) cache and every further occurrence hits.
func BenchmarkAlternativesSubtreeMemo(b *testing.B) { benchAlternatives(b, true) }

// BenchmarkAlternativesWholePlanOnly is the v1 baseline: every
// alternative pays for its full sampling pass.
func BenchmarkAlternativesWholePlanOnly(b *testing.B) { benchAlternatives(b, false) }
