package core

import (
	"math"
	"testing"

	"repro/internal/costmodel"
	"repro/internal/engine"
	"repro/internal/stats"
)

// boundFixture builds a two-level plan (scan under join) whose variables
// are ancestor-descendant, so covariance terms must be bounded.
func boundFixture() (scan, join *engine.Node, info map[int]*varInfo) {
	scan = &engine.Node{Kind: engine.SeqScan, Table: "r",
		Preds: []engine.Predicate{{Col: "a", Op: engine.Le, Lo: 1}}}
	other := &engine.Node{Kind: engine.SeqScan, Table: "s"}
	join = &engine.Node{Kind: engine.HashJoin, LeftCol: "a", RightCol: "c",
		Left: scan, Right: other}
	join.Finalize()
	info = map[int]*varInfo{
		scan.ID: {
			node:      scan,
			dist:      stats.NewNormal(0.3, 0.02),
			leafComp:  map[int]float64{0: 0.0004},
			leafN:     map[int]int{0: 500},
			leafKeys:  []int{0},
			numLeaves: 1,
		},
		other.ID: {
			node:      other,
			dist:      stats.NewNormal(1.0, 0),
			leafComp:  map[int]float64{1: 0},
			leafN:     map[int]int{1: 500},
			leafKeys:  []int{1},
			numLeaves: 1,
		},
		join.ID: {
			node:      join,
			dist:      stats.NewNormal(0.001, 0.0002),
			leafComp:  map[int]float64{0: 3e-8, 1: 1e-8},
			leafN:     map[int]int{0: 500, 1: 500},
			leafKeys:  []int{0, 1},
			numLeaves: 2,
		},
	}
	return scan, join, info
}

func linTerm(v int, coef float64) costmodel.Term {
	return costmodel.Term{Coef: coef, Vars: [2]int{v}, Pows: [2]int{1}, NVars: 1}
}

func sqTerm(v int, coef float64) costmodel.Term {
	return costmodel.Term{Coef: coef, Vars: [2]int{v}, Pows: [2]int{2}, NVars: 1}
}

func TestCovTermsIndependentVarsExact(t *testing.T) {
	scan, join, info := boundFixture()
	_ = join
	p := New(nil, [5]stats.Normal{}, Config{})
	// Same variable: Cov(5X, 3X) = 15 sigma^2, exact.
	cov, bounded := p.covTerms(linTerm(scan.ID, 5), linTerm(scan.ID, 3), info)
	want := 15 * info[scan.ID].dist.Var()
	if bounded || math.Abs(cov-want) > 1e-15 {
		t.Errorf("same-var cov = %v (bounded=%v), want %v exact", cov, bounded, want)
	}
}

func TestCovTermsAncestorDescendantBounded(t *testing.T) {
	scan, join, info := boundFixture()
	p := New(nil, [5]stats.Normal{}, Config{})
	cov, bounded := p.covTerms(linTerm(scan.ID, 2), linTerm(join.ID, 4), info)
	if !bounded {
		t.Fatal("expected a bounded covariance for nested operators")
	}
	if cov < 0 {
		t.Errorf("bound %v negative", cov)
	}
	// Must not exceed Cauchy-Schwarz.
	cs := math.Sqrt(termVar(linTerm(scan.ID, 2), info) * termVar(linTerm(join.ID, 4), info))
	if cov > cs+1e-18 {
		t.Errorf("bound %v exceeds Cauchy-Schwarz %v", cov, cs)
	}
}

func TestTightBoundBelowCauchySchwarz(t *testing.T) {
	scan, join, info := boundFixture()
	pTight := New(nil, [5]stats.Normal{}, Config{})
	pLoose := New(nil, [5]stats.Normal{}, Config{LooseBounds: true})
	a, b := linTerm(scan.ID, 1), linTerm(join.ID, 1)
	tight, _ := pTight.covTerms(a, b, info)
	loose, _ := pLoose.covTerms(a, b, info)
	if tight > loose+1e-18 {
		t.Errorf("tight bound %v above loose bound %v", tight, loose)
	}
}

func TestNoCovZeroesBoundedTerms(t *testing.T) {
	scan, join, info := boundFixture()
	p := New(nil, [5]stats.Normal{}, Config{Variant: NoCov})
	cov, bounded := p.covTerms(linTerm(scan.ID, 1), linTerm(join.ID, 1), info)
	if cov != 0 || bounded {
		t.Errorf("NoCov: cov=%v bounded=%v, want 0/false", cov, bounded)
	}
}

func TestQuadraticBoundsUseTheorems(t *testing.T) {
	scan, join, info := boundFixture()
	p := New(nil, [5]stats.Normal{}, Config{})
	// X^2 vs X'^2 triggers Theorem 9; X^2 vs X' triggers Theorem 10.
	c99, b99 := p.covTerms(sqTerm(scan.ID, 1), sqTerm(join.ID, 1), info)
	c21, b21 := p.covTerms(sqTerm(scan.ID, 1), linTerm(join.ID, 1), info)
	if !b99 || !b21 || c99 < 0 || c21 < 0 {
		t.Errorf("quadratic bounds: (%v,%v) (%v,%v)", c99, b99, c21, b21)
	}
}

func TestSharedLeaves(t *testing.T) {
	scan, join, info := boundFixture()
	m, n := sharedLeaves(info[scan.ID], info[join.ID])
	if m != 1 || n != 500 {
		t.Errorf("sharedLeaves = (%d, %d), want (1, 500)", m, n)
	}
	// Disjoint leaf sets share nothing.
	m, n = sharedLeaves(info[scan.ID], &varInfo{leafN: map[int]int{9: 100}})
	if m != 0 || n != 0 {
		t.Errorf("disjoint sharedLeaves = (%d, %d)", m, n)
	}
}

func TestRestrictedVarSumsSharedComponents(t *testing.T) {
	scan, join, info := boundFixture()
	// The join shares only leaf 0 with the scan.
	got := restrictedVar(info[join.ID], info[scan.ID])
	if math.Abs(got-3e-8) > 1e-20 {
		t.Errorf("restrictedVar = %v, want 3e-8", got)
	}
	// The scan's full variance vs the join: all its leaves are shared.
	got = restrictedVar(info[scan.ID], info[join.ID])
	if math.Abs(got-0.0004) > 1e-18 {
		t.Errorf("restrictedVar = %v, want 4e-4", got)
	}
}

func TestTheoremFFactorsBehave(t *testing.T) {
	// f factors vanish as n grows and increase with shared relations m.
	f9a := theorem9F(100, 1, 2, 3)
	f9b := theorem9F(10000, 1, 2, 3)
	if f9b >= f9a {
		t.Errorf("theorem9F not decreasing in n: %v vs %v", f9a, f9b)
	}
	f9m1 := theorem9F(1000, 1, 3, 3)
	f9m2 := theorem9F(1000, 2, 3, 3)
	if f9m2 <= f9m1 {
		t.Errorf("theorem9F not increasing in m: %v vs %v", f9m1, f9m2)
	}
	f10a := theorem10F(100, 1, 2, 2)
	f10b := theorem10F(10000, 1, 2, 2)
	if f10b >= f10a {
		t.Errorf("theorem10F not decreasing in n: %v vs %v", f10a, f10b)
	}
}

func TestGAndHRho(t *testing.T) {
	if gRho(0) != 0 || gRho(1) != 0 {
		t.Error("g(rho) should vanish at 0 and 1")
	}
	if math.Abs(gRho(0.5)-0.5) > 1e-15 {
		t.Errorf("g(0.5) = %v, want 0.5", gRho(0.5))
	}
	if hRho(0.5) <= gRho(0.5) {
		t.Errorf("h(0.5)=%v should exceed g(0.5)=%v", hRho(0.5), gRho(0.5))
	}
	if gRho(-0.1) != 0 || hRho(1.5) != 0 {
		t.Error("out-of-range rho should clamp to 0")
	}
}

func TestExactTermCovMatchesStatsHelpers(t *testing.T) {
	scan, _, info := boundFixture()
	x := info[scan.ID].dist
	// Cov(X, X^2) = 2 mu sigma^2.
	got := exactTermCov(linTerm(scan.ID, 1), sqTerm(scan.ID, 1), info)
	if want := stats.CovXX2(x); math.Abs(got-want) > 1e-15 {
		t.Errorf("Cov(X, X^2) = %v, want %v", got, want)
	}
	// Var[X^2] via exactTermCov of the square with itself.
	got = exactTermCov(sqTerm(scan.ID, 1), sqTerm(scan.ID, 1), info)
	if want := stats.VarX2(x); math.Abs(got-want) > 1e-15 {
		t.Errorf("Var[X^2] = %v, want %v", got, want)
	}
}
