package core

import (
	"math"
	"testing"

	"repro/internal/datagen"
	"repro/internal/engine"
	"repro/internal/sample"
)

// TestMonteCarloMatchesAnalyticOnScan validates the analytic propagation
// end to end: for a plan whose cost functions share a single selectivity
// variable (no cross-operator covariance bounds involved), the
// Monte-Carlo distribution must agree with the analytic normal in both
// moments.
func TestMonteCarloMatchesAnalyticOnScan(t *testing.T) {
	f := newFixture(t, All)
	plan := &engine.Node{Kind: engine.Sort,
		Left: &engine.Node{Kind: engine.IndexScan, Table: "lineitem",
			Preds: []engine.Predicate{{Col: "l_quantity", Op: engine.Le, Lo: 3}}}}
	plan.Finalize()
	pred, _ := f.predict(t, plan, 0.05, 41)
	est := f.estimates(t, plan, 0.05, 41)
	mc, err := f.pred.PredictMonteCarlo(plan, est, MCOptions{Draws: 60000, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	sigmaRatio, meanDiff, err := mc.CompareAnalytic(pred)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(meanDiff) > 0.02 {
		t.Errorf("MC mean %v vs analytic %v (rel diff %v)", mc.Mean(), pred.Mean(), meanDiff)
	}
	if sigmaRatio < 0.9 || sigmaRatio > 1.1 {
		t.Errorf("MC sigma %v vs analytic %v (ratio %v)", mc.Sigma(), pred.Sigma(), sigmaRatio)
	}
}

// TestMonteCarloVsAnalyticJoin checks the documented dominance: on plans
// with nested (correlated) selectivity estimates the analytic variance
// uses conservative upper bounds, so it must not fall below the
// independent-draw Monte-Carlo variance by more than sampling noise.
func TestMonteCarloVsAnalyticJoin(t *testing.T) {
	f := newFixture(t, All)
	plan := threeWayQuery()
	pred, _ := f.predict(t, plan, 0.05, 43)
	est := f.estimates(t, plan, 0.05, 43)
	mc, err := f.pred.PredictMonteCarlo(plan, est, MCOptions{Draws: 40000, Seed: 44})
	if err != nil {
		t.Fatal(err)
	}
	if pred.Sigma() < 0.9*mc.Sigma() {
		t.Errorf("analytic sigma %v below MC sigma %v", pred.Sigma(), mc.Sigma())
	}
	// Means agree regardless of covariance treatment.
	if rel := math.Abs(mc.Mean()-pred.Mean()) / pred.Mean(); rel > 0.05 {
		t.Errorf("MC mean %v vs analytic %v", mc.Mean(), pred.Mean())
	}
}

func TestMonteCarloQuantilesMonotone(t *testing.T) {
	f := newFixture(t, All)
	plan := joinQuery()
	est := f.estimates(t, plan, 0.05, 45)
	mc, err := f.pred.PredictMonteCarlo(plan, est, MCOptions{Draws: 5000, Seed: 46})
	if err != nil {
		t.Fatal(err)
	}
	qs := []float64{0.05, 0.25, 0.5, 0.75, 0.95}
	prev := math.Inf(-1)
	for _, q := range qs {
		v := mc.Quantile(q)
		if v < prev {
			t.Fatalf("quantiles not monotone at %v: %v < %v", q, v, prev)
		}
		prev = v
	}
	if mc.Quantile(0) != mc.Samples[0] || mc.Quantile(1) != mc.Samples[len(mc.Samples)-1] {
		t.Error("extreme quantiles wrong")
	}
}

func TestMonteCarloProb(t *testing.T) {
	f := newFixture(t, All)
	plan := joinQuery()
	est := f.estimates(t, plan, 0.05, 47)
	mc, err := f.pred.PredictMonteCarlo(plan, est, MCOptions{Draws: 5000, Seed: 48})
	if err != nil {
		t.Fatal(err)
	}
	all := mc.Prob(mc.Samples[0], mc.Samples[len(mc.Samples)-1])
	if all != 1 {
		t.Errorf("full-range prob %v, want 1", all)
	}
	if mc.Prob(1, 0) != 0 {
		t.Error("inverted-range prob not 0")
	}
	half := mc.Prob(math.Inf(-1), mc.Quantile(0.5))
	if math.Abs(half-0.5) > 0.02 {
		t.Errorf("prob up to median = %v", half)
	}
}

func TestMonteCarloDeterministicPerSeed(t *testing.T) {
	f := newFixture(t, All)
	plan := scanQuery()
	est := f.estimates(t, plan, 0.05, 49)
	a, err := f.pred.PredictMonteCarlo(plan, est, MCOptions{Draws: 2000, Seed: 50})
	if err != nil {
		t.Fatal(err)
	}
	b, err := f.pred.PredictMonteCarlo(plan, est, MCOptions{Draws: 2000, Seed: 50})
	if err != nil {
		t.Fatal(err)
	}
	if a.Mean() != b.Mean() || a.Variance != b.Variance {
		t.Error("MC not deterministic per seed")
	}
}

func TestMonteCarloVariantConsistency(t *testing.T) {
	// Under NoVarC + NoVarX... both sources off is not a variant; use
	// NoVarX: MC variance should then come only from the unit draws.
	fAll := newFixture(t, All)
	fNoX := newFixture(t, NoVarX)
	plan := joinQuery()
	estAll := fAll.estimates(t, plan, 0.02, 51)
	estNoX := fNoX.estimates(t, plan, 0.02, 51)
	mcAll, err := fAll.pred.PredictMonteCarlo(plan, estAll, MCOptions{Draws: 20000, Seed: 52})
	if err != nil {
		t.Fatal(err)
	}
	mcNoX, err := fNoX.pred.PredictMonteCarlo(plan, estNoX, MCOptions{Draws: 20000, Seed: 52})
	if err != nil {
		t.Fatal(err)
	}
	if mcNoX.Variance > mcAll.Variance*1.05 {
		t.Errorf("NoVarX MC variance %v exceeds All %v", mcNoX.Variance, mcAll.Variance)
	}
}

// estimates runs the sampling pass for a plan, mirroring fixture.predict
// without the prediction step.
func (f *fixture) estimates(t *testing.T, plan *engine.Node, ratio float64, seed int64) *sample.Estimates {
	t.Helper()
	sdb, err := sample.Build(f.db, ratio, 2, seed)
	if err != nil {
		t.Fatal(err)
	}
	est, err := sample.Estimate(plan, sdb, f.cat)
	if err != nil {
		t.Fatal(err)
	}
	return est
}

// The datagen import anchors the fixture database scale used above.
var _ = datagen.Scale1GB
