package core

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/engine"
	"repro/internal/sample"
)

// MCOptions configures the Monte-Carlo prediction path.
type MCOptions struct {
	// Draws is the number of (c, X) realizations; 0 selects
	// DefaultMCDraws.
	Draws int
	Seed  int64
}

// DefaultMCDraws keeps the Monte-Carlo path comfortably accurate while
// still fast (each draw is a handful of polynomial evaluations).
const DefaultMCDraws = 20000

// MCPrediction is an empirical distribution of likely running times.
type MCPrediction struct {
	Samples  []float64 // sorted ascending
	MeanVal  float64
	Variance float64
}

// Mean returns the empirical mean.
func (m *MCPrediction) Mean() float64 { return m.MeanVal }

// Sigma returns the empirical standard deviation.
func (m *MCPrediction) Sigma() float64 { return math.Sqrt(m.Variance) }

// Quantile returns the empirical q-quantile, q in (0,1).
func (m *MCPrediction) Quantile(q float64) float64 {
	if len(m.Samples) == 0 {
		return 0
	}
	if q <= 0 {
		return m.Samples[0]
	}
	if q >= 1 {
		return m.Samples[len(m.Samples)-1]
	}
	i := int(q * float64(len(m.Samples)))
	if i >= len(m.Samples) {
		i = len(m.Samples) - 1
	}
	return m.Samples[i]
}

// Prob returns the empirical P(a <= T <= b).
func (m *MCPrediction) Prob(a, b float64) float64 {
	if len(m.Samples) == 0 || b < a {
		return 0
	}
	lo := sort.SearchFloat64s(m.Samples, a)
	hi := sort.SearchFloat64s(m.Samples, b)
	for hi < len(m.Samples) && m.Samples[hi] <= b {
		hi++
	}
	return float64(hi-lo) / float64(len(m.Samples))
}

// PredictMonteCarlo computes the distribution of likely running times by
// direct simulation instead of the analytic normal approximation: it
// draws realizations of the cost units c and the selectivity estimates
// X and evaluates t_q = sum_k sum_c f_kc(X) c for each.
//
// This is the "conceptually simpler" alternative discussed in Section
// 5.2.4 and Appendix B. It needs no normality assumption on the c's and
// no Theorem 1/2-style convergence arguments, but it cannot model the
// correlations between nested selectivity estimates either (their joint
// distribution is unobservable without rerunning the sampling pass), so
// distinct selectivity variables are drawn independently — the analytic
// path's upper bounds therefore dominate the Monte-Carlo variance on
// plans with correlated estimates, which TestMonteCarloVsAnalytic
// verifies.
func (p *Predictor) PredictMonteCarlo(root *engine.Node, est *sample.Estimates, opt MCOptions) (*MCPrediction, error) {
	if opt.Draws <= 0 {
		opt.Draws = DefaultMCDraws
	}
	a, err := p.assemble(root, est)
	if err != nil {
		return nil, err
	}
	// Collect the variables actually referenced by the cost functions.
	varIDs := make(map[int]bool)
	for _, it := range a.items {
		for _, t := range it.terms {
			for i := 0; i < t.NVars; i++ {
				varIDs[t.Vars[i]] = true
			}
		}
	}
	ids := make([]int, 0, len(varIDs))
	for id := range varIDs {
		ids = append(ids, id)
	}
	sort.Ints(ids)

	rng := rand.New(rand.NewSource(opt.Seed))
	draw := make(map[int]float64, len(ids))
	samples := make([]float64, 0, opt.Draws)
	var sum, sum2 float64
	for d := 0; d < opt.Draws; d++ {
		// Selectivities: truncated normal draws in [0, 1].
		for _, id := range ids {
			x := a.vars[id]
			v := x.Mu
			if x.Sigma > 0 && p.Cfg.Variant != NoVarX {
				v = x.Mu + x.Sigma*rng.NormFloat64()
				if v < 0 {
					v = 0
				}
				if v > 1 {
					v = 1
				}
			}
			draw[id] = v
		}
		// Cost units: truncated-positive normal draws.
		var c [5]float64
		for u := 0; u < 5; u++ {
			cu := p.Units[u]
			v := cu.Mu
			if cu.Sigma > 0 && p.Cfg.Variant != NoVarC {
				v = cu.Mu + cu.Sigma*rng.NormFloat64()
				if v < 0 {
					v = 0
				}
			}
			c[u] = v
		}
		var t float64
		for _, it := range a.items {
			t += it.f.Eval(draw) * c[it.unit]
		}
		samples = append(samples, t)
		sum += t
		sum2 += t * t
	}
	sort.Float64s(samples)
	n := float64(opt.Draws)
	mean := sum / n
	variance := (sum2 - n*mean*mean) / (n - 1)
	if variance < 0 {
		variance = 0
	}
	return &MCPrediction{Samples: samples, MeanVal: mean, Variance: variance}, nil
}

// CompareAnalytic summarizes how the Monte-Carlo distribution relates to
// an analytic prediction: the ratio of standard deviations and the
// difference of means, both relative to the analytic values.
func (m *MCPrediction) CompareAnalytic(p *Prediction) (sigmaRatio, meanRelDiff float64, err error) {
	if p.Sigma() <= 0 {
		return 0, 0, fmt.Errorf("core: analytic prediction has zero sigma")
	}
	sigmaRatio = m.Sigma() / p.Sigma()
	meanRelDiff = (m.Mean() - p.Mean()) / p.Mean()
	return sigmaRatio, meanRelDiff, nil
}
