package core

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/engine"
	"repro/internal/sample"
)

// MCOptions configures the Monte-Carlo prediction path.
type MCOptions struct {
	// Draws is the number of (c, X) realizations; 0 selects
	// DefaultMCDraws.
	Draws int
	Seed  int64
	// Parallelism bounds the worker goroutines sharding the draws; 0
	// selects GOMAXPROCS. The result is byte-identical for every value:
	// draws are partitioned into fixed-size shards, each shard has its
	// own RNG seeded deterministically from Seed and the shard index,
	// and shard results are merged in shard order.
	Parallelism int
}

// DefaultMCDraws keeps the Monte-Carlo path comfortably accurate while
// still fast (each draw is a handful of polynomial evaluations).
const DefaultMCDraws = 20000

// mcShardSize is the number of draws per shard. It is a fixed constant —
// not derived from the worker count — so that the draw stream, and hence
// the prediction, does not depend on the degree of parallelism.
const mcShardSize = 4096

// MCPrediction is an empirical distribution of likely running times.
type MCPrediction struct {
	Samples  []float64 // sorted ascending
	MeanVal  float64
	Variance float64
}

// Mean returns the empirical mean.
func (m *MCPrediction) Mean() float64 { return m.MeanVal }

// Sigma returns the empirical standard deviation.
func (m *MCPrediction) Sigma() float64 { return math.Sqrt(m.Variance) }

// Quantile returns the empirical q-quantile, q in (0,1).
func (m *MCPrediction) Quantile(q float64) float64 {
	if len(m.Samples) == 0 {
		return 0
	}
	if q <= 0 {
		return m.Samples[0]
	}
	if q >= 1 {
		return m.Samples[len(m.Samples)-1]
	}
	i := int(q * float64(len(m.Samples)))
	if i >= len(m.Samples) {
		i = len(m.Samples) - 1
	}
	return m.Samples[i]
}

// Prob returns the empirical P(a <= T <= b).
func (m *MCPrediction) Prob(a, b float64) float64 {
	if len(m.Samples) == 0 || b < a {
		return 0
	}
	lo := sort.SearchFloat64s(m.Samples, a)
	hi := sort.SearchFloat64s(m.Samples, b)
	for hi < len(m.Samples) && m.Samples[hi] <= b {
		hi++
	}
	return float64(hi-lo) / float64(len(m.Samples))
}

// PredictMonteCarlo computes the distribution of likely running times by
// direct simulation instead of the analytic normal approximation: it
// draws realizations of the cost units c and the selectivity estimates
// X and evaluates t_q = sum_k sum_c f_kc(X) c for each.
//
// This is the "conceptually simpler" alternative discussed in Section
// 5.2.4 and Appendix B. It needs no normality assumption on the c's and
// no Theorem 1/2-style convergence arguments, but it cannot model the
// correlations between nested selectivity estimates either (their joint
// distribution is unobservable without rerunning the sampling pass), so
// distinct selectivity variables are drawn independently — the analytic
// path's upper bounds therefore dominate the Monte-Carlo variance on
// plans with correlated estimates, which TestMonteCarloVsAnalytic
// verifies.
func (p *Predictor) PredictMonteCarlo(root *engine.Node, est *sample.Estimates, opt MCOptions) (*MCPrediction, error) {
	if opt.Draws <= 0 {
		opt.Draws = DefaultMCDraws
	}
	a, err := p.assemble(root, est)
	if err != nil {
		return nil, err
	}
	// Collect the variables actually referenced by the cost functions.
	varIDs := make(map[int]bool)
	for _, it := range a.items {
		for _, t := range it.terms {
			for i := 0; i < t.NVars; i++ {
				varIDs[t.Vars[i]] = true
			}
		}
	}
	ids := make([]int, 0, len(varIDs))
	for id := range varIDs {
		ids = append(ids, id)
	}
	sort.Ints(ids)

	// Shard the draws across a bounded worker pool. Each shard is a
	// deterministic unit of work — fixed draw range, private RNG seeded
	// from (opt.Seed, shard) — so the merged result is byte-identical
	// regardless of how many workers happen to run them.
	numShards := (opt.Draws + mcShardSize - 1) / mcShardSize
	shards := make([]mcShardResult, numShards)
	workers := opt.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > numShards {
		workers = numShards
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				si := int(next.Add(1)) - 1
				if si >= numShards {
					return
				}
				lo := si * mcShardSize
				hi := lo + mcShardSize
				if hi > opt.Draws {
					hi = opt.Draws
				}
				shards[si] = p.mcShard(a, ids, mcShardSeed(opt.Seed, si), hi-lo)
			}
		}()
	}
	wg.Wait()

	// Merge in shard order: concatenate the samples and combine the
	// moment accumulators pairwise (Chan et al.'s parallel variance
	// update), keeping the reduction order fixed so floating-point
	// results do not depend on worker scheduling.
	samples := make([]float64, 0, opt.Draws)
	var acc mcAccum
	for _, sh := range shards {
		samples = append(samples, sh.samples...)
		acc.merge(sh.acc)
	}
	sort.Float64s(samples)
	return &MCPrediction{Samples: samples, MeanVal: acc.mean, Variance: acc.variance()}, nil
}

// mcShardResult is one shard's samples and running moments.
type mcShardResult struct {
	samples []float64
	acc     mcAccum
}

// mcShard draws `draws` realizations with a private RNG. The draw
// vector is a dense scratch slice indexed by node ID (IDs are dense
// preorder ordinals from Finalize), reused across all draws of the
// shard, so the inner loop does slice indexing instead of map lookups
// and allocates nothing per draw.
func (p *Predictor) mcShard(a *assembly, ids []int, seed int64, draws int) mcShardResult {
	rng := rand.New(rand.NewSource(seed))
	maxID := -1
	if len(ids) > 0 {
		maxID = ids[len(ids)-1] // ids is sorted ascending
	}
	draw := make([]float64, maxID+1)
	res := mcShardResult{samples: make([]float64, 0, draws)}
	for d := 0; d < draws; d++ {
		// Selectivities: truncated normal draws in [0, 1].
		for _, id := range ids {
			x := a.vars[id]
			v := x.Mu
			if x.Sigma > 0 && p.Cfg.Variant != NoVarX {
				v = x.Mu + x.Sigma*rng.NormFloat64()
				if v < 0 {
					v = 0
				}
				if v > 1 {
					v = 1
				}
			}
			draw[id] = v
		}
		// Cost units: truncated-positive normal draws.
		var c [5]float64
		for u := 0; u < 5; u++ {
			cu := p.Units[u]
			v := cu.Mu
			if cu.Sigma > 0 && p.Cfg.Variant != NoVarC {
				v = cu.Mu + cu.Sigma*rng.NormFloat64()
				if v < 0 {
					v = 0
				}
			}
			c[u] = v
		}
		var t float64
		for _, it := range a.items {
			t += it.f.EvalVec(draw) * c[it.unit]
		}
		res.samples = append(res.samples, t)
		res.acc.add(t)
	}
	return res
}

// mcShardSeed derives the per-shard RNG seed from the master seed and
// shard index via a splitmix64-style mix, so neighboring shards get
// well-separated streams.
func mcShardSeed(seed int64, shard int) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*uint64(shard+1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// mcAccum accumulates count, mean, and the sum of squared deviations M2
// (Welford's online update), and merges with another accumulator via
// Chan et al.'s parallel combination rule. Shards accumulate privately
// and are merged in a fixed order, which is both numerically stabler
// than naive sum/sum-of-squares and independent of worker scheduling.
type mcAccum struct {
	n    float64
	mean float64
	m2   float64
}

func (a *mcAccum) add(x float64) {
	a.n++
	d := x - a.mean
	a.mean += d / a.n
	a.m2 += d * (x - a.mean)
}

func (a *mcAccum) merge(b mcAccum) {
	if b.n == 0 {
		return
	}
	if a.n == 0 {
		*a = b
		return
	}
	n := a.n + b.n
	d := b.mean - a.mean
	a.mean += d * b.n / n
	a.m2 += b.m2 + d*d*a.n*b.n/n
	a.n = n
}

// variance returns the sample variance (n-1 denominator), 0 for n < 2.
func (a *mcAccum) variance() float64 {
	if a.n < 2 {
		return 0
	}
	v := a.m2 / (a.n - 1)
	if v < 0 {
		v = 0
	}
	return v
}

// CompareAnalytic summarizes how the Monte-Carlo distribution relates to
// an analytic prediction: the ratio of standard deviations and the
// difference of means, both relative to the analytic values.
func (m *MCPrediction) CompareAnalytic(p *Prediction) (sigmaRatio, meanRelDiff float64, err error) {
	if p.Sigma() <= 0 {
		return 0, 0, fmt.Errorf("core: analytic prediction has zero sigma")
	}
	sigmaRatio = m.Sigma() / p.Sigma()
	meanRelDiff = (m.Mean() - p.Mean()) / p.Mean()
	return sigmaRatio, meanRelDiff, nil
}
