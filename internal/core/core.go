// Package core implements the paper's primary contribution: the
// uncertainty-aware query execution time predictor. Given a query plan,
// calibrated cost-unit distributions (Section 3.1), and sampled
// selectivity distributions (Section 3.2), it fits the logical cost
// functions (Section 4) and propagates means, variances, and covariances
// through the additive cost model to produce the distribution of likely
// running times t_q ~ N(E[t_q], Var[t_q]) (Section 5, Algorithms 2-3).
package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/catalog"
	"repro/internal/costmodel"
	"repro/internal/engine"
	"repro/internal/hardware"
	"repro/internal/sample"
	"repro/internal/stats"
)

// Variant selects the predictor configuration of Section 6.3.3.
type Variant int

// Predictor variants: the complete framework and the three simplified
// versions compared in Figure 8.
const (
	All    Variant = iota // complete framework
	NoVarC                // ignore uncertainty in the cost units c
	NoVarX                // ignore uncertainty in the selectivities X
	NoCov                 // ignore covariances between selectivity estimates
)

// String implements fmt.Stringer.
func (v Variant) String() string {
	switch v {
	case All:
		return "All"
	case NoVarC:
		return "NoVar[c]"
	case NoVarX:
		return "NoVar[X]"
	case NoCov:
		return "NoCov"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// Config tunes the predictor.
type Config struct {
	Variant Variant
	// GridW is the number of probe subintervals per variable
	// (Section 4.2); 0 selects costmodel.DefaultGridW.
	GridW int
	// LooseBounds disables the tighter covariance bounds (Theorems 7-10)
	// and falls back to plain Cauchy-Schwarz everywhere — the B2-only
	// configuration, kept as an ablation of the bound machinery.
	LooseBounds bool
}

// Predictor holds the calibrated state shared across predictions.
type Predictor struct {
	Cat   *catalog.Catalog
	Units [hardware.NumUnits]stats.Normal // calibrated cost units
	Cfg   Config
}

// New constructs a predictor from a catalog and calibrated cost units.
func New(cat *catalog.Catalog, units [hardware.NumUnits]stats.Normal, cfg Config) *Predictor {
	return &Predictor{Cat: cat, Units: units, Cfg: cfg}
}

// OpPrediction is the per-operator share of the prediction.
type OpPrediction struct {
	NodeID int
	Kind   engine.NodeKind
	Mean   float64 // E[t_k]
	Var    float64 // Var[t_k] (same-operator terms only)
}

// Prediction is the distribution of likely running times for one query.
type Prediction struct {
	// Dist is N(E[t_q], Var[t_q]); Dist.Mu is the point estimate the
	// predictor of [48] would return.
	Dist stats.Normal
	// PerOperator breaks the mean and same-operator variance down.
	PerOperator []OpPrediction
	// CovDirect and CovBound split the cross-operator covariance mass
	// into exactly computed terms and upper-bounded terms (Algorithm 3's
	// VarOps vs CovOpsUb).
	CovDirect float64
	CovBound  float64
	// PerUnit breaks E[t_q] down by cost unit: PerUnit[u] is the mean
	// time in seconds attributable to unit u (hardware unit order). The
	// serving layer's feedback loop uses this to attribute calibration
	// drift to the unit dominating each query.
	PerUnit [hardware.NumUnits]float64
}

// Mean returns the point estimate E[t_q].
func (p *Prediction) Mean() float64 { return p.Dist.Mu }

// Sigma returns the standard deviation of the predicted distribution.
func (p *Prediction) Sigma() float64 { return p.Dist.Sigma }

// Interval returns the central interval containing probability mass q.
func (p *Prediction) Interval(q float64) (lo, hi float64) { return p.Dist.Interval(q) }

// DominantUnit returns the cost unit contributing the most to the
// predicted mean (ties break toward the lower unit index).
func (p *Prediction) DominantUnit() hardware.Unit {
	best := 0
	for u := 1; u < hardware.NumUnits; u++ {
		if p.PerUnit[u] > p.PerUnit[best] {
			best = u
		}
	}
	return hardware.Unit(best)
}

// varInfo is everything the covariance engine needs about one
// selectivity random variable (one scan/join/aggregate operator).
type varInfo struct {
	node *engine.Node
	dist stats.Normal
	// leafComp / leafN as produced by the sampling estimator; leafComp
	// restricted sums give the S^2_{rho}(m,n) bounds of Theorem 7.
	leafComp map[int]float64
	leafN    map[int]int
	// leafKeys is leafComp's key set sorted ascending: restricted sums
	// iterate it instead of the map, so their accumulation order — and
	// floating-point rounding — never depends on map iteration order.
	leafKeys []int
	// numLeaves is K, the number of leaf relations of the operator.
	numLeaves int
}

// item is one (operator, cost-unit) component of t_q: a fitted cost
// function with its distribution under the selectivity variables.
type item struct {
	opID  int
	kind  engine.NodeKind
	unit  int
	f     *costmodel.Func
	mean  float64
	vr    float64
	terms []costmodel.Term
}

// assembly is the fitted state shared by the analytic and Monte-Carlo
// prediction paths.
type assembly struct {
	items []item
	vars  map[int]stats.Normal
	info  map[int]*varInfo
	order []int // node IDs in plan preorder
}

// assemble runs the front half of Algorithm 2: collect the selectivity
// variables and fit every operator's per-unit cost functions.
func (p *Predictor) assemble(root *engine.Node, est *sample.Estimates) (*assembly, error) {
	nodes := root.Nodes()

	vars := make(map[int]stats.Normal)
	info := make(map[int]*varInfo)
	selfRho := make(map[int]float64)
	for _, n := range nodes {
		e, err := est.Get(n)
		if err != nil {
			return nil, err
		}
		selfRho[n.ID] = e.Rho
		v := e.Var
		lc := e.LeafComp
		if p.Cfg.Variant == NoVarX {
			v = 0
			lc = map[int]float64{}
		}
		keys := make([]int, 0, len(lc))
		for k := range lc {
			keys = append(keys, k)
		}
		sort.Ints(keys)
		vars[n.ID] = stats.NormalFromVar(e.Rho, v)
		info[n.ID] = &varInfo{
			node:      n,
			dist:      vars[n.ID],
			leafComp:  lc,
			leafN:     e.LeafN,
			leafKeys:  keys,
			numLeaves: len(n.LeafTables),
		}
	}

	models, err := costmodel.BuildModels(root, p.Cat, selfRho)
	if err != nil {
		return nil, err
	}
	a := &assembly{vars: vars, info: info}
	for _, n := range nodes {
		funcs, err := costmodel.FitNode(models[n.ID], vars, p.Cfg.GridW)
		if err != nil {
			return nil, err
		}
		a.order = append(a.order, n.ID)
		for ui := 0; ui < hardware.NumUnits; ui++ {
			f := funcs[ui]
			if f.IsZero() {
				continue
			}
			m, v := f.Dist(vars)
			a.items = append(a.items, item{
				opID: n.ID, kind: n.Kind, unit: ui, f: f,
				mean: m, vr: v, terms: f.Terms(),
			})
		}
	}
	return a, nil
}

// Predict computes the distribution of likely running times for a
// finalized plan given its sampled selectivity estimates.
func (p *Predictor) Predict(root *engine.Node, est *sample.Estimates) (*Prediction, error) {
	a, err := p.assemble(root, est)
	if err != nil {
		return nil, err
	}
	items, info, order := a.items, a.info, a.order
	perOp := make(map[int]*OpPrediction)
	for _, n := range root.Nodes() {
		perOp[n.ID] = &OpPrediction{NodeID: n.ID, Kind: n.Kind}
	}

	// Unit moments, honoring the NoVar[c] ablation.
	var ec, vc [hardware.NumUnits]float64
	for i := 0; i < hardware.NumUnits; i++ {
		ec[i] = p.Units[i].Mu
		if p.Cfg.Variant != NoVarC {
			vc[i] = p.Units[i].Var()
		}
	}

	// E[t_q] = sum_k sum_c E[f_kc] E[c]; per-operator and per-unit means
	// alongside.
	var mean float64
	var perUnit [hardware.NumUnits]float64
	for _, it := range items {
		t := it.mean * ec[it.unit]
		mean += t
		perOp[it.opID].Mean += t
		perUnit[it.unit] += t
	}

	// Var[t_q] = sum over all ordered pairs of Cov(t_i, t_j)
	// (Section 5.3). Same-item terms give Var[f c]; cross terms combine
	// exact covariances and upper bounds.
	var variance, covDirect, covBound float64
	for i := range items {
		a := items[i]
		// Var[f c] = E[f]^2 Var[c] + E[c]^2 Var[f] + Var[c] Var[f].
		v := a.mean*a.mean*vc[a.unit] + ec[a.unit]*ec[a.unit]*a.vr + vc[a.unit]*a.vr
		variance += v
		perOp[a.opID].Var += v
		for j := i + 1; j < len(items); j++ {
			b := items[j]
			covF, bound := p.covFuncs(a.terms, b.terms, info)
			var contrib float64
			if a.unit == b.unit {
				// Cov(f c, f' c) = E[c]^2 Cov + Var[c](E[f]E[f'] + Cov).
				contrib = ec[a.unit]*ec[a.unit]*covF +
					vc[a.unit]*(a.mean*b.mean+covF)
			} else {
				// Independent units: Cov(f c, f' c') = E[c]E[c'] Cov(f,f').
				contrib = ec[a.unit] * ec[b.unit] * covF
			}
			variance += 2 * contrib
			if bound {
				covBound += 2 * contrib
			} else {
				covDirect += 2 * contrib
			}
		}
	}
	if variance < 0 {
		variance = 0
	}

	pred := &Prediction{
		Dist:      stats.NormalFromVar(mean, variance),
		CovDirect: covDirect,
		CovBound:  covBound,
		PerUnit:   perUnit,
	}
	for _, id := range order {
		pred.PerOperator = append(pred.PerOperator, *perOp[id])
	}
	return pred, nil
}

// covFuncs returns Cov(f_a, f_b) between two cost functions (as term
// lists) and whether any upper bound was involved. sameOp indicates the
// functions belong to the same operator (their variables are identical
// or independent, so everything is exact).
func (p *Predictor) covFuncs(ta, tb []costmodel.Term, info map[int]*varInfo) (cov float64, bounded bool) {
	for _, a := range ta {
		for _, b := range tb {
			c, bnd := p.covTerms(a, b, info)
			cov += c
			if bnd {
				bounded = true
			}
		}
	}
	return cov, bounded
}

// covTerms computes or bounds Cov(a, b) for two monomials.
func (p *Predictor) covTerms(a, b costmodel.Term, info map[int]*varInfo) (float64, bool) {
	if a.NVars == 0 || b.NVars == 0 || a.Coef == 0 || b.Coef == 0 {
		return 0, false
	}
	// Classify cross-variable pairs: exact when every pair of distinct
	// variables across the two terms is independent (Lemma 3: dependence
	// only along ancestor-descendant paths).
	dependentUnknown := false
	for i := 0; i < a.NVars; i++ {
		for j := 0; j < b.NVars; j++ {
			va, vb := a.Vars[i], b.Vars[j]
			if va == vb {
				continue
			}
			ia, ib := info[va], info[vb]
			if engine.IsDescendant(ia.node, ib.node) || engine.IsDescendant(ib.node, ia.node) {
				dependentUnknown = true
			}
		}
	}
	if !dependentUnknown {
		return exactTermCov(a, b, info), false
	}
	if p.Cfg.Variant == NoCov {
		return 0, false
	}
	return p.boundTermCov(a, b, info), true
}

// exactTermCov factors E[ab] per variable (independent across distinct
// variables), using normal moments up to order 4.
func exactTermCov(a, b costmodel.Term, info map[int]*varInfo) float64 {
	// Joint power per variable, accumulated in term order — NOT via a
	// map — so the product's floating-point rounding (and hence the
	// predicted sigma) is bit-identical from run to run.
	var ids, pows [4]int
	n := 0
	add := func(v, p int) {
		for i := 0; i < n; i++ {
			if ids[i] == v {
				pows[i] += p
				return
			}
		}
		ids[n], pows[n] = v, p
		n++
	}
	for i := 0; i < a.NVars; i++ {
		add(a.Vars[i], a.Pows[i])
	}
	for i := 0; i < b.NVars; i++ {
		add(b.Vars[i], b.Pows[i])
	}
	eab := a.Coef * b.Coef
	for i := 0; i < n; i++ {
		eab *= info[ids[i]].dist.Moment(pows[i])
	}
	return eab - termMean(a, info)*termMean(b, info)
}

func termMean(t costmodel.Term, info map[int]*varInfo) float64 {
	m := t.Coef
	for i := 0; i < t.NVars; i++ {
		m *= info[t.Vars[i]].dist.Moment(t.Pows[i])
	}
	return m
}

// termVar returns Var[term] with the term's own variables mutually
// independent.
func termVar(t costmodel.Term, info map[int]*varInfo) float64 {
	if t.NVars == 0 {
		return 0
	}
	e2 := t.Coef * t.Coef
	for i := 0; i < t.NVars; i++ {
		e2 *= info[t.Vars[i]].dist.Moment(2 * t.Pows[i])
	}
	m := termMean(t, info)
	v := e2 - m*m
	if v < 0 {
		v = 0
	}
	return v
}

// boundTermCov returns an upper bound for |Cov(a, b)| when the terms
// involve correlated selectivity estimates from nested operators
// (Section 5.3.2 and Appendix A.7/A.8). The bound is the minimum of the
// Cauchy-Schwarz bound and, where the term shapes allow, the tighter
// sample-variance (Theorem 7) and population (Theorems 8-10) bounds.
func (p *Predictor) boundTermCov(a, b costmodel.Term, info map[int]*varInfo) float64 {
	// Cauchy-Schwarz: |Cov| <= sqrt(Var[a] Var[b]) — always applicable.
	bound := math.Sqrt(termVar(a, info) * termVar(b, info))

	// For single-variable terms, tighter bounds are available.
	if a.NVars == 1 && b.NVars == 1 && !p.Cfg.LooseBounds {
		ia, ib := info[a.Vars[0]], info[b.Vars[0]]
		coef := math.Abs(a.Coef * b.Coef)
		m, n := sharedLeaves(ia, ib)
		if n > 0 && m > 0 {
			switch {
			case a.Pows[0] == 1 && b.Pows[0] == 1:
				// Theorem 7: |Cov(rho, rho')| <= sqrt(S^2(m,n) S'^2(m,n)),
				// realized by restricting the leaf variance components of
				// each estimate to the shared relations.
				if t7 := coef * math.Sqrt(restrictedVar(ia, ib)*restrictedVar(ib, ia)); t7 < bound {
					bound = t7
				}
				// Theorem 8: f(n,m) g(rho) g(rho').
				f := 1 - math.Pow(1-1/float64(n), float64(m))
				if t8 := coef * f * gRho(ia.dist.Mu) * gRho(ib.dist.Mu); t8 < bound {
					bound = t8
				}
			case a.Pows[0] == 2 && b.Pows[0] == 2:
				// Theorem 9.
				f := theorem9F(n, m, ia.numLeaves, ib.numLeaves)
				if t9 := coef * f * hRho(ia.dist.Mu) * hRho(ib.dist.Mu); t9 < bound {
					bound = t9
				}
			default:
				// Theorem 10 (one squared, one linear).
				sq, ln := ia, ib
				if b.Pows[0] == 2 {
					sq, ln = ib, ia
				}
				f := theorem10F(n, m, sq.numLeaves, ln.numLeaves)
				if t10 := coef * f * hRho(sq.dist.Mu) * gRho(ln.dist.Mu); t10 < bound {
					bound = t10
				}
			}
		}
	}
	return bound
}

// sharedLeaves returns m = |R ∩ R'| and the smallest shared sample size.
func sharedLeaves(a, b *varInfo) (m, n int) {
	n = math.MaxInt
	for k := range a.leafN {
		if nk, ok := b.leafN[k]; ok {
			m++
			if nk < n {
				n = nk
			}
			if ak := a.leafN[k]; ak < n {
				n = ak
			}
		}
	}
	if m == 0 {
		n = 0
	}
	return m, n
}

// restrictedVar returns S^2_rho(m, n): the variance components of `of`
// restricted to the leaf relations it shares with `with` (Appendix A.7).
func restrictedVar(of, with *varInfo) float64 {
	var s float64
	for _, k := range of.leafKeys {
		if _, ok := with.leafN[k]; ok {
			s += of.leafComp[k]
		}
	}
	return s
}

func gRho(rho float64) float64 {
	v := rho * (1 - rho)
	if v <= 0 {
		return 0
	}
	return math.Sqrt(v)
}

func hRho(rho float64) float64 {
	v := rho * (1 - rho) * (rho - rho*rho + 1)
	if v <= 0 {
		return 0
	}
	return math.Sqrt(v)
}

// theorem9F is the f(n,m) factor of Theorem 9 for Cov(rho^2, rho'^2).
func theorem9F(n, m, k, kp int) float64 {
	fn := float64(n)
	lead := 1 - math.Pow(1-1/fn, float64(k+kp-m))*
		math.Pow(1-2/fn, float64(m))*math.Pow(1-3/fn, float64(m))
	return lead * math.Sqrt(1-math.Pow(1-1/fn, float64(k))) *
		math.Sqrt(1-math.Pow(1-1/fn, float64(kp)))
}

// theorem10F is the f(n,m) factor of Theorem 10 for Cov(rho^2, rho').
func theorem10F(n, m, k, kp int) float64 {
	fn := float64(n)
	lead := 1 - math.Pow(1-1/fn, float64(k))*math.Pow(1-2/fn, float64(m))
	return lead * math.Sqrt(1-math.Pow(1-1/fn, float64(k))) *
		math.Sqrt(1-math.Pow(1-1/fn, float64(kp)))
}
