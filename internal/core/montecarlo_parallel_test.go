package core

import (
	"math"
	"math/rand"
	"testing"
)

// TestMonteCarloIdenticalAcrossParallelism is the determinism contract
// of the sharded Monte-Carlo path: because draws are partitioned into
// fixed-size shards with per-shard RNGs and merged in shard order, the
// prediction must be byte-identical for every worker count.
func TestMonteCarloIdenticalAcrossParallelism(t *testing.T) {
	f := newFixture(t, All)
	plan := threeWayQuery()
	est := f.estimates(t, plan, 0.05, 61)
	base, err := f.pred.PredictMonteCarlo(plan, est, MCOptions{Draws: 3 * mcShardSize, Seed: 62, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8, 16} {
		mc, err := f.pred.PredictMonteCarlo(plan, est, MCOptions{Draws: 3 * mcShardSize, Seed: 62, Parallelism: workers})
		if err != nil {
			t.Fatal(err)
		}
		if mc.MeanVal != base.MeanVal || mc.Variance != base.Variance {
			t.Errorf("parallelism %d: moments (%v, %v) != serial (%v, %v)",
				workers, mc.MeanVal, mc.Variance, base.MeanVal, base.Variance)
		}
		if len(mc.Samples) != len(base.Samples) {
			t.Fatalf("parallelism %d: %d samples, serial %d", workers, len(mc.Samples), len(base.Samples))
		}
		for i := range mc.Samples {
			if mc.Samples[i] != base.Samples[i] {
				t.Fatalf("parallelism %d: sample %d differs: %v != %v",
					workers, i, mc.Samples[i], base.Samples[i])
			}
		}
		for _, q := range []float64{0.01, 0.25, 0.5, 0.75, 0.99} {
			if mc.Quantile(q) != base.Quantile(q) {
				t.Errorf("parallelism %d: quantile %v differs", workers, q)
			}
		}
	}
}

// TestMonteCarloShardedMomentsMatchDirect checks the moment-merge math
// against a direct single-pass computation over the merged sample slice:
// the mean and variance reported by the sharded accumulators must agree
// with textbook formulas applied to MCPrediction.Samples.
func TestMonteCarloShardedMomentsMatchDirect(t *testing.T) {
	f := newFixture(t, All)
	plan := joinQuery()
	est := f.estimates(t, plan, 0.05, 63)
	mc, err := f.pred.PredictMonteCarlo(plan, est, MCOptions{Draws: 2*mcShardSize + 77, Seed: 64})
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, s := range mc.Samples {
		sum += s
	}
	mean := sum / float64(len(mc.Samples))
	var ss float64
	for _, s := range mc.Samples {
		d := s - mean
		ss += d * d
	}
	variance := ss / float64(len(mc.Samples)-1)
	if rel := math.Abs(mc.MeanVal-mean) / mean; rel > 1e-12 {
		t.Errorf("merged mean %v vs direct %v (rel %v)", mc.MeanVal, mean, rel)
	}
	if rel := math.Abs(mc.Variance-variance) / variance; rel > 1e-9 {
		t.Errorf("merged variance %v vs direct %v (rel %v)", mc.Variance, variance, rel)
	}
}

// TestMCAccumMergeProperty is the property-style test of the accumulator
// algebra: for random data split into k chunks, merging per-chunk
// accumulators must reproduce the single-accumulator result for every k.
func TestMCAccumMergeProperty(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		r := rand.New(rand.NewSource(seed))
		n := 1000 + r.Intn(4000)
		xs := make([]float64, n)
		scale := math.Exp(float64(seed - 3)) // vary magnitude across seeds
		for i := range xs {
			xs[i] = scale * (10 + r.NormFloat64())
		}
		var whole mcAccum
		for _, x := range xs {
			whole.add(x)
		}
		for _, k := range []int{1, 2, 7, 64, n} {
			parts := make([]mcAccum, k)
			for i, x := range xs {
				parts[i*k/n].add(x)
			}
			var merged mcAccum
			for _, p := range parts {
				merged.merge(p)
			}
			if merged.n != whole.n {
				t.Fatalf("seed %d k %d: merged n %v != %v", seed, k, merged.n, whole.n)
			}
			if rel := math.Abs(merged.mean-whole.mean) / math.Abs(whole.mean); rel > 1e-12 {
				t.Errorf("seed %d k %d: mean rel err %v", seed, k, rel)
			}
			if rel := math.Abs(merged.variance()-whole.variance()) / whole.variance(); rel > 1e-10 {
				t.Errorf("seed %d k %d: variance rel err %v", seed, k, rel)
			}
		}
	}
}

// TestMCAccumEdgeCases pins the degenerate behaviors the merge must
// handle: empty accumulators on either side, single observations, and
// constant (zero-variance) data.
func TestMCAccumEdgeCases(t *testing.T) {
	var empty mcAccum
	if v := empty.variance(); v != 0 {
		t.Errorf("empty variance = %v", v)
	}

	var a mcAccum
	a.add(3)
	if a.variance() != 0 || a.mean != 3 {
		t.Errorf("single-element accum: mean %v var %v", a.mean, a.variance())
	}

	var b mcAccum
	b.merge(a) // merge into empty
	if b.mean != 3 || b.n != 1 {
		t.Errorf("merge into empty: %+v", b)
	}
	b.merge(empty) // merge empty into non-empty
	if b.mean != 3 || b.n != 1 {
		t.Errorf("merge of empty changed accum: %+v", b)
	}

	var c mcAccum
	for i := 0; i < 100; i++ {
		c.add(7)
	}
	if c.variance() != 0 {
		t.Errorf("constant data variance = %v", c.variance())
	}
	var c2 mcAccum
	for i := 0; i < 50; i++ {
		c2.add(7)
	}
	c.merge(c2)
	if c.variance() != 0 || c.mean != 7 {
		t.Errorf("merged constant data: mean %v var %v", c.mean, c.variance())
	}
}
