package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/calibrate"
	"repro/internal/catalog"
	"repro/internal/datagen"
	"repro/internal/engine"
	"repro/internal/hardware"
	"repro/internal/sample"
	"repro/internal/stats"
)

type fixture struct {
	db   *engine.DB
	cat  *catalog.Catalog
	hw   *hardware.Profile
	pred *Predictor
}

func newFixture(t *testing.T, variant Variant) *fixture {
	t.Helper()
	db := datagen.Generate(datagen.Config{ScaleFactor: 0.002, Seed: 1})
	cat := catalog.Build(db)
	hw := hardware.PC1()
	cal, err := calibrate.Run(hw, calibrate.DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{
		db:  db,
		cat: cat,
		hw:  hw,
		pred: New(cat, cal.Units, Config{
			Variant: variant,
		}),
	}
}

func (f *fixture) predict(t *testing.T, plan *engine.Node, ratio float64, seed int64) (*Prediction, *engine.OpResult) {
	t.Helper()
	sdb, err := sample.Build(f.db, ratio, 2, seed)
	if err != nil {
		t.Fatal(err)
	}
	est, err := sample.Estimate(plan, sdb, f.cat)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := f.pred.Predict(plan, est)
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.Run(f.db, plan)
	if err != nil {
		t.Fatal(err)
	}
	return pred, res
}

func scanQuery() *engine.Node {
	p := &engine.Node{Kind: engine.SeqScan, Table: "lineitem",
		Preds: []engine.Predicate{{Col: "l_quantity", Op: engine.Le, Lo: 25}}}
	p.Finalize()
	return p
}

func joinQuery() *engine.Node {
	p := &engine.Node{
		Kind: engine.HashJoin, LeftCol: "o_orderkey", RightCol: "l_orderkey",
		Left: &engine.Node{Kind: engine.SeqScan, Table: "orders",
			Preds: []engine.Predicate{{Col: "o_orderdate", Op: engine.Le, Lo: datagen.DateDays / 2}}},
		Right: &engine.Node{Kind: engine.SeqScan, Table: "lineitem"},
	}
	p.Finalize()
	return p
}

func threeWayQuery() *engine.Node {
	p := &engine.Node{
		Kind: engine.HashJoin, LeftCol: "l_suppkey", RightCol: "s_suppkey",
		Left: &engine.Node{
			Kind: engine.HashJoin, LeftCol: "o_orderkey", RightCol: "l_orderkey",
			Left: &engine.Node{Kind: engine.SeqScan, Table: "orders",
				Preds: []engine.Predicate{{Col: "o_totalprice", Op: engine.Le, Lo: 30000}}},
			Right: &engine.Node{Kind: engine.SeqScan, Table: "lineitem"},
		},
		Right: &engine.Node{Kind: engine.SeqScan, Table: "supplier"},
	}
	p.Finalize()
	return p
}

func TestPredictScanMeanTracksActual(t *testing.T) {
	f := newFixture(t, All)
	plan := scanQuery()
	pred, res := f.predict(t, plan, 0.05, 3)
	actual := f.hw.MeasurePlan(res, rand.New(rand.NewSource(4)))
	if pred.Mean() <= 0 || pred.Sigma() <= 0 {
		t.Fatalf("degenerate prediction %v", pred.Dist)
	}
	rel := math.Abs(pred.Mean()-actual) / actual
	if rel > 0.5 {
		t.Errorf("scan: predicted %v vs actual %v (rel %.2f)", pred.Mean(), actual, rel)
	}
}

func TestPredictJoinMeanTracksActual(t *testing.T) {
	f := newFixture(t, All)
	plan := joinQuery()
	pred, res := f.predict(t, plan, 0.05, 5)
	actual := f.hw.MeasurePlan(res, rand.New(rand.NewSource(6)))
	rel := math.Abs(pred.Mean()-actual) / actual
	if rel > 1.0 {
		t.Errorf("join: predicted %v vs actual %v (rel %.2f)", pred.Mean(), actual, rel)
	}
}

func TestPerOperatorMeansSumToTotal(t *testing.T) {
	f := newFixture(t, All)
	plan := threeWayQuery()
	pred, _ := f.predict(t, plan, 0.05, 7)
	var sum float64
	for _, op := range pred.PerOperator {
		sum += op.Mean
	}
	if math.Abs(sum-pred.Mean()) > 1e-9*math.Max(1, pred.Mean()) {
		t.Errorf("per-operator means sum %v != total %v", sum, pred.Mean())
	}
	if len(pred.PerOperator) != len(plan.Nodes()) {
		t.Errorf("per-operator entries %d, want %d", len(pred.PerOperator), len(plan.Nodes()))
	}
}

func TestVarianceShrinksWithSampleSize(t *testing.T) {
	f := newFixture(t, All)
	plan := joinQuery()
	// Average over several sample seeds to smooth sampling noise.
	avgVar := func(ratio float64) float64 {
		var s float64
		for seed := int64(0); seed < 5; seed++ {
			pred, _ := f.predict(t, plan, ratio, 100+seed)
			s += pred.Dist.Var()
		}
		return s / 5
	}
	small, large := avgVar(0.01), avgVar(0.15)
	if large >= small {
		t.Errorf("variance did not shrink: SR=0.01 -> %v, SR=0.15 -> %v", small, large)
	}
}

func TestVariantOrdering(t *testing.T) {
	// Dropping a source of uncertainty can only reduce (or keep) the
	// predicted variance: Var(All) >= Var(NoVarC), Var(NoVarX), Var(NoCov).
	preds := make(map[Variant]float64)
	for _, v := range []Variant{All, NoVarC, NoVarX, NoCov} {
		f := newFixture(t, v)
		plan := threeWayQuery()
		pred, _ := f.predict(t, plan, 0.03, 11)
		preds[v] = pred.Dist.Var()
	}
	if preds[All] < preds[NoVarC] || preds[All] < preds[NoVarX] || preds[All] < preds[NoCov] {
		t.Errorf("variant variances: %v", preds)
	}
	if preds[NoVarC] <= 0 && preds[NoVarX] <= 0 {
		t.Error("both ablations degenerate; expected at least one positive")
	}
}

func TestNoVarCKillsUnitVariance(t *testing.T) {
	// With deterministic selectivities AND NoVarC, variance must be ~0.
	f := newFixture(t, NoVarC)
	f.pred.Cfg.Variant = NoVarC
	plan := scanQuery()
	// A pure seq scan has constant cost functions: all X-variance is
	// irrelevant, so NoVarC alone should zero the variance.
	pred, _ := f.predict(t, plan, 0.05, 13)
	if pred.Dist.Var() > 1e-18 {
		t.Errorf("NoVarC seq-scan variance = %v, want ~0", pred.Dist.Var())
	}
}

func TestMeansAgreeAcrossVariants(t *testing.T) {
	// NoVarC and NoCov change only the variance, never the point
	// estimate. NoVarX may shift the mean slightly because E[X^2] and
	// E[Xl*Xr] lose their second-moment corrections.
	var means []float64
	for _, v := range []Variant{All, NoVarC, NoCov, NoVarX} {
		f := newFixture(t, v)
		plan := joinQuery()
		pred, _ := f.predict(t, plan, 0.05, 17)
		means = append(means, pred.Mean())
	}
	for i := 1; i < 3; i++ {
		if math.Abs(means[i]-means[0]) > 1e-6*means[0] {
			t.Errorf("means differ across variants: %v", means)
		}
	}
	if math.Abs(means[3]-means[0]) > 0.1*means[0] {
		t.Errorf("NoVarX mean %v too far from All mean %v", means[3], means[0])
	}
}

func TestPredictionDeterministic(t *testing.T) {
	f := newFixture(t, All)
	plan := threeWayQuery()
	p1, _ := f.predict(t, plan, 0.05, 19)
	p2, _ := f.predict(t, plan, 0.05, 19)
	if p1.Dist != p2.Dist {
		t.Errorf("predictions differ: %v vs %v", p1.Dist, p2.Dist)
	}
}

func TestCovarianceBoundNonNegative(t *testing.T) {
	f := newFixture(t, All)
	plan := threeWayQuery()
	pred, _ := f.predict(t, plan, 0.03, 23)
	if pred.CovBound < 0 {
		t.Errorf("covariance bound mass %v < 0", pred.CovBound)
	}
}

func TestNoCovNeverExceedsAll(t *testing.T) {
	fAll := newFixture(t, All)
	fNoCov := newFixture(t, NoCov)
	plan := threeWayQuery()
	pAll, _ := fAll.predict(t, plan, 0.03, 29)
	pNoCov, _ := fNoCov.predict(t, plan, 0.03, 29)
	if pNoCov.Dist.Var() > pAll.Dist.Var()+1e-18 {
		t.Errorf("NoCov variance %v exceeds All %v", pNoCov.Dist.Var(), pAll.Dist.Var())
	}
}

func TestIntervalAndAccessors(t *testing.T) {
	f := newFixture(t, All)
	plan := joinQuery()
	pred, _ := f.predict(t, plan, 0.05, 31)
	lo, hi := pred.Interval(0.95)
	if lo >= hi || hi <= pred.Mean() || lo >= pred.Mean() {
		t.Errorf("interval [%v, %v] around mean %v", lo, hi, pred.Mean())
	}
	if pred.Sigma() != pred.Dist.Sigma {
		t.Error("Sigma accessor mismatch")
	}
}

// Calibration-style check: over repeated sample draws, the spread of the
// point estimates should be on the same order as the predicted sigma
// (the "self-awareness" the paper describes, Section 6.3.2 baseline).
func TestPredictedSigmaTracksEstimateSpread(t *testing.T) {
	f := newFixture(t, NoVarC) // isolate the selectivity-driven variance
	plan := joinQuery()
	var means, sigmas []float64
	for seed := int64(0); seed < 25; seed++ {
		pred, _ := f.predict(t, plan, 0.02, 200+seed)
		means = append(means, pred.Mean())
		sigmas = append(sigmas, pred.Sigma())
	}
	spread := stats.StdDev(means)
	avgSigma := stats.Mean(sigmas)
	if avgSigma <= 0 || spread <= 0 {
		t.Fatalf("degenerate: spread=%v sigma=%v", spread, avgSigma)
	}
	ratio := avgSigma / spread
	if ratio < 0.2 || ratio > 5 {
		t.Errorf("predicted sigma %v vs estimate spread %v (ratio %v)",
			avgSigma, spread, ratio)
	}
}

func TestPredictWithAggregatePlan(t *testing.T) {
	f := newFixture(t, All)
	plan := &engine.Node{Kind: engine.Aggregate, GroupCol: "l_returnflag",
		Left: &engine.Node{Kind: engine.Sort,
			Left: &engine.Node{Kind: engine.SeqScan, Table: "lineitem",
				Preds: []engine.Predicate{{Col: "l_shipdate", Op: engine.Le, Lo: 1500}}}}}
	plan.Finalize()
	pred, res := f.predict(t, plan, 0.05, 37)
	actual := f.hw.MeasurePlan(res, rand.New(rand.NewSource(38)))
	if pred.Mean() <= 0 {
		t.Fatal("non-positive mean")
	}
	rel := math.Abs(pred.Mean()-actual) / actual
	if rel > 1.0 {
		t.Errorf("aggregate plan: predicted %v vs actual %v", pred.Mean(), actual)
	}
}

func TestVariantStrings(t *testing.T) {
	want := map[Variant]string{All: "All", NoVarC: "NoVar[c]", NoVarX: "NoVar[X]", NoCov: "NoCov"}
	for v, s := range want {
		if v.String() != s {
			t.Errorf("%d.String() = %s, want %s", int(v), v.String(), s)
		}
	}
}
