package sample

import (
	"math"
	"sort"

	"repro/internal/catalog"
	"repro/internal/engine"
)

// EstimateHistogram is an alternative selectivity-distribution estimator
// built on the catalog's equi-depth histograms instead of samples. The
// paper names histogram-based estimators as interesting future work
// (Section 3.2); this implementation models the estimate's uncertainty
// from the histogram's resolution:
//
//   - A range predicate's cumulative-fraction estimate is exact up to
//     the position of the value inside one bucket, i.e. an error that is
//     uniform on ±1/(2B) for B buckets, giving variance (1/B)^2 / 12 per
//     probed boundary.
//   - A join's selectivity factor 1/max(d_l, d_r) relies on the
//     containment and uniformity assumptions; its error is modeled with
//     a configurable relative standard deviation (default 50%), the
//     empirical ballpark for System-R style join estimates.
//
// No sampling pass is run, so there are no leaf variance components and
// no covariance information — exactly the trade-off the paper's
// sampling-based design avoids. The estimator exists to make that
// comparison measurable (see BenchmarkAblationEstimators).
type HistogramOpts struct {
	// JoinRelSigma is the relative standard deviation assigned to join
	// selectivity factors; 0 selects DefaultJoinRelSigma.
	JoinRelSigma float64
}

// DefaultJoinRelSigma is the default relative uncertainty of a
// histogram-era join selectivity estimate.
const DefaultJoinRelSigma = 0.5

// EstimateHistogram computes per-operator selectivity distributions for
// the plan from catalog statistics alone.
func EstimateHistogram(root *engine.Node, cat *catalog.Catalog, opts HistogramOpts) (*Estimates, error) {
	if opts.JoinRelSigma <= 0 {
		opts.JoinRelSigma = DefaultJoinRelSigma
	}
	est := &Estimates{ByID: make(map[int]*OpEstimate)}
	leafCounter := 0

	var walk func(n *engine.Node) (*OpEstimate, error)
	walk = func(n *engine.Node) (*OpEstimate, error) {
		full, err := fullSize(n, cat)
		if err != nil {
			return nil, err
		}
		switch {
		case n.Kind.IsScan():
			ord := leafCounter
			leafCounter++
			ts, err := cat.Table(n.Table)
			if err != nil {
				return nil, err
			}
			rho := 1.0
			variance := 0.0
			for pi := range n.Preds {
				sel, err := cat.PredicateSelectivity(n.Table, &n.Preds[pi])
				if err != nil {
					return nil, err
				}
				boundaries := 1.0
				if n.Preds[pi].Op == engine.Between {
					boundaries = 2
				}
				b := float64(catalog.HistogramBuckets)
				if ts.Rows < catalog.HistogramBuckets {
					b = math.Max(float64(ts.Rows), 1)
				}
				// Error uniform on +-1/(2B) per boundary.
				bv := boundaries * (1 / b) * (1 / b) / 12
				// Combine multiplicatively: Var[XY] ~ mu_x^2 v_y +
				// mu_y^2 v_x for small independent errors.
				variance = rho*rho*bv + sel*sel*variance
				rho *= sel
			}
			e := &OpEstimate{
				Node:     n,
				Rho:      rho,
				Var:      variance,
				LeafComp: map[int]float64{ord: variance},
				LeafN:    map[int]int{ord: ts.Rows},
				EstCard:  rho * full,
			}
			est.ByID[n.ID] = e
			return e, nil
		case n.Kind.IsJoin():
			le, err := walk(n.Left)
			if err != nil {
				return nil, err
			}
			re, err := walk(n.Right)
			if err != nil {
				return nil, err
			}
			f, err := joinFactor(n, cat)
			if err != nil {
				return nil, err
			}
			rho := le.Rho * re.Rho * f
			// Relative variances add for products of (approximately)
			// independent factors.
			rel := relVar(le) + relVar(re) + opts.JoinRelSigma*opts.JoinRelSigma
			variance := rho * rho * rel
			e := &OpEstimate{
				Node:     n,
				Rho:      rho,
				Var:      variance,
				LeafComp: mergeComp(le, re, variance),
				LeafN:    mergeN(le, re),
				EstCard:  rho * full,
			}
			est.ByID[n.ID] = e
			return e, nil
		case n.Kind == engine.Aggregate:
			ce, err := walk(n.Left)
			if err != nil {
				return nil, err
			}
			card := 1.0
			if n.GroupCol != "" {
				tab, _, err := cat.FindColumn(n.GroupCol)
				if err != nil {
					return nil, err
				}
				card, err = cat.GroupCount(tab, n.GroupCol, ce.EstCard)
				if err != nil {
					return nil, err
				}
			}
			rho := 0.0
			if full > 0 {
				rho = card / full
			}
			e := &OpEstimate{
				Node: n, Rho: rho, FromOptimizer: true,
				LeafComp: map[int]float64{}, LeafN: map[int]int{}, EstCard: card,
			}
			est.ByID[n.ID] = e
			return e, nil
		default: // Sort, Materialize
			ce, err := walk(n.Left)
			if err != nil {
				return nil, err
			}
			e := &OpEstimate{
				Node: n, Rho: ce.Rho, Var: ce.Var,
				LeafComp: ce.LeafComp, LeafN: ce.LeafN,
				FromOptimizer: ce.FromOptimizer, EstCard: ce.EstCard,
			}
			est.ByID[n.ID] = e
			return e, nil
		}
	}
	if _, err := walk(root); err != nil {
		return nil, err
	}
	return est, nil
}

func relVar(e *OpEstimate) float64 {
	if e.Rho <= 0 {
		return 0
	}
	return e.Var / (e.Rho * e.Rho)
}

func mergeComp(l, r *OpEstimate, total float64) map[int]float64 {
	// Split the variance across leaves proportionally to the children's
	// shares so restricted sums stay meaningful. Accumulate over sorted
	// leaf keys: summing in map iteration order would reorder the float
	// additions and wobble downstream predictions run to run.
	comp := make(map[int]float64, len(l.LeafComp)+len(r.LeafComp))
	keys := make([]int, 0, len(l.LeafComp)+len(r.LeafComp))
	for _, m := range []map[int]float64{l.LeafComp, r.LeafComp} {
		for k, v := range m {
			if _, ok := comp[k]; !ok {
				keys = append(keys, k)
			}
			comp[k] += v
		}
	}
	sort.Ints(keys)
	childSum := 0.0
	for _, k := range keys {
		childSum += comp[k]
	}
	out := make(map[int]float64, len(keys))
	for _, k := range keys {
		if childSum > 0 {
			out[k] = total * comp[k] / childSum
		} else {
			out[k] = total / float64(len(keys))
		}
	}
	return out
}

func mergeN(l, r *OpEstimate) map[int]int {
	out := make(map[int]int, len(l.LeafN)+len(r.LeafN))
	for k, v := range l.LeafN {
		out[k] = v
	}
	for k, v := range r.LeafN {
		out[k] = v
	}
	return out
}
