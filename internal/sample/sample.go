// Package sample implements the sampling-based selectivity estimator of
// Section 3.2 (Haas et al. [25], as adapted in [48]): tuple-level samples
// of every relation are stored offline as sample tables whose tuples
// carry provenance identifiers; one pass of the query plan over the
// samples yields, for every selection and join operator, both the
// selectivity estimate rho_n and its sample variance S^2_n (Algorithm 1),
// plus the per-relation variance components S^2_{n,m} of Appendix A.7
// needed for covariance upper bounds.
package sample

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"repro/internal/catalog"
	"repro/internal/engine"
)

// Table is a sample of a base relation. The provenance identifier of the
// i-th sample tuple is simply i (the paper's annotation scheme, akin to
// data provenance lineage tracking).
type Table struct {
	Base string
	Rows [][]int64
	cols []string
}

// N returns the sample size n_k.
func (s *Table) N() int { return len(s.Rows) }

// DB holds the offline samples: one or more independent sample tables
// per relation. Multiple copies let the estimator assign a different
// sample to each appearance of a shared relation, preserving the
// independence of sibling selectivities (Lemma 2 and the discussion
// after it).
type DB struct {
	Copies map[string][]*Table
	Ratio  float64
}

// DefaultCopies is the number of independent sample tables kept per
// relation.
const DefaultCopies = 2

// Build draws tuple-level simple random samples (without replacement) of
// every table at the given sampling ratio. At least minRows tuples are
// kept per sample so tiny dimension tables remain estimable.
func Build(db *engine.DB, ratio float64, copies int, seed int64) (*DB, error) {
	if ratio <= 0 || ratio > 1 {
		return nil, fmt.Errorf("sample: ratio %v out of (0,1]", ratio)
	}
	if copies <= 0 {
		copies = DefaultCopies
	}
	const minRows = 20
	r := rand.New(rand.NewSource(seed))
	out := &DB{Copies: make(map[string][]*Table, len(db.Tables)), Ratio: ratio}
	// Iterate tables in sorted order: map iteration order would otherwise
	// make the shared RNG stream — and thus the samples — nondeterministic.
	names := make([]string, 0, len(db.Tables))
	for name := range db.Tables {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		t := db.Tables[name]
		n := int(float64(t.NumRows()) * ratio)
		if n < minRows {
			n = minRows
		}
		if n > t.NumRows() {
			n = t.NumRows()
		}
		for c := 0; c < copies; c++ {
			idx := r.Perm(t.NumRows())[:n]
			rows := make([][]int64, n)
			for i, j := range idx {
				rows[i] = t.Rows[j]
			}
			out.Copies[name] = append(out.Copies[name],
				&Table{Base: name, Rows: rows, cols: t.Cols})
		}
	}
	return out, nil
}

// OpEstimate is the estimated selectivity distribution of one operator.
type OpEstimate struct {
	Node *engine.Node

	// Rho is the selectivity estimate rho_n; Var is the estimated
	// variance sigma_n^2 ~= S^2_n / n of the estimate.
	Rho float64
	Var float64

	// LeafComp maps leaf ordinal -> its contribution W_k to Var, so
	// Var = sum_k LeafComp[k]. Restricting the sum to the leaves shared
	// with another operator gives the S^2_{rho}(m, n) bound of
	// Theorem 7 (Appendix A.7).
	LeafComp map[int]float64
	// LeafN maps leaf ordinal -> sample size n_k.
	LeafN map[int]int

	// FromOptimizer marks operators (aggregates, and everything above
	// them) whose estimate falls back to the optimizer's cardinality
	// estimate with zero variance (Algorithm 1 lines 3-5).
	FromOptimizer bool

	// EstCard is the estimated output cardinality rho * Pi |R| over the
	// full (not sample) relations.
	EstCard float64

	// SampleCounts are the resource counts this operator incurred while
	// running over the samples, for the runtime-overhead experiments.
	SampleCounts engine.Counts
}

// Sigma returns the standard deviation of the selectivity estimate.
func (e *OpEstimate) Sigma() float64 {
	if e.Var <= 0 {
		return 0
	}
	return math.Sqrt(e.Var)
}

// Estimates holds the per-operator estimates of one plan pass. Once the
// estimation pass has returned, the struct is immutable and safe to read
// from any number of goroutines (the predictor relies on this when
// serving batched predictions).
type Estimates struct {
	ByID map[int]*OpEstimate

	// mu guards ByID during the estimation pass, when sibling join
	// subtrees may be evaluated concurrently.
	mu sync.Mutex
}

// Get returns the estimate for a node.
func (e *Estimates) Get(n *engine.Node) (*OpEstimate, error) {
	est, ok := e.ByID[n.ID]
	if !ok {
		return nil, fmt.Errorf("sample: no estimate for node %d (%v)", n.ID, n.Kind)
	}
	return est, nil
}

// put stores an estimate during the (possibly concurrent) pass.
func (e *Estimates) put(id int, op *OpEstimate) {
	e.mu.Lock()
	e.ByID[id] = op
	e.mu.Unlock()
}

// at reads an estimate during the (possibly concurrent) pass.
func (e *Estimates) at(id int) *OpEstimate {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.ByID[id]
}

// TotalSampleCounts sums the sample-run resource counts across the plan,
// used to measure the relative overhead of sampling (Section 6.4).
func (e *Estimates) TotalSampleCounts() engine.Counts {
	ids := make([]int, 0, len(e.ByID))
	for id := range e.ByID {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	var total engine.Counts
	for _, id := range ids {
		total = total.Add(e.ByID[id].SampleCounts)
	}
	return total
}

// srow is a sample tuple with provenance: prov[k] is the index of the
// sample tuple of leaf ordinal k that produced it, or -1.
type srow struct {
	vals []int64
	prov []int32
}

// evalResult is the intermediate state of the bottom-up pass.
type evalResult struct {
	rows     []srow
	cols     []string
	leafOrds []int
	tainted  bool // true above an aggregate: sampling no longer applies
}

// Estimate runs the finalized plan once over the sample tables
// (Algorithm 2's EstSelDistr) and returns every operator's selectivity
// distribution. cat supplies optimizer estimates for aggregates; use
// EstimateWithOpts to select the GEE aggregate estimator instead.
func Estimate(root *engine.Node, sdb *DB, cat *catalog.Catalog) (*Estimates, error) {
	return estimate(root, sdb, cat, Opts{})
}

func estimate(root *engine.Node, sdb *DB, cat *catalog.Catalog, opts Opts) (*Estimates, error) {
	est := &Estimates{ByID: make(map[int]*OpEstimate)}
	nLeaves := len(root.LeafTables)
	optEst, err := optimizerEstimates(root, cat)
	if err != nil {
		return nil, err
	}

	// Sequential pre-pass: assign each scan its leaf ordinal and sample
	// copy in left-to-right plan order. Doing this before the (possibly
	// concurrent) evaluation pass keeps the assignment — and therefore
	// the estimates — deterministic regardless of execution order.
	scanTable := make(map[int]*Table)
	scanOrd := make(map[int]int)
	copyUse := make(map[string]int)
	leafCounter := 0
	var assign func(n *engine.Node) error
	assign = func(n *engine.Node) error {
		if n.Kind.IsScan() {
			copies := sdb.Copies[n.Table]
			if len(copies) == 0 {
				return fmt.Errorf("sample: no sample tables for %q", n.Table)
			}
			scanOrd[n.ID] = leafCounter
			scanTable[n.ID] = copies[copyUse[n.Table]%len(copies)]
			copyUse[n.Table]++
			leafCounter++
			return nil
		}
		if n.Left != nil {
			if err := assign(n.Left); err != nil {
				return err
			}
		}
		if n.Right != nil {
			if err := assign(n.Right); err != nil {
				return err
			}
		}
		return nil
	}
	if err := assign(root); err != nil {
		return nil, err
	}

	// Evaluation pass. The two inputs of a join are independent
	// computations over disjoint subtrees, so they may run concurrently;
	// sem bounds the extra goroutines. Every per-node estimate is a pure
	// function of its subtree, so concurrency does not affect values.
	workers := opts.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var sem chan struct{} // nil disables the concurrent path entirely
	if workers > 1 {
		sem = make(chan struct{}, workers-1)
	}
	var walk func(n *engine.Node) (*evalResult, error)
	walk = func(n *engine.Node) (*evalResult, error) {
		switch {
		case n.Kind.IsScan():
			return evalScan(n, scanTable[n.ID], scanOrd[n.ID], est, cat)
		case n.Kind.IsJoin():
			var left, right *evalResult
			var lerr, rerr error
			spawned := false
			if sem != nil {
				select {
				case sem <- struct{}{}:
					spawned = true
					var wg sync.WaitGroup
					wg.Add(1)
					go func() {
						defer wg.Done()
						defer func() { <-sem }()
						right, rerr = walk(n.Right)
					}()
					left, lerr = walk(n.Left)
					wg.Wait()
				default:
				}
			}
			if !spawned {
				left, lerr = walk(n.Left)
				if lerr == nil {
					right, rerr = walk(n.Right)
				}
			}
			if lerr != nil {
				return nil, lerr
			}
			if rerr != nil {
				return nil, rerr
			}
			if left.tainted || right.tainted {
				return evalOptimizer(n, left, right, est, optEst, cat)
			}
			return evalJoin(n, left, right, nLeaves, sdb, est, cat)
		case n.Kind == engine.Aggregate:
			child, err := walk(n.Left)
			if err != nil {
				return nil, err
			}
			return evalAggregate(n, child, est, optEst, cat, opts)
		default: // Sort, Materialize: pass-through, same selectivity variable
			child, err := walk(n.Left)
			if err != nil {
				return nil, err
			}
			ce := est.at(n.Left.ID)
			est.put(n.ID, &OpEstimate{
				Node:          n,
				Rho:           ce.Rho,
				Var:           ce.Var,
				LeafComp:      ce.LeafComp,
				LeafN:         ce.LeafN,
				FromOptimizer: ce.FromOptimizer,
				EstCard:       ce.EstCard,
				SampleCounts:  engine.UnaryCounts(n.Kind, float64(len(child.rows))),
			})
			return child, nil
		}
	}
	if _, err := walk(root); err != nil {
		return nil, err
	}
	return est, nil
}

// fullSize returns Pi |R| over the node's leaf tables in the full
// database.
func fullSize(n *engine.Node, cat *catalog.Catalog) (float64, error) {
	p := 1.0
	for _, t := range n.LeafTables {
		ts, err := cat.Table(t)
		if err != nil {
			return 0, err
		}
		p *= float64(ts.Rows)
	}
	return p, nil
}

func evalScan(n *engine.Node, st *Table, ord int, est *Estimates, cat *catalog.Catalog) (*evalResult, error) {
	idx := make([]int, len(n.Preds))
	for pi := range n.Preds {
		idx[pi] = -1
		for i, c := range st.cols {
			if c == n.Preds[pi].Col {
				idx[pi] = i
				break
			}
		}
		if idx[pi] < 0 {
			return nil, fmt.Errorf("sample: predicate column %q not in %q", n.Preds[pi].Col, n.Table)
		}
	}
	nTotal := st.N()
	rows := make([]srow, 0, nTotal)
	mIndex := 0.0
	for i, r := range st.Rows {
		if len(n.Preds) > 0 && !n.Preds[0].Matches(r[idx[0]]) {
			continue
		}
		mIndex++
		ok := true
		for pi := 1; pi < len(n.Preds); pi++ {
			if !n.Preds[pi].Matches(r[idx[pi]]) {
				ok = false
				break
			}
		}
		if ok {
			rows = append(rows, srow{vals: r, prov: []int32{int32(i)}})
		}
	}
	if len(n.Preds) == 0 {
		mIndex = float64(nTotal)
	}
	rho := float64(len(rows)) / float64(nTotal)
	// S^2_n = rho(1-rho) for a selection; sigma_n^2 = S^2_n / n.
	v := rho * (1 - rho) / float64(nTotal)
	// Floor an all-miss sample at half an observation with 100% relative
	// uncertainty; a hard zero would make downstream costs degenerate.
	if len(rows) == 0 {
		rho = 0.5 / float64(nTotal)
		v = rho * rho
	}
	full, err := fullSize(n, cat)
	if err != nil {
		return nil, err
	}
	est.put(n.ID, &OpEstimate{
		Node:         n,
		Rho:          rho,
		Var:          v,
		LeafComp:     map[int]float64{ord: v},
		LeafN:        map[int]int{ord: nTotal},
		EstCard:      rho * full,
		SampleCounts: engine.ScanCounts(n.Kind, float64(nTotal), mIndex, len(n.Preds)),
	})
	// Normalize provenance to a single-leaf layout local to this node.
	return &evalResult{rows: rows, cols: st.cols, leafOrds: []int{ord}}, nil
}

func evalJoin(n *engine.Node, left, right *evalResult, nLeaves int, sdb *DB, est *Estimates, cat *catalog.Catalog) (*evalResult, error) {
	li := colIndex(left.cols, n.LeftCol)
	ri := colIndex(right.cols, n.RightCol)
	if li < 0 || ri < 0 {
		return nil, fmt.Errorf("sample: join columns %q/%q not found", n.LeftCol, n.RightCol)
	}
	out := hashJoinSRows(left, right, li, ri)
	ords := append(append([]int{}, left.leafOrds...), right.leafOrds...)

	le := est.at(n.Left.ID)
	re := est.at(n.Right.ID)
	leafN := make(map[int]int, len(ords))
	for k, v := range le.LeafN {
		leafN[k] = v
	}
	for k, v := range re.LeafN {
		leafN[k] = v
	}

	// rho_n = |out| / Pi_k n_k.
	prodN := 1.0
	for _, k := range ords {
		prodN *= float64(leafN[k])
	}
	rho := float64(len(out)) / prodN

	// Q_{k,j,n} accumulation (Algorithm 1 lines 11-13): scan the join
	// result once, incrementing dense per-leaf arrays indexed by
	// provenance (sample-tuple index, always in [0, n_k) here — tainted
	// subtrees never reach evalJoin). Dense arrays instead of hash maps:
	// the variance sum below must run in a fixed order, or float rounding
	// would wobble with map iteration order and leak run-to-run
	// nondeterminism into every downstream prediction.
	qs := make([][]float64, len(ords))
	for i, k := range ords {
		qs[i] = make([]float64, leafN[k])
	}
	for _, t := range out {
		for i := range ords {
			qs[i][t.prov[i]]++
		}
	}

	// Per-leaf variance components: V_k = (1/(n_k-1)) sum_j
	// (Q_{k,j}/prod_{k'!=k} n_{k'} - rho)^2, W_k = V_k / n_k.
	// Tuples j with Q_{k,j} = 0 contribute d = -rho, i.e. rho^2 each.
	leafComp := make(map[int]float64, len(ords))
	var totalVar float64
	for i, k := range ords {
		nk := float64(leafN[k])
		denom := prodN / nk // prod of the other sample sizes
		var ss float64
		for _, q := range qs[i] {
			d := q/denom - rho
			ss += d * d
		}
		vk := 0.0
		if nk > 1 {
			vk = ss / (nk - 1)
		}
		wk := vk / nk
		leafComp[k] = wk
		totalVar += wk
	}

	full, err := fullSize(n, cat)
	if err != nil {
		return nil, err
	}

	// Guard against empty sample joins: the estimator would report a
	// zero selectivity with zero variance, which is overconfident. Use
	// half an observation — the sample's resolution limit — with 100%
	// relative uncertainty. This deliberately overestimates very small
	// selectivities and flags them with a correspondingly large sigma:
	// the estimator knows that it cannot resolve the value, which is
	// exactly the self-awareness the predictor propagates. (The paper
	// never hits this regime: its absolute sample sizes are in the tens
	// of thousands even at SR = 0.01.)
	if len(out) == 0 {
		rho = 0.5 / prodN
		totalVar = rho * rho
		for _, k := range ords {
			leafComp[k] = totalVar / float64(len(ords))
		}
	}

	est.put(n.ID, &OpEstimate{
		Node:     n,
		Rho:      rho,
		Var:      totalVar,
		LeafComp: leafComp,
		LeafN:    leafN,
		EstCard:  rho * full,
		SampleCounts: engine.JoinCounts(n.Kind,
			float64(len(left.rows)), float64(len(right.rows)), float64(len(out))),
	})
	return &evalResult{
		rows:     out,
		cols:     append(append([]string{}, left.cols...), right.cols...),
		leafOrds: ords,
	}, nil
}

func evalAggregate(n *engine.Node, child *evalResult, est *Estimates, optEst map[int]float64, cat *catalog.Catalog, opts Opts) (*evalResult, error) {
	full, err := fullSize(n, cat)
	if err != nil {
		return nil, err
	}
	card := optEst[n.ID]
	if opts.Agg == GEEAgg && !child.tainted {
		inputCard := 0.0
		if ce := est.at(n.Left.ID); ce != nil {
			inputCard = ce.EstCard
		}
		if gee, ok := geeAggregateCard(n, child, inputCard); ok {
			card = gee
		}
	}
	rho := 0.0
	if full > 0 {
		rho = card / full
	}
	est.put(n.ID, &OpEstimate{
		Node:          n,
		Rho:           rho,
		Var:           0,
		LeafComp:      map[int]float64{},
		LeafN:         map[int]int{},
		FromOptimizer: true,
		EstCard:       card,
		SampleCounts:  engine.UnaryCounts(engine.Aggregate, float64(len(child.rows))),
	})
	return &evalResult{cols: child.cols, leafOrds: child.leafOrds, tainted: true}, nil
}

// evalOptimizer handles operators above an aggregate, where sampling no
// longer applies (the Agg flag of Algorithm 1).
func evalOptimizer(n *engine.Node, left, right *evalResult, est *Estimates, optEst map[int]float64, cat *catalog.Catalog) (*evalResult, error) {
	full, err := fullSize(n, cat)
	if err != nil {
		return nil, err
	}
	card := optEst[n.ID]
	rho := 0.0
	if full > 0 {
		rho = card / full
	}
	est.put(n.ID, &OpEstimate{
		Node:          n,
		Rho:           rho,
		FromOptimizer: true,
		LeafComp:      map[int]float64{},
		LeafN:         map[int]int{},
		EstCard:       card,
	})
	cols := left.cols
	ords := left.leafOrds
	if right != nil {
		cols = append(append([]string{}, left.cols...), right.cols...)
		ords = append(append([]int{}, left.leafOrds...), right.leafOrds...)
	}
	return &evalResult{cols: cols, leafOrds: ords, tainted: true}, nil
}

// optimizerCard returns the optimizer's cardinality estimate of one
// subtree, with exactly optimizerEstimates' arithmetic (same operations
// in the same order, so the floats agree bit for bit). The memoized
// subtree pass calls it for nodes in the tainted region instead of
// paying for a whole-plan optimizer pre-pass on every estimate.
func optimizerCard(n *engine.Node, cat *catalog.Catalog) (float64, error) {
	switch {
	case n.Kind.IsScan():
		ts, err := cat.Table(n.Table)
		if err != nil {
			return 0, err
		}
		card := float64(ts.Rows)
		for pi := range n.Preds {
			sel, err := cat.PredicateSelectivity(n.Table, &n.Preds[pi])
			if err != nil {
				return 0, err
			}
			card *= sel
		}
		return card, nil
	case n.Kind.IsJoin():
		l, err := optimizerCard(n.Left, cat)
		if err != nil {
			return 0, err
		}
		r, err := optimizerCard(n.Right, cat)
		if err != nil {
			return 0, err
		}
		f, err := joinFactor(n, cat)
		if err != nil {
			return 0, err
		}
		return l * r * f, nil
	case n.Kind == engine.Aggregate:
		in, err := optimizerCard(n.Left, cat)
		if err != nil {
			return 0, err
		}
		if n.GroupCol == "" {
			return 1.0, nil
		}
		tab, _, err := cat.FindColumn(n.GroupCol)
		if err != nil {
			return 0, err
		}
		return cat.GroupCount(tab, n.GroupCol, in)
	default:
		return optimizerCard(n.Left, cat)
	}
}

func optimizerEstimates(root *engine.Node, cat *catalog.Catalog) (map[int]float64, error) {
	// Delegated to the plan package's logic would create an import
	// cycle; aggregates only need group counts of their input, estimated
	// from the child's own estimate at prediction time. Here we
	// precompute a simple bottom-up optimizer pass.
	est := make(map[int]float64)
	var walk func(n *engine.Node) (float64, error)
	walk = func(n *engine.Node) (float64, error) {
		switch {
		case n.Kind.IsScan():
			ts, err := cat.Table(n.Table)
			if err != nil {
				return 0, err
			}
			card := float64(ts.Rows)
			for pi := range n.Preds {
				sel, err := cat.PredicateSelectivity(n.Table, &n.Preds[pi])
				if err != nil {
					return 0, err
				}
				card *= sel
			}
			est[n.ID] = card
			return card, nil
		case n.Kind.IsJoin():
			l, err := walk(n.Left)
			if err != nil {
				return 0, err
			}
			r, err := walk(n.Right)
			if err != nil {
				return 0, err
			}
			f, err := joinFactor(n, cat)
			if err != nil {
				return 0, err
			}
			card := l * r * f
			est[n.ID] = card
			return card, nil
		case n.Kind == engine.Aggregate:
			in, err := walk(n.Left)
			if err != nil {
				return 0, err
			}
			card := 1.0
			if n.GroupCol != "" {
				tab, _, err := cat.FindColumn(n.GroupCol)
				if err != nil {
					return 0, err
				}
				card, err = cat.GroupCount(tab, n.GroupCol, in)
				if err != nil {
					return 0, err
				}
			}
			est[n.ID] = card
			return card, nil
		default:
			in, err := walk(n.Left)
			if err != nil {
				return 0, err
			}
			est[n.ID] = in
			return in, nil
		}
	}
	if _, err := walk(root); err != nil {
		return nil, err
	}
	return est, nil
}

func joinFactor(n *engine.Node, cat *catalog.Catalog) (float64, error) {
	lt, err := tableOfColumn(cat, n.Left.LeafTables, n.LeftCol)
	if err != nil {
		return 0, err
	}
	rt, err := tableOfColumn(cat, n.Right.LeafTables, n.RightCol)
	if err != nil {
		return 0, err
	}
	return cat.JoinSelectivityFactor(lt, n.LeftCol, rt, n.RightCol)
}

func tableOfColumn(cat *catalog.Catalog, tables []string, col string) (string, error) {
	for _, t := range tables {
		if _, err := cat.Column(t, col); err == nil {
			return t, nil
		}
	}
	return "", fmt.Errorf("sample: column %q not found among %v", col, tables)
}

func hashJoinSRows(left, right *evalResult, li, ri int) []srow {
	return hashJoinRows(left.rows, right.rows, li, ri)
}

// hashJoinRows equi-joins two sets of surviving sample rows on value
// columns li/ri. The output is counted first and then filled into two
// flat backing arrays — one for values, one for provenance — sliced per
// row with exact capacity: three allocations for the whole result
// instead of two per output row, the arena that keeps large
// intermediate joins cheap in the sampling pass. Rows within one input
// are uniform in width (scans and joins both produce rectangular
// results), which the flat layout relies on.
func hashJoinRows(leftRows, rightRows []srow, li, ri int) []srow {
	ht := make(map[int64][]int, len(leftRows))
	for i, r := range leftRows {
		ht[r.vals[li]] = append(ht[r.vals[li]], i)
	}
	count := 0
	for _, rr := range rightRows {
		count += len(ht[rr.vals[ri]])
	}
	if count == 0 {
		return nil
	}
	lw, rw := len(leftRows[0].vals), len(rightRows[0].vals)
	lp, rp := len(leftRows[0].prov), len(rightRows[0].prov)
	vals := make([]int64, count*(lw+rw))
	prov := make([]int32, count*(lp+rp))
	out := make([]srow, 0, count)
	vo, po := 0, 0
	for _, rr := range rightRows {
		for _, i := range ht[rr.vals[ri]] {
			lr := leftRows[i]
			v := vals[vo : vo : vo+lw+rw]
			v = append(v, lr.vals...)
			v = append(v, rr.vals...)
			vo += lw + rw
			p := prov[po : po : po+lp+rp]
			p = append(p, lr.prov...)
			p = append(p, rr.prov...)
			po += lp + rp
			out = append(out, srow{vals: v, prov: p})
		}
	}
	return out
}

func colIndex(cols []string, name string) int {
	for i, c := range cols {
		if c == name {
			return i
		}
	}
	return -1
}
