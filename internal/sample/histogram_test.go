package sample

import (
	"math"
	"testing"

	"repro/internal/catalog"
	"repro/internal/engine"
)

func TestHistogramScanEstimate(t *testing.T) {
	db := synthDB(20000, 100, 100, 30)
	cat := catalog.Build(db)
	plan := scanPlan(&engine.Predicate{Col: "b", Op: engine.Lt, Lo: 30})
	truth := trueSelectivity(t, db, plan)
	est, err := EstimateHistogram(plan, cat, HistogramOpts{})
	if err != nil {
		t.Fatal(err)
	}
	e := est.ByID[plan.ID]
	if math.Abs(e.Rho-truth) > 0.05 {
		t.Errorf("histogram scan estimate %v vs truth %v", e.Rho, truth)
	}
	if e.Var <= 0 {
		t.Error("scan estimate has zero variance")
	}
	// Bucket-resolution variance must be small relative to the estimate.
	if e.Sigma() > 0.1 {
		t.Errorf("scan sigma %v implausibly large", e.Sigma())
	}
}

func TestHistogramJoinUncertaintyGrowsWithDepth(t *testing.T) {
	db := synthDB(4000, 4000, 20, 31)
	cat := catalog.Build(db)
	plan := joinPlan()
	est, err := EstimateHistogram(plan, cat, HistogramOpts{})
	if err != nil {
		t.Fatal(err)
	}
	joinE := est.ByID[plan.ID]
	leftE := est.ByID[plan.Left.ID]
	if joinE.Var <= 0 {
		t.Fatal("join estimate has zero variance")
	}
	// Relative uncertainty of the join must exceed that of its inputs
	// (the join factor adds its own error).
	if relVar(joinE) <= relVar(leftE) {
		t.Errorf("join rel var %v not above scan rel var %v", relVar(joinE), relVar(leftE))
	}
}

func TestHistogramJoinRelSigmaDefault(t *testing.T) {
	db := synthDB(2000, 2000, 10, 32)
	cat := catalog.Build(db)
	plan := joinPlan()
	def, err := EstimateHistogram(plan, cat, HistogramOpts{})
	if err != nil {
		t.Fatal(err)
	}
	tight, err := EstimateHistogram(plan, cat, HistogramOpts{JoinRelSigma: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if tight.ByID[plan.ID].Var >= def.ByID[plan.ID].Var {
		t.Error("smaller JoinRelSigma did not reduce the join variance")
	}
}

func TestHistogramLeafComponentsSumToVariance(t *testing.T) {
	db := synthDB(3000, 3000, 10, 33)
	cat := catalog.Build(db)
	plan := joinPlan()
	est, err := EstimateHistogram(plan, cat, HistogramOpts{})
	if err != nil {
		t.Fatal(err)
	}
	e := est.ByID[plan.ID]
	var sum float64
	for _, v := range e.LeafComp {
		sum += v
	}
	if math.Abs(sum-e.Var) > 1e-12*math.Max(1, e.Var) {
		t.Errorf("leaf components %v do not sum to variance %v", sum, e.Var)
	}
}

func TestHistogramAggregatePassThrough(t *testing.T) {
	db := synthDB(5000, 100, 10, 34)
	cat := catalog.Build(db)
	plan := &engine.Node{Kind: engine.Aggregate, GroupCol: "b",
		Left: &engine.Node{Kind: engine.Sort,
			Left: &engine.Node{Kind: engine.SeqScan, Table: "r"}}}
	plan.Finalize()
	est, err := EstimateHistogram(plan, cat, HistogramOpts{})
	if err != nil {
		t.Fatal(err)
	}
	agg := est.ByID[plan.ID]
	if !agg.FromOptimizer {
		t.Error("aggregate should be marked FromOptimizer")
	}
	if agg.EstCard < 5 || agg.EstCard > 15 {
		t.Errorf("aggregate card %v, want ~10", agg.EstCard)
	}
	sortE := est.ByID[plan.Left.ID]
	scanE := est.ByID[plan.Left.Left.ID]
	if sortE.Rho != scanE.Rho || sortE.Var != scanE.Var {
		t.Error("sort did not pass its child's estimate through")
	}
}
