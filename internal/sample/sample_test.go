package sample

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/catalog"
	"repro/internal/engine"
	"repro/internal/stats"
)

// synthDB builds r(a,b) and s(c,d) with controlled join structure:
// b and d uniform over joint domain size dom.
func synthDB(nr, ns, dom int, seed int64) *engine.DB {
	r := rand.New(rand.NewSource(seed))
	rrows := make([][]int64, nr)
	for i := range rrows {
		rrows[i] = []int64{int64(i), int64(r.Intn(dom))}
	}
	srows := make([][]int64, ns)
	for i := range srows {
		srows[i] = []int64{int64(i), int64(r.Intn(dom))}
	}
	db := engine.NewDB()
	db.Add(engine.NewTable("r", []string{"a", "b"}, rrows))
	db.Add(engine.NewTable("s", []string{"c", "d"}, srows))
	return db
}

func scanPlan(pred *engine.Predicate) *engine.Node {
	p := &engine.Node{Kind: engine.SeqScan, Table: "r"}
	if pred != nil {
		p.Preds = []engine.Predicate{*pred}
	}
	p.Finalize()
	return p
}

func joinPlan() *engine.Node {
	p := &engine.Node{
		Kind: engine.HashJoin, LeftCol: "b", RightCol: "d",
		Left:  &engine.Node{Kind: engine.SeqScan, Table: "r"},
		Right: &engine.Node{Kind: engine.SeqScan, Table: "s"},
	}
	p.Finalize()
	return p
}

func TestBuildSampleSizes(t *testing.T) {
	db := synthDB(10000, 5000, 10, 1)
	sdb, err := Build(db, 0.05, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(sdb.Copies["r"]); got != 2 {
		t.Fatalf("copies=%d, want 2", got)
	}
	if n := sdb.Copies["r"][0].N(); n != 500 {
		t.Errorf("sample size %d, want 500", n)
	}
	// Copies must differ (independent draws).
	same := true
	a, b := sdb.Copies["r"][0], sdb.Copies["r"][1]
	for i := range a.Rows {
		if a.Rows[i][0] != b.Rows[i][0] {
			same = false
			break
		}
	}
	if same {
		t.Error("sample copies identical; expected independent draws")
	}
}

func TestBuildRejectsBadRatio(t *testing.T) {
	db := synthDB(100, 100, 10, 1)
	for _, ratio := range []float64{0, -0.1, 1.5} {
		if _, err := Build(db, ratio, 1, 1); err == nil {
			t.Errorf("ratio %v: expected error", ratio)
		}
	}
}

func TestScanEstimateUnbiased(t *testing.T) {
	db := synthDB(20000, 100, 100, 3)
	cat := catalog.Build(db)
	pred := &engine.Predicate{Col: "b", Op: engine.Lt, Lo: 30} // truth ~0.3
	plan := scanPlan(pred)
	truth := trueSelectivity(t, db, plan)

	var rhos []float64
	for seed := int64(0); seed < 40; seed++ {
		sdb, err := Build(db, 0.05, 1, seed)
		if err != nil {
			t.Fatal(err)
		}
		est, err := Estimate(plan, sdb, cat)
		if err != nil {
			t.Fatal(err)
		}
		rhos = append(rhos, est.ByID[plan.ID].Rho)
	}
	if m := stats.Mean(rhos); math.Abs(m-truth) > 0.02 {
		t.Errorf("mean estimate %v vs truth %v", m, truth)
	}
}

// The key property for scans: the estimated variance rho(1-rho)/n should
// match the observed variance of the estimator across independent
// samples.
func TestScanVarianceEstimateMatchesEmpirical(t *testing.T) {
	db := synthDB(10000, 100, 100, 4)
	cat := catalog.Build(db)
	plan := scanPlan(&engine.Predicate{Col: "b", Op: engine.Lt, Lo: 20})

	var rhos, vars []float64
	for seed := int64(0); seed < 60; seed++ {
		sdb, err := Build(db, 0.02, 1, seed)
		if err != nil {
			t.Fatal(err)
		}
		est, err := Estimate(plan, sdb, cat)
		if err != nil {
			t.Fatal(err)
		}
		e := est.ByID[plan.ID]
		rhos = append(rhos, e.Rho)
		vars = append(vars, e.Var)
	}
	empirical := stats.Variance(rhos)
	predicted := stats.Mean(vars)
	if empirical <= 0 || predicted <= 0 {
		t.Fatal("degenerate variances")
	}
	ratio := predicted / empirical
	if ratio < 0.4 || ratio > 2.5 {
		t.Errorf("variance ratio predicted/empirical = %v (pred %v, emp %v)",
			ratio, predicted, empirical)
	}
}

func TestJoinEstimateUnbiased(t *testing.T) {
	db := synthDB(4000, 4000, 20, 5)
	cat := catalog.Build(db)
	plan := joinPlan()
	truth := trueSelectivity(t, db, plan)

	var rhos []float64
	for seed := int64(0); seed < 30; seed++ {
		sdb, err := Build(db, 0.05, 2, seed)
		if err != nil {
			t.Fatal(err)
		}
		est, err := Estimate(plan, sdb, cat)
		if err != nil {
			t.Fatal(err)
		}
		rhos = append(rhos, est.ByID[plan.ID].Rho)
	}
	m := stats.Mean(rhos)
	if math.Abs(m-truth)/truth > 0.15 {
		t.Errorf("mean join estimate %v vs truth %v", m, truth)
	}
}

// The central variance property for joins: across many independent
// samples, the S^2_n-based variance estimate tracks the empirical
// variance of rho_n.
func TestJoinVarianceEstimateMatchesEmpirical(t *testing.T) {
	db := synthDB(2500, 2500, 20, 6)
	cat := catalog.Build(db)
	plan := joinPlan()

	var rhos, vars []float64
	for seed := int64(0); seed < 60; seed++ {
		sdb, err := Build(db, 0.03, 2, seed)
		if err != nil {
			t.Fatal(err)
		}
		est, err := Estimate(plan, sdb, cat)
		if err != nil {
			t.Fatal(err)
		}
		e := est.ByID[plan.ID]
		rhos = append(rhos, e.Rho)
		vars = append(vars, e.Var)
	}
	empirical := stats.Variance(rhos)
	predicted := stats.Mean(vars)
	ratio := predicted / empirical
	if ratio < 0.3 || ratio > 3.0 {
		t.Errorf("join variance ratio = %v (pred %v, emp %v)", ratio, predicted, empirical)
	}
}

func TestJoinLeafComponentsSumToVar(t *testing.T) {
	db := synthDB(3000, 3000, 15, 7)
	cat := catalog.Build(db)
	plan := joinPlan()
	sdb, err := Build(db, 0.05, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	est, err := Estimate(plan, sdb, cat)
	if err != nil {
		t.Fatal(err)
	}
	e := est.ByID[plan.ID]
	var sum float64
	for _, w := range e.LeafComp {
		sum += w
	}
	if math.Abs(sum-e.Var) > 1e-15*math.Max(1, e.Var) {
		t.Errorf("leaf components sum %v != Var %v", sum, e.Var)
	}
	if len(e.LeafComp) != 2 || len(e.LeafN) != 2 {
		t.Errorf("leaf maps: %v / %v", e.LeafComp, e.LeafN)
	}
}

func TestEmptyJoinGetsFloorNotZero(t *testing.T) {
	// Disjoint join domains: sample join certainly empty.
	db := engine.NewDB()
	rrows := make([][]int64, 500)
	for i := range rrows {
		rrows[i] = []int64{int64(i), 1}
	}
	srows := make([][]int64, 500)
	for i := range srows {
		srows[i] = []int64{int64(i), 2}
	}
	db.Add(engine.NewTable("r", []string{"a", "b"}, rrows))
	db.Add(engine.NewTable("s", []string{"c", "d"}, srows))
	cat := catalog.Build(db)
	plan := joinPlan()
	sdb, err := Build(db, 0.1, 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	est, err := Estimate(plan, sdb, cat)
	if err != nil {
		t.Fatal(err)
	}
	e := est.ByID[plan.ID]
	if e.Rho <= 0 || e.Var <= 0 {
		t.Errorf("empty join: rho=%v var=%v, want positive floor", e.Rho, e.Var)
	}
}

func TestAggregateFallsBackToOptimizer(t *testing.T) {
	db := synthDB(5000, 100, 10, 10)
	cat := catalog.Build(db)
	plan := &engine.Node{Kind: engine.Aggregate, GroupCol: "b",
		Left: &engine.Node{Kind: engine.SeqScan, Table: "r"}}
	plan.Finalize()
	sdb, err := Build(db, 0.05, 1, 11)
	if err != nil {
		t.Fatal(err)
	}
	est, err := Estimate(plan, sdb, cat)
	if err != nil {
		t.Fatal(err)
	}
	e := est.ByID[plan.ID]
	if !e.FromOptimizer || e.Var != 0 {
		t.Errorf("aggregate: FromOptimizer=%v Var=%v", e.FromOptimizer, e.Var)
	}
	if e.EstCard < 5 || e.EstCard > 15 {
		t.Errorf("aggregate card %v, want ~10 groups", e.EstCard)
	}
}

func TestPassThroughSharesVariable(t *testing.T) {
	db := synthDB(5000, 100, 10, 12)
	cat := catalog.Build(db)
	plan := &engine.Node{Kind: engine.Sort,
		Left: &engine.Node{Kind: engine.SeqScan, Table: "r",
			Preds: []engine.Predicate{{Col: "b", Op: engine.Le, Lo: 4}}}}
	plan.Finalize()
	sdb, err := Build(db, 0.05, 1, 13)
	if err != nil {
		t.Fatal(err)
	}
	est, err := Estimate(plan, sdb, cat)
	if err != nil {
		t.Fatal(err)
	}
	sortE := est.ByID[plan.ID]
	scanE := est.ByID[plan.Left.ID]
	if sortE.Rho != scanE.Rho || sortE.Var != scanE.Var {
		t.Errorf("sort estimate (%v,%v) differs from scan (%v,%v)",
			sortE.Rho, sortE.Var, scanE.Rho, scanE.Var)
	}
}

func TestEstCardScalesToFullDatabase(t *testing.T) {
	db := synthDB(10000, 100, 10, 14)
	cat := catalog.Build(db)
	plan := scanPlan(&engine.Predicate{Col: "b", Op: engine.Le, Lo: 4})
	sdb, err := Build(db, 0.05, 1, 15)
	if err != nil {
		t.Fatal(err)
	}
	est, err := Estimate(plan, sdb, cat)
	if err != nil {
		t.Fatal(err)
	}
	e := est.ByID[plan.ID]
	if math.Abs(e.EstCard-e.Rho*10000) > 1e-9 {
		t.Errorf("EstCard %v != rho*|R| %v", e.EstCard, e.Rho*10000)
	}
	if e.EstCard < 3000 || e.EstCard > 7000 {
		t.Errorf("EstCard %v, want near 5000", e.EstCard)
	}
}

func TestSampleCountsPopulated(t *testing.T) {
	db := synthDB(5000, 5000, 10, 16)
	cat := catalog.Build(db)
	plan := joinPlan()
	sdb, err := Build(db, 0.05, 2, 17)
	if err != nil {
		t.Fatal(err)
	}
	est, err := Estimate(plan, sdb, cat)
	if err != nil {
		t.Fatal(err)
	}
	total := est.TotalSampleCounts()
	if total.NT <= 0 || total.NS <= 0 {
		t.Errorf("sample counts empty: %+v", total)
	}
	// Sample-run cost must be far below the full-run cost: the full join
	// emits ~2.5M tuples here, the sample run a few thousand.
	if total.NT > 100000 {
		t.Errorf("sample NT=%v suspiciously large", total.NT)
	}
}

// trueSelectivity executes the plan on the full database.
func trueSelectivity(t *testing.T, db *engine.DB, plan *engine.Node) float64 {
	t.Helper()
	res, err := engine.Run(db, plan)
	if err != nil {
		t.Fatal(err)
	}
	return res.Selectivity
}

func TestThreeWayJoinEstimate(t *testing.T) {
	r := rand.New(rand.NewSource(18))
	mk := func(name, c1, c2 string, n, dom int) *engine.Table {
		rows := make([][]int64, n)
		for i := range rows {
			rows[i] = []int64{int64(r.Intn(dom)), int64(r.Intn(dom))}
		}
		return engine.NewTable(name, []string{c1, c2}, rows)
	}
	db := engine.NewDB()
	db.Add(mk("t1", "a1", "b1", 2000, 12))
	db.Add(mk("t2", "a2", "b2", 2000, 12))
	db.Add(mk("t3", "a3", "b3", 2000, 12))
	cat := catalog.Build(db)
	plan := &engine.Node{
		Kind: engine.HashJoin, LeftCol: "b2", RightCol: "a3",
		Left: &engine.Node{
			Kind: engine.HashJoin, LeftCol: "b1", RightCol: "a2",
			Left:  &engine.Node{Kind: engine.SeqScan, Table: "t1"},
			Right: &engine.Node{Kind: engine.SeqScan, Table: "t2"},
		},
		Right: &engine.Node{Kind: engine.SeqScan, Table: "t3"},
	}
	plan.Finalize()
	truth := trueSelectivity(t, db, plan)

	sdb, err := Build(db, 0.08, 2, 19)
	if err != nil {
		t.Fatal(err)
	}
	est, err := Estimate(plan, sdb, cat)
	if err != nil {
		t.Fatal(err)
	}
	e := est.ByID[plan.ID]
	if e.Rho <= 0 {
		t.Fatal("zero three-way estimate")
	}
	if math.Abs(e.Rho-truth)/truth > 0.8 {
		t.Errorf("three-way estimate %v vs truth %v", e.Rho, truth)
	}
	if len(e.LeafComp) != 3 {
		t.Errorf("leaf components %v, want 3 entries", e.LeafComp)
	}
	// Inner join estimate also present.
	if _, err := est.Get(plan.Left); err != nil {
		t.Error(err)
	}
}
