package sample

import (
	"fmt"
	"math"

	"repro/internal/catalog"
	"repro/internal/engine"
)

// GEE implements the Guaranteed-Error Estimator of Charikar et al. [11]
// for the number of distinct values in a population of size total, given
// the value frequencies observed in a sample of size n:
//
//	D_GEE = sqrt(total/n) * f1 + sum_{j>=2} f_j
//
// where f_j is the number of values appearing exactly j times in the
// sample. The paper names GEE as the estimator it plans to incorporate
// for aggregate operators ("we are working to incorporate sampling-based
// estimators for aggregates (e.g., the GEE estimator [11])",
// Section 3.2.2); this package provides exactly that integration.
func GEE(sampleValues []int64, total float64) float64 {
	n := float64(len(sampleValues))
	if n == 0 || total <= 0 {
		return 0
	}
	counts := make(map[int64]int, len(sampleValues))
	for _, v := range sampleValues {
		counts[v]++
	}
	var f1, rest float64
	for _, c := range counts {
		if c == 1 {
			f1++
		} else {
			rest++
		}
	}
	scale := math.Sqrt(total / n)
	if scale < 1 {
		scale = 1
	}
	d := scale*f1 + rest
	if d > total {
		d = total
	}
	if d < 1 && len(counts) > 0 {
		d = 1
	}
	return d
}

// AggEstimator selects how aggregate output cardinalities are estimated.
type AggEstimator int

// Aggregate estimation strategies.
const (
	// OptimizerAgg uses the optimizer's catalog statistics (the paper's
	// default, Algorithm 1 lines 3-5).
	OptimizerAgg AggEstimator = iota
	// GEEAgg applies the GEE distinct-value estimator to the aggregate's
	// sampled input: it sees only the groups that survive the query's
	// selections and joins, which the catalog cannot.
	GEEAgg
)

// String implements fmt.Stringer.
func (a AggEstimator) String() string {
	switch a {
	case OptimizerAgg:
		return "optimizer"
	case GEEAgg:
		return "GEE"
	default:
		return fmt.Sprintf("AggEstimator(%d)", int(a))
	}
}

// Opts configures the estimation pass.
type Opts struct {
	Agg AggEstimator
	// Parallelism bounds the goroutines evaluating independent join
	// subtrees concurrently; 0 selects GOMAXPROCS, 1 forces a fully
	// sequential pass. The estimates are identical for every value.
	Parallelism int
}

// EstimateWithOpts is Estimate with configuration; see Estimate.
func EstimateWithOpts(root *engine.Node, sdb *DB, cat *catalog.Catalog, opts Opts) (*Estimates, error) {
	return estimate(root, sdb, cat, opts)
}

// geeAggregateCard estimates an aggregate's output cardinality from its
// sampled input rows: the distinct group keys surviving upstream
// selections and joins, extrapolated by GEE to the estimated input
// cardinality.
func geeAggregateCard(n *engine.Node, child *evalResult, inputCardEst float64) (float64, bool) {
	if n.GroupCol == "" {
		return 1, true // scalar aggregate
	}
	gi := colIndex(child.cols, n.GroupCol)
	if gi < 0 || len(child.rows) == 0 {
		return 0, false
	}
	vals := make([]int64, len(child.rows))
	for i, r := range child.rows {
		vals[i] = r.vals[gi]
	}
	return GEE(vals, math.Max(inputCardEst, float64(len(vals)))), true
}
