package sample

import (
	"context"
	"math"
	"sync"
	"testing"

	"repro/internal/catalog"
	"repro/internal/engine"
)

// memoRecorder is a PassMemo over a plain map that counts hits/misses.
type memoRecorder struct {
	mu     sync.Mutex
	m      map[string]*Pass
	hits   int
	misses int
}

func newMemoRecorder() *memoRecorder { return &memoRecorder{m: make(map[string]*Pass)} }

func (r *memoRecorder) memo(key string, compute func() (*Pass, error)) (*Pass, error) {
	r.mu.Lock()
	if p, ok := r.m[key]; ok {
		r.hits++
		r.mu.Unlock()
		return p, nil
	}
	r.mu.Unlock()
	p, err := compute()
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	r.m[key] = p
	r.misses++
	r.mu.Unlock()
	return p, nil
}

// subtreePlans returns plans spanning the estimator's cases: scans with
// and without predicates, a 2-way join, a 3-way left-deep join, a plan
// with a shared relation (two scans of r), a sort atop a join, and an
// aggregate with a join above it (the tainted region).
func subtreePlans() []*engine.Node {
	pred := engine.Predicate{Col: "a", Op: engine.Le, Lo: 400}
	mk := func(n *engine.Node) *engine.Node { n.Finalize(); return n }
	return []*engine.Node{
		mk(&engine.Node{Kind: engine.SeqScan, Table: "r"}),
		mk(&engine.Node{Kind: engine.SeqScan, Table: "r", Preds: []engine.Predicate{pred}}),
		mk(&engine.Node{
			Kind: engine.HashJoin, LeftCol: "b", RightCol: "d",
			Left:  &engine.Node{Kind: engine.SeqScan, Table: "r", Preds: []engine.Predicate{pred}},
			Right: &engine.Node{Kind: engine.SeqScan, Table: "s"},
		}),
		mk(&engine.Node{
			Kind: engine.HashJoin, LeftCol: "d", RightCol: "b",
			Left: &engine.Node{
				Kind: engine.HashJoin, LeftCol: "b", RightCol: "d",
				Left:  &engine.Node{Kind: engine.SeqScan, Table: "r", Preds: []engine.Predicate{pred}},
				Right: &engine.Node{Kind: engine.SeqScan, Table: "s"},
			},
			Right: &engine.Node{Kind: engine.SeqScan, Table: "r"},
		}),
		mk(&engine.Node{
			Kind: engine.Sort,
			Left: &engine.Node{
				Kind: engine.MergeJoin, LeftCol: "b", RightCol: "d",
				Left:  &engine.Node{Kind: engine.SeqScan, Table: "r"},
				Right: &engine.Node{Kind: engine.SeqScan, Table: "s"},
			},
		}),
		mk(&engine.Node{
			Kind: engine.HashJoin, LeftCol: "b", RightCol: "d",
			Left: &engine.Node{
				Kind: engine.Aggregate, GroupCol: "b",
				Left: &engine.Node{Kind: engine.SeqScan, Table: "r"},
			},
			Right: &engine.Node{Kind: engine.SeqScan, Table: "s"},
		}),
	}
}

// sameEstimates compares two Estimates field by field with a tight
// relative tolerance (the underlying sums iterate Go maps, so exact bit
// equality is not guaranteed across passes).
func sameEstimates(t *testing.T, tag string, a, b *Estimates) {
	t.Helper()
	close := func(x, y float64) bool {
		if x == y {
			return true
		}
		scale := math.Max(math.Abs(x), math.Abs(y))
		return math.Abs(x-y) <= 1e-12*scale
	}
	if len(a.ByID) != len(b.ByID) {
		t.Fatalf("%s: %d vs %d estimates", tag, len(a.ByID), len(b.ByID))
	}
	for id, ea := range a.ByID {
		eb, ok := b.ByID[id]
		if !ok {
			t.Fatalf("%s: node %d missing", tag, id)
		}
		if eb.Node == nil || eb.Node.ID != id {
			t.Errorf("%s: node %d has wrong Node binding %+v", tag, id, eb.Node)
		}
		if !close(ea.Rho, eb.Rho) || !close(ea.Var, eb.Var) || !close(ea.EstCard, eb.EstCard) {
			t.Errorf("%s: node %d rho/var/card (%v,%v,%v) vs (%v,%v,%v)",
				tag, id, ea.Rho, ea.Var, ea.EstCard, eb.Rho, eb.Var, eb.EstCard)
		}
		if ea.FromOptimizer != eb.FromOptimizer {
			t.Errorf("%s: node %d FromOptimizer %v vs %v", tag, id, ea.FromOptimizer, eb.FromOptimizer)
		}
		if len(ea.LeafComp) != len(eb.LeafComp) || len(ea.LeafN) != len(eb.LeafN) {
			t.Fatalf("%s: node %d leaf maps sized (%d,%d) vs (%d,%d)",
				tag, id, len(ea.LeafComp), len(ea.LeafN), len(eb.LeafComp), len(eb.LeafN))
		}
		for k, v := range ea.LeafComp {
			if !close(v, eb.LeafComp[k]) {
				t.Errorf("%s: node %d LeafComp[%d] %v vs %v", tag, id, k, v, eb.LeafComp[k])
			}
		}
		for k, v := range ea.LeafN {
			if v != eb.LeafN[k] {
				t.Errorf("%s: node %d LeafN[%d] %d vs %d", tag, id, k, v, eb.LeafN[k])
			}
		}
		if ea.SampleCounts != eb.SampleCounts {
			t.Errorf("%s: node %d SampleCounts %+v vs %+v", tag, id, ea.SampleCounts, eb.SampleCounts)
		}
	}
}

// TestEstimateMemoMatchesEstimate runs both estimators over every plan
// shape and requires identical per-operator distributions, with and
// without a live memo.
func TestEstimateMemoMatchesEstimate(t *testing.T) {
	db := synthDB(1000, 800, 12, 3)
	cat := catalog.Build(db)
	sdb, err := Build(db, 0.2, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	rec := newMemoRecorder()
	for i, p := range subtreePlans() {
		want, err := Estimate(p, sdb, cat)
		if err != nil {
			t.Fatalf("plan %d: Estimate: %v", i, err)
		}
		got, err := EstimateMemo(context.Background(), p, sdb, cat, nil)
		if err != nil {
			t.Fatalf("plan %d: EstimateMemo: %v", i, err)
		}
		sameEstimates(t, "no-memo", want, got)
		// Twice through the shared memo: cold then warm.
		cold, err := EstimateMemo(context.Background(), p, sdb, cat, rec.memo)
		if err != nil {
			t.Fatalf("plan %d: EstimateMemo(memo): %v", i, err)
		}
		sameEstimates(t, "memo-cold", want, cold)
		warm, err := EstimateMemo(context.Background(), p, sdb, cat, rec.memo)
		if err != nil {
			t.Fatal(err)
		}
		sameEstimates(t, "memo-warm", want, warm)
	}
	if rec.hits == 0 || rec.misses == 0 {
		t.Errorf("memo traffic hits=%d misses=%d, want both positive", rec.hits, rec.misses)
	}
}

// TestEstimateMemoSharesSubtrees checks the point of the exercise: two
// join orders over the same lower join share its pass through the memo.
func TestEstimateMemoSharesSubtrees(t *testing.T) {
	db := synthDB(1000, 800, 12, 3)
	cat := catalog.Build(db)
	sdb, err := Build(db, 0.2, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	common := func() *engine.Node {
		return &engine.Node{
			Kind: engine.HashJoin, LeftCol: "b", RightCol: "d",
			Left:  &engine.Node{Kind: engine.SeqScan, Table: "r"},
			Right: &engine.Node{Kind: engine.SeqScan, Table: "s"},
		}
	}
	planA := &engine.Node{
		Kind: engine.HashJoin, LeftCol: "d", RightCol: "b",
		Left: common(), Right: &engine.Node{Kind: engine.SeqScan, Table: "r", Preds: []engine.Predicate{{Col: "a", Op: engine.Le, Lo: 100}}},
	}
	planA.Finalize()
	planB := &engine.Node{
		Kind: engine.HashJoin, LeftCol: "d", RightCol: "b",
		Left: common(), Right: &engine.Node{Kind: engine.SeqScan, Table: "r", Preds: []engine.Predicate{{Col: "a", Op: engine.Le, Lo: 700}}},
	}
	planB.Finalize()

	rec := newMemoRecorder()
	if _, err := EstimateMemo(context.Background(), planA, sdb, cat, rec.memo); err != nil {
		t.Fatal(err)
	}
	missesAfterA := rec.misses
	if rec.hits != 0 {
		t.Fatalf("cold plan recorded %d hits", rec.hits)
	}
	if _, err := EstimateMemo(context.Background(), planB, sdb, cat, rec.memo); err != nil {
		t.Fatal(err)
	}
	// Plan B shares the lower join and both its scans (3 passes); only
	// its own filtered scan of r and the top join are new. The shared
	// scan of r in the lower join uses copy 0 in both plans, while B's
	// filtered r-scan is the second appearance (copy 1) — a distinct key.
	if hits := rec.hits; hits != 3 {
		t.Errorf("plan B hit %d shared passes, want 3", hits)
	}
	if news := rec.misses - missesAfterA; news != 2 {
		t.Errorf("plan B computed %d fresh passes, want 2", news)
	}
}

// TestEstimateMemoContextCancel pins prompt cancellation: a canceled
// context aborts the pass with ctx.Err before any work.
func TestEstimateMemoContextCancel(t *testing.T) {
	db := synthDB(500, 500, 8, 1)
	cat := catalog.Build(db)
	sdb, err := Build(db, 0.2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := EstimateMemo(ctx, subtreePlans()[3], sdb, cat, nil); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// countNodes returns the number of operators in a plan tree — the
// number of memo lookups one EstimateMemo pass performs now that every
// case (scans, joins, aggregates, tainted joins, unary pass-throughs)
// routes through the memo.
func countNodes(n *engine.Node) int {
	if n == nil {
		return 0
	}
	return 1 + countNodes(n.Left) + countNodes(n.Right)
}

// TestEstimateMemoWarmPassComputesNothing pins the tainted-region and
// pass-through memoization: a warm second pass over any plan shape —
// including sorts above joins and joins above aggregates — performs one
// memo hit per operator and computes zero fresh passes. Before the fix,
// unary nodes and everything at or above an aggregate were recomputed
// on every estimate.
func TestEstimateMemoWarmPassComputesNothing(t *testing.T) {
	db := synthDB(1000, 800, 12, 3)
	cat := catalog.Build(db)
	sdb, err := Build(db, 0.2, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range subtreePlans() {
		rec := newMemoRecorder()
		if _, err := EstimateMemo(context.Background(), p, sdb, cat, rec.memo); err != nil {
			t.Fatalf("plan %d: cold: %v", i, err)
		}
		n := countNodes(p)
		if rec.misses != n || rec.hits != 0 {
			t.Errorf("plan %d: cold pass hits=%d misses=%d, want 0/%d",
				i, rec.hits, rec.misses, n)
		}
		if _, err := EstimateMemo(context.Background(), p, sdb, cat, rec.memo); err != nil {
			t.Fatalf("plan %d: warm: %v", i, err)
		}
		if rec.misses != n {
			t.Errorf("plan %d: warm pass computed %d fresh passes, want 0",
				i, rec.misses-n)
		}
		if rec.hits != n {
			t.Errorf("plan %d: warm pass hit %d passes, want one per operator (%d)",
				i, rec.hits, n)
		}
	}
}
