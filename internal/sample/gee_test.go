package sample

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/catalog"
	"repro/internal/engine"
)

func TestGEEAllDistinct(t *testing.T) {
	// Every sample value unique: D = sqrt(N/n) * n = sqrt(N*n).
	vals := make([]int64, 100)
	for i := range vals {
		vals[i] = int64(i)
	}
	got := GEE(vals, 10000)
	want := math.Sqrt(10000.0/100) * 100
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("GEE = %v, want %v", got, want)
	}
}

func TestGEEAllSame(t *testing.T) {
	vals := make([]int64, 100)
	got := GEE(vals, 10000)
	if got != 1 {
		t.Errorf("GEE on constant sample = %v, want 1", got)
	}
}

func TestGEECappedByTotal(t *testing.T) {
	vals := make([]int64, 50)
	for i := range vals {
		vals[i] = int64(i)
	}
	if got := GEE(vals, 40); got > 40 {
		t.Errorf("GEE = %v exceeds population size 40", got)
	}
}

func TestGEEEmptyInput(t *testing.T) {
	if got := GEE(nil, 100); got != 0 {
		t.Errorf("GEE(nil) = %v", got)
	}
}

func TestGEERecoverUniformDistinct(t *testing.T) {
	// Population: 100k values over 500 distinct, uniform; a 2% sample
	// should estimate ~500 within a factor of 2 (GEE's guarantee band is
	// sqrt(N/n), so exactness is not expected).
	r := rand.New(rand.NewSource(1))
	sample := make([]int64, 2000)
	for i := range sample {
		sample[i] = int64(r.Intn(500))
	}
	got := GEE(sample, 100000)
	if got < 250 || got > 1000 {
		t.Errorf("GEE = %v, want within [250, 1000] around 500", got)
	}
}

func TestAggEstimatorStrings(t *testing.T) {
	if OptimizerAgg.String() != "optimizer" || GEEAgg.String() != "GEE" {
		t.Error("AggEstimator strings wrong")
	}
}

// TestGEEBeatsOptimizerOnFilteredGroups is the motivating scenario: a
// selective filter shrinks the set of groups actually present, which the
// catalog's whole-table distinct count cannot see.
func TestGEEBeatsOptimizerOnFilteredGroups(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	n := 40000
	rows := make([][]int64, n)
	for i := range rows {
		g := int64(r.Intn(2000)) // group key, 2000 distinct overall
		f := g % 100             // filter column correlated with group
		rows[i] = []int64{g, f}
	}
	db := engine.NewDB()
	db.Add(engine.NewTable("t", []string{"g", "f"}, rows))
	cat := catalog.Build(db)

	// Filter keeps only f < 5 -> only ~100 of the 2000 groups survive.
	plan := &engine.Node{Kind: engine.Aggregate, GroupCol: "g",
		Left: &engine.Node{Kind: engine.SeqScan, Table: "t",
			Preds: []engine.Predicate{{Col: "f", Op: engine.Lt, Lo: 5}}}}
	plan.Finalize()

	res, err := engine.Run(db, plan)
	if err != nil {
		t.Fatal(err)
	}
	truth := res.M // actual surviving groups

	sdb, err := Build(db, 0.05, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := EstimateWithOpts(plan, sdb, cat, Opts{Agg: OptimizerAgg})
	if err != nil {
		t.Fatal(err)
	}
	gee, err := EstimateWithOpts(plan, sdb, cat, Opts{Agg: GEEAgg})
	if err != nil {
		t.Fatal(err)
	}
	optErr := math.Abs(opt.ByID[plan.ID].EstCard - truth)
	geeErr := math.Abs(gee.ByID[plan.ID].EstCard - truth)
	if geeErr >= optErr {
		t.Errorf("GEE error %v (est %v) not below optimizer error %v (est %v), truth %v",
			geeErr, gee.ByID[plan.ID].EstCard, optErr, opt.ByID[plan.ID].EstCard, truth)
	}
}

func TestGEEScalarAggregate(t *testing.T) {
	db := synthDB(5000, 100, 10, 20)
	cat := catalog.Build(db)
	plan := &engine.Node{Kind: engine.Aggregate,
		Left: &engine.Node{Kind: engine.SeqScan, Table: "r"}}
	plan.Finalize()
	sdb, err := Build(db, 0.05, 1, 21)
	if err != nil {
		t.Fatal(err)
	}
	est, err := EstimateWithOpts(plan, sdb, cat, Opts{Agg: GEEAgg})
	if err != nil {
		t.Fatal(err)
	}
	if est.ByID[plan.ID].EstCard != 1 {
		t.Errorf("scalar aggregate card %v, want 1", est.ByID[plan.ID].EstCard)
	}
}
