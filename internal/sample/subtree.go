package sample

// Subtree-granular memoization of the sampling pass. Estimate runs one
// pass over the whole plan; EstimateMemo produces the identical result
// but computes it per subtree, consulting a caller-supplied memo keyed
// by canonical subtree signature plus sample-copy assignment. Two plans
// that share a subtree — e.g. alternative join orders enumerated by one
// Alternatives call, which permute the upper joins but keep lower
// subtrees intact — then share that subtree's sampling computation
// instead of each paying for it.
//
// The trick that makes a subtree pass position-independent is the local
// leaf frame: inside a Pass, the subtree's leaves are numbered
// 0..NumLeaves-1 left to right and sample-tuple provenance is
// positional, so nothing in the cached value depends on where the
// subtree sits in the enclosing plan. Only the OpEstimate leaf maps need
// re-keying (by the subtree's global leaf offset) when a cached Pass is
// spliced into a plan's Estimates, and only the sample-copy assignment —
// which is made globally, in plan order, exactly as Estimate makes it —
// enters the cache key, so the memoized numbers are the ones Estimate
// would have produced.

import (
	"context"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/catalog"
	"repro/internal/engine"
)

// Pass is the sampling computation of one plan subtree in the subtree's
// local leaf frame. It is immutable once computed and may be shared by
// any number of plans and goroutines.
type Pass struct {
	rows      []srow   // surviving sample tuples, positional provenance
	cols      []string // output columns, left to right
	numLeaves int
	// tainted marks the region at and above an aggregate (the Agg flag
	// of Algorithm 1), where sampling no longer applies: rows is nil and
	// est carries the optimizer's fallback numbers.
	tainted bool
	// est is the subtree root's estimate with LeafComp/LeafN keyed by
	// local leaf ordinals and Node left nil (both are position-dependent
	// and re-derived when the Pass is spliced into a plan).
	est OpEstimate
}

// NumLeaves returns the number of leaf relations under the subtree.
func (p *Pass) NumLeaves() int { return p.numLeaves }

// Rho returns the subtree root's selectivity estimate.
func (p *Pass) Rho() float64 { return p.est.Rho }

// PassMemo memoizes subtree passes by key: return the cached Pass for
// key, or compute, retain, and return it. Implementations own
// concurrency (the default EstimateMemo path is sequential per plan, but
// several plans may estimate at once). A nil PassMemo disables
// memoization.
type PassMemo func(key string, compute func() (*Pass, error)) (*Pass, error)

// globalEstimate splices the Pass's root estimate into a plan: leaf maps
// re-keyed by the subtree's global leaf offset, Node bound to the plan's
// own operator.
func (p *Pass) globalEstimate(n *engine.Node, offset int) *OpEstimate {
	lc := make(map[int]float64, len(p.est.LeafComp))
	for o, v := range p.est.LeafComp {
		lc[o+offset] = v
	}
	ln := make(map[int]int, len(p.est.LeafN))
	for o, v := range p.est.LeafN {
		ln[o+offset] = v
	}
	e := p.est
	e.Node = n
	e.LeafComp = lc
	e.LeafN = ln
	return &e
}

// passKey renders the memo key of a subtree: its canonical signature
// (operators, predicates, join order — the same rendering whole-plan
// memo keys use) plus the sample-copy index assigned to each leaf, so a
// subtree evaluated against different sample copies never aliases.
func passKey(n *engine.Node, copies []int) string {
	var b strings.Builder
	b.WriteString(n.String())
	b.WriteString("\x00copies=")
	for i, c := range copies {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(c))
	}
	return b.String()
}

// copyVec collects the sample-copy indices of the subtree's leaves in
// left-to-right order.
func copyVec(n *engine.Node, scanCopy map[int]int) []int {
	var out []int
	var walk func(x *engine.Node)
	walk = func(x *engine.Node) {
		if x.Kind.IsScan() {
			out = append(out, scanCopy[x.ID])
			return
		}
		if x.Left != nil {
			walk(x.Left)
		}
		if x.Right != nil {
			walk(x.Right)
		}
	}
	walk(n)
	return out
}

// subtreeOffset returns the global ordinal of the subtree's leftmost
// leaf — the offset that maps its local leaf frame into the plan's.
func subtreeOffset(n *engine.Node, scanOrd map[int]int) int {
	for !n.Kind.IsScan() {
		n = n.Left
	}
	return scanOrd[n.ID]
}

// EstimateMemo computes the same per-operator selectivity distributions
// as Estimate, but memoizes the work per subtree through memo: every
// operator — scans and joins below any aggregate, but also unary
// pass-throughs, aggregates, and the tainted joins above them — does
// one memo lookup keyed by its canonical subtree signature and
// sample-copy assignment, so plans sharing subtrees (alternative join
// orders above common lower joins) share those subtrees' sampling
// computations and a warm pass recomputes nothing, tainted region
// included. The ctx is observed between node evaluations, so
// cancellation cuts a pass short promptly.
//
// For a given plan, database, and samples the result is identical to
// Estimate's: the sequential pre-pass assigns leaf ordinals and sample
// copies in the same global left-to-right order, and the per-subtree
// math mirrors Algorithm 1 exactly, merely carried out in the local
// leaf frame.
func EstimateMemo(ctx context.Context, root *engine.Node, sdb *DB, cat *catalog.Catalog, memo PassMemo) (*Estimates, error) {
	if memo == nil {
		memo = func(_ string, compute func() (*Pass, error)) (*Pass, error) { return compute() }
	}
	if ctx == nil {
		ctx = context.Background()
	}
	est := &Estimates{ByID: make(map[int]*OpEstimate)}

	// Sequential pre-pass, identical to Estimate's: assign each scan its
	// global leaf ordinal and sample copy in left-to-right plan order, so
	// EstimateMemo reproduces Estimate's numbers exactly.
	scanTable := make(map[int]*Table)
	scanOrd := make(map[int]int)
	scanCopy := make(map[int]int)
	copyUse := make(map[string]int)
	leafCounter := 0
	var assign func(n *engine.Node) error
	assign = func(n *engine.Node) error {
		if n.Kind.IsScan() {
			copies := sdb.Copies[n.Table]
			if len(copies) == 0 {
				return fmt.Errorf("sample: no sample tables for %q", n.Table)
			}
			ci := copyUse[n.Table] % len(copies)
			scanOrd[n.ID] = leafCounter
			scanCopy[n.ID] = ci
			scanTable[n.ID] = copies[ci]
			copyUse[n.Table]++
			leafCounter++
			return nil
		}
		if n.Left != nil {
			if err := assign(n.Left); err != nil {
				return err
			}
		}
		if n.Right != nil {
			if err := assign(n.Right); err != nil {
				return err
			}
		}
		return nil
	}
	if err := assign(root); err != nil {
		return nil, err
	}

	// Bottom-up walk. A Pass with tainted set marks the region at and
	// above an aggregate, where sampling no longer applies (the Agg flag
	// of Algorithm 1) and estimates fall back to the optimizer's. The
	// tainted region and the unary pass-throughs memoize like everything
	// else — their fallback numbers are pure functions of the subtree
	// signature and copy assignment too — so a warm pass over a plan
	// with sorts or aggregates recomputes nothing.
	var walk func(n *engine.Node) (*Pass, error)
	walk = func(n *engine.Node) (*Pass, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		switch {
		case n.Kind.IsScan():
			p, err := memo(passKey(n, []int{scanCopy[n.ID]}), func() (*Pass, error) {
				return scanPass(n, scanTable[n.ID], cat)
			})
			if err != nil {
				return nil, err
			}
			est.ByID[n.ID] = p.globalEstimate(n, scanOrd[n.ID])
			return p, nil

		case n.Kind.IsJoin():
			left, err := walk(n.Left)
			if err != nil {
				return nil, err
			}
			right, err := walk(n.Right)
			if err != nil {
				return nil, err
			}
			var p *Pass
			if left.tainted || right.tainted {
				// Above an aggregate: optimizer estimate, zero variance.
				p, err = memo(passKey(n, copyVec(n, scanCopy)), func() (*Pass, error) {
					return taintedJoinPass(n, left.numLeaves+right.numLeaves, cat)
				})
			} else {
				p, err = memo(passKey(n, copyVec(n, scanCopy)), func() (*Pass, error) {
					return joinPass(n, left, right, cat)
				})
			}
			if err != nil {
				return nil, err
			}
			est.ByID[n.ID] = p.globalEstimate(n, subtreeOffset(n, scanOrd))
			return p, nil

		case n.Kind == engine.Aggregate:
			child, err := walk(n.Left)
			if err != nil {
				return nil, err
			}
			p, err := memo(passKey(n, copyVec(n, scanCopy)), func() (*Pass, error) {
				return aggregatePass(n, child, cat)
			})
			if err != nil {
				return nil, err
			}
			est.ByID[n.ID] = p.globalEstimate(n, subtreeOffset(n, scanOrd))
			return p, nil

		default: // Sort, Materialize: pass-through, same selectivity variable
			child, err := walk(n.Left)
			if err != nil {
				return nil, err
			}
			p, err := memo(passKey(n, copyVec(n, scanCopy)), func() (*Pass, error) {
				return unaryPass(n, child), nil
			})
			if err != nil {
				return nil, err
			}
			est.ByID[n.ID] = p.globalEstimate(n, subtreeOffset(n, scanOrd))
			return p, nil
		}
	}
	if _, err := walk(root); err != nil {
		return nil, err
	}
	return est, nil
}

// taintedJoinPass builds the Pass of a join above an aggregate: the
// sampling pass stops at the aggregate, so the join's estimate is the
// optimizer's cardinality over its full Cartesian size, with zero
// variance and empty (non-nil, matching Estimate) leaf maps.
func taintedJoinPass(n *engine.Node, numLeaves int, cat *catalog.Catalog) (*Pass, error) {
	full, err := fullSize(n, cat)
	if err != nil {
		return nil, err
	}
	card, err := optimizerCard(n, cat)
	if err != nil {
		return nil, err
	}
	rho := 0.0
	if full > 0 {
		rho = card / full
	}
	return &Pass{
		numLeaves: numLeaves,
		tainted:   true,
		est: OpEstimate{
			Rho:           rho,
			FromOptimizer: true,
			LeafComp:      map[int]float64{},
			LeafN:         map[int]int{},
			EstCard:       card,
		},
	}, nil
}

// aggregatePass builds the Pass of an aggregate — the node that taints
// everything above it. The estimate is the optimizer's group count; the
// sample counts record the unary work of aggregating the child's
// surviving sample rows (zero when the child itself is tainted), which
// is fixed by the subtree signature and copy assignment, so the Pass
// memoizes safely.
func aggregatePass(n *engine.Node, child *Pass, cat *catalog.Catalog) (*Pass, error) {
	rows := len(child.rows)
	full, err := fullSize(n, cat)
	if err != nil {
		return nil, err
	}
	card, err := optimizerCard(n, cat)
	if err != nil {
		return nil, err
	}
	rho := 0.0
	if full > 0 {
		rho = card / full
	}
	return &Pass{
		numLeaves: child.numLeaves,
		tainted:   true,
		est: OpEstimate{
			Rho:           rho,
			Var:           0,
			LeafComp:      map[int]float64{},
			LeafN:         map[int]int{},
			FromOptimizer: true,
			EstCard:       card,
			SampleCounts:  engine.UnaryCounts(engine.Aggregate, float64(rows)),
		},
	}, nil
}

// unaryPass builds the Pass of a Sort or Materialize: the child's rows
// and estimate pass through unchanged — same selectivity variable, same
// leaf components, same taint — with only the operator's own unary work
// added to the sample counts.
func unaryPass(n *engine.Node, child *Pass) *Pass {
	e := child.est
	e.SampleCounts = engine.UnaryCounts(n.Kind, float64(len(child.rows)))
	return &Pass{
		rows:      child.rows,
		cols:      child.cols,
		numLeaves: child.numLeaves,
		tainted:   child.tainted,
		est:       e,
	}
}

// scanPass evaluates one scan over its sample table in the local frame
// (the scan is leaf ordinal 0 of its own subtree). The math mirrors
// evalScan exactly.
func scanPass(n *engine.Node, st *Table, cat *catalog.Catalog) (*Pass, error) {
	idx := make([]int, len(n.Preds))
	for pi := range n.Preds {
		idx[pi] = -1
		for i, c := range st.cols {
			if c == n.Preds[pi].Col {
				idx[pi] = i
				break
			}
		}
		if idx[pi] < 0 {
			return nil, fmt.Errorf("sample: predicate column %q not in %q", n.Preds[pi].Col, n.Table)
		}
	}
	nTotal := st.N()
	rows := make([]srow, 0, nTotal)
	mIndex := 0.0
	for i, r := range st.Rows {
		if len(n.Preds) > 0 && !n.Preds[0].Matches(r[idx[0]]) {
			continue
		}
		mIndex++
		ok := true
		for pi := 1; pi < len(n.Preds); pi++ {
			if !n.Preds[pi].Matches(r[idx[pi]]) {
				ok = false
				break
			}
		}
		if ok {
			rows = append(rows, srow{vals: r, prov: []int32{int32(i)}})
		}
	}
	if len(n.Preds) == 0 {
		mIndex = float64(nTotal)
	}
	rho := float64(len(rows)) / float64(nTotal)
	v := rho * (1 - rho) / float64(nTotal)
	// Floor an all-miss sample at half an observation with 100% relative
	// uncertainty, as evalScan does.
	if len(rows) == 0 {
		rho = 0.5 / float64(nTotal)
		v = rho * rho
	}
	full, err := fullSize(n, cat)
	if err != nil {
		return nil, err
	}
	return &Pass{
		rows:      rows,
		cols:      st.cols,
		numLeaves: 1,
		est: OpEstimate{
			Rho:          rho,
			Var:          v,
			LeafComp:     map[int]float64{0: v},
			LeafN:        map[int]int{0: nTotal},
			EstCard:      rho * full,
			SampleCounts: engine.ScanCounts(n.Kind, float64(nTotal), mIndex, len(n.Preds)),
		},
	}, nil
}

// joinPass joins two child passes in the local frame: the left child
// keeps ordinals 0..nl-1, the right child's shift up by nl, so local
// ordinal and provenance position coincide. The math mirrors evalJoin
// exactly (Algorithm 1 lines 11-13 and the Appendix A.7 components).
func joinPass(n *engine.Node, left, right *Pass, cat *catalog.Catalog) (*Pass, error) {
	li := colIndex(left.cols, n.LeftCol)
	ri := colIndex(right.cols, n.RightCol)
	if li < 0 || ri < 0 {
		return nil, fmt.Errorf("sample: join columns %q/%q not found", n.LeftCol, n.RightCol)
	}
	out := hashJoinPassRows(left.rows, right.rows, li, ri)
	k := left.numLeaves + right.numLeaves

	leafN := make(map[int]int, k)
	for o, v := range left.est.LeafN {
		leafN[o] = v
	}
	for o, v := range right.est.LeafN {
		leafN[o+left.numLeaves] = v
	}

	// rho_n = |out| / Pi_k n_k, accumulated in left-to-right leaf order
	// like evalJoin.
	prodN := 1.0
	for o := 0; o < k; o++ {
		prodN *= float64(leafN[o])
	}
	rho := float64(len(out)) / prodN

	// Q_{k,j,n} accumulation: one scan of the join result, incrementing
	// dense per-leaf arrays indexed by provenance (position o is local
	// ordinal o). Dense arrays keep the variance sum below in a fixed
	// order — map iteration would reorder the float additions run to run
	// and break the byte-identical determinism contract.
	qs := make([][]float64, k)
	for o := range qs {
		qs[o] = make([]float64, leafN[o])
	}
	for _, t := range out {
		for o := 0; o < k; o++ {
			qs[o][t.prov[o]]++
		}
	}

	// Tuples j with Q_{k,j} = 0 contribute d = -rho, i.e. rho^2 each.
	leafComp := make(map[int]float64, k)
	var totalVar float64
	for o := 0; o < k; o++ {
		nk := float64(leafN[o])
		denom := prodN / nk
		var ss float64
		for _, q := range qs[o] {
			d := q/denom - rho
			ss += d * d
		}
		vk := 0.0
		if nk > 1 {
			vk = ss / (nk - 1)
		}
		wk := vk / nk
		leafComp[o] = wk
		totalVar += wk
	}

	full, err := fullSize(n, cat)
	if err != nil {
		return nil, err
	}

	// Empty-join floor, as in evalJoin: half an observation with 100%
	// relative uncertainty, spread evenly over the leaves.
	if len(out) == 0 {
		rho = 0.5 / prodN
		totalVar = rho * rho
		for o := 0; o < k; o++ {
			leafComp[o] = totalVar / float64(k)
		}
	}

	return &Pass{
		rows:      out,
		cols:      append(append([]string{}, left.cols...), right.cols...),
		numLeaves: k,
		est: OpEstimate{
			Rho:      rho,
			Var:      totalVar,
			LeafComp: leafComp,
			LeafN:    leafN,
			EstCard:  rho * full,
			SampleCounts: engine.JoinCounts(n.Kind,
				float64(len(left.rows)), float64(len(right.rows)), float64(len(out))),
		},
	}, nil
}

// hashJoinPassRows is hashJoinSRows over bare row slices; both share
// the flat-arena join in hashJoinRows.
func hashJoinPassRows(leftRows, rightRows []srow, li, ri int) []srow {
	return hashJoinRows(leftRows, rightRows, li, ri)
}
