// Command benchjson converts `go test -bench` output on stdin into a
// JSON array on stdout, one object per benchmark result line — the
// BENCH_* trajectory format:
//
//	go test -run '^$' -bench . -benchmem ./... | go run ./internal/tools/benchjson
//
// Lines that are not benchmark results (package headers, PASS/ok) are
// ignored.
//
// With -compare old.json the parsed results are additionally checked
// against a previously recorded trajectory: any benchmark present in
// both whose throughput (1/ns_per_op) fell by more than -threshold
// (default 0.25, i.e. 25%) is reported on stderr and the process exits
// nonzero — the `make bench-check` regression gate. Benchmarks present
// on only one side are ignored (renames and new benchmarks are not
// regressions).
//
// Allocation counts are compared advisorily: a benchmark whose
// allocs/op grew by more than -alloc-threshold (default 0.25) is
// reported on stderr but never fails the run — allocs are a leading
// indicator worth surfacing in CI logs, not a hard gate (pool warm-up
// and iteration counts make them noisier than throughput).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line. Custom b.ReportMetric columns
// (events/s, fitness, ...) land in Metrics keyed by unit, so domain
// numbers ride the trajectory next to the timing columns.
type Result struct {
	Name        string             `json:"name"`
	Procs       int                `json:"procs"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"b_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	compare := flag.String("compare", "", "baseline JSON trajectory to compare against; exit nonzero on throughput regression")
	threshold := flag.Float64("threshold", 0.25, "allowed fractional throughput drop vs the baseline (0.25 = 25%)")
	allocThreshold := flag.Float64("alloc-threshold", 0.25, "fractional allocs/op growth vs the baseline to warn about (advisory, never fails)")
	flag.Parse()

	// Non-nil so an empty run encodes as [], never null.
	results := []Result{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if r, ok := parse(line); ok {
			results = append(results, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	if *compare == "" {
		return
	}
	data, err := os.ReadFile(*compare)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	var baseline []Result
	if err := json.Unmarshal(data, &baseline); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: parse %s: %v\n", *compare, err)
		os.Exit(1)
	}
	for _, w := range allocGrowth(baseline, results, *allocThreshold) {
		fmt.Fprintln(os.Stderr, "benchjson: ALLOCS (advisory):", w)
	}
	regs := regressions(baseline, results, *threshold)
	for _, r := range regs {
		fmt.Fprintln(os.Stderr, "benchjson: REGRESSION:", r)
	}
	if len(regs) > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: %d benchmark(s) regressed more than %.0f%% vs %s\n",
			len(regs), 100**threshold, *compare)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: %d benchmark(s) within %.0f%% of %s\n",
		len(results), 100**threshold, *compare)
}

// eventsMetric is the simulator benchmarks' domain-throughput column
// (b.ReportMetric unit): simulated events processed per wall second.
const eventsMetric = "events/s"

// regressions compares current against baseline by name and returns a
// description of every benchmark whose throughput dropped by more than
// threshold: throughput is 1/ns_per_op, so a drop beyond threshold
// means newNs > oldNs / (1 - threshold). Benchmarks reporting the
// events/s metric on both sides get a second floor on that number —
// the simulator benchmarks' real figure of merit, which ns/op alone
// misses when an op spans a whole scenario whose event count shifts.
func regressions(baseline, current []Result, threshold float64) []string {
	if threshold <= 0 || threshold >= 1 {
		return []string{fmt.Sprintf("invalid threshold %v (want 0 < t < 1)", threshold)}
	}
	old := make(map[string]Result, len(baseline))
	for _, r := range baseline {
		old[r.Name] = r
	}
	var regs []string
	for _, r := range current {
		o, ok := old[r.Name]
		if !ok || o.NsPerOp <= 0 || r.NsPerOp <= 0 {
			continue
		}
		limit := o.NsPerOp / (1 - threshold)
		if r.NsPerOp > limit {
			drop := 1 - o.NsPerOp/r.NsPerOp
			regs = append(regs, fmt.Sprintf("%s: %.0f -> %.0f ns/op (throughput -%.1f%%, limit -%.0f%%)",
				r.Name, o.NsPerOp, r.NsPerOp, 100*drop, 100*threshold))
		}
		oldEv, newEv := o.Metrics[eventsMetric], r.Metrics[eventsMetric]
		if oldEv > 0 && newEv > 0 && newEv < oldEv*(1-threshold) {
			drop := 1 - newEv/oldEv
			regs = append(regs, fmt.Sprintf("%s: %.0f -> %.0f events/s (-%.1f%%, limit -%.0f%%)",
				r.Name, oldEv, newEv, 100*drop, 100*threshold))
		}
	}
	return regs
}

// allocGrowth compares current against baseline by name and describes
// every benchmark whose allocs/op grew by more than threshold. Purely
// advisory: callers print the descriptions to stderr without affecting
// the exit status. Benchmarks missing an allocs/op column on either
// side (run without -benchmem) are skipped.
func allocGrowth(baseline, current []Result, threshold float64) []string {
	if threshold <= 0 {
		return nil
	}
	old := make(map[string]Result, len(baseline))
	for _, r := range baseline {
		old[r.Name] = r
	}
	var warns []string
	for _, r := range current {
		o, ok := old[r.Name]
		if !ok || o.AllocsPerOp <= 0 || r.AllocsPerOp <= 0 {
			continue
		}
		if r.AllocsPerOp > o.AllocsPerOp*(1+threshold) {
			grow := r.AllocsPerOp/o.AllocsPerOp - 1
			warns = append(warns, fmt.Sprintf("%s: %.0f -> %.0f allocs/op (+%.1f%%, advisory limit +%.0f%%)",
				r.Name, o.AllocsPerOp, r.AllocsPerOp, 100*grow, 100*threshold))
		}
	}
	return warns
}

// parse decodes one "BenchmarkFoo-8  100  123 ns/op  45 B/op  6 allocs/op"
// line; the B/op and allocs/op columns are optional.
func parse(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	// The full name (including the -N GOMAXPROCS suffix) stays in Name —
	// sub-benchmark names may themselves end in "-<count>", so stripping
	// would collide distinct results. Procs records the parsed suffix.
	r := Result{Name: fields[0], Procs: 1}
	if i := strings.LastIndex(fields[0], "-"); i > 0 {
		if p, err := strconv.Atoi(fields[0][i+1:]); err == nil {
			r.Procs = p
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r.Iterations = iters
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			r.AllocsPerOp = v
		default:
			if r.Metrics == nil {
				r.Metrics = make(map[string]float64)
			}
			r.Metrics[unit] = v
		}
	}
	if r.NsPerOp == 0 {
		return Result{}, false
	}
	return r, true
}
