// Command benchjson converts `go test -bench` output on stdin into a
// JSON array on stdout, one object per benchmark result line — the
// BENCH_* trajectory format:
//
//	go test -run '^$' -bench . -benchmem ./... | go run ./internal/tools/benchjson
//
// Lines that are not benchmark results (package headers, PASS/ok) are
// ignored.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Procs       int     `json:"procs"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"b_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

func main() {
	// Non-nil so an empty run encodes as [], never null.
	results := []Result{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if r, ok := parse(line); ok {
			results = append(results, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parse decodes one "BenchmarkFoo-8  100  123 ns/op  45 B/op  6 allocs/op"
// line; the B/op and allocs/op columns are optional.
func parse(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	// The full name (including the -N GOMAXPROCS suffix) stays in Name —
	// sub-benchmark names may themselves end in "-<count>", so stripping
	// would collide distinct results. Procs records the parsed suffix.
	r := Result{Name: fields[0], Procs: 1}
	if i := strings.LastIndex(fields[0], "-"); i > 0 {
		if p, err := strconv.Atoi(fields[0][i+1:]); err == nil {
			r.Procs = p
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r.Iterations = iters
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			r.AllocsPerOp = v
		}
	}
	if r.NsPerOp == 0 {
		return Result{}, false
	}
	return r, true
}
