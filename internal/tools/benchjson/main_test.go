package main

import (
	"strings"
	"testing"
)

func TestParse(t *testing.T) {
	r, ok := parse("BenchmarkPredictBatch/workers=4-8   	     100	  123456 ns/op	   45678 B/op	     321 allocs/op")
	if !ok {
		t.Fatal("line not parsed")
	}
	if r.Name != "BenchmarkPredictBatch/workers=4-8" || r.Procs != 8 ||
		r.Iterations != 100 || r.NsPerOp != 123456 || r.BytesPerOp != 45678 || r.AllocsPerOp != 321 {
		t.Fatalf("parsed %+v", r)
	}
	for _, line := range []string{"PASS", "ok  	repro	1.2s", "goos: linux", "Benchmark (incomplete)"} {
		if _, ok := parse(line); ok {
			t.Errorf("non-result line parsed: %q", line)
		}
	}
}

func TestParseCustomMetrics(t *testing.T) {
	r, ok := parse("BenchmarkSimPoisson-8   	      10	 12345678 ns/op	      2500000 events/s	         1.375 fitness	 45678 B/op	     321 allocs/op")
	if !ok {
		t.Fatal("line not parsed")
	}
	if r.NsPerOp != 12345678 || r.BytesPerOp != 45678 || r.AllocsPerOp != 321 {
		t.Fatalf("standard columns misparsed: %+v", r)
	}
	if r.Metrics["events/s"] != 2500000 || r.Metrics["fitness"] != 1.375 {
		t.Fatalf("custom metrics = %v, want events/s and fitness", r.Metrics)
	}
	// Lines without custom columns keep a nil map (omitted from JSON).
	r, ok = parse("BenchmarkPlain-8   	     100	  1000 ns/op")
	if !ok || r.Metrics != nil {
		t.Fatalf("plain line: ok=%v metrics=%v", ok, r.Metrics)
	}
}

func TestRegressions(t *testing.T) {
	base := []Result{
		{Name: "BenchmarkA-8", NsPerOp: 1000},
		{Name: "BenchmarkB-8", NsPerOp: 1000},
		{Name: "BenchmarkGone-8", NsPerOp: 1000},
	}
	cur := []Result{
		// 1300 ns/op: throughput -23%, inside the 25% budget.
		{Name: "BenchmarkA-8", NsPerOp: 1300},
		// 1400 ns/op: throughput -28.6%, a regression.
		{Name: "BenchmarkB-8", NsPerOp: 1400},
		// New benchmark with no baseline: ignored.
		{Name: "BenchmarkNew-8", NsPerOp: 1e9},
	}
	regs := regressions(base, cur, 0.25)
	if len(regs) != 1 || !strings.Contains(regs[0], "BenchmarkB-8") {
		t.Fatalf("regressions = %v, want exactly BenchmarkB-8", regs)
	}
	// The boundary itself is not a regression: limit is old/(1-t).
	exact := []Result{{Name: "BenchmarkA-8", NsPerOp: 1000 / 0.75}}
	if regs := regressions(base, exact, 0.25); len(regs) != 0 {
		t.Fatalf("boundary flagged: %v", regs)
	}
	if regs := regressions(base, cur, 1.5); len(regs) != 1 || !strings.Contains(regs[0], "invalid threshold") {
		t.Fatalf("bad threshold not rejected: %v", regs)
	}
}

func TestRegressionsEventsPerSecondFloor(t *testing.T) {
	base := []Result{
		{Name: "BenchmarkSim-8", NsPerOp: 1000, Metrics: map[string]float64{"events/s": 100000, "fitness": 1.1}},
		{Name: "BenchmarkNoEvents-8", NsPerOp: 1000},
	}
	// ns/op healthy but events/s down 40%: the floor catches what the
	// timing column misses.
	cur := []Result{
		{Name: "BenchmarkSim-8", NsPerOp: 1000, Metrics: map[string]float64{"events/s": 60000, "fitness": 1.1}},
		{Name: "BenchmarkNoEvents-8", NsPerOp: 1000},
	}
	regs := regressions(base, cur, 0.25)
	if len(regs) != 1 || !strings.Contains(regs[0], "events/s") {
		t.Fatalf("regressions = %v, want exactly one events/s regression", regs)
	}
	// Inside the budget: -20% is allowed.
	ok := []Result{
		{Name: "BenchmarkSim-8", NsPerOp: 1000, Metrics: map[string]float64{"events/s": 80000}},
	}
	if regs := regressions(base, ok, 0.25); len(regs) != 0 {
		t.Fatalf("in-budget events/s drop flagged: %v", regs)
	}
	// The metric missing on either side is not a regression (other
	// custom metrics, e.g. fitness, never trip the throughput floor).
	gone := []Result{
		{Name: "BenchmarkSim-8", NsPerOp: 1000, Metrics: map[string]float64{"fitness": 0.1}},
		{Name: "BenchmarkNoEvents-8", NsPerOp: 1000, Metrics: map[string]float64{"events/s": 1}},
	}
	if regs := regressions(base, gone, 0.25); len(regs) != 0 {
		t.Fatalf("one-sided events/s flagged: %v", regs)
	}
}

func TestAllocGrowth(t *testing.T) {
	base := []Result{
		{Name: "BenchmarkA-8", NsPerOp: 1000, AllocsPerOp: 100},
		{Name: "BenchmarkB-8", NsPerOp: 1000, AllocsPerOp: 100},
		{Name: "BenchmarkNoMem-8", NsPerOp: 1000},
	}
	cur := []Result{
		// +20%: inside the 25% advisory budget.
		{Name: "BenchmarkA-8", NsPerOp: 1000, AllocsPerOp: 120},
		// +50%: warned about.
		{Name: "BenchmarkB-8", NsPerOp: 1000, AllocsPerOp: 150},
		// No allocs column on the baseline side: skipped.
		{Name: "BenchmarkNoMem-8", NsPerOp: 1000, AllocsPerOp: 1e6},
		// No baseline at all: skipped.
		{Name: "BenchmarkNew-8", NsPerOp: 1000, AllocsPerOp: 1e6},
	}
	warns := allocGrowth(base, cur, 0.25)
	if len(warns) != 1 || !strings.Contains(warns[0], "BenchmarkB-8") {
		t.Fatalf("allocGrowth = %v, want exactly BenchmarkB-8", warns)
	}
	// The boundary itself is not a warning: limit is old*(1+t).
	exact := []Result{{Name: "BenchmarkA-8", NsPerOp: 1000, AllocsPerOp: 125}}
	if warns := allocGrowth(base, exact, 0.25); len(warns) != 0 {
		t.Fatalf("boundary flagged: %v", warns)
	}
	// Disabled threshold returns nothing.
	if warns := allocGrowth(base, cur, 0); warns != nil {
		t.Fatalf("threshold 0 produced warnings: %v", warns)
	}
}
