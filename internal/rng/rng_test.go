package rng

import (
	"hash/fnv"
	"math"
	"math/rand"
	"testing"
)

// oldExecSeed is the pre-seam derivation verbatim (api.go's execSeed
// before it delegated here): hash/fnv over qname·\x00·plansig, XOR
// seed+3, splitmix finalizer. ExecKey must match it bit for bit or
// every v1 golden breaks.
func oldExecSeed(seed int64, qname, plansig string) int64 {
	h := fnv.New64a()
	h.Write([]byte(qname))
	h.Write([]byte{0})
	h.Write([]byte(plansig))
	z := uint64(seed+3) ^ h.Sum64()
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	return int64(z)
}

func TestExecKeyMatchesHistoricalDerivation(t *testing.T) {
	cases := []struct {
		seed           int64
		qname, plansig string
	}{
		{0, "", ""},
		{1, "q", "sig"},
		{5, "tenant/template#00042", "J(J(S(t0),S(t1)),S(t2))"},
		{-7, "weird\x00name", "sig\x00with\x00zeros"},
		{1 << 40, "α-unicode", "π"},
	}
	for _, c := range cases {
		if got, want := ExecKey(c.seed, c.qname, c.plansig), oldExecSeed(c.seed, c.qname, c.plansig); got != want {
			t.Errorf("ExecKey(%d, %q, %q) = %d, want %d", c.seed, c.qname, c.plansig, got, want)
		}
	}
}

func TestParseVersion(t *testing.T) {
	for _, c := range []struct {
		in   string
		want Version
	}{{"", V1}, {"v1", V1}, {"v2", V2}} {
		got, err := ParseVersion(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseVersion(%q) = %v, %v; want %v, nil", c.in, got, err, c.want)
		}
	}
	if _, err := ParseVersion("v3"); err == nil {
		t.Fatal("ParseVersion(v3): want error")
	} else if want := `unknown rng version "v3" (valid: v1, v2)`; err.Error() != want {
		t.Errorf("ParseVersion(v3) error = %q, want %q", err, want)
	}
	if v := Version(0); v.String() != "v1" {
		t.Errorf("zero Version.String() = %q, want v1", v)
	}
}

func TestStreamDeterministicPerKey(t *testing.T) {
	a, b := NewStream(42), NewStream(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with equal keys diverged at draw %d", i)
		}
	}
	c := NewStream(43)
	a = NewStream(42)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams with distinct keys coincided on %d/100 draws", same)
	}
}

func TestStreamFloat64Range(t *testing.T) {
	s := NewStream(7)
	for i := 0; i < 10000; i++ {
		if f := s.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 draw %d = %g out of [0,1)", i, f)
		}
	}
}

func TestStreamIntnBoundsAndUniformity(t *testing.T) {
	s := NewStream(9)
	const n, draws = 7, 70000
	var counts [n]int
	for i := 0; i < draws; i++ {
		v := s.Intn(n)
		if v < 0 || v >= n {
			t.Fatalf("Intn(%d) = %d out of range", n, v)
		}
		counts[v]++
	}
	for i, c := range counts {
		if c < draws/n*8/10 || c > draws/n*12/10 {
			t.Errorf("Intn bucket %d: %d draws, want ~%d", i, c, draws/n)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0): want panic")
		}
	}()
	s.Intn(0)
}

// TestStreamMoments pins the distributions the measurement path relies
// on: NormFloat64 ~ N(0,1), ExpFloat64 ~ Exp(1), Float64 ~ U[0,1).
func TestStreamMoments(t *testing.T) {
	s := NewStream(11)
	const n = 200000
	var sumN, sumN2, sumE, sumU float64
	for i := 0; i < n; i++ {
		x := s.NormFloat64()
		sumN += x
		sumN2 += x * x
		sumE += s.ExpFloat64()
		sumU += s.Float64()
	}
	if mean := sumN / n; math.Abs(mean) > 0.01 {
		t.Errorf("NormFloat64 mean = %g, want ~0", mean)
	}
	if v := sumN2 / n; math.Abs(v-1) > 0.02 {
		t.Errorf("NormFloat64 variance = %g, want ~1", v)
	}
	if mean := sumE / n; math.Abs(mean-1) > 0.02 {
		t.Errorf("ExpFloat64 mean = %g, want ~1", mean)
	}
	if mean := sumU / n; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean = %g, want ~0.5", mean)
	}
}

// Both generators must satisfy Source — the arrival-path seam.
var (
	_ Source = (*Stream)(nil)
	_ Source = (*rand.Rand)(nil)
)

func BenchmarkStreamSeedAndDraw(b *testing.B) {
	b.ReportAllocs()
	var sink float64
	for i := 0; i < b.N; i++ {
		s := NewStream(int64(i))
		sink += s.NormFloat64()
	}
	_ = sink
}

func BenchmarkMathRandSeedAndDraw(b *testing.B) {
	b.ReportAllocs()
	var sink float64
	for i := 0; i < b.N; i++ {
		r := rand.New(rand.NewSource(int64(i)))
		sink += r.NormFloat64()
	}
	_ = sink
}
