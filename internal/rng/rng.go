// Package rng is the versioned measurement-stream seam: every source of
// per-execution randomness in the pipeline (measured plan times, sim
// arrival processes) draws through this package, selected by a Version.
//
// Version 1 is the historical stream — math/rand's lagged-Fibonacci
// source seeded per execution — kept bit-for-bit so every report, trace,
// and calibration stream pinned before the seam existed stays
// byte-identical. Version 2 is a counter-based splitmix64 stream seeded
// directly from a 64-bit key: no ~607-word seeding ritual, no heap
// allocation, statistically equivalent draws (pinned by test at the
// root package). The key derivation (ExecKey) is shared by both
// versions and is bit-identical to the pre-seam execSeed, so v1 and v2
// executions of the same (seed, query, plan) differ only in generator,
// never in seeding.
package rng

import (
	"fmt"
	"math"
	"math/bits"
	"strings"
)

// Version selects a measurement-stream generation. The zero value is
// V1, so an unversioned Config or scenario keeps the historical stream
// and its pinned goldens.
type Version uint8

const (
	// V1 is the historical math/rand stream (default; byte-compatible
	// with every golden pinned before the seam existed).
	V1 Version = iota
	// V2 is the counter-based splitmix64 stream: zero-allocation,
	// no seeding warm-up, statistically equivalent to V1.
	V2
)

// String returns the scenario-schema spelling of v ("v1", "v2").
func (v Version) String() string {
	if v == V2 {
		return "v2"
	}
	return "v1"
}

// Versions lists the accepted scenario-schema spellings, in order.
func Versions() []string { return []string{"v1", "v2"} }

// ParseVersion maps a scenario-schema spelling to a Version. The empty
// string selects V1 (unversioned scenarios keep the historical stream);
// anything else unknown is rejected listing the vocabulary.
func ParseVersion(s string) (Version, error) {
	switch s {
	case "", "v1":
		return V1, nil
	case "v2":
		return V2, nil
	}
	return 0, fmt.Errorf("unknown rng version %q (valid: %s)",
		s, strings.Join(Versions(), ", "))
}

// FNV-1a constants (hash/fnv's 64-bit parameters), inlined so ExecKey
// hashes incrementally with zero allocation.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// ExecKey derives the deterministic per-execution stream key from the
// configured master seed and a fingerprint of the query and its plan —
// bit-identical to the historical execSeed (FNV-1a over
// qname·\x00·plansig, XOR seed+3, splitmix finalizer), but without the
// hash-object and byte-slice allocations: the parts are hashed
// incrementally. Two Systems with the same Config measure the same time
// for the same query; distinct queries get well-separated streams.
func ExecKey(seed int64, qname, plansig string) int64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(qname); i++ {
		h ^= uint64(qname[i])
		h *= fnvPrime64
	}
	// The \x00 separator: XOR with zero is the identity, so only the
	// multiply survives.
	h *= fnvPrime64
	for i := 0; i < len(plansig); i++ {
		h ^= uint64(plansig[i])
		h *= fnvPrime64
	}
	z := uint64(seed+3) ^ h
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	return int64(z)
}

// Stream is the V2 generator: splitmix64 over a counter, with a cached
// spare normal draw (Marsaglia polar). The zero value is a valid stream
// keyed by 0; NewStream keys one by an ExecKey. Streams are values —
// callers keep them on the stack and pass pointers, so a measurement
// draw allocates nothing.
type Stream struct {
	state    uint64
	spare    float64
	hasSpare bool
}

// NewStream returns a stream positioned at key's first draw.
func NewStream(key int64) Stream { return Stream{state: uint64(key)} }

// Uint64 advances the counter and returns the next 64 uniform bits
// (splitmix64: Weyl-sequence increment, two xor-multiply mixes).
func (s *Stream) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// Float64 returns a uniform draw in [0, 1) with 53 bits of precision.
func (s *Stream) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normal draw via the Marsaglia polar
// method, caching the pair's second draw. (math/rand uses a ziggurat;
// the distributions agree, the streams do not — which is exactly what
// the version seam exists to manage.)
func (s *Stream) NormFloat64() float64 {
	if s.hasSpare {
		s.hasSpare = false
		return s.spare
	}
	for {
		u := 2*s.Float64() - 1
		v := 2*s.Float64() - 1
		q := u*u + v*v
		if q == 0 || q >= 1 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(q) / q)
		s.spare = v * f
		s.hasSpare = true
		return u * f
	}
}

// ExpFloat64 returns an Exp(1) draw by inversion.
func (s *Stream) ExpFloat64() float64 {
	return -math.Log(1 - s.Float64())
}

// Intn returns a uniform draw in [0, n) via Lemire's multiply-shift
// rejection. Panics if n <= 0, matching math/rand.
func (s *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	hi, lo := bits.Mul64(s.Uint64(), uint64(n))
	if lo < uint64(n) {
		thresh := -uint64(n) % uint64(n) // (2^64 - n) mod n
		for lo < thresh {
			hi, lo = bits.Mul64(s.Uint64(), uint64(n))
		}
	}
	return int(hi)
}

// Source is the draw vocabulary the simulator's arrival processes need;
// both *math/rand.Rand (V1) and *Stream (V2) satisfy it. Only the
// once-per-tenant arrival path accepts a Source — the per-execution
// measurement path stays on concrete types so V2 draws never box.
type Source interface {
	Float64() float64
	ExpFloat64() float64
	NormFloat64() float64
	Intn(n int) int
}
