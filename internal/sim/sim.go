package sim

import (
	"container/heap"
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"

	uaqetp "repro"
	"repro/internal/serve"
	"repro/internal/workload"
)

// eventKind discriminates the two discrete events.
type eventKind int

const (
	// evArrival is one query arriving at the router.
	evArrival eventKind = iota
	// evFree is a machine finishing its in-flight query.
	evFree
)

// event is one entry in the simulation's time-ordered event queue.
type event struct {
	at   float64
	seq  uint64 // tie-break at equal times: assignment order
	kind eventKind

	// Arrival fields.
	tenant   int
	q        *uaqetp.Query
	deadline float64 // effective deadline, for the router's risk math

	// Free fields.
	machine int
}

// eventHeap orders events by (time, seq): a deterministic total order.
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return it
}

// pendingArrival remembers when an admitted request arrived (and whose
// it was), so outcomes can be turned into end-to-end latencies.
type pendingArrival struct {
	tenant int
	at     float64
}

// machineState is one simulated execution server: a serve.Server over
// the machine's own System (profile-specific calibration, predictor,
// and executor — a WithMachine sibling of the scenario's base System,
// or the base itself for default machines).
type machineState struct {
	srv *serve.Server
	sys *uaqetp.System
	// spec labels the machine (resolved profile name + drift) on
	// labeled fleets; zero on count-shorthand fleets, which keep the
	// pre-heterogeneity report shape.
	spec MachineSpec
	// tenants are this machine's tenant façades in scenario tenant
	// order: each carries the machine's units behind its own
	// hot-swappable predictor handle, so per-machine routing sees
	// recalibrations the moment they land.
	tenants  []*serve.Tenant
	busy     bool
	busyTime float64
	executed int
	pending  map[uint64]pendingArrival
}

// tenantState is one traffic source.
type tenantState struct {
	spec        TenantSpec
	sys         *uaqetp.System
	effDeadline float64
	latencies   []float64
	queueWaits  []float64
}

// simRun is the mutable state of one simulation.
type simRun struct {
	sc       Scenario
	ctx      context.Context
	router   string
	cache    *uaqetp.EstimateCache
	machines []*machineState
	tenants  []*tenantState
	// perMachine selects per-machine least-risk predictions (labeled
	// fleets); count-shorthand fleets keep the fleet-shared prediction
	// path, byte-identical to the homogeneous simulator.
	perMachine bool

	events    eventHeap
	seq       uint64
	processed int
	arrivals  int
	rrNext    int
}

// Run executes the scenario to completion — every arrival routed,
// admitted work drained — and returns the report. Same scenario + seed
// => identical Report, regardless of GOMAXPROCS or the race detector:
// the event loop is single-threaded and every RNG stream derives from
// the scenario seed.
func Run(sc Scenario) (*Report, error) {
	sc, err := sc.normalized()
	if err != nil {
		return nil, err
	}
	kind, err := parseDBKind(sc.DB)
	if err != nil {
		return nil, err
	}
	qpol, err := serve.QueuePolicyByName(sc.QueuePolicy)
	if err != nil {
		return nil, err
	}

	// One expensive Open for the whole fleet: machines with the default
	// profile serve façades over this base System; machines with other
	// profiles (or drift) get cheap WithMachine siblings sharing its
	// database, catalog, samples, and cache — sampling passes, subtree
	// passes, and run results computed by any machine are reused by all
	// of them, while calibration stays per machine.
	cacheCap := sc.CacheCapacity
	if cacheCap <= 0 {
		cacheCap = 1024
	}
	cache := uaqetp.NewEstimateCache(cacheCap)
	sys, err := uaqetp.Open(uaqetp.Config{
		DB: kind, Machine: sc.MachineProfile, SamplingRatio: sc.SamplingRatio,
		Seed: sc.Seed, Cache: cache,
	})
	if err != nil {
		return nil, fmt.Errorf("sim: open system: %w", err)
	}
	return runWith(sc, qpol, sys, cache)
}

// machineSystems derives one System per machine from the base System:
// the base itself for default machines, one WithMachine sibling per
// distinct (profile, drift) otherwise — same machines share one
// calibration, like same-config tenants share one Open.
func machineSystems(sc Scenario, fleet []MachineSpec, base *uaqetp.System) ([]*uaqetp.System, error) {
	derived := make(map[MachineSpec]*uaqetp.System, len(fleet))
	out := make([]*uaqetp.System, len(fleet))
	for m, spec := range fleet {
		if spec.Profile == sc.MachineProfile && spec.Drift == 0 {
			out[m] = base
			continue
		}
		if sys, ok := derived[spec]; ok {
			out[m] = sys
			continue
		}
		prof, err := spec.profileFor()
		if err != nil {
			return nil, fmt.Errorf("sim: machine %d: %w", m, err)
		}
		sys, err := base.WithMachine(prof)
		if err != nil {
			return nil, fmt.Errorf("sim: machine %d: %w", m, err)
		}
		derived[spec] = sys
		out[m] = sys
	}
	return out, nil
}

// runWith executes an already normalized scenario against an existing
// base System and cache — the seam benchmarks use to amortize the
// expensive Open across iterations. The fleet (servers, queues, clocks,
// per-machine sibling Systems) is rebuilt fresh per call.
func runWith(sc Scenario, qpol serve.QueuePolicy, sys *uaqetp.System, cache *uaqetp.EstimateCache) (*Report, error) {
	fleet, err := sc.Machines.resolve(sc.MachineProfile)
	if err != nil {
		return nil, err
	}
	msys, err := machineSystems(sc, fleet, sys)
	if err != nil {
		return nil, err
	}
	s := &simRun{
		sc: sc, ctx: context.Background(), router: sc.Router, cache: cache,
		perMachine: sc.Machines.Labeled(),
	}
	for m := range fleet {
		srv := serve.New(serve.Config{
			Cache: cache, MaxQueue: sc.MaxQueue, Policy: qpol, RecalEvery: sc.RecalEvery,
		})
		ms := &machineState{
			srv: srv, sys: msys[m], pending: make(map[uint64]pendingArrival),
		}
		if s.perMachine {
			ms.spec = fleet[m]
		}
		for _, spec := range sc.Tenants {
			t, err := srv.AddTenantSystem(spec.Name, msys[m], spec.SLO)
			if err != nil {
				return nil, fmt.Errorf("sim: machine %d: %w", m, err)
			}
			ms.tenants = append(ms.tenants, t)
		}
		s.machines = append(s.machines, ms)
	}

	if err := s.buildArrivals(sys); err != nil {
		return nil, err
	}
	if err := s.loop(); err != nil {
		return nil, err
	}
	return s.report(), nil
}

// arrivalSeed derives one tenant's arrival RNG seed from the scenario
// seed; well-separated streams per tenant index.
func arrivalSeed(seed int64, tenant int) int64 {
	z := uint64(seed) + uint64(tenant+1)*0x9e3779b97f4a7c15
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	return int64(z)
}

// cloneQuery gives one arrival its own copy of a pool query under a
// unique name. The plan (and therefore every cached sampling pass and
// run result) is unchanged — only the executor's measurement stream,
// which is seeded per query name, differs — so repeated arrivals of the
// same template draw independent deterministic running times instead of
// replaying one number.
func cloneQuery(base *uaqetp.Query, tenant string, ordinal int) *uaqetp.Query {
	q := *base
	q.Name = fmt.Sprintf("%s/%s#%05d", tenant, base.Name, ordinal)
	return &q
}

// buildArrivals draws every tenant's arrival sequence and seeds the
// event queue with it, in one deterministic global order.
func (s *simRun) buildArrivals(sys *uaqetp.System) error {
	type pendingEvent struct {
		at      float64
		tenant  int
		ordinal int
		q       *uaqetp.Query
	}
	var all []pendingEvent
	for ti, spec := range s.sc.Tenants {
		bench, err := parseBench(spec.Bench)
		if err != nil {
			return err
		}
		eff := spec.Deadline
		if eff == 0 {
			eff = spec.SLO.DefaultDeadline
		}
		if eff == 0 {
			eff = 1.0
		}
		s.tenants = append(s.tenants, &tenantState{spec: spec, sys: sys, effDeadline: eff})

		if spec.Arrivals.Process == ProcessTrace {
			var entries []workload.TraceEntry
			if spec.Arrivals.TraceFile != "" {
				// External trace: recorded arrival times and template
				// indexes, resolved against the tenant's query pool.
				pool, err := sys.GenerateWorkload(bench, spec.Queries)
				if err != nil {
					return fmt.Errorf("sim: tenant %q workload: %w", spec.Name, err)
				}
				if entries, err = workload.LoadTrace(spec.Arrivals.TraceFile, pool); err != nil {
					return fmt.Errorf("sim: tenant %q: %w", spec.Name, err)
				}
			} else {
				n := int(math.Round(spec.Arrivals.Rate * s.sc.Horizon))
				if n < 1 {
					n = 1
				}
				// Each tenant replays its own generated trace stream: same
				// catalog, independent arrival sequences.
				var err error
				entries, err = sys.GenerateTrace(bench, n, spec.Arrivals.Rate, arrivalSeed(s.sc.Seed, ti))
				if err != nil {
					return fmt.Errorf("sim: tenant %q trace: %w", spec.Name, err)
				}
			}
			for k, e := range entries {
				if e.At >= s.sc.Horizon {
					break
				}
				all = append(all, pendingEvent{
					at: e.At, tenant: ti, ordinal: k,
					q: cloneQuery(e.Query, spec.Name, k),
				})
			}
			continue
		}
		rng := rand.New(rand.NewSource(arrivalSeed(s.sc.Seed, ti)))
		pool, err := sys.GenerateWorkload(bench, spec.Queries)
		if err != nil {
			return fmt.Errorf("sim: tenant %q workload: %w", spec.Name, err)
		}
		for k, at := range spec.Arrivals.times(rng, s.sc.Horizon) {
			all = append(all, pendingEvent{
				at: at, tenant: ti, ordinal: k,
				q: cloneQuery(pool[rng.Intn(len(pool))], spec.Name, k),
			})
		}
	}
	// One global deterministic order: by time, ties by (tenant,
	// ordinal). Sequence numbers assigned in this order keep the heap's
	// total order stable across runs.
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.at != b.at {
			return a.at < b.at
		}
		if a.tenant != b.tenant {
			return a.tenant < b.tenant
		}
		return a.ordinal < b.ordinal
	})
	for _, pe := range all {
		s.pushEvent(&event{
			at: pe.at, kind: evArrival, tenant: pe.tenant,
			q: pe.q, deadline: s.tenants[pe.tenant].effDeadline,
		})
	}
	s.arrivals = len(all)
	return nil
}

func (s *simRun) pushEvent(ev *event) {
	ev.seq = s.seq
	s.seq++
	heap.Push(&s.events, ev)
}

// loop processes events until none remain. Arrivals route, advance the
// chosen machine's clock to event time, and run admission; admitted
// work starts immediately on an idle machine. A machine finishing its
// query frees at the outcome's finish time and starts the next queued
// request, so queues drain to completion after the arrival horizon.
func (s *simRun) loop() error {
	for s.events.Len() > 0 {
		ev := heap.Pop(&s.events).(*event)
		s.processed++
		switch ev.kind {
		case evArrival:
			// Align every machine's clock with event time first: the
			// placement policies read residual in-flight service off the
			// servers' queue state, which is measured against their
			// clocks, and idle machines accrue cadence checks too.
			for _, ms := range s.machines {
				ms.srv.AdvanceClock(ev.at)
			}
			ts := s.tenants[ev.tenant]
			m, err := s.route(ts, ev.tenant, ev.q, ev.deadline, ev.at)
			if err != nil {
				return err
			}
			ms := s.machines[m]
			dec, err := ms.srv.Submit(s.ctx, serve.Request{
				Tenant: ts.spec.Name, Query: ev.q, Deadline: ts.spec.Deadline,
			})
			if err != nil {
				// An unpredictable query is already tallied as a rejection
				// by the server; the simulation carries on.
				continue
			}
			if dec.Admitted {
				ms.pending[dec.ID] = pendingArrival{tenant: ev.tenant, at: ev.at}
				if !ms.busy {
					s.startNext(m)
				}
			}
		case evFree:
			ms := s.machines[ev.machine]
			ms.busy = false
			ms.srv.AdvanceClock(ev.at)
			s.startNext(ev.machine)
		}
	}
	return nil
}

// startNext pops and executes the machine's best queued request at its
// current clock, marking the machine busy until the outcome's finish
// (when an evFree event fires). Execution failures consume the request
// (tallied by the server) and the next queued request is tried.
func (s *simRun) startNext(m int) {
	ms := s.machines[m]
	for {
		out, err := ms.srv.StepOne()
		if err != nil {
			// The failed request is consumed (tallied by the server);
			// release its admission-tracking entry and try the next.
			if out != nil {
				delete(ms.pending, out.ID)
			}
			continue
		}
		if out == nil {
			return // queue empty; machine idle
		}
		ms.busy = true
		ms.busyTime += out.Elapsed
		ms.executed++
		if p, ok := ms.pending[out.ID]; ok {
			delete(ms.pending, out.ID)
			ts := s.tenants[p.tenant]
			ts.latencies = append(ts.latencies, out.Finish-p.at)
			ts.queueWaits = append(ts.queueWaits, out.Start-p.at)
		}
		s.pushEvent(&event{at: out.Finish, kind: evFree, machine: m})
		return
	}
}

// report aggregates the fleet into the final Report.
func (s *simRun) report() *Report {
	rep := &Report{
		Scenario:    s.sc.Name,
		Seed:        s.sc.Seed,
		Router:      s.router,
		QueuePolicy: s.sc.QueuePolicy,
		Machines:    len(s.machines),
		Events:      s.processed,
		Arrivals:    s.arrivals,
		Cache:       s.cache.Stats(),
	}
	if rep.QueuePolicy == "" {
		rep.QueuePolicy = serve.RiskSlack.Name
	}

	// Per-machine stats, snapshotted once each.
	perMachine := make([]serve.Stats, len(s.machines))
	for m, ms := range s.machines {
		st := ms.srv.Stats()
		perMachine[m] = st
		mr := MachineReport{
			Machine:  m,
			Profile:  ms.spec.Profile,
			Drift:    ms.spec.Drift,
			Executed: ms.executed,
			Clock:    st.Clock,
			BusyTime: ms.busyTime,
		}
		if st.Clock > 0 {
			mr.Utilization = ms.busyTime / st.Clock
		}
		rep.PerMachine = append(rep.PerMachine, mr)
		if st.Clock > rep.MakeSpan {
			rep.MakeSpan = st.Clock
		}
	}

	var fleetMet, fleetSubmitted int
	for _, ts := range s.tenants {
		tr := TenantReport{Name: ts.spec.Name}
		for m := range s.machines {
			for _, st := range perMachine[m].Tenants {
				if st.Name != ts.spec.Name {
					continue
				}
				tr.Admitted += int(st.Admitted)
				tr.Rejected += int(st.Rejected)
				tr.Executed += int(st.Executed)
				tr.ExecFailed += int(st.ExecFailed)
				tr.DeadlinesMet += int(st.DeadlinesMet)
				tr.DeadlinesMissed += int(st.DeadlinesMissed)
				tr.Recalibrations += st.Recalibrations
				tr.AutoRecalibrations += st.AutoRecalibrations
			}
		}
		tr.Submitted = tr.Admitted + tr.Rejected
		if tr.Submitted > 0 {
			tr.SLOAttainment = float64(tr.DeadlinesMet) / float64(tr.Submitted)
		}
		if tr.Executed > 0 {
			tr.AttainmentExecuted = float64(tr.DeadlinesMet) / float64(tr.Executed)
		}
		tr.Latency = summarize(ts.latencies)
		tr.QueueWait = summarize(ts.queueWaits)
		fleetMet += tr.DeadlinesMet
		fleetSubmitted += tr.Submitted
		rep.Tenants = append(rep.Tenants, tr)
	}
	if fleetSubmitted > 0 {
		rep.SLOAttainment = float64(fleetMet) / float64(fleetSubmitted)
	}
	sort.Slice(rep.Tenants, func(i, j int) bool { return rep.Tenants[i].Name < rep.Tenants[j].Name })
	return rep
}
