package sim

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"

	uaqetp "repro"
	"repro/internal/rng"
	"repro/internal/serve"
	"repro/internal/shard"
	"repro/internal/trace"
	"repro/internal/workload"
)

// The event engine holds the two discrete event kinds in separate
// structures shaped for their sizes. Arrivals — the bulk, potentially
// millions — are drawn up front, sorted once, and consumed through a
// cursor: no heap traffic, no per-event allocation, and the query clone
// each arrival needs is made lazily at processing time, so a
// million-arrival scenario never holds a million cloned queries at
// once. Completions (one in-flight query per machine, so at most
// #machines outstanding) live in a small value-based binary heap over a
// reused backing slice.
//
// The merged order is (time, tie: arrivals first, then completion push
// order) — exactly the order the previous pointer-heap produced, where
// arrivals were assigned the lowest sequence numbers up front.

// arrival is one query arriving at the router: a template reference
// plus placement, cloned into a uniquely named query only when the
// event fires.
type arrival struct {
	at     float64
	tenant int32
	ord    int32
	tmpl   *uaqetp.Query
}

// freeEvent is a machine finishing its in-flight query.
type freeEvent struct {
	at      float64
	seq     uint64 // tie-break at equal times: push order
	machine int
}

func freeLess(a, b freeEvent) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// pendingArrival remembers when an admitted request arrived (and whose
// it was), so outcomes can be turned into end-to-end latencies.
type pendingArrival struct {
	tenant int
	at     float64
}

// latRec is one executed request's latency sample, staged machine-side
// during a (possibly parallel) service step and committed to the
// tenant's series in deterministic batch order. finish/met ride along
// so drift experiments can attribute each outcome to a before/during/
// after-detection phase at report time.
type latRec struct {
	tenant  int
	latency float64
	qwait   float64
	finish  float64
	met     bool
}

// machineState is one simulated execution server: a serve.Server over
// the machine's own System (profile-specific calibration, predictor,
// and executor — a WithMachine sibling of the scenario's base System,
// or the base itself for default machines).
type machineState struct {
	srv *serve.Server
	sys *uaqetp.System
	// spec labels the machine (resolved profile name + drift) on
	// labeled fleets; zero on count-shorthand fleets, which keep the
	// pre-heterogeneity report shape.
	spec MachineSpec
	// tenants are this machine's tenant façades in scenario tenant
	// order: each carries the machine's units behind its own
	// hot-swappable predictor handle, so per-machine routing sees
	// recalibrations the moment they land.
	tenants  []*serve.Tenant
	busy     bool
	busyTime float64
	executed int
	pending  map[uint64]pendingArrival

	// Scratch reused across service steps. out is the Outcome the
	// drain path fills in place; staged/freeAt/freePending carry a
	// step's shared-state effects out of the (possibly concurrent)
	// machine-local phase into the serial commit.
	out         serve.Outcome
	staged      []latRec
	freeAt      float64
	freePending bool

	// rec stages this machine's serve-emitted trace events (admission,
	// outcome, recalibration) exactly like staged carries latency
	// samples: machine-local during a possibly concurrent service step,
	// drained into the run's global event order by commitMachine. Nil
	// when the run is untraced.
	rec *machineRecorder

	// obs is the machine's calibration observer (serve.Config.Observer):
	// every executed request's (predicted distribution, observed time)
	// pair folds into machine-local accumulators — merged in machine
	// order into the report's calibration section — and, when the run
	// streams calibration events, stages a KindCalibration event drained
	// alongside rec's.
	obs *machineObserver
}

// machineRecorder is the per-machine trace.Recorder the simulator
// installs as each server's Config.Trace: events append to a
// machine-local staging slice (no locks — each machine steps on at
// most one goroutine at a time) and get their machine index stamped
// here, since serve has no notion of its own fleet position.
type machineRecorder struct {
	level   trace.Level
	machine int
	// shard names the machine's serving shard on sharded topologies,
	// stamped onto every staged event; empty (and omitted from the
	// JSON) on flat fleets.
	shard  string
	events []trace.Event
}

func (r *machineRecorder) Enabled(l trace.Level) bool { return l > trace.Off && l <= r.level }

func (r *machineRecorder) Record(ev *trace.Event) {
	ev.Machine = r.machine
	ev.Shard = r.shard
	r.events = append(r.events, *ev)
}

// tenantState is one traffic source: a single TenantSpec, or one member
// of a Count-expanded group.
type tenantState struct {
	spec TenantSpec
	// name is the member's unique name ("spec.Name/0007" in groups,
	// spec.Name itself otherwise); group indexes the TenantSpec this
	// member aggregates under; class is the front door's SLO class.
	name        string
	group       int
	class       string
	confidence  float64
	sys         *uaqetp.System
	effDeadline float64
	// shed counts front-door refusals (before placement).
	shed       int
	latencies  []float64
	queueWaits []float64
}

// simRun is the mutable state of one simulation.
type simRun struct {
	sc       Scenario
	ctx      context.Context
	router   string
	cache    uaqetp.EstimateCache
	machines []*machineState
	tenants  []*tenantState
	// perMachine selects per-machine least-risk predictions (labeled
	// fleets); count-shorthand fleets keep the fleet-shared prediction
	// path, byte-identical to the homogeneous simulator.
	perMachine bool

	arrivals []arrival
	cursor   int
	frees    []freeEvent
	freeSeq  uint64
	// templates are the distinct pool queries the arrivals draw from,
	// in first-appearance order; their plans are executed once up front
	// so the run cache is warm before any (possibly parallel) stepping.
	templates []*uaqetp.Query
	// ver is the scenario's measurement-stream version (internal/rng),
	// parsed once from sc.RNG.
	ver rng.Version
	// predMemo caches the base System's prediction per template: every
	// tenant's façade-free prediction path (the front door's bestP
	// bound, the shared-units router) resolves through the base System,
	// whose predictor never swaps mid-run, and clones share their
	// template's plan fingerprint — so one probe of this map replaces
	// re-deriving fingerprints and memo keys per arrival. Failures are
	// memoized too (a template that cannot be predicted never will be).
	// Touched only on the event-loop goroutine.
	predMemo map[*uaqetp.Query]sharedPredEntry

	par       int
	batch     []freeEvent
	processed int
	// rrNexts is the round-robin rotation per shard — one entry (the
	// whole fleet's) on unsharded runs.
	rrNexts []int

	// sh is the sharded topology, nil on flat fleets; sidOf maps each
	// machine index to its shard.
	sh    *shardedRun
	sidOf []int

	// Decision tracing. level gates emission (Off for untraced runs);
	// events is the deterministic global stream, seq the next sequence
	// number; cands/tieBreak are the router's scratch for the current
	// placement (filled only when tracing decisions, so the untraced
	// hot path never touches them).
	level    trace.Level
	events   []trace.Event
	seq      uint64
	cands    []trace.Candidate
	tieBreak string

	// Calibration streaming: when on, every executed request's
	// observation becomes a KindCalibration event. The stream is
	// sequence-numbered on its own counter (calibSeq) so enabling it
	// never perturbs the decision stream's bytes.
	calibStream bool
	calibEvents []trace.Event
	calibSeq    uint64

	// Drift injection. flips are the pending truth switches in firing
	// order (one per distinct drift-at spec); the event loop fires each
	// before processing the first event at or past its instant.
	// driftMachines lists machines with a scheduled drift; detectedAt is
	// the per-machine virtual time the first post-onset automatic
	// recalibration landed (-1 until then); phaseSamples records every
	// executed request's (finish, met) so the report can split attainment
	// into before/during/after-detection phases.
	flips         []truthFlip
	flipCursor    int
	driftMachines []int
	detectedAt    []float64
	phaseSamples  []phaseSample
}

// truthFlip is one scheduled drift onset: the switch shared by every
// machine of one drift-at spec, fired at its instant.
type truthFlip struct {
	at float64
	sw *uaqetp.TruthSwitch
}

// phaseSample is one executed request's contribution to the drift
// window's per-phase attainment.
type phaseSample struct {
	finish float64
	met    bool
}

// Run executes the scenario to completion — every arrival routed,
// admitted work drained — and returns the report. Same scenario + seed
// => identical Report, regardless of GOMAXPROCS, the race detector, or
// the scenario's parallelism setting: arrivals are processed on one
// goroutine, concurrent service steps touch only machine-local state,
// and their shared-state effects are committed in deterministic event
// order.
func Run(sc Scenario) (*Report, error) {
	rep, _, _, err := run(sc, trace.Off, false, false)
	return rep, err
}

// RunTraced is Run additionally recording decision events at the given
// level (Off falls back to the scenario's own trace_level). The event
// stream is part of the determinism contract: same scenario + seed =>
// byte-identical trace JSONL, regardless of GOMAXPROCS or the
// scenario's parallelism — serve-side events are staged per machine and
// merged in deterministic event order, exactly like latency samples.
func RunTraced(sc Scenario, level trace.Level) (*Report, []trace.Event, error) {
	rep, events, _, err := RunInstrumented(sc, level, false)
	return rep, events, err
}

// RunInstrumented is RunTraced additionally streaming the calibration
// observatory's raw feed when calibStream is set: one KindCalibration
// event per executed request (`uaqp sim -calib`), in deterministic
// event order on its own sequence counter — so the decision stream's
// bytes are identical whether or not calibration streaming is on, and
// the calibration stream itself is byte-identical per (scenario, seed)
// across GOMAXPROCS and parallelism.
func RunInstrumented(sc Scenario, level trace.Level, calibStream bool) (*Report, []trace.Event, []trace.Event, error) {
	if level == trace.Off {
		var err error
		if level, err = trace.ParseLevel(sc.TraceLevel); err != nil {
			return nil, nil, nil, err
		}
	}
	return run(sc, level, true, calibStream)
}

// run normalizes the scenario, opens the fleet's base System, and
// executes it; install selects whether per-machine trace recorders are
// wired in at all (an installed recorder at level Off records nothing
// but exercises the disabled-recorder path the allocation tests pin).
func run(sc Scenario, level trace.Level, install, calibStream bool) (*Report, []trace.Event, []trace.Event, error) {
	sc, err := sc.normalized()
	if err != nil {
		return nil, nil, nil, err
	}
	kind, err := parseDBKind(sc.DB)
	if err != nil {
		return nil, nil, nil, err
	}
	qpol, err := serve.QueuePolicyByName(sc.QueuePolicy)
	if err != nil {
		return nil, nil, nil, err
	}

	// One expensive Open for the whole fleet: machines with the default
	// profile serve façades over this base System; machines with other
	// profiles (or drift) get cheap WithMachine siblings sharing its
	// database, catalog, samples, and cache — sampling passes, subtree
	// passes, and run results computed by any machine are reused by all
	// of them, while calibration stays per machine.
	cacheCap := sc.CacheCapacity
	if cacheCap <= 0 {
		cacheCap = 1024
	}
	var cache uaqetp.EstimateCache = uaqetp.NewEstimateCache(cacheCap)
	if sc.Shards != nil && sc.Shards.CacheTier != nil {
		ct := sc.Shards.CacheTier
		cache = uaqetp.NewTieredCache(uaqetp.TierConfig{
			LocalFraction: ct.LocalFraction, RemoteLatency: ct.RemoteLatency,
			Seed: sc.Seed, Capacity: cacheCap,
		})
	}
	ver, err := rng.ParseVersion(sc.RNG)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("sim: rng: %w", err)
	}
	sys, err := uaqetp.Open(uaqetp.Config{
		DB: kind, Machine: sc.MachineProfile, SamplingRatio: sc.SamplingRatio,
		Seed: sc.Seed, RNG: ver, Cache: cache,
	})
	if err != nil {
		return nil, nil, nil, fmt.Errorf("sim: open system: %w", err)
	}
	if !install {
		rep, err := runWith(sc, qpol, sys, cache)
		return rep, nil, nil, err
	}
	return runSim(sc, qpol, sys, cache, level, true, calibStream)
}

// machineSystems derives one System per machine from the base System:
// the base itself for default machines, one WithMachine sibling per
// distinct (profile, drift, drift_at) otherwise — same machines share
// one calibration, like same-config tenants share one Open. Machines
// with DriftAt > 0 get a drift-injected System (uaqetp.
// WithDriftInjection): calibrated against the undrifted profile, with a
// TruthSwitch the event loop fires at DriftAt; identical specs share
// one switch, flipped once for all of them.
func machineSystems(sc Scenario, fleet []MachineSpec, base *uaqetp.System) ([]*uaqetp.System, []*uaqetp.TruthSwitch, error) {
	type derivation struct {
		sys *uaqetp.System
		sw  *uaqetp.TruthSwitch
	}
	derived := make(map[MachineSpec]derivation, len(fleet))
	out := make([]*uaqetp.System, len(fleet))
	sws := make([]*uaqetp.TruthSwitch, len(fleet))
	for m, spec := range fleet {
		if spec.Spec == nil && spec.Profile == sc.MachineProfile && spec.Drift == 0 {
			out[m] = base
			continue
		}
		if d, ok := derived[spec]; ok {
			out[m], sws[m] = d.sys, d.sw
			continue
		}
		prof, err := spec.profileFor()
		if err != nil {
			return nil, nil, fmt.Errorf("sim: machine %d: %w", m, err)
		}
		sys, err := base.WithMachine(prof)
		if err != nil {
			return nil, nil, fmt.Errorf("sim: machine %d: %w", m, err)
		}
		var sw *uaqetp.TruthSwitch
		if spec.DriftAt > 0 {
			pre := spec
			pre.Drift, pre.DriftAt = 0, 0
			preProf, err := pre.profileFor()
			if err != nil {
				return nil, nil, fmt.Errorf("sim: machine %d: %w", m, err)
			}
			if sys, sw, err = sys.WithDriftInjection(preProf); err != nil {
				return nil, nil, fmt.Errorf("sim: machine %d: %w", m, err)
			}
		}
		derived[spec] = derivation{sys, sw}
		out[m], sws[m] = sys, sw
	}
	return out, sws, nil
}

// runWith executes an already normalized scenario against an existing
// base System and cache — the seam benchmarks use to amortize the
// expensive Open across iterations — with no trace recorders installed
// (the nil-Recorder fast path). The fleet (servers, queues, clocks,
// per-machine sibling Systems) is rebuilt fresh per call.
func runWith(sc Scenario, qpol serve.QueuePolicy, sys *uaqetp.System, cache uaqetp.EstimateCache) (*Report, error) {
	rep, _, _, err := runSim(sc, qpol, sys, cache, trace.Off, false, false)
	return rep, err
}

// runTraced is runWith with per-machine trace recorders installed at
// the given level. Recorders are wired in even at level Off — they then
// record nothing, but the Enabled gates still run, which is exactly the
// disabled-recorder overhead the allocation tests measure.
func runTraced(sc Scenario, qpol serve.QueuePolicy, sys *uaqetp.System, cache uaqetp.EstimateCache, level trace.Level) (*Report, []trace.Event, error) {
	rep, events, _, err := runSim(sc, qpol, sys, cache, level, true, false)
	return rep, events, err
}

func runSim(sc Scenario, qpol serve.QueuePolicy, sys *uaqetp.System, cache uaqetp.EstimateCache, level trace.Level, install, calibStream bool) (*Report, []trace.Event, []trace.Event, error) {
	fleet, err := sc.Machines.resolve(sc.MachineProfile)
	if err != nil {
		return nil, nil, nil, err
	}
	msys, msws, err := machineSystems(sc, fleet, sys)
	if err != nil {
		return nil, nil, nil, err
	}
	ver, err := rng.ParseVersion(sc.RNG)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("sim: rng: %w", err)
	}
	s := &simRun{
		sc: sc, ctx: context.Background(), router: sc.Router, cache: cache,
		perMachine:  sc.Machines.Labeled(),
		par:         sc.Parallelism,
		level:       level,
		calibStream: calibStream,
		ver:         ver,
		predMemo:    make(map[*uaqetp.Query]sharedPredEntry, 64),
	}
	if s.par < 1 {
		s.par = 1
	}
	s.expandTenants(sys)
	s.sidOf = make([]int, len(fleet))
	if sc.Shards != nil {
		sh, err := buildSharded(sc, len(fleet), s.tenants)
		if err != nil {
			return nil, nil, nil, err
		}
		s.sh = sh
		for si, r := range sh.ranges {
			for m := r[0]; m < r[1]; m++ {
				s.sidOf[m] = si
			}
		}
		s.rrNexts = make([]int, sh.spec.Count)
	} else {
		s.rrNexts = make([]int, 1)
	}
	// The calibration observers attribute each member's observations to
	// its tenant group, mirroring the report's per-tenant aggregation.
	groupOf := make(map[string]int32, len(s.tenants))
	for _, ts := range s.tenants {
		groupOf[ts.name] = int32(ts.group)
	}
	for m := range fleet {
		obs := newMachineObserver(m, len(sc.Tenants), groupOf, calibStream)
		cfg := serve.Config{
			Cache: cache, MaxQueue: sc.MaxQueue, Policy: qpol, RecalEvery: sc.RecalEvery,
			Observer: obs,
		}
		var rec *machineRecorder
		if install {
			rec = &machineRecorder{level: level, machine: m}
			if s.sh != nil {
				rec.shard = s.sh.names[s.sidOf[m]]
			}
			cfg.Trace = rec
		}
		if s.sh != nil {
			obs.shard = s.sh.names[s.sidOf[m]]
		}
		srv := serve.New(cfg)
		ms := &machineState{
			srv: srv, sys: msys[m], pending: make(map[uint64]pendingArrival), rec: rec, obs: obs,
		}
		if s.perMachine {
			ms.spec = fleet[m]
		}
		// Register each tenant's façade only on the machines of the
		// shard(s) the directory places it on — every machine on flat
		// fleets. Off-shard slots stay nil: routing never reads them,
		// because placement confines a tenant's arrivals to its shard.
		for ti, ts := range s.tenants {
			if s.sh != nil && !s.sh.onShard(ti, s.sidOf[m]) {
				ms.tenants = append(ms.tenants, nil)
				continue
			}
			t, err := srv.AddTenantSystem(ts.name, msys[m], ts.spec.SLO)
			if err != nil {
				return nil, nil, nil, fmt.Errorf("sim: machine %d: %w", m, err)
			}
			ms.tenants = append(ms.tenants, t)
		}
		s.machines = append(s.machines, ms)
	}

	// Scheduled drifts: remember which machines flip, and build the
	// fleet's flip sequence — one entry per distinct switch, in firing
	// order (machine order breaks ties, matching machineSystems' dedup).
	s.detectedAt = make([]float64, len(fleet))
	seenSw := make(map[*uaqetp.TruthSwitch]bool)
	for m := range fleet {
		s.detectedAt[m] = -1
		if sw := msws[m]; sw != nil {
			s.driftMachines = append(s.driftMachines, m)
			if !seenSw[sw] {
				seenSw[sw] = true
				s.flips = append(s.flips, truthFlip{at: fleet[m].DriftAt, sw: sw})
			}
		}
	}
	sort.SliceStable(s.flips, func(i, j int) bool { return s.flips[i].at < s.flips[j].at })

	if err := s.buildArrivals(sys); err != nil {
		return nil, nil, nil, err
	}
	// Warm the shared cache's run section (and the plan memo and
	// estimate sections with it) by executing each distinct template
	// once, serially, before the loop: parallel service steps then only
	// ever *read* the run section, so its hit/miss counters — which the
	// report carries — cannot depend on which worker got there first.
	// Templates that fail to execute are simply skipped; the loop
	// tallies such failures per arrival exactly as before.
	for _, q := range s.templates {
		_, _ = sys.Execute(q)
	}
	if err := s.loop(); err != nil {
		return nil, nil, nil, err
	}
	return s.report(), s.events, s.calibEvents, nil
}

// sharedPredEntry is one memoized base-System prediction (or its
// sticky failure).
type sharedPredEntry struct {
	pred *uaqetp.Prediction
	err  error
}

// sharedPred resolves the base System's prediction for an arrival: on
// v2 scenarios through the run-level memo keyed by the arrival's
// template (see the predMemo field for why one map probe is equivalent
// to predicting the clone); on v1 scenarios through the full
// per-arrival PredictContext the simulator has always issued — the memo
// changes the shared cache's hit/miss counters (and with them the
// report's cache-economy figure), so the v1 compatibility gate must not
// take it.
func (s *simRun) sharedPred(ts *tenantState, q, tmpl *uaqetp.Query) (*uaqetp.Prediction, error) {
	if s.ver != rng.V2 {
		return ts.sys.PredictContext(s.ctx, q)
	}
	if e, ok := s.predMemo[tmpl]; ok {
		return e.pred, e.err
	}
	pred, err := ts.sys.PredictContext(s.ctx, tmpl)
	s.predMemo[tmpl] = sharedPredEntry{pred, err}
	return pred, err
}

// arrivalSeed derives one tenant's arrival RNG seed from the scenario
// seed; well-separated streams per tenant index.
func arrivalSeed(seed int64, tenant int) int64 {
	z := uint64(seed) + uint64(tenant+1)*0x9e3779b97f4a7c15
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	return int64(z)
}

// cloneQuery gives one arrival its own copy of a pool query under a
// unique name (tenant/template#ordinal, ordinal zero-padded to five
// digits). The plan (and therefore every cached sampling pass and run
// result) is unchanged — only the executor's measurement stream, which
// is seeded per query name, differs — so repeated arrivals of the same
// template draw independent deterministic running times instead of
// replaying one number.
func cloneQuery(base *uaqetp.Query, tenant string, ordinal int) *uaqetp.Query {
	q := *base
	o := strconv.Itoa(ordinal)
	var b strings.Builder
	b.Grow(len(tenant) + len(base.Name) + len(o) + 7)
	b.WriteString(tenant)
	b.WriteByte('/')
	b.WriteString(base.Name)
	b.WriteByte('#')
	for i := len(o); i < 5; i++ {
		b.WriteByte('0')
	}
	b.WriteString(o)
	q.Name = b.String()
	return &q
}

// expandTenants materializes the scenario's tenant specs into the
// run's member list: one tenantState per spec, or Count members per
// group — each named "spec.Name/0000"…, each with its own arrival
// stream and directory placement, all aggregating under the group's
// TenantReport. Scenarios without Count expand to exactly the legacy
// one-state-per-spec list, member index == spec index.
func (s *simRun) expandTenants(sys *uaqetp.System) {
	for gi := range s.sc.Tenants {
		spec := s.sc.Tenants[gi]
		eff := spec.Deadline
		if eff == 0 {
			eff = spec.SLO.DefaultDeadline
		}
		if eff == 0 {
			eff = 1.0
		}
		conf := spec.SLO.Confidence
		if conf == 0 {
			conf = 0.95
		}
		class := spec.Class
		if class == "" {
			class = spec.Name
		}
		n := spec.Count
		if n < 1 {
			n = 1
		}
		for k := 0; k < n; k++ {
			name := spec.Name
			if spec.Count > 1 {
				name = fmt.Sprintf("%s/%04d", spec.Name, k)
			}
			s.tenants = append(s.tenants, &tenantState{
				spec: spec, name: name, group: gi, class: class,
				confidence: conf, sys: sys, effDeadline: eff,
			})
		}
	}
}

// buildArrivals draws every tenant member's arrival sequence into one
// sorted slice — template references only; queries are cloned when the
// event fires — and sizes each member's latency series for its share.
// Members of a Count group share one generated query pool (the pool
// depends only on the benchmark and pool size) but draw from it with
// independent per-member RNG streams.
func (s *simRun) buildArrivals(sys *uaqetp.System) error {
	seen := make(map[*uaqetp.Query]bool)
	note := func(q *uaqetp.Query) *uaqetp.Query {
		if !seen[q] {
			seen[q] = true
			s.templates = append(s.templates, q)
		}
		return q
	}
	pools := make(map[int][]*uaqetp.Query)
	for ti, ts := range s.tenants {
		spec := ts.spec
		bench, err := parseBench(spec.Bench)
		if err != nil {
			return err
		}
		if spec.Arrivals.Process == ProcessTrace {
			var entries []workload.TraceEntry
			if spec.Arrivals.TraceFile != "" {
				// External trace: recorded arrival times and template
				// indexes, resolved against the tenant's query pool.
				pool, err := sys.GenerateWorkload(bench, spec.Queries)
				if err != nil {
					return fmt.Errorf("sim: tenant %q workload: %w", spec.Name, err)
				}
				if entries, err = workload.LoadTrace(spec.Arrivals.TraceFile, pool); err != nil {
					return fmt.Errorf("sim: tenant %q: %w", spec.Name, err)
				}
			} else {
				n := int(math.Round(spec.Arrivals.Rate * s.sc.Horizon))
				if n < 1 {
					n = 1
				}
				// Each tenant replays its own generated trace stream: same
				// catalog, independent arrival sequences.
				var err error
				entries, err = sys.GenerateTrace(bench, n, spec.Arrivals.Rate, arrivalSeed(s.sc.Seed, ti))
				if err != nil {
					return fmt.Errorf("sim: tenant %q trace: %w", spec.Name, err)
				}
			}
			for k, e := range entries {
				if e.At >= s.sc.Horizon {
					break
				}
				s.arrivals = append(s.arrivals, arrival{
					at: e.At, tenant: int32(ti), ord: int32(k), tmpl: note(e.Query),
				})
			}
			continue
		}
		// The arrival stream rides the scenario's measurement-stream
		// version: v1 keeps the historical math/rand source, v2 skips
		// its per-tenant seeding ritual — at 10k tenants the seeding
		// alone is measurable. Both satisfy rng.Source; the boxing costs
		// once per tenant, not per draw.
		var src rng.Source
		if s.ver == rng.V2 {
			st := rng.NewStream(arrivalSeed(s.sc.Seed, ti))
			src = &st
		} else {
			src = rand.New(rand.NewSource(arrivalSeed(s.sc.Seed, ti)))
		}
		pool := pools[ts.group]
		if pool == nil {
			pool, err = sys.GenerateWorkload(bench, spec.Queries)
			if err != nil {
				return fmt.Errorf("sim: tenant %q workload: %w", ts.name, err)
			}
			pools[ts.group] = pool
		}
		for k, at := range spec.Arrivals.times(src, s.sc.Horizon) {
			s.arrivals = append(s.arrivals, arrival{
				at: at, tenant: int32(ti), ord: int32(k), tmpl: note(pool[src.Intn(len(pool))]),
			})
		}
	}
	// One global deterministic order: by time, ties by (tenant,
	// ordinal) — the order the event loop consumes through its cursor.
	sort.Slice(s.arrivals, func(i, j int) bool {
		a, b := s.arrivals[i], s.arrivals[j]
		if a.at != b.at {
			return a.at < b.at
		}
		if a.tenant != b.tenant {
			return a.tenant < b.tenant
		}
		return a.ord < b.ord
	})
	// Preallocate each tenant's latency series at its arrival count (an
	// upper bound: rejected work records nothing), so million-event
	// runs never regrow them.
	counts := make([]int, len(s.tenants))
	for _, a := range s.arrivals {
		counts[a.tenant]++
	}
	for ti, ts := range s.tenants {
		ts.latencies = make([]float64, 0, counts[ti])
		ts.queueWaits = make([]float64, 0, counts[ti])
	}
	return nil
}

// pushFree schedules a machine completion, assigning the next sequence
// number (completion ties at equal times resolve in push order, after
// any arrival at the same instant).
func (s *simRun) pushFree(at float64, machine int) {
	s.frees = append(s.frees, freeEvent{at: at, seq: s.freeSeq, machine: machine})
	s.freeSeq++
	i := len(s.frees) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !freeLess(s.frees[i], s.frees[p]) {
			break
		}
		s.frees[i], s.frees[p] = s.frees[p], s.frees[i]
		i = p
	}
}

// popFree removes and returns the earliest completion.
func (s *simRun) popFree() freeEvent {
	top := s.frees[0]
	n := len(s.frees) - 1
	s.frees[0] = s.frees[n]
	s.frees = s.frees[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		sm := i
		if l < n && freeLess(s.frees[l], s.frees[sm]) {
			sm = l
		}
		if r < n && freeLess(s.frees[r], s.frees[sm]) {
			sm = r
		}
		if sm == i {
			break
		}
		s.frees[i], s.frees[sm] = s.frees[sm], s.frees[i]
		i = sm
	}
	return top
}

// loop processes events until none remain. Arrivals route, advance the
// chosen machine's clock to event time, and run admission; admitted
// work starts immediately on an idle machine. A machine finishing its
// query frees at the outcome's finish time and starts the next queued
// request, so queues drain to completion after the arrival horizon.
//
// Clocks advance lazily: an arrival touches only the machine it lands
// on (the routers read other machines' states at event time through
// the read-only QueueStateAt, which is arithmetic-identical to
// advancing them first), a completion touches its own machine, and the
// loop ends by aligning every machine with the final arrival instant —
// so each machine's clock finishes exactly where the broadcast version
// left it.
//
// Completions due before the next arrival are independent per machine
// — service steps touch only the machine's own server, queue, façades,
// and feedback — so up to par of them (pairwise-distinct machines) are
// stepped concurrently between event-ordering barriers, and their
// shared-state effects (latency samples, scheduled completions) are
// committed serially in batch order. Reports are byte-identical for
// every par and GOMAXPROCS.
func (s *simRun) loop() error {
	for {
		hasArr := s.cursor < len(s.arrivals)
		hasFree := len(s.frees) > 0
		if !hasArr && !hasFree {
			break
		}
		// Fire every scheduled drift whose instant the next event has
		// reached: the flip happens on this goroutine, before any event at
		// or past its time is processed, so executions at t >= drift_at
		// measure on the drifted truth regardless of parallelism.
		if s.flipCursor < len(s.flips) {
			next := math.Inf(1)
			if hasArr {
				next = s.arrivals[s.cursor].at
			}
			if hasFree && s.frees[0].at < next {
				next = s.frees[0].at
			}
			for s.flipCursor < len(s.flips) && next >= s.flips[s.flipCursor].at {
				s.flips[s.flipCursor].sw.Switch()
				s.flipCursor++
			}
		}
		if hasArr && (!hasFree || s.arrivals[s.cursor].at <= s.frees[0].at) {
			a := s.arrivals[s.cursor]
			s.cursor++
			s.processed++
			if err := s.handleArrival(a); err != nil {
				return err
			}
			continue
		}

		// Batch consecutive completions on distinct machines that all
		// precede the next arrival — and the next pending drift flip, so a
		// batch never spans a truth switch.
		nextArr := math.Inf(1)
		if hasArr {
			nextArr = s.arrivals[s.cursor].at
		}
		if s.flipCursor < len(s.flips) && s.flips[s.flipCursor].at < nextArr {
			nextArr = s.flips[s.flipCursor].at
		}
		s.batch = s.batch[:0]
	collect:
		for len(s.frees) > 0 && len(s.batch) < s.par {
			top := s.frees[0]
			if top.at >= nextArr {
				break
			}
			for _, b := range s.batch {
				if b.machine == top.machine {
					break collect
				}
			}
			s.batch = append(s.batch, s.popFree())
		}
		s.processed += len(s.batch)
		if len(s.batch) == 1 {
			s.serviceFree(s.batch[0])
		} else {
			var wg sync.WaitGroup
			for _, ev := range s.batch {
				wg.Add(1)
				go func(ev freeEvent) {
					defer wg.Done()
					s.serviceFree(ev)
				}(ev)
			}
			wg.Wait()
		}
		for _, ev := range s.batch {
			s.commitMachine(ev.machine)
		}
	}
	// Align every machine with the last arrival instant, exactly as the
	// per-arrival clock broadcast used to. The alignment may trigger
	// final auto-recalibration checks; drain their events in machine
	// order.
	if n := len(s.arrivals); n > 0 {
		last := s.arrivals[n-1].at
		for _, ms := range s.machines {
			ms.srv.AdvanceClock(last)
			s.drainTrace(ms)
			s.drainCalib(ms)
		}
		s.pollDetection()
	}
	return nil
}

// handleArrival clones the arrival's template, passes the fleet's
// front door (sharded topologies only), routes it within its tenant's
// shard, and runs admission on the chosen machine at event time. Runs
// on the event-loop goroutine only, so its trace emissions (the
// placement event directly, then the serve-staged
// admission/recalibration events via drainTrace) land in deterministic
// arrival order.
func (s *simRun) handleArrival(a arrival) error {
	ts := s.tenants[a.tenant]
	q := cloneQuery(a.tmpl, ts.name, int(a.ord))
	lo, hi, sid := 0, len(s.machines), 0
	shardName := ""
	if s.sh != nil {
		sid = s.sh.placeAt(int(a.tenant), a.at)
		lo, hi = s.sh.ranges[sid][0], s.sh.ranges[sid][1]
		shardName = s.sh.names[sid]
		if fd := s.sh.front; fd != nil {
			// Shed before placement: the predictive check asks whether any
			// machine of the tenant's shard could plausibly make the
			// deadline; a hopeless request is refused without spending a
			// token (prediction failures pass through with bestP = 1 and
			// are tallied by server-side admission exactly as when
			// unsharded).
			bestP := 1.0
			if fd.Predictive() && ts.effDeadline > 0 {
				bestP = s.bestPIn(ts, q, a.tmpl, ts.effDeadline, a.at, lo, hi)
			}
			if v := fd.Admit(ts.class, a.at, bestP, ts.confidence); v != shard.VerdictAdmit {
				ts.shed++
				if s.level >= trace.Decisions {
					ev := trace.Event{
						Kind: trace.KindAdmission, At: a.at, Machine: -1, Shard: shardName,
						Tenant: ts.name, Query: q.Name,
						Verdict: string(v), Reason: "front-door",
						Deadline: ts.effDeadline, PMeet: bestP, Threshold: ts.confidence,
					}
					ev.Seq = s.seq
					s.seq++
					s.events = append(s.events, ev)
				}
				return nil
			}
		}
	}
	m, err := s.route(ts, int(a.tenant), q, a.tmpl, ts.effDeadline, a.at, lo, hi, sid)
	if err != nil {
		return err
	}
	ms := s.machines[m]
	if s.level >= trace.Decisions {
		ev := trace.Event{
			Kind: trace.KindPlacement, At: a.at, Machine: m, Shard: shardName,
			Tenant: ts.name, Query: q.Name,
			Router: s.router, TieBreak: s.tieBreak,
		}
		if len(s.cands) > 0 {
			ev.Candidates = append([]trace.Candidate(nil), s.cands...)
		}
		ev.Seq = s.seq
		s.seq++
		s.events = append(s.events, ev)
	}
	ms.srv.AdvanceClock(a.at)
	dec, err := ms.srv.Submit(s.ctx, serve.Request{
		Tenant: ts.name, Query: q, Deadline: ts.spec.Deadline,
	})
	// Auto-recalibrations triggered by the clock advance and the
	// admission verdict are staged on the machine recorder in temporal
	// order; drain them before any execution the admission may start.
	s.drainTrace(ms)
	if err != nil {
		// An unpredictable query is already tallied as a rejection
		// by the server; the simulation carries on.
		return nil
	}
	if dec.Admitted {
		ms.pending[dec.ID] = pendingArrival{tenant: int(a.tenant), at: a.at}
		if !ms.busy {
			s.stepMachine(ms)
			s.commitMachine(m)
		}
	}
	return nil
}

// serviceFree is the machine-local half of one completion event: mark
// the machine free, advance its clock to the completion instant, and
// start its next queued request. Safe to run concurrently with other
// machines' serviceFree calls.
func (s *simRun) serviceFree(ev freeEvent) {
	ms := s.machines[ev.machine]
	ms.busy = false
	ms.srv.AdvanceClock(ev.at)
	s.stepMachine(ms)
}

// stepMachine pops and executes the machine's best queued request at
// its current clock, staging the latency sample and completion time on
// the machine for a later commitMachine. Execution failures consume
// the request (tallied by the server) and the next queued request is
// tried. Everything touched is machine-local: the machine's server,
// queue, pending map, and scratch Outcome.
func (s *simRun) stepMachine(ms *machineState) {
	ms.staged = ms.staged[:0]
	ms.freePending = false
	for {
		ok, err := ms.srv.StepOneInto(&ms.out)
		if !ok {
			return // queue empty; machine idle
		}
		if err != nil {
			// The failed request is consumed (tallied by the server);
			// release its admission-tracking entry and try the next.
			delete(ms.pending, ms.out.ID)
			continue
		}
		ms.busy = true
		ms.busyTime += ms.out.Elapsed
		ms.executed++
		if p, found := ms.pending[ms.out.ID]; found {
			delete(ms.pending, ms.out.ID)
			ms.staged = append(ms.staged, latRec{
				tenant:  p.tenant,
				latency: ms.out.Finish - p.at,
				qwait:   ms.out.Start - p.at,
				finish:  ms.out.Finish,
				met:     ms.out.Met,
			})
		}
		ms.freeAt = ms.out.Finish
		ms.freePending = true
		return
	}
}

// commitMachine applies a step's staged shared-state effects — tenant
// latency samples and the next completion event — on the event-loop
// goroutine, in deterministic batch order.
func (s *simRun) commitMachine(m int) {
	ms := s.machines[m]
	for _, lr := range ms.staged {
		ts := s.tenants[lr.tenant]
		ts.latencies = append(ts.latencies, lr.latency)
		ts.queueWaits = append(ts.queueWaits, lr.qwait)
		if len(s.driftMachines) > 0 {
			s.phaseSamples = append(s.phaseSamples, phaseSample{finish: lr.finish, met: lr.met})
		}
	}
	ms.staged = ms.staged[:0]
	s.drainTrace(ms)
	s.drainCalib(ms)
	s.pollDetection()
	if ms.freePending {
		s.pushFree(ms.freeAt, m)
		ms.freePending = false
	}
}

// drainTrace moves the machine's staged trace events into the global
// deterministic stream, assigning sequence numbers. Called only on the
// event-loop goroutine (arrival handling and batch-order commits).
func (s *simRun) drainTrace(ms *machineState) {
	if ms.rec == nil || len(ms.rec.events) == 0 {
		return
	}
	for i := range ms.rec.events {
		ev := ms.rec.events[i]
		ev.Seq = s.seq
		s.seq++
		s.events = append(s.events, ev)
	}
	ms.rec.events = ms.rec.events[:0]
}

// drainCalib moves the machine's staged calibration events into the
// global calibration stream. The stream has its own sequence counter,
// so decision-trace bytes are invariant to whether calibration
// streaming is on. Called only on the event-loop goroutine.
func (s *simRun) drainCalib(ms *machineState) {
	o := ms.obs
	if o == nil || len(o.events) == 0 {
		return
	}
	for i := range o.events {
		ev := o.events[i]
		ev.Seq = s.calibSeq
		s.calibSeq++
		s.calibEvents = append(s.calibEvents, ev)
	}
	o.events = o.events[:0]
}

// pollDetection checks every drift machine whose truth has switched for
// its first post-onset automatic recalibration — the feedback loop
// noticing the drift. The server records the exact virtual instant the
// recalibration fired, so reading it after the serial commit (instead
// of inside the possibly-parallel step) loses no precision.
func (s *simRun) pollDetection() {
	for _, m := range s.driftMachines {
		if s.detectedAt[m] >= 0 {
			continue
		}
		ms := s.machines[m]
		at, n := ms.srv.LastAutoRecalibration()
		if n > 0 && at >= ms.spec.DriftAt {
			s.detectedAt[m] = at
		}
	}
}

// report aggregates the fleet into the final Report.
func (s *simRun) report() *Report {
	rep := &Report{
		Scenario:    s.sc.Name,
		Seed:        s.sc.Seed,
		Router:      s.router,
		QueuePolicy: s.sc.QueuePolicy,
		Machines:    len(s.machines),
		Events:      s.processed,
		Arrivals:    len(s.arrivals),
		Cache:       s.cache.Stats(),
	}
	if rep.QueuePolicy == "" {
		rep.QueuePolicy = serve.RiskSlack.Name
	}

	// Per-machine stats, snapshotted once each.
	perMachine := make([]serve.Stats, len(s.machines))
	for m, ms := range s.machines {
		st := ms.srv.Stats()
		perMachine[m] = st
		mr := MachineReport{
			Machine:  m,
			Profile:  ms.spec.Profile,
			Drift:    ms.spec.Drift,
			DriftAt:  ms.spec.DriftAt,
			Executed: ms.executed,
			Clock:    st.Clock,
			BusyTime: ms.busyTime,
		}
		if ms.spec.DriftAt > 0 && s.detectedAt[m] >= 0 {
			mr.DriftDetectedAt = s.detectedAt[m]
		}
		if st.Clock > 0 {
			mr.Utilization = ms.busyTime / st.Clock
		}
		rep.PerMachine = append(rep.PerMachine, mr)
		if st.Clock > rep.MakeSpan {
			rep.MakeSpan = st.Clock
		}
	}

	// Aggregate per group (one TenantReport per TenantSpec, covering all
	// its expanded members): serve-side counters are matched to members
	// through a name index rather than a per-tenant fleet scan, so a
	// 10k-tenant run aggregates in one pass over the per-machine stats.
	// Every sum is over integers (or sorted by summarize), so the result
	// is independent of member and machine iteration order.
	groups := make([]TenantReport, len(s.sc.Tenants))
	groupLat := make([][]float64, len(groups))
	groupQW := make([][]float64, len(groups))
	for gi := range groups {
		groups[gi].Name = s.sc.Tenants[gi].Name
	}
	memberOf := make(map[string]int, len(s.tenants))
	for _, ts := range s.tenants {
		memberOf[ts.name] = ts.group
	}
	for m := range s.machines {
		for _, st := range perMachine[m].Tenants {
			gi, ok := memberOf[st.Name]
			if !ok {
				continue
			}
			tr := &groups[gi]
			tr.Admitted += int(st.Admitted)
			tr.Rejected += int(st.Rejected)
			tr.Executed += int(st.Executed)
			tr.ExecFailed += int(st.ExecFailed)
			tr.DeadlinesMet += int(st.DeadlinesMet)
			tr.DeadlinesMissed += int(st.DeadlinesMissed)
			tr.Recalibrations += st.Recalibrations
			tr.AutoRecalibrations += st.AutoRecalibrations
		}
	}
	var fleetMet, fleetSubmitted int
	var fleetLat []float64
	for _, ts := range s.tenants {
		fleetLat = append(fleetLat, ts.latencies...)
		groups[ts.group].Shed += ts.shed
		groupLat[ts.group] = append(groupLat[ts.group], ts.latencies...)
		groupQW[ts.group] = append(groupQW[ts.group], ts.queueWaits...)
	}
	for gi := range groups {
		tr := &groups[gi]
		tr.Submitted = tr.Admitted + tr.Rejected + tr.Shed
		if tr.Submitted > 0 {
			tr.SLOAttainment = float64(tr.DeadlinesMet) / float64(tr.Submitted)
		}
		if tr.Executed > 0 {
			tr.AttainmentExecuted = float64(tr.DeadlinesMet) / float64(tr.Executed)
		}
		tr.Latency = summarize(groupLat[gi])
		tr.QueueWait = summarize(groupQW[gi])
		fleetMet += tr.DeadlinesMet
		fleetSubmitted += tr.Submitted
	}
	rep.Tenants = groups
	if fleetSubmitted > 0 {
		rep.SLOAttainment = float64(fleetMet) / float64(fleetSubmitted)
	}
	rep.Latency = summarize(fleetLat)
	sort.Slice(rep.Tenants, func(i, j int) bool { return rep.Tenants[i].Name < rep.Tenants[j].Name })
	rep.Calibration = s.calibrationReport()
	rep.DriftWindow = s.driftWindow()
	if s.sh != nil {
		rep.Shards = s.shardsReport()
	}
	rep.Fitness = ComputeFitness(rep, DefaultFitnessWeights())
	return rep
}
