package sim

import (
	"fmt"
	"math"

	uaqetp "repro"
	"repro/internal/stats"
)

// The placement policies.
const (
	// RouterRoundRobin cycles arrivals across machines regardless of
	// load — the distribution-blind baseline.
	RouterRoundRobin = "round-robin"
	// RouterLeastQueue places each arrival on the machine with the
	// smallest expected wait (predicted queue backlog mean plus the
	// remaining service time of the in-flight query) — load-aware but
	// variance-blind.
	RouterLeastQueue = "least-queue"
	// RouterLeastRisk places each arrival on the machine maximizing the
	// predicted probability of meeting its deadline, P(T_wait + T_q <=
	// d), folding both the backlog's variance and the query's own
	// predicted variance in — the placement counterpart of ActiveSLA
	// admission, and the policy that exploits the paper's distributions.
	RouterLeastRisk = "least-risk"
)

// riskEps is the probability margin below which two machines count as
// equally safe and the least-risk router falls back to load.
const riskEps = 1e-9

func parseRouter(name string) (string, error) {
	switch name {
	case RouterRoundRobin, RouterLeastQueue, RouterLeastRisk:
		return name, nil
	default:
		return "", fmt.Errorf("sim: unknown router %q (want round-robin, least-queue, or least-risk)", name)
	}
}

// route picks the machine for an arrival at virtual time now. All
// policies break ties toward the lowest machine index, keeping
// placement deterministic.
func (s *simRun) route(ts *tenantState, q *uaqetp.Query, deadline, now float64) (int, error) {
	switch s.router {
	case RouterRoundRobin:
		m := s.rrNext % len(s.machines)
		s.rrNext++
		return m, nil

	case RouterLeastQueue:
		best, bestWait := 0, math.Inf(1)
		for m, ms := range s.machines {
			_, waitMean, _ := ms.srv.QueueState()
			if waitMean < bestWait {
				best, bestWait = m, waitMean
			}
		}
		return best, nil

	case RouterLeastRisk:
		// The subsequent Submit on the chosen machine predicts again;
		// the expensive part (the sampling pass) is shared through the
		// fleet cache, so the duplication costs one plan build plus the
		// analytic moment propagation per arrival.
		pred, err := ts.sys.PredictContext(s.ctx, q)
		if err != nil {
			return 0, fmt.Errorf("sim: route predict %q: %w", q.Name, err)
		}
		// Maximize P(T_wait + T_q <= d). The CDF saturates once a machine
		// is safely fast enough, so ties within riskEps — e.g. an idle
		// fleet, where every machine is equally certain — break toward
		// the least expected wait: among equally safe machines, spread
		// the load instead of herding onto the first index.
		best, bestP, bestWait := 0, math.Inf(-1), math.Inf(1)
		for m, ms := range s.machines {
			_, wait, waitVar := ms.srv.QueueState()
			total := stats.Normal{
				Mu:    pred.Mean() + wait,
				Sigma: math.Sqrt(pred.Sigma()*pred.Sigma() + math.Max(waitVar, 0)),
			}
			p := total.CDF(deadline)
			if p > bestP+riskEps || (p > bestP-riskEps && wait < bestWait) {
				best, bestP, bestWait = m, p, wait
			}
		}
		return best, nil
	}
	return 0, fmt.Errorf("sim: unknown router %q", s.router)
}
