package sim

import (
	"fmt"
	"math"
	"strings"

	uaqetp "repro"
	"repro/internal/stats"
	"repro/internal/trace"
)

// The placement policies.
const (
	// RouterRoundRobin cycles arrivals across machines regardless of
	// load — the distribution-blind baseline.
	RouterRoundRobin = "round-robin"
	// RouterLeastQueue places each arrival on the machine with the
	// smallest expected wait (predicted queue backlog mean plus the
	// remaining service time of the in-flight query) — load-aware but
	// variance-blind, and blind to machine speed differences.
	RouterLeastQueue = "least-queue"
	// RouterLeastRisk places each arrival on the machine maximizing the
	// predicted probability of meeting its deadline, P(T_wait + T_q <=
	// d), folding in the backlog's variance and the query's own
	// predicted variance — the placement counterpart of ActiveSLA
	// admission, and the policy that exploits the paper's distributions.
	// On labeled (machine-list) fleets T_q is predicted per machine,
	// through each machine's tenant façade: every machine's own
	// calibrated — and recalibrated — units enter the risk, so slow or
	// drifted machines repel traffic in proportion to how much of the
	// deadline they would consume. On count-shorthand fleets every
	// machine shares one prediction, the homogeneous fast path.
	RouterLeastRisk = "least-risk"
	// RouterLeastRiskShared is the ablation between least-queue and
	// least-risk: the same risk arithmetic, but with one fleet-shared
	// prediction (the base System's units) for every machine, as if the
	// fleet were homogeneous. On heterogeneous fleets it misjudges
	// exactly the machines whose units deviate from the base — the gap
	// to least-risk measures what per-machine units buy.
	RouterLeastRiskShared = "least-risk-shared"
)

// riskEps is the probability margin below which two machines count as
// equally safe and the least-risk routers fall back to load.
const riskEps = 1e-9

// Routers returns the registered placement-policy names, in registration
// order — the vocabulary parseRouter accepts and reports.
func Routers() []string {
	return []string{RouterRoundRobin, RouterLeastQueue, RouterLeastRisk, RouterLeastRiskShared}
}

func parseRouter(name string) (string, error) {
	for _, r := range Routers() {
		if name == r {
			return name, nil
		}
	}
	return "", fmt.Errorf("sim: unknown router %q (registered: %s)", name, strings.Join(Routers(), ", "))
}

// route picks the machine for an arrival at virtual time now, among
// the machines [lo, hi) of shard sid — the whole fleet (shard 0) on
// unsharded runs. All policies break ties toward the lowest machine
// index, keeping placement deterministic.
//
// When decision tracing is on, every policy leaves its per-machine
// candidate scoring vector in s.cands (machine order) and the reason
// the winner won in s.tieBreak; capturing is pure observation — the
// comparisons and the chosen machine are identical with tracing off.
func (s *simRun) route(ts *tenantState, ti int, q, tmpl *uaqetp.Query, deadline, now float64, lo, hi, sid int) (int, error) {
	capture := s.level >= trace.Decisions
	if capture {
		s.cands = s.cands[:0]
	}
	switch s.router {
	case RouterRoundRobin:
		// Rotation is per shard, so each shard's machines take turns
		// regardless of how arrivals interleave across shards.
		m := lo + s.rrNexts[sid]%(hi-lo)
		s.rrNexts[sid]++
		if capture {
			s.tieBreak = "rotation"
		}
		return m, nil

	case RouterLeastQueue:
		best, bestWait := lo, math.Inf(1)
		for m := lo; m < hi; m++ {
			qlen, waitMean, waitVar := s.machines[m].srv.QueueStateAt(now)
			if capture {
				s.cands = append(s.cands, trace.Candidate{
					Machine: m, QueueLen: qlen, WaitMean: waitMean, WaitVar: waitVar,
				})
			}
			if waitMean < bestWait {
				best, bestWait = m, waitMean
			}
		}
		if capture {
			s.tieBreak = "wait"
		}
		return best, nil

	case RouterLeastRisk:
		if s.perMachine {
			return s.routeLeastRiskPerMachine(ti, q, deadline, now, lo, hi)
		}
		return s.routeLeastRiskShared(ts, q, tmpl, deadline, now, lo, hi)

	case RouterLeastRiskShared:
		return s.routeLeastRiskShared(ts, q, tmpl, deadline, now, lo, hi)
	}
	return 0, fmt.Errorf("sim: unknown router %q", s.router)
}

// routeLeastRiskShared evaluates P(T_wait + T_q <= d) with one
// fleet-shared prediction of T_q: correct on homogeneous fleets (and
// byte-identical to the pre-heterogeneity router there), an ablation on
// labeled ones.
func (s *simRun) routeLeastRiskShared(ts *tenantState, q, tmpl *uaqetp.Query, deadline, now float64, lo, hi int) (int, error) {
	// The prediction resolves by template through the run-level memo
	// (sharedPred): the base System's predictor never swaps mid-run and
	// clones share their template's plan, so one map probe replaces the
	// per-arrival fingerprint-and-memo walk. The subsequent Submit on
	// the chosen machine still predicts through the stage memos.
	pred, err := s.sharedPred(ts, q, tmpl)
	if err != nil {
		return 0, fmt.Errorf("sim: route predict %q: %w", q.Name, err)
	}
	// Maximize P(T_wait + T_q <= d). The CDF saturates once a machine
	// is safely fast enough, so ties within riskEps — e.g. an idle
	// fleet, where every machine is equally certain — break toward
	// the least expected wait: among equally safe machines, spread
	// the load instead of herding onto the first index.
	capture := s.level >= trace.Decisions
	best, bestP, bestWait := lo, math.Inf(-1), math.Inf(1)
	for m := lo; m < hi; m++ {
		qlen, wait, waitVar := s.machines[m].srv.QueueStateAt(now)
		total := stats.Normal{
			Mu:    pred.Mean() + wait,
			Sigma: math.Sqrt(pred.Sigma()*pred.Sigma() + math.Max(waitVar, 0)),
		}
		p := total.CDF(deadline)
		if capture {
			s.cands = append(s.cands, trace.Candidate{
				Machine: m, QueueLen: qlen, WaitMean: wait, WaitVar: waitVar,
				PredMean: pred.Mean(), PredSigma: pred.Sigma(), PMeet: p,
			})
		}
		if p > bestP+riskEps {
			best, bestP, bestWait = m, p, wait
			if capture {
				s.tieBreak = "risk"
			}
		} else if p > bestP-riskEps && wait < bestWait {
			best, bestP, bestWait = m, p, wait
			if capture {
				s.tieBreak = "wait"
			}
		}
	}
	return best, nil
}

// routeLeastRiskPerMachine evaluates P(T_wait + T_q <= d) with each
// machine's own prediction of T_q, through the machine's tenant façade:
// the same query costs different time — with different uncertainty — on
// different machines, and recalibrated units are read the moment they
// swap in. The sampling pass behind every prediction is shared through
// the fleet cache (estimates are machine-independent), so the
// per-machine work is one analytic unit propagation each.
func (s *simRun) routeLeastRiskPerMachine(ti int, q *uaqetp.Query, deadline, now float64, lo, hi int) (int, error) {
	capture := s.level >= trace.Decisions
	best, bestP, bestWait := lo, math.Inf(-1), math.Inf(1)
	for m := lo; m < hi; m++ {
		ms := s.machines[m]
		pred, err := ms.tenants[ti].System().PredictContext(s.ctx, q)
		if err != nil {
			return 0, fmt.Errorf("sim: route predict %q on machine %d: %w", q.Name, m, err)
		}
		qlen, wait, waitVar := ms.srv.QueueStateAt(now)
		total := stats.Normal{
			Mu:    pred.Mean() + wait,
			Sigma: math.Sqrt(pred.Sigma()*pred.Sigma() + math.Max(waitVar, 0)),
		}
		p := total.CDF(deadline)
		if capture {
			s.cands = append(s.cands, trace.Candidate{
				Machine: m, QueueLen: qlen, WaitMean: wait, WaitVar: waitVar,
				PredMean: pred.Mean(), PredSigma: pred.Sigma(), PMeet: p,
			})
		}
		if p > bestP+riskEps {
			best, bestP, bestWait = m, p, wait
			if capture {
				s.tieBreak = "risk"
			}
		} else if p > bestP-riskEps && wait < bestWait {
			best, bestP, bestWait = m, p, wait
			if capture {
				s.tieBreak = "wait"
			}
		}
	}
	return best, nil
}
