package sim

import (
	"testing"

	uaqetp "repro"
	"repro/internal/serve"
)

// BenchmarkSimPoisson measures simulator throughput — events per second
// of virtual cluster activity — with the expensive System Open
// amortized outside the loop, so the number tracks the event loop,
// admission, routing, and cached execution rather than database
// generation.
func BenchmarkSimPoisson(b *testing.B) {
	sc := Scenario{
		Name:     "bench",
		Seed:     3,
		Horizon:  30,
		Machines: FleetOf(2),
		Router:   RouterLeastRisk,
		DB:       "uniform-1G",
		RNG:      "v2",
		Tenants: []TenantSpec{{
			Name:     "alpha",
			Bench:    "seljoin",
			Queries:  8,
			Deadline: 1.2,
			SLO:      serve.SLO{Confidence: 0.9, DefaultDeadline: 1.2, Quantile: 0.9},
			Arrivals: ArrivalSpec{Process: ProcessPoisson, Rate: 6},
		}},
	}
	sc, err := sc.normalized()
	if err != nil {
		b.Fatal(err)
	}
	kind, err := parseDBKind(sc.DB)
	if err != nil {
		b.Fatal(err)
	}
	qpol, err := serve.QueuePolicyByName(sc.QueuePolicy)
	if err != nil {
		b.Fatal(err)
	}
	cache := uaqetp.NewEstimateCache(1024)
	sys, err := uaqetp.Open(uaqetp.Config{
		DB: kind, Machine: sc.MachineProfile, SamplingRatio: sc.SamplingRatio,
		Seed: sc.Seed, RNG: uaqetp.RNGv2, Cache: cache,
	})
	if err != nil {
		b.Fatal(err)
	}

	b.ReportAllocs()
	b.ResetTimer()
	var events int
	var fitness float64
	for i := 0; i < b.N; i++ {
		rep, err := runWith(sc, qpol, sys, cache)
		if err != nil {
			b.Fatal(err)
		}
		events += rep.Events
		fitness = rep.Fitness.Score
	}
	b.StopTimer()
	if b.Elapsed() > 0 {
		b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
	}
	// Deterministic per (scenario, seed): the trajectory records policy
	// quality next to raw speed, so BENCH_batch.json catches a change
	// that makes the simulator faster by making its decisions worse.
	b.ReportMetric(fitness, "fitness")
}

// BenchmarkSimHeterogeneous measures per-machine routing throughput on
// a mixed-profile fleet: every least-risk placement predicts the
// arrival through each machine's own units (the sampling pass shared
// via the fleet cache), so events/sec here tracks the cost of
// heterogeneity-aware placement — per-machine WithMachine calibration
// included, since rebuilding the fleet is part of each run.
func BenchmarkSimHeterogeneous(b *testing.B) {
	sc := Scenario{
		Name:    "bench-hetero",
		Seed:    3,
		Horizon: 30,
		Machines: FleetList(
			MachineSpec{Profile: "PC2"},
			MachineSpec{Profile: "PC1"},
			MachineSpec{Profile: "PC1", Drift: 1.0},
		),
		Router:      RouterLeastRisk,
		QueuePolicy: "fifo",
		DB:          "uniform-1G",
		RNG:         "v2",
		Tenants: []TenantSpec{{
			Name:     "alpha",
			Bench:    "seljoin",
			Queries:  8,
			Deadline: 1.2,
			SLO:      serve.SLO{Confidence: 0.9, DefaultDeadline: 1.2, Quantile: 0.9},
			Arrivals: ArrivalSpec{Process: ProcessPoisson, Rate: 6},
		}},
	}
	sc, err := sc.normalized()
	if err != nil {
		b.Fatal(err)
	}
	kind, err := parseDBKind(sc.DB)
	if err != nil {
		b.Fatal(err)
	}
	qpol, err := serve.QueuePolicyByName(sc.QueuePolicy)
	if err != nil {
		b.Fatal(err)
	}
	cache := uaqetp.NewEstimateCache(1024)
	sys, err := uaqetp.Open(uaqetp.Config{
		DB: kind, Machine: sc.MachineProfile, SamplingRatio: sc.SamplingRatio,
		Seed: sc.Seed, RNG: uaqetp.RNGv2, Cache: cache,
	})
	if err != nil {
		b.Fatal(err)
	}

	b.ReportAllocs()
	b.ResetTimer()
	var events int
	var fitness float64
	for i := 0; i < b.N; i++ {
		rep, err := runWith(sc, qpol, sys, cache)
		if err != nil {
			b.Fatal(err)
		}
		events += rep.Events
		fitness = rep.Fitness.Score
	}
	b.StopTimer()
	if b.Elapsed() > 0 {
		b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
	}
	b.ReportMetric(fitness, "fitness")
}

// BenchmarkSimDrift measures the calibration observatory end to end: a
// two-machine fleet where one machine's truth flips mid-run
// (WithDriftInjection rebuilt each iteration, like the fleet), every
// executed request streaming through the per-machine accumulators, and
// the drift window assembled at report time. Besides raw events/sec,
// the trajectory records the observatory's quality numbers — fleet MAPE,
// 90% coverage, and time-to-detection — so BENCH_batch.json catches a
// change that speeds the simulator up by making its calibration
// accounting wrong.
func BenchmarkSimDrift(b *testing.B) {
	sc := Scenario{
		Name:    "bench-drift",
		Seed:    3,
		Horizon: 30,
		Machines: FleetList(
			MachineSpec{Profile: "PC1"},
			MachineSpec{Profile: "PC1", Drift: 2.0, DriftAt: 10},
		),
		Router:      RouterLeastRisk,
		QueuePolicy: "fifo",
		DB:          "uniform-1G",
		RNG:         "v2",
		RecalEvery:  5,
		Tenants: []TenantSpec{{
			Name:     "alpha",
			Bench:    "seljoin",
			Queries:  8,
			Deadline: 1.2,
			SLO:      serve.SLO{Confidence: 0.9, DefaultDeadline: 1.2, Quantile: 0.9},
			Arrivals: ArrivalSpec{Process: ProcessPoisson, Rate: 6},
		}},
	}
	sc, err := sc.normalized()
	if err != nil {
		b.Fatal(err)
	}
	kind, err := parseDBKind(sc.DB)
	if err != nil {
		b.Fatal(err)
	}
	qpol, err := serve.QueuePolicyByName(sc.QueuePolicy)
	if err != nil {
		b.Fatal(err)
	}
	cache := uaqetp.NewEstimateCache(1024)
	sys, err := uaqetp.Open(uaqetp.Config{
		DB: kind, Machine: sc.MachineProfile, SamplingRatio: sc.SamplingRatio,
		Seed: sc.Seed, RNG: uaqetp.RNGv2, Cache: cache,
	})
	if err != nil {
		b.Fatal(err)
	}

	b.ReportAllocs()
	b.ResetTimer()
	var events int
	var rep *Report
	for i := 0; i < b.N; i++ {
		rep, err = runWith(sc, qpol, sys, cache)
		if err != nil {
			b.Fatal(err)
		}
		events += rep.Events
	}
	b.StopTimer()
	if b.Elapsed() > 0 {
		b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
	}
	b.ReportMetric(rep.Fitness.Score, "fitness")
	if cal := rep.Calibration; cal != nil {
		b.ReportMetric(cal.Overall.MAPE, "mape")
		for _, cp := range cal.Overall.Coverage {
			if cp.Nominal == 0.9 {
				b.ReportMetric(cp.Observed, "cov90")
			}
		}
	}
	if dw := rep.DriftWindow; dw != nil && dw.Detected {
		b.ReportMetric(dw.TimeToDetection, "ttd_s")
	}
}

// BenchmarkSimSharded measures the sharded topology end to end: 10k
// tenants placed by the consistent-hash directory over 4 shards of 2
// machines, every arrival passing the front door (token bucket plus
// predictive shedding) and the tiered estimate cache. Events/sec here
// tracks the cost the sharding layer adds on top of flat routing —
// placement lookups, per-shard routing ranges, front-door probability
// bounds — amortizing tenant expansion into each run, since group
// expansion is part of a sharded run.
func BenchmarkSimSharded(b *testing.B) {
	sc := Scenario{
		Name:     "bench-sharded",
		Seed:     3,
		Horizon:  10,
		Machines: FleetOf(8),
		Router:   RouterLeastRisk,
		DB:       "uniform-1G",
		RNG:      "v2",
		Shards: &ShardsSpec{
			Count:     4,
			VNodes:    64,
			FrontDoor: &FrontDoorSpec{Rate: 300, Burst: 60, Predictive: true},
			CacheTier: &CacheTierSpec{LocalFraction: 0.75, RemoteLatency: 0.002},
		},
		Tenants: []TenantSpec{{
			Name:     "grid",
			Count:    10000,
			Bench:    "seljoin",
			Queries:  8,
			Deadline: 1.2,
			SLO:      serve.SLO{Confidence: 0.9, DefaultDeadline: 1.2, Quantile: 0.9},
			Arrivals: ArrivalSpec{Process: ProcessPoisson, Rate: 0.02},
		}},
	}
	sc, err := sc.normalized()
	if err != nil {
		b.Fatal(err)
	}
	kind, err := parseDBKind(sc.DB)
	if err != nil {
		b.Fatal(err)
	}
	qpol, err := serve.QueuePolicyByName(sc.QueuePolicy)
	if err != nil {
		b.Fatal(err)
	}
	cache := uaqetp.NewTieredCache(uaqetp.TierConfig{
		LocalFraction: sc.Shards.CacheTier.LocalFraction,
		RemoteLatency: sc.Shards.CacheTier.RemoteLatency,
		Seed:          sc.Seed,
		Capacity:      1024,
	})
	sys, err := uaqetp.Open(uaqetp.Config{
		DB: kind, Machine: sc.MachineProfile, SamplingRatio: sc.SamplingRatio,
		Seed: sc.Seed, RNG: uaqetp.RNGv2, Cache: cache,
	})
	if err != nil {
		b.Fatal(err)
	}

	b.ReportAllocs()
	b.ResetTimer()
	var events int
	var fitness float64
	for i := 0; i < b.N; i++ {
		rep, err := runWith(sc, qpol, sys, cache)
		if err != nil {
			b.Fatal(err)
		}
		events += rep.Events
		fitness = rep.Fitness.Score
	}
	b.StopTimer()
	if b.Elapsed() > 0 {
		b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
	}
	b.ReportMetric(fitness, "fitness")
}

// BenchmarkSimCluster is the million-event shape in miniature: the
// scenario-cluster.json proportions (round-robin over a large
// homogeneous fleet, fifo queues, one high-rate poisson tenant,
// parallel machine stepping) scaled so one iteration is ~60k events —
// big enough that the per-event hot path (measurement stream included)
// dominates, small enough to iterate. Under rng v2 the events/s here
// tracks exactly what scenario-cluster.json's wall clock tracks.
func BenchmarkSimCluster(b *testing.B) {
	sc := Scenario{
		Name:        "bench-cluster",
		Seed:        7,
		Horizon:     20,
		Machines:    FleetOf(100),
		Router:      RouterRoundRobin,
		QueuePolicy: "fifo",
		DB:          "uniform-1G",
		RNG:         "v2",
		Parallelism: 4,
		Tenants: []TenantSpec{{
			Name:     "fleet",
			Bench:    "seljoin",
			Queries:  16,
			Deadline: 2.0,
			SLO:      serve.SLO{Confidence: 0.9, DefaultDeadline: 2.0, Quantile: 0.9},
			Arrivals: ArrivalSpec{Process: ProcessPoisson, Rate: 1500},
		}},
	}
	sc, err := sc.normalized()
	if err != nil {
		b.Fatal(err)
	}
	kind, err := parseDBKind(sc.DB)
	if err != nil {
		b.Fatal(err)
	}
	qpol, err := serve.QueuePolicyByName(sc.QueuePolicy)
	if err != nil {
		b.Fatal(err)
	}
	cache := uaqetp.NewEstimateCache(1024)
	sys, err := uaqetp.Open(uaqetp.Config{
		DB: kind, Machine: sc.MachineProfile, SamplingRatio: sc.SamplingRatio,
		Seed: sc.Seed, RNG: uaqetp.RNGv2, Cache: cache,
	})
	if err != nil {
		b.Fatal(err)
	}

	b.ReportAllocs()
	b.ResetTimer()
	var events int
	var fitness float64
	for i := 0; i < b.N; i++ {
		rep, err := runWith(sc, qpol, sys, cache)
		if err != nil {
			b.Fatal(err)
		}
		events += rep.Events
		fitness = rep.Fitness.Score
	}
	b.StopTimer()
	if b.Elapsed() > 0 {
		b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
	}
	b.ReportMetric(fitness, "fitness")
}
