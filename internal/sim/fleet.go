package sim

import (
	"bytes"
	"encoding/json"
	"fmt"

	"repro/internal/hardware"
)

// MachineSpec describes one machine of the fleet — or, via Count,
// several identical ones.
type MachineSpec struct {
	// Profile names a registered hardware profile
	// (hardware.ProfileByName; presets "PC1", "PC2"). Empty selects the
	// scenario's machine_profile.
	Profile string `json:"profile,omitempty"`
	// Drift shifts the machine's true unit means by the given fraction
	// (hardware.Profile.WithDrift): 0.3 is a machine 30% slower than its
	// profile claims. The machine's own calibration sees the drifted
	// truth; fleet-shared units do not — the gap per-machine routing
	// exploits. Must be > -1.
	Drift float64 `json:"drift,omitempty"`
	// DriftAt, in virtual seconds, turns Drift into a mid-run event: the
	// machine starts on its undrifted profile with matching calibration
	// and flips to the drifted truth at this instant, while its units go
	// stale — the calibration observatory's controlled drift experiment
	// (uaqetp.WithDriftInjection). The report then carries a drift_window
	// section with time-to-detection (drift onset to the first automatic
	// recalibration) and per-phase attainment. 0 means the machine is
	// drifted from the start, exactly as before. Requires Drift != 0 and
	// the scenario's recal_every to be set for detection to ever happen.
	DriftAt float64 `json:"drift_at,omitempty"`
	// Count expands this spec into Count identical machines; 0 means 1.
	Count int `json:"count,omitempty"`
	// Spec inlines a full hardware profile (hardware.Spec JSON shape:
	// name, units, model_err_sigma) instead of naming a registered one.
	// Mutually exclusive with Profile; the inline name labels the
	// machine in reports.
	Spec *hardware.Spec `json:"spec,omitempty"`
}

// Fleet is a scenario's machine list. In JSON it is either a bare count
// — the homogeneous shorthand "machines": 3, meaning three machines of
// the scenario's machine_profile, exactly the pre-heterogeneity schema
// — or a list of MachineSpecs:
//
//	"machines": [
//	  {"profile": "PC2"},
//	  {"profile": "PC1", "count": 2},
//	  {"profile": "PC1", "drift": 0.5}
//	]
//
// The two forms differ in one observable beyond the schema: list-form
// ("labeled") fleets carry per-machine profile labels into the Report
// and route with per-machine predictions, while the count shorthand
// keeps the fleet-shared prediction path (and report bytes) of a
// homogeneous cluster.
type Fleet struct {
	count int
	specs []MachineSpec
}

// FleetOf returns the homogeneous shorthand fleet: n machines of the
// scenario's machine_profile.
func FleetOf(n int) Fleet { return Fleet{count: n} }

// FleetList returns a labeled fleet from explicit machine specs.
func FleetList(specs ...MachineSpec) Fleet {
	out := make([]MachineSpec, len(specs))
	copy(out, specs)
	return Fleet{specs: out}
}

// Labeled reports whether the fleet was given as an explicit machine
// list rather than the count shorthand.
func (f Fleet) Labeled() bool { return f.specs != nil }

// Size returns the number of machines the fleet expands to.
func (f Fleet) Size() int {
	if f.specs == nil {
		if f.count <= 0 {
			return 1
		}
		return f.count
	}
	n := 0
	for _, spec := range f.specs {
		if spec.Count <= 0 {
			n++
		} else {
			n += spec.Count
		}
	}
	return n
}

// UnmarshalJSON accepts either a bare count or a list of specs. Spec
// fields are strict: a custom Unmarshaler does not inherit the outer
// decoder's DisallowUnknownFields, so unknown keys are rejected here
// explicitly — a typo'd "profle" must not silently become the default
// machine.
func (f *Fleet) UnmarshalJSON(b []byte) error {
	var n int
	if err := json.Unmarshal(b, &n); err == nil {
		*f = Fleet{count: n}
		return nil
	}
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	var specs []MachineSpec
	if err := dec.Decode(&specs); err != nil {
		return fmt.Errorf("machines must be a count or a list of {profile, drift, drift_at, count, spec}: %w", err)
	}
	*f = Fleet{specs: specs}
	return nil
}

// MarshalJSON emits the form the fleet was built in.
func (f Fleet) MarshalJSON() ([]byte, error) {
	if f.specs != nil {
		return json.Marshal(f.specs)
	}
	return json.Marshal(f.count)
}

// resolve expands the fleet into one spec per machine (Count unrolled,
// empty Profiles filled with defaultProfile) and validates every
// profile name against the hardware registry and every drift against
// its bounds. The zero Fleet resolves like the old "machines" default:
// one machine of the default profile.
func (f Fleet) resolve(defaultProfile string) ([]MachineSpec, error) {
	if f.specs == nil {
		n := f.count
		if n <= 0 {
			n = 1
		}
		out := make([]MachineSpec, n)
		for i := range out {
			out[i] = MachineSpec{Profile: defaultProfile, Count: 1}
		}
		return out, nil
	}
	if len(f.specs) == 0 {
		return nil, fmt.Errorf("sim: machine list is empty")
	}
	var out []MachineSpec
	for i, spec := range f.specs {
		if spec.Count < 0 {
			return nil, fmt.Errorf("sim: machine %d: negative count %d", i, spec.Count)
		}
		if spec.Spec != nil {
			if spec.Profile != "" {
				return nil, fmt.Errorf("sim: machine %d: profile %q and an inline spec are mutually exclusive", i, spec.Profile)
			}
			if _, err := hardware.FromSpec(*spec.Spec); err != nil {
				return nil, fmt.Errorf("sim: machine %d: %w", i, err)
			}
			spec.Profile = spec.Spec.Name
		} else {
			if spec.Profile == "" {
				spec.Profile = defaultProfile
			}
			if _, err := hardware.ProfileByName(spec.Profile); err != nil {
				return nil, fmt.Errorf("sim: machine %d: %w", i, err)
			}
		}
		if spec.Drift <= -1 {
			return nil, fmt.Errorf("sim: machine %d: drift %g must be above -1", i, spec.Drift)
		}
		if spec.DriftAt < 0 {
			return nil, fmt.Errorf("sim: machine %d: drift_at %g must not be negative", i, spec.DriftAt)
		}
		if spec.DriftAt > 0 && spec.Drift == 0 {
			return nil, fmt.Errorf("sim: machine %d: drift_at %g without drift (nothing to flip to)", i, spec.DriftAt)
		}
		n := spec.Count
		if n == 0 {
			n = 1
		}
		one := MachineSpec{Profile: spec.Profile, Drift: spec.Drift, DriftAt: spec.DriftAt, Count: 1, Spec: spec.Spec}
		for k := 0; k < n; k++ {
			out = append(out, one)
		}
	}
	return out, nil
}

// profileFor materializes the (possibly drifted) hardware profile of
// one resolved machine spec.
func (m MachineSpec) profileFor() (*hardware.Profile, error) {
	var p *hardware.Profile
	var err error
	if m.Spec != nil {
		p, err = hardware.FromSpec(*m.Spec)
	} else {
		p, err = hardware.ProfileByName(m.Profile)
	}
	if err != nil {
		return nil, err
	}
	if m.Drift != 0 {
		return p.WithDrift(m.Drift)
	}
	return p, nil
}
