package sim

import (
	"math"
	"runtime"
	"testing"

	uaqetp "repro"
	"repro/internal/serve"
)

// TestSimParallelSteppingByteIdentical pins the parallel-stepping
// contract: the report is byte-identical for every parallelism setting
// and every GOMAXPROCS — concurrent service steps touch only
// machine-local state and commit their shared effects in event order.
func TestSimParallelSteppingByteIdentical(t *testing.T) {
	base := testScenario()
	ref, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	refJSON, err := ref.JSON()
	if err != nil {
		t.Fatal(err)
	}

	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, procs := range []int{1, 4} {
		runtime.GOMAXPROCS(procs)
		for _, par := range []int{1, 2, 4} {
			sc := testScenario()
			sc.Parallelism = par
			rep, err := Run(sc)
			if err != nil {
				t.Fatalf("GOMAXPROCS=%d parallelism=%d: %v", procs, par, err)
			}
			got, err := rep.JSON()
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != string(refJSON) {
				t.Errorf("GOMAXPROCS=%d parallelism=%d: report differs from serial run", procs, par)
			}
		}
	}
}

// TestAllRejectedTenantReport pins the empty-sample edges of the report
// path: a tenant whose every query is rejected (an impossible deadline
// under a strict confidence floor) must produce a finite, marshalable
// report — zero-N quantiles, no NaN attainment, no panic.
func TestAllRejectedTenantReport(t *testing.T) {
	sc := testScenario()
	sc.Name = "all-rejected"
	sc.Tenants = append([]TenantSpec(nil), sc.Tenants...)
	sc.Tenants = append(sc.Tenants, TenantSpec{
		Name:     "doomed",
		Bench:    "seljoin",
		Queries:  4,
		Deadline: 1e-9, // unmeetable: P(T_q <= d) ~ 0 for every query
		SLO:      serve.SLO{Confidence: 0.99, DefaultDeadline: 1e-9, Quantile: 0.9},
		Arrivals: ArrivalSpec{Process: ProcessPoisson, Rate: 2},
	})
	rep, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rep.JSON(); err != nil {
		t.Fatalf("report not marshalable (NaN/Inf leak?): %v", err)
	}
	var doomed *TenantReport
	for i := range rep.Tenants {
		if rep.Tenants[i].Name == "doomed" {
			doomed = &rep.Tenants[i]
		}
	}
	if doomed == nil {
		t.Fatal("doomed tenant missing from report")
	}
	if doomed.Submitted == 0 || doomed.Rejected != doomed.Submitted {
		t.Fatalf("doomed tenant not all-rejected: %+v", doomed)
	}
	if doomed.Executed != 0 || doomed.Latency.N != 0 || doomed.QueueWait.N != 0 {
		t.Fatalf("doomed tenant executed work: %+v", doomed)
	}
	for name, v := range map[string]float64{
		"slo_attainment":      doomed.SLOAttainment,
		"attainment_executed": doomed.AttainmentExecuted,
		"latency_mean":        doomed.Latency.Mean,
		"latency_p99":         doomed.Latency.P99,
		"queue_wait_mean":     doomed.QueueWait.Mean,
	} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("doomed tenant %s = %v, want finite", name, v)
		}
	}
}

// TestEventDispatchAllocs is the alloc-regression gate on the event
// loop: with the System opened and caches warm, dispatching one event
// (arrival routing + admission or completion + next-request execution)
// must stay within a fixed allocation budget. The seed trajectory spent
// ~300 allocs/event; the pooled/cursor-based engine runs near 40. The
// bound leaves headroom for noise while catching any return of
// per-event heap traffic.
func TestEventDispatchAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under the race detector")
	}
	if testing.Short() {
		t.Skip("short mode")
	}
	sc, err := testScenario().normalized()
	if err != nil {
		t.Fatal(err)
	}
	kind, err := parseDBKind(sc.DB)
	if err != nil {
		t.Fatal(err)
	}
	qpol, err := serve.QueuePolicyByName(sc.QueuePolicy)
	if err != nil {
		t.Fatal(err)
	}
	cache := uaqetp.NewEstimateCache(1024)
	sys, err := uaqetp.Open(uaqetp.Config{
		DB: kind, Machine: sc.MachineProfile, SamplingRatio: sc.SamplingRatio,
		Seed: sc.Seed, Cache: cache,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Warm run: fills the plan memo and the estimate/run cache sections.
	warm, err := runWith(sc, qpol, sys, cache)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Events == 0 {
		t.Fatal("warm run processed no events")
	}
	perRun := testing.AllocsPerRun(3, func() {
		if _, err := runWith(sc, qpol, sys, cache); err != nil {
			t.Fatal(err)
		}
	})
	perEvent := perRun / float64(warm.Events)
	const budget = 150
	if perEvent > budget {
		t.Errorf("event dispatch allocates %.1f allocs/event (%.0f/run over %d events), budget %d",
			perEvent, perRun, warm.Events, budget)
	}
	t.Logf("event dispatch: %.1f allocs/event", perEvent)
}
