package sim

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Load must reject unknown top-level keys and tell the user what the
// valid vocabulary is — a typo'd scenario silently falling back to
// defaults is the worst failure mode a config loader can have.
func TestLoadRejectsUnknownKeysWithListing(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sc.json")
	if err := os.WriteFile(path, []byte(`{"name": "x", "hori_zon": 10}`), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Load(path)
	if err == nil {
		t.Fatal("Load accepted a scenario with an unknown key")
	}
	msg := err.Error()
	if !strings.Contains(msg, `"hori_zon"`) {
		t.Errorf("error does not name the offending key: %v", err)
	}
	if !strings.Contains(msg, "valid keys:") {
		t.Errorf("error does not list the valid vocabulary: %v", err)
	}
	// The listing is derived from the struct tags, so it must track the
	// schema: spot-check long-standing keys and this PR's addition.
	for _, key := range []string{"horizon", "machines", "tenants", "trace_level"} {
		if !strings.Contains(msg, key) {
			t.Errorf("valid-key listing missing %q: %v", key, err)
		}
	}
}

func TestLoadAcceptsAllDocumentedKeys(t *testing.T) {
	// Every shipped example scenario must load cleanly (they are the
	// documentation of the vocabulary).
	for _, sc := range []string{"scenario", "scenario-hetero", "scenario-cluster", "scenario-sharded"} {
		if _, err := Load(filepath.Join("../../examples/sim", sc+".json")); err != nil {
			t.Errorf("shipped scenario %s fails to load: %v", sc, err)
		}
	}
}
