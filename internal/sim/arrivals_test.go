package sim

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// TestArrivalProcessesMeanRate checks that every synthetic process
// delivers the configured mean rate (within sampling tolerance over a
// long horizon), so scenarios comparing temporal structure hold offered
// load constant.
func TestArrivalProcessesMeanRate(t *testing.T) {
	const horizon, rate = 4000.0, 2.0
	specs := map[string]ArrivalSpec{
		"poisson": {Process: ProcessPoisson, Rate: rate},
		"bursty":  {Process: ProcessBursty, Rate: rate, OnFraction: 0.2, Cycle: 40},
		"diurnal": {Process: ProcessDiurnal, Rate: rate, Amplitude: 0.8, Period: 500},
	}
	for name, spec := range specs {
		spec, err := spec.normalized(horizon)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		times := spec.times(rand.New(rand.NewSource(42)), horizon)
		got := float64(len(times)) / horizon
		if math.Abs(got-rate) > 0.25*rate {
			t.Errorf("%s: observed rate %.3f, want ~%.1f", name, got, rate)
		}
		if !sort.Float64sAreSorted(times) {
			t.Errorf("%s: arrival times not sorted", name)
		}
		for _, x := range times {
			if x < 0 || x >= horizon {
				t.Errorf("%s: arrival %g outside [0, %g)", name, x, horizon)
				break
			}
		}
	}
}

// TestArrivalsDeterministic: the same RNG seed reproduces the same
// arrival instants.
func TestArrivalsDeterministic(t *testing.T) {
	spec, err := ArrivalSpec{Process: ProcessBursty, Rate: 3}.normalized(100)
	if err != nil {
		t.Fatal(err)
	}
	a := spec.times(rand.New(rand.NewSource(7)), 100)
	b := spec.times(rand.New(rand.NewSource(7)), 100)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("arrival %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestBurstyIsBurstier: at equal mean rate, the bursty process must
// have a higher interarrival coefficient of variation than Poisson
// (CV 1) — the property the admission tests lean on.
func TestBurstyIsBurstier(t *testing.T) {
	const horizon, rate = 4000.0, 2.0
	cv := func(times []float64) float64 {
		var gaps []float64
		for i := 1; i < len(times); i++ {
			gaps = append(gaps, times[i]-times[i-1])
		}
		var sum float64
		for _, g := range gaps {
			sum += g
		}
		mean := sum / float64(len(gaps))
		var ss float64
		for _, g := range gaps {
			ss += (g - mean) * (g - mean)
		}
		return math.Sqrt(ss/float64(len(gaps))) / mean
	}
	pois, _ := ArrivalSpec{Process: ProcessPoisson, Rate: rate}.normalized(horizon)
	burst, _ := ArrivalSpec{Process: ProcessBursty, Rate: rate, OnFraction: 0.2, Cycle: 40}.normalized(horizon)
	cvP := cv(pois.times(rand.New(rand.NewSource(3)), horizon))
	cvB := cv(burst.times(rand.New(rand.NewSource(3)), horizon))
	if cvB <= cvP*1.2 {
		t.Errorf("bursty CV %.3f not clearly above poisson CV %.3f", cvB, cvP)
	}
}
