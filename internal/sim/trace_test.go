package sim

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// writeTraceScenario materializes a scenario file plus an external
// arrival trace next to it, returning the scenario path — the loader
// resolves relative trace_file paths against the scenario's directory.
func writeTraceScenario(t *testing.T, trace string) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "trace.json"), []byte(trace), 0o644); err != nil {
		t.Fatal(err)
	}
	scenario := `{
		"name": "trace-replay",
		"seed": 11,
		"horizon": 20,
		"machines": 2,
		"db": "uniform-1G",
		"tenants": [{
			"name": "alpha",
			"bench": "seljoin",
			"queries": 4,
			"deadline": 1.2,
			"slo": {"confidence": 0.9, "default_deadline": 1.2, "quantile": 0.9},
			"arrivals": {"trace_file": "trace.json"}
		}]
	}`
	path := filepath.Join(dir, "scenario.json")
	if err := os.WriteFile(path, []byte(scenario), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestTraceFileIngestion runs a scenario whose tenant replays an
// external JSON arrival trace: the offered load is exactly the file's
// in-horizon entries (out-of-order input included — the loader sorts),
// trace_file implies the trace process, and the replay is
// deterministic.
func TestTraceFileIngestion(t *testing.T) {
	// Five entries, deliberately unsorted, one beyond the horizon.
	path := writeTraceScenario(t, `[
		{"at": 4.5, "query": 1},
		{"at": 0.5, "query": 0},
		{"at": 25.0, "query": 3},
		{"at": 2.25, "query": 2},
		{"at": 8.0, "query": 0}
	]`)
	sc, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := sc.Tenants[0].Arrivals.TraceFile; !filepath.IsAbs(got) {
		t.Errorf("trace_file not resolved against the scenario directory: %q", got)
	}
	r1, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Arrivals != 4 {
		t.Errorf("offered %d arrivals, want the 4 in-horizon trace entries", r1.Arrivals)
	}
	if r1.Tenants[0].Submitted != 4 {
		t.Errorf("tenant submitted %d, want 4", r1.Tenants[0].Submitted)
	}
	r2, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Error("trace replay not deterministic across runs")
	}
}

// TestTraceFileErrors pins ingestion validation: malformed entries are
// rejected with errors naming the offending entry, not silently
// replayed.
func TestTraceFileErrors(t *testing.T) {
	cases := map[string]string{
		"negative time":  `[{"at": -1, "query": 0}]`,
		"index too high": `[{"at": 1, "query": 4}]`,
		"negative index": `[{"at": 1, "query": -1}]`,
		"empty trace":    `[]`,
		"unknown field":  `[{"at": 1, "query": 0, "tenant": "x"}]`,
		"not an array":   `{"at": 1}`,
	}
	for name, trace := range cases {
		sc, err := Load(writeTraceScenario(t, trace))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if _, err := Run(sc); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}

	// A missing file fails loudly too.
	sc, err := Load(writeTraceScenario(t, `[{"at": 1, "query": 0}]`))
	if err != nil {
		t.Fatal(err)
	}
	sc.Tenants[0].Arrivals.TraceFile = filepath.Join(t.TempDir(), "nope.json")
	if _, err := Run(sc); err == nil {
		t.Error("missing trace file accepted")
	}
}

// TestTraceFileImpliesProcess pins the schema sugar and its guard:
// trace_file defaults the process to "trace" and needs no rate, while
// combining a trace_file with a synthetic process is a config error.
func TestTraceFileImpliesProcess(t *testing.T) {
	a, err := (ArrivalSpec{TraceFile: "x.json"}).normalized(10)
	if err != nil {
		t.Fatal(err)
	}
	if a.Process != ProcessTrace {
		t.Errorf("trace_file normalized to process %q", a.Process)
	}
	if _, err := (ArrivalSpec{Process: ProcessPoisson, Rate: 1, TraceFile: "x.json"}).normalized(10); err == nil {
		t.Error("trace_file on a poisson process accepted")
	}
	if _, err := (ArrivalSpec{Process: ProcessTrace, Rate: -1, TraceFile: "x.json"}).normalized(10); err == nil {
		t.Error("negative rate accepted alongside a trace file")
	}
}
