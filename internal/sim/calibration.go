package sim

import (
	"math"
	"sort"

	"repro/internal/calib"
	"repro/internal/hardware"
	"repro/internal/trace"
)

// machineObserver is the per-machine calib.Observer the simulator
// installs as each server's Config.Observer: every executed request's
// (predicted distribution, observed time) pair folds into machine-local
// accumulators — one per (tenant group, cost unit) — and, when the run
// streams calibration events, stages a KindCalibration event exactly
// like machineRecorder stages decision events. Machine-local and
// lock-free: each machine steps on at most one goroutine at a time, and
// commitMachine drains stagings in deterministic event order.
type machineObserver struct {
	machine int
	shard   string
	groupOf map[string]int32
	// acc[g][u] aggregates group g's observations whose predicted mean
	// unit u dominates.
	acc    [][hardware.NumUnits]calib.Accumulator
	stream bool
	events []trace.Event
}

func newMachineObserver(machine, groups int, groupOf map[string]int32, stream bool) *machineObserver {
	return &machineObserver{
		machine: machine,
		groupOf: groupOf,
		acc:     make([][hardware.NumUnits]calib.Accumulator, groups),
		stream:  stream,
	}
}

// Observe implements calib.Observer.
func (o *machineObserver) Observe(ob *calib.Observation) {
	gi, ok := o.groupOf[ob.Tenant]
	if !ok {
		return
	}
	o.acc[gi][ob.Unit].Observe(ob.PredMean, ob.PredSigma, ob.Observed)
	if o.stream {
		o.events = append(o.events, trace.Event{
			Kind: trace.KindCalibration, At: ob.At, Machine: o.machine, Shard: o.shard,
			Tenant: ob.Tenant, Unit: ob.Unit.String(),
			PredMean: ob.PredMean, PredSigma: ob.PredSigma, Elapsed: ob.Observed,
		})
	}
}

// calibrationReport merges the fleet's machine-local accumulators into
// the report's calibration section. Every merge walks a fixed order —
// machines, then tenant groups, then units — so the section is
// byte-identical across GOMAXPROCS and parallelism (each machine's
// accumulator contents are already deterministic: observations fold in
// that machine's event order). Nil when nothing executed.
func (s *simRun) calibrationReport() *CalibrationReport {
	nGroups := len(s.sc.Tenants)
	perGroupUnit := make([][hardware.NumUnits]calib.Accumulator, nGroups)
	perMachine := make([]calib.Accumulator, len(s.machines))
	for m, ms := range s.machines {
		for g := range ms.obs.acc {
			for u := range ms.obs.acc[g] {
				a := &ms.obs.acc[g][u]
				if a.N() == 0 {
					continue
				}
				perGroupUnit[g][u].Merge(a)
				perMachine[m].Merge(a)
			}
		}
	}
	var overall calib.Accumulator
	var perUnit [hardware.NumUnits]calib.Accumulator
	perGroup := make([]calib.Accumulator, nGroups)
	for g := range perGroupUnit {
		for u := range perGroupUnit[g] {
			a := &perGroupUnit[g][u]
			if a.N() == 0 {
				continue
			}
			overall.Merge(a)
			perUnit[u].Merge(a)
			perGroup[g].Merge(a)
		}
	}
	if overall.N() == 0 {
		return nil
	}
	rep := &CalibrationReport{Overall: overall.Metrics()}
	for u := range perUnit {
		if perUnit[u].N() == 0 {
			continue
		}
		rep.PerUnit = append(rep.PerUnit, UnitCalibration{
			Unit: hardware.Unit(u).String(), Metrics: perUnit[u].Metrics(),
		})
	}
	for g := range perGroup {
		if perGroup[g].N() == 0 {
			continue
		}
		rep.PerTenant = append(rep.PerTenant, TenantCalibration{
			Name: s.sc.Tenants[g].Name, Metrics: perGroup[g].Metrics(),
		})
	}
	sort.Slice(rep.PerTenant, func(i, j int) bool { return rep.PerTenant[i].Name < rep.PerTenant[j].Name })
	for m := range perMachine {
		if perMachine[m].N() == 0 {
			continue
		}
		rep.PerMachine = append(rep.PerMachine, MachineCalibration{
			Machine: m, Metrics: perMachine[m].Metrics(),
		})
	}
	return rep
}

// driftWindow assembles the drift experiment's verdict: onset (the
// earliest scheduled flip), whether and when every drift machine's
// feedback loop noticed (its first post-onset automatic
// recalibration), the fleet's time-to-detection, and attainment over
// executed requests split into before-onset / drifted-but-undetected /
// after-detection phases. Nil when no machine schedules a drift.
func (s *simRun) driftWindow() *DriftWindow {
	if len(s.driftMachines) == 0 {
		return nil
	}
	onset := math.Inf(1)
	for _, m := range s.driftMachines {
		if at := s.machines[m].spec.DriftAt; at < onset {
			onset = at
		}
	}
	dw := &DriftWindow{OnsetAt: onset, Detected: true}
	for _, m := range s.driftMachines {
		d := s.detectedAt[m]
		if d < 0 {
			dw.Detected = false
			break
		}
		if d > dw.DetectedAt {
			dw.DetectedAt = d
		}
	}
	if dw.Detected {
		dw.TimeToDetection = dw.DetectedAt - dw.OnsetAt
	} else {
		dw.DetectedAt = 0
	}
	for _, ps := range s.phaseSamples {
		var pa *PhaseAttainment
		switch {
		case ps.finish < onset:
			pa = &dw.Before
		case !dw.Detected || ps.finish < dw.DetectedAt:
			pa = &dw.During
		default:
			pa = &dw.After
		}
		pa.Executed++
		if ps.met {
			pa.Met++
		}
	}
	for _, pa := range []*PhaseAttainment{&dw.Before, &dw.During, &dw.After} {
		if pa.Executed > 0 {
			pa.Attainment = float64(pa.Met) / float64(pa.Executed)
		}
	}
	dw.AttainmentDuringDrift = dw.During.Attainment
	return dw
}
