package sim

import (
	"encoding/json"
	"math"
	"sort"

	uaqetp "repro"
	"repro/internal/calib"
)

// Quantiles summarizes a sample of durations. Quantiles use the
// nearest-rank definition over the sorted sample, so they are exact
// sample statistics (no interpolation) and byte-stable across runs.
type Quantiles struct {
	N    int     `json:"n"`
	Mean float64 `json:"mean"`
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P95  float64 `json:"p95"`
	P99  float64 `json:"p99"`
	Max  float64 `json:"max"`
}

func summarize(xs []float64) Quantiles {
	q := Quantiles{N: len(xs)}
	if len(xs) == 0 {
		return q
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	var sum float64
	for _, x := range sorted {
		sum += x
	}
	rank := func(p float64) float64 {
		i := int(math.Ceil(p*float64(len(sorted)))) - 1
		if i < 0 {
			i = 0
		}
		return sorted[i]
	}
	q.Mean = sum / float64(len(sorted))
	q.P50 = rank(0.50)
	q.P90 = rank(0.90)
	q.P95 = rank(0.95)
	q.P99 = rank(0.99)
	q.Max = sorted[len(sorted)-1]
	return q
}

// TenantReport aggregates one tenant's outcomes across the whole fleet.
type TenantReport struct {
	Name string `json:"name"`
	// Submitted counts arrivals (admitted + rejected + shed).
	Submitted int `json:"submitted"`
	Admitted  int `json:"admitted"`
	Rejected  int `json:"rejected"`
	Executed  int `json:"executed"`
	// ExecFailed counts admitted requests whose execution errored.
	ExecFailed      int `json:"exec_failed"`
	DeadlinesMet    int `json:"deadlines_met"`
	DeadlinesMissed int `json:"deadlines_missed"`
	// Shed counts arrivals the sharded front door refused before
	// placement (token bucket or predictive check); zero — and omitted
	// — on unsharded runs.
	Shed int `json:"shed,omitempty"`
	// SLOAttainment is end-to-end goodput: the fraction of *submitted*
	// queries that finished within their deadline — a rejection counts
	// against it just like a miss, so admission control cannot trade
	// attainment for rejections for free. Front-door sheds count
	// against it exactly like rejections.
	SLOAttainment float64 `json:"slo_attainment"`
	// AttainmentExecuted is deadlines met over executed queries only.
	AttainmentExecuted float64 `json:"attainment_executed"`
	// Latency is finish - arrival (queue wait included) over executed
	// queries; QueueWait is execution start - arrival.
	Latency   Quantiles `json:"latency"`
	QueueWait Quantiles `json:"queue_wait"`
	// Recalibrations counts predictor swaps across the fleet for this
	// tenant; AutoRecalibrations is the subset triggered by the cadence
	// policy.
	Recalibrations     uint64 `json:"recalibrations"`
	AutoRecalibrations uint64 `json:"auto_recalibrations"`
}

// MachineReport summarizes one simulated machine. Profile and Drift
// label the machine's hardware on labeled (machine-list) fleets; on
// count-shorthand fleets they are omitted, keeping the homogeneous
// report byte-identical to the pre-heterogeneity schema.
type MachineReport struct {
	Machine int     `json:"machine"`
	Profile string  `json:"profile,omitempty"`
	Drift   float64 `json:"drift,omitempty"`
	// DriftAt echoes a scheduled mid-run drift (MachineSpec.DriftAt);
	// DriftDetectedAt is the virtual time this machine's feedback loop
	// first auto-recalibrated after the onset, omitted while undetected.
	DriftAt         float64 `json:"drift_at,omitempty"`
	DriftDetectedAt float64 `json:"drift_detected_at,omitempty"`
	Executed        int     `json:"executed"`
	// Clock is the machine's final virtual time; BusyTime the virtual
	// seconds it spent executing; Utilization BusyTime / Clock.
	Clock       float64 `json:"clock"`
	BusyTime    float64 `json:"busy_time"`
	Utilization float64 `json:"utilization"`
}

// UnitCalibration is one cost unit's fleet-wide calibration metrics;
// TenantCalibration one tenant group's; MachineCalibration one
// machine's. The embedded calib.Metrics flattens into the JSON.
type UnitCalibration struct {
	Unit string `json:"unit"`
	calib.Metrics
}

// TenantCalibration aggregates one tenant group's observations across
// the fleet.
type TenantCalibration struct {
	Name string `json:"name"`
	calib.Metrics
}

// MachineCalibration aggregates one machine's observations across its
// tenants and units.
type MachineCalibration struct {
	Machine int `json:"machine"`
	calib.Metrics
}

// CalibrationReport is the calibration observatory's section of a
// Report: how honest the predicted distributions stayed against
// observed running times, fleet-wide and broken out per cost unit,
// tenant group, and machine. Only units/tenants/machines with
// observations appear.
type CalibrationReport struct {
	Overall    calib.Metrics        `json:"overall"`
	PerUnit    []UnitCalibration    `json:"per_unit,omitempty"`
	PerTenant  []TenantCalibration  `json:"per_tenant,omitempty"`
	PerMachine []MachineCalibration `json:"per_machine,omitempty"`
}

// PhaseAttainment is deadline attainment over the executed requests
// that finished inside one phase of a drift experiment.
type PhaseAttainment struct {
	Executed   int     `json:"executed"`
	Met        int     `json:"met"`
	Attainment float64 `json:"attainment"`
}

// DriftWindow is the drift experiment's verdict, present when any
// machine schedules a mid-run drift (MachineSpec.DriftAt). Detection is
// the first automatic recalibration at or after the onset on every
// drifting machine; TimeToDetection is virtual seconds from the
// earliest onset to the last machine's detection. The three phases
// split executed requests by finish time: before the onset, drifted but
// undetected, and after detection — AttainmentDuringDrift (== During.
// Attainment) is the headline cost of serving on stale units.
type DriftWindow struct {
	OnsetAt         float64 `json:"onset_at"`
	Detected        bool    `json:"detected"`
	DetectedAt      float64 `json:"detected_at,omitempty"`
	TimeToDetection float64 `json:"time_to_detection,omitempty"`
	// AttainmentDuringDrift is deadline attainment between drift onset
	// and detection — the window where predictions are stalest.
	AttainmentDuringDrift float64         `json:"attainment_during_drift"`
	Before                PhaseAttainment `json:"before"`
	During                PhaseAttainment `json:"during"`
	After                 PhaseAttainment `json:"after"`
}

// Report is the simulator's structured outcome. For a fixed scenario
// and seed it is byte-identical across runs (JSON()), worker counts,
// and GOMAXPROCS settings.
type Report struct {
	Scenario string `json:"scenario"`
	Seed     int64  `json:"seed"`
	Router   string `json:"router"`
	// QueuePolicy is the per-machine drain-order policy in effect.
	QueuePolicy string `json:"queue_policy"`
	Machines    int    `json:"machines"`
	// Events is the number of discrete events processed; Arrivals the
	// total queries offered.
	Events   int `json:"events"`
	Arrivals int `json:"arrivals"`
	// MakeSpan is the latest machine clock: the virtual time the last
	// queued query finished.
	MakeSpan float64 `json:"makespan"`
	// SLOAttainment is deadlines met over submitted, fleet-wide.
	SLOAttainment float64 `json:"slo_attainment"`
	// Latency summarizes end-to-end latency (queue wait included) over
	// every executed query fleet-wide — the sample the fitness latency
	// penalty reads.
	Latency Quantiles `json:"latency"`
	// Fitness is the weighted multi-objective score of this report
	// under DefaultFitnessWeights; re-score with ComputeFitness to
	// re-weigh.
	Fitness    Fitness           `json:"fitness"`
	Tenants    []TenantReport    `json:"tenants"`
	PerMachine []MachineReport   `json:"per_machine"`
	Cache      uaqetp.CacheStats `json:"cache"`
	// Calibration is the calibration observatory's fleet-wide view:
	// predicted-vs-observed MAPE, Pearson r, bias, and coverage per cost
	// unit, tenant, and machine. Nil when nothing executed.
	Calibration *CalibrationReport `json:"calibration,omitempty"`
	// DriftWindow reports the drift experiment (machines with drift_at):
	// time-to-detection and per-phase attainment. Nil otherwise.
	DriftWindow *DriftWindow `json:"drift_window,omitempty"`
	// Shards describes the sharded serving topology when the scenario
	// has a shards block; nil — and omitted — otherwise, keeping
	// unsharded reports byte-identical to the pre-sharding schema.
	Shards *ShardsReport `json:"shards,omitempty"`
}

// ShardReport summarizes one serving shard: its contiguous machine
// slice, the tenants the directory places on it (final topology), and
// the work its machines executed.
type ShardReport struct {
	Shard int    `json:"shard"`
	Name  string `json:"name"`
	// MachineLo/MachineHi are the shard's machine index range
	// [MachineLo, MachineHi).
	MachineLo int `json:"machine_lo"`
	MachineHi int `json:"machine_hi"`
	// Tenants is how many tenants the directory places on this shard
	// in the final topology (after any add/remove rebalance).
	Tenants  int `json:"tenants"`
	Executed int `json:"executed"`
}

// ClassReport is one SLO class's front-door tally.
type ClassReport struct {
	Class          string `json:"class"`
	Admitted       uint64 `json:"admitted"`
	ShedPredictive uint64 `json:"shed_predictive"`
	ShedThrottled  uint64 `json:"shed_throttled"`
}

// FrontDoorReport summarizes the fleet's intake valve: configuration
// plus per-SLO-class verdict counters, classes sorted by name.
type FrontDoorReport struct {
	Rate       float64 `json:"rate"`
	Burst      float64 `json:"burst"`
	Predictive bool    `json:"predictive"`
	// AdmissionFairness is the Jain fairness index over per-SLO-class
	// admission rates admitted/(admitted+shed), classes with no traffic
	// skipped: 1 means every class is admitted at the same rate, 1/n
	// means one class monopolizes admission.
	AdmissionFairness float64       `json:"admission_fairness"`
	Classes           []ClassReport `json:"classes"`
}

// ShardsReport is the sharded-topology section of a Report.
type ShardsReport struct {
	Count  int `json:"count"`
	VNodes int `json:"vnodes"`
	// AddShardAt/RemoveShardAt echo a mid-run rebalance, when the
	// scenario scheduled one.
	AddShardAt    float64           `json:"add_shard_at,omitempty"`
	RemoveShardAt float64           `json:"remove_shard_at,omitempty"`
	PerShard      []ShardReport     `json:"per_shard"`
	FrontDoor     *FrontDoorReport  `json:"front_door,omitempty"`
	CacheTier     *uaqetp.TierStats `json:"cache_tier,omitempty"`
}

// JSON renders the report with stable indentation — the byte-level
// artifact the determinism contract (and `make sim-smoke`) is pinned
// on.
func (r *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}
