package sim

import (
	"fmt"
	"math"

	uaqetp "repro"
	"repro/internal/shard"
	"repro/internal/stats"
)

// FrontDoorSpec is the scenario JSON shape of the fleet's intake
// valve (shard.FrontDoorConfig).
type FrontDoorSpec struct {
	// Rate is the fleet-wide token refill rate in requests per virtual
	// second; <= 0 disables the token bucket.
	Rate float64 `json:"rate"`
	// Burst is the bucket capacity; < 1 selects Rate.
	Burst float64 `json:"burst,omitempty"`
	// Predictive sheds a submission before placement when its best
	// P(T_wait + T_q <= d) across its shard's machines is below the
	// tenant's SLO confidence — without spending a token.
	Predictive bool `json:"predictive,omitempty"`
}

// CacheTierSpec models a two-tier estimate cache for the scenario: the
// fleet cache becomes a uaqetp.TieredCache with this local fraction
// and per-remote-lookup latency (seeded by the scenario seed), and the
// report grows a cache_tier section with the tier split and modeled
// remote cost.
type CacheTierSpec struct {
	LocalFraction float64 `json:"local_fraction"`
	RemoteLatency float64 `json:"remote_latency"`
}

// ShardsSpec partitions the scenario fleet into a sharded serving
// topology: machines are split into Count contiguous shards, a
// consistent-hash directory (VNodes virtual nodes per shard, seeded by
// the scenario seed) places each tenant on one shard, and arrivals
// route only within their tenant's shard. Optionally the topology
// rebalances mid-run: with AddShardAt the last shard starts outside
// the directory (its machines idle) and joins at that virtual time;
// with RemoveShardAt the last shard leaves the directory at that time
// (admitted work still drains). At most one of the two may be set.
type ShardsSpec struct {
	// Count is the number of shards; the fleet must have at least this
	// many machines. Machines are assigned contiguously (shard 0 gets
	// the first len/Count machines, and so on).
	Count int `json:"count"`
	// VNodes is the directory's virtual-node count per shard; 0
	// selects shard.DefaultVNodes.
	VNodes int `json:"vnodes,omitempty"`
	// AddShardAt, in virtual seconds, holds the last shard out of the
	// directory until that time (requires Count >= 2).
	AddShardAt float64 `json:"add_shard_at,omitempty"`
	// RemoveShardAt, in virtual seconds, removes the last shard from
	// the directory at that time (requires Count >= 2).
	RemoveShardAt float64 `json:"remove_shard_at,omitempty"`
	// FrontDoor, when present, sheds load fleet-wide before placement.
	FrontDoor *FrontDoorSpec `json:"front_door,omitempty"`
	// CacheTier, when present, models the fleet cache as two tiers.
	CacheTier *CacheTierSpec `json:"cache_tier,omitempty"`
}

func (s *ShardsSpec) validate(machines int) error {
	if s.Count < 1 {
		return fmt.Errorf("sim: shards count %d must be at least 1", s.Count)
	}
	if machines < s.Count {
		return fmt.Errorf("sim: %d machines cannot form %d shards", machines, s.Count)
	}
	if s.VNodes < 0 {
		return fmt.Errorf("sim: shards vnodes %d must not be negative", s.VNodes)
	}
	if s.AddShardAt < 0 || s.RemoveShardAt < 0 {
		return fmt.Errorf("sim: shard add/remove times must not be negative")
	}
	if s.AddShardAt > 0 && s.RemoveShardAt > 0 {
		return fmt.Errorf("sim: add_shard_at and remove_shard_at are mutually exclusive")
	}
	if (s.AddShardAt > 0 || s.RemoveShardAt > 0) && s.Count < 2 {
		return fmt.Errorf("sim: a shard rebalance needs at least 2 shards")
	}
	if fd := s.FrontDoor; fd != nil {
		if fd.Rate < 0 || fd.Burst < 0 {
			return fmt.Errorf("sim: front_door rate/burst must not be negative")
		}
	}
	if ct := s.CacheTier; ct != nil {
		if ct.LocalFraction < 0 || ct.LocalFraction > 1 {
			return fmt.Errorf("sim: cache_tier local_fraction %g out of [0, 1]", ct.LocalFraction)
		}
		if ct.RemoteLatency < 0 {
			return fmt.Errorf("sim: cache_tier remote_latency %g must not be negative", ct.RemoteLatency)
		}
	}
	return nil
}

// placeEpoch is one topology state: the directory's placement of every
// expanded tenant, in effect from time from.
type placeEpoch struct {
	from  float64
	place []int32 // expanded tenant index -> shard index
}

// shardedRun is a simulation's sharded topology: shard names, the
// contiguous machine range per shard, the precomputed placement epochs
// (base topology plus at most one rebalance), and the front door.
// Placements are precomputed through shard.Directory before the event
// loop, so the loop's per-arrival work is one epoch lookup.
type shardedRun struct {
	spec   ShardsSpec
	names  []string
	ranges [][2]int
	epochs []placeEpoch
	front  *shard.FrontDoor
}

// buildSharded materializes the scenario's shards block over nMachines
// machines and the expanded tenant list.
func buildSharded(sc Scenario, nMachines int, tenants []*tenantState) (*shardedRun, error) {
	spec := *sc.Shards
	sh := &shardedRun{spec: spec}
	for i := 0; i < spec.Count; i++ {
		sh.names = append(sh.names, fmt.Sprintf("shard-%d", i))
	}
	// Contiguous machine ranges; the first nMachines%Count shards get
	// one extra machine.
	base, extra := nMachines/spec.Count, nMachines%spec.Count
	lo := 0
	for i := 0; i < spec.Count; i++ {
		n := base
		if i < extra {
			n++
		}
		sh.ranges = append(sh.ranges, [2]int{lo, lo + n})
		lo += n
	}

	index := make(map[string]int32, spec.Count)
	for i, n := range sh.names {
		index[n] = int32(i)
	}
	placeAll := func(d *shard.Directory) []int32 {
		out := make([]int32, len(tenants))
		for ti, ts := range tenants {
			out[ti] = index[d.Place(ts.name)]
		}
		return out
	}

	initial := sh.names
	if spec.AddShardAt > 0 {
		initial = sh.names[:spec.Count-1]
	}
	dir, err := shard.NewDirectory(initial, spec.VNodes, sc.Seed)
	if err != nil {
		return nil, fmt.Errorf("sim: shards: %w", err)
	}
	sh.epochs = []placeEpoch{{from: 0, place: placeAll(dir)}}
	switch {
	case spec.AddShardAt > 0:
		if err := dir.Add(sh.names[spec.Count-1]); err != nil {
			return nil, fmt.Errorf("sim: shards: %w", err)
		}
		sh.epochs = append(sh.epochs, placeEpoch{from: spec.AddShardAt, place: placeAll(dir)})
	case spec.RemoveShardAt > 0:
		if err := dir.Remove(sh.names[spec.Count-1]); err != nil {
			return nil, fmt.Errorf("sim: shards: %w", err)
		}
		sh.epochs = append(sh.epochs, placeEpoch{from: spec.RemoveShardAt, place: placeAll(dir)})
	}

	if spec.FrontDoor != nil {
		sh.front = shard.NewFrontDoor(shard.FrontDoorConfig{
			Rate: spec.FrontDoor.Rate, Burst: spec.FrontDoor.Burst,
			Predictive: spec.FrontDoor.Predictive,
		})
	}
	return sh, nil
}

// placeAt returns the shard owning expanded tenant ti at virtual time
// at.
func (sh *shardedRun) placeAt(ti int, at float64) int {
	for i := len(sh.epochs) - 1; i > 0; i-- {
		if at >= sh.epochs[i].from {
			return int(sh.epochs[i].place[ti])
		}
	}
	return int(sh.epochs[0].place[ti])
}

// onShard reports whether tenant ti is placed on shard sidx in any
// epoch — the machines that must carry its façade.
func (sh *shardedRun) onShard(ti, sidx int) bool {
	for _, e := range sh.epochs {
		if int(e.place[ti]) == sidx {
			return true
		}
	}
	return false
}

// bestPIn is the front door's predictive bound: the best
// P(T_wait + T_q <= d) across the shard's machines, with the
// fleet-shared prediction of T_q and each machine's own queue state —
// the same arithmetic as the least-risk-shared router. The prediction
// resolves by template through the run-level memo (sharedPred): clones
// share their template's plan, so the bound is identical while the
// per-arrival cost drops to one map probe. A prediction failure
// returns 1 (the request is forwarded; admission will tally the
// failure exactly as on unsharded runs).
func (s *simRun) bestPIn(ts *tenantState, q, tmpl *uaqetp.Query, deadline, now float64, lo, hi int) float64 {
	pred, err := s.sharedPred(ts, q, tmpl)
	if err != nil {
		return 1
	}
	best := math.Inf(-1)
	for m := lo; m < hi; m++ {
		_, wait, waitVar := s.machines[m].srv.QueueStateAt(now)
		total := stats.Normal{
			Mu:    pred.Mean() + wait,
			Sigma: math.Sqrt(pred.Sigma()*pred.Sigma() + math.Max(waitVar, 0)),
		}
		if p := total.CDF(deadline); p > best {
			best = p
		}
	}
	return best
}

// shardsReport assembles the report's shards section.
func (s *simRun) shardsReport() *ShardsReport {
	sh := s.sh
	vn := sh.spec.VNodes
	if vn == 0 {
		vn = shard.DefaultVNodes
	}
	rep := &ShardsReport{
		Count: sh.spec.Count, VNodes: vn,
		AddShardAt: sh.spec.AddShardAt, RemoveShardAt: sh.spec.RemoveShardAt,
	}
	final := sh.epochs[len(sh.epochs)-1].place
	counts := make([]int, sh.spec.Count)
	for _, si := range final {
		counts[si]++
	}
	for i := range sh.names {
		sr := ShardReport{
			Shard: i, Name: sh.names[i],
			MachineLo: sh.ranges[i][0], MachineHi: sh.ranges[i][1],
			Tenants: counts[i],
		}
		for m := sr.MachineLo; m < sr.MachineHi; m++ {
			sr.Executed += s.machines[m].executed
		}
		rep.PerShard = append(rep.PerShard, sr)
	}
	if fd := sh.front; fd != nil {
		fr := &FrontDoorReport{
			Rate: sh.spec.FrontDoor.Rate, Burst: sh.spec.FrontDoor.Burst,
			Predictive: sh.spec.FrontDoor.Predictive,
		}
		counters := fd.Counters()
		var rates []float64
		for _, class := range fd.Classes() {
			c := counters[class]
			fr.Classes = append(fr.Classes, ClassReport{
				Class: class, Admitted: c.Admitted,
				ShedPredictive: c.ShedPredictive, ShedThrottled: c.ShedThrottled,
			})
			if total := c.Admitted + c.ShedPredictive + c.ShedThrottled; total > 0 {
				rates = append(rates, float64(c.Admitted)/float64(total))
			}
		}
		fr.AdmissionFairness = stats.JainIndex(rates)
		rep.FrontDoor = fr
	}
	if tc, ok := s.cache.(*uaqetp.TieredCache); ok {
		st := tc.TierStats()
		rep.CacheTier = &st
	}
	return rep
}
