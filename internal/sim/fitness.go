package sim

import "repro/internal/stats"

// Multi-objective fitness: one scalar (plus its components) summarizing
// how well a policy configuration served a scenario, computed from any
// Report — the objective function policy search (grids over routers,
// queue policies, SLO confidences, RecalEvery cadences) optimizes
// instead of hand-comparing reports. Modeled on BLIS's weighted fitness
// scoring (ROADMAP item 2).

// FitnessWeights weighs the objectives. All weights are non-negative;
// LatencyPenalty multiplies the fleet p95 latency (virtual seconds)
// and subtracts, every other component adds in [0, 1].
type FitnessWeights struct {
	// Attainment weighs fleet-wide SLO attainment (met / submitted).
	Attainment float64 `json:"attainment"`
	// Fairness weighs the Jain fairness index over per-tenant SLO
	// attainment: 1 when every tenant attains equally, 1/n when one
	// tenant gets everything.
	Fairness float64 `json:"fairness"`
	// Utilization weighs mean machine utilization (busy / clock).
	Utilization float64 `json:"utilization"`
	// CacheEconomy weighs the shared cache's overall hit rate across
	// its estimate, subtree, and run sections.
	CacheEconomy float64 `json:"cache_economy"`
	// LatencyPenalty scales the fleet p95 end-to-end latency penalty.
	LatencyPenalty float64 `json:"latency_penalty"`
}

// DefaultFitnessWeights orders the objectives the way the paper's
// serving story does: attainment dominates, fairness keeps multi-tenant
// outcomes honest, utilization and cache economy break ties between
// configurations that serve equally well, and the latency penalty
// separates "met the deadline" from "met it comfortably".
func DefaultFitnessWeights() FitnessWeights {
	return FitnessWeights{
		Attainment:     1.0,
		Fairness:       0.25,
		Utilization:    0.1,
		CacheEconomy:   0.05,
		LatencyPenalty: 0.1,
	}
}

// Fitness is the weighted multi-objective score of one Report, with
// the unweighted components alongside so searches can re-weigh without
// re-running.
type Fitness struct {
	// Score = Attainment*w.Attainment + Fairness*w.Fairness +
	// Utilization*w.Utilization + CacheEconomy*w.CacheEconomy -
	// LatencyP95*w.LatencyPenalty.
	Score      float64 `json:"score"`
	Attainment float64 `json:"attainment"`
	// LatencyP50/P95/P99 are fleet-wide end-to-end latency quantiles
	// (queue wait included) over executed queries.
	LatencyP50 float64 `json:"latency_p50"`
	LatencyP95 float64 `json:"latency_p95"`
	LatencyP99 float64 `json:"latency_p99"`
	// Fairness is the Jain index over per-tenant SLO attainment.
	Fairness float64 `json:"fairness"`
	// Utilization is the mean machine utilization.
	Utilization float64 `json:"utilization"`
	// CacheEconomy is hits / (hits + misses) summed over the shared
	// cache's estimate, subtree, and run sections.
	CacheEconomy float64        `json:"cache_economy"`
	Weights      FitnessWeights `json:"weights"`
}

// JainIndex is (Σx)² / (n·Σx²): 1 for perfectly equal allocations,
// 1/n when a single participant takes everything. It delegates to
// stats.JainIndex (kept exported here for policy-search callers).
func JainIndex(xs []float64) float64 { return stats.JainIndex(xs) }

// ComputeFitness scores a Report under the given weights. It reads
// only Report fields, so recorded report JSON from any run — or a
// replayed counterfactual — scores identically to a live one.
func ComputeFitness(r *Report, w FitnessWeights) Fitness {
	f := Fitness{
		Attainment: r.SLOAttainment,
		LatencyP50: r.Latency.P50,
		LatencyP95: r.Latency.P95,
		LatencyP99: r.Latency.P99,
		Weights:    w,
	}
	atts := make([]float64, len(r.Tenants))
	for i, t := range r.Tenants {
		atts[i] = t.SLOAttainment
	}
	f.Fairness = JainIndex(atts)
	if len(r.PerMachine) > 0 {
		var u float64
		for _, m := range r.PerMachine {
			u += m.Utilization
		}
		f.Utilization = u / float64(len(r.PerMachine))
	}
	hits := r.Cache.Hits + r.Cache.SubtreeHits + r.Cache.RunHits
	total := hits + r.Cache.Misses + r.Cache.SubtreeMisses + r.Cache.RunMisses
	if total > 0 {
		f.CacheEconomy = float64(hits) / float64(total)
	}
	f.Score = w.Attainment*f.Attainment +
		w.Fairness*f.Fairness +
		w.Utilization*f.Utilization +
		w.CacheEconomy*f.CacheEconomy -
		w.LatencyPenalty*f.LatencyP95
	return f
}
