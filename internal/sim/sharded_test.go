package sim

import (
	"bytes"
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"repro/internal/serve"
	"repro/internal/trace"
)

// shardedScenario is the sharded determinism workhorse: 10k tenants in
// one Count group placed by the directory over 4 shards of one machine
// each, with the front door and the modeled cache tier on. Per-member
// rates are tiny, so the offered load stays a few thousand arrivals.
func shardedScenario() Scenario {
	return Scenario{
		Name:     "sharded-test",
		Seed:     7,
		Horizon:  20,
		Machines: FleetOf(4),
		Router:   RouterLeastRisk,
		DB:       "uniform-1G",
		Shards: &ShardsSpec{
			Count:     4,
			FrontDoor: &FrontDoorSpec{Rate: 200, Burst: 50, Predictive: true},
			CacheTier: &CacheTierSpec{LocalFraction: 0.75, RemoteLatency: 0.002},
		},
		Tenants: []TenantSpec{{
			Name:     "grid",
			Count:    10000,
			Bench:    "seljoin",
			Queries:  8,
			Deadline: 1.2,
			SLO:      serve.SLO{Confidence: 0.9, DefaultDeadline: 1.2, Quantile: 0.9},
			Arrivals: ArrivalSpec{Process: ProcessPoisson, Rate: 0.02},
		}},
	}
}

// TestSharded10kTenantsDeterministic is the tentpole's determinism
// acceptance: a 10k-tenant sharded scenario produces byte-identical
// reports and traces per (scenario, seed) across repeated runs,
// GOMAXPROCS settings, and parallelism values.
func TestSharded10kTenantsDeterministic(t *testing.T) {
	sc := shardedScenario()
	r1, ev1, err := RunTraced(sc, trace.Decisions)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Arrivals < 2000 {
		t.Fatalf("scenario too small to mean anything: %d arrivals", r1.Arrivals)
	}
	if r1.Shards == nil || len(r1.Shards.PerShard) != 4 {
		t.Fatalf("report shards section missing or wrong size: %+v", r1.Shards)
	}
	total := 0
	for _, sr := range r1.Shards.PerShard {
		if sr.Tenants == 0 {
			t.Fatalf("shard %d got no tenants out of 10000", sr.Shard)
		}
		total += sr.Tenants
	}
	if total != 10000 {
		t.Fatalf("per-shard tenant counts sum to %d, want 10000", total)
	}
	if r1.Shards.CacheTier == nil || r1.Shards.CacheTier.RemoteLookups == 0 {
		t.Fatalf("cache tier not modeled: %+v", r1.Shards.CacheTier)
	}

	j1, err := r1.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var t1 bytes.Buffer
	if err := trace.WriteJSONL(&t1, ev1); err != nil {
		t.Fatal(err)
	}

	check := func(label string, sc Scenario) {
		t.Helper()
		r, ev, err := RunTraced(sc, trace.Decisions)
		if err != nil {
			t.Fatal(err)
		}
		j, err := r.JSON()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(j1, j) {
			t.Fatalf("%s: report not byte-identical", label)
		}
		var tb bytes.Buffer
		if err := trace.WriteJSONL(&tb, ev); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(t1.Bytes(), tb.Bytes()) {
			t.Fatalf("%s: trace not byte-identical", label)
		}
	}

	check("repeat run", sc)

	prev := runtime.GOMAXPROCS(1)
	check("GOMAXPROCS=1", sc)
	runtime.GOMAXPROCS(prev)

	par := sc
	par.Parallelism = 4
	check("parallelism=4", par)
}

// TestShardedSingleShardDegeneratesToFlat pins the degenerate topology:
// all tenants on one shard of the whole fleet is the flat fleet — the
// report matches the unsharded run exactly, minus the shards section.
func TestShardedSingleShardDegeneratesToFlat(t *testing.T) {
	flat := testScenario()
	sharded := testScenario()
	sharded.Shards = &ShardsSpec{Count: 1}

	fr, err := Run(flat)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := Run(sharded)
	if err != nil {
		t.Fatal(err)
	}
	if sr.Shards == nil || sr.Shards.Count != 1 {
		t.Fatalf("sharded run lost its shards section: %+v", sr.Shards)
	}
	sr.Shards = nil
	if !reflect.DeepEqual(fr, sr) {
		fj, _ := fr.JSON()
		sj, _ := sr.JSON()
		t.Fatalf("single-shard report differs from flat report:\n%s\nvs\n%s", fj, sj)
	}
}

// TestShardedRebalanceEpochs pins the directory rebalance wiring: with
// add_shard_at the last shard starts empty, joins at the scheduled
// time, and takes over roughly 1/N of the tenants — every mover moves
// *to* the new shard (consistent hashing's minimal-movement property,
// threaded through the epoch table).
func TestShardedRebalanceEpochs(t *testing.T) {
	const n = 4000
	tenants := make([]*tenantState, n)
	for i := range tenants {
		tenants[i] = &tenantState{name: fmt.Sprintf("tenant-%04d", i)}
	}
	sc := Scenario{Seed: 3, Shards: &ShardsSpec{Count: 4, AddShardAt: 10}}
	sh, err := buildSharded(sc, 8, tenants)
	if err != nil {
		t.Fatal(err)
	}
	if len(sh.epochs) != 2 || sh.epochs[1].from != 10 {
		t.Fatalf("epochs %+v, want base + rebalance at t=10", sh.epochs)
	}
	moved := 0
	for ti := range tenants {
		before, after := sh.epochs[0].place[ti], sh.epochs[1].place[ti]
		if before == 3 {
			t.Fatalf("tenant %d on the not-yet-joined shard before the rebalance", ti)
		}
		if before != after {
			moved++
			if after != 3 {
				t.Fatalf("tenant %d moved %d -> %d, not to the joining shard", ti, before, after)
			}
		}
	}
	frac := float64(moved) / n
	if frac < 0.15 || frac > 0.35 {
		t.Fatalf("rebalance moved fraction %.3f, want ~1/4", frac)
	}
	// placeAt reads the epoch in effect at the query's arrival time.
	for ti := range tenants {
		if got := sh.placeAt(ti, 9.99); got != int(sh.epochs[0].place[ti]) {
			t.Fatalf("placeAt before rebalance read the wrong epoch")
		}
		if got := sh.placeAt(ti, 10); got != int(sh.epochs[1].place[ti]) {
			t.Fatalf("placeAt at rebalance time read the wrong epoch")
		}
	}
}

// TestPredictiveSheddingBeatsTokenOnly is the pinned acceptance
// comparison: under flash load — a storm tenant whose deadline no
// machine can meet, competing for front-door tokens with a feasible
// gold tenant — predictive admission sheds the hopeless storm *without
// spending tokens*, so the gold tenant keeps its token budget and the
// fleet attains strictly more SLOs than with the token bucket alone.
func TestPredictiveSheddingBeatsTokenOnly(t *testing.T) {
	base := Scenario{
		Name:     "flash",
		Seed:     5,
		Horizon:  20,
		Machines: FleetOf(2),
		Router:   RouterLeastRisk,
		DB:       "uniform-1G",
		Shards: &ShardsSpec{
			Count:     1,
			FrontDoor: &FrontDoorSpec{Rate: 8, Burst: 8},
		},
		Tenants: []TenantSpec{
			{
				Name:     "gold",
				Bench:    "seljoin",
				Queries:  8,
				Deadline: 1.2,
				SLO:      serve.SLO{Confidence: 0.9, DefaultDeadline: 1.2, Quantile: 0.9},
				Arrivals: ArrivalSpec{Process: ProcessPoisson, Rate: 6},
			},
			{
				// The flash flood: four times the gold rate, with a deadline
				// no machine can meet — every admitted token is wasted.
				Name:     "storm",
				Bench:    "seljoin",
				Queries:  8,
				Deadline: 0.0001,
				SLO:      serve.SLO{Confidence: 0.99, DefaultDeadline: 0.0001, Quantile: 0.9},
				Arrivals: ArrivalSpec{Process: ProcessPoisson, Rate: 24},
			},
		},
	}

	tokenOnly, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	pred := base
	pred.Shards = &ShardsSpec{Count: 1, FrontDoor: &FrontDoorSpec{Rate: 8, Burst: 8, Predictive: true}}
	predictive, err := Run(pred)
	if err != nil {
		t.Fatal(err)
	}

	if predictive.Arrivals != tokenOnly.Arrivals {
		t.Fatalf("front door changed the offered load: %d vs %d arrivals",
			predictive.Arrivals, tokenOnly.Arrivals)
	}
	if predictive.SLOAttainment <= tokenOnly.SLOAttainment {
		t.Fatalf("predictive front-door attainment %.4f not above token-only %.4f",
			predictive.SLOAttainment, tokenOnly.SLOAttainment)
	}

	// The mechanism, pinned through the per-class counters: predictive
	// sheds the storm class predictively, and the token-only run throttled
	// requests the predictive run did not.
	classes := func(r *Report) map[string]ClassReport {
		if r.Shards == nil || r.Shards.FrontDoor == nil {
			t.Fatalf("report missing front-door section")
		}
		out := make(map[string]ClassReport)
		for _, c := range r.Shards.FrontDoor.Classes {
			out[c.Class] = c
		}
		return out
	}
	pc, tc := classes(predictive), classes(tokenOnly)
	if pc["storm"].ShedPredictive == 0 {
		t.Fatalf("predictive run shed no storm traffic predictively: %+v", pc)
	}
	if tc["storm"].ShedPredictive != 0 || tc["gold"].ShedPredictive != 0 {
		t.Fatalf("token-only run shed predictively: %+v", tc)
	}
	if pc["gold"].ShedThrottled >= tc["gold"].ShedThrottled {
		t.Fatalf("predictive run throttled gold %d times, token-only %d — tokens were not preserved",
			pc["gold"].ShedThrottled, tc["gold"].ShedThrottled)
	}

	// Per-tenant sheds surface in the report and count into Submitted.
	for _, r := range []*Report{predictive, tokenOnly} {
		for _, tr := range r.Tenants {
			if tr.Submitted != tr.Admitted+tr.Rejected+tr.Shed {
				t.Fatalf("tenant %s: submitted %d != admitted %d + rejected %d + shed %d",
					tr.Name, tr.Submitted, tr.Admitted, tr.Rejected, tr.Shed)
			}
		}
	}
}

// TestShardedValidation rejects malformed shards blocks and tenant
// groups with clear errors.
func TestShardedValidation(t *testing.T) {
	cases := []struct {
		mutate func(*Scenario)
		want   string
	}{
		{func(sc *Scenario) { sc.Shards = &ShardsSpec{Count: 0} }, "at least 1"},
		{func(sc *Scenario) { sc.Shards = &ShardsSpec{Count: 5} }, "cannot form"},
		{func(sc *Scenario) { sc.Shards = &ShardsSpec{Count: 2, VNodes: -1} }, "vnodes"},
		{func(sc *Scenario) { sc.Shards = &ShardsSpec{Count: 2, AddShardAt: 5, RemoveShardAt: 5} }, "mutually exclusive"},
		{func(sc *Scenario) { sc.Shards = &ShardsSpec{Count: 1, AddShardAt: 5} }, "at least 2 shards"},
		{func(sc *Scenario) { sc.Shards = &ShardsSpec{Count: 2, FrontDoor: &FrontDoorSpec{Rate: -1}} }, "front_door"},
		{func(sc *Scenario) { sc.Shards = &ShardsSpec{Count: 2, CacheTier: &CacheTierSpec{LocalFraction: 1.5}} }, "local_fraction"},
		{func(sc *Scenario) {
			sc.Shards = &ShardsSpec{Count: 2, CacheTier: &CacheTierSpec{LocalFraction: 0.5, RemoteLatency: -1}}
		}, "remote_latency"},
		{func(sc *Scenario) { sc.Tenants[0].Count = -1 }, "negative count"},
		{func(sc *Scenario) {
			sc.Tenants[0].Count = 3
			sc.Tenants[0].Arrivals = ArrivalSpec{Process: ProcessTrace, Rate: 2}
		}, "trace arrivals"},
	}
	for i, c := range cases {
		sc := testScenario()
		c.mutate(&sc)
		_, err := sc.normalized()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("case %d: error %v does not contain %q", i, err, c.want)
		}
	}
}
