package sim

import (
	"math"
	"testing"

	uaqetp "repro"
)

func TestJainIndexEdges(t *testing.T) {
	cases := []struct {
		name string
		xs   []float64
		want float64
	}{
		{"empty is fair", nil, 1},
		{"all zero is fair", []float64{0, 0, 0}, 1},
		{"equal is fair", []float64{0.7, 0.7, 0.7, 0.7}, 1},
		{"single taker is 1/n", []float64{1, 0, 0, 0}, 0.25},
		// (1+0.5)^2 / (2 * (1 + 0.25)) = 2.25/2.5.
		{"known two-point value", []float64{1, 0.5}, 0.9},
	}
	for _, c := range cases {
		if got := JainIndex(c.xs); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%s: JainIndex(%v) = %v, want %v", c.name, c.xs, got, c.want)
		}
	}
	// The index is scale-invariant: doubling every allocation changes
	// nothing about its fairness.
	a := JainIndex([]float64{0.2, 0.4, 0.8})
	b := JainIndex([]float64{0.4, 0.8, 1.6})
	if math.Abs(a-b) > 1e-12 {
		t.Errorf("JainIndex not scale-invariant: %v vs %v", a, b)
	}
	if a <= 1.0/3 || a >= 1 {
		t.Errorf("unequal allocation index %v outside (1/n, 1)", a)
	}
}

func TestComputeFitnessFromReport(t *testing.T) {
	rep := &Report{
		SLOAttainment: 0.8,
		Latency:       Quantiles{P50: 0.2, P95: 0.9, P99: 1.4},
		Tenants: []TenantReport{
			{Name: "gold", SLOAttainment: 1.0},
			{Name: "bronze", SLOAttainment: 0.5},
		},
		PerMachine: []MachineReport{
			{Utilization: 0.6},
			{Utilization: 0.4},
		},
		Cache: uaqetp.CacheStats{Hits: 30, Misses: 10, SubtreeHits: 10, RunHits: 10, RunMisses: 10},
	}
	w := DefaultFitnessWeights()
	f := ComputeFitness(rep, w)

	if f.Attainment != 0.8 || f.LatencyP50 != 0.2 || f.LatencyP95 != 0.9 || f.LatencyP99 != 1.4 {
		t.Fatalf("components not copied from report: %+v", f)
	}
	if want := JainIndex([]float64{1.0, 0.5}); math.Abs(f.Fairness-want) > 1e-12 {
		t.Errorf("fairness = %v, want %v", f.Fairness, want)
	}
	if math.Abs(f.Utilization-0.5) > 1e-12 {
		t.Errorf("utilization = %v, want 0.5", f.Utilization)
	}
	// 50 hits over 70 lookups across the three cache sections.
	if want := 50.0 / 70.0; math.Abs(f.CacheEconomy-want) > 1e-12 {
		t.Errorf("cache economy = %v, want %v", f.CacheEconomy, want)
	}
	want := w.Attainment*f.Attainment + w.Fairness*f.Fairness +
		w.Utilization*f.Utilization + w.CacheEconomy*f.CacheEconomy -
		w.LatencyPenalty*f.LatencyP95
	if math.Abs(f.Score-want) > 1e-12 {
		t.Errorf("score = %v, want %v", f.Score, want)
	}
	if f.Weights != w {
		t.Errorf("weights not recorded: %+v", f.Weights)
	}

	// Re-weighing the same components changes only the scalar: an
	// attainment-only weighting scores exactly the attainment.
	only := ComputeFitness(rep, FitnessWeights{Attainment: 1})
	if math.Abs(only.Score-0.8) > 1e-12 {
		t.Errorf("attainment-only score = %v, want 0.8", only.Score)
	}

	// Empty report degenerates gracefully: no machines, no lookups, no
	// tenants — fair by convention, everything else zero.
	empty := ComputeFitness(&Report{}, w)
	if empty.Fairness != 1 || empty.Utilization != 0 || empty.CacheEconomy != 0 {
		t.Errorf("empty-report fitness = %+v", empty)
	}
}

func TestRunReportsCarryFitness(t *testing.T) {
	rep, err := Run(testScenario())
	if err != nil {
		t.Fatal(err)
	}
	recomputed := ComputeFitness(rep, DefaultFitnessWeights())
	if rep.Fitness != recomputed {
		t.Errorf("report fitness %+v != recomputed %+v", rep.Fitness, recomputed)
	}
	if rep.Fitness.Attainment != rep.SLOAttainment {
		t.Errorf("fitness attainment %v != report attainment %v",
			rep.Fitness.Attainment, rep.SLOAttainment)
	}
}
