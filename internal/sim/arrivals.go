package sim

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// The arrival processes.
const (
	// ProcessPoisson is a homogeneous Poisson process at Rate.
	ProcessPoisson = "poisson"
	// ProcessBursty is a Markov-modulated on/off Poisson process: the
	// source alternates exponentially-distributed ON and OFF phases and
	// emits only during ON phases, at Rate/OnFraction — so the mean rate
	// over time equals Rate and burstiness is an orthogonal knob. This
	// is the traffic that separates distribution-aware admission and
	// placement from point-estimate policies: equal average load, much
	// heavier transients.
	ProcessBursty = "bursty"
	// ProcessDiurnal is a nonhomogeneous Poisson process with sinusoidal
	// intensity Rate*(1 + Amplitude*sin(2*pi*t/Period)) via thinning.
	ProcessDiurnal = "diurnal"
	// ProcessTrace replays an arrival-annotated workload trace: either a
	// generated one (internal/workload.GenerateTrace; Rate sets its
	// intensity) or an external JSON file (TraceFile, ingested via
	// internal/workload.LoadTrace). Queries and times come from the
	// trace instead of a pool + synthetic process.
	ProcessTrace = "trace"
)

// ArrivalSpec shapes one tenant's arrival process. Rate is the mean
// arrival intensity in queries per virtual second for every process, so
// scenarios can vary temporal structure at equal offered load.
type ArrivalSpec struct {
	Process string  `json:"process"`
	Rate    float64 `json:"rate,omitempty"`
	// TraceFile replays an external JSON arrival trace — an array of
	// {"at": seconds, "query": poolIndex} entries resolved against the
	// tenant's query pool (bench/queries) — instead of generating one.
	// Setting it implies process "trace" and makes Rate unnecessary.
	// Relative paths resolve against the scenario file's directory.
	TraceFile string `json:"trace_file,omitempty"`
	// Bursty knobs: fraction of time spent in ON phases (default 0.2)
	// and the mean ON+OFF cycle length in virtual seconds (default
	// Horizon/8).
	OnFraction float64 `json:"on_fraction,omitempty"`
	Cycle      float64 `json:"cycle,omitempty"`
	// Diurnal knobs: relative amplitude in [0, 1) (default 0.8) and the
	// period in virtual seconds (default Horizon).
	Amplitude float64 `json:"amplitude,omitempty"`
	Period    float64 `json:"period,omitempty"`
}

// normalized fills defaults (given the scenario horizon) and validates.
func (a ArrivalSpec) normalized(horizon float64) (ArrivalSpec, error) {
	if a.Process == "" {
		if a.TraceFile != "" {
			a.Process = ProcessTrace
		} else {
			a.Process = ProcessPoisson
		}
	}
	switch a.Process {
	case ProcessPoisson, ProcessBursty, ProcessDiurnal, ProcessTrace:
	default:
		return a, fmt.Errorf("unknown arrival process %q (want poisson, bursty, diurnal, or trace)", a.Process)
	}
	if a.TraceFile != "" && a.Process != ProcessTrace {
		return a, fmt.Errorf("trace_file %q set on a %q process (only \"trace\" replays files)", a.TraceFile, a.Process)
	}
	if a.Rate < 0 || (a.Rate == 0 && a.TraceFile == "") {
		return a, fmt.Errorf("arrival rate %g must be positive", a.Rate)
	}
	if a.OnFraction == 0 {
		a.OnFraction = 0.2
	}
	if a.OnFraction <= 0 || a.OnFraction > 1 {
		return a, fmt.Errorf("on_fraction %g out of (0, 1]", a.OnFraction)
	}
	if a.Cycle == 0 {
		a.Cycle = horizon / 8
	}
	if a.Cycle <= 0 {
		return a, fmt.Errorf("cycle %g must be positive", a.Cycle)
	}
	if a.Amplitude == 0 {
		a.Amplitude = 0.8
	}
	if a.Amplitude < 0 || a.Amplitude >= 1 {
		return a, fmt.Errorf("amplitude %g out of [0, 1)", a.Amplitude)
	}
	if a.Period == 0 {
		a.Period = horizon
	}
	if a.Period <= 0 {
		return a, fmt.Errorf("period %g must be positive", a.Period)
	}
	return a, nil
}

// times draws the arrival instants in [0, horizon), sorted, for the
// synthetic processes (trace replay produces its own times). The draw
// is deterministic per source state; the source is version-selected by
// the caller (math/rand for v1 scenarios, the counter-based stream for
// v2 — see internal/rng).
func (a ArrivalSpec) times(r rng.Source, horizon float64) []float64 {
	switch a.Process {
	case ProcessBursty:
		return burstyTimes(r, horizon, a.Rate, a.OnFraction, a.Cycle)
	case ProcessDiurnal:
		return diurnalTimes(r, horizon, a.Rate, a.Amplitude, a.Period)
	default:
		return poissonTimes(r, horizon, a.Rate)
	}
}

func poissonTimes(r rng.Source, horizon, rate float64) []float64 {
	var out []float64
	for t := r.ExpFloat64() / rate; t < horizon; t += r.ExpFloat64() / rate {
		out = append(out, t)
	}
	return out
}

// burstyTimes alternates exponential ON/OFF phases; arrivals occur only
// during ON phases at rate/onFraction, so the long-run mean rate is
// rate. The process starts in an ON phase so short horizons still carry
// a burst.
func burstyTimes(r rng.Source, horizon, rate, onFraction, cycle float64) []float64 {
	onRate := rate / onFraction
	meanOn := onFraction * cycle
	meanOff := (1 - onFraction) * cycle
	var out []float64
	on := true
	for t := 0.0; t < horizon; on = !on {
		var dur float64
		if on {
			dur = r.ExpFloat64() * meanOn
		} else {
			dur = r.ExpFloat64() * meanOff
		}
		end := t + dur
		if on {
			for tt := t + r.ExpFloat64()/onRate; tt < end && tt < horizon; tt += r.ExpFloat64() / onRate {
				out = append(out, tt)
			}
		}
		t = end
	}
	return out
}

// diurnalTimes thins a homogeneous process at the peak intensity down
// to the sinusoidal profile.
func diurnalTimes(r rng.Source, horizon, rate, amp, period float64) []float64 {
	peak := rate * (1 + amp)
	var out []float64
	for t := r.ExpFloat64() / peak; t < horizon; t += r.ExpFloat64() / peak {
		lam := rate * (1 + amp*math.Sin(2*math.Pi*t/period))
		if r.Float64()*peak < lam {
			out = append(out, t)
		}
	}
	return out
}
