package sim

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/hardware"
)

// inlineSpec is a valid full hardware spec for the inline-machine
// tests: PC1's shape with distinct means, so the machine is genuinely
// different from every registered profile.
func inlineSpec() *hardware.Spec {
	return &hardware.Spec{
		Name: "lab-box",
		Units: map[string]hardware.UnitSpec{
			"cs": {Mean: 60e-6, Sigma: 10e-6},
			"cr": {Mean: 700e-6, Sigma: 160e-6},
			"ct": {Mean: 0.8e-6, Sigma: 0.15e-6},
			"ci": {Mean: 2.0e-6, Sigma: 0.40e-6},
			"co": {Mean: 1.1e-6, Sigma: 0.20e-6},
		},
		ModelErrSigma: 0.10,
	}
}

// TestInlineMachineSpec pins machines[].spec end to end: a scenario can
// carry a full hardware profile inline instead of naming a registered
// one, the machine runs under the inline name, and the name labels the
// per-machine report.
func TestInlineMachineSpec(t *testing.T) {
	sc := testScenario()
	sc.Machines = FleetList(
		MachineSpec{Profile: "PC1"},
		MachineSpec{Spec: inlineSpec()},
	)
	rep, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.PerMachine[1].Profile; got != "lab-box" {
		t.Fatalf("inline machine labeled %q, want lab-box", got)
	}
	if rep.PerMachine[1].Executed == 0 {
		t.Fatal("inline-spec machine executed nothing")
	}
}

// TestInlineMachineSpecValidation rejects conflicting and malformed
// inline specs at normalization time.
func TestInlineMachineSpecValidation(t *testing.T) {
	sc := testScenario()
	sc.Machines = FleetList(MachineSpec{Profile: "PC1", Spec: inlineSpec()})
	if _, err := sc.normalized(); err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Errorf("profile + inline spec accepted: %v", err)
	}

	bad := inlineSpec()
	bad.Units["cs"] = hardware.UnitSpec{Mean: -1}
	sc = testScenario()
	sc.Machines = FleetList(MachineSpec{Spec: bad})
	if _, err := sc.normalized(); err == nil || !strings.Contains(err.Error(), "must be positive") {
		t.Errorf("invalid inline unit mean accepted: %v", err)
	}

	incomplete := inlineSpec()
	delete(incomplete.Units, "co")
	sc = testScenario()
	sc.Machines = FleetList(MachineSpec{Spec: incomplete})
	if _, err := sc.normalized(); err == nil || !strings.Contains(err.Error(), "want all") {
		t.Errorf("incomplete inline spec accepted: %v", err)
	}
}

// TestInlineMachineSpecUnknownFieldRejected pins strict decoding
// through the nested spec object: a typo inside machines[].spec fails
// the load instead of silently dropping the field.
func TestInlineMachineSpecUnknownFieldRejected(t *testing.T) {
	dir := t.TempDir()
	scenario := `{
  "name": "x", "seed": 1, "horizon": 5, "db": "uniform-1G",
  "machines": [{"spec": {"name": "m", "model_err_sgima": 0.1,
    "units": {"cs": {"mean": 1e-6}, "cr": {"mean": 1e-6}, "ct": {"mean": 1e-6},
              "ci": {"mean": 1e-6}, "co": {"mean": 1e-6}}}}],
  "tenants": [{"name": "a", "bench": "micro",
    "slo": {"confidence": 0.9, "default_deadline": 1, "quantile": 0.9},
    "arrivals": {"process": "poisson", "rate": 1}}]
}`
	path := filepath.Join(dir, "sc.json")
	if err := os.WriteFile(path, []byte(scenario), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil || !strings.Contains(err.Error(), "model_err_sgima") {
		t.Errorf("unknown field inside machines[].spec accepted: %v", err)
	}
}

// TestRouterErrorListsVocabulary pins the router error style: an
// unknown router name reports the registered vocabulary, same idiom as
// unknown machine profiles.
func TestRouterErrorListsVocabulary(t *testing.T) {
	sc := testScenario()
	sc.Router = "teleport"
	_, err := sc.normalized()
	if err == nil {
		t.Fatal("unknown router accepted")
	}
	msg := err.Error()
	if !strings.Contains(msg, `"teleport"`) || !strings.Contains(msg, "registered:") {
		t.Errorf("router error does not follow the registered-vocabulary style: %v", err)
	}
	for _, r := range Routers() {
		if !strings.Contains(msg, r) {
			t.Errorf("router error missing %q from the vocabulary: %v", r, err)
		}
	}
}
