package sim

import (
	"bytes"
	"reflect"
	"runtime"
	"strings"
	"testing"

	uaqetp "repro"
	"repro/internal/serve"
)

// heteroTestScenario is a small fast mixed-profile scenario for the
// determinism tests: three machines across two profiles plus drift.
func heteroTestScenario() Scenario {
	sc := testScenario()
	sc.Machines = FleetList(
		MachineSpec{Profile: "PC2"},
		MachineSpec{Profile: "PC1"},
		MachineSpec{Profile: "PC1", Drift: 0.5},
	)
	return sc
}

// shippedHeteroScenario loads the heterogeneous scenario the README and
// `make sim-smoke` use, so the acceptance tests pin exactly what ships.
func shippedHeteroScenario(t *testing.T) Scenario {
	t.Helper()
	sc, err := Load("../../examples/sim/scenario-hetero.json")
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

// TestSimHeterogeneousDeterministic extends the core determinism
// contract to mixed-profile fleets: same scenario + seed => deep-equal
// Report and byte-identical JSON across repeated runs and across
// GOMAXPROCS, with per-machine WithMachine siblings in play.
func TestSimHeterogeneousDeterministic(t *testing.T) {
	sc := heteroTestScenario()
	r1, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("heterogeneous reports differ across runs:\n%+v\nvs\n%+v", r1, r2)
	}

	prev := runtime.GOMAXPROCS(1)
	r3, err := Run(sc)
	runtime.GOMAXPROCS(prev)
	if err != nil {
		t.Fatal(err)
	}
	j1, err := r1.JSON()
	if err != nil {
		t.Fatal(err)
	}
	j3, err := r3.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1, j3) {
		t.Fatal("heterogeneous JSON report depends on GOMAXPROCS")
	}

	// Labeled fleets surface their machines' hardware in the report.
	if len(r1.PerMachine) != 3 {
		t.Fatalf("expected 3 machines, got %d", len(r1.PerMachine))
	}
	wantProfiles := []string{"PC2", "PC1", "PC1"}
	wantDrift := []float64{0, 0, 0.5}
	for m, mr := range r1.PerMachine {
		if mr.Profile != wantProfiles[m] || mr.Drift != wantDrift[m] {
			t.Errorf("machine %d labeled (%q, %g), want (%q, %g)",
				m, mr.Profile, mr.Drift, wantProfiles[m], wantDrift[m])
		}
		if mr.Executed == 0 {
			t.Errorf("machine %d executed nothing — routing starved it entirely", m)
		}
	}
}

// TestLabeledHomogeneousMatchesShorthand pins that the per-machine
// prediction path degenerates correctly: a labeled fleet of identical
// default-profile machines makes the same placement, admission, and
// deadline decisions as the count shorthand — only the report's machine
// labels (and cache traffic) differ.
func TestLabeledHomogeneousMatchesShorthand(t *testing.T) {
	sc := testScenario()
	sc.Machines = FleetOf(2)
	short, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	sc.Machines = FleetList(MachineSpec{Count: 2})
	labeled, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(short.Tenants, labeled.Tenants) {
		t.Errorf("tenant outcomes differ between shorthand and labeled homogeneous fleets:\n%+v\nvs\n%+v",
			short.Tenants, labeled.Tenants)
	}
	if short.PerMachine[0].Profile != "" {
		t.Error("count shorthand leaked a profile label into the report")
	}
	if labeled.PerMachine[0].Profile != "PC1" {
		t.Errorf("labeled fleet machine 0 profile %q, want PC1", labeled.PerMachine[0].Profile)
	}
}

// TestHeterogeneousLeastRiskAdvantage is the acceptance criterion: on
// the shipped heterogeneous scenario, routing with each machine's own
// units (least-risk) attains strictly more SLOs than load-only routing
// (least-queue) AND than the same risk arithmetic with fleet-shared
// units (least-risk-shared) — and the least-risk-over-least-queue
// margin is strictly wider than on the homogeneous flattening of the
// same scenario, where per-machine units have nothing to exploit.
func TestHeterogeneousLeastRiskAdvantage(t *testing.T) {
	sc := shippedHeteroScenario(t)
	sc, err := sc.normalized()
	if err != nil {
		t.Fatal(err)
	}
	qpol, err := serve.QueuePolicyByName(sc.QueuePolicy)
	if err != nil {
		t.Fatal(err)
	}
	kind, err := parseDBKind(sc.DB)
	if err != nil {
		t.Fatal(err)
	}
	// One Open for all five runs (the placement decisions are pure
	// functions of the scenario; sharing the cache only saves work).
	cache := uaqetp.NewEstimateCache(1024)
	sys, err := uaqetp.Open(uaqetp.Config{
		DB: kind, Machine: sc.MachineProfile, SamplingRatio: sc.SamplingRatio,
		Seed: sc.Seed, Cache: cache,
	})
	if err != nil {
		t.Fatal(err)
	}
	att := func(router string, machines Fleet) float64 {
		t.Helper()
		sc := sc
		sc.Router = router
		sc.Machines = machines
		rep, err := runWith(sc, qpol, sys, cache)
		if err != nil {
			t.Fatal(err)
		}
		return rep.SLOAttainment
	}

	hetero := sc.Machines
	lr := att(RouterLeastRisk, hetero)
	lq := att(RouterLeastQueue, hetero)
	shared := att(RouterLeastRiskShared, hetero)
	if lr <= lq {
		t.Errorf("per-machine least-risk attainment %.4f not above least-queue %.4f", lr, lq)
	}
	if lr <= shared {
		t.Errorf("per-machine least-risk attainment %.4f not above fleet-shared-units least-risk %.4f", lr, shared)
	}

	homog := FleetOf(hetero.Size())
	lrH := att(RouterLeastRisk, homog)
	lqH := att(RouterLeastQueue, homog)
	if (lr - lq) <= (lrH - lqH) {
		t.Errorf("heterogeneous least-risk margin %.4f not wider than homogeneous %.4f",
			lr-lq, lrH-lqH)
	}
	t.Logf("hetero: least-risk %.4f, shared-units %.4f, least-queue %.4f; homog margin %.4f",
		lr, shared, lq, lrH-lqH)
}

// TestFleetJSON pins the polymorphic machines schema: a bare count and
// a spec list both parse, marshal back in their own form, and resolve
// to the expected machines; unknown profiles are rejected with the
// registered vocabulary in the error.
func TestFleetJSON(t *testing.T) {
	var f Fleet
	if err := f.UnmarshalJSON([]byte(`3`)); err != nil {
		t.Fatal(err)
	}
	if f.Labeled() || f.Size() != 3 {
		t.Errorf("count form parsed as labeled=%v size=%d", f.Labeled(), f.Size())
	}
	specs, err := f.resolve("PC2")
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 3 || specs[0].Profile != "PC2" {
		t.Errorf("count form resolved to %+v", specs)
	}
	if b, _ := f.MarshalJSON(); string(b) != "3" {
		t.Errorf("count form marshaled to %s", b)
	}

	if err := f.UnmarshalJSON([]byte(`[{"profile": "PC2"}, {"drift": 0.5, "count": 2}]`)); err != nil {
		t.Fatal(err)
	}
	if !f.Labeled() || f.Size() != 3 {
		t.Errorf("list form parsed as labeled=%v size=%d", f.Labeled(), f.Size())
	}
	specs, err = f.resolve("PC1")
	if err != nil {
		t.Fatal(err)
	}
	want := []MachineSpec{
		{Profile: "PC2", Count: 1},
		{Profile: "PC1", Drift: 0.5, Count: 1},
		{Profile: "PC1", Drift: 0.5, Count: 1},
	}
	if !reflect.DeepEqual(specs, want) {
		t.Errorf("list form resolved to %+v, want %+v", specs, want)
	}
	if b, _ := f.MarshalJSON(); !strings.HasPrefix(string(b), "[") {
		t.Errorf("list form marshaled to %s", b)
	}

	if err := f.UnmarshalJSON([]byte(`[{"profile": "PC9"}]`)); err != nil {
		t.Fatal(err)
	}
	if _, err := f.resolve("PC1"); err == nil || !strings.Contains(err.Error(), "PC1, PC2") {
		t.Errorf("unknown profile error does not list the registry: %v", err)
	}

	// Typo'd spec keys must be rejected, not silently dropped into the
	// default machine (the outer decoder's DisallowUnknownFields does
	// not reach into a custom Unmarshaler).
	if err := f.UnmarshalJSON([]byte(`[{"profle": "PC2"}]`)); err == nil {
		t.Error("unknown machine-spec field accepted")
	}
	if err := f.UnmarshalJSON([]byte(`[{"profile": "PC1", "dirft": 0.5}]`)); err == nil {
		t.Error("typo'd drift field accepted")
	}
}
