// Package sim is a seeded discrete-event cluster simulator for the
// uncertainty-aware serving layer: it drives a fleet of simulated
// machines — each a serve.Server over its own machine's System, all
// sharing one estimate cache — with configurable multi-tenant arrival
// processes on a virtual clock, routes every arrival through a
// pluggable placement policy, and emits a structured Report (per-tenant
// SLO attainment, latency and queue-wait quantiles, admission/rejection
// counts, per-machine utilization, cache and recalibration stats).
//
// Fleets are heterogeneous by schema: "machines" is either a count (a
// homogeneous shorthand) or a per-machine list of hardware profiles
// with optional unit-mean drift (see Fleet), each non-default machine a
// cheap WithMachine sibling of one shared Open — own calibration,
// predictor, and executor over shared database, samples, and cache.
// Arrival processes include replaying external JSON traces
// (ArrivalSpec.TraceFile), so recorded workload shapes drive the same
// scenarios as the synthetic processes.
//
// The simulator is the scenario harness for the paper's core claim:
// predicted running-time *distributions* — not point estimates — buy
// better admission, scheduling, and placement decisions. The least-risk
// router places each query on the machine maximizing the predicted
// probability of meeting its deadline, P(T_wait + T_q <= d), evaluated
// with each machine's own calibrated units on labeled fleets — so slow
// or drifted machines repel exactly the traffic they would fail — and
// can be compared against distribution-blind policies (round-robin,
// least-queue) and against fleet-shared-units risk routing
// (least-risk-shared) on identical traffic: same scenario, same seed,
// same queries, byte-identical reports across runs.
//
// Everything is deterministic per (Scenario, Seed): arrivals are
// processed on one goroutine, concurrent service steps (see
// Scenario.Parallelism) touch only machine-local state and commit
// their shared effects in event order, every RNG derives from the
// scenario seed, and the underlying prediction/execution stack is
// deterministic by contract — so the same config produces the same
// Report bytes regardless of GOMAXPROCS, parallelism, or the race
// detector.
package sim

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"

	"repro/internal/datagen"
	"repro/internal/hardware"
	"repro/internal/rng"
	"repro/internal/serve"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Scenario is one simulation configuration, JSON-loadable for the
// `uaqp sim` subcommand. See examples/sim/scenario.json for a complete
// example and the README for the schema table.
type Scenario struct {
	// Name labels the report.
	Name string `json:"name"`
	// Seed drives every source of randomness; same scenario + seed =>
	// byte-identical report.
	Seed int64 `json:"seed"`
	// Horizon is the arrival window in virtual seconds; queued work
	// admitted before the horizon still drains to completion.
	Horizon float64 `json:"horizon"`
	// Machines is the fleet: either a count (homogeneous shorthand — N
	// machines of MachineProfile) or a per-machine list of {profile,
	// drift, count} specs. See Fleet.
	Machines Fleet `json:"machines"`
	// Router places each arrival on a machine: "round-robin",
	// "least-queue", "least-risk" (default, per-machine predictions on
	// labeled fleets), or "least-risk-shared" (the ablation: least-risk
	// arithmetic with fleet-shared units).
	Router string `json:"router"`
	// QueuePolicy orders admitted work on each machine: "risk-slack"
	// (default), "edf", "sjf", or "fifo".
	QueuePolicy string `json:"queue_policy,omitempty"`
	// DB names the generated database all tenants share, e.g.
	// "uniform-1G".
	DB string `json:"db"`
	// MachineProfile is the default hardware profile: the whole fleet's
	// under the count shorthand, and the fallback for machine-list
	// entries without one. Any registered profile name
	// (hardware.ProfileByName); default PC1.
	MachineProfile string `json:"machine_profile,omitempty"`
	// SamplingRatio is the offline sample fraction; default 0.05.
	SamplingRatio float64 `json:"sampling_ratio,omitempty"`
	// RNG selects the measurement-stream version: "v1" (default; the
	// historical math/rand stream, byte-compatible with every report
	// pinned before the seam existed) or "v2" (counter-based stream,
	// statistically equivalent measured times at a fraction of the
	// per-execution cost). It seeds both the measurement path of every
	// executed plan and the per-tenant arrival streams.
	RNG string `json:"rng,omitempty"`
	// CacheCapacity bounds the fleet-wide shared estimate cache; 0
	// selects the serve default.
	CacheCapacity int `json:"cache_capacity,omitempty"`
	// MaxQueue bounds each machine's admitted-work queue; 0 selects the
	// serve default.
	MaxQueue int `json:"max_queue,omitempty"`
	// RecalEvery, in virtual seconds, enables the automatic
	// recalibration cadence on every machine (serve.Config.RecalEvery);
	// 0 disables it.
	RecalEvery float64 `json:"recal_every,omitempty"`
	// Parallelism bounds how many machines' service intervals are
	// stepped concurrently between event-ordering barriers; 0 or 1
	// selects serial stepping. The report is byte-identical for every
	// value (and every GOMAXPROCS) — concurrent steps touch only
	// machine-local state and their shared effects are merged in
	// deterministic event order — so the knob trades wall-clock for
	// cores, never reproducibility.
	Parallelism int `json:"parallelism,omitempty"`
	// TraceLevel enables decision tracing when the scenario runs
	// through RunTraced (`uaqp sim -trace`): "off" (default),
	// "decisions" (admissions + placements with candidate scoring
	// vectors), or "full" (adds execution outcomes and
	// recalibrations). Plain Run ignores it.
	TraceLevel string `json:"trace_level,omitempty"`
	// Shards, when present, partitions the fleet into a sharded serving
	// topology: a consistent-hash tenant directory over shards of
	// machines, an optional front door (token bucket + predictive
	// shedding), an optional modeled cache tier, and an optional mid-run
	// rebalance. See ShardsSpec. Absent, the scenario is the flat
	// pre-sharding fleet with byte-identical reports.
	Shards *ShardsSpec `json:"shards,omitempty"`
	// Tenants are the traffic sources; every tenant exists on every
	// machine of its shard (the router spreads its arrivals across
	// them — across the whole fleet when the scenario is unsharded).
	Tenants []TenantSpec `json:"tenants"`
}

// TenantSpec describes one tenant's SLO and traffic — or, via Count, a
// whole group of identically configured tenants.
type TenantSpec struct {
	// Name must be unique within the scenario. With Count > 1 it is
	// the group prefix: members are named "name/0000", "name/0001", …
	Name string `json:"name"`
	// Count expands this spec into Count tenants sharing the SLO,
	// benchmark, and arrival shape but each with its own independent
	// arrival stream (per-member RNG seeds) and its own directory
	// placement. 0 or 1 means a single tenant named exactly Name. The
	// report aggregates the whole group under one TenantReport. Not
	// compatible with trace arrivals.
	Count int `json:"count,omitempty"`
	// Class labels the group's SLO class in front-door counters and
	// metrics; empty selects Name.
	Class string `json:"class,omitempty"`
	// Bench selects the query pool: "micro", "seljoin", or "tpch".
	Bench string `json:"bench"`
	// Queries is the number of distinct queries in the pool that
	// poisson/bursty/diurnal arrivals draw from; default 16. Trace
	// processes ignore it — a trace replays ~rate*horizon
	// arrival-annotated queries of its own.
	Queries int `json:"queries,omitempty"`
	// Deadline is the per-request budget in virtual seconds; 0 lets the
	// SLO default apply.
	Deadline float64 `json:"deadline,omitempty"`
	// SLO is the tenant's service-level objective (serve.SLO JSON
	// shape); zero fields take the serve defaults.
	SLO serve.SLO `json:"slo"`
	// Arrivals shapes the tenant's arrival process.
	Arrivals ArrivalSpec `json:"arrivals"`
}

// Load reads a Scenario from a JSON file, rejecting unknown fields —
// top-level typos are reported with the full valid-key vocabulary
// (same idiom as hardware.ParseProfile), so a misspelled knob like
// "trace_levle" fails loudly instead of silently no-opping. Relative
// trace_file paths resolve against the scenario file's directory, so a
// scenario and its traces travel together.
func Load(path string) (Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Scenario{}, fmt.Errorf("sim: %w", err)
	}
	// First pass: check the top-level key vocabulary, so the error for a
	// typo'd key lists what would have been accepted. Nested objects
	// keep the plain DisallowUnknownFields errors of the strict decode.
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(data, &raw); err != nil {
		return Scenario{}, fmt.Errorf("sim: parse %s: %w", path, err)
	}
	valid := scenarioKeys()
	for key := range raw {
		if !slicesContains(valid, key) {
			return Scenario{}, fmt.Errorf("sim: parse %s: unknown scenario key %q (valid keys: %s)",
				path, key, strings.Join(valid, ", "))
		}
	}
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var sc Scenario
	if err := dec.Decode(&sc); err != nil {
		return Scenario{}, fmt.Errorf("sim: parse %s: %w", path, err)
	}
	dir := filepath.Dir(path)
	for i := range sc.Tenants {
		if tf := sc.Tenants[i].Arrivals.TraceFile; tf != "" && !filepath.IsAbs(tf) {
			sc.Tenants[i].Arrivals.TraceFile = filepath.Join(dir, tf)
		}
	}
	return sc, nil
}

// scenarioKeys derives the valid top-level scenario keys from the
// Scenario struct's json tags, sorted — one source of truth, so a new
// field is automatically part of the accepted (and reported)
// vocabulary.
func scenarioKeys() []string {
	t := reflect.TypeOf(Scenario{})
	keys := make([]string, 0, t.NumField())
	for i := 0; i < t.NumField(); i++ {
		name, _, _ := strings.Cut(t.Field(i).Tag.Get("json"), ",")
		if name != "" && name != "-" {
			keys = append(keys, name)
		}
	}
	sort.Strings(keys)
	return keys
}

func slicesContains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// normalized fills defaults and validates the scenario.
func (sc Scenario) normalized() (Scenario, error) {
	if sc.Name == "" {
		sc.Name = "scenario"
	}
	if sc.Seed == 0 {
		sc.Seed = 1
	}
	if sc.Horizon <= 0 {
		return sc, fmt.Errorf("sim: horizon %g must be positive", sc.Horizon)
	}
	if sc.Router == "" {
		sc.Router = RouterLeastRisk
	}
	if _, err := parseRouter(sc.Router); err != nil {
		return sc, err
	}
	if _, err := serve.QueuePolicyByName(sc.QueuePolicy); err != nil {
		return sc, err
	}
	if _, err := parseDBKind(sc.DB); err != nil {
		return sc, err
	}
	if sc.MachineProfile == "" {
		sc.MachineProfile = "PC1"
	}
	if _, err := hardware.ProfileByName(sc.MachineProfile); err != nil {
		return sc, fmt.Errorf("sim: machine_profile: %w", err)
	}
	if _, err := sc.Machines.resolve(sc.MachineProfile); err != nil {
		return sc, err
	}
	if sc.SamplingRatio == 0 {
		sc.SamplingRatio = 0.05
	}
	if _, err := rng.ParseVersion(sc.RNG); err != nil {
		return sc, fmt.Errorf("sim: rng: %w", err)
	}
	if sc.Parallelism < 0 {
		return sc, fmt.Errorf("sim: parallelism %d must not be negative", sc.Parallelism)
	}
	if _, err := trace.ParseLevel(sc.TraceLevel); err != nil {
		return sc, fmt.Errorf("sim: trace_level: %w", err)
	}
	if sc.Shards != nil {
		if err := sc.Shards.validate(sc.Machines.Size()); err != nil {
			return sc, err
		}
	}
	if len(sc.Tenants) == 0 {
		return sc, fmt.Errorf("sim: scenario needs at least one tenant")
	}
	seen := make(map[string]bool, len(sc.Tenants))
	for i := range sc.Tenants {
		t := &sc.Tenants[i]
		if t.Name == "" {
			return sc, fmt.Errorf("sim: tenant %d has no name", i)
		}
		if seen[t.Name] {
			return sc, fmt.Errorf("sim: duplicate tenant %q", t.Name)
		}
		seen[t.Name] = true
		if t.Count < 0 {
			return sc, fmt.Errorf("sim: tenant %q: negative count %d", t.Name, t.Count)
		}
		if t.Count > 1 && t.Arrivals.Process == ProcessTrace {
			return sc, fmt.Errorf("sim: tenant %q: count %d is not compatible with trace arrivals (a trace replays one tenant's stream)", t.Name, t.Count)
		}
		if _, err := parseBench(t.Bench); err != nil {
			return sc, fmt.Errorf("sim: tenant %q: %w", t.Name, err)
		}
		if t.Queries <= 0 {
			t.Queries = 16
		}
		if t.Deadline < 0 {
			return sc, fmt.Errorf("sim: tenant %q: negative deadline %g", t.Name, t.Deadline)
		}
		norm, err := t.Arrivals.normalized(sc.Horizon)
		if err != nil {
			return sc, fmt.Errorf("sim: tenant %q: %w", t.Name, err)
		}
		t.Arrivals = norm
	}
	return sc, nil
}

func parseBench(s string) (workload.Benchmark, error) {
	switch strings.ToLower(s) {
	case "micro":
		return workload.Micro, nil
	case "seljoin":
		return workload.SelJoin, nil
	case "tpch":
		return workload.TPCH, nil
	default:
		return 0, fmt.Errorf("unknown benchmark %q (want micro, seljoin, or tpch)", s)
	}
}

func parseDBKind(s string) (datagen.DBKind, error) {
	for _, k := range []datagen.DBKind{
		datagen.Uniform1G, datagen.Skewed1G, datagen.Uniform10G, datagen.Skewed10G,
	} {
		if strings.EqualFold(k.String(), s) {
			return k, nil
		}
	}
	return 0, fmt.Errorf("sim: unknown database %q", s)
}
