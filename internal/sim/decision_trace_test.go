package sim

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"testing"

	uaqetp "repro"
	"repro/internal/serve"
	"repro/internal/trace"
)

// traceJSONL renders an event stream the way `uaqp sim -trace` does.
func traceJSONL(t *testing.T, events []trace.Event) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := trace.WriteJSONL(&buf, events); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTraceByteIdentical extends the parallel-stepping determinism
// contract (TestSimParallelSteppingByteIdentical) to the decision
// trace: the JSONL stream is byte-identical for every parallelism
// setting and every GOMAXPROCS — serve-side events are staged per
// machine and merged in deterministic event order, and placements are
// emitted serially on the event loop.
func TestTraceByteIdentical(t *testing.T) {
	_, refEvents, err := RunTraced(testScenario(), trace.Full)
	if err != nil {
		t.Fatal(err)
	}
	if len(refEvents) == 0 {
		t.Fatal("reference run recorded no events")
	}
	ref := traceJSONL(t, refEvents)

	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, procs := range []int{1, 4} {
		runtime.GOMAXPROCS(procs)
		for _, par := range []int{1, 2, 4} {
			sc := testScenario()
			sc.Parallelism = par
			_, events, err := RunTraced(sc, trace.Full)
			if err != nil {
				t.Fatalf("GOMAXPROCS=%d parallelism=%d: %v", procs, par, err)
			}
			if got := traceJSONL(t, events); !bytes.Equal(got, ref) {
				t.Errorf("GOMAXPROCS=%d parallelism=%d: trace differs from serial run", procs, par)
			}
		}
	}
}

// TestRunTracedMatchesRun pins that observation is pure: installing
// recorders (even at Full) must not change a single byte of the report.
func TestRunTracedMatchesRun(t *testing.T) {
	plain, err := Run(testScenario())
	if err != nil {
		t.Fatal(err)
	}
	traced, _, err := RunTraced(testScenario(), trace.Full)
	if err != nil {
		t.Fatal(err)
	}
	pj, err := plain.JSON()
	if err != nil {
		t.Fatal(err)
	}
	tj, err := traced.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pj, tj) {
		t.Error("tracing changed the report")
	}
}

// TestTraceDecisionContent pins what each event kind carries: every
// placement the full per-machine candidate scoring vector and a
// tie-break reason, every admission the distribution it was judged on,
// and (at Full) outcomes and sequence numbers in deterministic order.
func TestTraceDecisionContent(t *testing.T) {
	sc := testScenario()
	rep, events, err := RunTraced(sc, trace.Full)
	if err != nil {
		t.Fatal(err)
	}
	machines := sc.Machines.Size()
	var placements, admissions, outcomes int
	for i, ev := range events {
		if ev.Seq != uint64(i) {
			t.Fatalf("event %d has seq %d, want dense ascending", i, ev.Seq)
		}
		switch ev.Kind {
		case trace.KindPlacement:
			placements++
			if len(ev.Candidates) != machines {
				t.Fatalf("placement %d has %d candidates, want %d", i, len(ev.Candidates), machines)
			}
			if ev.TieBreak != "risk" && ev.TieBreak != "wait" {
				t.Fatalf("placement %d tie_break %q", i, ev.TieBreak)
			}
			if ev.Router != RouterLeastRisk {
				t.Fatalf("placement %d router %q", i, ev.Router)
			}
			c := ev.Candidates[ev.Machine]
			if c.Machine != ev.Machine || c.PredMean <= 0 || c.PredSigma <= 0 {
				t.Fatalf("placement %d chose machine %d with empty scoring: %+v", i, ev.Machine, c)
			}
		case trace.KindAdmission:
			admissions++
			if ev.Verdict != "admit" && ev.Verdict != "reject" {
				t.Fatalf("admission %d verdict %q", i, ev.Verdict)
			}
			if ev.Threshold <= 0 || ev.Deadline <= 0 || ev.Tenant == "" {
				t.Fatalf("admission %d missing fields: %+v", i, ev)
			}
			if ev.Verdict == "admit" && (ev.PredMean <= 0 || ev.PMeet < ev.Threshold) {
				t.Fatalf("admitted event %d inconsistent with its own numbers: %+v", i, ev)
			}
		case trace.KindOutcome:
			outcomes++
			if ev.Finish < ev.Start || ev.Elapsed <= 0 {
				t.Fatalf("outcome %d times: %+v", i, ev)
			}
		}
	}
	if placements != rep.Arrivals {
		t.Errorf("placements = %d, want one per arrival (%d)", placements, rep.Arrivals)
	}
	if admissions != rep.Arrivals {
		t.Errorf("admissions = %d, want one per arrival (%d)", admissions, rep.Arrivals)
	}
	var executed int
	for _, tr := range rep.Tenants {
		executed += tr.Executed + tr.ExecFailed
	}
	if outcomes != executed {
		t.Errorf("outcomes = %d, want one per executed query (%d)", outcomes, executed)
	}

	// Decisions level drops outcomes but keeps both decision kinds.
	_, dec, err := RunTraced(sc, trace.Decisions)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range dec {
		if ev.Kind == trace.KindOutcome || ev.Kind == trace.KindRecalibration {
			t.Fatalf("decisions-level trace carries %s events", ev.Kind)
		}
	}
	if len(dec) != placements+admissions {
		t.Errorf("decisions-level trace has %d events, want %d", len(dec), placements+admissions)
	}
}

// TestTraceLevelFromScenario pins the trace_level scenario knob: a
// RunTraced at Off defers to the file's own setting.
func TestTraceLevelFromScenario(t *testing.T) {
	sc := testScenario()
	sc.TraceLevel = "decisions"
	_, events, err := RunTraced(sc, trace.Off)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("scenario trace_level ignored")
	}
	sc.TraceLevel = "invalid"
	if _, _, err := RunTraced(sc, trace.Off); err == nil {
		t.Fatal("invalid trace_level accepted")
	}
}

// TestReplayHeteroReproducesAttainmentGap is the acceptance test for
// counterfactual replay: on the shipped heterogeneous scenario,
// swapping least-risk for least-queue over the identical arrival
// sequence must (a) reproduce each run's SLO attainment from the
// decision traces alone, (b) show the attainment gap the PR 5 router
// comparison measures from reports, and (c) pinpoint where the two
// policies first diverged.
func TestReplayHeteroReproducesAttainmentGap(t *testing.T) {
	sc := shippedHeteroScenario(t)
	res, err := Replay(sc, nil, Override{Router: RouterLeastQueue})
	if err != nil {
		t.Fatal(err)
	}

	// (a) Trace-derived attainment must equal the reports' numbers for
	// every tenant on both sides — the trace carries the outcome.
	for _, side := range []struct {
		name   string
		events []trace.Event
		rep    *Report
	}{{"base", res.Base, res.BaseReport}, {"variant", res.Variant, res.VariantReport}} {
		tallies := trace.TallyByTenant(side.events)
		for _, tr := range side.rep.Tenants {
			tal, ok := tallies[tr.Name]
			if !ok {
				t.Fatalf("%s trace has no events for tenant %q", side.name, tr.Name)
			}
			if tal.Submitted != tr.Submitted || tal.Admitted != tr.Admitted ||
				tal.Rejected != tr.Rejected || tal.Met != tr.DeadlinesMet {
				t.Errorf("%s tenant %q: trace tally %+v vs report %+v", side.name, tr.Name, tal, tr)
			}
			if tal.Attainment() != tr.SLOAttainment {
				t.Errorf("%s tenant %q: trace attainment %v, report %v",
					side.name, tr.Name, tal.Attainment(), tr.SLOAttainment)
			}
		}
	}

	// (b) The least-risk > least-queue fleet attainment gap, from the
	// replay's own reports (same numbers PR 5's router comparison pins).
	if res.BaseReport.SLOAttainment <= res.VariantReport.SLOAttainment {
		t.Errorf("least-risk attainment %v not above least-queue %v",
			res.BaseReport.SLOAttainment, res.VariantReport.SLOAttainment)
	}
	// ... and per-tenant deltas derived from traces must sum to the same
	// story: at least one tenant lost attainment under least-queue.
	var lost bool
	for _, td := range res.Tenants {
		if td.Delta < 0 {
			lost = true
		}
	}
	if !lost {
		t.Error("no tenant lost attainment under least-queue, gap unexplained")
	}

	// (c) Divergence is located and described.
	if res.Diverged == 0 || res.First == nil {
		t.Fatalf("router swap produced no divergence: %d/%d", res.Diverged, res.Decisions)
	}
	if res.First.Base.Kind != res.First.Variant.Kind {
		t.Errorf("first divergence compares %s against %s", res.First.Base.Kind, res.First.Variant.Kind)
	}
	if res.First.Base.Kind == trace.KindPlacement && res.First.Base.Machine == res.First.Variant.Machine {
		t.Errorf("first placement divergence chose the same machine %d", res.First.Base.Machine)
	}
	if !strings.Contains(res.Override, RouterLeastQueue) {
		t.Errorf("override description %q does not name the swapped router", res.Override)
	}
}

// TestReplayOverrideValidation pins the knob plumbing: an empty
// override errors; SLOConfidence rewrites every tenant without
// mutating the caller's scenario.
func TestReplayOverrideValidation(t *testing.T) {
	if _, err := Replay(testScenario(), nil, Override{}); err == nil {
		t.Fatal("empty override accepted")
	}
	sc := testScenario()
	ov := Override{SLOConfidence: 0.5}
	varSc := ov.apply(sc)
	if varSc.Tenants[0].SLO.Confidence != 0.5 {
		t.Fatal("override did not rewrite tenant confidence")
	}
	if sc.Tenants[0].SLO.Confidence != 0.9 {
		t.Fatal("override mutated the caller's scenario")
	}
	zero := 0.0
	if desc := (Override{RecalEvery: &zero}).describe(sc); !strings.Contains(desc, "recal_every") {
		t.Fatalf("describe = %q", desc)
	}
}

// TestReplayReusesBaseEvents pins the baseEvents fast path: feeding a
// previously recorded Full trace yields the same diff as recording the
// base run inside Replay.
func TestReplayReusesBaseEvents(t *testing.T) {
	sc := testScenario()
	_, baseEvents, err := RunTraced(sc, trace.Full)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := Replay(sc, nil, Override{QueuePolicy: "fifo"})
	if err != nil {
		t.Fatal(err)
	}
	reused, err := Replay(sc, baseEvents, Override{QueuePolicy: "fifo"})
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Diverged != reused.Diverged || fresh.Decisions != reused.Decisions {
		t.Errorf("reused base events changed the diff: %d/%d vs %d/%d",
			reused.Diverged, reused.Decisions, fresh.Diverged, fresh.Decisions)
	}
}

// TestTraceJSONLRoundTripFile pins the CLI interchange: events written
// as JSONL read back equal, through a real file.
func TestTraceJSONLRoundTripFile(t *testing.T) {
	_, events, err := RunTraced(testScenario(), trace.Decisions)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteJSONL(f, events); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	g, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	back, err := trace.ReadJSONL(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(events) {
		t.Fatalf("round trip lost events: %d vs %d", len(back), len(events))
	}
	if !reflect.DeepEqual(back, events) {
		t.Error("round trip changed event contents")
	}
}

// TestTraceOffAllocs pins the zero-alloc-when-disabled contract: a run
// with recorders installed but switched Off must cost, amortized per
// event, essentially nothing over the nil-recorder path — every
// emission site guards with Enabled before constructing an Event.
func TestTraceOffAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under the race detector")
	}
	if testing.Short() {
		t.Skip("short mode")
	}
	sc, err := testScenario().normalized()
	if err != nil {
		t.Fatal(err)
	}
	kind, err := parseDBKind(sc.DB)
	if err != nil {
		t.Fatal(err)
	}
	qpol, err := serve.QueuePolicyByName(sc.QueuePolicy)
	if err != nil {
		t.Fatal(err)
	}
	cache := uaqetp.NewEstimateCache(1024)
	sys, err := uaqetp.Open(uaqetp.Config{
		DB: kind, Machine: sc.MachineProfile, SamplingRatio: sc.SamplingRatio,
		Seed: sc.Seed, Cache: cache,
	})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := runWith(sc, qpol, sys, cache)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Events == 0 {
		t.Fatal("warm run processed no events")
	}
	baseline := testing.AllocsPerRun(3, func() {
		if _, err := runWith(sc, qpol, sys, cache); err != nil {
			t.Fatal(err)
		}
	})
	disabled := testing.AllocsPerRun(3, func() {
		if _, _, err := runTraced(sc, qpol, sys, cache, trace.Off); err != nil {
			t.Fatal(err)
		}
	})
	// The installed-but-off path may allocate the per-machine recorder
	// shells (a handful per run), never per event.
	extraPerEvent := (disabled - baseline) / float64(warm.Events)
	if extraPerEvent > 1 {
		t.Errorf("disabled tracing adds %.2f allocs/event (baseline %.0f, off %.0f over %d events), want ~0",
			extraPerEvent, baseline, disabled, warm.Events)
	}
	t.Logf("tracing off: %+.3f allocs/event over the nil-recorder path", extraPerEvent)
}
