package sim

import (
	"fmt"
	"sort"

	"repro/internal/trace"
)

// Counterfactual replay: re-run a scenario's exact arrival sequence
// with ONE policy knob swapped, and attribute the outcome difference to
// individual decisions. Determinism makes this sound — same scenario +
// seed reproduces the identical arrival sequence, so every divergence
// between the two traces is caused by the overridden knob, not noise.

// Override is one policy knob to swap for a replay. Exactly the set
// fields are applied; at least one must be set.
type Override struct {
	// Router replaces the scenario's placement policy ("round-robin",
	// "least-queue", "least-risk", "least-risk-shared").
	Router string `json:"router,omitempty"`
	// QueuePolicy replaces the per-machine drain-order policy.
	QueuePolicy string `json:"queue_policy,omitempty"`
	// SLOConfidence replaces every tenant's admission confidence
	// threshold (0 leaves them untouched).
	SLOConfidence float64 `json:"slo_confidence,omitempty"`
	// RecalEvery replaces the automatic recalibration cadence; nil
	// leaves it untouched (a pointer so "disable it" — zero — is
	// expressible).
	RecalEvery *float64 `json:"recal_every,omitempty"`
}

func (ov Override) empty() bool {
	return ov.Router == "" && ov.QueuePolicy == "" && ov.SLOConfidence == 0 && ov.RecalEvery == nil
}

// apply returns a deep-enough copy of sc with the override in effect.
func (ov Override) apply(sc Scenario) Scenario {
	if ov.Router != "" {
		sc.Router = ov.Router
	}
	if ov.QueuePolicy != "" {
		sc.QueuePolicy = ov.QueuePolicy
	}
	if ov.SLOConfidence != 0 {
		tenants := append([]TenantSpec(nil), sc.Tenants...)
		for i := range tenants {
			tenants[i].SLO.Confidence = ov.SLOConfidence
		}
		sc.Tenants = tenants
	}
	if ov.RecalEvery != nil {
		sc.RecalEvery = *ov.RecalEvery
	}
	return sc
}

// describe names the swapped knobs, e.g. "router: least-risk -> least-queue".
func (ov Override) describe(base Scenario) string {
	var parts []string
	if ov.Router != "" {
		parts = append(parts, fmt.Sprintf("router: %s -> %s", base.Router, ov.Router))
	}
	if ov.QueuePolicy != "" {
		parts = append(parts, fmt.Sprintf("queue_policy: %s -> %s", base.QueuePolicy, ov.QueuePolicy))
	}
	if ov.SLOConfidence != 0 {
		parts = append(parts, fmt.Sprintf("slo_confidence -> %g", ov.SLOConfidence))
	}
	if ov.RecalEvery != nil {
		parts = append(parts, fmt.Sprintf("recal_every: %g -> %g", base.RecalEvery, *ov.RecalEvery))
	}
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += ", "
		}
		out += p
	}
	return out
}

// Divergence is the first decision where the two runs disagreed: the
// same positional decision (placements and admissions compared in
// deterministic order) with different outcomes.
type Divergence struct {
	// Index is the position in the decision subsequence (placements +
	// admissions, in trace order) where the runs split.
	Index int `json:"index"`
	// Base and Variant are the differing decision events.
	Base    trace.Event `json:"base"`
	Variant trace.Event `json:"variant"`
}

// TenantDelta is one tenant's attainment under both runs, reconstructed
// from the traces alone (not the reports) — the point of the exercise:
// the decision log carries enough to re-derive the outcome.
type TenantDelta struct {
	Tenant string `json:"tenant"`
	// Base/Variant tally the tenant's admissions and outcomes in each
	// trace; Delta = Variant.Attainment() - Base.Attainment().
	Base    trace.Tally `json:"base"`
	Variant trace.Tally `json:"variant"`
	Delta   float64     `json:"delta"`
}

// ReplayResult is a counterfactual comparison of two runs of the same
// arrival sequence under different policy knobs.
type ReplayResult struct {
	// Override describes the swapped knobs.
	Override string `json:"override"`
	// BaseReport/VariantReport are the two runs' full reports (each with
	// its own Fitness).
	BaseReport    *Report `json:"base_report"`
	VariantReport *Report `json:"variant_report"`
	// Base/Variant are the two Full-level traces.
	Base    []trace.Event `json:"-"`
	Variant []trace.Event `json:"-"`
	// Decisions counts the compared decision events (min of the two
	// runs' decision counts); Diverged how many of them differ.
	Decisions int `json:"decisions"`
	Diverged  int `json:"diverged"`
	// First is the earliest differing decision, nil when the runs made
	// identical decisions throughout.
	First *Divergence `json:"first,omitempty"`
	// Tenants holds per-tenant attainment deltas derived from the
	// traces, sorted by tenant name.
	Tenants []TenantDelta `json:"tenants"`
}

// Replay runs the scenario twice at trace level Full — once as-is (or
// reusing baseEvents from a prior RunTraced at Full, to skip the base
// run), once with the override applied — and diffs the two decision
// streams. Both runs see the identical arrival sequence (same scenario,
// same seed), so the diff isolates exactly what the overridden knob
// changed: which placements moved, which admissions flipped, and what
// that did to each tenant's attainment.
func Replay(sc Scenario, baseEvents []trace.Event, ov Override) (*ReplayResult, error) {
	if ov.empty() {
		return nil, fmt.Errorf("sim: replay override sets no knobs")
	}
	var baseRep *Report
	var err error
	if baseEvents == nil {
		baseRep, baseEvents, err = RunTraced(sc, trace.Full)
		if err != nil {
			return nil, fmt.Errorf("sim: replay base run: %w", err)
		}
	} else {
		// Re-score the base from its recorded events is impossible (a
		// trace is not a report), so run it; callers who already hold the
		// base report can ignore this one — determinism makes it
		// identical.
		baseRep, err = Run(sc)
		if err != nil {
			return nil, fmt.Errorf("sim: replay base run: %w", err)
		}
	}
	varSc := ov.apply(sc)
	varRep, varEvents, err := RunTraced(varSc, trace.Full)
	if err != nil {
		return nil, fmt.Errorf("sim: replay variant run: %w", err)
	}

	res := &ReplayResult{
		Override:      ov.describe(sc),
		BaseReport:    baseRep,
		VariantReport: varRep,
		Base:          baseEvents,
		Variant:       varEvents,
	}
	res.diffDecisions()
	res.diffTenants()
	return res, nil
}

// decisionEvents filters a trace down to the decision subsequence —
// placements and admissions in trace order — the positionally
// comparable part of two runs over the same arrivals.
func decisionEvents(events []trace.Event) []*trace.Event {
	out := make([]*trace.Event, 0, len(events))
	for i := range events {
		switch events[i].Kind {
		case trace.KindPlacement, trace.KindAdmission:
			out = append(out, &events[i])
		}
	}
	return out
}

// decisionsDiffer reports whether two positionally matched decision
// events disagree: a placement choosing a different machine (or a
// different tie-break path), or an admission reaching a different
// verdict.
func decisionsDiffer(a, b *trace.Event) bool {
	if a.Kind != b.Kind || a.Tenant != b.Tenant || a.Query != b.Query {
		return true
	}
	switch a.Kind {
	case trace.KindPlacement:
		return a.Machine != b.Machine
	case trace.KindAdmission:
		return a.Verdict != b.Verdict || a.Machine != b.Machine
	}
	return false
}

func (r *ReplayResult) diffDecisions() {
	base := decisionEvents(r.Base)
	variant := decisionEvents(r.Variant)
	n := len(base)
	if len(variant) < n {
		n = len(variant)
	}
	r.Decisions = n
	for i := 0; i < n; i++ {
		if decisionsDiffer(base[i], variant[i]) {
			r.Diverged++
			if r.First == nil {
				r.First = &Divergence{Index: i, Base: *base[i], Variant: *variant[i]}
			}
		}
	}
	// Length mismatch (one run admitted work the other never saw, e.g.
	// after an admission flip) counts the tail as divergent.
	if extra := len(base) + len(variant) - 2*n; extra > 0 {
		r.Diverged += extra
		if r.First == nil && n < len(base) {
			r.First = &Divergence{Index: n, Base: *base[n]}
		} else if r.First == nil && n < len(variant) {
			r.First = &Divergence{Index: n, Variant: *variant[n]}
		}
	}
}

func (r *ReplayResult) diffTenants() {
	base := trace.TallyByTenant(r.Base)
	variant := trace.TallyByTenant(r.Variant)
	names := make(map[string]bool, len(base))
	for name := range base {
		names[name] = true
	}
	for name := range variant {
		names[name] = true
	}
	r.Tenants = make([]TenantDelta, 0, len(names))
	for name := range names {
		b, v := base[name], variant[name]
		r.Tenants = append(r.Tenants, TenantDelta{
			Tenant: name, Base: b, Variant: v,
			Delta: v.Attainment() - b.Attainment(),
		})
	}
	sort.Slice(r.Tenants, func(i, j int) bool { return r.Tenants[i].Tenant < r.Tenants[j].Tenant })
}
