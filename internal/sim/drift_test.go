package sim

import (
	"bytes"
	"runtime"
	"testing"

	"repro/internal/trace"
)

// shippedDriftScenario loads the drift-injection scenario the README
// and `make sim-smoke` use, so the acceptance test pins what ships.
func shippedDriftScenario(t *testing.T) Scenario {
	t.Helper()
	sc, err := Load("../../examples/sim/scenario-drift.json")
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

// driftTestScenario is a small two-machine scenario with one mid-run
// drift, sized for the repeated runs of the determinism sweeps.
func driftTestScenario() Scenario {
	sc := testScenario()
	sc.Machines = FleetList(
		MachineSpec{Profile: "PC1"},
		MachineSpec{Profile: "PC1", Drift: 2.0, DriftAt: 5},
	)
	sc.RecalEvery = 3
	return sc
}

// TestDriftDetectionAndRecovery is the acceptance test for the drift
// experiment: on the shipped scenario the report must tell the whole
// story — onset, detection by the feedback loop within the
// recalibration cadence, degraded attainment while the units were
// stale, and recovery after the recalibration lands.
func TestDriftDetectionAndRecovery(t *testing.T) {
	sc := shippedDriftScenario(t)
	rep, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	dw := rep.DriftWindow
	if dw == nil {
		t.Fatal("drift scenario produced no drift_window section")
	}
	if dw.OnsetAt != 18 {
		t.Errorf("onset %v, want the scenario's drift_at 18", dw.OnsetAt)
	}
	if !dw.Detected {
		t.Fatal("drift never detected: the feedback loop did not recalibrate after onset")
	}
	if dw.TimeToDetection <= 0 || dw.TimeToDetection > 2*sc.RecalEvery {
		t.Errorf("time-to-detection %v outside (0, %v]: detection should land within two recalibration periods",
			dw.TimeToDetection, 2*sc.RecalEvery)
	}
	if dw.DetectedAt != dw.OnsetAt+dw.TimeToDetection {
		t.Errorf("detected_at %v != onset %v + ttd %v", dw.DetectedAt, dw.OnsetAt, dw.TimeToDetection)
	}

	// The three phases must carry real samples and tell the degradation
	// story: perfect before onset, degraded while stale, recovering after.
	for name, pa := range map[string]PhaseAttainment{"before": dw.Before, "during": dw.During, "after": dw.After} {
		if pa.Executed == 0 {
			t.Errorf("phase %q has no executed samples", name)
		}
	}
	if dw.During.Attainment >= dw.Before.Attainment {
		t.Errorf("attainment during drift %v not below pre-drift %v", dw.During.Attainment, dw.Before.Attainment)
	}
	if dw.After.Attainment <= dw.During.Attainment {
		t.Errorf("post-recovery attainment %v not above during-drift %v", dw.After.Attainment, dw.During.Attainment)
	}
	if dw.AttainmentDuringDrift != dw.During.Attainment {
		t.Errorf("attainment_during_drift %v != during.attainment %v", dw.AttainmentDuringDrift, dw.During.Attainment)
	}

	// Per-machine drift fields: only the drifting machine carries them.
	if got := rep.PerMachine[0].DriftDetectedAt; got != 0 {
		t.Errorf("undrifted machine 0 reports drift_detected_at %v", got)
	}
	if got := rep.PerMachine[1].DriftDetectedAt; got != dw.DetectedAt {
		t.Errorf("machine 1 drift_detected_at %v, want fleet detection %v", got, dw.DetectedAt)
	}

	// The calibration section rode along: per-unit residual metrics over
	// every executed request.
	cal := rep.Calibration
	if cal == nil {
		t.Fatal("report has no calibration section")
	}
	if cal.Overall.N == 0 || len(cal.PerUnit) == 0 || len(cal.PerTenant) != len(sc.Tenants) {
		t.Fatalf("calibration section empty: overall n=%d, %d units, %d tenants",
			cal.Overall.N, len(cal.PerUnit), len(cal.PerTenant))
	}
	if cal.Overall.MAPE <= 0 || cal.Overall.MAPE > 1 {
		t.Errorf("overall MAPE %v implausible", cal.Overall.MAPE)
	}
	if cal.Overall.PearsonR <= 0 {
		t.Errorf("overall Pearson r %v: predictions uncorrelated with reality", cal.Overall.PearsonR)
	}
	if len(cal.Overall.Coverage) == 0 {
		t.Error("overall coverage curve empty")
	}
	var unitN int64
	for _, u := range cal.PerUnit {
		unitN += u.N
	}
	if unitN != cal.Overall.N {
		t.Errorf("per-unit observation counts sum to %d, overall has %d", unitN, cal.Overall.N)
	}
}

// TestCalibrationSectionAlwaysOn pins that the observatory needs no
// opt-in: every report carries the calibration section, and scenarios
// without a scheduled drift carry no drift_window.
func TestCalibrationSectionAlwaysOn(t *testing.T) {
	rep, err := Run(testScenario())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Calibration == nil || rep.Calibration.Overall.N == 0 {
		t.Fatal("plain scenario has no calibration section")
	}
	var executed int
	for _, tr := range rep.Tenants {
		executed += tr.Executed
	}
	if rep.Calibration.Overall.N != int64(executed) {
		t.Errorf("calibration observed %d requests, report executed %d", rep.Calibration.Overall.N, executed)
	}
	if rep.DriftWindow != nil {
		t.Error("driftless scenario reports a drift_window")
	}
}

// calibJSONL renders a calibration stream the way `uaqp sim -calib`
// does.
func calibJSONL(t *testing.T, events []trace.Event) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := trace.WriteJSONL(&buf, events); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestCalibStreamByteIdentical extends the byte-determinism contract to
// the calibration stream: for a fixed (scenario, seed) the `-calib`
// JSONL is byte-identical across repeated runs, GOMAXPROCS, and
// parallelism — and turning the stream on must not change a byte of the
// decision trace, which rides its own sequence counter.
func TestCalibStreamByteIdentical(t *testing.T) {
	sc := driftTestScenario()
	_, refTrace, refCalib, err := RunInstrumented(sc, trace.Full, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(refCalib) == 0 {
		t.Fatal("reference run streamed no calibration events")
	}
	for _, ev := range refCalib {
		if ev.Kind != trace.KindCalibration || ev.Unit == "" || ev.PredSigma <= 0 {
			t.Fatalf("malformed calibration event: %+v", ev)
		}
	}
	refC := calibJSONL(t, refCalib)
	refT := traceJSONL(t, refTrace)

	// The decision trace must not notice the calibration stream.
	_, plainTrace, err := RunTraced(sc, trace.Full)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(traceJSONL(t, plainTrace), refT) {
		t.Error("enabling the calibration stream changed the decision trace")
	}

	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, procs := range []int{1, 4} {
		runtime.GOMAXPROCS(procs)
		for _, par := range []int{1, 2, 4} {
			run := sc
			run.Parallelism = par
			_, events, calibEvents, err := RunInstrumented(run, trace.Full, true)
			if err != nil {
				t.Fatalf("GOMAXPROCS=%d parallelism=%d: %v", procs, par, err)
			}
			if !bytes.Equal(calibJSONL(t, calibEvents), refC) {
				t.Errorf("GOMAXPROCS=%d parallelism=%d: calibration stream differs from serial run", procs, par)
			}
			if !bytes.Equal(traceJSONL(t, events), refT) {
				t.Errorf("GOMAXPROCS=%d parallelism=%d: decision trace differs from serial run", procs, par)
			}
		}
	}
}

// TestDriftAtValidation pins the scenario-level guard rails.
func TestDriftAtValidation(t *testing.T) {
	sc := testScenario()
	sc.Machines = FleetList(MachineSpec{Profile: "PC1", DriftAt: 5})
	if _, err := Run(sc); err == nil {
		t.Error("drift_at without drift accepted")
	}
	sc.Machines = FleetList(MachineSpec{Profile: "PC1", Drift: 1, DriftAt: -1})
	if _, err := Run(sc); err == nil {
		t.Error("negative drift_at accepted")
	}
}
