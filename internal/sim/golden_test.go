package sim

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"os"
	"testing"

	"repro/internal/trace"
)

// These tests pin the shipped scenarios' outputs to committed goldens,
// byte for byte. The v1 golden was recorded before the versioned
// measurement stream existed: scenario.json carries no "rng" key, so it
// is the standing proof that unversioned scenarios still produce
// exactly the pre-seam bytes. The v2 goldens pin the migrated
// scenarios' streams so a generator or hot-path change can never
// silently shift the shipped findings. Small reports live as files in
// testdata/; the megabyte-scale artifacts (the 1000-machine cluster
// report, the drift decision trace and calibration stream) are pinned
// by SHA-256 instead.

// reportBytes renders a report exactly as `uaqp sim -o` writes it
// (stable indentation plus trailing newline), which is how the goldens
// were recorded.
func reportBytes(t *testing.T, rep *Report) []byte {
	t.Helper()
	data, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	return append(data, '\n')
}

func runShipped(t *testing.T, name string) *Report {
	t.Helper()
	sc, err := Load("../../examples/sim/" + name)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func compareGolden(t *testing.T, got []byte, golden string) {
	t.Helper()
	want, err := os.ReadFile("testdata/" + golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("report differs from testdata/%s (%d vs %d bytes); the shipped scenario's bytes are pinned — "+
			"if the change is intentional, re-record the golden", golden, len(got), len(want))
	}
}

// TestV1ReportGolden is the compatibility gate: scenario.json has no
// "rng" key, so its report must be byte-identical to the golden
// recorded before the measurement-stream seam existed. If this fails,
// the v1 path is no longer the historical stream.
func TestV1ReportGolden(t *testing.T) {
	rep := runShipped(t, "scenario.json")
	compareGolden(t, reportBytes(t, rep), "report-v1-bursty.json")
}

// TestV2ReportGoldens pins the migrated scenarios' freshly recorded v2
// reports.
func TestV2ReportGoldens(t *testing.T) {
	for scenario, golden := range map[string]string{
		"scenario-hetero.json":  "report-v2-hetero.json",
		"scenario-sharded.json": "report-v2-sharded.json",
		"scenario-drift.json":   "report-v2-drift.json",
	} {
		rep := runShipped(t, scenario)
		compareGolden(t, reportBytes(t, rep), golden)
	}
}

// Megabyte-scale goldens, pinned by hash: the 1000-machine cluster
// report and the drift scenario's decision trace and calibration
// stream (recorded at trace-level "decisions" with calibration
// streaming on, exactly as `uaqp sim -trace -calib` writes them).
const (
	clusterReportSHA256 = "816f131d5bd5ceb8edf9cce8c98f2136aa20f848a07911b545e0ed7faa889338"
	driftTraceSHA256    = "a865ce0587f43423f9ce1928d0677dd6fc80793983b8254302ba83680b9fdc64"
	driftCalibSHA256    = "6812c24d0a9fd75c9c4a4c207c37ae15c43a0bde8fbb6de3bcd2382ca61a09cd"
)

func sha256hex(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// TestV2DriftStreamHashes pins the drift scenario's instrumented
// streams: report bytes must be unperturbed by instrumentation, and the
// decision trace and calibration stream must match their recorded
// hashes.
func TestV2DriftStreamHashes(t *testing.T) {
	sc, err := Load("../../examples/sim/scenario-drift.json")
	if err != nil {
		t.Fatal(err)
	}
	rep, events, calibEvents, err := RunInstrumented(sc, trace.Decisions, true)
	if err != nil {
		t.Fatal(err)
	}
	compareGolden(t, reportBytes(t, rep), "report-v2-drift.json")

	var buf bytes.Buffer
	if err := trace.WriteJSONL(&buf, events); err != nil {
		t.Fatal(err)
	}
	if got := sha256hex(buf.Bytes()); got != driftTraceSHA256 {
		t.Errorf("drift decision trace hash %s, want %s", got, driftTraceSHA256)
	}
	buf.Reset()
	if err := trace.WriteJSONL(&buf, calibEvents); err != nil {
		t.Fatal(err)
	}
	if got := sha256hex(buf.Bytes()); got != driftCalibSHA256 {
		t.Errorf("drift calibration stream hash %s, want %s", got, driftCalibSHA256)
	}
}

// TestV2ClusterReportHash pins the million-event cluster scenario's
// report. ~8 s of single-core virtual cluster; skipped under -short.
func TestV2ClusterReportHash(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster scenario is ~8s; skipped under -short")
	}
	rep := runShipped(t, "scenario-cluster.json")
	if got := sha256hex(reportBytes(t, rep)); got != clusterReportSHA256 {
		t.Errorf("cluster report hash %s, want %s", got, clusterReportSHA256)
	}
}
