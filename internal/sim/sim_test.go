package sim

import (
	"bytes"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"repro/internal/serve"
)

// testScenario is a small fast scenario shared by the determinism and
// arrival-process tests.
func testScenario() Scenario {
	return Scenario{
		Name:     "test",
		Seed:     11,
		Horizon:  20,
		Machines: FleetOf(2),
		Router:   RouterLeastRisk,
		DB:       "uniform-1G",
		Tenants: []TenantSpec{{
			Name:     "alpha",
			Bench:    "seljoin",
			Queries:  8,
			Deadline: 1.2,
			SLO:      serve.SLO{Confidence: 0.9, DefaultDeadline: 1.2, Quantile: 0.9},
			Arrivals: ArrivalSpec{Process: ProcessPoisson, Rate: 4},
		}},
	}
}

// shippedScenario loads the scenario the README and `make sim-smoke`
// use, so the acceptance tests pin exactly what ships.
func shippedScenario(t *testing.T) Scenario {
	t.Helper()
	sc, err := Load("../../examples/sim/scenario.json")
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

// TestSimDeterministic is the core contract: same scenario + seed =>
// deep-equal Report and byte-identical JSON, across repeated runs and
// across GOMAXPROCS settings (the prediction stack may parallelize
// internally; results must not depend on it).
func TestSimDeterministic(t *testing.T) {
	sc := testScenario()
	r1, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("reports differ across runs:\n%+v\nvs\n%+v", r1, r2)
	}

	prev := runtime.GOMAXPROCS(1)
	r3, err := Run(sc)
	runtime.GOMAXPROCS(prev)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r3) {
		t.Fatalf("report depends on GOMAXPROCS:\n%+v\nvs\n%+v", r1, r3)
	}

	j1, err := r1.JSON()
	if err != nil {
		t.Fatal(err)
	}
	j3, err := r3.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1, j3) {
		t.Fatal("JSON reports not byte-identical")
	}
	if r1.Arrivals == 0 || r1.Events <= r1.Arrivals {
		t.Fatalf("implausible event counts: %d events, %d arrivals", r1.Events, r1.Arrivals)
	}
}

// TestBurstyRejectsMoreThanPoisson pins that admission actually reacts
// to burstiness: at equal mean arrival rate, the bursty process — the
// same offered load compressed into on-phases — must draw strictly more
// rejections than Poisson arrivals.
func TestBurstyRejectsMoreThanPoisson(t *testing.T) {
	base := testScenario()
	base.Machines = FleetOf(1)
	base.Tenants[0].Arrivals = ArrivalSpec{Process: ProcessPoisson, Rate: 4}

	poisson, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	base.Tenants[0].Arrivals = ArrivalSpec{
		Process: ProcessBursty, Rate: 4, OnFraction: 0.2, Cycle: 5,
	}
	bursty, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}

	pRej, bRej := poisson.Tenants[0].Rejected, bursty.Tenants[0].Rejected
	pSub, bSub := poisson.Tenants[0].Submitted, bursty.Tenants[0].Submitted
	if pSub == 0 || bSub == 0 {
		t.Fatalf("empty simulation: poisson %d, bursty %d submissions", pSub, bSub)
	}
	// Compare rejection *fractions* so a random excess of bursty
	// arrivals cannot fake the effect.
	pFrac := float64(pRej) / float64(pSub)
	bFrac := float64(bRej) / float64(bSub)
	if bFrac <= pFrac {
		t.Fatalf("bursty rejection fraction %.4f (%d/%d) not above poisson %.4f (%d/%d)",
			bFrac, bRej, bSub, pFrac, pRej, pSub)
	}
}

// TestLeastRiskBeatsRoundRobin is the acceptance criterion: on the
// shipped bursty scenario, routing on the predicted distributions
// (least-risk) attains strictly more SLOs than blind round-robin.
func TestLeastRiskBeatsRoundRobin(t *testing.T) {
	sc := shippedScenario(t)

	sc.Router = RouterRoundRobin
	rr, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	sc.Router = RouterLeastRisk
	lr, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}

	if lr.Arrivals != rr.Arrivals {
		t.Fatalf("router changed the offered load: %d vs %d arrivals", lr.Arrivals, rr.Arrivals)
	}
	if lr.SLOAttainment <= rr.SLOAttainment {
		t.Fatalf("least-risk attainment %.4f not above round-robin %.4f",
			lr.SLOAttainment, rr.SLOAttainment)
	}
}

// TestAutoRecalibrationTriggers pins the cadence policy end to end: the
// shipped scenario sets recal_every, so the virtual clock must trigger
// drift-advised recalibrations during the run and surface the counts.
func TestAutoRecalibrationTriggers(t *testing.T) {
	sc := shippedScenario(t)
	if sc.RecalEvery <= 0 {
		t.Fatal("shipped scenario no longer exercises recal_every")
	}
	rep, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	var auto uint64
	for _, tr := range rep.Tenants {
		auto += tr.AutoRecalibrations
		if tr.AutoRecalibrations > tr.Recalibrations {
			t.Fatalf("tenant %s: auto count %d exceeds total %d",
				tr.Name, tr.AutoRecalibrations, tr.Recalibrations)
		}
	}
	if auto == 0 {
		t.Fatal("no automatic recalibrations triggered despite recal_every")
	}
}

// TestScenarioValidation rejects malformed scenarios with clear errors.
func TestScenarioValidation(t *testing.T) {
	cases := []func(*Scenario){
		func(sc *Scenario) { sc.Horizon = 0 },
		func(sc *Scenario) { sc.Router = "teleport" },
		func(sc *Scenario) { sc.DB = "nonesuch" },
		func(sc *Scenario) { sc.QueuePolicy = "lifo" },
		func(sc *Scenario) { sc.Tenants = nil },
		func(sc *Scenario) { sc.Tenants[0].Name = "" },
		func(sc *Scenario) { sc.Tenants = append(sc.Tenants, sc.Tenants[0]) },
		func(sc *Scenario) { sc.Tenants[0].Bench = "tpcds" },
		func(sc *Scenario) { sc.Tenants[0].Arrivals.Rate = -1 },
		func(sc *Scenario) { sc.Tenants[0].Arrivals.Process = "constant" },
		func(sc *Scenario) { sc.MachineProfile = "PC9" },
		func(sc *Scenario) { sc.Machines = FleetList(MachineSpec{Profile: "warp-core"}) },
		func(sc *Scenario) { sc.Machines = FleetList(MachineSpec{Drift: -1}) },
		func(sc *Scenario) { sc.Machines = FleetList(MachineSpec{Count: -2}) },
		func(sc *Scenario) { sc.Machines = FleetList() },
		func(sc *Scenario) { sc.Tenants[0].Arrivals.TraceFile = "t.json" },
	}
	for i, mutate := range cases {
		sc := testScenario()
		mutate(&sc)
		if _, err := sc.normalized(); err == nil {
			t.Errorf("case %d: invalid scenario accepted", i)
		}
	}
	if _, err := testScenario().normalized(); err != nil {
		t.Errorf("valid scenario rejected: %v", err)
	}

	// Unknown profile names surface the registered vocabulary instead of
	// silently defaulting.
	sc := testScenario()
	sc.MachineProfile = "PC9"
	if _, err := sc.normalized(); err == nil || !strings.Contains(err.Error(), "registered: PC1, PC2") {
		t.Errorf("unknown machine_profile error does not list registered profiles: %v", err)
	}
}
