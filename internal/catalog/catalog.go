// Package catalog maintains the statistics the "query optimizer" side of
// the system uses: row and page counts, per-column min/max/distinct
// counts, and equi-depth histograms. It supplies the optimizer's
// cardinality estimates, which the predictor falls back to for operators
// the sampling estimator cannot handle (aggregates — Algorithm 1 lines
// 3-5) and which the plan builder uses to order joins.
package catalog

import (
	"fmt"
	"sort"

	"repro/internal/engine"
)

// HistogramBuckets is the number of equi-depth buckets per column.
const HistogramBuckets = 64

// ColumnStats summarizes one column.
type ColumnStats struct {
	Min, Max int64
	Distinct int
	// Bounds are the equi-depth bucket upper bounds (ascending,
	// HistogramBuckets entries; each bucket holds ~1/B of the rows).
	Bounds []int64
	rows   int
}

// TableStats summarizes one table.
type TableStats struct {
	Rows    int
	Pages   float64
	Columns map[string]*ColumnStats
}

// Catalog holds statistics for every table in a database.
type Catalog struct {
	Tables map[string]*TableStats
}

// Build scans the database once and computes all statistics.
func Build(db *engine.DB) *Catalog {
	c := &Catalog{Tables: make(map[string]*TableStats, len(db.Tables))}
	for name, t := range db.Tables {
		ts := &TableStats{
			Rows:    t.NumRows(),
			Pages:   t.Pages(),
			Columns: make(map[string]*ColumnStats, len(t.Cols)),
		}
		for ci, col := range t.Cols {
			vals := make([]int64, len(t.Rows))
			for ri, row := range t.Rows {
				vals[ri] = row[ci]
			}
			ts.Columns[col] = buildColumn(vals)
		}
		c.Tables[name] = ts
	}
	return c
}

func buildColumn(vals []int64) *ColumnStats {
	cs := &ColumnStats{rows: len(vals)}
	if len(vals) == 0 {
		return cs
	}
	sorted := make([]int64, len(vals))
	copy(sorted, vals)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	cs.Min, cs.Max = sorted[0], sorted[len(sorted)-1]
	distinct := 1
	for i := 1; i < len(sorted); i++ {
		if sorted[i] != sorted[i-1] {
			distinct++
		}
	}
	cs.Distinct = distinct
	b := HistogramBuckets
	if b > len(sorted) {
		b = len(sorted)
	}
	cs.Bounds = make([]int64, b)
	for i := 0; i < b; i++ {
		// Upper bound of bucket i covers rows up to rank (i+1)/b.
		idx := (i+1)*len(sorted)/b - 1
		cs.Bounds[i] = sorted[idx]
	}
	return cs
}

// Table returns stats for the named table or an error.
func (c *Catalog) Table(name string) (*TableStats, error) {
	ts, ok := c.Tables[name]
	if !ok {
		return nil, fmt.Errorf("catalog: no statistics for table %q", name)
	}
	return ts, nil
}

// Column returns stats for table.col or an error.
func (c *Catalog) Column(table, col string) (*ColumnStats, error) {
	ts, err := c.Table(table)
	if err != nil {
		return nil, err
	}
	cs, ok := ts.Columns[col]
	if !ok {
		return nil, fmt.Errorf("catalog: no statistics for column %s.%s", table, col)
	}
	return cs, nil
}

// FindColumn locates the table that owns col (column names are globally
// unique in the TPC-H-style schema).
func (c *Catalog) FindColumn(col string) (table string, cs *ColumnStats, err error) {
	for tname, ts := range c.Tables {
		if s, ok := ts.Columns[col]; ok {
			return tname, s, nil
		}
	}
	return "", nil, fmt.Errorf("catalog: column %q not found in any table", col)
}

// fracLE estimates the fraction of rows with value <= v from the
// equi-depth histogram, interpolating linearly inside a bucket.
func (cs *ColumnStats) fracLE(v int64) float64 {
	if cs.rows == 0 || len(cs.Bounds) == 0 {
		return 0
	}
	if v < cs.Min {
		return 0
	}
	if v >= cs.Max {
		return 1
	}
	b := len(cs.Bounds)
	// First bucket whose upper bound is >= v.
	i := sort.Search(b, func(i int) bool { return cs.Bounds[i] >= v })
	if i >= b {
		return 1
	}
	lo := cs.Min
	if i > 0 {
		lo = cs.Bounds[i-1]
	}
	hi := cs.Bounds[i]
	frac := float64(i) / float64(b)
	width := float64(hi - lo)
	if width > 0 {
		frac += (float64(v-lo) / width) / float64(b)
	} else {
		frac += 1 / float64(b)
	}
	if frac > 1 {
		frac = 1
	}
	return frac
}

// Quantile returns an approximate value v such that a fraction q of the
// rows have value <= v, from the equi-depth histogram. Workload
// generators use it to construct predicates with target selectivities
// (the Picasso-style grids of Section 6.2).
func (cs *ColumnStats) Quantile(q float64) int64 {
	if len(cs.Bounds) == 0 {
		return cs.Min
	}
	if q <= 0 {
		return cs.Min
	}
	if q >= 1 {
		return cs.Max
	}
	i := int(q * float64(len(cs.Bounds)))
	if i >= len(cs.Bounds) {
		i = len(cs.Bounds) - 1
	}
	return cs.Bounds[i]
}

// PredicateSelectivity is the optimizer's histogram-based estimate of the
// fraction of rows satisfying p.
func (c *Catalog) PredicateSelectivity(table string, p *engine.Predicate) (float64, error) {
	cs, err := c.Column(table, p.Col)
	if err != nil {
		return 0, err
	}
	var sel float64
	switch p.Op {
	case engine.Lt:
		sel = cs.fracLE(p.Lo - 1)
	case engine.Le:
		sel = cs.fracLE(p.Lo)
	case engine.Eq:
		if cs.Distinct > 0 {
			sel = 1 / float64(cs.Distinct)
		}
	case engine.Ge:
		sel = 1 - cs.fracLE(p.Lo-1)
	case engine.Gt:
		sel = 1 - cs.fracLE(p.Lo)
	case engine.Between:
		sel = cs.fracLE(p.Hi) - cs.fracLE(p.Lo-1)
	default:
		return 0, fmt.Errorf("catalog: unknown predicate op %v", p.Op)
	}
	if sel < 0 {
		sel = 0
	}
	if sel > 1 {
		sel = 1
	}
	return sel, nil
}

// JoinSelectivityFactor is the classical System-R style estimate
// 1/max(distinct(l), distinct(r)) for an equijoin l = r.
func (c *Catalog) JoinSelectivityFactor(ltab, lcol, rtab, rcol string) (float64, error) {
	lcs, err := c.Column(ltab, lcol)
	if err != nil {
		return 0, err
	}
	rcs, err := c.Column(rtab, rcol)
	if err != nil {
		return 0, err
	}
	d := lcs.Distinct
	if rcs.Distinct > d {
		d = rcs.Distinct
	}
	if d <= 0 {
		return 0, nil
	}
	return 1 / float64(d), nil
}

// GroupCount estimates the number of groups when grouping rows of table
// by col, capped by the input cardinality.
func (c *Catalog) GroupCount(table, col string, inputRows float64) (float64, error) {
	if col == "" {
		return 1, nil
	}
	cs, err := c.Column(table, col)
	if err != nil {
		return 0, err
	}
	g := float64(cs.Distinct)
	if g > inputRows {
		g = inputRows
	}
	if g < 1 {
		g = 1
	}
	return g, nil
}
