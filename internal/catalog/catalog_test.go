package catalog

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/engine"
)

func uniformTable(name, col string, n, domain int, seed int64) *engine.Table {
	r := rand.New(rand.NewSource(seed))
	rows := make([][]int64, n)
	for i := range rows {
		rows[i] = []int64{int64(r.Intn(domain))}
	}
	return engine.NewTable(name, []string{col}, rows)
}

func TestBuildBasicStats(t *testing.T) {
	db := engine.NewDB()
	db.Add(uniformTable("t", "x", 1000, 100, 1))
	c := Build(db)
	ts, err := c.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	if ts.Rows != 1000 {
		t.Errorf("rows=%d", ts.Rows)
	}
	cs, err := c.Column("t", "x")
	if err != nil {
		t.Fatal(err)
	}
	if cs.Min < 0 || cs.Max > 99 || cs.Distinct < 80 {
		t.Errorf("stats: min=%d max=%d distinct=%d", cs.Min, cs.Max, cs.Distinct)
	}
}

func TestPredicateSelectivityUniform(t *testing.T) {
	db := engine.NewDB()
	db.Add(uniformTable("t", "x", 20000, 1000, 2))
	c := Build(db)
	cases := []struct {
		p    engine.Predicate
		want float64
	}{
		{engine.Predicate{Col: "x", Op: engine.Lt, Lo: 500}, 0.5},
		{engine.Predicate{Col: "x", Op: engine.Le, Lo: 249}, 0.25},
		{engine.Predicate{Col: "x", Op: engine.Ge, Lo: 900}, 0.1},
		{engine.Predicate{Col: "x", Op: engine.Between, Lo: 100, Hi: 299}, 0.2},
		{engine.Predicate{Col: "x", Op: engine.Eq, Lo: 7}, 0.001},
	}
	for _, cse := range cases {
		got, err := c.PredicateSelectivity("t", &cse.p)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-cse.want) > 0.05 {
			t.Errorf("%v: selectivity %v, want ~%v", cse.p, got, cse.want)
		}
	}
}

func TestPredicateSelectivityMatchesTruth(t *testing.T) {
	// Histogram estimate should be close to true selectivity even under
	// skew because buckets are equi-depth.
	r := rand.New(rand.NewSource(3))
	n := 30000
	rows := make([][]int64, n)
	for i := range rows {
		// Skewed: squared uniform concentrates near 0.
		v := r.Float64()
		rows[i] = []int64{int64(v * v * 1000)}
	}
	db := engine.NewDB()
	db.Add(engine.NewTable("t", []string{"x"}, rows))
	c := Build(db)
	for _, bound := range []int64{10, 50, 100, 400, 900} {
		p := engine.Predicate{Col: "x", Op: engine.Le, Lo: bound}
		est, err := c.PredicateSelectivity("t", &p)
		if err != nil {
			t.Fatal(err)
		}
		var truth float64
		for _, row := range rows {
			if row[0] <= bound {
				truth++
			}
		}
		truth /= float64(n)
		if math.Abs(est-truth) > 0.05 {
			t.Errorf("bound %d: est %v vs truth %v", bound, est, truth)
		}
	}
}

func TestSelectivityBoundsClamped(t *testing.T) {
	db := engine.NewDB()
	db.Add(uniformTable("t", "x", 100, 50, 4))
	c := Build(db)
	lo, _ := c.PredicateSelectivity("t", &engine.Predicate{Col: "x", Op: engine.Lt, Lo: -100})
	hi, _ := c.PredicateSelectivity("t", &engine.Predicate{Col: "x", Op: engine.Le, Lo: 10000})
	if lo != 0 || hi != 1 {
		t.Errorf("clamps: lo=%v hi=%v", lo, hi)
	}
}

func TestJoinSelectivityFactor(t *testing.T) {
	db := engine.NewDB()
	db.Add(uniformTable("a", "x", 5000, 100, 5))
	db.Add(uniformTable("b", "y", 5000, 200, 6))
	c := Build(db)
	f, err := c.JoinSelectivityFactor("a", "x", "b", "y")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f-1.0/200) > 1e-3 {
		t.Errorf("join factor %v, want ~1/200", f)
	}
}

func TestGroupCount(t *testing.T) {
	db := engine.NewDB()
	db.Add(uniformTable("t", "x", 10000, 42, 7))
	c := Build(db)
	g, err := c.GroupCount("t", "x", 10000)
	if err != nil {
		t.Fatal(err)
	}
	if g != 42 {
		t.Errorf("groups=%v, want 42", g)
	}
	capped, _ := c.GroupCount("t", "x", 5)
	if capped != 5 {
		t.Errorf("capped groups=%v, want 5", capped)
	}
	scalar, _ := c.GroupCount("t", "", 10000)
	if scalar != 1 {
		t.Errorf("scalar groups=%v, want 1", scalar)
	}
}

func TestFindColumn(t *testing.T) {
	db := engine.NewDB()
	db.Add(uniformTable("a", "x", 100, 10, 8))
	db.Add(uniformTable("b", "y", 100, 10, 9))
	c := Build(db)
	tab, _, err := c.FindColumn("y")
	if err != nil || tab != "b" {
		t.Errorf("FindColumn(y) = %q, %v", tab, err)
	}
	if _, _, err := c.FindColumn("nope"); err == nil {
		t.Error("expected error for unknown column")
	}
}

func TestUnknownTableColumnErrors(t *testing.T) {
	c := Build(engine.NewDB())
	if _, err := c.Table("t"); err == nil {
		t.Error("expected table error")
	}
	if _, err := c.Column("t", "x"); err == nil {
		t.Error("expected column error")
	}
}

func TestSmallTableHistogram(t *testing.T) {
	db := engine.NewDB()
	db.Add(engine.NewTable("tiny", []string{"x"}, [][]int64{{5}, {7}, {9}}))
	c := Build(db)
	sel, err := c.PredicateSelectivity("tiny", &engine.Predicate{Col: "x", Op: engine.Le, Lo: 7})
	if err != nil {
		t.Fatal(err)
	}
	if sel < 0.3 || sel > 1 {
		t.Errorf("tiny-table selectivity %v", sel)
	}
}
