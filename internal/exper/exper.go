// Package exper is the experiment harness for Section 6: it wires the
// data generator, catalog, hardware simulator, calibration, sampling
// estimator, and predictor together, runs benchmark workloads under a
// (machine, database, sampling-ratio, variant) setting, and computes the
// paper's evaluation metrics — the correlation coefficients r_s and r_p
// between predicted standard deviations and actual prediction errors,
// the distribution-proximity metric D_n, per-operator selectivity
// accuracy, and the relative runtime overhead of sampling.
package exper

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"repro/internal/calibrate"
	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/engine"
	"repro/internal/hardware"
	"repro/internal/plan"
	"repro/internal/sample"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Setting is one experimental configuration.
type Setting struct {
	Bench      workload.Benchmark
	DB         datagen.DBKind
	Machine    string // "PC1" or "PC2"
	SR         float64
	Variant    core.Variant
	NumQueries int
	Seed       int64
}

// String implements fmt.Stringer.
func (s Setting) String() string {
	return fmt.Sprintf("%v/%v/%s/SR=%g/%v", s.Bench, s.DB, s.Machine, s.SR, s.Variant)
}

// OpObservation pairs one selective operator's estimated selectivity
// distribution with its ground truth (for Tables 6-9 and Figure 12).
type OpObservation struct {
	EstSel   float64
	EstSigma float64
	TrueSel  float64
}

// QueryOutcome records one query's prediction and measurement.
type QueryOutcome struct {
	Name       string
	Actual     float64 // measured running time (5-run average)
	PredMean   float64 // E[t_q]
	PredSigma  float64 // sqrt(Var[t_q])
	Err        float64 // |PredMean - Actual|
	SampleCost float64 // simulated cost of the sampling pass
	FullCost   float64 // simulated cost of the full run
	Ops        []OpObservation
}

// RunResult aggregates a setting's outcomes and metrics.
type RunResult struct {
	Setting  Setting
	Outcomes []QueryOutcome

	RS float64 // Spearman correlation: predicted sigma vs actual error
	RP float64 // Pearson correlation
	Dn float64 // distribution proximity (Section 6.3)

	// MeanOverhead is the average SampleCost / FullCost ratio
	// (Section 6.4).
	MeanOverhead float64
}

// Sigmas returns the predicted standard deviations in query order.
func (r *RunResult) Sigmas() []float64 {
	out := make([]float64, len(r.Outcomes))
	for i, o := range r.Outcomes {
		out[i] = o.PredSigma
	}
	return out
}

// Errors returns the actual prediction errors in query order.
func (r *RunResult) Errors() []float64 {
	out := make([]float64, len(r.Outcomes))
	for i, o := range r.Outcomes {
		out[i] = o.Err
	}
	return out
}

// NormalizedErrors returns e'_i = |t_i - mu_i| / sigma_i.
func (r *RunResult) NormalizedErrors() []float64 {
	actual := make([]float64, len(r.Outcomes))
	mean := make([]float64, len(r.Outcomes))
	sigma := make([]float64, len(r.Outcomes))
	for i, o := range r.Outcomes {
		actual[i], mean[i], sigma[i] = o.Actual, o.PredMean, o.PredSigma
	}
	return stats.NormalizedErrors(actual, mean, sigma)
}

// env is the memoized per-(database, machine) environment.
type env struct {
	db  *engine.DB
	cat *catalog.Catalog
	hw  *hardware.Profile
	cal *calibrate.Result
}

// Lab memoizes databases, catalogs, and calibrations across settings so
// grid experiments (Table 4 and friends) do not rebuild the world per
// cell. A Lab is safe for concurrent use.
type Lab struct {
	mu   sync.Mutex
	envs map[string]*env
	// resCache memoizes executed plans per (db, query) so repeated
	// settings over the same database skip re-execution.
	resCache map[string]*engine.OpResult
	// runCache memoizes whole settings so different report generators
	// (e.g. Table 4 and Table 5 over the same grid) share work.
	runCache map[Setting]*RunResult
}

// NewLab returns an empty lab.
func NewLab() *Lab {
	return &Lab{
		envs:     make(map[string]*env),
		resCache: make(map[string]*engine.OpResult),
		runCache: make(map[Setting]*RunResult),
	}
}

func (l *Lab) envFor(kind datagen.DBKind, machine string, seed int64) (*env, error) {
	key := fmt.Sprintf("%v/%s/%d", kind, machine, seed)
	l.mu.Lock()
	defer l.mu.Unlock()
	if e, ok := l.envs[key]; ok {
		return e, nil
	}
	hw, err := hardware.ProfileByName(machine)
	if err != nil {
		return nil, err
	}
	db := datagen.Generate(datagen.ConfigFor(kind, seed))
	cat := catalog.Build(db)
	cal, err := calibrate.Run(hw, calibrate.DefaultConfig(seed+1))
	if err != nil {
		return nil, err
	}
	e := &env{db: db, cat: cat, hw: hw, cal: cal}
	l.envs[key] = e
	return e, nil
}

func (l *Lab) runPlan(key string, db *engine.DB, p *engine.Node) (*engine.OpResult, error) {
	l.mu.Lock()
	if res, ok := l.resCache[key]; ok {
		l.mu.Unlock()
		return res, nil
	}
	l.mu.Unlock()
	res, err := engine.Run(db, p)
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	l.resCache[key] = res
	l.mu.Unlock()
	return res, nil
}

// Run executes one experimental setting, memoizing the result.
func (l *Lab) Run(s Setting) (*RunResult, error) {
	if s.NumQueries <= 0 {
		s.NumQueries = 24
	}
	l.mu.Lock()
	if r, ok := l.runCache[s]; ok {
		l.mu.Unlock()
		return r, nil
	}
	l.mu.Unlock()
	r, err := l.run(s)
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	l.runCache[s] = r
	l.mu.Unlock()
	return r, nil
}

func (l *Lab) run(s Setting) (*RunResult, error) {
	e, err := l.envFor(s.DB, s.Machine, s.Seed)
	if err != nil {
		return nil, err
	}
	sdb, err := sample.Build(e.db, s.SR, sample.DefaultCopies, s.Seed+2)
	if err != nil {
		return nil, err
	}
	queries, err := workload.Generate(s.Bench, e.cat, s.NumQueries, s.Seed+3)
	if err != nil {
		return nil, err
	}
	pred := core.New(e.cat, e.cal.Units, core.Config{Variant: s.Variant})
	measureRng := rand.New(rand.NewSource(s.Seed + 4))

	res := &RunResult{Setting: s}
	var overheads []float64
	for _, q := range queries {
		p, err := plan.Build(q, e.cat)
		if err != nil {
			return nil, fmt.Errorf("exper: %s: %w", q.Name, err)
		}
		est, err := sample.Estimate(p, sdb, e.cat)
		if err != nil {
			return nil, fmt.Errorf("exper: %s: %w", q.Name, err)
		}
		pr, err := pred.Predict(p, est)
		if err != nil {
			return nil, fmt.Errorf("exper: %s: %w", q.Name, err)
		}
		key := fmt.Sprintf("%v/%d/%s", s.DB, s.Seed, q.Name)
		runRes, err := l.runPlan(key, e.db, p)
		if err != nil {
			return nil, fmt.Errorf("exper: %s: %w", q.Name, err)
		}
		actual := e.hw.MeasurePlan(runRes, measureRng)

		out := QueryOutcome{
			Name:      q.Name,
			Actual:    actual,
			PredMean:  pr.Mean(),
			PredSigma: pr.Sigma(),
			Err:       math.Abs(pr.Mean() - actual),
		}
		// Overhead: simulated cost of the sampling pass vs the full run.
		out.SampleCost = e.hw.ExpectedCost(est.TotalSampleCounts())
		out.FullCost = e.hw.ExpectedCost(runRes.TotalCounts())
		if out.FullCost > 0 {
			overheads = append(overheads, out.SampleCost/out.FullCost)
		}
		// Per-operator selectivity observations (selective operators
		// estimated via sampling only).
		for _, opRes := range runRes.Results() {
			n := opRes.Node
			if !n.Kind.IsScan() && !n.Kind.IsJoin() {
				continue
			}
			oe, err := est.Get(n)
			if err != nil || oe.FromOptimizer {
				continue
			}
			out.Ops = append(out.Ops, OpObservation{
				EstSel:   oe.Rho,
				EstSigma: oe.Sigma(),
				TrueSel:  opRes.Selectivity,
			})
		}
		res.Outcomes = append(res.Outcomes, out)
	}

	res.RS = stats.Spearman(res.Sigmas(), res.Errors())
	res.RP = stats.Pearson(res.Sigmas(), res.Errors())
	res.Dn = stats.Dn(res.NormalizedErrors(), nil)
	res.MeanOverhead = stats.Mean(overheads)
	return res, nil
}

// SelectivityMetrics computes the Table 6-9 statistics over all
// per-operator observations of a run: correlations between estimated
// and actual selectivity errors (Table 6), between estimated and actual
// selectivities (Table 7), the mean relative error (Table 8), and the
// error correlations restricted to relative errors above the threshold
// (Table 9, threshold 0.2 in the paper).
type SelectivityMetrics struct {
	ErrRS, ErrRP   float64 // estimated sigma vs |actual error|
	SelRS, SelRP   float64 // estimated vs actual selectivity
	MeanRelErr     float64
	LargeRS        float64 // restricted to rel. error > threshold
	LargeRP        float64
	NumObs         int
	NumLargeErrObs int
}

// ComputeSelectivityMetrics aggregates all operator observations.
func ComputeSelectivityMetrics(r *RunResult, threshold float64) SelectivityMetrics {
	var estSigma, absErr, est, truth, relErrs []float64
	var largeSigma, largeErr []float64
	for _, o := range r.Outcomes {
		for _, op := range o.Ops {
			e := math.Abs(op.EstSel - op.TrueSel)
			estSigma = append(estSigma, op.EstSigma)
			absErr = append(absErr, e)
			est = append(est, op.EstSel)
			truth = append(truth, op.TrueSel)
			if op.TrueSel > 0 {
				rel := e / op.TrueSel
				relErrs = append(relErrs, rel)
				if rel > threshold {
					largeSigma = append(largeSigma, op.EstSigma)
					largeErr = append(largeErr, e)
				}
			}
		}
	}
	return SelectivityMetrics{
		ErrRS:          stats.Spearman(estSigma, absErr),
		ErrRP:          stats.Pearson(estSigma, absErr),
		SelRS:          stats.Spearman(est, truth),
		SelRP:          stats.Pearson(est, truth),
		MeanRelErr:     stats.Mean(relErrs),
		LargeRS:        stats.Spearman(largeSigma, largeErr),
		LargeRP:        stats.Pearson(largeSigma, largeErr),
		NumObs:         len(estSigma),
		NumLargeErrObs: len(largeSigma),
	}
}
