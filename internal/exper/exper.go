// Package exper is the experiment harness for Section 6: it wires the
// data generator, catalog, hardware simulator, calibration, sampling
// estimator, and predictor together, runs benchmark workloads under a
// (machine, database, sampling-ratio, variant) setting, and computes the
// paper's evaluation metrics — the correlation coefficients r_s and r_p
// between predicted standard deviations and actual prediction errors,
// the distribution-proximity metric D_n, per-operator selectivity
// accuracy, and the relative runtime overhead of sampling.
package exper

import (
	"context"
	"fmt"
	"math"
	"sync"

	uaqetp "repro"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/pool"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Setting is one experimental configuration.
type Setting struct {
	Bench      workload.Benchmark
	DB         datagen.DBKind
	Machine    string // registered profile name ("PC1", "PC2", ...)
	SR         float64
	Variant    core.Variant
	NumQueries int
	Seed       int64
	// Stages, when non-nil, swaps custom pipeline stages into the
	// setting's System — the seam for grids that ablate Config-level
	// stages (an instrumented executor, a clamped estimator) against the
	// defaults. A pointer so Setting stays comparable (the memoization
	// key); the same *Stages value across cells shares derived Systems
	// and measurements, distinct values never do.
	Stages *Stages
}

// String implements fmt.Stringer.
func (s Setting) String() string {
	base := fmt.Sprintf("%v/%v/%s/SR=%g/%v", s.Bench, s.DB, s.Machine, s.SR, s.Variant)
	if s.Stages != nil {
		return base + "/stages=" + s.Stages.name()
	}
	return base
}

// Stages bundles custom pipeline-stage constructors for a Setting.
// Each non-nil constructor is called with the setting's fully-sampled
// System (so a custom stage can wrap or delegate to the default stage
// it replaces) and its result installed via System.With.
type Stages struct {
	// Name labels the combination in Setting.String() and reports.
	Name      string
	Planner   func(*uaqetp.System) uaqetp.Planner
	Estimator func(*uaqetp.System) uaqetp.Estimator
	Predictor func(*uaqetp.System) uaqetp.Predictor
	Executor  func(*uaqetp.System) uaqetp.Executor
	// Config, when non-nil, edits the base Config before Open — the seam
	// for Config-level knobs stage constructors can't reach (e.g. the
	// measurement-stream version, Config.RNG). Unlike the constructors
	// above, a Config hook changes the base environment itself, so
	// settings carrying one get their own base System (own database
	// generation and calibration) and never share bases — or memoized
	// measurements — with the defaults or with other hooks.
	Config func(*uaqetp.Config)
}

// configStages returns st when it carries a Config hook — the part of a
// stage set that changes the base environment and therefore must key
// base memoization — and nil otherwise, preserving base sharing for
// constructor-only stage sets.
func (st *Stages) configStages() *Stages {
	if st != nil && st.Config != nil {
		return st
	}
	return nil
}

func (st *Stages) name() string {
	if st == nil {
		return ""
	}
	if st.Name != "" {
		return st.Name
	}
	return "custom"
}

// options builds the System.With option list for sys; nil receiver or
// all-nil constructors yield none.
func (st *Stages) options(sys *uaqetp.System) []uaqetp.SystemOption {
	if st == nil {
		return nil
	}
	var opts []uaqetp.SystemOption
	if st.Planner != nil {
		opts = append(opts, uaqetp.WithPlanner(st.Planner(sys)))
	}
	if st.Estimator != nil {
		opts = append(opts, uaqetp.WithEstimator(st.Estimator(sys)))
	}
	if st.Predictor != nil {
		opts = append(opts, uaqetp.WithPredictor(st.Predictor(sys)))
	}
	if st.Executor != nil {
		opts = append(opts, uaqetp.WithExecutor(st.Executor(sys)))
	}
	return opts
}

// OpObservation pairs one selective operator's estimated selectivity
// distribution with its ground truth (for Tables 6-9 and Figure 12).
type OpObservation struct {
	EstSel   float64
	EstSigma float64
	TrueSel  float64
}

// QueryOutcome records one query's prediction and measurement.
type QueryOutcome struct {
	Name       string
	Actual     float64 // measured running time (5-run average)
	PredMean   float64 // E[t_q]
	PredSigma  float64 // sqrt(Var[t_q])
	Err        float64 // |PredMean - Actual|
	SampleCost float64 // simulated cost of the sampling pass
	FullCost   float64 // simulated cost of the full run
	Ops        []OpObservation
}

// RunResult aggregates a setting's outcomes and metrics.
type RunResult struct {
	Setting  Setting
	Outcomes []QueryOutcome

	RS float64 // Spearman correlation: predicted sigma vs actual error
	RP float64 // Pearson correlation
	Dn float64 // distribution proximity (Section 6.3)

	// MeanOverhead is the average SampleCost / FullCost ratio
	// (Section 6.4).
	MeanOverhead float64
}

// Sigmas returns the predicted standard deviations in query order.
func (r *RunResult) Sigmas() []float64 {
	out := make([]float64, len(r.Outcomes))
	for i, o := range r.Outcomes {
		out[i] = o.PredSigma
	}
	return out
}

// Errors returns the actual prediction errors in query order.
func (r *RunResult) Errors() []float64 {
	out := make([]float64, len(r.Outcomes))
	for i, o := range r.Outcomes {
		out[i] = o.Err
	}
	return out
}

// NormalizedErrors returns e'_i = |t_i - mu_i| / sigma_i.
func (r *RunResult) NormalizedErrors() []float64 {
	actual := make([]float64, len(r.Outcomes))
	mean := make([]float64, len(r.Outcomes))
	sigma := make([]float64, len(r.Outcomes))
	for i, o := range r.Outcomes {
		actual[i], mean[i], sigma[i] = o.Actual, o.PredMean, o.PredSigma
	}
	return stats.NormalizedErrors(actual, mean, sigma)
}

// baseKey identifies one expensive environment: a generated database
// plus a calibrated machine. Sampling ratios and predictor variants are
// cheap derivations of a base System (WithSamplingRatio, WithVariant).
type baseKey struct {
	DB      datagen.DBKind
	Machine string
	Seed    int64
	// Stages is non-nil (pointer identity) only for stage sets carrying
	// a Config hook, which alters the base environment; constructor-only
	// sets keep it nil and share the default base.
	Stages *Stages
}

// sysKey identifies one fully-sampled System, including any custom
// stage combination (pointer identity): custom stages change what
// Measure and Predict observe, so measurements memoized under one
// stage set must never leak into another.
type sysKey struct {
	baseKey
	SR     float64
	Stages *Stages
}

// measKey identifies one variant-independent query measurement. The
// workload size is part of the key because generated query content
// depends on it (e.g. Micro predicates scale with n), so a same-named
// query from a different-sized workload must not reuse the measurement.
type measKey struct {
	sysKey
	Bench workload.Benchmark
	N     int
	Name  string
}

// onceSys, onceMeas, and onceRun coalesce concurrent grid cells onto a
// single computation per key, so RunGrid never duplicates work.
type onceSys struct {
	once sync.Once
	sys  *uaqetp.System
	err  error
}

type onceMeas struct {
	once sync.Once
	m    *uaqetp.Measurement
	err  error
}

type onceRun struct {
	once sync.Once
	res  *RunResult
	err  error
}

// Lab runs experiment grids on top of the public System API. It
// memoizes the expensive layers across settings — base environments per
// (database, machine, seed), sampled Systems per sampling ratio, and
// variant-independent measurements per query — and shares one estimate
// cache across every System it opens, so ablation cells over the same
// database reuse each other's sampling passes exactly like co-located
// tenants in the serving layer. A Lab is safe for concurrent use;
// results are deterministic per Setting regardless of cell
// interleaving, because every source of randomness derives from the
// setting's own seed (per-cell seeds, per-query measurement streams)
// rather than shared RNG state.
type Lab struct {
	cache uaqetp.EstimateCache

	mu      sync.Mutex
	bases   map[baseKey]*onceSys
	systems map[sysKey]*onceSys
	meas    map[measKey]*onceMeas
	// runCache memoizes whole settings so different report generators
	// (e.g. Table 4 and Table 5 over the same grid) share work.
	runCache map[Setting]*onceRun
}

// labCacheCapacity bounds the Lab's shared estimate cache: grids touch
// many (database, SR) namespaces, each with tens of distinct plans.
const labCacheCapacity = 4096

// NewLab returns an empty lab.
func NewLab() *Lab {
	return &Lab{
		cache:    uaqetp.NewEstimateCache(labCacheCapacity),
		bases:    make(map[baseKey]*onceSys),
		systems:  make(map[sysKey]*onceSys),
		meas:     make(map[measKey]*onceMeas),
		runCache: make(map[Setting]*onceRun),
	}
}

// baseFor opens (once) the base System for an environment. The first
// requester's sampling ratio seeds the base; other ratios derive from
// it without regenerating the database or recalibrating.
func (l *Lab) baseFor(k baseKey, sr float64) (*uaqetp.System, error) {
	l.mu.Lock()
	e, ok := l.bases[k]
	if !ok {
		e = &onceSys{}
		l.bases[k] = e
	}
	l.mu.Unlock()
	e.once.Do(func() {
		cfg := uaqetp.Config{
			DB: k.DB, Machine: k.Machine, SamplingRatio: sr,
			Variant: core.All, Seed: k.Seed, Cache: l.cache,
		}
		if k.Stages != nil && k.Stages.Config != nil {
			k.Stages.Config(&cfg)
		}
		e.sys, e.err = uaqetp.Open(cfg)
	})
	return e.sys, e.err
}

// systemFor returns the (memoized) System for a setting's environment
// and sampling ratio, with the complete predictor; variants are derived
// by the caller via WithVariant.
func (l *Lab) systemFor(s Setting) (*uaqetp.System, error) {
	k := sysKey{baseKey{s.DB, s.Machine, s.Seed, s.Stages.configStages()}, s.SR, s.Stages}
	l.mu.Lock()
	e, ok := l.systems[k]
	if !ok {
		e = &onceSys{}
		l.systems[k] = e
	}
	l.mu.Unlock()
	e.once.Do(func() {
		base, err := l.baseFor(k.baseKey, s.SR)
		if err != nil {
			e.err = err
			return
		}
		sys, err := base.WithSamplingRatio(s.SR)
		if err != nil {
			e.err = err
			return
		}
		if opts := s.Stages.options(sys); len(opts) > 0 {
			sys = sys.With(opts...)
		}
		e.sys = sys
	})
	return e.sys, e.err
}

// measureFor measures one query (once) through the instrumented execute
// path. Measurements are variant-independent, so every ablation cell
// over the same environment shares them.
func (l *Lab) measureFor(sys *uaqetp.System, k measKey, q *uaqetp.Query) (*uaqetp.Measurement, error) {
	l.mu.Lock()
	e, ok := l.meas[k]
	if !ok {
		e = &onceMeas{}
		l.meas[k] = e
	}
	l.mu.Unlock()
	e.once.Do(func() {
		e.m, e.err = sys.Measure(q)
	})
	return e.m, e.err
}

// fanOut runs do(0..n-1) on a bounded worker pool and returns the
// lowest-index error.
func fanOut(n, workers int, do func(i int) error) error {
	return pool.FirstError(pool.Run(n, workers, do))
}

// Run executes one experimental setting, memoizing the result.
// Concurrent calls with the same setting share one execution.
func (l *Lab) Run(s Setting) (*RunResult, error) {
	if s.NumQueries <= 0 {
		s.NumQueries = 24
	}
	l.mu.Lock()
	e, ok := l.runCache[s]
	if !ok {
		e = &onceRun{}
		l.runCache[s] = e
	}
	l.mu.Unlock()
	e.once.Do(func() {
		e.res, e.err = l.run(s)
	})
	return e.res, e.err
}

// RunGrid executes every setting, fanning the cells out over a bounded
// worker pool (workers <= 0 selects GOMAXPROCS). Results arrive in
// input order and match a serial Run loop: each cell's randomness
// derives from its own setting, never from shared state, so the
// interleaving cannot change the numbers.
func (l *Lab) RunGrid(settings []Setting, workers int) ([]*RunResult, error) {
	out := make([]*RunResult, len(settings))
	err := fanOut(len(settings), workers, func(i int) error {
		r, err := l.Run(settings[i])
		out[i] = r
		return err
	})
	return out, err
}

func (l *Lab) run(s Setting) (*RunResult, error) {
	sys, err := l.systemFor(s)
	if err != nil {
		return nil, err
	}
	vsys := sys.WithVariant(s.Variant)
	queries, err := sys.GenerateWorkload(s.Bench, s.NumQueries)
	if err != nil {
		return nil, err
	}

	// Predictions ride the batched concurrent pipeline; measurements fan
	// out below it, memoized across variants.
	preds, err := vsys.PredictBatchContext(context.Background(), queries)
	if err != nil {
		return nil, fmt.Errorf("exper: %w", err)
	}
	sk := sysKey{baseKey{s.DB, s.Machine, s.Seed, s.Stages.configStages()}, s.SR, s.Stages}
	ms := make([]*uaqetp.Measurement, len(queries))
	err = fanOut(len(queries), 0, func(i int) error {
		m, err := l.measureFor(sys, measKey{sk, s.Bench, s.NumQueries, queries[i].Name}, queries[i])
		if err != nil {
			return fmt.Errorf("exper: %s: %w", queries[i].Name, err)
		}
		ms[i] = m
		return nil
	})
	if err != nil {
		return nil, err
	}

	res := &RunResult{Setting: s}
	var overheads []float64
	for i, q := range queries {
		pr, m := preds[i], ms[i]
		out := QueryOutcome{
			Name:       q.Name,
			Actual:     m.Actual,
			PredMean:   pr.Mean(),
			PredSigma:  pr.Sigma(),
			Err:        math.Abs(pr.Mean() - m.Actual),
			SampleCost: m.SampleCost,
			FullCost:   m.FullCost,
		}
		if out.FullCost > 0 {
			overheads = append(overheads, out.SampleCost/out.FullCost)
		}
		for _, od := range m.Ops {
			out.Ops = append(out.Ops, OpObservation{
				EstSel:   od.EstSel,
				EstSigma: od.EstSigma,
				TrueSel:  od.TrueSel,
			})
		}
		res.Outcomes = append(res.Outcomes, out)
	}

	res.RS = stats.Spearman(res.Sigmas(), res.Errors())
	res.RP = stats.Pearson(res.Sigmas(), res.Errors())
	res.Dn = stats.Dn(res.NormalizedErrors(), nil)
	res.MeanOverhead = stats.Mean(overheads)
	return res, nil
}

// CacheStats snapshots the lab's shared estimate cache — the same
// cross-tenant sharing observability the serving layer exposes.
func (l *Lab) CacheStats() uaqetp.CacheStats { return l.cache.Stats() }

// SelectivityMetrics computes the Table 6-9 statistics over all
// per-operator observations of a run: correlations between estimated
// and actual selectivity errors (Table 6), between estimated and actual
// selectivities (Table 7), the mean relative error (Table 8), and the
// error correlations restricted to relative errors above the threshold
// (Table 9, threshold 0.2 in the paper).
type SelectivityMetrics struct {
	ErrRS, ErrRP   float64 // estimated sigma vs |actual error|
	SelRS, SelRP   float64 // estimated vs actual selectivity
	MeanRelErr     float64
	LargeRS        float64 // restricted to rel. error > threshold
	LargeRP        float64
	NumObs         int
	NumLargeErrObs int
}

// ComputeSelectivityMetrics aggregates all operator observations.
func ComputeSelectivityMetrics(r *RunResult, threshold float64) SelectivityMetrics {
	var estSigma, absErr, est, truth, relErrs []float64
	var largeSigma, largeErr []float64
	for _, o := range r.Outcomes {
		for _, op := range o.Ops {
			e := math.Abs(op.EstSel - op.TrueSel)
			estSigma = append(estSigma, op.EstSigma)
			absErr = append(absErr, e)
			est = append(est, op.EstSel)
			truth = append(truth, op.TrueSel)
			if op.TrueSel > 0 {
				rel := e / op.TrueSel
				relErrs = append(relErrs, rel)
				if rel > threshold {
					largeSigma = append(largeSigma, op.EstSigma)
					largeErr = append(largeErr, e)
				}
			}
		}
	}
	return SelectivityMetrics{
		ErrRS:          stats.Spearman(estSigma, absErr),
		ErrRP:          stats.Pearson(estSigma, absErr),
		SelRS:          stats.Spearman(est, truth),
		SelRP:          stats.Pearson(est, truth),
		MeanRelErr:     stats.Mean(relErrs),
		LargeRS:        stats.Spearman(largeSigma, largeErr),
		LargeRP:        stats.Pearson(largeSigma, largeErr),
		NumObs:         len(estSigma),
		NumLargeErrObs: len(largeSigma),
	}
}
