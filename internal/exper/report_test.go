package exper

import (
	"bytes"
	"strings"
	"testing"
)

// tinySizing keeps report tests fast.
func tinySizing() Sizing { return Sizing{QueriesPerCell: 8, Seed: 1} }

func TestReportByID(t *testing.T) {
	for _, r := range Reports {
		got, err := ReportByID(r.ID)
		if err != nil || got.ID != r.ID {
			t.Errorf("ReportByID(%s) = %v, %v", r.ID, got.ID, err)
		}
	}
	if _, err := ReportByID("nope"); err == nil {
		t.Error("expected error for unknown report")
	}
}

func TestTable1Renders(t *testing.T) {
	var buf bytes.Buffer
	if err := Table1CostUnits(&buf, NewLab(), tinySizing()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"PC1", "PC2", "cs", "cr", "ct", "ci", "co"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 output missing %q:\n%s", want, out)
		}
	}
}

func TestFigure3Renders(t *testing.T) {
	var buf bytes.Buffer
	if err := Figure3OutlierRobustness(&buf, NewLab(), tinySizing()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Case (1)", "Case (2)", "best-fit", "after removing"} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure 3 output missing %q", want)
		}
	}
}

func TestFigure5Renders(t *testing.T) {
	// Uses the 10GB database, so keep the cell tiny.
	z := Sizing{QueriesPerCell: 6, Seed: 1}
	var buf bytes.Buffer
	if err := Figure5PrAlpha(&buf, NewLab(), z); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"MICRO", "SELJOIN", "TPCH", "alpha", "Pr_n"} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure 5 output missing %q", want)
		}
	}
}

func TestFigure9Renders(t *testing.T) {
	z := Sizing{QueriesPerCell: 4, Seed: 1}
	var buf bytes.Buffer
	if err := Figure9Overhead(&buf, NewLab(), z); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"uniform-1G", "skewed-10G", "0.01"} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure 9 output missing %q", want)
		}
	}
}

func TestGridTablesShareRunsViaMemoization(t *testing.T) {
	lab := NewLab()
	z := Sizing{QueriesPerCell: 3, Seed: 1}
	var t4, t5 bytes.Buffer
	if err := Table4CorrelationGrid(&t4, lab, z); err != nil {
		t.Fatal(err)
	}
	runsAfterT4 := len(lab.runCache)
	if err := Table5DnGrid(&t5, lab, z); err != nil {
		t.Fatal(err)
	}
	if len(lab.runCache) != runsAfterT4 {
		t.Errorf("Table 5 triggered %d extra runs", len(lab.runCache)-runsAfterT4)
	}
	if !strings.Contains(t4.String(), "(") || !strings.Contains(t5.String(), "0.") {
		t.Error("grid tables look empty")
	}
}
