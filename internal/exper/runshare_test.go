package exper

import (
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/workload"
)

// TestLabSharesRunsAcrossMachines closes the ROADMAP PR 2 next-step:
// engine runs are machine-independent, so a grid over PC1 and PC2 must
// execute each query's plan once and share the result through the lab's
// cache — while producing exactly the numbers independent labs produce.
func TestLabSharesRunsAcrossMachines(t *testing.T) {
	setting := func(machine string) Setting {
		return Setting{
			Bench: workload.SelJoin, DB: datagen.Uniform1G, Machine: machine,
			SR: 0.05, Variant: core.All, NumQueries: 6, Seed: 1,
		}
	}

	lab := NewLab()
	grid, err := lab.RunGrid([]Setting{setting("PC1"), setting("PC2")}, 0)
	if err != nil {
		t.Fatal(err)
	}
	cs := lab.CacheStats()
	if cs.RunHits == 0 {
		t.Fatalf("grid over two machines shared no run results: %+v", cs)
	}
	if cs.RunMisses > uint64(len(grid[0].Outcomes)) {
		t.Errorf("more run misses (%d) than distinct queries (%d): cross-machine sharing broken",
			cs.RunMisses, len(grid[0].Outcomes))
	}

	// Sharing must be invisible in the measured numbers: a fresh lab
	// running only the PC2 cell measures the exact same times (run
	// results are bit-identical whether computed or reused). Predictions
	// are compared within a tight tolerance instead: warmed subtree
	// passes have reordered float sums in the last bits since PR 3, with
	// or without run sharing.
	solo, err := NewLab().Run(setting("PC2"))
	if err != nil {
		t.Fatal(err)
	}
	if len(solo.Outcomes) != len(grid[1].Outcomes) {
		t.Fatalf("outcome counts differ: %d vs %d", len(solo.Outcomes), len(grid[1].Outcomes))
	}
	for i, o := range solo.Outcomes {
		g := grid[1].Outcomes[i]
		if o.Actual != g.Actual {
			t.Errorf("outcome %d measured time differs with sharing: %v vs %v", i, o.Actual, g.Actual)
		}
		if rel := (o.PredMean - g.PredMean) / o.PredMean; rel > 1e-9 || rel < -1e-9 {
			t.Errorf("outcome %d prediction drifted with sharing: %v vs %v", i, o.PredMean, g.PredMean)
		}
	}
}
