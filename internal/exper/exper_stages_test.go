package exper

import (
	"context"
	"math"
	"sync/atomic"
	"testing"

	uaqetp "repro"
	"repro/internal/core"
	"repro/internal/workload"
)

// countingEstimator delegates to the setting's default estimator,
// counting calls — the minimal custom stage: observable,
// behavior-preserving. (The estimator runs under both Predict and
// Measure, so it sees every query of a run.)
type countingEstimator struct {
	inner uaqetp.Estimator
	calls *atomic.Int64
}

func (c *countingEstimator) Estimate(ctx context.Context, p *uaqetp.Plan) (*uaqetp.Estimates, error) {
	c.calls.Add(1)
	return c.inner.Estimate(ctx, p)
}

// scalingPredictor doubles the default predictor's mean — a stage that
// visibly changes outcomes, for telling memoized systems apart.
type scalingPredictor struct {
	inner uaqetp.Predictor
}

func (s *scalingPredictor) Predict(ctx context.Context, p *uaqetp.Plan, est *uaqetp.Estimates) (*uaqetp.Prediction, error) {
	pr, err := s.inner.Predict(ctx, p, est)
	if err != nil {
		return nil, err
	}
	scaled := *pr
	scaled.Dist = scaled.Dist.Scale(2)
	return &scaled, nil
}

func TestSettingStagesInstallCustomEstimator(t *testing.T) {
	lab := NewLab()
	base := smallSetting(workload.Micro, core.All, 0.05)
	ref, err := lab.Run(base)
	if err != nil {
		t.Fatal(err)
	}

	var calls atomic.Int64
	counted := base
	counted.Stages = &Stages{
		Name: "counted",
		Estimator: func(sys *uaqetp.System) uaqetp.Estimator {
			return &countingEstimator{inner: sys.Estimator(), calls: &calls}
		},
	}
	if got := counted.String(); got != base.String()+"/stages=counted" {
		t.Errorf("Setting.String() = %q, want stages suffix", got)
	}

	res, err := lab.Run(counted)
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() == 0 {
		t.Fatal("custom estimator never called")
	}
	// Delegating stage: outcomes match the default system exactly.
	if len(res.Outcomes) != len(ref.Outcomes) {
		t.Fatalf("outcomes %d vs %d", len(res.Outcomes), len(ref.Outcomes))
	}
	for i, o := range res.Outcomes {
		if o.Actual != ref.Outcomes[i].Actual || o.PredMean != ref.Outcomes[i].PredMean {
			t.Errorf("%s: counted (%v, %v) != default (%v, %v)", o.Name,
				o.Actual, o.PredMean, ref.Outcomes[i].Actual, ref.Outcomes[i].PredMean)
		}
	}

	// The same Setting (same *Stages pointer) is memoized: a rerun
	// reuses the cell's results without another estimation pass.
	before := calls.Load()
	if _, err := lab.Run(counted); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != before {
		t.Errorf("rerun re-estimated: %d calls, was %d", calls.Load(), before)
	}
}

// TestSettingConfigHookMemoizationIsolation exercises the Config-level
// stage seam with the measurement-stream version: a Config hook flips
// the cell to the v2 stream, which must (a) actually change the
// measured times, (b) give the cell its own base System rather than
// mutating the shared default base, and (c) leave every default cell's
// memoized results untouched. Constructor-only stage sets, by
// contrast, must keep sharing the default base.
func TestSettingConfigHookMemoizationIsolation(t *testing.T) {
	lab := NewLab()
	base := smallSetting(workload.Micro, core.All, 0.05)
	ref, err := lab.Run(base)
	if err != nil {
		t.Fatal(err)
	}

	v2 := base
	v2.Stages = &Stages{
		Name:   "rng-v2",
		Config: func(cfg *uaqetp.Config) { cfg.RNG = uaqetp.RNGv2 },
	}
	res, err := lab.Run(v2)
	if err != nil {
		t.Fatal(err)
	}
	// Same workload, same query generation — but the measurement draws
	// come from a different stream, so at least some actuals move.
	changed := 0
	for i, o := range res.Outcomes {
		if o.Name != ref.Outcomes[i].Name {
			t.Fatalf("workload diverged: %s vs %s", o.Name, ref.Outcomes[i].Name)
		}
		if o.Actual != ref.Outcomes[i].Actual {
			changed++
		}
	}
	if changed == 0 {
		t.Error("v2 cell's measurements identical to v1 — Config hook never reached Open")
	}

	// The hooked cell got its own base; the default base is unperturbed.
	lab.mu.Lock()
	numBases := len(lab.bases)
	lab.mu.Unlock()
	if numBases != 2 {
		t.Errorf("lab holds %d bases, want 2 (default + Config-hooked)", numBases)
	}
	again, err := lab.Run(base)
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range again.Outcomes {
		if o.Actual != ref.Outcomes[i].Actual || o.PredMean != ref.Outcomes[i].PredMean {
			t.Errorf("%s: default cell perturbed by Config-hooked cell", o.Name)
		}
	}

	// A constructor-only stage set still shares the default base.
	counted := base
	counted.Stages = &Stages{
		Name: "counted",
		Estimator: func(sys *uaqetp.System) uaqetp.Estimator {
			return &countingEstimator{inner: sys.Estimator(), calls: new(atomic.Int64)}
		},
	}
	if _, err := lab.Run(counted); err != nil {
		t.Fatal(err)
	}
	lab.mu.Lock()
	numBases = len(lab.bases)
	lab.mu.Unlock()
	if numBases != 2 {
		t.Errorf("constructor-only stages opened a new base: %d bases, want 2", numBases)
	}
}

func TestSettingStagesSeparateMemoization(t *testing.T) {
	lab := NewLab()
	base := smallSetting(workload.Micro, core.All, 0.05)
	ref, err := lab.Run(base)
	if err != nil {
		t.Fatal(err)
	}

	doubled := base
	doubled.Stages = &Stages{
		Name: "x2",
		Predictor: func(sys *uaqetp.System) uaqetp.Predictor {
			return &scalingPredictor{inner: sys.Predictor()}
		},
	}
	res, err := lab.Run(doubled)
	if err != nil {
		t.Fatal(err)
	}
	// Distinct *Stages ⇒ distinct system: every predicted mean doubles
	// while the (predictor-independent) measurements stay put.
	for i, o := range res.Outcomes {
		if math.Abs(o.PredMean-2*ref.Outcomes[i].PredMean) > 1e-12*o.PredMean {
			t.Errorf("%s: mean %v, want 2x default %v", o.Name, o.PredMean, ref.Outcomes[i].PredMean)
		}
		if o.Actual != ref.Outcomes[i].Actual {
			t.Errorf("%s: actual %v != default %v", o.Name, o.Actual, ref.Outcomes[i].Actual)
		}
	}
	// ...and the default cell's memoized results are untouched.
	again, err := lab.Run(base)
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range again.Outcomes {
		if o.PredMean != ref.Outcomes[i].PredMean {
			t.Errorf("%s: default cell perturbed: %v vs %v", o.Name, o.PredMean, ref.Outcomes[i].PredMean)
		}
	}
}
