package exper

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Sizing controls how large the regenerated experiments are. The paper's
// grids are preserved; only the per-cell query counts scale.
type Sizing struct {
	// QueriesPerCell is the number of workload queries per setting.
	QueriesPerCell int
	Seed           int64
}

// DefaultSizing balances fidelity against bench runtime.
func DefaultSizing() Sizing { return Sizing{QueriesPerCell: 24, Seed: 1} }

// The paper's standard sampling-ratio grid.
var standardSRs = []float64{0.01, 0.05, 0.1}

// Low sampling ratios for the ablation study (Section 6.3.3 uses ratios
// below 1% to surface the Var[X] and Cov effects).
var lowSRs = []float64{0.0005, 0.001, 0.005, 0.01}

var allDBs = []datagen.DBKind{
	datagen.Uniform1G, datagen.Skewed1G, datagen.Uniform10G, datagen.Skewed10G,
}

var machines = []string{"PC1", "PC2"}

func (z Sizing) setting(b workload.Benchmark, db datagen.DBKind, machine string, sr float64, v core.Variant) Setting {
	return Setting{
		Bench: b, DB: db, Machine: machine, SR: sr, Variant: v,
		NumQueries: z.QueriesPerCell, Seed: z.Seed,
	}
}

// Table1CostUnits prints the calibrated cost units (mean and standard
// deviation) per machine — the content of Table 1 realized on the
// simulated hardware.
func Table1CostUnits(w io.Writer, lab *Lab, z Sizing) error {
	fmt.Fprintln(w, "Table 1: calibrated cost units (seconds per operation)")
	fmt.Fprintf(w, "%-8s %-6s %-14s %-14s\n", "machine", "unit", "mean", "stddev")
	for _, m := range machines {
		sys, err := lab.systemFor(z.setting(workload.Micro, datagen.Uniform1G, m, standardSRs[1], core.All))
		if err != nil {
			return err
		}
		units := sys.UnitDists()
		for i, u := range []string{"cs", "cr", "ct", "ci", "co"} {
			d := units[i]
			fmt.Fprintf(w, "%-8s %-6s %-14.4g %-14.4g\n", m, u, d.Mu, d.Sigma)
		}
	}
	return nil
}

// figure2Panels are the three panels of Figure 2.
var figure2Panels = []struct {
	label   string
	bench   workload.Benchmark
	db      datagen.DBKind
	machine string
}{
	{"(a) MICRO, Uniform 1GB, PC2", workload.Micro, datagen.Uniform1G, "PC2"},
	{"(b) SELJOIN, Uniform 1GB, PC1", workload.SelJoin, datagen.Uniform1G, "PC1"},
	{"(c) TPCH, Skewed 10GB, PC1", workload.TPCH, datagen.Skewed10G, "PC1"},
}

// Figure2Correlation regenerates Figure 2: r_s and r_p versus sampling
// ratio for the three panels.
func Figure2Correlation(w io.Writer, lab *Lab, z Sizing) error {
	fmt.Fprintln(w, "Figure 2: r_s and r_p of the benchmark queries")
	for _, p := range figure2Panels {
		fmt.Fprintln(w, p.label)
		fmt.Fprintf(w, "  %-6s %-8s %-8s\n", "SR", "r_s", "r_p")
		for _, sr := range standardSRs {
			res, err := lab.Run(z.setting(p.bench, p.db, p.machine, sr, core.All))
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "  %-6g %-8.4f %-8.4f\n", sr, res.RS, res.RP)
		}
	}
	return nil
}

// Figure3OutlierRobustness regenerates Figure 3: scatter data for the
// two cases plus the correlation coefficients before and after removing
// the largest-sigma point (the paper's outlier discussion).
func Figure3OutlierRobustness(w io.Writer, lab *Lab, z Sizing) error {
	fmt.Fprintln(w, "Figure 3: robustness of r_s and r_p with respect to outliers")
	cases := []struct {
		label   string
		bench   workload.Benchmark
		db      datagen.DBKind
		machine string
		sr      float64
	}{
		{"Case (1): MICRO, Uniform 1GB, PC2, SR=0.01", workload.Micro, datagen.Uniform1G, "PC2", 0.01},
		{"Case (2): SELJOIN, Uniform 1GB, PC1, SR=0.05", workload.SelJoin, datagen.Uniform1G, "PC1", 0.05},
	}
	for _, c := range cases {
		res, err := lab.Run(z.setting(c.bench, c.db, c.machine, c.sr, core.All))
		if err != nil {
			return err
		}
		sig, errs := res.Sigmas(), res.Errors()
		fmt.Fprintf(w, "%s: r_s=%.4f r_p=%.4f\n", c.label,
			stats.Spearman(sig, errs), stats.Pearson(sig, errs))
		slope, icpt := stats.BestFitLine(sig, errs)
		fmt.Fprintf(w, "  best-fit: err = %.4f*sigma + %.4g\n", slope, icpt)
		// Remove the point with the largest sigma and recompute.
		maxI := 0
		for i := range sig {
			if sig[i] > sig[maxI] {
				maxI = i
			}
		}
		s2 := append(append([]float64{}, sig[:maxI]...), sig[maxI+1:]...)
		e2 := append(append([]float64{}, errs[:maxI]...), errs[maxI+1:]...)
		fmt.Fprintf(w, "  after removing the rightmost point: r_s=%.4f r_p=%.4f\n",
			stats.Spearman(s2, e2), stats.Pearson(s2, e2))
		fmt.Fprintln(w, "  scatter (sigma, error):")
		for i := range sig {
			fmt.Fprintf(w, "    %.6g %.6g\n", sig[i], errs[i])
		}
	}
	return nil
}

// Figure4Dn regenerates Figure 4: D_n versus sampling ratio for the
// three benchmarks over uniform 10GB databases on both machines.
func Figure4Dn(w io.Writer, lab *Lab, z Sizing) error {
	fmt.Fprintln(w, "Figure 4: D_n of the benchmark queries over uniform TPC-H 10GB databases")
	for _, b := range workload.Benchmarks {
		fmt.Fprintf(w, "(%s)\n", b)
		fmt.Fprintf(w, "  %-6s %-8s %-8s\n", "SR", "PC1", "PC2")
		for _, sr := range standardSRs {
			var dn [2]float64
			for mi, m := range machines {
				res, err := lab.Run(z.setting(b, datagen.Uniform10G, m, sr, core.All))
				if err != nil {
					return err
				}
				dn[mi] = res.Dn
			}
			fmt.Fprintf(w, "  %-6g %-8.4f %-8.4f\n", sr, dn[0], dn[1])
		}
	}
	return nil
}

// Figure5PrAlpha regenerates Figure 5: the proximity of Pr_n(alpha) and
// Pr(alpha) for the three benchmarks (uniform 10GB, PC2, SR=0.05).
func Figure5PrAlpha(w io.Writer, lab *Lab, z Sizing) error {
	fmt.Fprintln(w, "Figure 5: proximity of Pr_n(alpha) and Pr(alpha) (Uniform 10GB, PC2, SR=0.05)")
	grid := stats.DefaultAlphaGrid
	for _, b := range workload.Benchmarks {
		res, err := lab.Run(z.setting(b, datagen.Uniform10G, "PC2", 0.05, core.All))
		if err != nil {
			return err
		}
		emp, model := stats.DnCurve(res.NormalizedErrors(), grid)
		fmt.Fprintf(w, "(%s) Dn=%.4f\n", b, res.Dn)
		fmt.Fprintf(w, "  %-6s %-10s %-10s\n", "alpha", "Pr_n", "Pr")
		for i, a := range grid {
			fmt.Fprintf(w, "  %-6g %-10.4f %-10.4f\n", a, emp[i], model[i])
		}
	}
	return nil
}

// Figure6MoreScatter regenerates Figure 6: the both-good and
// both-mediocre correlation cases.
func Figure6MoreScatter(w io.Writer, lab *Lab, z Sizing) error {
	fmt.Fprintln(w, "Figure 6: more case studies on correlations")
	cases := []struct {
		label string
		db    datagen.DBKind
		sr    float64
	}{
		{"Case (3): TPCH, Skewed 10GB, PC1, SR=0.05", datagen.Skewed10G, 0.05},
		{"Case (4): TPCH, Uniform 1GB, PC1, SR=0.01", datagen.Uniform1G, 0.01},
	}
	for _, c := range cases {
		res, err := lab.Run(z.setting(workload.TPCH, c.db, "PC1", c.sr, core.All))
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s: r_s=%.4f r_p=%.4f\n", c.label, res.RS, res.RP)
		sig, errs := res.Sigmas(), res.Errors()
		slope, icpt := stats.BestFitLine(sig, errs)
		fmt.Fprintf(w, "  best-fit: err = %.4f*sigma + %.4g\n", slope, icpt)
		for i := range sig {
			fmt.Fprintf(w, "    %.6g %.6g\n", sig[i], errs[i])
		}
	}
	return nil
}

var allVariants = []core.Variant{core.All, core.NoVarC, core.NoVarX, core.NoCov}

// ablation prints an r_s-by-variant table over low sampling ratios.
func ablation(w io.Writer, lab *Lab, z Sizing, db datagen.DBKind, machine string) error {
	fmt.Fprintf(w, "(%v database, %s)\n", db, machine)
	fmt.Fprintf(w, "  %-8s", "SR")
	for _, v := range allVariants {
		fmt.Fprintf(w, " %-10s", v)
	}
	fmt.Fprintln(w)
	for _, sr := range lowSRs {
		fmt.Fprintf(w, "  %-8g", sr)
		for _, v := range allVariants {
			res, err := lab.Run(z.setting(workload.TPCH, db, machine, sr, v))
			if err != nil {
				return err
			}
			fmt.Fprintf(w, " %-10.4f", res.RS)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Figure8Ablations regenerates Figure 8: the four predictor variants on
// uniform databases in terms of r_s.
func Figure8Ablations(w io.Writer, lab *Lab, z Sizing) error {
	fmt.Fprintln(w, "Figure 8: comparison of four alternatives in terms of r_s (uniform databases)")
	if err := ablation(w, lab, z, datagen.Uniform1G, "PC2"); err != nil {
		return err
	}
	return ablation(w, lab, z, datagen.Uniform10G, "PC1")
}

// Figure10AblationsSkew regenerates Figure 10 (Appendix C.3): the
// ablations over skewed databases.
func Figure10AblationsSkew(w io.Writer, lab *Lab, z Sizing) error {
	fmt.Fprintln(w, "Figure 10: comparison of four alternatives in terms of r_s (skewed databases)")
	if err := ablation(w, lab, z, datagen.Skewed1G, "PC1"); err != nil {
		return err
	}
	return ablation(w, lab, z, datagen.Skewed10G, "PC2")
}

// Figure9Overhead regenerates Figure 9: relative overhead of sampling
// for TPCH queries on PC1 over the four databases.
func Figure9Overhead(w io.Writer, lab *Lab, z Sizing) error {
	fmt.Fprintln(w, "Figure 9: relative overhead of TPCH queries on PC1")
	fmt.Fprintf(w, "%-8s", "SR")
	for _, db := range allDBs {
		fmt.Fprintf(w, " %-14v", db)
	}
	fmt.Fprintln(w)
	for _, sr := range standardSRs {
		fmt.Fprintf(w, "%-8g", sr)
		for _, db := range allDBs {
			res, err := lab.Run(z.setting(workload.TPCH, db, "PC1", sr, core.All))
			if err != nil {
				return err
			}
			fmt.Fprintf(w, " %-14.4f", res.MeanOverhead)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Figure11OverheadAll regenerates Figure 11 (Appendix C.4): relative
// overhead for all benchmarks on both machines.
func Figure11OverheadAll(w io.Writer, lab *Lab, z Sizing) error {
	fmt.Fprintln(w, "Figure 11: relative overhead of benchmark queries")
	for _, m := range machines {
		for _, b := range workload.Benchmarks {
			fmt.Fprintf(w, "(%s, %s)\n", b, m)
			fmt.Fprintf(w, "  %-8s", "SR")
			for _, db := range allDBs {
				fmt.Fprintf(w, " %-14v", db)
			}
			fmt.Fprintln(w)
			for _, sr := range standardSRs {
				fmt.Fprintf(w, "  %-8g", sr)
				for _, db := range allDBs {
					res, err := lab.Run(z.setting(b, db, m, sr, core.All))
					if err != nil {
						return err
					}
					fmt.Fprintf(w, " %-14.4f", res.MeanOverhead)
				}
				fmt.Fprintln(w)
			}
		}
	}
	return nil
}

// Figure12SelectivityScatter regenerates Figure 12 (Appendix C.5): the
// estimated versus actual selectivities (skewed 1GB, PC1, SR=0.05).
func Figure12SelectivityScatter(w io.Writer, lab *Lab, z Sizing) error {
	fmt.Fprintln(w, "Figure 12: estimated vs actual selectivities (Skewed 1GB, PC1, SR=0.05)")
	for _, b := range workload.Benchmarks {
		res, err := lab.Run(z.setting(b, datagen.Skewed1G, "PC1", 0.05, core.All))
		if err != nil {
			return err
		}
		m := ComputeSelectivityMetrics(res, 0.2)
		fmt.Fprintf(w, "(%s) r_s=%.4f r_p=%.4f over %d operators\n", b, m.SelRS, m.SelRP, m.NumObs)
		var pts []OpObservation
		for _, o := range res.Outcomes {
			pts = append(pts, o.Ops...)
		}
		sort.Slice(pts, func(i, j int) bool { return pts[i].EstSel < pts[j].EstSel })
		for _, p := range pts {
			fmt.Fprintf(w, "  %.6g %.6g\n", p.EstSel, p.TrueSel)
		}
	}
	return nil
}

// gridCell runs one (bench, db, machine, SR) cell of the full grid.
func (z Sizing) gridCell(lab *Lab, b workload.Benchmark, db datagen.DBKind, m string, sr float64) (*RunResult, error) {
	return lab.Run(z.setting(b, db, m, sr, core.All))
}

// Table4CorrelationGrid regenerates Table 4: r_s (r_p) for every
// benchmark, machine, database, and sampling ratio.
func Table4CorrelationGrid(w io.Writer, lab *Lab, z Sizing) error {
	fmt.Fprintln(w, "Table 4: r_s (r_p) of the benchmark queries")
	return gridTable(w, lab, z, func(r *RunResult) string {
		return fmt.Sprintf("%.4f (%.4f)", r.RS, r.RP)
	})
}

// Table5DnGrid regenerates Table 5: D_n over the same grid.
func Table5DnGrid(w io.Writer, lab *Lab, z Sizing) error {
	fmt.Fprintln(w, "Table 5: D_n of the benchmark queries")
	return gridTable(w, lab, z, func(r *RunResult) string {
		return fmt.Sprintf("%.4f", r.Dn)
	})
}

func gridTable(w io.Writer, lab *Lab, z Sizing, cell func(*RunResult) string) error {
	for _, db := range allDBs {
		fmt.Fprintf(w, "%v database\n", db)
		fmt.Fprintf(w, "  %-6s", "SR")
		for _, b := range workload.Benchmarks {
			for _, m := range machines {
				fmt.Fprintf(w, " %-18s", fmt.Sprintf("%v/%s", b, m))
			}
		}
		fmt.Fprintln(w)
		for _, sr := range standardSRs {
			fmt.Fprintf(w, "  %-6g", sr)
			for _, b := range workload.Benchmarks {
				for _, m := range machines {
					res, err := z.gridCell(lab, b, db, m, sr)
					if err != nil {
						return err
					}
					fmt.Fprintf(w, " %-18s", cell(res))
				}
			}
			fmt.Fprintln(w)
		}
	}
	return nil
}

// selGrid prints a selectivity-metric table over the standard grid.
func selGrid(w io.Writer, lab *Lab, z Sizing, cell func(SelectivityMetrics) string) error {
	for _, db := range allDBs {
		fmt.Fprintf(w, "%v database\n", db)
		fmt.Fprintf(w, "  %-6s", "SR")
		for _, b := range workload.Benchmarks {
			for _, m := range machines {
				fmt.Fprintf(w, " %-18s", fmt.Sprintf("%v/%s", b, m))
			}
		}
		fmt.Fprintln(w)
		for _, sr := range standardSRs {
			fmt.Fprintf(w, "  %-6g", sr)
			for _, b := range workload.Benchmarks {
				for _, m := range machines {
					res, err := z.gridCell(lab, b, db, m, sr)
					if err != nil {
						return err
					}
					fmt.Fprintf(w, " %-18s", cell(ComputeSelectivityMetrics(res, 0.2)))
				}
			}
			fmt.Fprintln(w)
		}
	}
	return nil
}

// Table6SelErrCorrelation regenerates Table 6: correlations between the
// estimated and actual errors in selectivity estimates.
func Table6SelErrCorrelation(w io.Writer, lab *Lab, z Sizing) error {
	fmt.Fprintln(w, "Table 6: r_s (r_p) between estimated and actual errors in selectivity estimates")
	return selGrid(w, lab, z, func(m SelectivityMetrics) string {
		return fmt.Sprintf("%.4f (%.4f)", m.ErrRS, m.ErrRP)
	})
}

// Table7SelCorrelation regenerates Table 7: correlations between the
// estimated and actual selectivities.
func Table7SelCorrelation(w io.Writer, lab *Lab, z Sizing) error {
	fmt.Fprintln(w, "Table 7: r_s (r_p) between estimated and actual selectivities")
	return selGrid(w, lab, z, func(m SelectivityMetrics) string {
		return fmt.Sprintf("%.4f (%.4f)", m.SelRS, m.SelRP)
	})
}

// Table8SelRelError regenerates Table 8: mean relative errors in the
// selectivity estimates.
func Table8SelRelError(w io.Writer, lab *Lab, z Sizing) error {
	fmt.Fprintln(w, "Table 8: relative errors in the selectivity estimates")
	return selGrid(w, lab, z, func(m SelectivityMetrics) string {
		return fmt.Sprintf("%.4f", m.MeanRelErr)
	})
}

// Table9LargeErrCorrelation regenerates Table 9: correlations of
// selectivity estimates restricted to relative errors above 0.2.
func Table9LargeErrCorrelation(w io.Writer, lab *Lab, z Sizing) error {
	fmt.Fprintln(w, "Table 9: r_s (r_p) of selectivity estimates with relative errors above 0.2")
	return selGrid(w, lab, z, func(m SelectivityMetrics) string {
		if m.NumLargeErrObs < 3 {
			return "N/A (N/A)"
		}
		return fmt.Sprintf("%.4f (%.4f)", m.LargeRS, m.LargeRP)
	})
}

// Report is a named experiment generator.
type Report struct {
	ID   string
	Desc string
	Gen  func(io.Writer, *Lab, Sizing) error
}

// Reports lists every regenerable table and figure in evaluation order.
var Reports = []Report{
	{"table1", "calibrated cost units per machine", Table1CostUnits},
	{"figure2", "r_s/r_p vs sampling ratio, three panels", Figure2Correlation},
	{"figure3", "outlier robustness of r_s vs r_p", Figure3OutlierRobustness},
	{"figure4", "D_n vs sampling ratio, uniform 10GB", Figure4Dn},
	{"figure5", "Pr_n(alpha) vs Pr(alpha) curves", Figure5PrAlpha},
	{"figure6", "more correlation case studies", Figure6MoreScatter},
	{"figure8", "ablations (uniform databases)", Figure8Ablations},
	{"figure9", "sampling overhead, TPCH on PC1", Figure9Overhead},
	{"figure10", "ablations (skewed databases)", Figure10AblationsSkew},
	{"figure11", "sampling overhead, all benchmarks", Figure11OverheadAll},
	{"figure12", "estimated vs actual selectivities", Figure12SelectivityScatter},
	{"table4", "full r_s (r_p) grid", Table4CorrelationGrid},
	{"table5", "full D_n grid", Table5DnGrid},
	{"table6", "selectivity error correlations", Table6SelErrCorrelation},
	{"table7", "selectivity correlations", Table7SelCorrelation},
	{"table8", "mean relative selectivity errors", Table8SelRelError},
	{"table9", "large-error selectivity correlations", Table9LargeErrCorrelation},
}

// ReportByID returns the named report.
func ReportByID(id string) (Report, error) {
	for _, r := range Reports {
		if r.ID == id {
			return r, nil
		}
	}
	return Report{}, fmt.Errorf("exper: unknown report %q", id)
}
