package exper

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/workload"
)

// smallSetting keeps unit-test runs fast: tiny DB, few queries.
func smallSetting(b workload.Benchmark, variant core.Variant, sr float64) Setting {
	return Setting{
		Bench:      b,
		DB:         datagen.Uniform1G,
		Machine:    "PC1",
		SR:         sr,
		Variant:    variant,
		NumQueries: 12,
		Seed:       1,
	}
}

func TestRunMicroProducesMetrics(t *testing.T) {
	lab := NewLab()
	res, err := lab.Run(smallSetting(workload.Micro, core.All, 0.05))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outcomes) != 12 {
		t.Fatalf("outcomes=%d", len(res.Outcomes))
	}
	for _, o := range res.Outcomes {
		if o.Actual <= 0 || o.PredMean <= 0 {
			t.Errorf("%s: actual=%v pred=%v", o.Name, o.Actual, o.PredMean)
		}
		if o.PredSigma < 0 {
			t.Errorf("%s: sigma=%v", o.Name, o.PredSigma)
		}
	}
	if math.IsNaN(res.RS) || math.IsNaN(res.RP) || math.IsNaN(res.Dn) {
		t.Error("NaN metrics")
	}
	if res.MeanOverhead <= 0 || res.MeanOverhead > 1 {
		t.Errorf("overhead=%v", res.MeanOverhead)
	}
}

func TestRunCorrelationPositive(t *testing.T) {
	// With a real mixture of queries the correlation between predicted
	// sigma and actual error should be clearly positive — the paper's
	// headline result (R1).
	lab := NewLab()
	s := smallSetting(workload.SelJoin, core.All, 0.05)
	s.NumQueries = 24
	res, err := lab.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.RS < 0.3 {
		t.Errorf("r_s = %v, want positive correlation", res.RS)
	}
}

func TestRunTPCHWithAggregates(t *testing.T) {
	lab := NewLab()
	res, err := lab.Run(smallSetting(workload.TPCH, core.All, 0.05))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outcomes) == 0 {
		t.Fatal("no outcomes")
	}
	// Selectivity observations exist (scans and joins below aggregates).
	m := ComputeSelectivityMetrics(res, 0.2)
	if m.NumObs == 0 {
		t.Error("no selectivity observations")
	}
	if m.SelRP < 0.8 {
		t.Errorf("estimated vs actual selectivity r_p = %v, want high", m.SelRP)
	}
}

func TestOverheadGrowsWithSamplingRatio(t *testing.T) {
	lab := NewLab()
	small, err := lab.Run(smallSetting(workload.TPCH, core.All, 0.01))
	if err != nil {
		t.Fatal(err)
	}
	big, err := lab.Run(smallSetting(workload.TPCH, core.All, 0.1))
	if err != nil {
		t.Fatal(err)
	}
	if big.MeanOverhead <= small.MeanOverhead {
		t.Errorf("overhead at SR=0.1 (%v) not above SR=0.01 (%v)",
			big.MeanOverhead, small.MeanOverhead)
	}
	if big.MeanOverhead > 0.5 {
		t.Errorf("overhead %v implausibly large", big.MeanOverhead)
	}
}

func TestLabMemoization(t *testing.T) {
	lab := NewLab()
	if _, err := lab.Run(smallSetting(workload.Micro, core.All, 0.05)); err != nil {
		t.Fatal(err)
	}
	if len(lab.bases) != 1 || len(lab.systems) != 1 {
		t.Errorf("bases=%d systems=%d, want 1/1", len(lab.bases), len(lab.systems))
	}
	nMeas := len(lab.meas)
	if nMeas == 0 {
		t.Fatal("measurement cache empty")
	}
	missesAfterFirst := lab.CacheStats().Misses

	// Same DB+machine+SR, different variant: environment, System, and
	// measurements all reused; the ablation cell triggers no fresh
	// sampling passes — it hits the shared estimate cache instead.
	if _, err := lab.Run(smallSetting(workload.Micro, core.NoVarC, 0.05)); err != nil {
		t.Fatal(err)
	}
	if len(lab.bases) != 1 || len(lab.systems) != 1 {
		t.Errorf("bases=%d systems=%d after variant run, want 1/1", len(lab.bases), len(lab.systems))
	}
	if len(lab.meas) != nMeas {
		t.Errorf("variant run re-measured: %d -> %d entries", nMeas, len(lab.meas))
	}
	st := lab.CacheStats()
	if st.Misses != missesAfterFirst {
		t.Errorf("variant run ran %d fresh sampling passes", st.Misses-missesAfterFirst)
	}
	if st.Hits == 0 {
		t.Error("no cross-variant cache hits")
	}

	// A different sampling ratio derives a new System from the same base
	// environment (no second Open).
	if _, err := lab.Run(smallSetting(workload.Micro, core.All, 0.02)); err != nil {
		t.Fatal(err)
	}
	if len(lab.bases) != 1 {
		t.Errorf("bases=%d after SR change, want 1", len(lab.bases))
	}
	if len(lab.systems) != 2 {
		t.Errorf("systems=%d after SR change, want 2", len(lab.systems))
	}
}

// TestMeasurementsNotSharedAcrossWorkloadSizes pins the measKey
// contract: Micro query content depends on the workload size, so a
// same-named query from a different-sized run on the same Lab must be
// re-measured, not served from the memo.
func TestMeasurementsNotSharedAcrossWorkloadSizes(t *testing.T) {
	shared := NewLab()
	small := smallSetting(workload.Micro, core.All, 0.05)
	big := small
	big.NumQueries = 24
	if _, err := shared.Run(small); err != nil {
		t.Fatal(err)
	}
	got, err := shared.Run(big)
	if err != nil {
		t.Fatal(err)
	}
	want, err := NewLab().Run(big)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Outcomes {
		g, w := got.Outcomes[i], want.Outcomes[i]
		if g.Name != w.Name || g.Actual != w.Actual || g.SampleCost != w.SampleCost {
			t.Errorf("outcome %d (%s) served stale measurement: %+v vs fresh %+v",
				i, w.Name, g, w)
		}
	}
}

// TestRunGridMatchesSerial fans an ablation grid out over a worker pool
// and checks the cells against a serial Run loop on a fresh lab — the
// per-cell seed contract: interleaving cannot change the numbers.
func TestRunGridMatchesSerial(t *testing.T) {
	settings := []Setting{
		smallSetting(workload.Micro, core.All, 0.05),
		smallSetting(workload.Micro, core.NoVarC, 0.05),
		smallSetting(workload.SelJoin, core.All, 0.05),
		smallSetting(workload.SelJoin, core.NoCov, 0.02),
	}
	grid, err := NewLab().RunGrid(settings, 4)
	if err != nil {
		t.Fatal(err)
	}
	serialLab := NewLab()
	eq := func(x, y float64) bool {
		return math.Abs(x-y) <= 1e-12*math.Max(1, math.Max(math.Abs(x), math.Abs(y)))
	}
	for i, s := range settings {
		serial, err := serialLab.Run(s)
		if err != nil {
			t.Fatal(err)
		}
		g := grid[i]
		if len(g.Outcomes) != len(serial.Outcomes) {
			t.Fatalf("cell %d: %d vs %d outcomes", i, len(g.Outcomes), len(serial.Outcomes))
		}
		for j := range g.Outcomes {
			a, b := g.Outcomes[j], serial.Outcomes[j]
			if a.Name != b.Name || a.Actual != b.Actual ||
				!eq(a.PredMean, b.PredMean) || !eq(a.PredSigma, b.PredSigma) {
				t.Errorf("cell %d query %d differs: %+v vs %+v", i, j, a, b)
			}
		}
		if !eq(g.RS, serial.RS) || !eq(g.RP, serial.RP) || !eq(g.Dn, serial.Dn) {
			t.Errorf("cell %d metrics differ: (%v,%v,%v) vs (%v,%v,%v)",
				i, g.RS, g.RP, g.Dn, serial.RS, serial.RP, serial.Dn)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := NewLab().Run(smallSetting(workload.SelJoin, core.All, 0.05))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewLab().Run(smallSetting(workload.SelJoin, core.All, 0.05))
	if err != nil {
		t.Fatal(err)
	}
	// Map-iteration order inside the covariance engine permutes float
	// products, so equality holds only up to roundoff.
	eq := func(x, y float64) bool {
		return math.Abs(x-y) <= 1e-12*math.Max(1, math.Max(math.Abs(x), math.Abs(y)))
	}
	if !eq(a.RS, b.RS) || !eq(a.RP, b.RP) || !eq(a.Dn, b.Dn) {
		t.Errorf("metrics differ: (%v,%v,%v) vs (%v,%v,%v)",
			a.RS, a.RP, a.Dn, b.RS, b.RP, b.Dn)
	}
}

func TestSelectivityMetricsThreshold(t *testing.T) {
	lab := NewLab()
	res, err := lab.Run(smallSetting(workload.SelJoin, core.All, 0.02))
	if err != nil {
		t.Fatal(err)
	}
	m := ComputeSelectivityMetrics(res, 0.2)
	if m.NumLargeErrObs > m.NumObs {
		t.Errorf("large-error obs %d > total %d", m.NumLargeErrObs, m.NumObs)
	}
	if m.MeanRelErr < 0 {
		t.Errorf("mean relative error %v", m.MeanRelErr)
	}
}

func TestVariantsShareEnvAndDiffer(t *testing.T) {
	lab := NewLab()
	all, err := lab.Run(smallSetting(workload.TPCH, core.All, 0.05))
	if err != nil {
		t.Fatal(err)
	}
	noc, err := lab.Run(smallSetting(workload.TPCH, core.NoVarC, 0.05))
	if err != nil {
		t.Fatal(err)
	}
	// Dropping Var[c] must shrink the average predicted sigma.
	var sAll, sNoC float64
	for i := range all.Outcomes {
		sAll += all.Outcomes[i].PredSigma
		sNoC += noc.Outcomes[i].PredSigma
	}
	if sNoC >= sAll {
		t.Errorf("NoVar[c] sigma sum %v not below All %v", sNoC, sAll)
	}
}

func TestSettingString(t *testing.T) {
	s := smallSetting(workload.Micro, core.All, 0.05)
	if s.String() == "" {
		t.Error("empty setting string")
	}
}
