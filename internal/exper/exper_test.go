package exper

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/workload"
)

// smallSetting keeps unit-test runs fast: tiny DB, few queries.
func smallSetting(b workload.Benchmark, variant core.Variant, sr float64) Setting {
	return Setting{
		Bench:      b,
		DB:         datagen.Uniform1G,
		Machine:    "PC1",
		SR:         sr,
		Variant:    variant,
		NumQueries: 12,
		Seed:       1,
	}
}

func TestRunMicroProducesMetrics(t *testing.T) {
	lab := NewLab()
	res, err := lab.Run(smallSetting(workload.Micro, core.All, 0.05))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outcomes) != 12 {
		t.Fatalf("outcomes=%d", len(res.Outcomes))
	}
	for _, o := range res.Outcomes {
		if o.Actual <= 0 || o.PredMean <= 0 {
			t.Errorf("%s: actual=%v pred=%v", o.Name, o.Actual, o.PredMean)
		}
		if o.PredSigma < 0 {
			t.Errorf("%s: sigma=%v", o.Name, o.PredSigma)
		}
	}
	if math.IsNaN(res.RS) || math.IsNaN(res.RP) || math.IsNaN(res.Dn) {
		t.Error("NaN metrics")
	}
	if res.MeanOverhead <= 0 || res.MeanOverhead > 1 {
		t.Errorf("overhead=%v", res.MeanOverhead)
	}
}

func TestRunCorrelationPositive(t *testing.T) {
	// With a real mixture of queries the correlation between predicted
	// sigma and actual error should be clearly positive — the paper's
	// headline result (R1).
	lab := NewLab()
	s := smallSetting(workload.SelJoin, core.All, 0.05)
	s.NumQueries = 24
	res, err := lab.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.RS < 0.3 {
		t.Errorf("r_s = %v, want positive correlation", res.RS)
	}
}

func TestRunTPCHWithAggregates(t *testing.T) {
	lab := NewLab()
	res, err := lab.Run(smallSetting(workload.TPCH, core.All, 0.05))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outcomes) == 0 {
		t.Fatal("no outcomes")
	}
	// Selectivity observations exist (scans and joins below aggregates).
	m := ComputeSelectivityMetrics(res, 0.2)
	if m.NumObs == 0 {
		t.Error("no selectivity observations")
	}
	if m.SelRP < 0.8 {
		t.Errorf("estimated vs actual selectivity r_p = %v, want high", m.SelRP)
	}
}

func TestOverheadGrowsWithSamplingRatio(t *testing.T) {
	lab := NewLab()
	small, err := lab.Run(smallSetting(workload.TPCH, core.All, 0.01))
	if err != nil {
		t.Fatal(err)
	}
	big, err := lab.Run(smallSetting(workload.TPCH, core.All, 0.1))
	if err != nil {
		t.Fatal(err)
	}
	if big.MeanOverhead <= small.MeanOverhead {
		t.Errorf("overhead at SR=0.1 (%v) not above SR=0.01 (%v)",
			big.MeanOverhead, small.MeanOverhead)
	}
	if big.MeanOverhead > 0.5 {
		t.Errorf("overhead %v implausibly large", big.MeanOverhead)
	}
}

func TestLabMemoization(t *testing.T) {
	lab := NewLab()
	if _, err := lab.Run(smallSetting(workload.Micro, core.All, 0.05)); err != nil {
		t.Fatal(err)
	}
	if len(lab.envs) != 1 {
		t.Errorf("envs=%d, want 1", len(lab.envs))
	}
	// Same DB+machine, different variant: env reused.
	if _, err := lab.Run(smallSetting(workload.Micro, core.NoVarC, 0.05)); err != nil {
		t.Fatal(err)
	}
	if len(lab.envs) != 1 {
		t.Errorf("envs=%d after second run, want 1", len(lab.envs))
	}
	if len(lab.resCache) == 0 {
		t.Error("plan result cache empty")
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := NewLab().Run(smallSetting(workload.SelJoin, core.All, 0.05))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewLab().Run(smallSetting(workload.SelJoin, core.All, 0.05))
	if err != nil {
		t.Fatal(err)
	}
	// Map-iteration order inside the covariance engine permutes float
	// products, so equality holds only up to roundoff.
	eq := func(x, y float64) bool {
		return math.Abs(x-y) <= 1e-12*math.Max(1, math.Max(math.Abs(x), math.Abs(y)))
	}
	if !eq(a.RS, b.RS) || !eq(a.RP, b.RP) || !eq(a.Dn, b.Dn) {
		t.Errorf("metrics differ: (%v,%v,%v) vs (%v,%v,%v)",
			a.RS, a.RP, a.Dn, b.RS, b.RP, b.Dn)
	}
}

func TestSelectivityMetricsThreshold(t *testing.T) {
	lab := NewLab()
	res, err := lab.Run(smallSetting(workload.SelJoin, core.All, 0.02))
	if err != nil {
		t.Fatal(err)
	}
	m := ComputeSelectivityMetrics(res, 0.2)
	if m.NumLargeErrObs > m.NumObs {
		t.Errorf("large-error obs %d > total %d", m.NumLargeErrObs, m.NumObs)
	}
	if m.MeanRelErr < 0 {
		t.Errorf("mean relative error %v", m.MeanRelErr)
	}
}

func TestVariantsShareEnvAndDiffer(t *testing.T) {
	lab := NewLab()
	all, err := lab.Run(smallSetting(workload.TPCH, core.All, 0.05))
	if err != nil {
		t.Fatal(err)
	}
	noc, err := lab.Run(smallSetting(workload.TPCH, core.NoVarC, 0.05))
	if err != nil {
		t.Fatal(err)
	}
	// Dropping Var[c] must shrink the average predicted sigma.
	var sAll, sNoC float64
	for i := range all.Outcomes {
		sAll += all.Outcomes[i].PredSigma
		sNoC += noc.Outcomes[i].PredSigma
	}
	if sNoC >= sAll {
		t.Errorf("NoVar[c] sigma sum %v not below All %v", sNoC, sAll)
	}
}

func TestSettingString(t *testing.T) {
	s := smallSetting(workload.Micro, core.All, 0.05)
	if s.String() == "" {
		t.Error("empty setting string")
	}
}
