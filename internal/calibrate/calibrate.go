// Package calibrate implements the cost-unit calibration framework of
// the paper's prior work [48], extended per Section 3.1 to estimate
// variances as well as means: each cost unit gets dedicated calibration
// queries whose resource profiles isolate it (given units already
// calibrated), the queries are run repeatedly on the hardware, and the
// observed per-run unit values are treated as i.i.d. samples of the unit
// distribution, summarized by their sample mean and variance.
//
// The calibration order is triangular — ct from an in-memory scan, then
// cs from a cold sequential scan (subtracting the known ct work), ci
// from an in-memory index scan, cr from a cold index scan, and co from
// an in-memory sort — mirroring Example 3.
package calibrate

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/engine"
	"repro/internal/hardware"
	"repro/internal/stats"
)

// Config controls the calibration procedure.
type Config struct {
	// TableSizes are the row counts of the calibration relations; using
	// several sizes gives independent observations like the paper's
	// "different R's" (Example 3).
	TableSizes []int
	// Repetitions per (query, size) pair.
	Repetitions int
	Seed        int64
}

// DefaultConfig matches a modest but stable calibration run.
func DefaultConfig(seed int64) Config {
	return Config{
		TableSizes:  []int{2000, 5000, 10000, 20000, 50000},
		Repetitions: 12,
		Seed:        seed,
	}
}

// Result holds the calibrated distribution of each cost unit and the raw
// per-run observations behind it.
type Result struct {
	Units        [hardware.NumUnits]stats.Normal
	Observations [hardware.NumUnits][]float64
}

// Dist returns the calibrated distribution of unit u.
func (r *Result) Dist(u hardware.Unit) stats.Normal { return r.Units[u] }

// Means returns the five calibrated means in unit order.
func (r *Result) Means() [hardware.NumUnits]float64 {
	var m [hardware.NumUnits]float64
	for i := range m {
		m[i] = r.Units[i].Mu
	}
	return m
}

// Run calibrates all five cost units against the given hardware profile.
func Run(p *hardware.Profile, cfg Config) (*Result, error) {
	if len(cfg.TableSizes) == 0 || cfg.Repetitions <= 0 {
		return nil, fmt.Errorf("calibrate: empty configuration")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	res := &Result{}

	observe := func(counts engine.Counts) float64 {
		return p.OperatorTime(counts, rng)
	}

	// Q1 — in-memory sequential scan: tau = nt*ct (pages cached: ns = 0).
	for _, n := range cfg.TableSizes {
		nt := float64(n)
		for rep := 0; rep < cfg.Repetitions; rep++ {
			tau := observe(engine.Counts{NT: nt})
			res.Observations[hardware.CT] = append(res.Observations[hardware.CT], tau/nt)
		}
	}
	ctHat := summarize(res, hardware.CT)

	// Q2 — cold sequential scan: tau = ns*cs + nt*ct.
	for _, n := range cfg.TableSizes {
		nt := float64(n)
		ns := math.Ceil(nt / engine.TuplesPerPage)
		for rep := 0; rep < cfg.Repetitions; rep++ {
			tau := observe(engine.Counts{NS: ns, NT: nt})
			cs := (tau - nt*ctHat.Mu) / ns
			res.Observations[hardware.CS] = append(res.Observations[hardware.CS], cs)
		}
	}
	summarize(res, hardware.CS)

	// Q3 — in-memory full index scan: tau = nt*ct + ni*ci.
	for _, n := range cfg.TableSizes {
		nt := float64(n)
		for rep := 0; rep < cfg.Repetitions; rep++ {
			tau := observe(engine.Counts{NT: nt, NI: nt})
			ci := (tau - nt*ctHat.Mu) / nt
			res.Observations[hardware.CI] = append(res.Observations[hardware.CI], ci)
		}
	}
	ciHat := summarize(res, hardware.CI)

	// Q4 — cold index scan: tau = nr*cr + nt*ct + ni*ci.
	for _, n := range cfg.TableSizes {
		m := float64(n)
		for rep := 0; rep < cfg.Repetitions; rep++ {
			tau := observe(engine.Counts{NR: m, NT: m, NI: m})
			cr := (tau - m*ctHat.Mu - m*ciHat.Mu) / m
			res.Observations[hardware.CR] = append(res.Observations[hardware.CR], cr)
		}
	}
	summarize(res, hardware.CR)

	// Q5 — in-memory sort: tau = nt*ct + no*co with no = n*log2(n).
	for _, n := range cfg.TableSizes {
		nt := float64(n)
		no := nt * math.Log2(math.Max(nt, 2))
		for rep := 0; rep < cfg.Repetitions; rep++ {
			tau := observe(engine.Counts{NT: nt, NO: no})
			co := (tau - nt*ctHat.Mu) / no
			res.Observations[hardware.CO] = append(res.Observations[hardware.CO], co)
		}
	}
	summarize(res, hardware.CO)

	return res, nil
}

// summarize computes the sample mean and variance of a unit's
// observations and stores the fitted normal, clamping the mean at a tiny
// positive floor (a cost unit cannot be negative).
func summarize(res *Result, u hardware.Unit) stats.Normal {
	mean, variance := stats.MeanVar(res.Observations[u])
	if mean < 1e-12 {
		mean = 1e-12
	}
	n := stats.NormalFromVar(mean, variance)
	res.Units[u] = n
	return n
}
