package calibrate

import (
	"math"
	"testing"

	"repro/internal/hardware"
)

func TestCalibrationRecoverMeans(t *testing.T) {
	for _, mk := range []func() *hardware.Profile{hardware.PC1, hardware.PC2} {
		p := mk()
		res, err := Run(p, DefaultConfig(1))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < hardware.NumUnits; i++ {
			got := res.Units[i].Mu
			want := p.True[i].Mu
			rel := math.Abs(got-want) / want
			// The lognormal model error biases observations by
			// exp(sigma^2/2) ~ 0.5-0.7%; allow a broader band for the
			// subtractive chain on derived units.
			if rel > 0.25 {
				t.Errorf("%s unit %v: calibrated %v vs true %v (rel %.3f)",
					p.Name, hardware.Unit(i), got, want, rel)
			}
		}
	}
}

func TestCalibrationVariancesPositive(t *testing.T) {
	res, err := Run(hardware.PC1(), DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < hardware.NumUnits; i++ {
		if res.Units[i].Sigma <= 0 {
			t.Errorf("unit %v: sigma = %v, want > 0", hardware.Unit(i), res.Units[i].Sigma)
		}
		if len(res.Observations[i]) == 0 {
			t.Errorf("unit %v: no observations", hardware.Unit(i))
		}
	}
}

func TestCalibrationDeterministicPerSeed(t *testing.T) {
	a, err := Run(hardware.PC2(), DefaultConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(hardware.PC2(), DefaultConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < hardware.NumUnits; i++ {
		if a.Units[i] != b.Units[i] {
			t.Errorf("unit %v differs across identical runs", hardware.Unit(i))
		}
	}
}

func TestCalibrationOrderingPreserved(t *testing.T) {
	// Random I/O must calibrate as more expensive than sequential I/O,
	// and index tuple cost above plain tuple cost.
	res, err := Run(hardware.PC1(), DefaultConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Units[hardware.CR].Mu <= res.Units[hardware.CS].Mu {
		t.Errorf("cr %v <= cs %v", res.Units[hardware.CR].Mu, res.Units[hardware.CS].Mu)
	}
	if res.Units[hardware.CI].Mu <= res.Units[hardware.CT].Mu {
		t.Errorf("ci %v <= ct %v", res.Units[hardware.CI].Mu, res.Units[hardware.CT].Mu)
	}
}

func TestCalibrationRejectsEmptyConfig(t *testing.T) {
	if _, err := Run(hardware.PC1(), Config{}); err == nil {
		t.Error("expected error on empty config")
	}
}

func TestMeansAccessor(t *testing.T) {
	res, err := Run(hardware.PC1(), DefaultConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	m := res.Means()
	for i := range m {
		if m[i] != res.Units[i].Mu {
			t.Errorf("Means()[%d] mismatch", i)
		}
		if res.Dist(hardware.Unit(i)) != res.Units[i] {
			t.Errorf("Dist(%d) mismatch", i)
		}
	}
}
