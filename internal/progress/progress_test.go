package progress

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/stats"
)

// fakePred builds a prediction with three operators and a known
// covariance mass.
func fakePred() *core.Prediction {
	ops := []core.OpPrediction{
		{NodeID: 0, Kind: engine.HashJoin, Mean: 2.0, Var: 0.04},
		{NodeID: 1, Kind: engine.SeqScan, Mean: 1.0, Var: 0.01},
		{NodeID: 2, Kind: engine.SeqScan, Mean: 3.0, Var: 0.09},
	}
	// total variance = same-op (0.14) + covariance mass (0.06).
	return &core.Prediction{
		Dist:        stats.NormalFromVar(6.0, 0.20),
		PerOperator: ops,
	}
}

func TestInitialStateMatchesPrediction(t *testing.T) {
	ind := New(fakePred())
	rem := ind.Remaining()
	if math.Abs(rem.Mu-6.0) > 1e-12 {
		t.Errorf("initial remaining mean %v, want 6", rem.Mu)
	}
	if math.Abs(rem.Var()-0.20) > 1e-12 {
		t.Errorf("initial remaining variance %v, want 0.20", rem.Var())
	}
	if ind.Fraction() != 0 || ind.Elapsed() != 0 || ind.Done() {
		t.Error("initial progress state wrong")
	}
	if ind.NumPending() != 3 {
		t.Errorf("pending=%d", ind.NumPending())
	}
}

func TestCompletionShrinksRemaining(t *testing.T) {
	ind := New(fakePred())
	before := ind.Remaining()
	if err := ind.CompleteOperator(2, 3.2); err != nil {
		t.Fatal(err)
	}
	after := ind.Remaining()
	if after.Mu >= before.Mu {
		t.Errorf("remaining mean did not shrink: %v -> %v", before.Mu, after.Mu)
	}
	if after.Var() >= before.Var() {
		t.Errorf("remaining variance did not shrink: %v -> %v", before.Var(), after.Var())
	}
	if ind.Elapsed() != 3.2 {
		t.Errorf("elapsed %v", ind.Elapsed())
	}
	if f := ind.Fraction(); math.Abs(f-0.5) > 1e-12 { // 3 of 6 expected seconds
		t.Errorf("fraction %v, want 0.5", f)
	}
}

func TestFullCompletion(t *testing.T) {
	ind := New(fakePred())
	for _, id := range []int{0, 1, 2} {
		if err := ind.CompleteOperator(id, 1.0); err != nil {
			t.Fatal(err)
		}
	}
	if !ind.Done() || ind.NumPending() != 0 {
		t.Error("not done after completing all operators")
	}
	rem := ind.Remaining()
	if rem.Mu != 0 || rem.Var() != 0 {
		t.Errorf("remaining after completion: %v", rem)
	}
	lo, hi := ind.ETA(0.9)
	if lo != 3.0 || hi != 3.0 {
		t.Errorf("ETA after completion [%v, %v], want the elapsed 3.0", lo, hi)
	}
	if ind.Fraction() != 1 {
		t.Errorf("fraction %v", ind.Fraction())
	}
}

func TestETABandsNarrow(t *testing.T) {
	ind := New(fakePred())
	lo0, hi0 := ind.ETA(0.9)
	if err := ind.CompleteOperator(2, 2.9); err != nil {
		t.Fatal(err)
	}
	lo1, hi1 := ind.ETA(0.9)
	if (hi1 - lo1) >= (hi0 - lo0) {
		t.Errorf("ETA band did not narrow: [%v,%v] -> [%v,%v]", lo0, hi0, lo1, hi1)
	}
	if lo1 < ind.Elapsed() {
		t.Errorf("ETA lower edge %v below elapsed %v", lo1, ind.Elapsed())
	}
}

func TestErrors(t *testing.T) {
	ind := New(fakePred())
	if err := ind.CompleteOperator(42, 1); err == nil {
		t.Error("expected error for unknown operator")
	}
	if err := ind.CompleteOperator(1, 1); err != nil {
		t.Fatal(err)
	}
	if err := ind.CompleteOperator(1, 1); err == nil {
		t.Error("expected error for double completion")
	}
}

// End-to-end: drive the indicator from a real prediction.
func TestIndicatorWithRealPrediction(t *testing.T) {
	// Reuse the core fixture machinery indirectly through a tiny system.
	predOps := []core.OpPrediction{
		{NodeID: 0, Mean: 0.5, Var: 0.002},
		{NodeID: 1, Mean: 0.2, Var: 0.001},
	}
	pred := &core.Prediction{
		Dist:        stats.NormalFromVar(0.7, 0.004),
		PerOperator: predOps,
	}
	ind := New(pred)
	steps := 0
	for !ind.Done() {
		// Complete operators bottom-up, observing slightly-off times.
		for _, op := range predOps {
			if ind.NumPending() > 0 {
				_ = ind.CompleteOperator(op.NodeID, op.Mean*1.1)
			}
		}
		steps++
		if steps > 3 {
			t.Fatal("indicator never completed")
		}
	}
	if math.Abs(ind.Elapsed()-0.77) > 1e-12 {
		t.Errorf("elapsed %v, want 0.77", ind.Elapsed())
	}
}
