// Package progress implements an uncertainty-aware query progress
// indicator (Section 6.5.2): the paper argues its predictor is the
// natural building block for progress estimation with confidence bands,
// since it supplies a distribution for the remaining work rather than a
// bare percentage. An Indicator starts from a per-operator prediction
// and, as operators complete, replaces their predicted time with the
// observed time — the remaining-work distribution tightens as the query
// runs.
package progress

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/stats"
)

// opState tracks one operator's contribution.
type opState struct {
	nodeID   int
	mean     float64
	variance float64
	done     bool
	observed float64
}

// Indicator tracks the execution of one predicted query.
type Indicator struct {
	ops []opState
	// covScale distributes the cross-operator covariance mass of the
	// original prediction proportionally to the remaining same-operator
	// variance, keeping the initial Remaining() consistent with the
	// prediction's total variance.
	covMass  float64
	totalVar float64
}

// New builds an indicator from a prediction's per-operator breakdown.
func New(pred *core.Prediction) *Indicator {
	ind := &Indicator{}
	var sameOpVar float64
	for _, op := range pred.PerOperator {
		ind.ops = append(ind.ops, opState{nodeID: op.NodeID, mean: op.Mean, variance: op.Var})
		sameOpVar += op.Var
	}
	ind.totalVar = pred.Dist.Var()
	ind.covMass = ind.totalVar - sameOpVar
	if ind.covMass < 0 {
		ind.covMass = 0
	}
	sort.Slice(ind.ops, func(i, j int) bool { return ind.ops[i].nodeID < ind.ops[j].nodeID })
	return ind
}

// CompleteOperator marks an operator finished with its observed time.
func (ind *Indicator) CompleteOperator(nodeID int, observed float64) error {
	for i := range ind.ops {
		if ind.ops[i].nodeID == nodeID {
			if ind.ops[i].done {
				return fmt.Errorf("progress: operator %d already completed", nodeID)
			}
			ind.ops[i].done = true
			ind.ops[i].observed = observed
			return nil
		}
	}
	return fmt.Errorf("progress: unknown operator %d", nodeID)
}

// Elapsed returns the observed time of completed operators.
func (ind *Indicator) Elapsed() float64 {
	var t float64
	for _, op := range ind.ops {
		if op.done {
			t += op.observed
		}
	}
	return t
}

// pendingMoments returns the mean and variance of the remaining work.
func (ind *Indicator) pendingMoments() (mean, variance float64) {
	var pendVar, sameOpVar float64
	for _, op := range ind.ops {
		sameOpVar += op.variance
		if !op.done {
			mean += op.mean
			pendVar += op.variance
		}
	}
	variance = pendVar
	// Attribute the covariance mass proportionally to the pending share
	// of the same-operator variance.
	if sameOpVar > 0 {
		variance += ind.covMass * (pendVar / sameOpVar)
	}
	return mean, variance
}

// Remaining returns the distribution of the remaining running time.
func (ind *Indicator) Remaining() stats.Normal {
	mean, variance := ind.pendingMoments()
	return stats.NormalFromVar(mean, variance)
}

// Fraction returns the completed fraction of the total predicted work
// (by expected cost), in [0, 1].
func (ind *Indicator) Fraction() float64 {
	var done, total float64
	for _, op := range ind.ops {
		total += op.mean
		if op.done {
			done += op.mean
		}
	}
	if total <= 0 {
		return 1
	}
	f := done / total
	if f > 1 {
		f = 1
	}
	return f
}

// ETA returns a central band of probability mass q for the total
// completion time (elapsed + remaining). The lower edge is clamped at
// the elapsed time: the query cannot finish in the past.
func (ind *Indicator) ETA(q float64) (lo, hi float64) {
	elapsed := ind.Elapsed()
	rem := ind.Remaining()
	if rem.Sigma == 0 {
		return elapsed + rem.Mu, elapsed + rem.Mu
	}
	rlo, rhi := rem.Interval(q)
	if rlo < 0 {
		rlo = 0
	}
	return elapsed + rlo, elapsed + rhi
}

// Done reports whether every operator has completed.
func (ind *Indicator) Done() bool {
	for _, op := range ind.ops {
		if !op.done {
			return false
		}
	}
	return true
}

// NumPending returns the count of operators still running.
func (ind *Indicator) NumPending() int {
	n := 0
	for _, op := range ind.ops {
		if !op.done {
			n++
		}
	}
	return n
}
