// Package datagen generates synthetic TPC-H-style databases with
// controllable Zipf skew, substituting for the TPC-H dbgen tool and the
// Microsoft skewed TPC-H generator used in the paper (Section 6.1).
//
// The skew parameter z matches the paper's convention: z = 0 yields
// uniform value distributions and larger z yields more skew; the paper's
// skewed databases use z = 1.
//
// Scale maps the paper's "1 GB" and "10 GB" databases onto laptop-sized
// row counts; what the predictor consumes is selectivity structure and
// relative table sizes, which are preserved.
package datagen

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/engine"
)

// Config controls database generation.
type Config struct {
	// ScaleFactor multiplies the TPC-H base row counts (SF 1 = 6M
	// lineitem rows). Scale1GB and Scale10GB are the defaults used by the
	// experiment harness.
	ScaleFactor float64
	// Zipf skew: 0 = uniform, 1 = the paper's skewed databases.
	Z float64
	// Seed makes generation deterministic.
	Seed int64
}

// Default scale factors for the two database sizes in the paper, chosen
// so experiments complete quickly in-memory while preserving the 10x
// size ratio.
const (
	Scale1GB  = 0.004
	Scale10GB = 0.04
)

// DateDays is the span of the order/ship date domain in days
// (1992-01-01 .. 1998-12-31, as in TPC-H).
const DateDays = 2557

// Base row counts at scale factor 1 (TPC-H specification).
const (
	baseSupplier = 10000
	baseCustomer = 150000
	basePart     = 200000
	basePartSupp = 800000
	baseOrders   = 1500000
	baseLineItem = 6000000
)

// Generate builds the database. Fixed-size dimension tables (region,
// nation) do not scale.
func Generate(cfg Config) *engine.DB {
	if cfg.ScaleFactor <= 0 {
		cfg.ScaleFactor = Scale1GB
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	g := &generator{cfg: cfg, r: r}
	db := engine.NewDB()
	db.Add(g.region())
	db.Add(g.nation())
	db.Add(g.supplier())
	db.Add(g.customer())
	db.Add(g.part())
	db.Add(g.partsupp())
	orders := g.orders()
	db.Add(orders)
	db.Add(g.lineitem(orders))
	return db
}

type generator struct {
	cfg Config
	r   *rand.Rand
}

func (g *generator) scaled(base int) int {
	n := int(math.Round(float64(base) * g.cfg.ScaleFactor))
	if n < 10 {
		n = 10
	}
	return n
}

// value draws a value from [0, domain) — uniform when z == 0, Zipf with
// exponent ~1+z otherwise. Zipf ranks are shuffled deterministically per
// (domain, salt) so different columns skew toward different values.
func (g *generator) value(domain int, salt int64) int64 {
	if domain <= 1 {
		return 0
	}
	if g.cfg.Z <= 0 {
		return int64(g.r.Intn(domain))
	}
	// rand.Zipf requires s > 1; map paper z in (0, ...] to s = 1 + z.
	z := rand.NewZipf(g.r, 1+g.cfg.Z, 1, uint64(domain-1))
	rank := int64(z.Uint64())
	// Spread the heavy ranks across the domain with an affine hash so
	// skewed columns are not all piled at 0.
	return (rank*2654435761 + salt) % int64(domain)
}

func (g *generator) region() *engine.Table {
	rows := make([][]int64, 5)
	for i := range rows {
		rows[i] = []int64{int64(i), int64(i)}
	}
	return engine.NewTable("region", []string{"r_regionkey", "r_name"}, rows)
}

func (g *generator) nation() *engine.Table {
	rows := make([][]int64, 25)
	for i := range rows {
		rows[i] = []int64{int64(i), int64(i % 5), int64(i)}
	}
	return engine.NewTable("nation", []string{"n_nationkey", "n_regionkey", "n_name"}, rows)
}

func (g *generator) supplier() *engine.Table {
	n := g.scaled(baseSupplier)
	rows := make([][]int64, n)
	for i := range rows {
		rows[i] = []int64{
			int64(i),           // s_suppkey
			g.value(25, 11),    // s_nationkey
			g.value(10000, 13), // s_acctbal (cents scale)
		}
	}
	return engine.NewTable("supplier", []string{"s_suppkey", "s_nationkey", "s_acctbal"}, rows)
}

func (g *generator) customer() *engine.Table {
	n := g.scaled(baseCustomer)
	rows := make([][]int64, n)
	for i := range rows {
		rows[i] = []int64{
			int64(i),           // c_custkey
			g.value(25, 17),    // c_nationkey
			g.value(10000, 19), // c_acctbal
			g.value(5, 23),     // c_mktsegment
		}
	}
	return engine.NewTable("customer",
		[]string{"c_custkey", "c_nationkey", "c_acctbal", "c_mktsegment"}, rows)
}

func (g *generator) part() *engine.Table {
	n := g.scaled(basePart)
	rows := make([][]int64, n)
	for i := range rows {
		rows[i] = []int64{
			int64(i),            // p_partkey
			g.value(25, 29),     // p_brand
			1 + g.value(50, 31), // p_size in 1..50
			g.value(40, 37),     // p_container
			g.value(2000, 41),   // p_retailprice
		}
	}
	return engine.NewTable("part",
		[]string{"p_partkey", "p_brand", "p_size", "p_container", "p_retailprice"}, rows)
}

func (g *generator) partsupp() *engine.Table {
	nPart := g.scaled(basePart)
	nSupp := g.scaled(baseSupplier)
	n := g.scaled(basePartSupp)
	rows := make([][]int64, n)
	for i := range rows {
		rows[i] = []int64{
			int64(i % nPart),   // ps_partkey (every part covered)
			g.value(nSupp, 43), // ps_suppkey
			g.value(1000, 47),  // ps_supplycost
			g.value(10000, 53), // ps_availqty
		}
	}
	return engine.NewTable("partsupp",
		[]string{"ps_partkey", "ps_suppkey", "ps_supplycost", "ps_availqty"}, rows)
}

func (g *generator) orders() *engine.Table {
	nCust := g.scaled(baseCustomer)
	n := g.scaled(baseOrders)
	rows := make([][]int64, n)
	for i := range rows {
		rows[i] = []int64{
			int64(i),              // o_orderkey
			g.value(nCust, 59),    // o_custkey
			g.value(DateDays, 61), // o_orderdate
			g.value(50000, 67),    // o_totalprice
			g.value(5, 71),        // o_orderpriority
		}
	}
	return engine.NewTable("orders",
		[]string{"o_orderkey", "o_custkey", "o_orderdate", "o_totalprice", "o_orderpriority"}, rows)
}

func (g *generator) lineitem(orders *engine.Table) *engine.Table {
	nPart := g.scaled(basePart)
	nSupp := g.scaled(baseSupplier)
	n := g.scaled(baseLineItem)
	nOrders := orders.NumRows()
	odIdx := orders.ColIndex("o_orderdate")
	rows := make([][]int64, n)
	for i := range rows {
		// Lineitems reference orders roughly uniformly (each order gets
		// ~4 lineitems), keeping the FK join selectivity realistic.
		okey := int64(i % nOrders)
		odate := orders.Rows[okey][odIdx]
		ship := odate + 1 + g.value(120, 73) // shipped within ~4 months
		if ship >= DateDays {
			ship = DateDays - 1
		}
		rows[i] = []int64{
			okey,                        // l_orderkey
			g.value(nPart, 79),          // l_partkey
			g.value(nSupp, 83),          // l_suppkey
			1 + g.value(50, 89),         // l_quantity in 1..50
			g.value(10000, 97),          // l_extendedprice
			g.value(11, 101),            // l_discount in 0..10 (percent)
			g.value(9, 103),             // l_tax
			ship,                        // l_shipdate
			ship + 1 + g.value(30, 107), // l_receiptdate
			g.value(3, 109),             // l_returnflag
			g.value(2, 113),             // l_linestatus
			g.value(7, 127),             // l_shipmode
		}
	}
	return engine.NewTable("lineitem", []string{
		"l_orderkey", "l_partkey", "l_suppkey", "l_quantity",
		"l_extendedprice", "l_discount", "l_tax", "l_shipdate",
		"l_receiptdate", "l_returnflag", "l_linestatus", "l_shipmode",
	}, rows)
}

// DBKind names the four databases of the paper's evaluation.
type DBKind int

// The four evaluation databases.
const (
	Uniform1G DBKind = iota
	Skewed1G
	Uniform10G
	Skewed10G
)

// String implements fmt.Stringer.
func (k DBKind) String() string {
	switch k {
	case Uniform1G:
		return "uniform-1G"
	case Skewed1G:
		return "skewed-1G"
	case Uniform10G:
		return "uniform-10G"
	case Skewed10G:
		return "skewed-10G"
	default:
		return fmt.Sprintf("DBKind(%d)", int(k))
	}
}

// ConfigFor returns the generation config for one of the paper's four
// databases at the given seed.
func ConfigFor(kind DBKind, seed int64) Config {
	switch kind {
	case Uniform1G:
		return Config{ScaleFactor: Scale1GB, Z: 0, Seed: seed}
	case Skewed1G:
		return Config{ScaleFactor: Scale1GB, Z: 1, Seed: seed}
	case Uniform10G:
		return Config{ScaleFactor: Scale10GB, Z: 0, Seed: seed}
	case Skewed10G:
		return Config{ScaleFactor: Scale10GB, Z: 1, Seed: seed}
	default:
		panic(fmt.Sprintf("datagen: unknown DBKind %d", int(kind)))
	}
}
