package datagen

import (
	"math"
	"testing"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{ScaleFactor: 0.002, Z: 0, Seed: 1})
	b := Generate(Config{ScaleFactor: 0.002, Z: 0, Seed: 1})
	la, _ := a.Table("lineitem")
	lb, _ := b.Table("lineitem")
	if la.NumRows() != lb.NumRows() {
		t.Fatalf("row counts differ: %d vs %d", la.NumRows(), lb.NumRows())
	}
	for i := range la.Rows {
		for j := range la.Rows[i] {
			if la.Rows[i][j] != lb.Rows[i][j] {
				t.Fatalf("row %d col %d differs", i, j)
			}
		}
	}
}

func TestGenerateAllTablesPresent(t *testing.T) {
	db := Generate(Config{ScaleFactor: 0.002, Seed: 2})
	for _, name := range []string{"region", "nation", "supplier", "customer",
		"part", "partsupp", "orders", "lineitem"} {
		tbl, err := db.Table(name)
		if err != nil {
			t.Fatalf("missing table %s", name)
		}
		if tbl.NumRows() == 0 {
			t.Errorf("table %s empty", name)
		}
	}
}

func TestScaleRatio(t *testing.T) {
	small := Generate(ConfigFor(Uniform1G, 1))
	big := Generate(ConfigFor(Uniform10G, 1))
	ls, _ := small.Table("lineitem")
	lb, _ := big.Table("lineitem")
	ratio := float64(lb.NumRows()) / float64(ls.NumRows())
	if ratio < 8 || ratio > 12 {
		t.Errorf("10G/1G lineitem ratio = %v, want ~10", ratio)
	}
}

func TestForeignKeysValid(t *testing.T) {
	db := Generate(Config{ScaleFactor: 0.002, Z: 1, Seed: 3})
	li, _ := db.Table("lineitem")
	orders, _ := db.Table("orders")
	cust, _ := db.Table("customer")
	nOrders := int64(orders.NumRows())
	ok := li.ColIndex("l_orderkey")
	for _, r := range li.Rows {
		if r[ok] < 0 || r[ok] >= nOrders {
			t.Fatalf("l_orderkey %d out of range", r[ok])
		}
	}
	nCust := int64(cust.NumRows())
	ck := orders.ColIndex("o_custkey")
	for _, r := range orders.Rows {
		if r[ck] < 0 || r[ck] >= nCust {
			t.Fatalf("o_custkey %d out of range", r[ck])
		}
	}
}

func TestSkewIncreasesConcentration(t *testing.T) {
	// Top-1 frequency of l_quantity should be much larger under z=1.
	top1 := func(z float64) float64 {
		db := Generate(Config{ScaleFactor: 0.004, Z: z, Seed: 4})
		li, _ := db.Table("lineitem")
		qi := li.ColIndex("l_quantity")
		counts := make(map[int64]int)
		for _, r := range li.Rows {
			counts[r[qi]]++
		}
		best := 0
		for _, c := range counts {
			if c > best {
				best = c
			}
		}
		return float64(best) / float64(li.NumRows())
	}
	u, s := top1(0), top1(1)
	if s < 2*u {
		t.Errorf("skewed top-1 frequency %v not much larger than uniform %v", s, u)
	}
}

func TestUniformValuesCoverDomain(t *testing.T) {
	db := Generate(Config{ScaleFactor: 0.004, Z: 0, Seed: 5})
	li, _ := db.Table("lineitem")
	qi := li.ColIndex("l_quantity")
	seen := make(map[int64]bool)
	for _, r := range li.Rows {
		if r[qi] < 1 || r[qi] > 50 {
			t.Fatalf("l_quantity %d out of 1..50", r[qi])
		}
		seen[r[qi]] = true
	}
	if len(seen) < 45 {
		t.Errorf("only %d distinct quantities; expected near-full coverage", len(seen))
	}
}

func TestShipdateWithinDomain(t *testing.T) {
	db := Generate(Config{ScaleFactor: 0.002, Z: 1, Seed: 6})
	li, _ := db.Table("lineitem")
	si := li.ColIndex("l_shipdate")
	for _, r := range li.Rows {
		if r[si] < 0 || r[si] >= DateDays {
			t.Fatalf("l_shipdate %d out of [0,%d)", r[si], DateDays)
		}
	}
}

func TestConfigForAllKinds(t *testing.T) {
	for _, k := range []DBKind{Uniform1G, Skewed1G, Uniform10G, Skewed10G} {
		cfg := ConfigFor(k, 7)
		if cfg.ScaleFactor <= 0 {
			t.Errorf("%v: bad scale", k)
		}
		skewed := k == Skewed1G || k == Skewed10G
		if skewed != (cfg.Z > 0) {
			t.Errorf("%v: z=%v", k, cfg.Z)
		}
		if k.String() == "" || math.IsNaN(cfg.ScaleFactor) {
			t.Errorf("%v: bad string/scale", k)
		}
	}
}

func TestTinyScaleClampsToMinimum(t *testing.T) {
	db := Generate(Config{ScaleFactor: 1e-9, Seed: 8})
	s, _ := db.Table("supplier")
	if s.NumRows() < 10 {
		t.Errorf("supplier rows = %d, want >= 10", s.NumRows())
	}
}
