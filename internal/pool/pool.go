// Package pool provides the bounded worker-pool primitive shared by the
// batch API and the experiment harness: fan item indices out over a
// fixed number of goroutines, each writing to its own slot, so results
// land in input order without locking.
package pool

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Run dispatches do(0..n-1) to a bounded worker pool and returns the
// per-item errors. workers <= 0 selects GOMAXPROCS; 1 degenerates to a
// serial loop. do(i) must confine its writes to slot i of caller-owned
// slices — slots are distinct, so no locking is needed.
func Run(n, workers int, do func(i int) error) []error {
	return RunCtx(context.Background(), n, workers, do)
}

// RunCtx is Run under a context: once ctx is done, workers stop invoking
// do and every not-yet-started item's error slot is filled with
// ctx.Err() instead, so a canceled batch drains promptly. Items already
// inside do when the context fires run to completion (do may itself
// observe ctx to cut long items short).
func RunCtx(ctx context.Context, n, workers int, do func(i int) error) []error {
	errs := make([]error, n)
	if n == 0 {
		return errs
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := ctx.Err(); err != nil {
					errs[i] = err
					continue
				}
				errs[i] = do(i)
			}
		}()
	}
	wg.Wait()
	return errs
}

// FirstError returns the lowest-index non-nil error, or nil.
func FirstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
