package solve

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func matFromRows(rows [][]float64) *Matrix {
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		for j, v := range r {
			m.Set(i, j, v)
		}
	}
	return m
}

func TestCholeskyKnown(t *testing.T) {
	a := matFromRows([][]float64{{4, 2}, {2, 3}})
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	// L = [[2,0],[1,sqrt(2)]]
	if math.Abs(l.At(0, 0)-2) > 1e-12 || math.Abs(l.At(1, 0)-1) > 1e-12 ||
		math.Abs(l.At(1, 1)-math.Sqrt2) > 1e-12 {
		t.Errorf("Cholesky = %+v", l)
	}
}

func TestCholeskySingular(t *testing.T) {
	a := matFromRows([][]float64{{1, 1}, {1, 1}})
	if _, err := Cholesky(a); err == nil {
		t.Error("expected error on singular matrix")
	}
}

func TestSolveSPD(t *testing.T) {
	a := matFromRows([][]float64{{4, 1, 0}, {1, 3, 1}, {0, 1, 2}})
	want := []float64{1, -2, 3}
	b := a.MulVec(want)
	got, err := SolveSPD(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-10 {
			t.Fatalf("SolveSPD = %v, want %v", got, want)
		}
	}
}

func TestLeastSquaresExact(t *testing.T) {
	// Overdetermined but consistent system recovers exact coefficients.
	a := NewMatrix(6, 2)
	want := []float64{2.5, -1}
	y := make([]float64, 6)
	for i := 0; i < 6; i++ {
		x := float64(i)
		a.Set(i, 0, x)
		a.Set(i, 1, 1)
		y[i] = want[0]*x + want[1]
	}
	got, err := LeastSquares(a, y)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-6 {
			t.Fatalf("LeastSquares = %v, want %v", got, want)
		}
	}
}

func TestNNLSMatchesUnconstrainedWhenInterior(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	a := NewMatrix(20, 3)
	truth := []float64{1.5, 0.7, 2.0} // all positive => constraint inactive
	y := make([]float64, 20)
	for i := 0; i < 20; i++ {
		var s float64
		for j := 0; j < 3; j++ {
			v := r.Float64()
			a.Set(i, j, v)
			s += v * truth[j]
		}
		y[i] = s
	}
	got, err := NNLS(a, y, nil)
	if err != nil {
		t.Fatal(err)
	}
	for j := range truth {
		if math.Abs(got[j]-truth[j]) > 1e-6 {
			t.Fatalf("NNLS = %v, want %v", got, truth)
		}
	}
}

func TestNNLSClampsNegative(t *testing.T) {
	// One-column system where the unconstrained optimum is negative.
	a := NewMatrix(3, 1)
	for i := 0; i < 3; i++ {
		a.Set(i, 0, 1)
	}
	y := []float64{-1, -2, -3}
	got, err := NNLS(a, y, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0 {
		t.Errorf("NNLS = %v, want [0]", got)
	}
}

func TestNNLSFreeIntercept(t *testing.T) {
	// y = -3 + 0*x: slope constrained >= 0, intercept free.
	a := NewMatrix(5, 2)
	y := make([]float64, 5)
	for i := 0; i < 5; i++ {
		a.Set(i, 0, float64(i))
		a.Set(i, 1, 1)
		y[i] = -3
	}
	got, err := NNLS(a, y, []bool{true, false})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got[0]) > 1e-8 || math.Abs(got[1]+3) > 1e-6 {
		t.Errorf("NNLS = %v, want [0 -3]", got)
	}
}

// Property: NNLS never returns a worse residual than the zero vector and
// never violates the constraints.
func TestNNLSProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows, cols := 8+r.Intn(10), 1+r.Intn(4)
		a := NewMatrix(rows, cols)
		y := make([]float64, rows)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				a.Set(i, j, r.NormFloat64())
			}
			y[i] = r.NormFloat64()
		}
		x, err := NNLS(a, y, nil)
		if err != nil {
			return false
		}
		for _, v := range x {
			if v < 0 {
				return false
			}
		}
		zero := make([]float64, cols)
		return Residual(a, x, y) <= Residual(a, zero, y)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: the NNLS solution satisfies the KKT conditions: for active
// coordinates (x_i = 0) the gradient is >= 0; for passive ones it is ~0.
func TestNNLSKKT(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows, cols := 10+r.Intn(10), 2+r.Intn(3)
		a := NewMatrix(rows, cols)
		y := make([]float64, rows)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				a.Set(i, j, r.Float64())
			}
			y[i] = r.NormFloat64() * 2
		}
		x, err := NNLS(a, y, nil)
		if err != nil {
			return false
		}
		// gradient g = A^T (A x - y)
		res := a.MulVec(x)
		for i := range res {
			res[i] -= y[i]
		}
		g := a.TransMulVec(res)
		for i, xi := range x {
			if xi > 1e-10 {
				if math.Abs(g[i]) > 1e-5 {
					return false
				}
			} else if g[i] < -1e-5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMatrixOps(t *testing.T) {
	a := matFromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	got := a.MulVec([]float64{1, 1})
	want := []float64{3, 7, 11}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("MulVec = %v", got)
		}
	}
	gt := a.TransMulVec([]float64{1, 1, 1})
	if gt[0] != 9 || gt[1] != 12 {
		t.Fatalf("TransMulVec = %v", gt)
	}
	g := a.Gram()
	if g.At(0, 0) != 35 || g.At(0, 1) != 44 || g.At(1, 1) != 56 {
		t.Fatalf("Gram = %+v", g)
	}
}
