// Package solve provides the small dense linear-algebra kit the predictor
// needs: least squares via normal equations with Cholesky, and a
// Lawson–Hanson non-negative least squares (NNLS) solver. NNLS is exactly
// the quadratic program of Section 4.2 of the paper,
//
//	minimize ||A b - y||  subject to  b_i >= 0,
//
// which the authors solved with Scilab's qpsolve; this package is the
// stdlib-only substitute.
package solve

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a linear system has no unique solution.
var ErrSingular = errors.New("solve: singular system")

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols
}

// NewMatrix returns a zeroed Rows x Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("solve: negative dimension")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// MulVec returns m * x.
func (m *Matrix) MulVec(x []float64) []float64 {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("solve: MulVec dimension mismatch %d vs %d", len(x), m.Cols))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out
}

// Gram returns A^T A (Cols x Cols, symmetric positive semidefinite).
func (m *Matrix) Gram() *Matrix {
	g := NewMatrix(m.Cols, m.Cols)
	for i := 0; i < m.Cols; i++ {
		for j := i; j < m.Cols; j++ {
			var s float64
			for r := 0; r < m.Rows; r++ {
				s += m.At(r, i) * m.At(r, j)
			}
			g.Set(i, j, s)
			g.Set(j, i, s)
		}
	}
	return g
}

// TransMulVec returns A^T y.
func (m *Matrix) TransMulVec(y []float64) []float64 {
	if len(y) != m.Rows {
		panic("solve: TransMulVec dimension mismatch")
	}
	out := make([]float64, m.Cols)
	for i := 0; i < m.Rows; i++ {
		yi := y[i]
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, v := range row {
			out[j] += v * yi
		}
	}
	return out
}

// Cholesky factors the symmetric positive-definite matrix a in place into
// the lower-triangular L with a = L L^T and returns L. A small diagonal
// jitter is retried once if the matrix is semidefinite up to roundoff.
func Cholesky(a *Matrix) (*Matrix, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("solve: Cholesky of non-square %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	l := NewMatrix(n, n)
	for j := 0; j < n; j++ {
		d := a.At(j, j)
		for k := 0; k < j; k++ {
			d -= l.At(j, k) * l.At(j, k)
		}
		if d <= 0 {
			return nil, ErrSingular
		}
		l.Set(j, j, math.Sqrt(d))
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			l.Set(i, j, s/l.At(j, j))
		}
	}
	return l, nil
}

// SolveSPD solves a x = b for symmetric positive-definite a using a
// Cholesky factorization.
func SolveSPD(a *Matrix, b []float64) ([]float64, error) {
	l, err := Cholesky(a)
	if err != nil {
		return nil, err
	}
	n := a.Rows
	// Forward substitution: L z = b.
	z := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= l.At(i, k) * z[k]
		}
		z[i] = s / l.At(i, i)
	}
	// Back substitution: L^T x = z.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := z[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * x[k]
		}
		x[i] = s / l.At(i, i)
	}
	return x, nil
}

// LeastSquares solves min ||A x - y||_2 via the normal equations with a
// small ridge term for numerical robustness on ill-conditioned probes.
func LeastSquares(a *Matrix, y []float64) ([]float64, error) {
	g := a.Gram()
	// Ridge proportional to the trace keeps the shift scale-free.
	var tr float64
	for i := 0; i < g.Rows; i++ {
		tr += g.At(i, i)
	}
	eps := 1e-12 * (tr/float64(g.Rows) + 1)
	for i := 0; i < g.Rows; i++ {
		g.Set(i, i, g.At(i, i)+eps)
	}
	return SolveSPD(g, a.TransMulVec(y))
}

// NNLS solves min ||A x - y||_2 subject to x >= 0 using the classical
// Lawson–Hanson active-set algorithm. nonneg[i] == false exempts
// coordinate i from the constraint (the paper constrains only the
// leading coefficients; intercepts are free).
func NNLS(a *Matrix, y []float64, nonneg []bool) ([]float64, error) {
	n := a.Cols
	if nonneg == nil {
		nonneg = make([]bool, n)
		for i := range nonneg {
			nonneg[i] = true
		}
	}
	if len(nonneg) != n {
		return nil, fmt.Errorf("solve: NNLS constraint mask length %d, want %d", len(nonneg), n)
	}

	x := make([]float64, n)
	passive := make([]bool, n)
	// Unconstrained coordinates start in the passive (free) set.
	for i, c := range nonneg {
		if !c {
			passive[i] = true
		}
	}

	solveSubset := func() ([]float64, error) {
		idx := make([]int, 0, n)
		for i, p := range passive {
			if p {
				idx = append(idx, i)
			}
		}
		if len(idx) == 0 {
			return make([]float64, n), nil
		}
		sub := NewMatrix(a.Rows, len(idx))
		for r := 0; r < a.Rows; r++ {
			for c, j := range idx {
				sub.Set(r, c, a.At(r, j))
			}
		}
		zs, err := LeastSquares(sub, y)
		if err != nil {
			return nil, err
		}
		full := make([]float64, n)
		for c, j := range idx {
			full[j] = zs[c]
		}
		return full, nil
	}

	const maxOuter = 300
	// Initialize free (unconstrained) coordinates to their least-squares
	// values so the KKT test below sees the correct residual.
	if anyFree := func() bool {
		for _, p := range passive {
			if p {
				return true
			}
		}
		return false
	}(); anyFree {
		z, err := solveSubset()
		if err != nil {
			return nil, err
		}
		copy(x, z)
	}
	for outer := 0; outer < maxOuter; outer++ {
		// Gradient of 0.5||Ax-y||^2 is A^T(Ax - y); w = -gradient.
		r := a.MulVec(x)
		for i := range r {
			r[i] = y[i] - r[i]
		}
		w := a.TransMulVec(r)

		// Find the most violated KKT coordinate among active constraints.
		best, bestW := -1, 1e-10
		for i := 0; i < n; i++ {
			if !passive[i] && nonneg[i] && w[i] > bestW {
				best, bestW = i, w[i]
			}
		}
		if best < 0 {
			return x, nil // KKT satisfied
		}
		passive[best] = true

		for inner := 0; inner < maxOuter; inner++ {
			z, err := solveSubset()
			if err != nil {
				return nil, err
			}
			// Feasible? Then accept.
			feasible := true
			for i := 0; i < n; i++ {
				if passive[i] && nonneg[i] && z[i] <= 0 {
					feasible = false
					break
				}
			}
			if feasible {
				copy(x, z)
				break
			}
			// Step toward z as far as feasibility allows.
			alpha := math.Inf(1)
			for i := 0; i < n; i++ {
				if passive[i] && nonneg[i] && z[i] <= 0 {
					if d := x[i] - z[i]; d > 0 {
						if t := x[i] / d; t < alpha {
							alpha = t
						}
					}
				}
			}
			if math.IsInf(alpha, 1) {
				alpha = 0
			}
			for i := 0; i < n; i++ {
				if passive[i] {
					x[i] += alpha * (z[i] - x[i])
				}
			}
			// Move coordinates that hit the bound back to the active set.
			for i := 0; i < n; i++ {
				if passive[i] && nonneg[i] && x[i] <= 1e-14 {
					x[i] = 0
					passive[i] = false
				}
			}
		}
	}
	return x, nil // best effort after iteration cap
}

// Residual returns ||A x - y||_2.
func Residual(a *Matrix, x, y []float64) float64 {
	r := a.MulVec(x)
	var s float64
	for i := range r {
		d := r[i] - y[i]
		s += d * d
	}
	return math.Sqrt(s)
}
