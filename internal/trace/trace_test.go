package trace

import (
	"bytes"
	"reflect"
	"testing"
)

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]Level{
		"": Off, "off": Off, "decisions": Decisions, "full": Full,
	} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
		if got.String() != "off" && got.String() != "decisions" && got.String() != "full" {
			t.Errorf("Level %v stringifies to %q", got, got.String())
		}
	}
	if _, err := ParseLevel("verbose"); err == nil {
		t.Error("ParseLevel accepted an unknown level")
	}
}

func TestBufferLevels(t *testing.T) {
	b := NewBuffer(Decisions)
	if b.Enabled(Off) {
		t.Error("Enabled(Off) true: Off-level events must never be constructed")
	}
	if !b.Enabled(Decisions) || b.Enabled(Full) {
		t.Errorf("Decisions buffer gates wrong: decisions=%v full=%v",
			b.Enabled(Decisions), b.Enabled(Full))
	}
	off := NewBuffer(Off)
	if off.Enabled(Decisions) || off.Enabled(Full) {
		t.Error("Off buffer records")
	}
}

func TestBufferSequencesAndCopies(t *testing.T) {
	b := NewBuffer(Full)
	ev := Event{Kind: KindAdmission, Tenant: "alpha", Verdict: "admit"}
	b.Record(&ev)
	ev.Tenant = "mutated" // caller reuse must not leak into the buffer
	b.Record(&ev)
	got := b.Events()
	if len(got) != 2 || got[0].Seq != 0 || got[1].Seq != 1 {
		t.Fatalf("sequence numbers wrong: %+v", got)
	}
	if got[0].Tenant != "alpha" || got[1].Tenant != "mutated" {
		t.Errorf("Record did not copy: %+v", got)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	events := []Event{
		{Seq: 0, Kind: KindPlacement, At: 0.5, Machine: 2, Tenant: "gold",
			Query: "gold/q1#00000", Router: "least-risk", TieBreak: "risk",
			Candidates: []Candidate{
				{Machine: 0, QueueLen: 1, WaitMean: 0.2, PredMean: 0.4, PredSigma: 0.1, PMeet: 0.7},
				{Machine: 1, WaitMean: 0, PredMean: 0.3, PredSigma: 0.05, PMeet: 0.97},
			}},
		{Seq: 1, Kind: KindAdmission, At: 0.5, Machine: 2, Tenant: "gold",
			ID: 7, Verdict: "admit", Deadline: 0.9, PredMean: 0.3, PMeet: 0.97, Threshold: 0.9},
		{Seq: 2, Kind: KindOutcome, At: 0.9, Machine: 2, Tenant: "gold",
			ID: 7, Start: 0.5, Finish: 0.9, Elapsed: 0.4, Met: true},
		{Seq: 3, Kind: KindRecalibration, At: 1.0, Machine: 2, Tenant: "gold",
			Advised: true, Recalibrated: true},
	}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, events); err != nil {
		t.Fatal(err)
	}
	if n := bytes.Count(buf.Bytes(), []byte("\n")); n != len(events) {
		t.Errorf("JSONL has %d lines, want %d", n, len(events))
	}
	back, err := ReadJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, events) {
		t.Errorf("round trip mismatch:\n%+v\nvs\n%+v", back, events)
	}

	// Byte-determinism of the serialization itself.
	var buf2 bytes.Buffer
	if err := WriteJSONL(&buf2, events); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("WriteJSONL is not byte-deterministic")
	}
}

func TestTallyByTenant(t *testing.T) {
	events := []Event{
		{Kind: KindAdmission, Tenant: "a", Verdict: "admit"},
		{Kind: KindAdmission, Tenant: "a", Verdict: "reject"},
		{Kind: KindAdmission, Tenant: "a", Verdict: "admit"},
		{Kind: KindOutcome, Tenant: "a", Met: true},
		{Kind: KindOutcome, Tenant: "a", Met: false},
		{Kind: KindAdmission, Tenant: "b", Verdict: "admit"},
		{Kind: KindOutcome, Tenant: "b", Met: true},
		{Kind: KindPlacement, Tenant: "b"}, // placements don't count
	}
	got := TallyByTenant(events)
	want := map[string]Tally{
		"a": {Submitted: 3, Admitted: 2, Rejected: 1, Executed: 2, Met: 1},
		"b": {Submitted: 1, Admitted: 1, Executed: 1, Met: 1},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("TallyByTenant = %+v, want %+v", got, want)
	}
	if a := got["a"].Attainment(); a != 1.0/3.0 {
		t.Errorf("attainment = %v, want 1/3", a)
	}
	if (Tally{}).Attainment() != 0 {
		t.Error("empty tally attainment not 0")
	}
}
