package trace

import "testing"

func placement(chosen int, cands ...Candidate) Event {
	return Event{Kind: KindPlacement, Machine: chosen, Candidates: cands}
}

func TestCounterfactualK(t *testing.T) {
	events := []Event{
		// Router took the strictly best machine: no regret at any k.
		placement(0,
			Candidate{Machine: 0, PMeet: 0.95},
			Candidate{Machine: 1, PMeet: 0.80},
			Candidate{Machine: 2, PMeet: 0.60}),
		// Router conceded strict risk (tie-break took machine 2): the
		// rank-1 AND rank-2 candidates both beat the chosen machine.
		placement(2,
			Candidate{Machine: 0, PMeet: 0.90},
			Candidate{Machine: 1, PMeet: 0.85},
			Candidate{Machine: 2, PMeet: 0.70}),
		// Load-only router: no probabilities recorded — never scored.
		placement(1,
			Candidate{Machine: 0, QueueLen: 3},
			Candidate{Machine: 1, QueueLen: 1}),
		// Non-placement events are ignored entirely.
		{Kind: KindAdmission, Verdict: "admit"},
	}

	s1 := CounterfactualK(events, 1)
	if s1.Placements != 3 || s1.Scored != 2 || s1.KthBetter != 1 {
		t.Fatalf("k=1: %+v", s1)
	}
	s2 := CounterfactualK(events, 2)
	if s2.Scored != 2 || s2.KthBetter != 1 {
		t.Fatalf("k=2: %+v", s2)
	}
	if got := s2.Rate(); got != 0.5 {
		t.Fatalf("k=2 rate = %v, want 0.5", got)
	}
	// k beyond the candidate count: placements counted, nothing scored.
	s9 := CounterfactualK(events, 9)
	if s9.Placements != 3 || s9.Scored != 0 || s9.Rate() != 0 {
		t.Fatalf("k=9: %+v", s9)
	}
}

// Ties within the router's epsilon are not regret: equal probabilities
// rank by wait then machine index, and the comparison requires a
// strict improvement beyond the epsilon.
func TestCounterfactualKTies(t *testing.T) {
	events := []Event{
		placement(1,
			Candidate{Machine: 0, PMeet: 0.9, WaitMean: 0.5},
			Candidate{Machine: 1, PMeet: 0.9, WaitMean: 0.1}),
	}
	s := CounterfactualK(events, 1)
	if s.Scored != 1 || s.KthBetter != 0 {
		t.Fatalf("tie must not count as regret: %+v", s)
	}
}
