package trace

import "sort"

// counterfactualEps matches the router's risk-comparison tolerance:
// probability differences below it are ties, not regret.
const counterfactualEps = 1e-9

// CounterfactualSummary tallies, over the placement decisions of one
// trace, how the router's k-th choice (ranked by recorded P(meet))
// compared against the machine actually chosen.
type CounterfactualSummary struct {
	// K is the 1-based rank inspected (K=2 asks "what about the
	// router's second choice?").
	K int `json:"k"`
	// Placements is the number of placement events seen; Scored is how
	// many carried a candidate vector with P(meet) data and at least K
	// candidates (load-only routers record no probabilities and are
	// never scored).
	Placements int `json:"placements"`
	Scored     int `json:"scored"`
	// KthBetter counts scored placements where the k-th ranked
	// candidate's P(meet) strictly exceeded the chosen machine's —
	// decisions where the recorded scoring vector says a different
	// machine looked strictly safer than the one taken.
	KthBetter int `json:"kth_better"`
}

// Rate is KthBetter over Scored; zero when nothing was scored.
func (s CounterfactualSummary) Rate() float64 {
	if s.Scored == 0 {
		return 0
	}
	return float64(s.KthBetter) / float64(s.Scored)
}

// CounterfactualK replays every recorded placement decision against
// its own candidate scoring vector: candidates are ranked by P(meet)
// descending (ties broken toward less expected wait, then lower
// machine index — the router's own preference order), and the k-th
// ranked candidate is compared against the machine the router actually
// chose. For a pure risk router the count measures how often
// tie-breaking and CDF saturation conceded strict risk; for replayed
// or hybrid policies it measures forgone probability mass — BLIS-style
// counterfactual-K analysis from the trace alone, no re-simulation.
//
// k is 1-based. Placements without probability data (round-robin,
// least-queue) or with fewer than k candidates are counted in
// Placements but not Scored.
func CounterfactualK(events []Event, k int) CounterfactualSummary {
	s := CounterfactualSummary{K: k}
	if k < 1 {
		return s
	}
	var ranked []int
	for i := range events {
		ev := &events[i]
		if ev.Kind != KindPlacement {
			continue
		}
		s.Placements++
		cands := ev.Candidates
		if len(cands) < k {
			continue
		}
		// Load-only routers leave every PMeet zero; skip those vectors —
		// there is no recorded probability to rank by.
		scored := false
		for j := range cands {
			if cands[j].PMeet != 0 {
				scored = true
				break
			}
		}
		if !scored {
			continue
		}
		chosen := -1
		for j := range cands {
			if cands[j].Machine == ev.Machine {
				chosen = j
				break
			}
		}
		if chosen < 0 {
			continue
		}
		s.Scored++
		ranked = ranked[:0]
		for j := range cands {
			ranked = append(ranked, j)
		}
		sort.SliceStable(ranked, func(a, b int) bool {
			ca, cb := &cands[ranked[a]], &cands[ranked[b]]
			if ca.PMeet != cb.PMeet {
				return ca.PMeet > cb.PMeet
			}
			if ca.WaitMean != cb.WaitMean {
				return ca.WaitMean < cb.WaitMean
			}
			return ca.Machine < cb.Machine
		})
		kth := &cands[ranked[k-1]]
		if kth.PMeet > cands[chosen].PMeet+counterfactualEps {
			s.KthBetter++
		}
	}
	return s
}
