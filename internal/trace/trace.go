// Package trace records the serving stack's decisions as structured
// events: every admission verdict with the distribution it was decided
// on, every placement with the full per-machine candidate scoring
// vector, every execution outcome, and every recalibration. The paper's
// pitch is that predicted *distributions* drive decisions; this package
// makes each such decision inspectable after the fact — the substrate
// for counterfactual replay (sim.Replay) and for policy search over
// sim.Fitness.
//
// The package depends only on the standard library, so every layer
// (serve, sim, cmd) can emit into it without import cycles.
//
// Emission is pull-gated: producers hold a Recorder and guard each
// event with Enabled(level), so a nil or switched-off recorder costs
// one branch (and zero allocations) per decision. Event streams are
// deterministic for a deterministic producer — the simulator assigns
// sequence numbers in event order regardless of GOMAXPROCS or its
// parallelism setting — and serialize as JSONL (one Event per line),
// byte-identical per (scenario, seed).
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// Level selects how much is recorded.
type Level int

const (
	// Off records nothing.
	Off Level = iota
	// Decisions records admissions and placements — everything needed
	// to diff two runs' policy decisions.
	Decisions
	// Full adds execution outcomes and recalibrations — everything
	// needed to reconstruct per-tenant SLO attainment from the trace
	// alone.
	Full
)

// String implements fmt.Stringer.
func (l Level) String() string {
	switch l {
	case Off:
		return "off"
	case Decisions:
		return "decisions"
	case Full:
		return "full"
	}
	return fmt.Sprintf("Level(%d)", int(l))
}

// ParseLevel parses a level name; "" selects Off.
func ParseLevel(s string) (Level, error) {
	switch s {
	case "", "off":
		return Off, nil
	case "decisions":
		return Decisions, nil
	case "full":
		return Full, nil
	}
	return Off, fmt.Errorf("trace: unknown level %q (want off, decisions, or full)", s)
}

// Kind distinguishes the event shapes sharing the flat Event struct.
type Kind string

const (
	// KindPlacement is a router picking a machine for an arrival; the
	// event carries the per-machine candidate scoring vector and the
	// tie-break reason. Recorded at Decisions.
	KindPlacement Kind = "placement"
	// KindAdmission is the admission controller's verdict on one
	// submitted request, with the predicted distribution, queue-wait
	// estimate, P(T_wait+T_q<=d), and the SLO threshold it was judged
	// against. Recorded at Decisions.
	KindAdmission Kind = "admission"
	// KindOutcome is one admitted request finishing (or failing)
	// execution. Recorded at Full.
	KindOutcome Kind = "outcome"
	// KindRecalibration is one tenant's units being recalibrated (or a
	// cadence check declining to). Recorded at Full.
	KindRecalibration Kind = "recalibration"
	// KindCalibration is one (predicted distribution, observed time)
	// pair from an executed request — the calibration observatory's raw
	// stream. Recorded only when calibration streaming is requested
	// (`uaqp sim -calib`), independent of the decision trace level, and
	// sequence-numbered on its own counter so enabling it never
	// perturbs the decision stream's bytes.
	KindCalibration Kind = "calibration"
)

// Candidate is one machine's score in a placement decision, in machine
// order. Risk routers fill the prediction fields; load-only routers
// leave them zero.
type Candidate struct {
	Machine  int `json:"machine"`
	QueueLen int `json:"queue_len"`
	// WaitMean/WaitVar are the machine's predicted queue backlog at
	// decision time (T_wait).
	WaitMean float64 `json:"wait_mean"`
	WaitVar  float64 `json:"wait_var,omitempty"`
	// PredMean/PredSigma are the query's predicted running time on this
	// machine (per-machine units on labeled fleets); PMeet is
	// P(T_wait + T_q <= d).
	PredMean  float64 `json:"pred_mean,omitempty"`
	PredSigma float64 `json:"pred_sigma,omitempty"`
	PMeet     float64 `json:"p_meet,omitempty"`
}

// Event is one recorded decision. A single flat struct covers all
// kinds (fields irrelevant to a kind stay zero and are omitted from
// the JSON), so streams diff positionally without type dispatch.
type Event struct {
	// Seq is the event's position in the deterministic global order;
	// assigned by the collecting Recorder.
	Seq uint64 `json:"seq"`
	// Kind selects the shape; At is the virtual time of the decision.
	Kind Kind    `json:"kind"`
	At   float64 `json:"at"`
	// Machine is the deciding (placement: chosen) machine index; -1 on
	// front-door events, which are decided before any machine is.
	Machine int `json:"machine"`
	// Shard names the serving shard the decision belongs to on sharded
	// topologies; empty — and omitted — otherwise.
	Shard  string `json:"shard,omitempty"`
	Tenant string `json:"tenant,omitempty"`
	Query  string `json:"query,omitempty"`
	// ID is the server-assigned admission ID (admission/outcome).
	ID uint64 `json:"id,omitempty"`

	// Placement fields.
	Router     string      `json:"router,omitempty"`
	Candidates []Candidate `json:"candidates,omitempty"`
	// TieBreak names the comparison that selected the winner: "risk"
	// (higher P(meet)), "wait" (least expected wait among equally safe
	// machines), or "rotation" (round-robin).
	TieBreak string `json:"tie_break,omitempty"`

	// Admission fields. Verdict is "admit" or "reject"; Threshold is
	// the tenant's SLO confidence PMeet was judged against.
	Verdict        string  `json:"verdict,omitempty"`
	Reason         string  `json:"reason,omitempty"`
	Deadline       float64 `json:"deadline,omitempty"`
	PredMean       float64 `json:"pred_mean,omitempty"`
	PredSigma      float64 `json:"pred_sigma,omitempty"`
	QueueWaitMean  float64 `json:"queue_wait_mean,omitempty"`
	QueueWaitSigma float64 `json:"queue_wait_sigma,omitempty"`
	PMeet          float64 `json:"p_meet,omitempty"`
	Threshold      float64 `json:"threshold,omitempty"`
	QueueLen       int     `json:"queue_len,omitempty"`

	// Outcome fields.
	Start   float64 `json:"start,omitempty"`
	Finish  float64 `json:"finish,omitempty"`
	Elapsed float64 `json:"elapsed,omitempty"`
	Met     bool    `json:"met,omitempty"`

	// Recalibration fields. The Drift* fields snapshot the feedback
	// window the verdict was based on — the window recalibration resets,
	// preserved here so post-hoc analysis can see why a recal fired:
	// DriftObservations is the window's observation count, DriftUnit the
	// cost unit with the largest absolute coverage drift, and
	// MaxCoverageDrift that unit's worst signed drift (observed -
	// nominal coverage).
	Advised           bool    `json:"advised,omitempty"`
	Recalibrated      bool    `json:"recalibrated,omitempty"`
	DriftObservations int     `json:"drift_observations,omitempty"`
	DriftUnit         string  `json:"drift_unit,omitempty"`
	MaxCoverageDrift  float64 `json:"max_coverage_drift,omitempty"`

	// Calibration fields (KindCalibration reuses PredMean/PredSigma for
	// the predicted distribution and Elapsed for the observed time).
	// Unit is the cost unit dominating the predicted mean.
	Unit string `json:"unit,omitempty"`
}

// Recorder receives decision events. Producers MUST guard every
// emission with Enabled, so a disabled recorder never pays for event
// construction:
//
//	if rec != nil && rec.Enabled(trace.Decisions) {
//		rec.Record(&trace.Event{...})
//	}
//
// Record takes a pointer the recorder copies from; the caller keeps
// ownership and may reuse the value. Implementations used by
// concurrent producers (a live HTTP server) must be safe for
// concurrent use; the simulator hands each machine its own recorder
// and merges machine-side stagings in deterministic event order.
type Recorder interface {
	Enabled(Level) bool
	Record(*Event)
}

// Buffer is a mutex-guarded in-memory Recorder: it stamps sequence
// numbers in arrival order and accumulates copies of the events. Safe
// for concurrent use.
type Buffer struct {
	level Level

	mu     sync.Mutex
	events []Event
}

// NewBuffer returns a Buffer recording events up to level.
func NewBuffer(level Level) *Buffer { return &Buffer{level: level} }

// Enabled reports whether events at l are recorded.
func (b *Buffer) Enabled(l Level) bool { return l > Off && l <= b.level }

// Record appends a copy of ev, assigning the next sequence number.
func (b *Buffer) Record(ev *Event) {
	b.mu.Lock()
	e := *ev
	e.Seq = uint64(len(b.events))
	b.events = append(b.events, e)
	b.mu.Unlock()
}

// Events returns a snapshot copy of the recorded events.
func (b *Buffer) Events() []Event {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]Event(nil), b.events...)
}

// WriteJSONL writes events one JSON object per line — the
// deterministic interchange format (`uaqp sim -trace`): Go's JSON
// encoding of a fixed event sequence is byte-stable, so same scenario
// + seed produces byte-identical files.
func WriteJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range events {
		if err := enc.Encode(&events[i]); err != nil {
			return fmt.Errorf("trace: encode event %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadJSONL decodes a JSONL stream written by WriteJSONL.
func ReadJSONL(r io.Reader) ([]Event, error) {
	var events []Event
	dec := json.NewDecoder(r)
	for dec.More() {
		var ev Event
		if err := dec.Decode(&ev); err != nil {
			return nil, fmt.Errorf("trace: decode event %d: %w", len(events), err)
		}
		events = append(events, ev)
	}
	return events, nil
}

// Tally aggregates one tenant's decision events.
type Tally struct {
	Submitted int `json:"submitted"`
	Admitted  int `json:"admitted"`
	Rejected  int `json:"rejected"`
	Executed  int `json:"executed"`
	Met       int `json:"met"`
}

// Attainment is deadlines met over submitted — the same end-to-end
// goodput definition the simulator's Report uses, reconstructed from
// the trace alone (requires a Full-level trace for the Met counts).
func (t Tally) Attainment() float64 {
	if t.Submitted == 0 {
		return 0
	}
	return float64(t.Met) / float64(t.Submitted)
}

// TallyByTenant reconstructs per-tenant admission/outcome counts from
// an event stream.
func TallyByTenant(events []Event) map[string]Tally {
	out := make(map[string]Tally)
	for i := range events {
		ev := &events[i]
		t := out[ev.Tenant]
		switch ev.Kind {
		case KindAdmission:
			t.Submitted++
			if ev.Verdict == "admit" {
				t.Admitted++
			} else {
				t.Rejected++
			}
		case KindOutcome:
			t.Executed++
			if ev.Met {
				t.Met++
			}
		default:
			continue
		}
		out[ev.Tenant] = t
	}
	return out
}
