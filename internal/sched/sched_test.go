package sched

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func job(name string, mean, sigma, deadline, actual float64) Job {
	return Job{Name: name, Dist: stats.NewNormal(mean, sigma), Deadline: deadline, Actual: actual}
}

func TestFCFSKeepsOrder(t *testing.T) {
	jobs := []Job{job("a", 3, 0.1, 0, 3), job("b", 1, 0.1, 0, 1), job("c", 2, 0.1, 0, 2)}
	got := FCFS{}.Order(jobs)
	for i, ji := range got {
		if ji != i {
			t.Fatalf("FCFS order %v", got)
		}
	}
}

func TestSJFMeanSortsAscending(t *testing.T) {
	jobs := []Job{job("a", 3, 0.1, 0, 3), job("b", 1, 0.1, 0, 1), job("c", 2, 0.1, 0, 2)}
	got := SJFMean{}.Order(jobs)
	want := []int{1, 2, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SJF order %v, want %v", got, want)
		}
	}
}

func TestSJFQuantilePenalizesUncertainty(t *testing.T) {
	// Same mean, different sigma: the uncertain job goes later under a
	// high quantile.
	jobs := []Job{job("risky", 2, 1.0, 0, 2), job("safe", 2, 0.01, 0, 2)}
	got := SJFQuantile{Q: 0.9}.Order(jobs)
	if got[0] != 1 {
		t.Errorf("expected safe job first, got %v", got)
	}
}

func TestEDFOrdersByDeadline(t *testing.T) {
	jobs := []Job{job("late", 1, 0.1, 10, 1), job("soon", 1, 0.1, 2, 1), job("none", 1, 0.1, 0, 1)}
	got := EDF{}.Order(jobs)
	if got[0] != 1 || got[2] != 2 {
		t.Errorf("EDF order %v", got)
	}
}

func TestSimulateMetrics(t *testing.T) {
	jobs := []Job{
		job("a", 1, 0.1, 1.5, 1), // finishes at 1, meets 1.5
		job("b", 2, 0.1, 2.0, 2), // finishes at 3, misses 2.0 by 1
	}
	m := Simulate(jobs, FCFS{})
	if m.DeadlineMiss != 1 {
		t.Errorf("misses=%d, want 1", m.DeadlineMiss)
	}
	if math.Abs(m.Tardiness-1) > 1e-12 {
		t.Errorf("tardiness=%v, want 1", m.Tardiness)
	}
	if math.Abs(m.MeanFlowTime-2) > 1e-12 { // (1+3)/2
		t.Errorf("flow=%v, want 2", m.MeanFlowTime)
	}
	if m.TotalDuration != 3 {
		t.Errorf("duration=%v", m.TotalDuration)
	}
}

func TestRiskSlackBeatsMeanOnRiskyJobs(t *testing.T) {
	// Construct the paper's motivating situation: two jobs with similar
	// means but very different uncertainty, and deadlines such that
	// running the risky job first blows the safe job's deadline exactly
	// when the risky job runs long.
	// The risky job has the smaller mean, so SJF-mean runs it first; but
	// its long tail routinely blows the safe job's tight deadline. The
	// distribution-based policy sees that running the safe job first is
	// nearly free and schedules it ahead.
	r := rand.New(rand.NewSource(1))
	var meanMisses, distMisses int
	for trial := 0; trial < 300; trial++ {
		risky := job("risky", 1.8, 1.2, 6.0, 1.8+1.2*r.NormFloat64())
		if risky.Actual < 0.1 {
			risky.Actual = 0.1
		}
		safe := job("safe", 1.9, 0.05, 2.2, 1.9+0.05*r.NormFloat64())
		jobs := []Job{risky, safe}
		meanMisses += Simulate(jobs, SJFMean{}).DeadlineMiss
		distMisses += Simulate(jobs, RiskSlack{Q: 0.9}).DeadlineMiss
	}
	if distMisses >= meanMisses {
		t.Errorf("distribution-based scheduler missed %d vs mean-based %d",
			distMisses, meanMisses)
	}
}

func TestCompareRunsAllPolicies(t *testing.T) {
	jobs := []Job{job("a", 1, 0.1, 2, 1), job("b", 2, 0.3, 5, 2)}
	ms := Compare(jobs, FCFS{}, SJFMean{}, SJFQuantile{Q: 0.9}, EDF{}, RiskSlack{Q: 0.9})
	if len(ms) != 5 {
		t.Fatalf("got %d metric sets", len(ms))
	}
	names := map[string]bool{}
	for _, m := range ms {
		names[m.Policy] = true
		if m.TotalDuration != 3 {
			t.Errorf("%s: duration %v, want 3", m.Policy, m.TotalDuration)
		}
	}
	if len(names) != 5 {
		t.Error("duplicate policy names")
	}
}

// Property: every policy returns a permutation, and total duration is
// invariant across policies.
func TestPoliciesArePermutations(t *testing.T) {
	policies := []Policy{FCFS{}, SJFMean{}, SJFQuantile{Q: 0.8}, EDF{}, RiskSlack{Q: 0.8}}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(12)
		jobs := make([]Job, n)
		var total float64
		for i := range jobs {
			a := 0.1 + r.Float64()*3
			var dl float64
			if r.Intn(2) == 0 {
				dl = r.Float64() * 10
			}
			jobs[i] = job("j", a, r.Float64(), dl, a)
			total += a
		}
		for _, p := range policies {
			order := p.Order(jobs)
			if len(order) != n {
				return false
			}
			seen := make([]bool, n)
			for _, ji := range order {
				if ji < 0 || ji >= n || seen[ji] {
					return false
				}
				seen[ji] = true
			}
			if m := Simulate(jobs, p); math.Abs(m.TotalDuration-total) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestCompareParallelMatchesCompare(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	jobs := make([]Job, 24)
	for i := range jobs {
		mu := 0.5 + r.Float64()*3
		jobs[i] = job(fmt.Sprintf("j%d", i), mu, mu*0.2, mu*2.5, mu+r.NormFloat64()*mu*0.2)
	}
	policies := []Policy{FCFS{}, SJFMean{}, SJFQuantile{Q: 0.9}, EDF{}, RiskSlack{Q: 0.9}}
	serial := Compare(jobs, policies...)
	parallel := CompareParallel(jobs, policies...)
	if len(parallel) != len(serial) {
		t.Fatalf("got %d metric sets, want %d", len(parallel), len(serial))
	}
	for i := range serial {
		if parallel[i] != serial[i] {
			t.Errorf("policy %s: parallel %+v != serial %+v",
				serial[i].Policy, parallel[i], serial[i])
		}
	}
}

func TestMakeJobs(t *testing.T) {
	names := []string{"a", "b"}
	dists := []stats.Normal{stats.NewNormal(1, 0.1), stats.NewNormal(2, 0.2)}
	deadlines := []float64{3, 5}
	actuals := []float64{1.1, 1.9}
	jobs, err := MakeJobs(names, dists, deadlines, actuals)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 2 || jobs[1].Name != "b" || jobs[1].Dist.Mu != 2 ||
		jobs[0].Deadline != 3 || jobs[0].Actual != 1.1 {
		t.Errorf("MakeJobs = %+v", jobs)
	}
	if _, err := MakeJobs(names, dists[:1], deadlines, actuals); err == nil {
		t.Error("expected mismatch error")
	}
}
