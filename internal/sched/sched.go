// Package sched implements distribution-based query scheduling
// (Section 6.5.3 of the paper, following Chi et al. [14]): scheduling
// policies that consume the predictor's running-time *distributions*
// rather than point estimates, plus a single-server simulator and the
// metrics (deadline misses, total tardiness, mean flow time) needed to
// compare policies.
//
// This is one of the downstream applications the paper argues become
// possible once distributional information is available; the package
// makes the claim concrete and testable.
package sched

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/stats"
)

// Job is one query awaiting execution.
type Job struct {
	Name string
	// Dist is the predicted running-time distribution.
	Dist stats.Normal
	// Deadline is the absolute deadline (seconds from schedule start);
	// 0 means no deadline.
	Deadline float64
	// Actual is the true running time, revealed only by the simulator.
	Actual float64
}

// Policy orders jobs for execution on a single server.
type Policy interface {
	// Order returns the execution order as indices into jobs.
	Order(jobs []Job) []int
	Name() string
}

// FCFS executes jobs in arrival order — the baseline with no prediction
// at all.
type FCFS struct{}

// Name implements Policy.
func (FCFS) Name() string { return "fcfs" }

// Order implements Policy.
func (FCFS) Order(jobs []Job) []int { return identity(len(jobs)) }

// SJFMean is shortest-job-first on the predicted mean — the best a
// point-estimate predictor can support.
type SJFMean struct{}

// Name implements Policy.
func (SJFMean) Name() string { return "sjf-mean" }

// Order implements Policy.
func (SJFMean) Order(jobs []Job) []int {
	return sortBy(jobs, func(j Job) float64 { return j.Dist.Mu })
}

// SJFQuantile is shortest-job-first on a quantile of the distribution;
// with q > 0.5 it penalizes uncertain jobs.
type SJFQuantile struct{ Q float64 }

// Name implements Policy.
func (p SJFQuantile) Name() string { return fmt.Sprintf("sjf-q%.2f", p.Q) }

// Order implements Policy.
func (p SJFQuantile) Order(jobs []Job) []int {
	q := p.Q
	if q <= 0 || q >= 1 {
		q = 0.9
	}
	return sortBy(jobs, func(j Job) float64 { return j.Dist.Quantile(q) })
}

// EDF is earliest-deadline-first, prediction-free.
type EDF struct{}

// Name implements Policy.
func (EDF) Name() string { return "edf" }

// Order implements Policy.
func (EDF) Order(jobs []Job) []int {
	return sortBy(jobs, func(j Job) float64 {
		if j.Deadline == 0 {
			return math.Inf(1)
		}
		return j.Deadline
	})
}

// RiskSlack is risk-adjusted least-slack-first: jobs are ordered by
// deadline minus the Q-quantile of their predicted running time, so a
// job whose deadline leaves little room once its plausible worst case
// is accounted for runs first. This is the simplest distribution-based
// scheduler in the spirit of [14]: with Q = 0.5 it degenerates to
// (mean-based) least-slack, and larger Q buys insurance against
// uncertain jobs. Jobs without deadlines run last, shortest mean first.
type RiskSlack struct{ Q float64 }

// Name implements Policy.
func (p RiskSlack) Name() string { return fmt.Sprintf("risk-slack-q%.2f", p.quantile()) }

func (p RiskSlack) quantile() float64 {
	if p.Q <= 0 || p.Q >= 1 {
		return 0.9
	}
	return p.Q
}

// Order implements Policy.
func (p RiskSlack) Order(jobs []Job) []int {
	q := p.quantile()
	return sortBy(jobs, func(j Job) float64 {
		if j.Deadline == 0 {
			// Deadline-free jobs after all deadline jobs.
			return math.Inf(1)
		}
		return j.Deadline - j.Dist.Quantile(q)
	})
}

// Metrics summarizes one simulated schedule.
type Metrics struct {
	Policy        string
	DeadlineMiss  int
	Tardiness     float64 // sum of (finish - deadline)+ over deadline jobs
	MeanFlowTime  float64 // mean completion time
	TotalDuration float64
}

// Simulate executes the jobs sequentially in the policy's order using
// their actual running times and reports the metrics.
func Simulate(jobs []Job, p Policy) Metrics {
	order := p.Order(jobs)
	if len(order) != len(jobs) {
		panic(fmt.Sprintf("sched: policy %s returned %d indices for %d jobs",
			p.Name(), len(order), len(jobs)))
	}
	seen := make([]bool, len(jobs))
	m := Metrics{Policy: p.Name()}
	var clock, flowSum float64
	for _, ji := range order {
		if seen[ji] {
			panic(fmt.Sprintf("sched: policy %s repeated job %d", p.Name(), ji))
		}
		seen[ji] = true
		j := jobs[ji]
		clock += j.Actual
		flowSum += clock
		if j.Deadline > 0 && clock > j.Deadline {
			m.DeadlineMiss++
			m.Tardiness += clock - j.Deadline
		}
	}
	m.TotalDuration = clock
	if len(jobs) > 0 {
		m.MeanFlowTime = flowSum / float64(len(jobs))
	}
	return m
}

// Compare simulates every policy on the same jobs.
func Compare(jobs []Job, policies ...Policy) []Metrics {
	out := make([]Metrics, 0, len(policies))
	for _, p := range policies {
		out = append(out, Simulate(jobs, p))
	}
	return out
}

// CompareParallel simulates every policy concurrently — policies only
// read the shared job slice, so the simulations are independent — and
// returns the metrics in policy order, identical to Compare.
func CompareParallel(jobs []Job, policies ...Policy) []Metrics {
	out := make([]Metrics, len(policies))
	var wg sync.WaitGroup
	for i, p := range policies {
		wg.Add(1)
		go func(i int, p Policy) {
			defer wg.Done()
			out[i] = Simulate(jobs, p)
		}(i, p)
	}
	wg.Wait()
	return out
}

// MakeJobs pairs the outputs of a batched prediction pass with
// deadlines and measured times into scheduler jobs: names[i], dists[i],
// deadlines[i], actuals[i] describe job i. It is the bridge from
// System.PredictBatch/ExecuteBatch to the scheduling substrate.
func MakeJobs(names []string, dists []stats.Normal, deadlines, actuals []float64) ([]Job, error) {
	n := len(names)
	if len(dists) != n || len(deadlines) != n || len(actuals) != n {
		return nil, fmt.Errorf("sched: mismatched job slices: %d names, %d dists, %d deadlines, %d actuals",
			n, len(dists), len(deadlines), len(actuals))
	}
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i] = Job{Name: names[i], Dist: dists[i], Deadline: deadlines[i], Actual: actuals[i]}
	}
	return jobs, nil
}

func identity(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func sortBy(jobs []Job, key func(Job) float64) []int {
	idx := identity(len(jobs))
	sort.SliceStable(idx, func(a, b int) bool {
		return key(jobs[idx[a]]) < key(jobs[idx[b]])
	})
	return idx
}
