package calib

import (
	"math"
	"math/rand"
	"testing"
)

func observeAll(a *Accumulator, obs [][3]float64) {
	for _, o := range obs {
		a.Observe(o[0], o[1], o[2])
	}
}

func synth(n int, seed int64) [][3]float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][3]float64, n)
	for i := range out {
		mean := 0.5 + rng.Float64()
		sigma := 0.05 + 0.1*rng.Float64()
		obs := mean + sigma*rng.NormFloat64()
		out[i] = [3]float64{mean, sigma, obs}
	}
	return out
}

// Merging the same disjoint shards in any order must agree: integer
// tallies exactly, floating-point moments to high relative accuracy.
func TestMergeOrderInvariance(t *testing.T) {
	obs := synth(4000, 11)
	shards := make([]Accumulator, 8)
	for i, o := range obs {
		shards[i%len(shards)].Observe(o[0], o[1], o[2])
	}

	var fwd Accumulator
	for i := range shards {
		s := shards[i]
		fwd.Merge(&s)
	}
	var rev Accumulator
	for i := len(shards) - 1; i >= 0; i-- {
		s := shards[i]
		rev.Merge(&s)
	}
	// Pairwise tree merge, a third order.
	tree := make([]Accumulator, len(shards))
	copy(tree, shards)
	for len(tree) > 1 {
		var next []Accumulator
		for i := 0; i < len(tree); i += 2 {
			a := tree[i]
			if i+1 < len(tree) {
				a.Merge(&tree[i+1])
			}
			next = append(next, a)
		}
		tree = next
	}

	for _, other := range []*Accumulator{&rev, &tree[0]} {
		if fwd.n != other.n || fwd.relN != other.relN || fwd.within != other.within {
			t.Fatalf("integer tallies diverge across merge orders: %+v vs %+v", fwd, *other)
		}
		mf, mo := fwd.Metrics(), other.Metrics()
		approx := func(name string, a, b float64) {
			if diff := math.Abs(a - b); diff > 1e-9*(1+math.Abs(a)) {
				t.Errorf("%s diverges across merge orders: %v vs %v", name, a, b)
			}
		}
		approx("mape", mf.MAPE, mo.MAPE)
		approx("bias", mf.Bias, mo.Bias)
		approx("mean_z", mf.MeanZ, mo.MeanZ)
		approx("pearson_r", mf.PearsonR, mo.PearsonR)
	}
}

// A sequential accumulator and a sharded-then-merged one must agree on
// the same stream.
func TestMergeMatchesSequential(t *testing.T) {
	obs := synth(5000, 7)
	var seq Accumulator
	observeAll(&seq, obs)

	var a, b Accumulator
	observeAll(&a, obs[:1777])
	observeAll(&b, obs[1777:])
	a.Merge(&b)

	ms, mm := seq.Metrics(), a.Metrics()
	if ms.N != mm.N {
		t.Fatalf("n: %d vs %d", ms.N, mm.N)
	}
	approx := func(name string, x, y float64) {
		if diff := math.Abs(x - y); diff > 1e-9*(1+math.Abs(x)) {
			t.Errorf("%s: sequential %v vs merged %v", name, x, y)
		}
	}
	approx("mape", ms.MAPE, mm.MAPE)
	approx("bias", ms.Bias, mm.Bias)
	approx("pearson_r", ms.PearsonR, mm.PearsonR)
	for i := range ms.Coverage {
		if ms.Coverage[i] != mm.Coverage[i] {
			t.Errorf("coverage[%d]: %+v vs %+v", i, ms.Coverage[i], mm.Coverage[i])
		}
	}
}

// Welford-style updates must stay numerically sane at a million
// observations with a large common offset — the naive sum-of-squares
// formulation loses catastrophically here.
func TestNumericalStabilityMillionObservations(t *testing.T) {
	if testing.Short() {
		t.Skip("1e6 observations")
	}
	const n = 1_000_000
	const offset = 1e6 // seconds: huge relative to the 1e-3 spread
	rng := rand.New(rand.NewSource(3))
	var a Accumulator
	for i := 0; i < n; i++ {
		mean := offset + 1e-3*rng.Float64()
		obs := mean + 1e-4*rng.NormFloat64()
		a.Observe(mean, 1e-4, obs)
	}
	m := a.Metrics()
	if m.N != n {
		t.Fatalf("n = %d", m.N)
	}
	// Predicted and observed are strongly correlated by construction.
	if m.PearsonR < 0.9 || m.PearsonR > 1 {
		t.Errorf("pearson_r = %v, want in (0.9, 1]", m.PearsonR)
	}
	// Residuals are symmetric N(0, 1e-4): bias stays tiny relative to
	// the offset, MAPE tiny in absolute terms.
	if math.Abs(m.Bias) > 1e-5 {
		t.Errorf("bias = %v, want |bias| <= 1e-5", m.Bias)
	}
	if m.MAPE <= 0 || m.MAPE > 1e-6 {
		t.Errorf("mape = %v, want small positive", m.MAPE)
	}
	if math.Abs(m.MeanZ) > 0.01 {
		t.Errorf("mean_z = %v, want near 0", m.MeanZ)
	}
	// ~90% of observations inside the 90% interval.
	if c := m.Coverage[1].Observed; c < 0.88 || c > 0.92 {
		t.Errorf("coverage@90 = %v, want ~0.9", c)
	}
	for _, v := range []float64{m.MAPE, m.Bias, m.MeanZ, m.PearsonR} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("non-finite metric: %+v", m)
		}
	}
}

// Zero- and one-observation accumulators must report all-finite
// metrics (no 0/0), including the sigma=0 and observed=0 edge cases.
func TestMetricsFiniteOnTinyCounts(t *testing.T) {
	check := func(name string, m Metrics) {
		t.Helper()
		vals := []float64{m.MAPE, m.Bias, m.MeanZ, m.PearsonR}
		for i := range m.Coverage {
			vals = append(vals, m.Coverage[i].Nominal, m.Coverage[i].Observed, m.Coverage[i].Drift)
		}
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("%s: non-finite metric in %+v", name, m)
			}
		}
	}
	var empty Accumulator
	m := empty.Metrics()
	check("empty", m)
	if m.N != 0 || len(m.Coverage) != len(CoverageLevels) {
		t.Fatalf("empty metrics malformed: %+v", m)
	}

	var one Accumulator
	one.Observe(1.0, 0.1, 1.05)
	m = one.Metrics()
	check("one", m)
	if m.N != 1 || m.PearsonR != 0 {
		t.Fatalf("one-observation metrics: %+v", m)
	}

	var degenerate Accumulator
	degenerate.Observe(1.0, 0, 0) // sigma=0 and observed=0 together
	degenerate.Observe(1.0, 0, 0)
	check("degenerate", degenerate.Metrics())

	var constant Accumulator // constant predictions: zero variance side
	constant.Observe(2, 0.5, 1.9)
	constant.Observe(2, 0.5, 2.2)
	m = constant.Metrics()
	check("constant", m)
	if m.PearsonR != 0 {
		t.Fatalf("constant predictions must report r=0, got %v", m.PearsonR)
	}
}

// Coverage counts match the definition: inside the central interval at
// each level, boundaries inclusive, sigma=0 collapsing to equality.
func TestCoverageSemantics(t *testing.T) {
	var a Accumulator
	a.Observe(1.0, 0.1, 1.0)  // center: inside all levels
	a.Observe(1.0, 0.1, 1.1)  // 1 sigma: outside 50%, inside 90/95
	a.Observe(1.0, 0.1, 10.0) // far out: outside all
	a.Observe(1.0, 0, 1.0)    // sigma=0: interval collapses to the mean
	a.Observe(1.0, 0, 1.01)   // sigma=0, off the mean: outside
	m := a.Metrics()
	want := [3]float64{2.0 / 5, 3.0 / 5, 3.0 / 5}
	for i := range want {
		if math.Abs(m.Coverage[i].Observed-want[i]) > 1e-12 {
			t.Errorf("coverage[%d] = %v, want %v", i, m.Coverage[i].Observed, want[i])
		}
	}
}
