// Package calib is the calibration observatory: it turns streams of
// (predicted distribution, observed running time) pairs into rolling
// calibration metrics — MAPE, Pearson correlation, signed bias, mean
// standardized residual, and nominal-vs-observed central-interval
// coverage at 50/90/95% — the measured counterpart to the paper's
// claim that predicted *distributions* stay honest against reality.
//
// The package is deliberately tiny and dependency-light (stats and
// hardware only) so every layer that sees an observation — the serving
// layer's outcome path, System.Measure, the simulator's execution
// loop — can feed the same accumulator without import cycles.
//
// Accumulators are plain values with fixed-order arithmetic: Observe
// uses Welford/West updates, Merge uses Chan's parallel formulas, and
// neither allocates. A producer that observes in a deterministic order
// and merges partial accumulators in a fixed order (the simulator
// observes machine-locally and merges in machine order) gets
// bit-identical metrics regardless of GOMAXPROCS or parallelism.
// Metrics is NaN-free by construction: zero and one-observation
// accumulators report zeros, never 0/0.
package calib

import (
	"math"

	"repro/internal/hardware"
	"repro/internal/stats"
)

// CoverageLevels are the nominal central-interval probability masses
// tracked by every accumulator, in ascending order. They mirror the
// serving layer's drift feedback so "coverage at 90%" means the same
// thing in a drift advisory, a sim report, and a /metrics scrape.
var CoverageLevels = [3]float64{0.5, 0.9, 0.95}

// Observation is one (predicted distribution, observed time) pair.
// Producers reuse the value; consumers must copy what they keep.
type Observation struct {
	// At is the producer's virtual time of the observation (the finish
	// time on serving paths; zero where there is no clock).
	At float64
	// Tenant attributes the observation on multi-tenant producers;
	// empty for direct System use.
	Tenant string
	// Unit is the cost unit dominating the predicted mean — the unit
	// calibration drift would be attributed to.
	Unit hardware.Unit
	// PredMean/PredSigma are the predicted N(mu, sigma^2); Observed is
	// the measured running time in seconds.
	PredMean  float64
	PredSigma float64
	Observed  float64
}

// Observer receives observations. Implementations used by concurrent
// producers must be safe for concurrent use; the simulator hands each
// machine its own observer.
type Observer interface {
	Observe(*Observation)
}

// Accumulator is a streaming calibration aggregate over a sequence of
// observations. The zero value is ready to use. Not safe for
// concurrent use; shard per producer and Merge.
type Accumulator struct {
	n int64
	// Welford means and central second moments of predicted means and
	// observed times, plus their co-moment (for Pearson r).
	meanP, meanO  float64
	m2P, m2O, cPO float64
	// sumZ is the sum of standardized residuals (observed-mean)/sigma,
	// counting sigma==0 observations as zero residual.
	sumZ float64
	// sumErr is the sum of signed errors predicted-observed (positive =
	// overprediction).
	sumErr float64
	// sumAbsRel/relN accumulate |predicted-observed|/observed over
	// observations with observed > 0 (MAPE is undefined at zero).
	sumAbsRel float64
	relN      int64
	// within[i] counts observations inside the predicted central
	// interval at CoverageLevels[i].
	within [len(CoverageLevels)]int64
}

// Observe folds one (predicted, observed) pair into the aggregate.
func (a *Accumulator) Observe(predMean, predSigma, observed float64) {
	a.n++
	n := float64(a.n)
	dP := predMean - a.meanP
	dO := observed - a.meanO
	a.meanP += dP / n
	a.meanO += dO / n
	a.m2P += dP * (predMean - a.meanP)
	a.m2O += dO * (observed - a.meanO)
	a.cPO += dP * (observed - a.meanO)
	a.sumErr += predMean - observed
	if observed > 0 {
		a.sumAbsRel += math.Abs(predMean-observed) / observed
		a.relN++
	}
	if predSigma > 0 {
		a.sumZ += (observed - predMean) / predSigma
	}
	dist := stats.Normal{Mu: predMean, Sigma: predSigma}
	for i, level := range CoverageLevels {
		lo, hi := dist.Interval(level)
		if observed >= lo && observed <= hi {
			a.within[i]++
		}
	}
}

// N returns the number of observations folded in.
func (a *Accumulator) N() int64 { return a.n }

// Merge folds b into a using Chan's parallel update formulas; the
// result aggregates both observation streams. Merging the same set of
// disjoint accumulators in a fixed order is deterministic; different
// merge orders agree to floating-point accuracy.
func (a *Accumulator) Merge(b *Accumulator) {
	if b.n == 0 {
		return
	}
	if a.n == 0 {
		*a = *b
		return
	}
	na, nb := float64(a.n), float64(b.n)
	n := na + nb
	dP := b.meanP - a.meanP
	dO := b.meanO - a.meanO
	a.m2P += b.m2P + dP*dP*na*nb/n
	a.m2O += b.m2O + dO*dO*na*nb/n
	a.cPO += b.cPO + dP*dO*na*nb/n
	a.meanP += dP * nb / n
	a.meanO += dO * nb / n
	a.n += b.n
	a.sumZ += b.sumZ
	a.sumErr += b.sumErr
	a.sumAbsRel += b.sumAbsRel
	a.relN += b.relN
	for i := range a.within {
		a.within[i] += b.within[i]
	}
}

// CoveragePoint compares one nominal central-interval mass against the
// fraction of observations that actually fell inside the predicted
// interval. Drift = observed - nominal: negative means the intervals
// are too narrow (overconfident predictions).
type CoveragePoint struct {
	Nominal  float64 `json:"nominal"`
	Observed float64 `json:"observed"`
	Drift    float64 `json:"drift"`
}

// Metrics is the point-in-time summary of an Accumulator. Every field
// is finite for any observation count, including zero and one.
type Metrics struct {
	// N is the observation count.
	N int64 `json:"n"`
	// MAPE is mean |predicted-observed|/observed over observations with
	// observed > 0; zero when none qualify.
	MAPE float64 `json:"mape"`
	// Bias is the mean signed error predicted-observed in seconds
	// (positive = the predictor overestimates).
	Bias float64 `json:"bias"`
	// MeanZ is the mean standardized residual (observed-mean)/sigma; a
	// calibrated predictor keeps it near zero.
	MeanZ float64 `json:"mean_z"`
	// PearsonR is the correlation between predicted means and observed
	// times; zero when fewer than two observations or either side is
	// constant.
	PearsonR float64 `json:"pearson_r"`
	// Coverage holds one point per CoverageLevels entry, in order.
	Coverage []CoveragePoint `json:"coverage"`
}

// Metrics summarizes the accumulator.
func (a *Accumulator) Metrics() Metrics {
	m := Metrics{N: a.n, Coverage: make([]CoveragePoint, len(CoverageLevels))}
	for i, level := range CoverageLevels {
		m.Coverage[i].Nominal = level
	}
	if a.n == 0 {
		return m
	}
	n := float64(a.n)
	if a.relN > 0 {
		m.MAPE = a.sumAbsRel / float64(a.relN)
	}
	m.Bias = a.sumErr / n
	m.MeanZ = a.sumZ / n
	if a.n >= 2 && a.m2P > 0 && a.m2O > 0 {
		r := a.cPO / math.Sqrt(a.m2P*a.m2O)
		m.PearsonR = math.Max(-1, math.Min(1, r))
	}
	for i := range CoverageLevels {
		m.Coverage[i].Observed = float64(a.within[i]) / n
		m.Coverage[i].Drift = m.Coverage[i].Observed - m.Coverage[i].Nominal
	}
	return m
}
