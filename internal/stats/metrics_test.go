package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPearsonPerfectLinear(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if got := Pearson(xs, ys); !almostEq(got, 1, 1e-12) {
		t.Errorf("Pearson = %v, want 1", got)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if got := Pearson(xs, neg); !almostEq(got, -1, 1e-12) {
		t.Errorf("Pearson = %v, want -1", got)
	}
}

func TestPearsonConstantSeries(t *testing.T) {
	if got := Pearson([]float64{1, 1, 1}, []float64{1, 2, 3}); got != 0 {
		t.Errorf("Pearson with constant xs = %v, want 0", got)
	}
}

func TestRanksWithTies(t *testing.T) {
	got := Ranks([]float64{4, 7, 5, 5, 1})
	want := []float64{2, 5, 3.5, 3.5, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ranks = %v, want %v", got, want)
		}
	}
}

func TestSpearmanMonotone(t *testing.T) {
	// Any strictly increasing transform gives r_s = 1 even when r_p < 1.
	xs := []float64{1, 2, 3, 4, 5, 6}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = math.Exp(x)
	}
	if got := Spearman(xs, ys); !almostEq(got, 1, 1e-12) {
		t.Errorf("Spearman on monotone data = %v, want 1", got)
	}
	if got := Pearson(xs, ys); got >= 0.999 {
		t.Errorf("Pearson on convex data = %v, expected < 0.999", got)
	}
}

func TestSpearmanOutlierRobustness(t *testing.T) {
	// Reproduces the Figure 3 observation: a single extreme outlier moves
	// r_p far more than r_s.
	r := rand.New(rand.NewSource(42))
	n := 60
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = r.Float64() * 3
		ys[i] = 1.5*xs[i] + r.NormFloat64()*0.3
	}
	rs0, rp0 := Spearman(xs, ys), Pearson(xs, ys)
	xs = append(xs, 50)
	ys = append(ys, 8) // leverage point far off the trend
	rs1, rp1 := Spearman(xs, ys), Pearson(xs, ys)
	if math.Abs(rs1-rs0) >= math.Abs(rp1-rp0) {
		t.Errorf("expected r_s (Δ=%v) more robust than r_p (Δ=%v)",
			math.Abs(rs1-rs0), math.Abs(rp1-rp0))
	}
}

func TestSpearmanInvariantUnderMonotoneTransform(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 20
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = r.NormFloat64()
			ys[i] = r.NormFloat64()
		}
		base := Spearman(xs, ys)
		tx := make([]float64, n)
		for i, x := range xs {
			tx[i] = math.Atan(x) * 100 // strictly increasing
		}
		return almostEq(Spearman(tx, ys), base, 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPrAlpha(t *testing.T) {
	if got := PrAlpha(1.959963984540054); !almostEq(got, 0.95, 1e-9) {
		t.Errorf("PrAlpha(1.96) = %v, want 0.95", got)
	}
	if got := PrAlpha(0); got != 0 {
		t.Errorf("PrAlpha(0) = %v, want 0", got)
	}
}

func TestDnPerfectCalibration(t *testing.T) {
	// If normalized errors really are |N(0,1)| draws, Dn should be small.
	r := rand.New(rand.NewSource(9))
	errs := make([]float64, 20000)
	for i := range errs {
		errs[i] = math.Abs(r.NormFloat64())
	}
	if got := Dn(errs, nil); got > 0.02 {
		t.Errorf("Dn on calibrated errors = %v, want < 0.02", got)
	}
}

func TestDnOverconfidentModel(t *testing.T) {
	// If sigmas are 3x too small, normalized errors are |N(0,3)| and Dn
	// should be substantially larger than the calibrated case.
	r := rand.New(rand.NewSource(9))
	errs := make([]float64, 20000)
	for i := range errs {
		errs[i] = math.Abs(3 * r.NormFloat64())
	}
	if got := Dn(errs, nil); got < 0.15 {
		t.Errorf("Dn on overconfident errors = %v, want >= 0.15", got)
	}
}

func TestNormalizedErrors(t *testing.T) {
	ne := NormalizedErrors([]float64{10, 5, 3}, []float64{8, 5, 3}, []float64{2, 0, 0})
	if ne[0] != 1 || ne[1] != 0 || ne[2] != 0 {
		t.Errorf("NormalizedErrors = %v", ne)
	}
	inf := NormalizedErrors([]float64{10}, []float64{8}, []float64{0})
	if !math.IsInf(inf[0], 1) {
		t.Errorf("expected +Inf for zero sigma with error, got %v", inf[0])
	}
}

func TestBestFitLine(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 3, 5, 7} // y = 2x + 1
	slope, icpt := BestFitLine(xs, ys)
	if !almostEq(slope, 2, 1e-12) || !almostEq(icpt, 1, 1e-12) {
		t.Errorf("BestFitLine = %v, %v", slope, icpt)
	}
}

func TestMeanVarMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.NormFloat64() * 10
		}
		m, v := MeanVar(xs)
		return almostEq(m, Mean(xs), 1e-9) && almostEq(v, Variance(xs), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDnCurveShape(t *testing.T) {
	errs := []float64{0.5, 1.5, 2.5}
	emp, model := DnCurve(errs, []float64{1, 2, 3})
	wantEmp := []float64{1.0 / 3, 2.0 / 3, 1}
	for i := range emp {
		if !almostEq(emp[i], wantEmp[i], 1e-12) {
			t.Errorf("empirical[%d] = %v, want %v", i, emp[i], wantEmp[i])
		}
		if model[i] <= 0 || model[i] >= 1 {
			t.Errorf("model[%d] = %v out of (0,1)", i, model[i])
		}
	}
}
