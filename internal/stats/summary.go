package stats

import "math"

// Mean returns the arithmetic mean of xs; it returns 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance (divisor n-1). It returns
// 0 for fewer than two observations.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n-1)
}

// PopVariance returns the population variance (divisor n).
func PopVariance(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n)
}

// StdDev returns the unbiased sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// MeanVar returns both the sample mean and the unbiased sample variance
// in a single pass (Welford's algorithm), which is what the calibration
// framework uses to summarize observed cost units.
func MeanVar(xs []float64) (mean, variance float64) {
	var m, m2 float64
	for i, x := range xs {
		d := x - m
		m += d / float64(i+1)
		m2 += d * (x - m)
	}
	if len(xs) > 1 {
		variance = m2 / float64(len(xs)-1)
	}
	return m, variance
}

// MinMax returns the minimum and maximum of xs. It panics on empty input.
func MinMax(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		panic("stats: MinMax of empty slice")
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}
