package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return a == b
	}
	d := math.Abs(a - b)
	if d <= tol {
		return true
	}
	m := math.Max(math.Abs(a), math.Abs(b))
	return d <= tol*m
}

func TestNormalCDFKnownValues(t *testing.T) {
	std := NewNormal(0, 1)
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{1, 0.8413447460685429},
		{-1, 0.15865525393145705},
		{1.959963984540054, 0.975},
		{3, 0.9986501019683699},
	}
	for _, c := range cases {
		if got := std.CDF(c.x); !almostEq(got, c.want, 1e-12) {
			t.Errorf("CDF(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestNormalPDFIntegratesToOne(t *testing.T) {
	n := NewNormal(2, 3)
	const steps = 200000
	lo, hi := n.Mu-10*n.Sigma, n.Mu+10*n.Sigma
	h := (hi - lo) / steps
	var sum float64
	for i := 0; i <= steps; i++ {
		w := 1.0
		if i == 0 || i == steps {
			w = 0.5
		}
		sum += w * n.PDF(lo+float64(i)*h)
	}
	if got := sum * h; !almostEq(got, 1, 1e-6) {
		t.Errorf("integral of pdf = %v, want 1", got)
	}
}

func TestQuantileInvertsCDF(t *testing.T) {
	n := NewNormal(-4, 2.5)
	for _, p := range []float64{1e-8, 1e-4, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1 - 1e-6} {
		x := n.Quantile(p)
		if got := n.CDF(x); !almostEq(got, p, 1e-9) {
			t.Errorf("CDF(Quantile(%v)) = %v", p, got)
		}
	}
}

func TestQuantileProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := r.Float64()
		if p <= 0 || p >= 1 {
			return true
		}
		x := StdNormalQuantile(p)
		std := NewNormal(0, 1)
		return almostEq(std.CDF(x), p, 1e-10)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInterval(t *testing.T) {
	n := NewNormal(10, 2)
	lo, hi := n.Interval(0.95)
	if !almostEq(lo, 10-1.959963984540054*2, 1e-9) || !almostEq(hi, 10+1.959963984540054*2, 1e-9) {
		t.Errorf("Interval(0.95) = [%v, %v]", lo, hi)
	}
	if got := n.Prob(lo, hi); !almostEq(got, 0.95, 1e-12) {
		t.Errorf("Prob over 95%% interval = %v", got)
	}
}

func TestMomentsMatchTable3(t *testing.T) {
	n := NewNormal(3, 2)
	mu, s2 := 3.0, 4.0
	want := []float64{
		mu,
		mu*mu + s2,
		mu*mu*mu + 3*mu*s2,
		mu*mu*mu*mu + 6*mu*mu*s2 + 3*s2*s2,
	}
	for k := 1; k <= 4; k++ {
		if got := n.Moment(k); !almostEq(got, want[k-1], 1e-12) {
			t.Errorf("Moment(%d) = %v, want %v", k, got, want[k-1])
		}
	}
}

// Monte-Carlo checks of the closed-form covariance identities used by the
// variance propagation (Lemma 4, Lemma 8, Table 3 consequences).
func TestMomentIdentitiesMonteCarlo(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	x := NewNormal(0.4, 0.15)
	y := NewNormal(0.7, 0.05)
	const n = 400000
	var sx, sx2, sx3, sx4, sxy, sx2y2, sxxy float64
	for i := 0; i < n; i++ {
		xv := x.Mu + x.Sigma*r.NormFloat64()
		yv := y.Mu + y.Sigma*r.NormFloat64()
		sx += xv
		sx2 += xv * xv
		sx3 += xv * xv * xv
		sx4 += xv * xv * xv * xv
		sxy += xv * yv
		sx2y2 += xv * xv * yv * yv
		sxxy += xv * xv * yv
	}
	inv := 1.0 / n
	ex, ex2, ex3, ex4 := sx*inv, sx2*inv, sx3*inv, sx4*inv
	exy, ex2y2, ex2y := sxy*inv, sx2y2*inv, sxxy*inv

	if got, want := ex4-ex2*ex2, VarX2(x); !almostEq(got, want, 0.02) {
		t.Errorf("Var[X^2]: mc %v vs formula %v", got, want)
	}
	if got, want := ex3-ex2*ex, CovXX2(x); !almostEq(got, want, 0.02) {
		t.Errorf("Cov(X,X^2): mc %v vs formula %v", got, want)
	}
	if got, want := ex2y2-exy*exy, ProductVar(x, y); !almostEq(got, want, 0.02) {
		t.Errorf("Var[XY]: mc %v vs formula %v", got, want)
	}
	if got, want := ex2y-exy*ex, CovProductLeft(x, y); !almostEq(got, want, 0.02) {
		t.Errorf("Cov(XY,X): mc %v vs formula %v", got, want)
	}
}

func TestSumScaleShift(t *testing.T) {
	a := NewNormal(1, 2)
	b := NewNormal(3, 4)
	s := Sum(a, b)
	if !almostEq(s.Mu, 4, 1e-15) || !almostEq(s.Var(), 20, 1e-12) {
		t.Errorf("Sum = %v", s)
	}
	sc := a.Scale(-2)
	if !almostEq(sc.Mu, -2, 1e-15) || !almostEq(sc.Sigma, 4, 1e-15) {
		t.Errorf("Scale = %v", sc)
	}
	sh := a.Shift(5)
	if !almostEq(sh.Mu, 6, 1e-15) || sh.Sigma != a.Sigma {
		t.Errorf("Shift = %v", sh)
	}
}

func TestNormalFromVarClampsNegative(t *testing.T) {
	n := NormalFromVar(1, -1e-18)
	if n.Sigma != 0 {
		t.Errorf("expected clamped sigma, got %v", n.Sigma)
	}
}

func TestDegeneratePointMass(t *testing.T) {
	n := NewNormal(5, 0)
	if n.CDF(4.999) != 0 || n.CDF(5) != 1 {
		t.Error("point-mass CDF wrong")
	}
	if n.PDF(5) != math.Inf(1) || n.PDF(6) != 0 {
		t.Error("point-mass PDF wrong")
	}
}
