package stats

import (
	"math"
	"testing"
)

func TestJainIndex(t *testing.T) {
	cases := []struct {
		name string
		xs   []float64
		want float64
	}{
		{"empty", nil, 1},
		{"all-zero", []float64{0, 0, 0}, 1},
		{"equal", []float64{0.5, 0.5, 0.5, 0.5}, 1},
		{"one-takes-all", []float64{1, 0, 0, 0}, 0.25},
		{"two-of-four", []float64{1, 1, 0, 0}, 0.5},
		{"skewed", []float64{4, 1, 1}, 2.0 / 3}, // 36 / (3*18)
	}
	for _, c := range cases {
		if got := JainIndex(c.xs); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%s: JainIndex(%v) = %v, want %v", c.name, c.xs, got, c.want)
		}
	}
}
