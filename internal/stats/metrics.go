package stats

import (
	"fmt"
	"math"
	"sort"
)

// Pearson returns the Pearson linear correlation coefficient r_p between
// xs and ys (Equation 7 of the paper). It returns 0 when either series is
// constant (the coefficient is undefined there) or when fewer than two
// pairs are supplied.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		panic(fmt.Sprintf("stats: Pearson length mismatch %d vs %d", len(xs), len(ys)))
	}
	n := len(xs)
	if n < 2 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// JainIndex is Jain's fairness index (Σx)² / (n·Σx²) over a
// non-negative allocation vector: 1 for perfectly equal allocations,
// 1/n when a single participant takes everything. An empty or all-zero
// sample counts as perfectly fair (there is nothing unequal about
// uniformly nothing).
func JainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// Ranks returns the fractional (average-tie) ranks of xs, 1-based: the
// smallest value gets rank 1, and tied values share the average of the
// ranks they span.
func Ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		// positions i..j (0-based) are tied; average rank is the mean of
		// ranks i+1..j+1.
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}

// Spearman returns the Spearman rank correlation coefficient r_s: the
// Pearson correlation of the fractional ranks. Ties receive average
// ranks, matching the standard definition used by the paper.
func Spearman(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		panic(fmt.Sprintf("stats: Spearman length mismatch %d vs %d", len(xs), len(ys)))
	}
	return Pearson(Ranks(xs), Ranks(ys))
}

// DefaultAlphaGrid is the grid of alpha values over (0, 6) on which D_n
// is averaged; it mirrors the grid shown on the x-axis of Figure 5 and
// extends to 6 as stated in Section 6.3.
var DefaultAlphaGrid = []float64{
	0.1, 0.3, 0.5, 0.7, 0.9, 1.0, 1.2, 1.5, 1.8, 2.0,
	2.2, 2.5, 2.8, 3.0, 3.5, 4.0, 4.5, 5.0, 5.5, 6.0,
}

// PrAlpha returns the model-implied probability Pr(alpha) that the
// normalized prediction error |T - mu| / sigma is at most alpha:
// Pr(alpha) = 2*Phi(alpha) - 1.
func PrAlpha(alpha float64) float64 {
	std := Normal{Mu: 0, Sigma: 1}
	return 2*std.CDF(alpha) - 1
}

// PrnAlpha returns the empirical probability Pr_n(alpha): the fraction of
// queries whose observed normalized error e'_i = |t_i - mu_i| / sigma_i
// is at most alpha. Queries with sigma_i = 0 are counted as within alpha
// exactly when their raw error is zero.
func PrnAlpha(normErrs []float64, alpha float64) float64 {
	if len(normErrs) == 0 {
		return 0
	}
	count := 0
	for _, e := range normErrs {
		if e <= alpha {
			count++
		}
	}
	return float64(count) / float64(len(normErrs))
}

// NormalizedErrors computes e'_i = |t_i - mu_i| / sigma_i for each query,
// the statistic underlying both D_n and Figure 5. A zero sigma with a
// nonzero error maps to +Inf.
func NormalizedErrors(actual, predMean, predSigma []float64) []float64 {
	if len(actual) != len(predMean) || len(actual) != len(predSigma) {
		panic("stats: NormalizedErrors length mismatch")
	}
	out := make([]float64, len(actual))
	for i := range actual {
		e := math.Abs(actual[i] - predMean[i])
		switch {
		case predSigma[i] > 0:
			out[i] = e / predSigma[i]
		case e == 0:
			out[i] = 0
		default:
			out[i] = math.Inf(1)
		}
	}
	return out
}

// Dn returns the average over the alpha grid of
// |Pr_n(alpha) - Pr(alpha)|, the distribution-proximity metric of
// Section 6.3; smaller is better.
func Dn(normErrs []float64, alphaGrid []float64) float64 {
	if len(alphaGrid) == 0 {
		alphaGrid = DefaultAlphaGrid
	}
	var sum float64
	for _, a := range alphaGrid {
		sum += math.Abs(PrnAlpha(normErrs, a) - PrAlpha(a))
	}
	return sum / float64(len(alphaGrid))
}

// DnCurve returns the paired (Pr_n(alpha), Pr(alpha)) series over the
// grid, used to regenerate Figure 5.
func DnCurve(normErrs []float64, alphaGrid []float64) (empirical, model []float64) {
	if len(alphaGrid) == 0 {
		alphaGrid = DefaultAlphaGrid
	}
	empirical = make([]float64, len(alphaGrid))
	model = make([]float64, len(alphaGrid))
	for i, a := range alphaGrid {
		empirical[i] = PrnAlpha(normErrs, a)
		model[i] = PrAlpha(a)
	}
	return empirical, model
}

// BestFitLine returns the slope and intercept of the least-squares line
// y = slope*x + intercept, used for the "Best-Fit" series in the paper's
// scatter plots (Figures 3, 6, 12). It returns (0, mean(ys)) when xs is
// constant.
func BestFitLine(xs, ys []float64) (slope, intercept float64) {
	if len(xs) != len(ys) || len(xs) == 0 {
		panic("stats: BestFitLine needs equal-length non-empty input")
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx float64
	for i := range xs {
		dx := xs[i] - mx
		sxy += dx * (ys[i] - my)
		sxx += dx * dx
	}
	if sxx == 0 {
		return 0, my
	}
	slope = sxy / sxx
	return slope, my - slope*mx
}
