// Package stats provides the probability and statistics primitives used
// throughout the predictor: the normal distribution and its non-central
// moments, moments of products of independent normals, correlation
// coefficients (Pearson and Spearman), and the D_n distribution-proximity
// metric from Section 6.3 of the paper.
package stats

import (
	"fmt"
	"math"
)

// Normal is a Gaussian distribution N(mu, sigma^2). The zero value is the
// degenerate point mass at 0 (sigma = 0), which is a legal distribution
// here: constant cost functions (type C1') produce exactly that.
type Normal struct {
	Mu    float64 // mean
	Sigma float64 // standard deviation (>= 0)
}

// NewNormal returns N(mu, sigma^2). It panics if sigma is negative or not
// finite, since every construction site in this repository derives sigma
// from a variance that must already be non-negative.
func NewNormal(mu, sigma float64) Normal {
	if sigma < 0 || math.IsNaN(sigma) || math.IsInf(sigma, 0) {
		panic(fmt.Sprintf("stats: invalid sigma %v", sigma))
	}
	return Normal{Mu: mu, Sigma: sigma}
}

// NormalFromVar returns N(mu, variance), clamping tiny negative variances
// (numerical noise from covariance subtraction) to zero.
func NormalFromVar(mu, variance float64) Normal {
	if variance < 0 {
		variance = 0
	}
	return Normal{Mu: mu, Sigma: math.Sqrt(variance)}
}

// Var returns the variance sigma^2.
func (n Normal) Var() float64 { return n.Sigma * n.Sigma }

// PDF evaluates the probability density at x. For a point mass it returns
// +Inf at the mean and 0 elsewhere.
func (n Normal) PDF(x float64) float64 {
	if n.Sigma == 0 {
		if x == n.Mu {
			return math.Inf(1)
		}
		return 0
	}
	z := (x - n.Mu) / n.Sigma
	return math.Exp(-0.5*z*z) / (n.Sigma * math.Sqrt(2*math.Pi))
}

// CDF evaluates P(X <= x).
func (n Normal) CDF(x float64) float64 {
	if n.Sigma == 0 {
		if x >= n.Mu {
			return 1
		}
		return 0
	}
	return 0.5 * math.Erfc(-(x-n.Mu)/(n.Sigma*math.Sqrt2))
}

// Prob returns P(a <= X <= b). It returns 0 when b < a.
func (n Normal) Prob(a, b float64) float64 {
	if b < a {
		return 0
	}
	return n.CDF(b) - n.CDF(a)
}

// Quantile returns the p-th quantile (inverse CDF), p in [0,1]. The
// boundary cases are the distribution's true infima/suprema: for sigma >
// 0, Quantile(0) is -Inf and Quantile(1) is +Inf; a point mass returns
// its mean for every p.
func (n Normal) Quantile(p float64) float64 {
	if p < 0 || p > 1 || math.IsNaN(p) {
		panic(fmt.Sprintf("stats: quantile probability %v out of [0,1]", p))
	}
	if n.Sigma == 0 {
		return n.Mu
	}
	switch p {
	case 0:
		return math.Inf(-1)
	case 1:
		return math.Inf(1)
	}
	return n.Mu + n.Sigma*StdNormalQuantile(p)
}

// Interval returns the central interval [lo, hi] containing probability
// mass p, e.g. p = 0.95 gives the familiar ±1.96 sigma band. The
// boundary cases follow Quantile: Interval(0) collapses to the median
// and Interval(1) spans (-Inf, +Inf) for sigma > 0.
func (n Normal) Interval(p float64) (lo, hi float64) {
	if p < 0 || p > 1 || math.IsNaN(p) {
		panic(fmt.Sprintf("stats: interval mass %v out of [0,1]", p))
	}
	half := (1 - p) / 2
	return n.Quantile(half), n.Quantile(1 - half)
}

// String implements fmt.Stringer.
func (n Normal) String() string {
	return fmt.Sprintf("N(%.6g, %.6g^2)", n.Mu, n.Sigma)
}

// Moment returns the k-th non-central moment E[X^k] for k in 1..4,
// following Table 3 of the paper.
func (n Normal) Moment(k int) float64 {
	mu, s2 := n.Mu, n.Sigma*n.Sigma
	switch k {
	case 1:
		return mu
	case 2:
		return mu*mu + s2
	case 3:
		return mu*mu*mu + 3*mu*s2
	case 4:
		return mu*mu*mu*mu + 6*mu*mu*s2 + 3*s2*s2
	default:
		panic(fmt.Sprintf("stats: unsupported moment order %d", k))
	}
}

// StdNormalQuantile is the inverse CDF of N(0,1) via the Acklam rational
// approximation refined with one Halley step; absolute error is below
// 1e-13 across (0,1).
func StdNormalQuantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		panic(fmt.Sprintf("stats: quantile probability %v out of (0,1)", p))
	}
	// Coefficients for the Acklam approximation.
	a := [...]float64{-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00}
	b := [...]float64{-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01}
	c := [...]float64{-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00}
	d := [...]float64{7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00}

	const plow = 0.02425
	var x float64
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-plow:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
	// One Halley refinement step.
	e := 0.5*math.Erfc(-x/math.Sqrt2) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x = x - u/(1+x*u/2)
	return x
}

// ProductMean returns E[XY] for independent X, Y.
func ProductMean(x, y Normal) float64 { return x.Mu * y.Mu }

// ProductVar returns Var[XY] for independent normal X, Y (the "normal
// product distribution" of Aroian [8]):
//
//	Var[XY] = mu_x^2 sigma_y^2 + mu_y^2 sigma_x^2 + sigma_x^2 sigma_y^2.
func ProductVar(x, y Normal) float64 {
	sx2, sy2 := x.Var(), y.Var()
	return x.Mu*x.Mu*sy2 + y.Mu*y.Mu*sx2 + sx2*sy2
}

// CovXX2 returns Cov(X, X^2) = 2 mu sigma^2 for normal X.
func CovXX2(x Normal) float64 { return 2 * x.Mu * x.Var() }

// VarX2 returns Var[X^2] = 2 sigma^2 (2 mu^2 + sigma^2) for normal X.
func VarX2(x Normal) float64 {
	s2 := x.Var()
	return 2 * s2 * (2*x.Mu*x.Mu + s2)
}

// CovProductLeft returns Cov(X*Y, X) = mu_y sigma_x^2 for independent
// normal X, Y.
func CovProductLeft(x, y Normal) float64 { return y.Mu * x.Var() }

// Sum returns the distribution of the sum of independent normals.
func Sum(ns ...Normal) Normal {
	var mu, v float64
	for _, n := range ns {
		mu += n.Mu
		v += n.Var()
	}
	return NormalFromVar(mu, v)
}

// Scale returns the distribution of a*X for normal X.
func (n Normal) Scale(a float64) Normal {
	return Normal{Mu: a * n.Mu, Sigma: math.Abs(a) * n.Sigma}
}

// Shift returns the distribution of X + b.
func (n Normal) Shift(b float64) Normal {
	return Normal{Mu: n.Mu + b, Sigma: n.Sigma}
}
