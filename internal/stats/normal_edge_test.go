package stats

import (
	"math"
	"testing"
)

// TestQuantileBoundary pins the boundary contract: q = 0 and q = 1 are
// legal and return the distribution's infimum/supremum.
func TestQuantileBoundary(t *testing.T) {
	n := NewNormal(5, 2)
	if v := n.Quantile(0); !math.IsInf(v, -1) {
		t.Errorf("Quantile(0) = %v, want -Inf", v)
	}
	if v := n.Quantile(1); !math.IsInf(v, 1) {
		t.Errorf("Quantile(1) = %v, want +Inf", v)
	}
	if v := n.Quantile(0.5); v != 5 {
		t.Errorf("Quantile(0.5) = %v, want 5 (median)", v)
	}
}

// TestQuantilePointMass: sigma = 0 is a point mass; every quantile is the
// mean, including the boundaries (no NaN from 0 * Inf).
func TestQuantilePointMass(t *testing.T) {
	n := NewNormal(-2.5, 0)
	for _, q := range []float64{0, 0.001, 0.5, 0.999, 1} {
		if v := n.Quantile(q); v != -2.5 {
			t.Errorf("point mass Quantile(%v) = %v, want -2.5", q, v)
		}
	}
}

// TestIntervalBoundary: Interval(0) collapses to the median; Interval(1)
// spans the whole real line for sigma > 0.
func TestIntervalBoundary(t *testing.T) {
	n := NewNormal(3, 1)
	lo, hi := n.Interval(0)
	if lo != 3 || hi != 3 {
		t.Errorf("Interval(0) = [%v, %v], want [3, 3]", lo, hi)
	}
	lo, hi = n.Interval(1)
	if !math.IsInf(lo, -1) || !math.IsInf(hi, 1) {
		t.Errorf("Interval(1) = [%v, %v], want (-Inf, +Inf)", lo, hi)
	}

	pm := NewNormal(4, 0)
	for _, p := range []float64{0, 0.5, 0.95, 1} {
		lo, hi = pm.Interval(p)
		if lo != 4 || hi != 4 {
			t.Errorf("point mass Interval(%v) = [%v, %v], want [4, 4]", p, lo, hi)
		}
	}
}

// TestQuantileStillPanicsOutOfRange: probabilities outside [0, 1] (and
// NaN) remain programming errors.
func TestQuantileStillPanicsOutOfRange(t *testing.T) {
	n := NewNormal(0, 1)
	for _, p := range []float64{-0.1, 1.1, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Quantile(%v) did not panic", p)
				}
			}()
			n.Quantile(p)
		}()
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Interval(%v) did not panic", p)
				}
			}()
			n.Interval(p)
		}()
	}
}

// TestIntervalQuantileConsistency: for interior p the interval endpoints
// are the half-tail quantiles and enclose the stated mass.
func TestIntervalQuantileConsistency(t *testing.T) {
	n := NewNormal(1, 3)
	for _, p := range []float64{0.5, 0.9, 0.95, 0.99} {
		lo, hi := n.Interval(p)
		if got := n.Prob(lo, hi); math.Abs(got-p) > 1e-12 {
			t.Errorf("mass of Interval(%v) = %v", p, got)
		}
	}
}
