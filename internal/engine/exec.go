package engine

import (
	"fmt"
	"math"
)

// Counts are the resource counts of PostgreSQL's cost model, Equation (1)
// of the paper: pages sequentially scanned, pages randomly accessed,
// tuples processed, tuples processed via index, and CPU operations.
type Counts struct {
	NS float64 // sequential page reads   -> cs
	NR float64 // random page reads       -> cr
	NT float64 // tuples processed        -> ct
	NI float64 // index tuple accesses    -> ci
	NO float64 // CPU operations          -> co
}

// Add returns the component-wise sum.
func (c Counts) Add(o Counts) Counts {
	return Counts{c.NS + o.NS, c.NR + o.NR, c.NT + o.NT, c.NI + o.NI, c.NO + o.NO}
}

// Get returns the count for cost-unit index u (0..4 = ns,nr,nt,ni,no).
func (c Counts) Get(u int) float64 {
	switch u {
	case 0:
		return c.NS
	case 1:
		return c.NR
	case 2:
		return c.NT
	case 3:
		return c.NI
	case 4:
		return c.NO
	default:
		panic(fmt.Sprintf("engine: cost unit index %d out of range", u))
	}
}

// OpResult holds one operator's execution outcome: its output relation,
// true cardinalities, selectivity X = M / Π|R| (Equation 3), and resource
// counts.
type OpResult struct {
	Node *Node
	Cols []string
	Rows [][]int64

	Nl, Nr      float64 // input cardinalities
	M           float64 // output cardinality
	LeafProduct float64 // Π_{R in leaf tables} |R|
	Selectivity float64 // X = M / LeafProduct

	Counts Counts

	Left, Right *OpResult
}

// Results flattens the result tree in preorder (same order as
// Node.Finalize).
func (r *OpResult) Results() []*OpResult {
	var out []*OpResult
	var walk func(x *OpResult)
	walk = func(x *OpResult) {
		out = append(out, x)
		if x.Left != nil {
			walk(x.Left)
		}
		if x.Right != nil {
			walk(x.Right)
		}
	}
	walk(r)
	return out
}

// TotalCounts sums the resource counts over the whole plan.
func (r *OpResult) TotalCounts() Counts {
	var total Counts
	for _, x := range r.Results() {
		total = total.Add(x.Counts)
	}
	return total
}

// Run executes the finalized plan against db and returns the result tree.
func Run(db *DB, root *Node) (*OpResult, error) {
	if err := root.Validate(); err != nil {
		return nil, err
	}
	return runNode(db, root)
}

func runNode(db *DB, n *Node) (*OpResult, error) {
	switch {
	case n.Kind.IsScan():
		return runScan(db, n)
	case n.Kind.IsJoin():
		return runJoin(db, n)
	case n.Kind == Aggregate:
		return runAggregate(db, n)
	case n.Kind == Sort, n.Kind == Materialize:
		return runPassThrough(db, n)
	default:
		return nil, fmt.Errorf("engine: cannot execute node kind %s", n.Kind)
	}
}

// leafProduct computes Π|R| over the node's leaf tables.
func leafProduct(db *DB, n *Node) (float64, error) {
	p := 1.0
	for _, name := range n.LeafTables {
		t, err := db.Table(name)
		if err != nil {
			return 0, err
		}
		p *= float64(t.NumRows())
	}
	return p, nil
}

func runScan(db *DB, n *Node) (*OpResult, error) {
	t, err := db.Table(n.Table)
	if err != nil {
		return nil, err
	}
	idx := make([]int, len(n.Preds))
	for i := range n.Preds {
		idx[i] = t.ColIndex(n.Preds[i].Col)
		if idx[i] < 0 {
			return nil, fmt.Errorf("engine: predicate column %q not in table %q", n.Preds[i].Col, n.Table)
		}
	}
	var out [][]int64
	mIndex := 0.0 // tuples satisfying the index (first) predicate
	for _, row := range t.Rows {
		if len(n.Preds) > 0 && !n.Preds[0].Matches(row[idx[0]]) {
			continue
		}
		mIndex++
		ok := true
		for i := 1; i < len(n.Preds); i++ {
			if !n.Preds[i].Matches(row[idx[i]]) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, row)
		}
	}
	nrows := float64(t.NumRows())
	if len(n.Preds) == 0 {
		mIndex = nrows
	}
	m := float64(len(out))
	res := &OpResult{
		Node:        n,
		Cols:        t.Cols,
		Rows:        out,
		Nl:          nrows,
		M:           m,
		LeafProduct: nrows,
	}
	if nrows > 0 {
		res.Selectivity = m / nrows
	}
	res.Counts = ScanCounts(n.Kind, nrows, mIndex, len(n.Preds))
	return res, nil
}

// ScanCounts returns the resource counts of a table scan. For sequential
// scans every tuple is read and every predicate of the conjunction is
// evaluated on it; for index scans mIndex tuples satisfy the index
// predicate and are fetched, with the residual predicates evaluated on
// the fetched tuples. The same formulas drive the cost model probes in
// internal/costmodel, so the optimizer's model and the engine agree by
// construction (the residual model error lives in internal/hardware).
func ScanCounts(kind NodeKind, nrows, mIndex float64, numPreds int) Counts {
	switch kind {
	case SeqScan:
		return Counts{
			NS: math.Ceil(nrows / TuplesPerPage),
			NT: nrows,
			NO: nrows * float64(numPreds),
		}
	case IndexScan:
		// Random heap fetches and index-tuple visits proportional to the
		// tuples qualifying under the index predicate (type C2), plus
		// residual predicate evaluations.
		return Counts{
			NR: mIndex,
			NT: mIndex,
			NI: mIndex,
			NO: mIndex * float64(numPreds-1),
		}
	default:
		panic(fmt.Sprintf("engine: ScanCounts on %s", kind))
	}
}

// JoinCounts returns the resource counts of a join given the child input
// cardinalities and the output cardinality.
func JoinCounts(kind NodeKind, nl, nr, m float64) Counts {
	switch kind {
	case HashJoin:
		// Build + probe hashing (no), each input and output tuple
		// touched once (nt): C5'/C6' shapes.
		return Counts{NT: nl + nr + m, NO: nl + nr}
	case MergeJoin:
		// Inputs arrive sorted (Sort children carry that cost); the merge
		// touches each tuple once and compares linearly.
		return Counts{NT: nl + nr + m, NO: nl + nr}
	case NestLoopJoin:
		// The nominal algorithm compares every pair: no = Nl*Nr (C6').
		return Counts{NT: nl + nr + m, NO: nl * nr}
	default:
		panic(fmt.Sprintf("engine: JoinCounts on %s", kind))
	}
}

// UnaryCounts returns the resource counts of Sort, Materialize and
// Aggregate given the input cardinality.
func UnaryCounts(kind NodeKind, nl float64) Counts {
	switch kind {
	case Sort:
		logn := math.Log2(math.Max(nl, 2))
		return Counts{NT: nl, NO: nl * logn}
	case Materialize:
		return Counts{NT: nl}
	case Aggregate:
		return Counts{NT: nl, NO: 2 * nl}
	default:
		panic(fmt.Sprintf("engine: UnaryCounts on %s", kind))
	}
}

func runJoin(db *DB, n *Node) (*OpResult, error) {
	left, err := runNode(db, n.Left)
	if err != nil {
		return nil, err
	}
	right, err := runNode(db, n.Right)
	if err != nil {
		return nil, err
	}
	li := colIndex(left.Cols, n.LeftCol)
	ri := colIndex(right.Cols, n.RightCol)
	if li < 0 || ri < 0 {
		return nil, fmt.Errorf("engine: join columns %q/%q not found", n.LeftCol, n.RightCol)
	}

	// Hash join on the smaller side regardless of the nominal algorithm.
	rows := hashEquiJoin(left.Rows, right.Rows, li, ri)

	lp, err := leafProduct(db, n)
	if err != nil {
		return nil, err
	}
	res := &OpResult{
		Node:        n,
		Cols:        append(append([]string{}, left.Cols...), right.Cols...),
		Rows:        rows,
		Nl:          left.M,
		Nr:          right.M,
		M:           float64(len(rows)),
		LeafProduct: lp,
		Left:        left,
		Right:       right,
	}
	if lp > 0 {
		res.Selectivity = res.M / lp
	}
	res.Counts = JoinCounts(n.Kind, left.M, right.M, res.M)
	return res, nil
}

// hashEquiJoin joins two row sets on the given column indices,
// concatenating matching rows.
func hashEquiJoin(lrows, rrows [][]int64, li, ri int) [][]int64 {
	// Build on the smaller input.
	if len(lrows) <= len(rrows) {
		ht := make(map[int64][][]int64, len(lrows))
		for _, lr := range lrows {
			ht[lr[li]] = append(ht[lr[li]], lr)
		}
		var out [][]int64
		for _, rr := range rrows {
			for _, lr := range ht[rr[ri]] {
				out = append(out, concatRows(lr, rr))
			}
		}
		return out
	}
	ht := make(map[int64][][]int64, len(rrows))
	for _, rr := range rrows {
		ht[rr[ri]] = append(ht[rr[ri]], rr)
	}
	var out [][]int64
	for _, lr := range lrows {
		for _, rr := range ht[lr[li]] {
			out = append(out, concatRows(lr, rr))
		}
	}
	return out
}

func concatRows(a, b []int64) []int64 {
	out := make([]int64, 0, len(a)+len(b))
	out = append(out, a...)
	return append(out, b...)
}

func colIndex(cols []string, name string) int {
	for i, c := range cols {
		if c == name {
			return i
		}
	}
	return -1
}

func runPassThrough(db *DB, n *Node) (*OpResult, error) {
	child, err := runNode(db, n.Left)
	if err != nil {
		return nil, err
	}
	res := &OpResult{
		Node:        n,
		Cols:        child.Cols,
		Rows:        child.Rows,
		Nl:          child.M,
		M:           child.M,
		LeafProduct: child.LeafProduct,
		Selectivity: child.Selectivity,
		Left:        child,
	}
	res.Counts = UnaryCounts(n.Kind, child.M)
	return res, nil
}

func runAggregate(db *DB, n *Node) (*OpResult, error) {
	child, err := runNode(db, n.Left)
	if err != nil {
		return nil, err
	}
	var rows [][]int64
	if n.GroupCol == "" {
		// Scalar aggregate: COUNT(*) over the input.
		rows = [][]int64{{int64(len(child.Rows))}}
	} else {
		gi := colIndex(child.Cols, n.GroupCol)
		if gi < 0 {
			return nil, fmt.Errorf("engine: group column %q not found", n.GroupCol)
		}
		counts := make(map[int64]int64)
		for _, r := range child.Rows {
			counts[r[gi]]++
		}
		for k, v := range counts {
			rows = append(rows, []int64{k, v})
		}
	}
	lp, err := leafProduct(db, n)
	if err != nil {
		return nil, err
	}
	res := &OpResult{
		Node:        n,
		Cols:        []string{"group", "count"},
		Rows:        rows,
		Nl:          child.M,
		M:           float64(len(rows)),
		LeafProduct: lp,
		Left:        child,
	}
	if lp > 0 {
		res.Selectivity = res.M / lp
	}
	res.Counts = UnaryCounts(Aggregate, child.M)
	return res, nil
}
