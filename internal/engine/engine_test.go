package engine

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// testDB builds a tiny two-table database with a known join structure:
// r(a, b) with a = 0..n-1, b = a % 10; s(c, d) with c = 0..m-1, d = c % 5.
func testDB(nr, ns int) *DB {
	db := NewDB()
	rrows := make([][]int64, nr)
	for i := range rrows {
		rrows[i] = []int64{int64(i), int64(i % 10)}
	}
	srows := make([][]int64, ns)
	for i := range srows {
		srows[i] = []int64{int64(i), int64(i % 5)}
	}
	db.Add(NewTable("r", []string{"a", "b"}, rrows))
	db.Add(NewTable("s", []string{"c", "d"}, srows))
	return db
}

func TestSeqScanNoPredicate(t *testing.T) {
	db := testDB(250, 10)
	plan := &Node{Kind: SeqScan, Table: "r"}
	plan.Finalize()
	res, err := Run(db, plan)
	if err != nil {
		t.Fatal(err)
	}
	if res.M != 250 || res.Selectivity != 1 {
		t.Errorf("M=%v X=%v", res.M, res.Selectivity)
	}
	if res.Counts.NS != 3 { // ceil(250/100)
		t.Errorf("NS=%v, want 3", res.Counts.NS)
	}
	if res.Counts.NT != 250 || res.Counts.NO != 0 {
		t.Errorf("counts=%+v", res.Counts)
	}
}

func TestSeqScanPredicate(t *testing.T) {
	db := testDB(100, 10)
	plan := &Node{Kind: SeqScan, Table: "r",
		Preds: []Predicate{{Col: "a", Op: Lt, Lo: 30}}}
	plan.Finalize()
	res, err := Run(db, plan)
	if err != nil {
		t.Fatal(err)
	}
	if res.M != 30 {
		t.Errorf("M=%v, want 30", res.M)
	}
	if math.Abs(res.Selectivity-0.3) > 1e-12 {
		t.Errorf("X=%v, want 0.3", res.Selectivity)
	}
	if res.Counts.NO != 100 { // predicate evaluated on every tuple
		t.Errorf("NO=%v, want 100", res.Counts.NO)
	}
}

func TestIndexScanCounts(t *testing.T) {
	db := testDB(100, 10)
	plan := &Node{Kind: IndexScan, Table: "r",
		Preds: []Predicate{{Col: "a", Op: Between, Lo: 10, Hi: 19}}}
	plan.Finalize()
	res, err := Run(db, plan)
	if err != nil {
		t.Fatal(err)
	}
	if res.M != 10 {
		t.Fatalf("M=%v, want 10", res.M)
	}
	if res.Counts.NR != 10 || res.Counts.NI != 10 || res.Counts.NT != 10 || res.Counts.NS != 0 {
		t.Errorf("counts=%+v", res.Counts)
	}
}

func TestPredicateOps(t *testing.T) {
	cases := []struct {
		p    Predicate
		v    int64
		want bool
	}{
		{Predicate{Op: Lt, Lo: 5}, 4, true},
		{Predicate{Op: Lt, Lo: 5}, 5, false},
		{Predicate{Op: Le, Lo: 5}, 5, true},
		{Predicate{Op: Eq, Lo: 5}, 5, true},
		{Predicate{Op: Eq, Lo: 5}, 6, false},
		{Predicate{Op: Ge, Lo: 5}, 5, true},
		{Predicate{Op: Gt, Lo: 5}, 5, false},
		{Predicate{Op: Between, Lo: 2, Hi: 4}, 2, true},
		{Predicate{Op: Between, Lo: 2, Hi: 4}, 4, true},
		{Predicate{Op: Between, Lo: 2, Hi: 4}, 5, false},
	}
	for _, c := range cases {
		if got := c.p.Matches(c.v); got != c.want {
			t.Errorf("%v matches %d = %v, want %v", c.p, c.v, got, c.want)
		}
	}
}

func TestHashJoinCardinalityAndSelectivity(t *testing.T) {
	// r.b in 0..9, s.d in 0..4; join r.b = s.d matches b in 0..4.
	db := testDB(100, 50)
	plan := &Node{
		Kind: HashJoin, LeftCol: "b", RightCol: "d",
		Left:  &Node{Kind: SeqScan, Table: "r"},
		Right: &Node{Kind: SeqScan, Table: "s"},
	}
	plan.Finalize()
	res, err := Run(db, plan)
	if err != nil {
		t.Fatal(err)
	}
	// Each of the 5 matching b-values occurs 10x in r and 10x in s.
	want := 5.0 * 10 * 10
	if res.M != want {
		t.Errorf("M=%v, want %v", res.M, want)
	}
	if lp := res.LeafProduct; lp != 5000 {
		t.Errorf("leaf product %v, want 5000", lp)
	}
	if math.Abs(res.Selectivity-want/5000) > 1e-12 {
		t.Errorf("X=%v", res.Selectivity)
	}
	if res.Counts.NT != 100+50+want || res.Counts.NO != 150 {
		t.Errorf("counts=%+v", res.Counts)
	}
}

func TestNestLoopCountsQuadratic(t *testing.T) {
	db := testDB(20, 30)
	plan := &Node{
		Kind: NestLoopJoin, LeftCol: "b", RightCol: "d",
		Left:  &Node{Kind: SeqScan, Table: "r"},
		Right: &Node{Kind: SeqScan, Table: "s"},
	}
	plan.Finalize()
	res, err := Run(db, plan)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counts.NO != 20*30 {
		t.Errorf("NO=%v, want 600", res.Counts.NO)
	}
}

func TestJoinEquivalenceAcrossAlgorithms(t *testing.T) {
	// All three join algorithms must produce the same output cardinality.
	db := testDB(60, 40)
	var ms []float64
	for _, k := range []NodeKind{HashJoin, MergeJoin, NestLoopJoin} {
		plan := &Node{
			Kind: k, LeftCol: "b", RightCol: "d",
			Left:  &Node{Kind: SeqScan, Table: "r"},
			Right: &Node{Kind: SeqScan, Table: "s"},
		}
		plan.Finalize()
		res, err := Run(db, plan)
		if err != nil {
			t.Fatal(err)
		}
		ms = append(ms, res.M)
	}
	if ms[0] != ms[1] || ms[1] != ms[2] {
		t.Errorf("join cardinalities disagree: %v", ms)
	}
}

func TestSortMaterializePassThrough(t *testing.T) {
	db := testDB(128, 10)
	plan := &Node{Kind: Sort, Left: &Node{Kind: Materialize,
		Left: &Node{Kind: SeqScan, Table: "r"}}}
	plan.Finalize()
	res, err := Run(db, plan)
	if err != nil {
		t.Fatal(err)
	}
	if res.M != 128 || res.Left.M != 128 {
		t.Errorf("pass-through changed cardinality: %v", res.M)
	}
	if want := 128 * math.Log2(128); res.Counts.NO != want {
		t.Errorf("sort NO=%v, want %v", res.Counts.NO, want)
	}
	if res.Left.Counts.NT != 128 {
		t.Errorf("materialize NT=%v", res.Left.Counts.NT)
	}
}

func TestAggregateGroupBy(t *testing.T) {
	db := testDB(100, 10)
	plan := &Node{Kind: Aggregate, GroupCol: "b",
		Left: &Node{Kind: SeqScan, Table: "r"}}
	plan.Finalize()
	res, err := Run(db, plan)
	if err != nil {
		t.Fatal(err)
	}
	if res.M != 10 { // b has 10 distinct values
		t.Errorf("groups=%v, want 10", res.M)
	}
	var total int64
	for _, r := range res.Rows {
		total += r[1]
	}
	if total != 100 {
		t.Errorf("group counts sum to %v, want 100", total)
	}
}

func TestScalarAggregate(t *testing.T) {
	db := testDB(37, 10)
	plan := &Node{Kind: Aggregate,
		Left: &Node{Kind: SeqScan, Table: "r"}}
	plan.Finalize()
	res, err := Run(db, plan)
	if err != nil {
		t.Fatal(err)
	}
	if res.M != 1 || res.Rows[0][0] != 37 {
		t.Errorf("scalar aggregate got M=%v rows=%v", res.M, res.Rows)
	}
}

func TestFinalizeAssignsIDsAndLeaves(t *testing.T) {
	plan := &Node{
		Kind: HashJoin, LeftCol: "b", RightCol: "d",
		Left: &Node{
			Kind: HashJoin, LeftCol: "a", RightCol: "c",
			Left:  &Node{Kind: SeqScan, Table: "r"},
			Right: &Node{Kind: SeqScan, Table: "s"},
		},
		Right: &Node{Kind: SeqScan, Table: "u"},
	}
	order := plan.Finalize()
	if len(order) != 5 {
		t.Fatalf("got %d nodes", len(order))
	}
	for i, n := range order {
		if n.ID != i {
			t.Errorf("node %d has ID %d", i, n.ID)
		}
	}
	want := []string{"r", "s", "u"}
	if len(plan.LeafTables) != 3 {
		t.Fatalf("leaves=%v", plan.LeafTables)
	}
	for i := range want {
		if plan.LeafTables[i] != want[i] {
			t.Errorf("leaves=%v, want %v", plan.LeafTables, want)
		}
	}
}

func TestIsDescendant(t *testing.T) {
	inner := &Node{Kind: SeqScan, Table: "r"}
	mid := &Node{Kind: Sort, Left: inner}
	root := &Node{Kind: Aggregate, Left: mid}
	root.Finalize()
	if !IsDescendant(root, inner) || !IsDescendant(root, mid) || !IsDescendant(mid, inner) {
		t.Error("descendant relations missed")
	}
	if IsDescendant(inner, root) || IsDescendant(root, root) {
		t.Error("false descendant relations")
	}
}

func TestValidateRejectsMalformedPlans(t *testing.T) {
	bad := []*Node{
		{Kind: SeqScan}, // no table
		{Kind: HashJoin, Left: &Node{Kind: SeqScan, Table: "r"}}, // missing right
		{Kind: Sort}, // unary without child
		{Kind: SeqScan, Table: "r", Left: &Node{Kind: SeqScan, Table: "s"}}, // scan with child
	}
	for i, n := range bad {
		if err := n.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestRunUnknownTable(t *testing.T) {
	db := NewDB()
	plan := &Node{Kind: SeqScan, Table: "nope"}
	plan.Finalize()
	if _, err := Run(db, plan); err == nil {
		t.Error("expected error for unknown table")
	}
}

// Property: join output cardinality equals the brute-force pair count.
func TestJoinMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nr, ns := 1+r.Intn(40), 1+r.Intn(40)
		rrows := make([][]int64, nr)
		for i := range rrows {
			rrows[i] = []int64{int64(r.Intn(8))}
		}
		srows := make([][]int64, ns)
		for i := range srows {
			srows[i] = []int64{int64(r.Intn(8))}
		}
		db := NewDB()
		db.Add(NewTable("r", []string{"a"}, rrows))
		db.Add(NewTable("s", []string{"c"}, srows))
		plan := &Node{Kind: HashJoin, LeftCol: "a", RightCol: "c",
			Left:  &Node{Kind: SeqScan, Table: "r"},
			Right: &Node{Kind: SeqScan, Table: "s"}}
		plan.Finalize()
		res, err := Run(db, plan)
		if err != nil {
			return false
		}
		var brute int
		for _, a := range rrows {
			for _, c := range srows {
				if a[0] == c[0] {
					brute++
				}
			}
		}
		return res.M == float64(brute)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: selectivity is always within [0, 1] for scans and equals
// M / Π|R| for joins.
func TestSelectivityInvariant(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		db := testDB(10+r.Intn(100), 10+r.Intn(50))
		plan := &Node{Kind: HashJoin, LeftCol: "b", RightCol: "d",
			Left: &Node{Kind: SeqScan, Table: "r",
				Preds: []Predicate{{Col: "a", Op: Lt, Lo: int64(r.Intn(100))}}},
			Right: &Node{Kind: SeqScan, Table: "s"}}
		plan.Finalize()
		res, err := Run(db, plan)
		if err != nil {
			return false
		}
		for _, x := range res.Results() {
			if x.Selectivity < 0 || x.Selectivity > 1 {
				return false
			}
			if x.LeafProduct > 0 && math.Abs(x.Selectivity-x.M/x.LeafProduct) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestTotalCounts(t *testing.T) {
	db := testDB(100, 50)
	plan := &Node{Kind: HashJoin, LeftCol: "b", RightCol: "d",
		Left:  &Node{Kind: SeqScan, Table: "r"},
		Right: &Node{Kind: SeqScan, Table: "s"}}
	plan.Finalize()
	res, err := Run(db, plan)
	if err != nil {
		t.Fatal(err)
	}
	total := res.TotalCounts()
	sum := res.Counts.Add(res.Left.Counts).Add(res.Right.Counts)
	if total != sum {
		t.Errorf("TotalCounts=%+v, manual=%+v", total, sum)
	}
}

func TestCountsGet(t *testing.T) {
	c := Counts{1, 2, 3, 4, 5}
	for i := 0; i < 5; i++ {
		if c.Get(i) != float64(i+1) {
			t.Errorf("Get(%d)=%v", i, c.Get(i))
		}
	}
}
