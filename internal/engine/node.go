package engine

import (
	"fmt"
	"strings"
)

// NodeKind enumerates the physical operators.
type NodeKind int

// Physical operator kinds.
const (
	SeqScan NodeKind = iota
	IndexScan
	Sort
	Materialize
	HashJoin
	MergeJoin
	NestLoopJoin
	Aggregate
)

// String implements fmt.Stringer.
func (k NodeKind) String() string {
	switch k {
	case SeqScan:
		return "SeqScan"
	case IndexScan:
		return "IndexScan"
	case Sort:
		return "Sort"
	case Materialize:
		return "Materialize"
	case HashJoin:
		return "HashJoin"
	case MergeJoin:
		return "MergeJoin"
	case NestLoopJoin:
		return "NestLoopJoin"
	case Aggregate:
		return "Aggregate"
	default:
		return fmt.Sprintf("NodeKind(%d)", int(k))
	}
}

// IsScan reports whether the kind is a leaf table access.
func (k NodeKind) IsScan() bool { return k == SeqScan || k == IndexScan }

// IsJoin reports whether the kind is a binary join.
func (k NodeKind) IsJoin() bool {
	return k == HashJoin || k == MergeJoin || k == NestLoopJoin
}

// Node is an operator in a rooted binary query-plan tree (Section 2).
// Scans are leaves; Sort/Materialize/Aggregate are unary; joins are
// binary with an equality condition LeftCol = RightCol resolved against
// the child outputs.
type Node struct {
	Kind NodeKind

	// Scans. Preds is a conjunction of pushed-down selections; for index
	// scans the first predicate is the index condition and the rest are
	// residual filters applied to fetched tuples.
	Table string
	Preds []Predicate

	// Joins.
	LeftCol, RightCol string

	// Aggregate. An empty GroupCol is a scalar aggregate (one output row).
	GroupCol string

	Left, Right *Node

	// Finalize assigns the fields below.
	ID         int      // preorder position, unique within the plan
	LeafTables []string // R: table names under this subtree, left-to-right
}

// Finalize assigns IDs in preorder and computes LeafTables bottom-up. It
// must be called once on the root before execution or prediction and
// returns the nodes in preorder.
func (n *Node) Finalize() []*Node {
	var order []*Node
	var walk func(x *Node)
	walk = func(x *Node) {
		x.ID = len(order)
		order = append(order, x)
		if x.Left != nil {
			walk(x.Left)
		}
		if x.Right != nil {
			walk(x.Right)
		}
		switch {
		case x.Kind.IsScan():
			x.LeafTables = []string{x.Table}
		case x.Right != nil:
			x.LeafTables = append(append([]string{}, x.Left.LeafTables...), x.Right.LeafTables...)
		default:
			x.LeafTables = append([]string{}, x.Left.LeafTables...)
		}
	}
	walk(n)
	return order
}

// Nodes returns the plan's operators in preorder. The plan must be
// finalized.
func (n *Node) Nodes() []*Node {
	var order []*Node
	var walk func(x *Node)
	walk = func(x *Node) {
		order = append(order, x)
		if x.Left != nil {
			walk(x.Left)
		}
		if x.Right != nil {
			walk(x.Right)
		}
	}
	walk(n)
	return order
}

// IsDescendant reports whether d lies strictly inside the subtree rooted
// at a (d ∈ Desc(a) in the paper's notation).
func IsDescendant(a, d *Node) bool {
	if a == d {
		return false
	}
	var find func(x *Node) bool
	find = func(x *Node) bool {
		if x == nil {
			return false
		}
		if x == d {
			return true
		}
		return find(x.Left) || find(x.Right)
	}
	return find(a.Left) || find(a.Right)
}

// String renders the plan as an indented tree, e.g. for debugging and the
// CLI's explain output.
func (n *Node) String() string {
	var b strings.Builder
	var walk func(x *Node, depth int)
	walk = func(x *Node, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		switch {
		case x.Kind.IsScan():
			fmt.Fprintf(&b, "%s(%s", x.Kind, x.Table)
			for pi := range x.Preds {
				if pi == 0 {
					b.WriteString(" | ")
				} else {
					b.WriteString(" and ")
				}
				b.WriteString(x.Preds[pi].String())
			}
			b.WriteString(")")
		case x.Kind.IsJoin():
			fmt.Fprintf(&b, "%s(%s = %s)", x.Kind, x.LeftCol, x.RightCol)
		case x.Kind == Aggregate:
			if x.GroupCol == "" {
				b.WriteString("Aggregate()")
			} else {
				fmt.Fprintf(&b, "Aggregate(group by %s)", x.GroupCol)
			}
		default:
			b.WriteString(x.Kind.String())
		}
		b.WriteString("\n")
		if x.Left != nil {
			walk(x.Left, depth+1)
		}
		if x.Right != nil {
			walk(x.Right, depth+1)
		}
	}
	walk(n, 0)
	return b.String()
}

// Validate checks structural invariants: scans are leaves, unary nodes
// have exactly a left child, joins have both children and join columns.
func (n *Node) Validate() error {
	for _, x := range n.Nodes() {
		switch {
		case x.Kind.IsScan():
			if x.Left != nil || x.Right != nil {
				return fmt.Errorf("engine: scan node %q has children", x.Table)
			}
			if x.Table == "" {
				return fmt.Errorf("engine: scan node without table")
			}
			if x.Kind == IndexScan && len(x.Preds) == 0 {
				return fmt.Errorf("engine: index scan on %q without an index predicate", x.Table)
			}
		case x.Kind.IsJoin():
			if x.Left == nil || x.Right == nil {
				return fmt.Errorf("engine: join node missing a child")
			}
			if x.LeftCol == "" || x.RightCol == "" {
				return fmt.Errorf("engine: join node missing join columns")
			}
		default:
			if x.Left == nil || x.Right != nil {
				return fmt.Errorf("engine: unary node %s must have exactly a left child", x.Kind)
			}
		}
	}
	return nil
}
