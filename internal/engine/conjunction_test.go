package engine

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// conjDB builds a table with three independent uniform columns for
// conjunction tests.
func conjDB(n int, seed int64) *DB {
	r := rand.New(rand.NewSource(seed))
	rows := make([][]int64, n)
	for i := range rows {
		rows[i] = []int64{int64(r.Intn(100)), int64(r.Intn(100)), int64(r.Intn(100))}
	}
	db := NewDB()
	db.Add(NewTable("t", []string{"x", "y", "z"}, rows))
	return db
}

func TestSeqScanConjunction(t *testing.T) {
	db := conjDB(20000, 1)
	plan := &Node{Kind: SeqScan, Table: "t", Preds: []Predicate{
		{Col: "x", Op: Lt, Lo: 50},
		{Col: "y", Op: Lt, Lo: 20},
	}}
	plan.Finalize()
	res, err := Run(db, plan)
	if err != nil {
		t.Fatal(err)
	}
	// Independent columns: combined selectivity ~ 0.5 * 0.2 = 0.1.
	if math.Abs(res.Selectivity-0.1) > 0.02 {
		t.Errorf("conjunction selectivity %v, want ~0.1", res.Selectivity)
	}
	// Every predicate is evaluated per tuple on a seq scan.
	if res.Counts.NO != 2*20000 {
		t.Errorf("NO=%v, want 40000", res.Counts.NO)
	}
}

func TestIndexScanConjunctionCounts(t *testing.T) {
	db := conjDB(10000, 2)
	plan := &Node{Kind: IndexScan, Table: "t", Preds: []Predicate{
		{Col: "x", Op: Lt, Lo: 10}, // index predicate, ~1000 fetches
		{Col: "y", Op: Lt, Lo: 50}, // residual, ~halves the output
	}}
	plan.Finalize()
	res, err := Run(db, plan)
	if err != nil {
		t.Fatal(err)
	}
	// Fetches follow the index predicate, not the final output.
	if res.Counts.NR < 800 || res.Counts.NR > 1200 {
		t.Errorf("NR=%v, want ~1000 (index-predicate matches)", res.Counts.NR)
	}
	if res.M >= res.Counts.NR {
		t.Errorf("output %v not below fetches %v", res.M, res.Counts.NR)
	}
	// One residual predicate evaluated per fetched tuple.
	if res.Counts.NO != res.Counts.NR {
		t.Errorf("NO=%v, want %v", res.Counts.NO, res.Counts.NR)
	}
}

func TestIndexScanRequiresPredicate(t *testing.T) {
	n := &Node{Kind: IndexScan, Table: "t"}
	if err := n.Validate(); err == nil {
		t.Error("expected validation error for index scan without predicate")
	}
}

// Property: conjunction selectivity equals the brute-force fraction, and
// never exceeds the most selective single predicate.
func TestConjunctionMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		db := conjDB(500+r.Intn(500), seed)
		tbl := db.MustTable("t")
		preds := []Predicate{
			{Col: "x", Op: Lt, Lo: int64(10 + r.Intn(90))},
			{Col: "z", Op: Ge, Lo: int64(r.Intn(50))},
		}
		plan := &Node{Kind: SeqScan, Table: "t", Preds: preds}
		plan.Finalize()
		res, err := Run(db, plan)
		if err != nil {
			return false
		}
		var brute float64
		for _, row := range tbl.Rows {
			if preds[0].Matches(row[0]) && preds[1].Matches(row[2]) {
				brute++
			}
		}
		return res.M == brute
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestScanCountsFormulae(t *testing.T) {
	seq := ScanCounts(SeqScan, 1000, 1000, 3)
	if seq.NO != 3000 || seq.NT != 1000 || seq.NS != 10 {
		t.Errorf("seq counts %+v", seq)
	}
	idx := ScanCounts(IndexScan, 1000, 100, 2)
	if idx.NR != 100 || idx.NI != 100 || idx.NO != 100 {
		t.Errorf("index counts %+v", idx)
	}
	single := ScanCounts(IndexScan, 1000, 100, 1)
	if single.NO != 0 {
		t.Errorf("single-pred index NO=%v, want 0", single.NO)
	}
}
