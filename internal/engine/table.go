// Package engine is the in-memory relational execution substrate. It
// provides integer-encoded tables, predicates, binary query-plan trees
// (Section 2 of the paper), and an executor that — besides producing the
// true output cardinalities — reports the PostgreSQL cost-model resource
// counts n = (ns, nr, nt, ni, no) of Equation (1) for every operator.
//
// Joins are always evaluated hash-based for speed; the reported counts
// follow each operator's nominal algorithm (a nested-loop join reports
// Nl*Nr tuple comparisons even though the engine does not perform
// quadratic work), so simulated cost is faithful without quadratic
// wall-clock time.
package engine

import (
	"fmt"
	"math"
)

// TuplesPerPage is the fixed page fan-out used to convert row counts to
// page counts for the I/O cost units.
const TuplesPerPage = 100

// Table is an in-memory relation with int64-encoded attributes.
type Table struct {
	Name string
	Cols []string
	Rows [][]int64

	colIdx map[string]int
}

// NewTable constructs a table and indexes its column names. Column names
// must be unique within the table.
func NewTable(name string, cols []string, rows [][]int64) *Table {
	t := &Table{Name: name, Cols: cols, Rows: rows, colIdx: make(map[string]int, len(cols))}
	for i, c := range cols {
		if _, dup := t.colIdx[c]; dup {
			panic(fmt.Sprintf("engine: duplicate column %q in table %q", c, name))
		}
		t.colIdx[c] = i
	}
	return t
}

// ColIndex returns the position of col, or -1 if absent.
func (t *Table) ColIndex(col string) int {
	if i, ok := t.colIdx[col]; ok {
		return i
	}
	return -1
}

// NumRows returns the cardinality |R|.
func (t *Table) NumRows() int { return len(t.Rows) }

// Pages returns the number of pages the relation occupies.
func (t *Table) Pages() float64 {
	return math.Ceil(float64(len(t.Rows)) / TuplesPerPage)
}

// DB is a named collection of tables.
type DB struct {
	Tables map[string]*Table
}

// NewDB returns an empty database.
func NewDB() *DB { return &DB{Tables: make(map[string]*Table)} }

// Add registers a table, replacing any previous table of the same name.
func (db *DB) Add(t *Table) { db.Tables[t.Name] = t }

// Table returns the named table or an error.
func (db *DB) Table(name string) (*Table, error) {
	t, ok := db.Tables[name]
	if !ok {
		return nil, fmt.Errorf("engine: unknown table %q", name)
	}
	return t, nil
}

// MustTable is Table but panics on unknown names; used where the plan was
// already validated.
func (db *DB) MustTable(name string) *Table {
	t, err := db.Table(name)
	if err != nil {
		panic(err)
	}
	return t
}

// CmpOp enumerates comparison operators for scan predicates.
type CmpOp int

// Comparison operators.
const (
	Lt CmpOp = iota
	Le
	Eq
	Ge
	Gt
	Between // inclusive [Lo, Hi]
)

// String implements fmt.Stringer.
func (op CmpOp) String() string {
	switch op {
	case Lt:
		return "<"
	case Le:
		return "<="
	case Eq:
		return "="
	case Ge:
		return ">="
	case Gt:
		return ">"
	case Between:
		return "between"
	default:
		return fmt.Sprintf("CmpOp(%d)", int(op))
	}
}

// Predicate is a single-column comparison pushed down into a scan. For
// Between both bounds are used; otherwise Lo is the operand.
type Predicate struct {
	Col string
	Op  CmpOp
	Lo  int64
	Hi  int64
}

// Matches reports whether value v satisfies the predicate.
func (p *Predicate) Matches(v int64) bool {
	switch p.Op {
	case Lt:
		return v < p.Lo
	case Le:
		return v <= p.Lo
	case Eq:
		return v == p.Lo
	case Ge:
		return v >= p.Lo
	case Gt:
		return v > p.Lo
	case Between:
		return v >= p.Lo && v <= p.Hi
	default:
		panic(fmt.Sprintf("engine: unknown CmpOp %d", int(p.Op)))
	}
}

// String implements fmt.Stringer.
func (p *Predicate) String() string {
	if p.Op == Between {
		return fmt.Sprintf("%s between %d and %d", p.Col, p.Lo, p.Hi)
	}
	return fmt.Sprintf("%s %s %d", p.Col, p.Op, p.Lo)
}
