package cache

// Sharded is a string-keyed LRU partitioned into independently locked
// shards, so concurrent tenants hitting disjoint keys do not contend on
// one lock. Keys are assigned to shards by FNV-1a hash; each shard is a
// plain LRU with its own capacity slice, so the strict-LRU guarantee
// holds per shard (global eviction order is approximate, which is the
// usual sharded-cache trade).
type Sharded[V any] struct {
	shards []*LRU[string, V]
	mask   uint64
}

// NewSharded returns a sharded cache sized for roughly capacity entries
// in total. The shard count is rounded up to a power of two (values < 1
// select a single shard) and each shard gets ceil(capacity/shards)
// entries, at least one — so the true bound is shards*ceil(capacity/
// shards), up to shards-1 entries above the requested capacity (and
// never below it).
func NewSharded[V any](capacity, shards int) *Sharded[V] {
	n := 1
	for n < shards {
		n <<= 1
	}
	per := (capacity + n - 1) / n
	c := &Sharded[V]{shards: make([]*LRU[string, V], n), mask: uint64(n - 1)}
	for i := range c.shards {
		c.shards[i] = NewLRU[string, V](per)
	}
	return c
}

// fnv1a is the 64-bit FNV-1a hash, inlined to avoid per-Get allocations.
func fnv1a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

func (c *Sharded[V]) shard(key string) *LRU[string, V] {
	return c.shards[fnv1a(key)&c.mask]
}

// Get returns the cached value for key and marks it most recently used
// in its shard.
func (c *Sharded[V]) Get(key string) (V, bool) {
	return c.shard(key).Get(key)
}

// Put inserts or refreshes key, evicting its shard's least recently used
// entry when that shard is full.
func (c *Sharded[V]) Put(key string, val V) {
	c.shard(key).Put(key, val)
}

// Len returns the total number of cached entries across shards.
func (c *Sharded[V]) Len() int {
	n := 0
	for _, s := range c.shards {
		n += s.Len()
	}
	return n
}

// NumShards returns the shard count.
func (c *Sharded[V]) NumShards() int { return len(c.shards) }

// Snapshot aggregates the counters of every shard.
func (c *Sharded[V]) Snapshot() Stats {
	var agg Stats
	for _, s := range c.shards {
		agg.Add(s.Snapshot())
	}
	return agg
}

// ShardSnapshots returns the per-shard counters, in shard order.
func (c *Sharded[V]) ShardSnapshots() []Stats {
	out := make([]Stats, len(c.shards))
	for i, s := range c.shards {
		out[i] = s.Snapshot()
	}
	return out
}
