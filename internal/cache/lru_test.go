package cache

import (
	"fmt"
	"sync"
	"testing"
)

func TestLRUBasic(t *testing.T) {
	c := NewLRU[string, int](2)
	if _, ok := c.Get("a"); ok {
		t.Error("empty cache returned a hit")
	}
	c.Put("a", 1)
	c.Put("b", 2)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Errorf("Get(a) = %v, %v", v, ok)
	}
	// "b" is now least recently used; inserting "c" must evict it.
	c.Put("c", 3)
	if _, ok := c.Get("b"); ok {
		t.Error("b survived eviction")
	}
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Errorf("a evicted instead of b: %v, %v", v, ok)
	}
	if v, ok := c.Get("c"); !ok || v != 3 {
		t.Errorf("Get(c) = %v, %v", v, ok)
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}
}

func TestLRUPutRefreshesExisting(t *testing.T) {
	c := NewLRU[string, int](2)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Put("a", 10) // refresh, not insert: must not evict anything
	if v, ok := c.Get("a"); !ok || v != 10 {
		t.Errorf("Get(a) = %v, %v, want 10", v, ok)
	}
	if _, ok := c.Get("b"); !ok {
		t.Error("b evicted by a refresh")
	}
}

func TestLRUStats(t *testing.T) {
	c := NewLRU[string, int](4)
	c.Put("a", 1)
	c.Get("a")
	c.Get("a")
	c.Get("missing")
	hits, misses := c.Stats()
	if hits != 2 || misses != 1 {
		t.Errorf("Stats = %d hits, %d misses; want 2, 1", hits, misses)
	}
}

func TestLRUTinyCapacity(t *testing.T) {
	c := NewLRU[int, int](0) // clamped to 1
	c.Put(1, 1)
	c.Put(2, 2)
	if _, ok := c.Get(1); ok {
		t.Error("capacity clamp failed: both entries retained")
	}
	if v, ok := c.Get(2); !ok || v != 2 {
		t.Errorf("Get(2) = %v, %v", v, ok)
	}
}

func TestLRUConcurrent(t *testing.T) {
	c := NewLRU[string, int](64)
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := fmt.Sprintf("k%d", (g*7+i)%96)
				if v, ok := c.Get(k); ok && v != len(k) {
					t.Errorf("corrupted value for %s: %d", k, v)
				}
				c.Put(k, len(k))
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 64 {
		t.Errorf("Len = %d exceeds capacity", c.Len())
	}
}
