// Package cache provides the concurrency-safe LRU maps used to memoize
// expensive per-plan computations (sampling passes keyed by the plan's
// canonical signature): a minimal single-lock LRU and a sharded variant
// (Sharded) for multi-tenant serving, where one lock would serialize
// every tenant's cache traffic. Both keep hit/miss/eviction counters for
// observability.
package cache

import (
	"container/list"
	"sync"
)

// Stats is a point-in-time snapshot of a cache's counters.
type Stats struct {
	Hits, Misses uint64
	// Evictions counts entries dropped to make room, excluding
	// overwrites of an existing key.
	Evictions uint64
	// Entries is the current number of cached values.
	Entries int
}

// Add accumulates other into s, for aggregating per-shard snapshots.
func (s *Stats) Add(other Stats) {
	s.Hits += other.Hits
	s.Misses += other.Misses
	s.Evictions += other.Evictions
	s.Entries += other.Entries
}

// LRU is a fixed-capacity least-recently-used cache safe for concurrent
// use by multiple goroutines.
type LRU[K comparable, V any] struct {
	mu        sync.Mutex
	capacity  int
	ll        *list.List
	items     map[K]*list.Element
	hits      uint64
	misses    uint64
	evictions uint64
}

type entry[K comparable, V any] struct {
	key K
	val V
}

// NewLRU returns an empty cache holding at most capacity entries;
// capacity < 1 is treated as 1.
func NewLRU[K comparable, V any](capacity int) *LRU[K, V] {
	if capacity < 1 {
		capacity = 1
	}
	return &LRU[K, V]{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[K]*list.Element, capacity),
	}
}

// Get returns the cached value for key and marks it most recently used.
func (c *LRU[K, V]) Get(key K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(*entry[K, V]).val, true
	}
	c.misses++
	var zero V
	return zero, false
}

// Put inserts or refreshes key, evicting the least recently used entry
// when the cache is full.
func (c *LRU[K, V]) Put(key K, val V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*entry[K, V]).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&entry[K, V]{key: key, val: val})
	if c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*entry[K, V]).key)
		c.evictions++
	}
}

// Len returns the number of cached entries.
func (c *LRU[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns the cumulative hit and miss counts.
func (c *LRU[K, V]) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Snapshot returns all counters at once.
func (c *LRU[K, V]) Snapshot() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{Hits: c.hits, Misses: c.misses, Evictions: c.evictions, Entries: c.ll.Len()}
}
