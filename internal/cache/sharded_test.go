package cache

import (
	"fmt"
	"sync"
	"testing"
)

func TestShardedRoundsShardsUp(t *testing.T) {
	for _, tc := range []struct{ shards, want int }{
		{0, 1}, {1, 1}, {2, 2}, {3, 4}, {16, 16}, {17, 32},
	} {
		c := NewSharded[int](64, tc.shards)
		if got := c.NumShards(); got != tc.want {
			t.Errorf("NewSharded(64, %d): %d shards, want %d", tc.shards, got, tc.want)
		}
	}
}

func TestShardedGetPut(t *testing.T) {
	c := NewSharded[string](64, 4)
	if _, ok := c.Get("a"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("a", "1")
	c.Put("b", "2")
	if v, ok := c.Get("a"); !ok || v != "1" {
		t.Fatalf("Get(a) = %q, %v", v, ok)
	}
	c.Put("a", "3") // overwrite, no eviction
	if v, _ := c.Get("a"); v != "3" {
		t.Fatalf("Get(a) after overwrite = %q", v)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	s := c.Snapshot()
	if s.Evictions != 0 || s.Entries != 2 {
		t.Fatalf("snapshot %+v, want 0 evictions, 2 entries", s)
	}
}

func TestShardedEvictionBoundsEachShard(t *testing.T) {
	// Total capacity 8 over 4 shards = 2 per shard. Insert far more
	// distinct keys than capacity: every shard must stay within its
	// slice and the overflow must be counted as evictions.
	c := NewSharded[int](8, 4)
	const n = 100
	for i := 0; i < n; i++ {
		c.Put(fmt.Sprintf("key-%d", i), i)
	}
	if c.Len() > 8 {
		t.Fatalf("Len = %d exceeds capacity 8", c.Len())
	}
	for i, s := range c.ShardSnapshots() {
		if s.Entries > 2 {
			t.Errorf("shard %d holds %d entries, per-shard cap is 2", i, s.Entries)
		}
	}
	s := c.Snapshot()
	if got := s.Evictions; got != uint64(n-c.Len()) {
		t.Errorf("evictions = %d, want %d (inserted %d, kept %d)", got, n-c.Len(), n, c.Len())
	}
}

func TestShardedSnapshotAggregatesShards(t *testing.T) {
	c := NewSharded[int](32, 8)
	for i := 0; i < 48; i++ {
		k := fmt.Sprintf("k%d", i)
		c.Put(k, i)
		c.Get(k)                    // hit
		c.Get(k + "-never-present") // miss
	}
	var sum Stats
	for _, s := range c.ShardSnapshots() {
		sum.Add(s)
	}
	if agg := c.Snapshot(); agg != sum {
		t.Errorf("Snapshot %+v != sum of shard snapshots %+v", agg, sum)
	}
	if sum.Hits != 48 || sum.Misses != 48 {
		t.Errorf("hits/misses = %d/%d, want 48/48", sum.Hits, sum.Misses)
	}
}

// TestShardedConcurrent hammers the cache from many goroutines sharing
// key ranges; run under -race this checks the per-shard locking, and the
// counter totals must account for every operation.
func TestShardedConcurrent(t *testing.T) {
	c := NewSharded[int](64, 8)
	const (
		goroutines = 16
		opsEach    = 500
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < opsEach; i++ {
				k := fmt.Sprintf("k%d", (g*opsEach+i)%97)
				c.Put(k, i)
				c.Get(k)
			}
		}(g)
	}
	wg.Wait()
	s := c.Snapshot()
	if s.Hits+s.Misses != goroutines*opsEach {
		t.Errorf("hits+misses = %d, want %d", s.Hits+s.Misses, goroutines*opsEach)
	}
	if s.Entries != c.Len() {
		t.Errorf("snapshot entries %d != Len %d", s.Entries, c.Len())
	}
}
