package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	uaqetp "repro"
)

func postJSON(t *testing.T, ts *httptest.Server, path string, body any) (*http.Response, []byte) {
	t.Helper()
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(body); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+path, "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	out.ReadFrom(resp.Body)
	return resp, out.Bytes()
}

func TestHTTPEndpoints(t *testing.T) {
	srv, qs := newTestServer(t, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// /healthz lists both tenants.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status  string   `json:"status"`
		Tenants []string `json:"tenants"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health.Status != "ok" || len(health.Tenants) != 2 {
		t.Fatalf("healthz = %+v", health)
	}

	// /predict returns the distribution.
	resp, body := postJSON(t, ts, "/predict", predictRequest{Tenant: "alpha", Query: qs[0]})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict status %d: %s", resp.StatusCode, body)
	}
	var pr predictResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Mean <= 0 || pr.Sigma < 0 || pr.P95 < pr.P50 || pr.DominantUnit == "" {
		t.Fatalf("implausible prediction %+v", pr)
	}

	// /submit admits a generous deadline...
	resp, body = postJSON(t, ts, "/submit", Request{Tenant: "alpha", Query: qs[0], Deadline: 5})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit status %d: %s", resp.StatusCode, body)
	}
	var d Decision
	if err := json.Unmarshal(body, &d); err != nil {
		t.Fatal(err)
	}
	if !d.Admitted || d.QueueLen != 1 {
		t.Fatalf("decision %+v", d)
	}
	// ...and rejects an impossible one with 429.
	resp, body = postJSON(t, ts, "/submit", Request{Tenant: "alpha", Query: qs[0], Deadline: 1e-9})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("hopeless submit status %d: %s", resp.StatusCode, body)
	}

	// /drain executes the one admitted query.
	resp, body = postJSON(t, ts, "/drain", struct{}{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("drain status %d: %s", resp.StatusCode, body)
	}
	var drain struct {
		Executed int       `json:"executed"`
		Outcomes []Outcome `json:"outcomes"`
	}
	if err := json.Unmarshal(body, &drain); err != nil {
		t.Fatal(err)
	}
	if drain.Executed != 1 || len(drain.Outcomes) != 1 || drain.Outcomes[0].Elapsed <= 0 {
		t.Fatalf("drain = %+v", drain)
	}

	// /stats reflects the traffic.
	resp, err = http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(st.Tenants) != 2 || st.QueueLen != 0 {
		t.Fatalf("stats = %+v", st)
	}
	var alpha TenantStats
	for _, tn := range st.Tenants {
		if tn.Name == "alpha" {
			alpha = tn
		}
	}
	if alpha.Executed != 1 || alpha.Admitted != 1 || alpha.Rejected != 1 {
		t.Fatalf("alpha stats = %+v", alpha)
	}
	if alpha.Drift.Observations != 1 {
		t.Fatalf("feedback did not see the drained execution: %+v", alpha.Drift)
	}
}

func TestHTTPErrors(t *testing.T) {
	srv, qs := newTestServer(t, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, _ := postJSON(t, ts, "/predict", predictRequest{Tenant: "nobody", Query: qs[0]})
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown tenant: status %d, want 404", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts, "/predict", predictRequest{Tenant: "alpha"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("nil query: status %d, want 400", resp.StatusCode)
	}
	resp, err := http.Post(ts.URL+"/submit", "application/json", bytes.NewBufferString("{nonsense"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body: status %d, want 400", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/predict")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /predict: status %d, want 405", resp.StatusCode)
	}
	bad := &uaqetp.Query{Name: "bad", Tables: []string{"no-such-table"}}
	resp, _ = postJSON(t, ts, "/submit", Request{Tenant: "alpha", Query: bad})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid query: status %d, want 400", resp.StatusCode)
	}
}

func TestDispatcherDrainsQueue(t *testing.T) {
	srv, qs := newTestServer(t, Config{})
	stop := srv.StartDispatcher(time.Millisecond)
	for _, q := range qs[:3] {
		if _, err := srv.Submit(context.Background(), Request{Tenant: "alpha", Query: q, Deadline: 5}); err != nil {
			t.Fatal(err)
		}
	}
	stop() // stop drains a final time, so the queue must be empty now
	if st := srv.Stats(); st.QueueLen != 0 {
		t.Errorf("queue not drained: %d pending", st.QueueLen)
	}
}

// TestHTTPRecalibrate exercises the /recalibrate endpoint: a forced
// recalibration reports the unit swap, and a quiet tenant without force
// reports advised=false with units untouched.
func TestHTTPRecalibrate(t *testing.T) {
	srv, _ := newTestServer(t, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, body := postJSON(t, ts, "/recalibrate", RecalibrateRequest{Tenant: "alpha"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("recalibrate status %d: %s", resp.StatusCode, body)
	}
	var r RecalibrateResponse
	if err := json.Unmarshal(body, &r); err != nil {
		t.Fatal(err)
	}
	if r.Advised || r.Recalibrated || len(r.UnitsAfter) != 0 {
		t.Fatalf("quiet tenant recalibrated over HTTP: %+v", r)
	}

	resp, body = postJSON(t, ts, "/recalibrate", RecalibrateRequest{Tenant: "alpha", Seed: 9, Force: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("forced recalibrate status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &r); err != nil {
		t.Fatal(err)
	}
	if !r.Recalibrated || r.Seed != 9 || len(r.UnitsBefore) == 0 || len(r.UnitsAfter) == 0 {
		t.Fatalf("forced recalibrate response %+v", r)
	}

	resp, _ = postJSON(t, ts, "/recalibrate", RecalibrateRequest{Tenant: "nobody", Force: true})
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown tenant: status %d, want 404", resp.StatusCode)
	}
}
