package serve

import (
	"context"
	"sync"
	"testing"
)

// TestRecalibrateNotAdvisedWithoutForce: with a quiet feedback loop the
// action is a no-op unless forced.
func TestRecalibrateNotAdvisedWithoutForce(t *testing.T) {
	srv, _ := newTestServer(t, Config{})
	resp, err := srv.Recalibrate(context.Background(), RecalibrateRequest{Tenant: "alpha"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Advised || resp.Recalibrated {
		t.Fatalf("quiet tenant recalibrated: %+v", resp)
	}
	if _, err := srv.Recalibrate(context.Background(), RecalibrateRequest{Tenant: "nobody"}); err == nil {
		t.Error("unknown tenant accepted")
	}
}

// TestRecalibrateSwapsUnitsLive is the acceptance scenario: /recalibrate
// swaps units in without dropping in-flight queries, predictions before
// and after the swap are deterministic for a fixed seed, and co-located
// tenants sharing the underlying System keep their own units.
func TestRecalibrateSwapsUnitsLive(t *testing.T) {
	run := func() (before, after, beta float64, units []string) {
		srv, qs := newTestServer(t, Config{})
		q := qs[0]
		ctx := context.Background()

		p, err := srv.Predict(ctx, "alpha", q)
		if err != nil {
			t.Fatal(err)
		}
		before = p.Mean()

		// Keep predictions in flight across both tenants while the swap
		// happens; none may fail (run under -race to check the handle).
		var wg sync.WaitGroup
		start := make(chan struct{})
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				<-start
				tenant := []string{"alpha", "beta"}[g%2]
				for i := 0; i < 4; i++ {
					if _, err := srv.Predict(ctx, tenant, qs[i%len(qs)]); err != nil {
						t.Errorf("in-flight predict %s: %v", tenant, err)
					}
				}
			}(g)
		}
		close(start)
		resp, err := srv.Recalibrate(ctx, RecalibrateRequest{Tenant: "alpha", Seed: 777, Force: true})
		if err != nil {
			t.Fatal(err)
		}
		wg.Wait()
		if !resp.Recalibrated || resp.Seed != 777 {
			t.Fatalf("forced recalibration did not run: %+v", resp)
		}
		if len(resp.UnitsBefore) == 0 || len(resp.UnitsAfter) == 0 {
			t.Fatalf("units missing from response: %+v", resp)
		}

		pa, err := srv.Predict(ctx, "alpha", q)
		if err != nil {
			t.Fatal(err)
		}
		after = pa.Mean()
		pb, err := srv.Predict(ctx, "beta", q)
		if err != nil {
			t.Fatal(err)
		}
		beta = pb.Mean()

		ta, _ := srv.Tenant("alpha")
		return before, after, beta, append(resp.UnitsAfter, ta.sys.CostUnits()...)
	}

	b1, a1, beta1, u1 := run()
	b2, a2, beta2, u2 := run()
	if b1 != b2 || a1 != a2 || beta1 != beta2 {
		t.Errorf("recalibration not deterministic: (%v,%v,%v) vs (%v,%v,%v)", b1, a1, beta1, b2, a2, beta2)
	}
	if a1 == b1 {
		t.Errorf("prediction unchanged by recalibration: %v", a1)
	}
	if beta1 != b1 {
		t.Errorf("beta's prediction moved with alpha's recalibration: %v vs %v", beta1, b1)
	}
	for i := range u1 {
		if u1[i] != u2[i] {
			t.Errorf("units differ across replays: %q vs %q", u1[i], u2[i])
		}
	}

	// Stats surface the recalibration count.
	srv, _ := newTestServer(t, Config{})
	if _, err := srv.Recalibrate(context.Background(), RecalibrateRequest{Tenant: "alpha", Force: true}); err != nil {
		t.Fatal(err)
	}
	for _, ts := range srv.Stats().Tenants {
		want := uint64(0)
		if ts.Name == "alpha" {
			want = 1
		}
		if ts.Recalibrations != want {
			t.Errorf("tenant %s recalibrations = %d, want %d", ts.Name, ts.Recalibrations, want)
		}
	}
}
