package serve

import (
	"context"
	"testing"
)

// TestQueuedPoolRetainsNoReferences pins the pooling contract of the
// submit/drain path: a queued shell released back to queuedPool must be
// fully zeroed, so the pool never pins a tenant (and its whole System),
// a query, or a prediction past the request's dequeue. The test seeds
// the pool with a known shell, drives one request through
// Submit/StepOneInto on a single goroutine (sync.Pool's per-P slot then
// recycles that exact shell), and checks the shell comes back dead.
func TestQueuedPoolRetainsNoReferences(t *testing.T) {
	srv, qs := newTestServer(t, Config{})

	seed := new(queued)
	queuedPool.Put(seed)

	dec, err := srv.Submit(context.Background(), Request{
		Tenant: "alpha", Query: qs[0], Deadline: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Admitted {
		t.Fatalf("request rejected: %s", dec.Reason)
	}
	var out Outcome
	ok, err := srv.StepOneInto(&out)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("StepOneInto found an empty queue")
	}
	if out.Query != qs[0].Name {
		t.Fatalf("outcome query %q, want %q", out.Query, qs[0].Name)
	}

	got := queuedPool.Get().(*queued)
	if got != seed {
		// Another shell came back first (scheduling moved the request to
		// a different P's slot) — the zeroing assertion below still
		// holds for whichever shell the drain path released.
		t.Logf("pool returned a different shell than the seeded one")
	}
	if got.tenant != nil || got.query != nil || got.pred != nil {
		t.Errorf("released shell retains references: tenant=%p query=%p pred=%p",
			got.tenant, got.query, got.pred)
	}
	if *got != (queued{}) {
		t.Errorf("released shell not zeroed: %+v", *got)
	}
}
