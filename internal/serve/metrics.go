package serve

import (
	"fmt"
	"io"
	"net/http"
	"strconv"

	uaqetp "repro"
)

// WriteMetrics renders a point-in-time snapshot of the server in the
// Prometheus text exposition format (version 0.0.4), hand-written so
// the serving layer stays dependency-free. The vocabulary mirrors the
// simulator's Report: the same counters (admissions, rejections,
// deadline outcomes, recalibrations, queue depth, cache hit rates)
// under one metric namespace, so a real deployment and a simulated
// scenario are compared with the same queries.
//
// Output ordering is fixed (metrics in declaration order, tenants and
// cache sections sorted by label), so consecutive scrapes of an idle
// server are byte-identical.
func (s *Server) WriteMetrics(w io.Writer) error {
	st := s.Stats()
	mw := &metricsWriter{w: w}

	mw.gaugeInt("uaqp_queue_len", "Admitted requests awaiting execution.", st.QueueLen)
	mw.gauge("uaqp_clock_virtual_seconds", "Current virtual clock.", st.Clock)
	mw.gauge("uaqp_queue_wait_mean_seconds", "Predicted mean queue wait T_wait (backlog plus in-flight residual).", st.QueueWaitMean)
	mw.gauge("uaqp_queue_wait_var", "Predicted variance of the queue wait.", st.QueueWaitVar)

	// The shared estimate cache, one section per label: the sampling-pass
	// ("estimate"), join-subtree ("subtree"), and run-result ("run")
	// sections of uaqetp.CacheStats.
	type section struct {
		name                  string
		hits, misses, evicted uint64
		entries               int
	}
	sections := []section{
		{"estimate", st.Cache.Hits, st.Cache.Misses, st.Cache.Evictions, st.Cache.Entries},
		{"run", st.Cache.RunHits, st.Cache.RunMisses, st.Cache.RunEvictions, st.Cache.RunEntries},
		{"subtree", st.Cache.SubtreeHits, st.Cache.SubtreeMisses, st.Cache.SubtreeEvictions, st.Cache.SubtreeEntries},
	}
	mw.head("uaqp_cache_hits_total", "Shared estimate-cache hits by section.", "counter")
	for _, c := range sections {
		mw.labeled("uaqp_cache_hits_total", "section", c.name, float64(c.hits))
	}
	mw.head("uaqp_cache_misses_total", "Shared estimate-cache misses by section.", "counter")
	for _, c := range sections {
		mw.labeled("uaqp_cache_misses_total", "section", c.name, float64(c.misses))
	}
	mw.head("uaqp_cache_evictions_total", "Shared estimate-cache evictions by section.", "counter")
	for _, c := range sections {
		mw.labeled("uaqp_cache_evictions_total", "section", c.name, float64(c.evicted))
	}
	mw.head("uaqp_cache_entries", "Shared estimate-cache resident entries by section.", "gauge")
	for _, c := range sections {
		mw.labeled("uaqp_cache_entries", "section", c.name, float64(c.entries))
	}

	// Cache-tier gauges, present only when the server runs over a
	// TieredCache (the simulated remote tier behind the EstimateCache
	// seam).
	if tc, ok := s.cache.(*uaqetp.TieredCache); ok {
		ts := tc.TierStats()
		mw.head("uaqp_cache_tier_lookups_total", "Estimate-cache lookups by tier.", "counter")
		mw.labeled("uaqp_cache_tier_lookups_total", "tier", "local", float64(ts.LocalLookups))
		mw.labeled("uaqp_cache_tier_lookups_total", "tier", "remote", float64(ts.RemoteLookups))
		mw.gauge("uaqp_cache_tier_local_fraction", "Configured fraction of keys resident in the local tier.", ts.LocalFraction)
		mw.gauge("uaqp_cache_tier_remote_latency_seconds", "Modeled latency per remote-tier lookup.", ts.RemoteLatencySeconds)
		mw.gauge("uaqp_cache_tier_modeled_remote_seconds", "Total modeled time spent on remote-tier lookups.", ts.ModeledRemoteSeconds)
	}

	// Per-tenant counters (st.Tenants is sorted by name).
	perTenant := []struct {
		metric, help string
		value        func(TenantStats) float64
	}{
		{"uaqp_tenant_predictions_total", "Predictions served.", func(t TenantStats) float64 { return float64(t.Predictions) }},
		{"uaqp_tenant_admitted_total", "Requests admitted by the SLO rule.", func(t TenantStats) float64 { return float64(t.Admitted) }},
		{"uaqp_tenant_rejected_total", "Requests rejected (admission rule or full queue).", func(t TenantStats) float64 { return float64(t.Rejected) }},
		{"uaqp_tenant_executed_total", "Admitted requests executed.", func(t TenantStats) float64 { return float64(t.Executed) }},
		{"uaqp_tenant_exec_failed_total", "Admitted requests whose execution errored.", func(t TenantStats) float64 { return float64(t.ExecFailed) }},
		{"uaqp_tenant_deadlines_met_total", "Executed requests finishing within their deadline.", func(t TenantStats) float64 { return float64(t.DeadlinesMet) }},
		{"uaqp_tenant_deadlines_missed_total", "Executed requests missing their deadline.", func(t TenantStats) float64 { return float64(t.DeadlinesMissed) }},
		{"uaqp_tenant_recalibrations_total", "Predictor recalibrations (manual and automatic).", func(t TenantStats) float64 { return float64(t.Recalibrations) }},
		{"uaqp_tenant_auto_recalibrations_total", "Recalibrations triggered by the RecalEvery cadence.", func(t TenantStats) float64 { return float64(t.AutoRecalibrations) }},
	}
	for _, m := range perTenant {
		mw.head(m.metric, m.help, "counter")
		for _, t := range st.Tenants {
			mw.labeled(m.metric, "tenant", t.Name, m.value(t))
		}
	}

	// Calibration observatory: per-(tenant, cost-unit) drift metrics from
	// the feedback accumulators (only units with observations appear).
	// Tenants are sorted by name and units by declaration order inside
	// each drift report, so scrapes stay byte-stable.
	perUnit := []struct {
		metric, help string
		value        func(UnitDrift) float64
	}{
		{"uaqp_calibration_observations", "Observed (prediction, running time) pairs per tenant and dominant cost unit.", func(u UnitDrift) float64 { return float64(u.N) }},
		{"uaqp_calibration_mape", "Mean absolute percentage error of predicted vs. observed running time.", func(u UnitDrift) float64 { return u.MAPE }},
		{"uaqp_calibration_bias_seconds", "Mean signed error predicted-observed in seconds.", func(u UnitDrift) float64 { return u.Bias }},
		{"uaqp_calibration_pearson_r", "Correlation between predicted means and observed running times.", func(u UnitDrift) float64 { return u.PearsonR }},
		{"uaqp_calibration_mean_z", "Mean standardized residual (observed-mean)/sigma.", func(u UnitDrift) float64 { return u.MeanZ }},
	}
	for _, m := range perUnit {
		mw.head(m.metric, m.help, "gauge")
		for _, t := range st.Tenants {
			for _, u := range t.Drift.PerUnit {
				mw.labeled2(m.metric, "tenant", t.Name, "unit", u.Unit, m.value(u))
			}
		}
	}
	mw.head("uaqp_calibration_coverage_drift", "Observed minus nominal central-interval coverage per nominal level.", "gauge")
	for _, t := range st.Tenants {
		for _, u := range t.Drift.PerUnit {
			for _, cp := range u.Coverage {
				mw.printf("uaqp_calibration_coverage_drift{tenant=%q,unit=%q,level=%q} %s\n",
					t.Name, u.Unit, formatValue(cp.Nominal), formatValue(cp.Drift))
			}
		}
	}
	return mw.err
}

// metricsWriter accumulates the first write error so the metric body
// reads linearly.
type metricsWriter struct {
	w   io.Writer
	err error
}

func (m *metricsWriter) printf(format string, args ...any) {
	if m.err == nil {
		_, m.err = fmt.Fprintf(m.w, format, args...)
	}
}

func (m *metricsWriter) head(name, help, typ string) {
	m.printf("# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

func (m *metricsWriter) gauge(name, help string, v float64) {
	m.head(name, help, "gauge")
	m.printf("%s %s\n", name, formatValue(v))
}

func (m *metricsWriter) gaugeInt(name, help string, v int) {
	m.head(name, help, "gauge")
	m.printf("%s %d\n", name, v)
}

func (m *metricsWriter) labeled(name, label, lv string, v float64) {
	m.printf("%s{%s=%q} %s\n", name, label, lv, formatValue(v))
}

func (m *metricsWriter) labeled2(name, l1, v1, l2, v2 string, v float64) {
	m.printf("%s{%s=%q,%s=%q} %s\n", name, l1, v1, l2, v2, formatValue(v))
}

// formatValue renders floats the way Prometheus clients do: shortest
// round-trip representation.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.WriteMetrics(w); err != nil {
		// Headers are gone; nothing to do but log-level silence — the
		// scrape will be truncated and the scraper retries.
		return
	}
}
