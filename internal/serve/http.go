package serve

import (
	"encoding/json"
	"errors"
	"net/http"

	uaqetp "repro"
)

// Handler returns the HTTP/JSON front end:
//
//	GET  /healthz      liveness + tenant roster
//	POST /predict      {"tenant", "query"}              -> prediction
//	POST /submit       {"tenant", "query", "deadline"}  -> admission decision
//	POST /drain        execute queued work in priority order -> outcomes
//	POST /recalibrate  {"tenant", "seed", "force"}      -> recalibration report
//	GET  /stats        cache/queue/tenant/drift snapshot
//	GET  /metrics      the same counters in Prometheus text format
//
// Queries use the uaqetp.Query JSON shape (see the README for the
// predicate operator codes). Request contexts propagate into the
// prediction pipeline: a client that disconnects mid-request cancels
// its own prediction work.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("POST /predict", s.handlePredict)
	mux.HandleFunc("POST /submit", s.handleSubmit)
	mux.HandleFunc("POST /drain", s.handleDrain)
	mux.HandleFunc("POST /recalibrate", s.handleRecalibrate)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

type httpError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// errStatus maps a service error onto an HTTP status: unknown tenants
// are 404, everything else a client error.
func errStatus(err error) int {
	if errors.Is(err, ErrUnknownTenant) {
		return http.StatusNotFound
	}
	return http.StatusBadRequest
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeJSON(w, http.StatusBadRequest, httpError{Error: "bad request body: " + err.Error()})
		return false
	}
	return true
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Status  string   `json:"status"`
		Tenants []string `json:"tenants"`
	}{Status: "ok", Tenants: s.TenantNames()})
}

type predictRequest struct {
	Tenant string        `json:"tenant"`
	Query  *uaqetp.Query `json:"query"`
}

type predictResponse struct {
	Tenant       string  `json:"tenant"`
	Query        string  `json:"query"`
	Mean         float64 `json:"mean"`
	Sigma        float64 `json:"sigma"`
	P50          float64 `json:"p50"`
	P90          float64 `json:"p90"`
	P95          float64 `json:"p95"`
	P99          float64 `json:"p99"`
	DominantUnit string  `json:"dominant_unit"`
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	var req predictRequest
	if !decodeBody(w, r, &req) {
		return
	}
	pred, err := s.Predict(r.Context(), req.Tenant, req.Query)
	if err != nil {
		writeJSON(w, errStatus(err), httpError{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, predictResponse{
		Tenant:       req.Tenant,
		Query:        req.Query.Name,
		Mean:         pred.Mean(),
		Sigma:        pred.Sigma(),
		P50:          pred.Dist.Quantile(0.5),
		P90:          pred.Dist.Quantile(0.9),
		P95:          pred.Dist.Quantile(0.95),
		P99:          pred.Dist.Quantile(0.99),
		DominantUnit: pred.DominantUnit().String(),
	})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req Request
	if !decodeBody(w, r, &req) {
		return
	}
	d, err := s.Submit(r.Context(), req)
	if err != nil {
		writeJSON(w, errStatus(err), httpError{Error: err.Error()})
		return
	}
	status := http.StatusOK
	if !d.Admitted {
		// The request was understood but refused admission.
		status = http.StatusTooManyRequests
	}
	writeJSON(w, status, d)
}

type drainResponse struct {
	Executed int       `json:"executed"`
	Outcomes []Outcome `json:"outcomes"`
	// Error reports a mid-drain execution failure; the outcomes that
	// completed before it are still included.
	Error string `json:"error,omitempty"`
}

func (s *Server) handleDrain(w http.ResponseWriter, r *http.Request) {
	outs, err := s.Drain()
	if outs == nil {
		outs = []Outcome{}
	}
	resp := drainResponse{Executed: len(outs), Outcomes: outs}
	status := http.StatusOK
	if err != nil {
		resp.Error = err.Error()
		status = http.StatusInternalServerError
	}
	writeJSON(w, status, resp)
}

func (s *Server) handleRecalibrate(w http.ResponseWriter, r *http.Request) {
	var req RecalibrateRequest
	if !decodeBody(w, r, &req) {
		return
	}
	resp, err := s.Recalibrate(r.Context(), req)
	if err != nil {
		writeJSON(w, errStatus(err), httpError{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}
