package serve

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func scrape(t *testing.T, ts *httptest.Server) (string, string) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	var buf bytes.Buffer
	if _, err := io.Copy(&buf, resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.String(), resp.Header.Get("Content-Type")
}

func TestMetricsEndpoint(t *testing.T) {
	srv, qs := newTestServer(t, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body, ctype := scrape(t, ts)
	if ctype != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("content type %q", ctype)
	}
	// Consecutive scrapes of an idle server are byte-identical — the
	// exposition order is fixed, not map-ordered.
	again, _ := scrape(t, ts)
	if body != again {
		t.Error("idle scrapes differ; exposition order is nondeterministic")
	}

	// The text format contract: HELP/TYPE headers precede samples, and
	// the core vocabulary is present even on an idle server.
	for _, want := range []string{
		"# HELP uaqp_queue_len ",
		"# TYPE uaqp_queue_len gauge\n",
		"uaqp_queue_len 0\n",
		"# TYPE uaqp_cache_hits_total counter\n",
		`uaqp_cache_hits_total{section="estimate"} `,
		`uaqp_cache_entries{section="subtree"} `,
		"# TYPE uaqp_tenant_admitted_total counter\n",
		`uaqp_tenant_admitted_total{tenant="alpha"} 0`,
		`uaqp_tenant_rejected_total{tenant="beta"} 0`,
		"uaqp_queue_wait_mean_seconds ",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}

	// Counters move with traffic: one admitted request shows up under
	// its tenant, and the queue gauge reflects the backlog.
	resp, out := postJSON(t, ts, "/submit", Request{Tenant: "alpha", Query: qs[0], Deadline: 5})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit status %d: %s", resp.StatusCode, out)
	}
	body, _ = scrape(t, ts)
	for _, want := range []string{
		`uaqp_tenant_predictions_total{tenant="alpha"} 1`,
		`uaqp_tenant_admitted_total{tenant="alpha"} 1`,
		"uaqp_queue_len 1\n",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("post-submit metrics missing %q", want)
		}
	}

	// Writes are method-gated: POST to a scrape endpoint is rejected.
	post, err := http.Post(ts.URL+"/metrics", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /metrics status %d, want 405", post.StatusCode)
	}
}
