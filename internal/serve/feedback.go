package serve

import (
	"sort"
	"sync"

	uaqetp "repro"
	"repro/internal/calib"
	"repro/internal/hardware"
)

// The feedback loop tracks the calibration observatory's coverage
// levels (calib.CoverageLevels): a well-calibrated predictor sees
// ~50%, ~90%, and ~95% of observations inside the corresponding
// predicted central intervals.

const (
	// driftMinSamples is the minimum number of observations in a cost
	// unit's bucket before its drift is considered evidence.
	driftMinSamples = 16
	// driftTolerance is the allowed |observed - nominal| coverage gap
	// before recalibration is advised.
	driftTolerance = 0.12
	// maxTrackedSignatures bounds the per-plan-signature map for
	// long-lived servers; observations beyond the cap still count in
	// the unit buckets, just not per signature.
	maxTrackedSignatures = 4096
	// reportTopSignatures is how many of the hottest signatures the
	// drift report lists.
	reportTopSignatures = 12
)

// feedback accumulates observed running times against their predicted
// distributions. Each observation is attributed to the cost unit that
// dominates the query's predicted mean, so persistent mis-coverage in a
// bucket points at the unit whose calibration (internal/calibrate)
// drifted. The per-unit buckets are calib.Accumulators, so every drift
// report carries the observatory's full metric set (MAPE, Pearson r,
// bias, coverage) alongside the advisory verdict.
type feedback struct {
	mu    sync.Mutex
	units [hardware.NumUnits]calib.Accumulator
	sigs  map[string]*sigAgg
}

// sigAgg tracks per-plan-signature observations.
type sigAgg struct {
	n               int
	sumObs, sumPred float64
}

func newFeedback() *feedback {
	return &feedback{sigs: make(map[string]*sigAgg)}
}

// reset clears the accumulators, e.g. after a recalibration swap: the
// old observations judged the old units and would otherwise dilute the
// next drift verdict.
func (f *feedback) reset() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.units = [hardware.NumUnits]calib.Accumulator{}
	f.sigs = make(map[string]*sigAgg)
}

// record adds one (prediction, observation) pair for a plan signature.
func (f *feedback) record(pred *uaqetp.Prediction, observed float64, plansig string) {
	unit := pred.DominantUnit()
	f.mu.Lock()
	defer f.mu.Unlock()
	f.units[unit].Observe(pred.Mean(), pred.Sigma(), observed)
	sg := f.sigs[plansig]
	if sg == nil {
		if len(f.sigs) >= maxTrackedSignatures {
			return
		}
		sg = &sigAgg{}
		f.sigs[plansig] = sg
	}
	sg.n++
	sg.sumObs += observed
	sg.sumPred += pred.Mean()
}

// CoveragePoint compares nominal and observed central-interval
// coverage; it is the calibration observatory's point type, so sim
// reports, /metrics, and drift reports share one definition.
type CoveragePoint = calib.CoveragePoint

// UnitDrift is the calibration-drift summary for one cost unit's bucket
// (queries whose predicted mean that unit dominates).
type UnitDrift struct {
	Unit     string          `json:"unit"`
	N        int             `json:"n"`
	Coverage []CoveragePoint `json:"coverage"`
	// MeanZ is the mean standardized residual (observed - mean)/sigma; a
	// well-calibrated bucket sits near 0.
	MeanZ float64 `json:"mean_z"`
	// MAPE is the bucket's mean absolute percentage error
	// |predicted-observed|/observed; Bias its mean signed error
	// predicted-observed in seconds; PearsonR the correlation between
	// predicted means and observed times (calib.Metrics definitions).
	MAPE     float64 `json:"mape"`
	Bias     float64 `json:"bias"`
	PearsonR float64 `json:"pearson_r"`
	// RecalibrationAdvised is set once the bucket has enough samples and
	// any coverage level drifts beyond tolerance.
	RecalibrationAdvised bool `json:"recalibration_advised"`
}

// SignatureDrift summarizes the observations of one plan signature:
// how far, on average, reality sits from the prediction for that exact
// plan shape.
type SignatureDrift struct {
	Signature     string  `json:"signature"`
	N             int     `json:"n"`
	MeanObserved  float64 `json:"mean_observed"`
	MeanPredicted float64 `json:"mean_predicted"`
	// Bias is MeanObserved - MeanPredicted (positive: the plan runs
	// slower than predicted).
	Bias float64 `json:"bias"`
}

// DriftReport is the feedback loop's verdict on prediction calibration.
type DriftReport struct {
	Observations   int         `json:"observations"`
	PlanSignatures int         `json:"plan_signatures"`
	PerUnit        []UnitDrift `json:"per_unit"`
	// TopSignatures lists the most-observed plan signatures with their
	// mean prediction bias, hottest first.
	TopSignatures []SignatureDrift `json:"top_signatures,omitempty"`
	// RecalibrationAdvised is the disjunction over units: some cost
	// unit's observed coverage has drifted enough from nominal that a
	// recalibration pass (internal/calibrate) is warranted.
	RecalibrationAdvised bool `json:"recalibration_advised"`
}

// report summarizes the accumulated observations.
func (f *feedback) report() DriftReport {
	f.mu.Lock()
	defer f.mu.Unlock()
	rep := DriftReport{PlanSignatures: len(f.sigs)}
	for ui := range f.units {
		u := &f.units[ui]
		if u.N() == 0 {
			continue
		}
		m := u.Metrics()
		rep.Observations += int(m.N)
		ud := UnitDrift{
			Unit:     hardware.Unit(ui).String(),
			N:        int(m.N),
			Coverage: m.Coverage,
			MeanZ:    m.MeanZ,
			MAPE:     m.MAPE,
			Bias:     m.Bias,
			PearsonR: m.PearsonR,
		}
		for _, cp := range m.Coverage {
			if m.N >= driftMinSamples && (cp.Drift > driftTolerance || cp.Drift < -driftTolerance) {
				ud.RecalibrationAdvised = true
			}
		}
		if ud.RecalibrationAdvised {
			rep.RecalibrationAdvised = true
		}
		rep.PerUnit = append(rep.PerUnit, ud)
	}
	for sig, sg := range f.sigs {
		rep.TopSignatures = append(rep.TopSignatures, SignatureDrift{
			Signature:     sig,
			N:             sg.n,
			MeanObserved:  sg.sumObs / float64(sg.n),
			MeanPredicted: sg.sumPred / float64(sg.n),
			Bias:          (sg.sumObs - sg.sumPred) / float64(sg.n),
		})
	}
	// Hottest first; ties by signature so the report is deterministic.
	sort.Slice(rep.TopSignatures, func(i, j int) bool {
		a, b := rep.TopSignatures[i], rep.TopSignatures[j]
		if a.N != b.N {
			return a.N > b.N
		}
		return a.Signature < b.Signature
	})
	if len(rep.TopSignatures) > reportTopSignatures {
		rep.TopSignatures = rep.TopSignatures[:reportTopSignatures]
	}
	return rep
}

// worstCoverageDrift returns the unit name and signed drift of the
// coverage point with the largest absolute drift in the report (empty
// name when the report has no units).
func worstCoverageDrift(rep *DriftReport) (unit string, drift float64) {
	best := -1.0
	for i := range rep.PerUnit {
		ud := &rep.PerUnit[i]
		for _, cp := range ud.Coverage {
			a := cp.Drift
			if a < 0 {
				a = -a
			}
			if a > best {
				best, unit, drift = a, ud.Unit, cp.Drift
			}
		}
	}
	return unit, drift
}
