package serve

import (
	"sort"
	"sync"

	uaqetp "repro"
	"repro/internal/hardware"
)

// coverageLevels are the nominal central-interval masses the feedback
// loop tracks: a well-calibrated predictor sees ~50%, ~90%, and ~95% of
// observations inside the corresponding predicted intervals.
var coverageLevels = []float64{0.5, 0.9, 0.95}

const (
	// driftMinSamples is the minimum number of observations in a cost
	// unit's bucket before its drift is considered evidence.
	driftMinSamples = 16
	// driftTolerance is the allowed |observed - nominal| coverage gap
	// before recalibration is advised.
	driftTolerance = 0.12
	// maxTrackedSignatures bounds the per-plan-signature map for
	// long-lived servers; observations beyond the cap still count in
	// the unit buckets, just not per signature.
	maxTrackedSignatures = 4096
	// reportTopSignatures is how many of the hottest signatures the
	// drift report lists.
	reportTopSignatures = 12
)

// feedback accumulates observed running times against their predicted
// distributions. Each observation is attributed to the cost unit that
// dominates the query's predicted mean, so persistent mis-coverage in a
// bucket points at the unit whose calibration (internal/calibrate)
// drifted.
type feedback struct {
	mu    sync.Mutex
	units [hardware.NumUnits]unitAgg
	sigs  map[string]*sigAgg
}

type unitAgg struct {
	n      int
	within [3]int // per coverageLevels entry
	sumZ   float64
}

// sigAgg tracks per-plan-signature observations.
type sigAgg struct {
	n               int
	sumObs, sumPred float64
}

func newFeedback() *feedback {
	return &feedback{sigs: make(map[string]*sigAgg)}
}

// reset clears the accumulators, e.g. after a recalibration swap: the
// old observations judged the old units and would otherwise dilute the
// next drift verdict.
func (f *feedback) reset() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.units = [hardware.NumUnits]unitAgg{}
	f.sigs = make(map[string]*sigAgg)
}

// record adds one (prediction, observation) pair for a plan signature.
func (f *feedback) record(pred *uaqetp.Prediction, observed float64, plansig string) {
	unit := pred.DominantUnit()
	var z float64
	if s := pred.Sigma(); s > 0 {
		z = (observed - pred.Mean()) / s
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	u := &f.units[unit]
	u.n++
	u.sumZ += z
	for i, level := range coverageLevels {
		lo, hi := pred.Dist.Interval(level)
		if observed >= lo && observed <= hi {
			u.within[i]++
		}
	}
	sg := f.sigs[plansig]
	if sg == nil {
		if len(f.sigs) >= maxTrackedSignatures {
			return
		}
		sg = &sigAgg{}
		f.sigs[plansig] = sg
	}
	sg.n++
	sg.sumObs += observed
	sg.sumPred += pred.Mean()
}

// CoveragePoint compares nominal and observed central-interval coverage.
type CoveragePoint struct {
	Nominal  float64 `json:"nominal"`
	Observed float64 `json:"observed"`
	Drift    float64 `json:"drift"` // Observed - Nominal
}

// UnitDrift is the calibration-drift summary for one cost unit's bucket
// (queries whose predicted mean that unit dominates).
type UnitDrift struct {
	Unit     string          `json:"unit"`
	N        int             `json:"n"`
	Coverage []CoveragePoint `json:"coverage"`
	// MeanZ is the mean standardized residual (observed - mean)/sigma; a
	// well-calibrated bucket sits near 0.
	MeanZ float64 `json:"mean_z"`
	// RecalibrationAdvised is set once the bucket has enough samples and
	// any coverage level drifts beyond tolerance.
	RecalibrationAdvised bool `json:"recalibration_advised"`
}

// SignatureDrift summarizes the observations of one plan signature:
// how far, on average, reality sits from the prediction for that exact
// plan shape.
type SignatureDrift struct {
	Signature     string  `json:"signature"`
	N             int     `json:"n"`
	MeanObserved  float64 `json:"mean_observed"`
	MeanPredicted float64 `json:"mean_predicted"`
	// Bias is MeanObserved - MeanPredicted (positive: the plan runs
	// slower than predicted).
	Bias float64 `json:"bias"`
}

// DriftReport is the feedback loop's verdict on prediction calibration.
type DriftReport struct {
	Observations   int         `json:"observations"`
	PlanSignatures int         `json:"plan_signatures"`
	PerUnit        []UnitDrift `json:"per_unit"`
	// TopSignatures lists the most-observed plan signatures with their
	// mean prediction bias, hottest first.
	TopSignatures []SignatureDrift `json:"top_signatures,omitempty"`
	// RecalibrationAdvised is the disjunction over units: some cost
	// unit's observed coverage has drifted enough from nominal that a
	// recalibration pass (internal/calibrate) is warranted.
	RecalibrationAdvised bool `json:"recalibration_advised"`
}

// report summarizes the accumulated observations.
func (f *feedback) report() DriftReport {
	f.mu.Lock()
	defer f.mu.Unlock()
	rep := DriftReport{PlanSignatures: len(f.sigs)}
	for ui := range f.units {
		u := &f.units[ui]
		if u.n == 0 {
			continue
		}
		rep.Observations += u.n
		ud := UnitDrift{
			Unit:  hardware.Unit(ui).String(),
			N:     u.n,
			MeanZ: u.sumZ / float64(u.n),
		}
		for i, level := range coverageLevels {
			obs := float64(u.within[i]) / float64(u.n)
			drift := obs - level
			ud.Coverage = append(ud.Coverage, CoveragePoint{Nominal: level, Observed: obs, Drift: drift})
			if u.n >= driftMinSamples && (drift > driftTolerance || drift < -driftTolerance) {
				ud.RecalibrationAdvised = true
			}
		}
		if ud.RecalibrationAdvised {
			rep.RecalibrationAdvised = true
		}
		rep.PerUnit = append(rep.PerUnit, ud)
	}
	for sig, sg := range f.sigs {
		rep.TopSignatures = append(rep.TopSignatures, SignatureDrift{
			Signature:     sig,
			N:             sg.n,
			MeanObserved:  sg.sumObs / float64(sg.n),
			MeanPredicted: sg.sumPred / float64(sg.n),
			Bias:          (sg.sumObs - sg.sumPred) / float64(sg.n),
		})
	}
	// Hottest first; ties by signature so the report is deterministic.
	sort.Slice(rep.TopSignatures, func(i, j int) bool {
		a, b := rep.TopSignatures[i], rep.TopSignatures[j]
		if a.N != b.N {
			return a.N > b.N
		}
		return a.Signature < b.Signature
	})
	if len(rep.TopSignatures) > reportTopSignatures {
		rep.TopSignatures = rep.TopSignatures[:reportTopSignatures]
	}
	return rep
}
