package serve

import (
	"container/heap"
	"context"
	"fmt"
	"math"
	"sync"

	uaqetp "repro"
	"repro/internal/calib"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Request is one incoming query with a deadline.
type Request struct {
	Tenant string        `json:"tenant"`
	Query  *uaqetp.Query `json:"query"`
	// Deadline is the time budget in virtual seconds, measured from
	// admission; 0 selects the tenant's default.
	Deadline float64 `json:"deadline"`
}

// Decision is the admission controller's verdict on one request. For a
// fixed seed the verdict is a pure function of (tenant config, query,
// deadline) plus queue occupancy: the prediction is deterministic, so
// replaying the same submission sequence reproduces the same decisions.
type Decision struct {
	ID       uint64 `json:"id"`
	Admitted bool   `json:"admitted"`
	// Reason explains a rejection ("" when admitted).
	Reason string `json:"reason,omitempty"`
	// PMeet is the predicted probability of finishing within the
	// deadline including the predicted queue wait ahead of this request:
	// P(T_wait + T_q <= d), where T_wait ~ N(QueueWaitMean,
	// QueueWaitSigma^2) aggregates the predicted mean and variance of
	// admitted-but-unexecuted work (ROADMAP "Admission under queue
	// delay"). With an empty queue this degenerates to P(T_q <= d).
	PMeet float64 `json:"p_meet"`
	// Deadline is the effective relative deadline in virtual seconds.
	Deadline  float64 `json:"deadline"`
	PredMean  float64 `json:"pred_mean"`
	PredSigma float64 `json:"pred_sigma"`
	// QueueWaitMean/QueueWaitSigma describe the predicted backlog this
	// decision was made against.
	QueueWaitMean  float64 `json:"queue_wait_mean"`
	QueueWaitSigma float64 `json:"queue_wait_sigma"`
	// QueueLen is the queue occupancy after this decision.
	QueueLen int `json:"queue_len"`
}

// queued is one admitted request awaiting execution. Instances cycle
// through queuedPool: Submit takes one from the pool, the drain path
// returns it after the outcome is recorded. releaseQueued zeroes every
// field before Put, so a pooled entry never pins a tenant, query, or
// prediction past its dequeue — the pool holds only dead shells.
type queued struct {
	id          uint64
	tenant      *Tenant
	query       *uaqetp.Query
	pred        *uaqetp.Prediction
	plansig     string
	absDeadline float64 // virtual clock value the query must finish by
	key         float64 // drain-order key from the server's QueuePolicy
}

var queuedPool = sync.Pool{New: func() any { return new(queued) }}

// releaseQueued clears it (dropping the tenant/query/prediction
// references) and returns the shell to the pool.
func releaseQueued(it *queued) {
	*it = queued{}
	queuedPool.Put(it)
}

// requestHeap orders admitted work by the queue policy's key (smallest
// first), ties by admission order. Under the default RiskSlack policy
// this is the incremental counterpart of sched.RiskSlack.
type requestHeap []*queued

func (h requestHeap) Len() int { return len(h) }
func (h requestHeap) Less(i, j int) bool {
	if h[i].key != h[j].key {
		return h[i].key < h[j].key
	}
	return h[i].id < h[j].id
}
func (h requestHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *requestHeap) Push(x any)   { *h = append(*h, x.(*queued)) }
func (h *requestHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return it
}

// Submit runs the admission rule on one request: predict the running
// time, admit iff the predicted probability of meeting the deadline —
// queue wait included, P(T_wait + T_q <= d) — clears the tenant's SLO
// confidence (and the queue has room), and enqueue admitted work by
// risk-adjusted slack. Under load the backlog term rejects borderline
// queries that an empty-queue rule would have admitted only to miss
// their deadlines waiting. The context propagates into the prediction
// pipeline.
func (s *Server) Submit(ctx context.Context, req Request) (Decision, error) {
	t, err := s.Tenant(req.Tenant)
	if err != nil {
		return Decision{}, err
	}
	if req.Query == nil {
		return Decision{}, fmt.Errorf("serve: nil query")
	}
	if req.Deadline < 0 {
		return Decision{}, fmt.Errorf("serve: negative deadline %g", req.Deadline)
	}
	deadline := req.Deadline
	if deadline == 0 {
		deadline = t.slo.DefaultDeadline
	}

	t.predictions.Add(1)
	pred, plansig, err := t.sys.PredictPlannedContext(ctx, req.Query)
	if err != nil {
		// An unpredictable query is a rejected submission: keep
		// admitted+rejected reconcilable against submission traffic.
		t.rejected.Add(1)
		if rec := s.cfg.Trace; rec != nil && rec.Enabled(trace.Decisions) {
			rec.Record(&trace.Event{
				Kind: trace.KindAdmission, At: s.Clock(), Tenant: t.name,
				Query: req.Query.Name, Verdict: "reject",
				Reason: "predict: " + err.Error(), Deadline: deadline,
				Threshold: t.slo.Confidence,
			})
		}
		return Decision{}, fmt.Errorf("serve: predict %q: %w", req.Query.Name, err)
	}

	d := Decision{
		Deadline:  deadline,
		PredMean:  pred.Mean(),
		PredSigma: pred.Sigma(),
	}

	s.qmu.Lock()
	defer s.qmu.Unlock()
	s.seq++
	d.ID = s.seq
	// T_wait + T_q under independence: means and variances add. T_wait
	// is the predicted queued backlog plus the residual service of the
	// in-flight request (nonzero only under an external clock driver).
	waitVar := math.Max(s.qWaitVar, 0)
	waitMean := s.qWaitMean + s.residualLocked()
	d.QueueWaitMean = waitMean
	d.QueueWaitSigma = math.Sqrt(waitVar)
	total := stats.Normal{
		Mu:    pred.Mean() + waitMean,
		Sigma: math.Sqrt(pred.Sigma()*pred.Sigma() + waitVar),
	}
	d.PMeet = total.CDF(deadline)
	switch {
	case d.PMeet < t.slo.Confidence:
		d.Reason = fmt.Sprintf("P(T_wait + T_q <= %.4g) = %.4f below SLO confidence %.4f (queue wait mean %.4g)",
			deadline, d.PMeet, t.slo.Confidence, d.QueueWaitMean)
	case s.queue.Len() >= s.cfg.MaxQueue:
		d.Reason = fmt.Sprintf("queue full (%d admitted requests pending)", s.queue.Len())
	default:
		d.Admitted = true
	}
	if !d.Admitted {
		t.rejected.Add(1)
		d.QueueLen = s.queue.Len()
		s.traceAdmission(t, req.Query.Name, &d)
		return d, nil
	}
	t.admitted.Add(1)
	s.qWaitMean += pred.Mean()
	s.qWaitVar += pred.Sigma() * pred.Sigma()
	it := queuedPool.Get().(*queued)
	*it = queued{
		id:          d.ID,
		tenant:      t,
		query:       req.Query,
		pred:        pred,
		plansig:     plansig,
		absDeadline: s.clock + deadline,
		key:         s.cfg.Policy.Key(s.clock+deadline, pred, t.slo),
	}
	heap.Push(&s.queue, it)
	d.QueueLen = s.queue.Len()
	s.traceAdmission(t, req.Query.Name, &d)
	return d, nil
}

// traceAdmission emits the decision as a trace event (caller holds
// qmu, so At reads the clock directly). The Enabled gate keeps the
// disabled path allocation-free.
func (s *Server) traceAdmission(t *Tenant, query string, d *Decision) {
	rec := s.cfg.Trace
	if rec == nil || !rec.Enabled(trace.Decisions) {
		return
	}
	verdict := "reject"
	if d.Admitted {
		verdict = "admit"
	}
	rec.Record(&trace.Event{
		Kind: trace.KindAdmission, At: s.clock, Tenant: t.name, Query: query,
		ID: d.ID, Verdict: verdict, Reason: d.Reason, Deadline: d.Deadline,
		PredMean: d.PredMean, PredSigma: d.PredSigma,
		QueueWaitMean: d.QueueWaitMean, QueueWaitSigma: d.QueueWaitSigma,
		PMeet: d.PMeet, Threshold: t.slo.Confidence, QueueLen: d.QueueLen,
	})
}

// Outcome is the result of executing one admitted request.
type Outcome struct {
	ID      uint64  `json:"id"`
	Tenant  string  `json:"tenant"`
	Query   string  `json:"query"`
	Start   float64 `json:"start"`   // virtual clock at execution start
	Finish  float64 `json:"finish"`  // virtual clock at completion
	Elapsed float64 `json:"elapsed"` // measured running time in seconds
	// Deadline is the absolute virtual deadline; Met reports whether the
	// query finished by it (queue wait counts against the budget).
	Deadline  float64 `json:"deadline"`
	Met       bool    `json:"met"`
	PredMean  float64 `json:"pred_mean"`
	PredSigma float64 `json:"pred_sigma"`
}

// StepOne executes the highest-priority admitted request (smallest
// policy key) at the current virtual clock, records the observation in
// the tenant's feedback loop, and returns the outcome — (nil, nil)
// when the queue is empty, or an outcome skeleton (ID/Tenant/Query
// populated, no times) alongside the error when execution fails. Unlike DrainOne it does NOT advance the
// clock past the execution: the outcome's Finish is the instant the
// work would complete, and the caller decides when (and whether) the
// clock gets there. This is the primitive the discrete-event simulator
// steps servers with — it advances each machine's clock to event time
// via AdvanceClock and schedules a completion event at Finish — while
// DrainOne keeps the historical back-to-back drain semantics.
func (s *Server) StepOne() (*Outcome, error) {
	var out Outcome
	ok, err := s.StepOneInto(&out)
	if !ok {
		return nil, err
	}
	return &out, err
}

// StepOneInto is StepOne writing the outcome into caller-owned storage:
// ok reports whether a request was consumed (false with a nil error
// means the queue was empty), and out is meaningful only when ok. On an
// execution failure out carries the skeleton StepOne's error outcome
// would (ID/Tenant/Query/Deadline; no times). Event-loop drivers reuse
// one Outcome across steps and so keep the steady-state drain path
// allocation-free.
func (s *Server) StepOneInto(out *Outcome) (ok bool, err error) {
	s.drainMu.Lock()
	defer s.drainMu.Unlock()
	return s.stepOneLocked(out)
}

// DrainOne is StepOne plus advancing the virtual clock to the outcome's
// Finish: queued work drains back-to-back on a single virtual server.
// Drains are serialized on their own lock, so a background dispatcher
// racing an explicit /drain cannot reorder work or perturb deadline
// outcomes; Submit stays responsive because it only needs the brief
// queue lock.
func (s *Server) DrainOne() (*Outcome, error) {
	s.drainMu.Lock()
	defer s.drainMu.Unlock()
	var out Outcome
	ok, err := s.stepOneLocked(&out)
	if !ok {
		return nil, err
	}
	if err == nil {
		// Advance while still holding drainMu so a concurrent drain
		// cannot step the next request against a stale clock.
		s.AdvanceClock(out.Finish)
	}
	return &out, err
}

// stepOneLocked is StepOneInto with drainMu held by the caller.
func (s *Server) stepOneLocked(out *Outcome) (bool, error) {
	s.qmu.Lock()
	if s.queue.Len() == 0 {
		s.qmu.Unlock()
		return false, nil
	}
	it := heap.Pop(&s.queue).(*queued)
	// The popped request leaves the predicted backlog; zero the
	// aggregates when the queue empties so float drift cannot
	// accumulate across busy periods.
	s.qWaitMean -= it.pred.Mean()
	s.qWaitVar -= it.pred.Sigma() * it.pred.Sigma()
	if s.queue.Len() == 0 {
		s.qWaitMean, s.qWaitVar = 0, 0
	}
	s.qmu.Unlock()

	elapsed, err := it.tenant.sys.Execute(it.query)
	if err != nil {
		// The request is consumed either way: count the failure so
		// admitted == executed + failed + queued stays balanced, and
		// surface the error to the caller along with an outcome skeleton
		// identifying the consumed request (ID/Tenant/Query; no times),
		// so drivers tracking admissions by ID can release theirs.
		it.tenant.execFailed.Add(1)
		*out = Outcome{ID: it.id, Tenant: it.tenant.name, Query: it.query.Name, Deadline: it.absDeadline}
		if rec := s.cfg.Trace; rec != nil && rec.Enabled(trace.Full) {
			rec.Record(&trace.Event{
				Kind: trace.KindOutcome, At: s.Clock(), Tenant: out.Tenant,
				Query: out.Query, ID: out.ID, Deadline: out.Deadline,
				Reason: "execute: " + err.Error(),
			})
		}
		err = fmt.Errorf("serve: execute %q: %w", it.query.Name, err)
		releaseQueued(it)
		return true, err
	}

	s.qmu.Lock()
	*out = Outcome{
		ID:        it.id,
		Tenant:    it.tenant.name,
		Query:     it.query.Name,
		Start:     s.clock,
		Finish:    s.clock + elapsed,
		Elapsed:   elapsed,
		Deadline:  it.absDeadline,
		PredMean:  it.pred.Mean(),
		PredSigma: it.pred.Sigma(),
	}
	out.Met = out.Finish <= it.absDeadline
	// The popped request is now the in-flight one; its service past the
	// current clock is residual wait for admission purposes.
	s.inflight = out.Finish
	s.qmu.Unlock()

	it.tenant.executed.Add(1)
	if out.Met {
		it.tenant.deadlinesMet.Add(1)
	} else {
		it.tenant.deadlinesMissed.Add(1)
	}
	if rec := s.cfg.Trace; rec != nil && rec.Enabled(trace.Full) {
		rec.Record(&trace.Event{
			Kind: trace.KindOutcome, At: out.Finish, Tenant: out.Tenant,
			Query: out.Query, ID: out.ID, Deadline: out.Deadline,
			Start: out.Start, Finish: out.Finish, Elapsed: out.Elapsed,
			Met: out.Met, PredMean: out.PredMean, PredSigma: out.PredSigma,
		})
	}
	it.tenant.feedback.record(it.pred, elapsed, it.plansig)
	if s.cfg.Observer != nil {
		s.cfg.Observer.Observe(&calib.Observation{
			At:        out.Finish,
			Tenant:    it.tenant.name,
			Unit:      it.pred.DominantUnit(),
			PredMean:  it.pred.Mean(),
			PredSigma: it.pred.Sigma(),
			Observed:  elapsed,
		})
	}
	releaseQueued(it)
	return true, nil
}

// Drain executes every queued request in priority order and returns the
// outcomes.
func (s *Server) Drain() ([]Outcome, error) {
	var outs []Outcome
	for {
		out, err := s.DrainOne()
		if err != nil {
			return outs, err
		}
		if out == nil {
			return outs, nil
		}
		outs = append(outs, *out)
	}
}
