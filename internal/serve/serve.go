// Package serve is the online prediction service: a long-lived,
// multi-tenant serving layer over the prediction stack. It owns one
// System per tenant behind a single façade and realizes the paper's
// online use cases (Section 5) as a service:
//
//   - a shared, sharded plan-signature cache (uaqetp.EstimateCache), so
//     tenants over the same generated database and samples share
//     sampling passes instead of each paying for its own;
//   - a deadline-aware admission controller (ActiveSLA-style, Section
//     6.5.3): a query is admitted only when the predicted probability of
//     meeting its deadline clears the tenant's SLO confidence, and
//     admitted work drains under a pluggable QueuePolicy — by default
//     risk-adjusted slack, deadline minus the SLO quantile of the
//     predicted running time, the same distribution-based priority
//     internal/sched's RiskSlack policy uses for batch scheduling;
//   - a runtime feedback loop that records observed Execute times per
//     plan signature and reports calibration drift — observed vs.
//     predicted quantile coverage, attributed to the cost unit
//     dominating each query — surfacing when recalibration via
//     internal/calibrate is warranted;
//   - a live recalibration action closing that loop: each tenant's
//     System is a façade with its own hot-swappable predictor handle,
//     so Recalibrate re-runs internal/calibrate off the drift report
//     and swaps the fresh units in atomically, without dropping
//     in-flight queries or touching co-located tenants — and an
//     automatic cadence (Config.RecalEvery) doing the same whenever the
//     virtual clock crosses a boundary and a tenant's report advises;
//   - an HTTP/JSON front end (net/http) with /predict, /submit, /drain,
//     /recalibrate, /stats, and /healthz; request contexts propagate
//     into the prediction pipeline, so a disconnecting client cancels
//     its own prediction work.
//
// Time is virtual: the simulated hardware returns running times in
// seconds, and the server advances a virtual clock as it executes
// queued work, so deadline outcomes (like everything else here) are
// deterministic for a fixed seed. External drivers with their own
// notion of time — the discrete-event cluster simulator in
// internal/sim — control the clock explicitly (AdvanceClock) and step
// execution without advancing it (StepOne), sharing one estimate cache
// across a whole fleet of servers via Config.Cache.
//
// A server carries its machine's System: on a heterogeneous fleet each
// server's tenants are registered (AddTenantSystem) over that machine's
// WithMachine sibling, so admission predicts, execution measures, and
// recalibration re-runs against the machine's own — possibly drifted —
// hardware, while sampling passes and run results still flow through
// the shared cache. Per-tenant predictor handles keep recalibration
// divergence local to (tenant, machine).
package serve

import (
	"context"
	"errors"
	"fmt"
	"log"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	uaqetp "repro"
	"repro/internal/calib"
	"repro/internal/trace"
)

// SLO is one tenant's service-level objective.
type SLO struct {
	// Confidence is the minimum predicted probability of meeting the
	// deadline required to admit a query; 0 selects 0.95.
	Confidence float64 `json:"confidence"`
	// DefaultDeadline (virtual seconds) applies to requests that carry
	// none; 0 selects 1.0.
	DefaultDeadline float64 `json:"default_deadline"`
	// Quantile is the risk quantile used to order admitted work by
	// slack; 0 selects 0.9.
	Quantile float64 `json:"quantile"`
}

// normalized fills zero fields with defaults and rejects out-of-range
// values: a zero field means "use the default", but an explicit
// Confidence or Quantile outside (0, 1) is an error rather than being
// silently replaced with something looser.
func (s SLO) normalized() (SLO, error) {
	if s.Confidence == 0 {
		s.Confidence = 0.95
	}
	if s.DefaultDeadline == 0 {
		s.DefaultDeadline = 1.0
	}
	if s.Quantile == 0 {
		s.Quantile = 0.9
	}
	if s.Confidence <= 0 || s.Confidence >= 1 {
		return SLO{}, fmt.Errorf("serve: SLO confidence %g out of (0, 1)", s.Confidence)
	}
	if s.Quantile <= 0 || s.Quantile >= 1 {
		return SLO{}, fmt.Errorf("serve: SLO quantile %g out of (0, 1)", s.Quantile)
	}
	if s.DefaultDeadline <= 0 {
		return SLO{}, fmt.Errorf("serve: SLO default deadline %g must be positive", s.DefaultDeadline)
	}
	return s, nil
}

// Config sizes the server.
type Config struct {
	// CacheCapacity bounds the shared estimate cache (sampling passes
	// across all tenants); 0 selects 1024. Ignored when Cache is set.
	CacheCapacity int
	// Cache, when non-nil, is an externally owned estimate cache the
	// server shares instead of creating its own — the hook the cluster
	// simulator (internal/sim) uses to let a fleet of servers share one
	// cache, like co-located tenants do within one server.
	Cache uaqetp.EstimateCache
	// MaxQueue bounds admitted-but-unexecuted requests; a full queue
	// rejects further admissions (backpressure). 0 selects 1024.
	MaxQueue int
	// Policy orders admitted work in the drain queue; the zero value
	// selects RiskSlack.
	Policy QueuePolicy
	// RecalEvery is the automatic-recalibration cadence in virtual
	// seconds: every time the virtual clock crosses a multiple of it,
	// the server checks each tenant's drift report and recalibrates the
	// tenants whose reports advise it (closing the feedback loop without
	// a manual /recalibrate). 0 disables the automatic policy.
	RecalEvery float64
	// Trace, when non-nil, receives structured decision events:
	// admission verdicts (trace.Decisions), execution outcomes and
	// recalibrations (trace.Full). Every emission is gated on
	// Trace.Enabled, so a disabled recorder costs one branch per
	// decision and zero allocations. A recorder shared by concurrent
	// callers must be safe for concurrent use (trace.Buffer is); the
	// cluster simulator instead hands each machine its own recorder and
	// merges in event order.
	Trace trace.Recorder
	// Observer, when non-nil, receives one calib.Observation per
	// executed request on the outcome path — the calibration
	// observatory's serving-layer feed (predicted distribution, dominant
	// unit, observed time, finish time, tenant). Like Trace, a nil
	// observer costs one branch per outcome; implementations shared by
	// concurrent drains must be safe for concurrent use (the simulator
	// hands each machine its own observer).
	Observer calib.Observer
}

func (c Config) normalized() Config {
	if c.CacheCapacity <= 0 {
		c.CacheCapacity = 1024
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 1024
	}
	if c.Policy.Key == nil {
		c.Policy = RiskSlack
	}
	return c
}

// Tenant is one served database: a System façade plus its SLO and
// counters. The façade carries its own predictor handle, so
// recalibrating this tenant never disturbs co-located tenants sharing
// the same underlying layers.
type Tenant struct {
	name     string
	slo      SLO
	sys      *uaqetp.System
	feedback *feedback

	// recalMu serializes recalibrations of this tenant.
	recalMu sync.Mutex
	// lastRecalDrift snapshots the drift report the most recent
	// successful recalibration was decided on — the window feedback.reset
	// discards; nil until the first recalibration.
	lastRecalDrift atomic.Pointer[DriftReport]

	predictions     atomic.Uint64
	admitted        atomic.Uint64
	rejected        atomic.Uint64
	executed        atomic.Uint64
	execFailed      atomic.Uint64
	deadlinesMet    atomic.Uint64
	deadlinesMissed atomic.Uint64
	recalibrations  atomic.Uint64
	autoRecals      atomic.Uint64
}

// Name returns the tenant's name.
func (t *Tenant) Name() string { return t.name }

// SLO returns the tenant's normalized SLO.
func (t *Tenant) SLO() SLO { return t.slo }

// System returns the tenant's underlying prediction System (e.g. for
// generating demo workloads against its catalog).
func (t *Tenant) System() *uaqetp.System { return t.sys }

// Server is the multi-tenant serving façade. All methods are safe for
// concurrent use.
type Server struct {
	cfg   Config
	cache uaqetp.EstimateCache

	mu      sync.RWMutex
	tenants map[string]*Tenant
	// systems shares one System among tenants with identical configs
	// (Systems are immutable and concurrency-safe), so co-located
	// tenants don't each regenerate the database and calibration.
	systems map[uaqetp.Config]*uaqetp.System

	// qmu guards the admitted-work queue, the virtual clock, and the
	// queue's aggregate predicted backlog; drainMu serializes whole
	// pop-execute-advance drain steps (see DrainOne).
	qmu     sync.Mutex
	drainMu sync.Mutex
	queue   requestHeap
	seq     uint64
	clock   float64
	// qWaitMean/qWaitVar aggregate the predicted mean and variance of
	// admitted-but-unexecuted work: the predicted queue wait T_wait the
	// admission rule folds into P(T_wait + T_q <= d). Maintained
	// incrementally on push/pop (independence assumption).
	qWaitMean float64
	qWaitVar  float64
	// inflight is the absolute virtual time the in-flight request (the
	// last one popped for execution) finishes; its remainder past the
	// clock is residual service the admission rule counts toward T_wait.
	// In the classic drain loop the clock advances to the finish as the
	// request starts, so the residual is always 0 there; it matters when
	// an external driver (internal/sim) holds the clock at event time
	// while a request is mid-execution.
	inflight float64
	// nextRecal is the next virtual-clock instant the automatic
	// recalibration policy wakes up at (when cfg.RecalEvery > 0).
	nextRecal float64
	// autoRecalMu guards the automatic-recalibration observables below:
	// how many cadence-triggered recalibrations have fired and the
	// virtual clock of the latest — the signal drift experiments read to
	// measure time-to-detection.
	autoRecalMu     sync.Mutex
	autoRecalCount  uint64
	lastAutoRecalAt float64
}

// New returns an empty server with a fresh shared estimate cache (or
// the externally owned one when cfg.Cache is set).
func New(cfg Config) *Server {
	cfg = cfg.normalized()
	c := cfg.Cache
	if c == nil {
		c = uaqetp.NewEstimateCache(cfg.CacheCapacity)
	}
	return &Server{
		cfg:       cfg,
		cache:     c,
		tenants:   make(map[string]*Tenant),
		systems:   make(map[uaqetp.Config]*uaqetp.System),
		nextRecal: cfg.RecalEvery,
	}
}

// hasCustomStages reports whether the config overrides any pipeline
// stage. Such configs are opened fresh instead of being deduped: stage
// values may not be comparable (map keys must be), and tenants with
// bespoke stages should not silently share a System anyway.
func hasCustomStages(cfg uaqetp.Config) bool {
	return cfg.Planner != nil || cfg.Estimator != nil || cfg.Predictor != nil || cfg.Executor != nil
}

// AddTenant opens a System for the tenant on the server's shared cache.
// The Cache field of sysCfg is overridden; everything else is honored.
// Tenants with identical stage-free configs share one underlying System
// — each behind its own façade (uaqetp.System.With), so per-tenant
// predictor swaps stay per-tenant — and the expensive Open runs outside
// the server lock, so adding a tenant never stalls requests already
// being served.
func (s *Server) AddTenant(name string, sysCfg uaqetp.Config, slo SLO) (*Tenant, error) {
	if name == "" {
		return nil, fmt.Errorf("serve: empty tenant name")
	}
	nslo, err := slo.normalized()
	if err != nil {
		return nil, err
	}
	sysCfg.Cache = s.cache
	// Apply Open's own defaulting before the dedup lookup, so
	// equivalent but differently-spelled configs share one System.
	if sysCfg.Machine == "" {
		sysCfg.Machine = "PC1"
	}
	if sysCfg.SamplingRatio <= 0 {
		sysCfg.SamplingRatio = 0.05
	}
	dedup := !hasCustomStages(sysCfg)

	var sys *uaqetp.System
	s.mu.RLock()
	_, exists := s.tenants[name]
	if dedup {
		sys = s.systems[sysCfg]
	}
	s.mu.RUnlock()
	if exists {
		return nil, fmt.Errorf("serve: tenant %q already exists", name)
	}
	if sys == nil {
		// Open without the lock; a concurrent AddTenant with the same
		// config may race to a second Open, in which case one deterministic
		// duplicate wins the map and the other is dropped — harmless.
		if sys, err = uaqetp.Open(sysCfg); err != nil {
			return nil, fmt.Errorf("serve: open tenant %q: %w", name, err)
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.tenants[name]; ok {
		return nil, fmt.Errorf("serve: tenant %q already exists", name)
	}
	if dedup {
		if prev, ok := s.systems[sysCfg]; ok {
			sys = prev
		} else {
			s.systems[sysCfg] = sys
		}
	}
	// Each tenant gets its own façade with an independent predictor
	// handle over the shared layers.
	t := &Tenant{name: name, slo: nslo, sys: sys.With(), feedback: newFeedback()}
	s.tenants[name] = t
	return t, nil
}

// AddTenantSystem registers a tenant over an already opened System.
// The caller keeps responsibility for cache sharing (open the System
// with Config.Cache set to this server's cache — see Cache) and for not
// handing the same façade to two servers; the server wraps the System
// in a fresh façade (System.With) so per-tenant predictor swaps stay
// local. The cluster simulator uses this to give every simulated
// machine a façade over one expensive Open per tenant config instead of
// re-generating the database per machine.
func (s *Server) AddTenantSystem(name string, sys *uaqetp.System, slo SLO) (*Tenant, error) {
	if name == "" {
		return nil, fmt.Errorf("serve: empty tenant name")
	}
	if sys == nil {
		return nil, fmt.Errorf("serve: nil system for tenant %q", name)
	}
	nslo, err := slo.normalized()
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.tenants[name]; ok {
		return nil, fmt.Errorf("serve: tenant %q already exists", name)
	}
	t := &Tenant{name: name, slo: nslo, sys: sys.With(), feedback: newFeedback()}
	s.tenants[name] = t
	return t, nil
}

// Cache returns the server's estimate cache, for opening tenant
// Systems that share it (see AddTenantSystem).
func (s *Server) Cache() uaqetp.EstimateCache { return s.cache }

// ErrUnknownTenant reports a request against a tenant that was never
// added; the HTTP layer maps it to 404.
var ErrUnknownTenant = errors.New("unknown tenant")

// Tenant returns the named tenant.
func (s *Server) Tenant(name string) (*Tenant, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.tenants[name]
	if !ok {
		return nil, fmt.Errorf("serve: %w %q", ErrUnknownTenant, name)
	}
	return t, nil
}

// TenantNames returns the tenant names in sorted order.
func (s *Server) TenantNames() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.tenants))
	for n := range s.tenants {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Predict returns the running-time distribution of q for the tenant,
// through the shared cache. The context propagates into the prediction
// pipeline: canceling it aborts the tenant's sampling/prediction work.
func (s *Server) Predict(ctx context.Context, tenant string, q *uaqetp.Query) (*uaqetp.Prediction, error) {
	t, err := s.Tenant(tenant)
	if err != nil {
		return nil, err
	}
	if q == nil {
		return nil, fmt.Errorf("serve: nil query")
	}
	t.predictions.Add(1)
	return t.sys.PredictContext(ctx, q)
}

// TenantStats summarizes one tenant's traffic and calibration drift.
type TenantStats struct {
	Name            string `json:"name"`
	Predictions     uint64 `json:"predictions"`
	Admitted        uint64 `json:"admitted"`
	Rejected        uint64 `json:"rejected"`
	Executed        uint64 `json:"executed"`
	ExecFailed      uint64 `json:"exec_failed"`
	DeadlinesMet    uint64 `json:"deadlines_met"`
	DeadlinesMissed uint64 `json:"deadlines_missed"`
	Recalibrations  uint64 `json:"recalibrations"`
	// AutoRecalibrations counts the subset of Recalibrations triggered
	// by the automatic cadence policy (Config.RecalEvery) rather than an
	// explicit Recalibrate call.
	AutoRecalibrations uint64      `json:"auto_recalibrations"`
	Drift              DriftReport `json:"drift"`
	// LastRecalibrationDrift is the drift window the most recent
	// successful recalibration was decided on, preserved across the
	// feedback reset that recalibration performs; nil until the tenant
	// has recalibrated.
	LastRecalibrationDrift *DriftReport `json:"last_recalibration_drift,omitempty"`
}

// Stats is a point-in-time snapshot of the whole server.
type Stats struct {
	Cache    uaqetp.CacheStats `json:"cache"`
	QueueLen int               `json:"queue_len"`
	Clock    float64           `json:"clock"`
	// QueueWaitMean/QueueWaitVar are the predicted T_wait aggregates
	// the admission rule folds into P(T_wait + T_q <= d): the queued
	// backlog plus the residual service of the in-flight request — the
	// same numbers Submit and QueueState see at this instant.
	QueueWaitMean float64       `json:"queue_wait_mean"`
	QueueWaitVar  float64       `json:"queue_wait_var"`
	Tenants       []TenantStats `json:"tenants"`
}

// Stats snapshots the shared cache, the queue, and every tenant.
func (s *Server) Stats() Stats {
	s.qmu.Lock()
	qlen, clock := s.queue.Len(), s.clock
	waitMean, waitVar := s.qWaitMean+s.residualLocked(), s.qWaitVar
	s.qmu.Unlock()

	st := Stats{
		Cache: s.cache.Stats(), QueueLen: qlen, Clock: clock,
		QueueWaitMean: waitMean, QueueWaitVar: waitVar,
	}
	s.mu.RLock()
	for _, t := range s.tenants {
		st.Tenants = append(st.Tenants, TenantStats{
			Name:                   t.name,
			Predictions:            t.predictions.Load(),
			Admitted:               t.admitted.Load(),
			Rejected:               t.rejected.Load(),
			Executed:               t.executed.Load(),
			ExecFailed:             t.execFailed.Load(),
			DeadlinesMet:           t.deadlinesMet.Load(),
			DeadlinesMissed:        t.deadlinesMissed.Load(),
			Recalibrations:         t.recalibrations.Load(),
			AutoRecalibrations:     t.autoRecals.Load(),
			Drift:                  t.feedback.report(),
			LastRecalibrationDrift: t.lastRecalDrift.Load(),
		})
	}
	s.mu.RUnlock()
	sort.Slice(st.Tenants, func(i, j int) bool { return st.Tenants[i].Name < st.Tenants[j].Name })
	return st
}

// ---------------------------------------------------------------------
// Virtual clock.

// Clock returns the current virtual time in seconds.
func (s *Server) Clock() float64 {
	s.qmu.Lock()
	defer s.qmu.Unlock()
	return s.clock
}

// QueueState returns the admitted-work queue's length and its
// aggregate predicted backlog (mean and variance of total remaining
// work, residual in-flight service included) — the light-weight
// snapshot placement policies poll per arrival, without the drift
// reports Stats assembles.
func (s *Server) QueueState() (length int, waitMean, waitVar float64) {
	s.qmu.Lock()
	defer s.qmu.Unlock()
	return s.queue.Len(), s.qWaitMean + s.residualLocked(), s.qWaitVar
}

// QueueStateAt is QueueState with the in-flight residual measured
// against virtual time now (or the server's clock, whichever is later)
// instead of the clock alone. It is a pure read: the clock does not
// move and no recalibration checks run, so an event-driven caller can
// poll many servers at one instant — the simulator's routers do, per
// arrival — without paying a clock broadcast to all of them.
func (s *Server) QueueStateAt(now float64) (length int, waitMean, waitVar float64) {
	s.qmu.Lock()
	defer s.qmu.Unlock()
	ref := s.clock
	if now > ref {
		ref = now
	}
	resid := 0.0
	if s.inflight > ref {
		resid = s.inflight - ref
	}
	return s.queue.Len(), s.qWaitMean + resid, s.qWaitVar
}

// residualLocked is the remaining service time of the in-flight
// request (0 when idle or when the clock has caught up). Caller holds
// qmu.
func (s *Server) residualLocked() float64 {
	if s.inflight > s.clock {
		return s.inflight - s.clock
	}
	return 0
}

// AdvanceClock moves the virtual clock forward to t (never backward)
// and runs any automatic-recalibration checks that came due. Drivers
// with their own notion of time — the discrete-event simulator in
// internal/sim — call it to align the server's clock with event time
// before submitting or stepping; the drain path calls it internally as
// executed work consumes virtual time.
func (s *Server) AdvanceClock(t float64) {
	s.qmu.Lock()
	if t > s.clock {
		s.clock = t
	}
	s.qmu.Unlock()
	s.maybeAutoRecalibrate()
}

// ---------------------------------------------------------------------
// Automatic recalibration.

// maybeAutoRecalibrate runs the cadence policy: when the virtual clock
// has crossed the next cadence boundary, check every tenant's drift
// report and recalibrate those whose reports advise it. Recalibration
// seeds derive from the tenant's config and recalibration ordinal, so
// for a fixed submission sequence the triggers and the resulting units
// are deterministic.
func (s *Server) maybeAutoRecalibrate() {
	if s.cfg.RecalEvery <= 0 {
		return
	}
	s.qmu.Lock()
	due := s.clock >= s.nextRecal
	now := s.clock
	if due {
		// Skip ahead past the current clock so an idle stretch does not
		// replay every missed boundary.
		for s.nextRecal <= s.clock {
			s.nextRecal += s.cfg.RecalEvery
		}
	}
	s.qmu.Unlock()
	if !due {
		return
	}
	for _, name := range s.TenantNames() {
		t, err := s.Tenant(name)
		if err != nil {
			continue
		}
		// Recalibrate re-reads the report under the tenant's own lock and
		// only swaps when it (still) advises; this unlocked peek just
		// avoids paying for the full action on quiet tenants.
		if !t.feedback.report().RecalibrationAdvised {
			continue
		}
		resp, err := s.Recalibrate(context.Background(), RecalibrateRequest{Tenant: name})
		if err != nil {
			log.Printf("serve: auto-recalibrate %q: %v", name, err)
			continue
		}
		if resp.Recalibrated {
			t.autoRecals.Add(1)
			s.autoRecalMu.Lock()
			s.autoRecalCount++
			s.lastAutoRecalAt = now
			s.autoRecalMu.Unlock()
		}
	}
}

// LastAutoRecalibration reports how many automatic (cadence-triggered)
// recalibrations have fired on this server and the virtual clock of the
// latest. Drift experiments poll it to measure time-to-detection: the
// returned instant is the exact cadence boundary the recalibration fired
// at, so polling lag never skews the measurement. at is 0 until the
// first automatic recalibration (n == 0).
func (s *Server) LastAutoRecalibration() (at float64, n uint64) {
	s.autoRecalMu.Lock()
	defer s.autoRecalMu.Unlock()
	return s.lastAutoRecalAt, s.autoRecalCount
}

// StartDispatcher launches a goroutine draining the queue every
// interval and returns a function that stops it (draining a final
// time). It is the long-lived-service counterpart of calling Drain
// explicitly. Each tick also runs the automatic-recalibration check, so
// a server configured with RecalEvery closes the feedback loop without
// any manual /recalibrate call.
func (s *Server) StartDispatcher(interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = 50 * time.Millisecond
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		drain := func() {
			if _, err := s.Drain(); err != nil {
				log.Printf("serve: dispatcher: %v", err)
			}
			s.maybeAutoRecalibrate()
		}
		for {
			select {
			case <-ticker.C:
				drain()
			case <-done:
				drain()
				return
			}
		}
	}()
	return func() {
		close(done)
		<-finished
	}
}
