package serve

import (
	"context"
	"fmt"
	"sync"
	"testing"

	uaqetp "repro"
	"repro/internal/stats"
	"repro/internal/workload"
)

// newTestServer returns a server with two tenants over the same
// generated catalog (identical System configs), as in the acceptance
// scenario: a shared cache, two isolated SLOs.
func newTestServer(t *testing.T, cfg Config) (*Server, []*uaqetp.Query) {
	t.Helper()
	srv := New(cfg)
	sysCfg := uaqetp.DefaultConfig()
	slo := SLO{Confidence: 0.9, DefaultDeadline: 1.0, Quantile: 0.9}
	ta, err := srv.AddTenant("alpha", sysCfg, slo)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.AddTenant("beta", sysCfg, slo); err != nil {
		t.Fatal(err)
	}
	qs, err := ta.sys.GenerateWorkload(workload.SelJoin, 8)
	if err != nil {
		t.Fatal(err)
	}
	return srv, qs
}

// TestTwoTenantsShareSamplingPasses drives two tenants over the same
// catalog and checks — via the aggregated sharded-cache stats — that the
// second tenant's predictions are served from the first tenant's
// sampling passes.
func TestTwoTenantsShareSamplingPasses(t *testing.T) {
	srv, qs := newTestServer(t, Config{})
	for _, q := range qs {
		if _, err := srv.Predict(context.Background(), "alpha", q); err != nil {
			t.Fatal(err)
		}
	}
	after := srv.Stats().Cache
	if after.Misses == 0 {
		t.Fatal("tenant alpha ran no sampling passes")
	}
	for _, q := range qs {
		if _, err := srv.Predict(context.Background(), "beta", q); err != nil {
			t.Fatal(err)
		}
	}
	final := srv.Stats().Cache
	if final.Misses != after.Misses {
		t.Errorf("tenant beta ran %d fresh sampling passes, want 0 (cross-tenant sharing)",
			final.Misses-after.Misses)
	}
	if final.Hits <= after.Hits {
		t.Errorf("no cross-tenant cache hits: %d -> %d", after.Hits, final.Hits)
	}
}

// TestAdmissionBoundaryAtSLOQuantile pins the accept/reject boundary on
// an empty queue (T_wait = 0, so the rule degenerates to P(T_q <= d)):
// with deadline just above the confidence quantile of the predicted
// distribution the query must be admitted, just below it must be
// rejected. The queue is drained after each admission so every decision
// sees zero backlog.
func TestAdmissionBoundaryAtSLOQuantile(t *testing.T) {
	srv, qs := newTestServer(t, Config{})
	tn, err := srv.Tenant("alpha")
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range qs[:4] {
		pred, err := srv.Predict(context.Background(), "alpha", q)
		if err != nil {
			t.Fatal(err)
		}
		boundary := pred.Dist.Quantile(tn.slo.Confidence)
		eps := 1e-6 * boundary

		d, err := srv.Submit(context.Background(), Request{Tenant: "alpha", Query: q, Deadline: boundary + eps})
		if err != nil {
			t.Fatal(err)
		}
		if !d.Admitted {
			t.Errorf("%s: deadline above q%.2f rejected: %+v", q.Name, tn.slo.Confidence, d)
		}
		if _, err := srv.Drain(); err != nil {
			t.Fatal(err)
		}
		d, err = srv.Submit(context.Background(), Request{Tenant: "alpha", Query: q, Deadline: boundary - eps})
		if err != nil {
			t.Fatal(err)
		}
		if d.Admitted {
			t.Errorf("%s: deadline below q%.2f admitted: %+v", q.Name, tn.slo.Confidence, d)
		}
	}
}

// TestQueueAwareAdmissionRejectsEarlier pins the satellite behavior: a
// deadline that clears the SLO on an empty queue stops clearing it once
// predicted backlog accumulates — the same query is admitted first and
// rejected under load, strictly because of the queue-wait term.
func TestQueueAwareAdmissionRejectsEarlier(t *testing.T) {
	srv, qs := newTestServer(t, Config{})
	tn, err := srv.Tenant("alpha")
	if err != nil {
		t.Fatal(err)
	}
	q := qs[0]
	pred, err := srv.Predict(context.Background(), "alpha", q)
	if err != nil {
		t.Fatal(err)
	}
	// Just above the empty-queue admission boundary.
	deadline := pred.Dist.Quantile(tn.slo.Confidence) * 1.001

	first, err := srv.Submit(context.Background(), Request{Tenant: "alpha", Query: q, Deadline: deadline})
	if err != nil {
		t.Fatal(err)
	}
	if !first.Admitted || first.QueueWaitMean != 0 {
		t.Fatalf("empty-queue submission not admitted cleanly: %+v", first)
	}
	// Same query, same deadline, but now one admitted request ahead:
	// P(T_wait + T_q <= d) must fall below the confidence.
	second, err := srv.Submit(context.Background(), Request{Tenant: "alpha", Query: q, Deadline: deadline})
	if err != nil {
		t.Fatal(err)
	}
	if second.Admitted {
		t.Fatalf("borderline submission admitted despite backlog: %+v", second)
	}
	if second.QueueWaitMean <= 0 {
		t.Errorf("second decision saw no backlog: %+v", second)
	}
	if second.PMeet >= first.PMeet {
		t.Errorf("PMeet did not fall under load: %v -> %v", first.PMeet, second.PMeet)
	}
	// Draining restores the empty-queue behavior.
	if _, err := srv.Drain(); err != nil {
		t.Fatal(err)
	}
	third, err := srv.Submit(context.Background(), Request{Tenant: "alpha", Query: q, Deadline: deadline})
	if err != nil {
		t.Fatal(err)
	}
	if !third.Admitted {
		t.Errorf("post-drain submission rejected: %+v", third)
	}
	if third.PMeet != first.PMeet {
		t.Errorf("post-drain PMeet %v differs from empty-queue PMeet %v", third.PMeet, first.PMeet)
	}
}

// TestAdmissionDeterministic replays the same submission sequence on two
// freshly built servers with the same seed: every decision must match.
func TestAdmissionDeterministic(t *testing.T) {
	deadlines := []float64{0.05, 0.2, 0.5, 1.0}
	run := func() []Decision {
		srv, qs := newTestServer(t, Config{})
		var ds []Decision
		for i, q := range qs {
			d, err := srv.Submit(context.Background(), Request{
				Tenant:   []string{"alpha", "beta"}[i%2],
				Query:    q,
				Deadline: deadlines[i%len(deadlines)],
			})
			if err != nil {
				t.Fatal(err)
			}
			ds = append(ds, d)
		}
		return ds
	}
	a, b := run(), run()
	for i := range a {
		if a[i].Admitted != b[i].Admitted || a[i].ID != b[i].ID || a[i].QueueLen != b[i].QueueLen {
			t.Errorf("decision %d differs across replays: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestDrainPriorityAndClock checks that admitted work executes in
// risk-slack order, the virtual clock advances by the measured times,
// and deadline outcomes follow from the clock.
func TestDrainPriorityAndClock(t *testing.T) {
	srv, qs := newTestServer(t, Config{})
	var admitted []Decision
	for _, q := range qs {
		d, err := srv.Submit(context.Background(), Request{Tenant: "alpha", Query: q, Deadline: 2.0})
		if err != nil {
			t.Fatal(err)
		}
		if d.Admitted {
			admitted = append(admitted, d)
		}
	}
	if len(admitted) < 2 {
		t.Fatalf("only %d admissions; workload too small for ordering test", len(admitted))
	}
	outs, err := srv.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != len(admitted) {
		t.Fatalf("drained %d, admitted %d", len(outs), len(admitted))
	}
	var clock float64
	for i, o := range outs {
		if o.Start != clock {
			t.Errorf("outcome %d starts at %v, clock was %v", i, o.Start, clock)
		}
		clock += o.Elapsed
		if o.Finish != clock {
			t.Errorf("outcome %d finishes at %v, want %v", i, o.Finish, clock)
		}
		if o.Met != (o.Finish <= o.Deadline) {
			t.Errorf("outcome %d Met=%v inconsistent with finish %v deadline %v",
				i, o.Met, o.Finish, o.Deadline)
		}
	}
	// All deadlines are equal (2.0 relative, admitted at clock 0), so
	// least slack first means the largest risk quantile runs first:
	// outcomes must be sorted by descending q-quantile.
	tn, _ := srv.Tenant("alpha")
	lastKey := 0.0
	for i, o := range outs {
		key := stats.Normal{Mu: o.PredMean, Sigma: o.PredSigma}.Quantile(tn.slo.Quantile)
		if i > 0 && key > lastKey {
			t.Errorf("outcome %d out of slack order: quantile %v after %v", i, key, lastKey)
		}
		lastKey = key
	}
	if st := srv.Stats(); st.Clock != clock || st.QueueLen != 0 {
		t.Errorf("server stats clock=%v queue=%d, want clock=%v queue=0", st.Clock, st.QueueLen, clock)
	}
}

func TestQueueFullBackpressure(t *testing.T) {
	srv, qs := newTestServer(t, Config{MaxQueue: 1})
	d1, err := srv.Submit(context.Background(), Request{Tenant: "alpha", Query: qs[0], Deadline: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !d1.Admitted {
		t.Fatalf("first submission rejected: %+v", d1)
	}
	d2, err := srv.Submit(context.Background(), Request{Tenant: "beta", Query: qs[1], Deadline: 5})
	if err != nil {
		t.Fatal(err)
	}
	if d2.Admitted {
		t.Fatal("second submission admitted past MaxQueue=1")
	}
	if d2.Reason == "" {
		t.Error("backpressure rejection carries no reason")
	}
	// Draining frees the slot.
	if _, err := srv.Drain(); err != nil {
		t.Fatal(err)
	}
	d3, err := srv.Submit(context.Background(), Request{Tenant: "beta", Query: qs[1], Deadline: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !d3.Admitted {
		t.Errorf("submission after drain rejected: %+v", d3)
	}
}

func TestSubmitErrors(t *testing.T) {
	srv, qs := newTestServer(t, Config{})
	if _, err := srv.Submit(context.Background(), Request{Tenant: "nobody", Query: qs[0]}); err == nil {
		t.Error("unknown tenant accepted")
	}
	if _, err := srv.Submit(context.Background(), Request{Tenant: "alpha"}); err == nil {
		t.Error("nil query accepted")
	}
	if _, err := srv.Submit(context.Background(), Request{Tenant: "alpha", Query: qs[0], Deadline: -1}); err == nil {
		t.Error("negative deadline accepted")
	}
	bad := &uaqetp.Query{Name: "bad", Tables: []string{"no-such-table"}}
	if _, err := srv.Submit(context.Background(), Request{Tenant: "alpha", Query: bad}); err == nil {
		t.Error("unknown table accepted")
	}
	if _, err := srv.AddTenant("alpha", uaqetp.DefaultConfig(), SLO{}); err == nil {
		t.Error("duplicate tenant accepted")
	}
	if _, err := srv.AddTenant("", uaqetp.DefaultConfig(), SLO{}); err == nil {
		t.Error("empty tenant name accepted")
	}
}

// TestServeCacheEvictionUnderConcurrentTenants forces the shared cache
// far below the working set while both tenants predict concurrently:
// the per-shard LRUs must evict (counted in the aggregated stats) and
// the server must keep answering correctly.
func TestServeCacheEvictionUnderConcurrentTenants(t *testing.T) {
	srv, _ := newTestServer(t, Config{CacheCapacity: 4})
	ta, _ := srv.Tenant("alpha")
	qs, err := ta.sys.GenerateWorkload(workload.SelJoin, 24)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for _, tenant := range []string{"alpha", "beta"} {
		wg.Add(1)
		go func(tenant string) {
			defer wg.Done()
			for _, q := range qs {
				if _, err := srv.Predict(context.Background(), tenant, q); err != nil {
					t.Errorf("%s/%s: %v", tenant, q.Name, err)
				}
			}
		}(tenant)
	}
	wg.Wait()
	st := srv.Stats().Cache
	if st.Evictions == 0 {
		t.Errorf("no evictions with capacity 4 and %d distinct plans", len(qs))
	}
	// NewSharded rounds the per-shard capacity up to at least one entry,
	// so a tiny total capacity is bounded by the shard count.
	if st.Entries > uaqetp.DefaultCacheShards {
		t.Errorf("cache holds %d entries, want <= %d", st.Entries, uaqetp.DefaultCacheShards)
	}
	if st.Hits+st.Misses == 0 {
		t.Error("aggregated stats recorded no traffic")
	}
}

// syntheticPrediction builds a prediction with a known distribution for
// exercising the feedback loop without a System.
func syntheticPrediction(mu, sigma float64) *uaqetp.Prediction {
	p := &uaqetp.Prediction{Dist: stats.Normal{Mu: mu, Sigma: sigma}}
	p.PerUnit[2] = mu // attribute everything to ct (unit index 2)
	return p
}

func TestFeedbackWellCalibratedNoAdvice(t *testing.T) {
	f := newFeedback()
	// Observations at the predicted mean sit inside every central
	// interval: coverage 100% at all levels — above nominal, but drift
	// +0.05..+0.5; the 0.5 level drifts +0.5 > tolerance. So instead
	// spread observations to match nominal coverage: half just inside
	// the 50% band, the rest split between the 50-90 and 90-95 shells.
	mu, sigma := 1.0, 0.1
	quant := func(p float64) float64 { return stats.Normal{Mu: mu, Sigma: sigma}.Quantile(p) }
	var obs []float64
	for i := 0; i < 10; i++ {
		obs = append(obs, mu) // inside all bands
	}
	for i := 0; i < 8; i++ {
		obs = append(obs, quant(0.8)) // outside 50%, inside 90%
	}
	for i := 0; i < 1; i++ {
		obs = append(obs, quant(0.93)) // outside 90%, inside 95%
	}
	for i := 0; i < 1; i++ {
		obs = append(obs, quant(0.99)) // outside 95%
	}
	for i, o := range obs {
		f.record(syntheticPrediction(mu, sigma), o, fmt.Sprintf("plan-%d", i%3))
	}
	rep := f.report()
	if rep.Observations != len(obs) || rep.PlanSignatures != 3 {
		t.Fatalf("report %+v", rep)
	}
	if rep.RecalibrationAdvised {
		t.Errorf("well-calibrated observations advised recalibration: %+v", rep.PerUnit)
	}
	if len(rep.PerUnit) != 1 || rep.PerUnit[0].Unit != "ct" {
		t.Errorf("per-unit attribution wrong: %+v", rep.PerUnit)
	}
}

func TestFeedbackDriftAdvisesRecalibration(t *testing.T) {
	f := newFeedback()
	// Every observation lands far above the predicted distribution, as
	// if the dominant cost unit's true mean drifted upward since
	// calibration: coverage collapses to 0 at every level.
	for i := 0; i < driftMinSamples+4; i++ {
		f.record(syntheticPrediction(1.0, 0.1), 2.0, "hot-plan")
	}
	rep := f.report()
	if !rep.RecalibrationAdvised {
		t.Fatalf("drifted observations did not advise recalibration: %+v", rep.PerUnit)
	}
	if len(rep.TopSignatures) != 1 {
		t.Fatalf("top signatures = %+v, want the one hot plan", rep.TopSignatures)
	}
	if sd := rep.TopSignatures[0]; sd.Signature != "hot-plan" || sd.Bias != 1.0 {
		t.Errorf("signature drift %+v, want hot-plan with bias +1.0", sd)
	}
	ud := rep.PerUnit[0]
	if ud.MeanZ < 5 {
		t.Errorf("mean z = %v, want strongly positive", ud.MeanZ)
	}
	for _, c := range ud.Coverage {
		if c.Observed != 0 || c.Drift != -c.Nominal {
			t.Errorf("coverage point %+v, want observed 0", c)
		}
	}
}

func TestFeedbackBelowMinSamplesStaysQuiet(t *testing.T) {
	f := newFeedback()
	for i := 0; i < driftMinSamples-1; i++ {
		f.record(syntheticPrediction(1.0, 0.1), 2.0, "hot-plan")
	}
	if rep := f.report(); rep.RecalibrationAdvised {
		t.Error("recalibration advised below the sample floor")
	}
}
