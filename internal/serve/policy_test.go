package serve

import (
	"context"
	"testing"
	"time"

	uaqetp "repro"
)

// submitAll admits qs (with a roomy deadline so every one is accepted)
// and returns the decisions.
func submitAll(t *testing.T, srv *Server, qs []*uaqetp.Query, deadline float64) []Decision {
	t.Helper()
	out := make([]Decision, 0, len(qs))
	for _, q := range qs {
		d, err := srv.Submit(context.Background(), Request{Tenant: "alpha", Query: q, Deadline: deadline})
		if err != nil {
			t.Fatal(err)
		}
		if !d.Admitted {
			t.Fatalf("submission %q rejected: %s", q.Name, d.Reason)
		}
		out = append(out, d)
	}
	return out
}

// TestQueuePolicyOrdersDrain pins the policy hook: FIFO drains in
// admission order, SJF drains shortest-predicted-first, and both drain
// the same set the default risk-slack policy does.
func TestQueuePolicyOrdersDrain(t *testing.T) {
	drainOrder := func(p QueuePolicy) (ids []uint64, preds []float64) {
		srv, qs := newTestServer(t, Config{Policy: p})
		submitAll(t, srv, qs, 100)
		outs, err := srv.Drain()
		if err != nil {
			t.Fatal(err)
		}
		if len(outs) != len(qs) {
			t.Fatalf("%s: drained %d of %d", p.Name, len(outs), len(qs))
		}
		for _, o := range outs {
			ids = append(ids, o.ID)
			preds = append(preds, o.PredMean)
		}
		return ids, preds
	}

	ids, _ := drainOrder(FIFO)
	for i := 1; i < len(ids); i++ {
		if ids[i] != ids[i-1]+1 {
			t.Fatalf("FIFO drained out of admission order: %v", ids)
		}
	}
	_, preds := drainOrder(SJF)
	for i := 1; i < len(preds); i++ {
		if preds[i] < preds[i-1] {
			t.Fatalf("SJF drained a longer prediction first: %v", preds)
		}
	}
}

// TestQueuePolicyByName resolves every built-in policy and rejects
// unknown names.
func TestQueuePolicyByName(t *testing.T) {
	for _, name := range []string{"", "risk-slack", "edf", "sjf", "fifo"} {
		p, err := QueuePolicyByName(name)
		if err != nil || p.Key == nil {
			t.Errorf("policy %q: %v (key nil: %v)", name, err, p.Key == nil)
		}
	}
	if _, err := QueuePolicyByName("lifo"); err == nil {
		t.Error("unknown policy accepted")
	}
}

// TestStepOneHoldsClock pins the simulator's stepping contract: StepOne
// executes at the current clock without advancing it, AdvanceClock is
// monotonic, and the admission rule sees the in-flight request's
// residual service as queue wait.
func TestStepOneHoldsClock(t *testing.T) {
	srv, qs := newTestServer(t, Config{})
	submitAll(t, srv, qs[:2], 100)

	srv.AdvanceClock(5)
	if c := srv.Clock(); c != 5 {
		t.Fatalf("clock = %v after AdvanceClock(5)", c)
	}
	srv.AdvanceClock(3) // never backward
	if c := srv.Clock(); c != 5 {
		t.Fatalf("clock moved backward: %v", c)
	}

	out, err := srv.StepOne()
	if err != nil {
		t.Fatal(err)
	}
	if out == nil {
		t.Fatal("StepOne returned no outcome with queued work")
	}
	if out.Start != 5 || out.Finish != 5+out.Elapsed {
		t.Fatalf("outcome start/finish %v/%v, want 5/%v", out.Start, out.Finish, 5+out.Elapsed)
	}
	if c := srv.Clock(); c != 5 {
		t.Fatalf("StepOne advanced the clock to %v", c)
	}
	// The in-flight request's remaining service counts as queue wait
	// until the clock catches up with its finish.
	if _, wait, _ := srv.QueueState(); wait < out.Elapsed {
		t.Fatalf("queue state ignores in-flight residual: wait=%v, elapsed=%v", wait, out.Elapsed)
	}
	srv.AdvanceClock(out.Finish)
	if _, wait, _ := srv.QueueState(); wait != srvQueueMeanOnly(srv) {
		t.Fatalf("residual not cleared after clock caught up: wait=%v", wait)
	}

	// DrainOne keeps the classic semantics: clock lands on the finish.
	out2, err := srv.DrainOne()
	if err != nil {
		t.Fatal(err)
	}
	if out2 == nil {
		t.Fatal("second queued request vanished")
	}
	if c := srv.Clock(); c != out2.Finish {
		t.Fatalf("DrainOne left clock at %v, want %v", c, out2.Finish)
	}
}

// srvQueueMeanOnly reads the queued backlog mean without the residual
// (the queue is what remains after the pops above).
func srvQueueMeanOnly(s *Server) float64 {
	s.qmu.Lock()
	defer s.qmu.Unlock()
	return s.qWaitMean
}

// TestAutoRecalibrateOnCadence drives the virtual clock across cadence
// boundaries with drifted feedback and checks the automatic policy
// recalibrates the drifted tenant — and only it — surfacing the count
// in Stats.
func TestAutoRecalibrateOnCadence(t *testing.T) {
	srv, _ := newTestServer(t, Config{RecalEvery: 10})

	// No drift: crossing a boundary must not recalibrate anyone.
	srv.AdvanceClock(11)
	for _, ts := range srv.Stats().Tenants {
		if ts.AutoRecalibrations != 0 {
			t.Fatalf("quiet tenant %s auto-recalibrated", ts.Name)
		}
	}

	// Drift alpha far off-calibration, then cross the next boundary.
	ta, err := srv.Tenant("alpha")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < driftMinSamples+4; i++ {
		ta.feedback.record(syntheticPrediction(1.0, 0.1), 3.0, "hot-plan")
	}
	srv.AdvanceClock(21)
	for _, ts := range srv.Stats().Tenants {
		want := uint64(0)
		if ts.Name == "alpha" {
			want = 1
		}
		if ts.AutoRecalibrations != want {
			t.Errorf("tenant %s auto-recalibrations = %d, want %d", ts.Name, ts.AutoRecalibrations, want)
		}
		if ts.Recalibrations != want {
			t.Errorf("tenant %s recalibrations = %d, want %d", ts.Name, ts.Recalibrations, want)
		}
	}

	// The feedback reset on the swap: the next boundary is quiet again.
	srv.AdvanceClock(31)
	for _, ts := range srv.Stats().Tenants {
		if ts.Name == "alpha" && ts.AutoRecalibrations != 1 {
			t.Errorf("alpha re-recalibrated without fresh drift: %d", ts.AutoRecalibrations)
		}
	}
}

// TestDispatcherRunsAutoRecalibration: the wall-clock dispatcher also
// runs the cadence check, so a long-lived server closes the loop
// without any explicit Drain/AdvanceClock caller.
func TestDispatcherRunsAutoRecalibration(t *testing.T) {
	srv, qs := newTestServer(t, Config{RecalEvery: 0.001})
	ta, err := srv.Tenant("alpha")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < driftMinSamples+4; i++ {
		ta.feedback.record(syntheticPrediction(1.0, 0.1), 3.0, "hot-plan")
	}
	// Submitting and draining advances the virtual clock past the tiny
	// cadence; the dispatcher performs both.
	if _, err := srv.Submit(context.Background(), Request{Tenant: "alpha", Query: qs[0], Deadline: 100}); err != nil {
		t.Fatal(err)
	}
	stop := srv.StartDispatcher(time.Millisecond)
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if ta.autoRecals.Load() > 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	stop()
	if ta.autoRecals.Load() == 0 {
		t.Fatal("dispatcher never triggered the advised recalibration")
	}
}
