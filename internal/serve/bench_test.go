package serve

import (
	"testing"

	uaqetp "repro"
	"repro/internal/workload"
)

// BenchmarkServeSubmit measures the serve-path cost of one admission
// decision — predict through the shared cache, run the SLO rule,
// enqueue — with a warmed cache, cycling through a small workload. The
// queue is drained outside the timer whenever it fills.
func BenchmarkServeSubmit(b *testing.B) {
	srv := New(Config{MaxQueue: 1 << 16})
	tn, err := srv.AddTenant("bench", uaqetp.DefaultConfig(),
		SLO{Confidence: 0.9, DefaultDeadline: 5, Quantile: 0.9})
	if err != nil {
		b.Fatal(err)
	}
	qs, err := tn.sys.GenerateWorkload(workload.SelJoin, 16)
	if err != nil {
		b.Fatal(err)
	}
	// Warm the sampling-pass cache.
	for _, q := range qs {
		if _, err := srv.Predict("bench", q); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := srv.Submit(Request{Tenant: "bench", Query: qs[i%len(qs)], Deadline: 5})
		if err != nil {
			b.Fatal(err)
		}
		if d.QueueLen >= 1<<16 {
			b.StopTimer()
			if _, err := srv.Drain(); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
	}
}

// BenchmarkServePredict measures a cache-hot prediction through the
// serving façade.
func BenchmarkServePredict(b *testing.B) {
	srv := New(Config{})
	tn, err := srv.AddTenant("bench", uaqetp.DefaultConfig(), SLO{})
	if err != nil {
		b.Fatal(err)
	}
	qs, err := tn.sys.GenerateWorkload(workload.SelJoin, 16)
	if err != nil {
		b.Fatal(err)
	}
	for _, q := range qs {
		if _, err := srv.Predict("bench", q); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := srv.Predict("bench", qs[i%len(qs)]); err != nil {
			b.Fatal(err)
		}
	}
}
