package serve

import (
	"context"
	"testing"

	uaqetp "repro"
	"repro/internal/workload"
)

// BenchmarkServeSubmit measures the serve-path cost of one admission
// decision — predict through the shared cache, run the queue-aware SLO
// rule, enqueue — with a warmed cache, cycling through a small
// workload. The queue is drained outside the timer whenever the
// predicted backlog grows enough to reject (so the timed path stays the
// admission fast path).
func BenchmarkServeSubmit(b *testing.B) {
	ctx := context.Background()
	srv := New(Config{MaxQueue: 1 << 16})
	tn, err := srv.AddTenant("bench", uaqetp.DefaultConfig(),
		SLO{Confidence: 0.9, DefaultDeadline: 5, Quantile: 0.9})
	if err != nil {
		b.Fatal(err)
	}
	qs, err := tn.sys.GenerateWorkload(workload.SelJoin, 16)
	if err != nil {
		b.Fatal(err)
	}
	// Warm the sampling-pass cache.
	for _, q := range qs {
		if _, err := srv.Predict(ctx, "bench", q); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := srv.Submit(ctx, Request{Tenant: "bench", Query: qs[i%len(qs)], Deadline: 5})
		if err != nil {
			b.Fatal(err)
		}
		if !d.Admitted || d.QueueLen >= 1<<16 {
			b.StopTimer()
			if _, err := srv.Drain(); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
	}
}

// BenchmarkServePredict measures a cache-hot prediction through the
// serving façade.
func BenchmarkServePredict(b *testing.B) {
	ctx := context.Background()
	srv := New(Config{})
	tn, err := srv.AddTenant("bench", uaqetp.DefaultConfig(), SLO{})
	if err != nil {
		b.Fatal(err)
	}
	qs, err := tn.sys.GenerateWorkload(workload.SelJoin, 16)
	if err != nil {
		b.Fatal(err)
	}
	for _, q := range qs {
		if _, err := srv.Predict(ctx, "bench", q); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := srv.Predict(ctx, "bench", qs[i%len(qs)]); err != nil {
			b.Fatal(err)
		}
	}
}
