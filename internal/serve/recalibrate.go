package serve

import (
	"context"
	"fmt"

	"repro/internal/trace"
)

// RecalibrateRequest asks one tenant's cost units to be recalibrated.
type RecalibrateRequest struct {
	Tenant string `json:"tenant"`
	// Seed drives the calibration run; 0 derives a fresh deterministic
	// seed from the tenant's config seed and its recalibration count.
	Seed int64 `json:"seed"`
	// Force recalibrates even when the drift report does not advise it.
	Force bool `json:"force"`
}

// RecalibrateResponse reports what the action did.
type RecalibrateResponse struct {
	Tenant string `json:"tenant"`
	// Advised echoes the drift report's verdict at decision time.
	Advised bool `json:"advised"`
	// Recalibrated is false when the report did not advise and Force was
	// not set: the units are untouched.
	Recalibrated bool `json:"recalibrated"`
	// Seed is the calibration seed used (when Recalibrated).
	Seed int64 `json:"seed,omitempty"`
	// Drift is the report the decision was made off.
	Drift DriftReport `json:"drift"`
	// UnitsBefore/UnitsAfter are the formatted cost-unit distributions
	// around the swap (when Recalibrated).
	UnitsBefore []string `json:"units_before,omitempty"`
	UnitsAfter  []string `json:"units_after,omitempty"`
}

// Recalibrate closes the feedback loop for one tenant: read its drift
// report, and — when the report advises it (or Force is set) — re-run
// cost-unit calibration (internal/calibrate, via the System's
// Recalibrate) and atomically swap the fresh predictor into the
// tenant's façade. In-flight queries finish on the units they started
// with; queries submitted after the swap predict on the new units; no
// other tenant is affected, even ones sharing the same underlying
// System. The feedback accumulators reset on a successful swap, so the
// next drift report judges the new calibration rather than averaging
// over both.
//
// For a fixed seed the post-swap predictions are deterministic: the
// same seed always calibrates to the same units.
func (s *Server) Recalibrate(ctx context.Context, req RecalibrateRequest) (RecalibrateResponse, error) {
	t, err := s.Tenant(req.Tenant)
	if err != nil {
		return RecalibrateResponse{}, err
	}
	if err := ctx.Err(); err != nil {
		return RecalibrateResponse{}, err
	}

	t.recalMu.Lock()
	defer t.recalMu.Unlock()

	rep := t.feedback.report()
	resp := RecalibrateResponse{
		Tenant:  t.name,
		Advised: rep.RecalibrationAdvised,
		Drift:   rep,
	}
	if !rep.RecalibrationAdvised && !req.Force {
		s.traceRecal(t, &resp)
		return resp, nil
	}
	seed := req.Seed
	if seed == 0 {
		// Deterministic per (tenant config, recalibration ordinal):
		// replaying the same submission/recalibration sequence reproduces
		// the same units.
		seed = t.sys.Config().Seed + 101 + int64(t.recalibrations.Load())
	}
	resp.UnitsBefore = t.sys.CostUnits()
	if _, err := t.sys.Recalibrate(seed); err != nil {
		return resp, fmt.Errorf("serve: recalibrate %q: %w", t.name, err)
	}
	t.recalibrations.Add(1)
	// Snapshot the drift window the verdict was based on BEFORE it is
	// reset: post-hoc analysis (Stats, the recalibration trace event)
	// must be able to see why this recal fired, and the reset below
	// discards the evidence.
	snap := rep
	t.lastRecalDrift.Store(&snap)
	t.feedback.reset()
	resp.Recalibrated = true
	resp.Seed = seed
	resp.UnitsAfter = t.sys.CostUnits()
	s.traceRecal(t, &resp)
	return resp, nil
}

// traceRecal emits a recalibration event (Full level): a cadence check
// that declined records Advised/Recalibrated false, so the trace shows
// when the feedback loop looked, not only when it acted. The event
// snapshots the drift window the verdict was based on — observation
// count plus the worst-drifting unit and its signed coverage drift —
// because a successful recalibration resets that window immediately.
func (s *Server) traceRecal(t *Tenant, resp *RecalibrateResponse) {
	rec := s.cfg.Trace
	if rec == nil || !rec.Enabled(trace.Full) {
		return
	}
	unit, drift := worstCoverageDrift(&resp.Drift)
	rec.Record(&trace.Event{
		Kind: trace.KindRecalibration, At: s.Clock(), Tenant: t.name,
		Advised: resp.Advised, Recalibrated: resp.Recalibrated,
		DriftObservations: resp.Drift.Observations,
		DriftUnit:         unit,
		MaxCoverageDrift:  drift,
	})
}
