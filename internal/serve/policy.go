package serve

import (
	"fmt"

	uaqetp "repro"
)

// QueuePolicy orders admitted work in the drain queue: requests with
// smaller keys execute first, ties break by admission order. The key is
// computed once at admission (the virtual clock at that instant is
// folded into the absolute deadline), so a policy is a pure function of
// the request's deadline, its predicted running-time distribution, and
// the tenant's SLO — exactly the inputs the paper's distribution-aware
// scheduling policies (Section 6.5) consume.
//
// The zero value selects RiskSlack, the historical default.
type QueuePolicy struct {
	// Name identifies the policy in configs and reports.
	Name string
	// Key returns the drain-order key for an admitted request with the
	// given absolute virtual deadline, prediction, and tenant SLO.
	Key func(absDeadline float64, pred *uaqetp.Prediction, slo SLO) float64
}

// The built-in queue policies.
var (
	// RiskSlack drains by risk-adjusted slack: deadline minus the SLO
	// quantile of the predicted running time — the incremental
	// counterpart of sched.RiskSlack, and the default.
	RiskSlack = QueuePolicy{
		Name: "risk-slack",
		Key: func(absDeadline float64, pred *uaqetp.Prediction, slo SLO) float64 {
			return absDeadline - pred.Dist.Quantile(slo.Quantile)
		},
	}
	// EDF drains by earliest absolute deadline, ignoring the prediction.
	EDF = QueuePolicy{
		Name: "edf",
		Key: func(absDeadline float64, pred *uaqetp.Prediction, slo SLO) float64 {
			return absDeadline
		},
	}
	// SJF drains shortest predicted job first (by the predicted mean).
	SJF = QueuePolicy{
		Name: "sjf",
		Key: func(absDeadline float64, pred *uaqetp.Prediction, slo SLO) float64 {
			return pred.Mean()
		},
	}
	// FIFO drains in admission order (every key equal; the id tie-break
	// does the ordering).
	FIFO = QueuePolicy{
		Name: "fifo",
		Key: func(absDeadline float64, pred *uaqetp.Prediction, slo SLO) float64 {
			return 0
		},
	}
)

// QueuePolicyByName resolves a policy by its Name; "" selects the
// default (risk-slack).
func QueuePolicyByName(name string) (QueuePolicy, error) {
	switch name {
	case "", RiskSlack.Name:
		return RiskSlack, nil
	case EDF.Name:
		return EDF, nil
	case SJF.Name:
		return SJF, nil
	case FIFO.Name:
		return FIFO, nil
	default:
		return QueuePolicy{}, fmt.Errorf("serve: unknown queue policy %q (want risk-slack, edf, sjf, or fifo)", name)
	}
}
