package workload

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sort"

	"repro/internal/catalog"
	"repro/internal/plan"
)

// TraceEntry is one arrival-annotated query: the query and the virtual
// time (seconds from trace start) at which it arrives. Traces are the
// replayable counterpart of the synthetic arrival processes in
// internal/sim — a recorded or generated workload with its temporal
// structure attached.
type TraceEntry struct {
	At    float64
	Query *plan.Query
}

// GenerateTrace draws n benchmark queries (deterministically per seed,
// like Generate) and annotates them with Poisson arrival times at
// meanRate arrivals per virtual second, sorted by time. The query
// sequence is shuffled relative to Generate's order so a trace replay
// interleaves templates instead of walking them in generation order.
// Generation is deterministic per (b, n, seed, meanRate).
func GenerateTrace(b Benchmark, cat *catalog.Catalog, n int, seed int64, meanRate float64) ([]TraceEntry, error) {
	if meanRate <= 0 {
		return nil, fmt.Errorf("workload: non-positive trace arrival rate %g", meanRate)
	}
	queries, err := Generate(b, cat, n, seed)
	if err != nil {
		return nil, err
	}
	r := rand.New(rand.NewSource(seed ^ 0x7261636574)) // "tracer"-tagged stream, distinct from Generate's
	perm := r.Perm(len(queries))
	entries := make([]TraceEntry, 0, len(queries))
	t := 0.0
	for _, qi := range perm {
		t += r.ExpFloat64() / meanRate
		entries = append(entries, TraceEntry{At: t, Query: queries[qi]})
	}
	// Already time-ordered by construction; keep the invariant explicit
	// for hand-built traces routed through Validate-style helpers.
	sort.SliceStable(entries, func(i, j int) bool { return entries[i].At < entries[j].At })
	return entries, nil
}

// TraceDuration returns the arrival span of a trace (the last entry's
// time), 0 for an empty trace.
func TraceDuration(entries []TraceEntry) float64 {
	if len(entries) == 0 {
		return 0
	}
	return entries[len(entries)-1].At
}

// RawTraceEntry is one record of an external JSON arrival trace: an
// arrival time in virtual seconds from trace start, and the index of
// the query template it fires in the pool the trace is resolved
// against. The file format is an array of these:
//
//	[{"at": 0.4, "query": 2}, {"at": 1.1, "query": 0}, ...]
type RawTraceEntry struct {
	At    float64 `json:"at"`
	Query int     `json:"query"`
}

// LoadTrace ingests an external arrival trace from a JSON file,
// resolving each record against pool (query templates, typically
// Generate output): real recorded workload shapes replayed over the
// synthetic catalog. Entries are validated (nonnegative times, indexes
// within the pool) and returned sorted by arrival time, so hand-edited
// or merged traces need not be pre-sorted. Unknown fields are
// rejected.
func LoadTrace(path string, pool []*plan.Query) ([]TraceEntry, error) {
	if len(pool) == 0 {
		return nil, fmt.Errorf("workload: trace %s: empty query pool", path)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("workload: %w", err)
	}
	defer f.Close()
	dec := json.NewDecoder(f)
	dec.DisallowUnknownFields()
	var raw []RawTraceEntry
	if err := dec.Decode(&raw); err != nil {
		return nil, fmt.Errorf("workload: parse trace %s: %w", path, err)
	}
	if len(raw) == 0 {
		return nil, fmt.Errorf("workload: trace %s is empty", path)
	}
	entries := make([]TraceEntry, 0, len(raw))
	for i, re := range raw {
		if re.At < 0 {
			return nil, fmt.Errorf("workload: trace %s entry %d: negative arrival time %g", path, i, re.At)
		}
		if re.Query < 0 || re.Query >= len(pool) {
			return nil, fmt.Errorf("workload: trace %s entry %d: query index %d outside pool [0, %d)",
				path, i, re.Query, len(pool))
		}
		entries = append(entries, TraceEntry{At: re.At, Query: pool[re.Query]})
	}
	sort.SliceStable(entries, func(i, j int) bool { return entries[i].At < entries[j].At })
	return entries, nil
}
