// Package workload generates the three benchmarks of Section 6.2:
//
//   - MICRO: pure selections and two-way joins placed evenly across the
//     selectivity space (the Picasso-style grids).
//   - SELJOIN: multi-way selection–join queries derived from the TPC-H
//     templates with aggregates stripped ("maximal sub-query without
//     aggregates").
//   - TPCH: parameterized instances of 14 simplified TPC-H templates
//     (1, 3, 4, 5, 6, 7, 8, 9, 10, 12, 13, 14, 18, 19), aggregates
//     included.
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/catalog"
	"repro/internal/engine"
	"repro/internal/plan"
)

// Benchmark names one of the paper's three query benchmarks.
type Benchmark int

// The three benchmarks.
const (
	Micro Benchmark = iota
	SelJoin
	TPCH
)

// String implements fmt.Stringer.
func (b Benchmark) String() string {
	switch b {
	case Micro:
		return "MICRO"
	case SelJoin:
		return "SELJOIN"
	case TPCH:
		return "TPCH"
	default:
		return fmt.Sprintf("Benchmark(%d)", int(b))
	}
}

// Benchmarks lists all benchmarks.
var Benchmarks = []Benchmark{Micro, SelJoin, TPCH}

// Generate produces n queries of the benchmark against the database
// described by cat. Generation is deterministic per seed.
func Generate(b Benchmark, cat *catalog.Catalog, n int, seed int64) ([]*plan.Query, error) {
	if n <= 0 {
		return nil, fmt.Errorf("workload: non-positive query count %d", n)
	}
	r := rand.New(rand.NewSource(seed))
	switch b {
	case Micro:
		return genMicro(cat, n, r)
	case SelJoin:
		return genSelJoin(cat, n, r)
	case TPCH:
		return genTPCH(cat, n, r)
	default:
		return nil, fmt.Errorf("workload: unknown benchmark %d", int(b))
	}
}

// lePred builds "col <= quantile(sel)" hitting the target selectivity.
func lePred(cat *catalog.Catalog, table, col string, sel float64) (engine.Predicate, error) {
	cs, err := cat.Column(table, col)
	if err != nil {
		return engine.Predicate{}, err
	}
	return engine.Predicate{Col: col, Op: engine.Le, Lo: cs.Quantile(sel)}, nil
}

// scanTargets are the (table, column) pairs MICRO scans cycle through.
var scanTargets = []struct{ table, col string }{
	{"lineitem", "l_shipdate"},
	{"orders", "o_totalprice"},
	{"part", "p_retailprice"},
	{"customer", "c_acctbal"},
	{"lineitem", "l_extendedprice"},
	{"orders", "o_orderdate"},
}

func genMicro(cat *catalog.Catalog, n int, r *rand.Rand) ([]*plan.Query, error) {
	queries := make([]*plan.Query, 0, n)
	// Half scans over a 1-D selectivity grid, half 2-way joins over a
	// 2-D grid; the grids are evenly spaced with tiny jitter so repeated
	// draws do not collide on identical predicates.
	nScan := n / 2
	for i := 0; i < nScan; i++ {
		sel := (float64(i) + 0.5) / float64(nScan)
		tgt := scanTargets[i%len(scanTargets)]
		p, err := lePred(cat, tgt.table, tgt.col, clamp01(sel+0.02*r.Float64()))
		if err != nil {
			return nil, err
		}
		queries = append(queries, &plan.Query{
			Name:   fmt.Sprintf("micro-scan-%02d", i),
			Tables: []string{tgt.table},
			Preds:  []engine.Predicate{p},
		})
	}
	nJoin := n - nScan
	side := gridSide(nJoin)
	for i := 0; i < nJoin; i++ {
		sl := (float64(i%side) + 0.5) / float64(side)
		sr := (float64(i/side) + 0.5) / float64(side)
		po, err := lePred(cat, "orders", "o_totalprice", clamp01(sl))
		if err != nil {
			return nil, err
		}
		pl, err := lePred(cat, "lineitem", "l_quantity", clamp01(sr))
		if err != nil {
			return nil, err
		}
		queries = append(queries, &plan.Query{
			Name:   fmt.Sprintf("micro-join-%02d", i),
			Tables: []string{"orders", "lineitem"},
			Preds:  []engine.Predicate{po, pl},
			Joins: []plan.JoinCond{{
				LeftTable: "orders", LeftCol: "o_orderkey",
				RightTable: "lineitem", RightCol: "l_orderkey",
			}},
		})
	}
	return queries, nil
}

func gridSide(n int) int {
	s := 1
	for s*s < n {
		s++
	}
	return s
}

func clamp01(x float64) float64 {
	if x < 0.02 {
		return 0.02
	}
	if x > 0.98 {
		return 0.98
	}
	return x
}

// joinTemplate is a connected sub-graph of the TPC-H foreign-key graph.
type joinTemplate struct {
	name   string
	tables []string
	joins  []plan.JoinCond
	// predCols lists candidate (table, col) predicate targets.
	predCols []struct{ table, col string }
}

func fkJoin(lt, lc, rt, rc string) plan.JoinCond {
	return plan.JoinCond{LeftTable: lt, LeftCol: lc, RightTable: rt, RightCol: rc}
}

var selJoinTemplates = []joinTemplate{
	{
		name:   "co",
		tables: []string{"customer", "orders"},
		joins:  []plan.JoinCond{fkJoin("customer", "c_custkey", "orders", "o_custkey")},
		predCols: []struct{ table, col string }{
			{"customer", "c_acctbal"}, {"orders", "o_totalprice"}, {"orders", "o_orderdate"},
		},
	},
	{
		name:   "ol",
		tables: []string{"orders", "lineitem"},
		joins:  []plan.JoinCond{fkJoin("orders", "o_orderkey", "lineitem", "l_orderkey")},
		predCols: []struct{ table, col string }{
			{"orders", "o_orderdate"}, {"lineitem", "l_shipdate"}, {"lineitem", "l_quantity"},
		},
	},
	{
		name:   "col",
		tables: []string{"customer", "orders", "lineitem"},
		joins: []plan.JoinCond{
			fkJoin("customer", "c_custkey", "orders", "o_custkey"),
			fkJoin("orders", "o_orderkey", "lineitem", "l_orderkey"),
		},
		predCols: []struct{ table, col string }{
			{"customer", "c_acctbal"}, {"orders", "o_orderdate"}, {"lineitem", "l_extendedprice"},
		},
	},
	{
		name:   "olp",
		tables: []string{"orders", "lineitem", "part"},
		joins: []plan.JoinCond{
			fkJoin("orders", "o_orderkey", "lineitem", "l_orderkey"),
			fkJoin("lineitem", "l_partkey", "part", "p_partkey"),
		},
		predCols: []struct{ table, col string }{
			{"orders", "o_totalprice"}, {"part", "p_retailprice"}, {"lineitem", "l_shipdate"},
		},
	},
	{
		name:   "ols",
		tables: []string{"orders", "lineitem", "supplier"},
		joins: []plan.JoinCond{
			fkJoin("orders", "o_orderkey", "lineitem", "l_orderkey"),
			fkJoin("lineitem", "l_suppkey", "supplier", "s_suppkey"),
		},
		predCols: []struct{ table, col string }{
			{"orders", "o_orderdate"}, {"supplier", "s_acctbal"},
		},
	},
	{
		name:   "cols",
		tables: []string{"customer", "orders", "lineitem", "supplier"},
		joins: []plan.JoinCond{
			fkJoin("customer", "c_custkey", "orders", "o_custkey"),
			fkJoin("orders", "o_orderkey", "lineitem", "l_orderkey"),
			fkJoin("lineitem", "l_suppkey", "supplier", "s_suppkey"),
		},
		predCols: []struct{ table, col string }{
			{"customer", "c_acctbal"}, {"orders", "o_orderdate"}, {"supplier", "s_acctbal"},
		},
	},
	{
		name:   "pps",
		tables: []string{"part", "partsupp", "supplier"},
		joins: []plan.JoinCond{
			fkJoin("part", "p_partkey", "partsupp", "ps_partkey"),
			fkJoin("partsupp", "ps_suppkey", "supplier", "s_suppkey"),
		},
		predCols: []struct{ table, col string }{
			{"part", "p_retailprice"}, {"partsupp", "ps_supplycost"}, {"supplier", "s_acctbal"},
		},
	},
	{
		name:   "lp",
		tables: []string{"lineitem", "part"},
		joins:  []plan.JoinCond{fkJoin("lineitem", "l_partkey", "part", "p_partkey")},
		predCols: []struct{ table, col string }{
			{"lineitem", "l_shipdate"}, {"part", "p_size"},
		},
	},
}

func genSelJoin(cat *catalog.Catalog, n int, r *rand.Rand) ([]*plan.Query, error) {
	queries := make([]*plan.Query, 0, n)
	for i := 0; i < n; i++ {
		tpl := selJoinTemplates[i%len(selJoinTemplates)]
		q := &plan.Query{
			Name:   fmt.Sprintf("seljoin-%s-%02d", tpl.name, i),
			Tables: append([]string{}, tpl.tables...),
			Joins:  append([]plan.JoinCond{}, tpl.joins...),
		}
		// 1-2 random predicates at random target selectivities.
		nPred := 1 + r.Intn(2)
		perm := r.Perm(len(tpl.predCols))
		for _, pi := range perm[:min(nPred, len(tpl.predCols))] {
			pc := tpl.predCols[pi]
			sel := 0.05 + 0.85*r.Float64()
			p, err := lePred(cat, pc.table, pc.col, sel)
			if err != nil {
				return nil, err
			}
			q.Preds = append(q.Preds, p)
		}
		queries = append(queries, q)
	}
	return queries, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
