package workload

import (
	"math"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/catalog"
	"repro/internal/datagen"
)

func traceCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	return catalog.Build(datagen.Generate(datagen.ConfigFor(datagen.Uniform1G, 1)))
}

// TestGenerateTraceDeterministic: same inputs, same arrival-annotated
// trace — entries, times, and query identities.
func TestGenerateTraceDeterministic(t *testing.T) {
	cat := traceCatalog(t)
	a, err := GenerateTrace(SelJoin, cat, 32, 7, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateTrace(SelJoin, cat, 32, 7, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 32 || len(b) != 32 {
		t.Fatalf("trace lengths %d/%d, want 32", len(a), len(b))
	}
	for i := range a {
		if a[i].At != b[i].At || a[i].Query.Name != b[i].Query.Name {
			t.Fatalf("entry %d differs: (%v, %s) vs (%v, %s)",
				i, a[i].At, a[i].Query.Name, b[i].At, b[i].Query.Name)
		}
	}

	// Distinct seeds give independent streams: two simulated tenants
	// replaying traces over one catalog must not see identical arrivals.
	c, err := GenerateTrace(SelJoin, cat, 32, 8, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a {
		if a[i].At != c[i].At {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical arrival times")
	}
}

// TestGenerateTraceShape: times are sorted and positive, the mean rate
// is in the configured ballpark, and the query sequence is a
// permutation of the benchmark workload (shuffled, not reordered
// template-by-template).
func TestGenerateTraceShape(t *testing.T) {
	cat := traceCatalog(t)
	const n, rate = 64, 2.0
	entries, err := GenerateTrace(SelJoin, cat, n, 7, rate)
	if err != nil {
		t.Fatal(err)
	}
	times := make([]float64, len(entries))
	names := make([]string, len(entries))
	for i, e := range entries {
		times[i], names[i] = e.At, e.Query.Name
	}
	if !sort.Float64sAreSorted(times) {
		t.Error("trace times not sorted")
	}
	if times[0] <= 0 {
		t.Errorf("first arrival %v not after time zero", times[0])
	}
	got := float64(n) / TraceDuration(entries)
	if math.Abs(got-rate) > 0.5*rate {
		t.Errorf("trace mean rate %.3f, want ~%.1f", got, rate)
	}

	base, err := Generate(SelJoin, cat, n, 7)
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[string]bool, n)
	for _, q := range base {
		want[q.Name] = true
	}
	inOrder := true
	for i, name := range names {
		if !want[name] {
			t.Fatalf("trace query %q not from the benchmark workload", name)
		}
		if name != base[i].Name {
			inOrder = false
		}
	}
	if inOrder {
		t.Error("trace replays queries in generation order; want a shuffle")
	}

	if _, err := GenerateTrace(SelJoin, cat, n, 7, 0); err == nil {
		t.Error("non-positive rate accepted")
	}
}

// TestLoadTrace: external JSON traces resolve against a query pool,
// come back time-sorted, and reject malformed records.
func TestLoadTrace(t *testing.T) {
	cat := traceCatalog(t)
	pool, err := Generate(SelJoin, cat, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	write := func(name, content string) string {
		t.Helper()
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}

	path := write("ok.json", `[
		{"at": 3.5, "query": 1},
		{"at": 0.25, "query": 0},
		{"at": 1.5, "query": 3}
	]`)
	entries, err := LoadTrace(path, pool)
	if err != nil {
		t.Fatal(err)
	}
	wantAt := []float64{0.25, 1.5, 3.5}
	wantQ := []string{pool[0].Name, pool[3].Name, pool[1].Name}
	if len(entries) != 3 {
		t.Fatalf("loaded %d entries, want 3", len(entries))
	}
	for i, e := range entries {
		if e.At != wantAt[i] || e.Query.Name != wantQ[i] {
			t.Errorf("entry %d = (%g, %s), want (%g, %s)", i, e.At, e.Query.Name, wantAt[i], wantQ[i])
		}
	}

	bad := map[string]string{
		"neg-time":  `[{"at": -0.5, "query": 0}]`,
		"oob-index": `[{"at": 1, "query": 9}]`,
		"neg-index": `[{"at": 1, "query": -2}]`,
		"empty":     `[]`,
		"unknown":   `[{"at": 1, "query": 0, "x": 1}]`,
	}
	for name, content := range bad {
		if _, err := LoadTrace(write(name+".json", content), pool); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if _, err := LoadTrace(path, nil); err == nil {
		t.Error("empty pool accepted")
	}
	if _, err := LoadTrace(filepath.Join(dir, "missing.json"), pool); err == nil {
		t.Error("missing file accepted")
	}
}
