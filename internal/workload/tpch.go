package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/catalog"
	"repro/internal/datagen"
	"repro/internal/engine"
	"repro/internal/plan"
)

// tpchTemplate instantiates one simplified TPC-H query template with
// random parameters. The simplifications relative to the full spec are
// documented in DESIGN.md: single-column scan predicates (the builder
// keeps the most selective one), small-domain group-by columns, and no
// nested sub-queries or views (the paper also excluded templates whose
// plans contain such structures).
type tpchTemplate struct {
	num int
	gen func(cat *catalog.Catalog, r *rand.Rand, i int) (*plan.Query, error)
}

// dateParam returns a random order-date style cutoff covering a fraction
// of the date domain between lo and hi.
func dateParam(r *rand.Rand, lo, hi float64) int64 {
	f := lo + (hi-lo)*r.Float64()
	return int64(f * datagen.DateDays)
}

var tpchTemplates = []tpchTemplate{
	// Q1: pricing summary report — scan lineitem by ship date, sorted
	// group-aggregate on return flag.
	{1, func(cat *catalog.Catalog, r *rand.Rand, i int) (*plan.Query, error) {
		return &plan.Query{
			Name:   fmt.Sprintf("q01-%02d", i),
			Tables: []string{"lineitem"},
			Preds: []engine.Predicate{
				{Col: "l_shipdate", Op: engine.Le, Lo: dateParam(r, 0.6, 0.98)},
			},
			Agg: &plan.AggSpec{GroupCol: "l_returnflag", SortInput: true},
		}, nil
	}},
	// Q3: shipping priority — customer segment, orders before a date.
	{3, func(cat *catalog.Catalog, r *rand.Rand, i int) (*plan.Query, error) {
		return &plan.Query{
			Name:   fmt.Sprintf("q03-%02d", i),
			Tables: []string{"customer", "orders", "lineitem"},
			Preds: []engine.Predicate{
				{Col: "c_mktsegment", Op: engine.Eq, Lo: int64(r.Intn(5))},
				{Col: "o_orderdate", Op: engine.Lt, Lo: dateParam(r, 0.3, 0.7)},
			},
			Joins: []plan.JoinCond{
				fkJoin("customer", "c_custkey", "orders", "o_custkey"),
				fkJoin("orders", "o_orderkey", "lineitem", "l_orderkey"),
			},
			Agg: &plan.AggSpec{GroupCol: "o_orderpriority"},
		}, nil
	}},
	// Q4: order priority checking — quarter of orders joined to lineitem.
	{4, func(cat *catalog.Catalog, r *rand.Rand, i int) (*plan.Query, error) {
		lo := dateParam(r, 0.1, 0.8)
		return &plan.Query{
			Name:   fmt.Sprintf("q04-%02d", i),
			Tables: []string{"orders", "lineitem"},
			Preds: []engine.Predicate{
				{Col: "o_orderdate", Op: engine.Between, Lo: lo, Hi: lo + datagen.DateDays/8},
			},
			Joins: []plan.JoinCond{
				fkJoin("orders", "o_orderkey", "lineitem", "l_orderkey"),
			},
			Agg: &plan.AggSpec{GroupCol: "o_orderpriority"},
		}, nil
	}},
	// Q5: local supplier volume — 4-way join grouped by supplier nation.
	{5, func(cat *catalog.Catalog, r *rand.Rand, i int) (*plan.Query, error) {
		lo := dateParam(r, 0.1, 0.7)
		return &plan.Query{
			Name:   fmt.Sprintf("q05-%02d", i),
			Tables: []string{"customer", "orders", "lineitem", "supplier"},
			Preds: []engine.Predicate{
				{Col: "o_orderdate", Op: engine.Between, Lo: lo, Hi: lo + datagen.DateDays/4},
			},
			Joins: []plan.JoinCond{
				fkJoin("customer", "c_custkey", "orders", "o_custkey"),
				fkJoin("orders", "o_orderkey", "lineitem", "l_orderkey"),
				fkJoin("lineitem", "l_suppkey", "supplier", "s_suppkey"),
			},
			Agg: &plan.AggSpec{GroupCol: "s_nationkey"},
		}, nil
	}},
	// Q6: forecasting revenue change — conjunctive lineitem scan (ship
	// date, discount band, quantity cap), scalar aggregate.
	{6, func(cat *catalog.Catalog, r *rand.Rand, i int) (*plan.Query, error) {
		lo := dateParam(r, 0.1, 0.8)
		disc := int64(r.Intn(9))
		return &plan.Query{
			Name:   fmt.Sprintf("q06-%02d", i),
			Tables: []string{"lineitem"},
			Preds: []engine.Predicate{
				{Col: "l_shipdate", Op: engine.Between, Lo: lo, Hi: lo + datagen.DateDays/7},
				{Col: "l_discount", Op: engine.Between, Lo: disc, Hi: disc + 2},
				{Col: "l_quantity", Op: engine.Lt, Lo: int64(24 + r.Intn(26))},
			},
			Agg: &plan.AggSpec{},
		}, nil
	}},
	// Q7: volume shipping — supplier/customer flows grouped by nation.
	{7, func(cat *catalog.Catalog, r *rand.Rand, i int) (*plan.Query, error) {
		return &plan.Query{
			Name:   fmt.Sprintf("q07-%02d", i),
			Tables: []string{"supplier", "lineitem", "orders", "customer"},
			Preds: []engine.Predicate{
				{Col: "l_shipdate", Op: engine.Ge, Lo: dateParam(r, 0.4, 0.8)},
			},
			Joins: []plan.JoinCond{
				fkJoin("supplier", "s_suppkey", "lineitem", "l_suppkey"),
				fkJoin("lineitem", "l_orderkey", "orders", "o_orderkey"),
				fkJoin("orders", "o_custkey", "customer", "c_custkey"),
			},
			Agg: &plan.AggSpec{GroupCol: "s_nationkey"},
		}, nil
	}},
	// Q8: national market share — part-centric 4-way join.
	{8, func(cat *catalog.Catalog, r *rand.Rand, i int) (*plan.Query, error) {
		ps, err := lePred(cat, "part", "p_retailprice", 0.1+0.3*r.Float64())
		if err != nil {
			return nil, err
		}
		return &plan.Query{
			Name:   fmt.Sprintf("q08-%02d", i),
			Tables: []string{"part", "lineitem", "orders", "customer"},
			Preds:  []engine.Predicate{ps},
			Joins: []plan.JoinCond{
				fkJoin("part", "p_partkey", "lineitem", "l_partkey"),
				fkJoin("lineitem", "l_orderkey", "orders", "o_orderkey"),
				fkJoin("orders", "o_custkey", "customer", "c_custkey"),
			},
			Agg: &plan.AggSpec{GroupCol: "c_nationkey"},
		}, nil
	}},
	// Q9: product type profit — part/supplier/lineitem/orders.
	{9, func(cat *catalog.Catalog, r *rand.Rand, i int) (*plan.Query, error) {
		return &plan.Query{
			Name:   fmt.Sprintf("q09-%02d", i),
			Tables: []string{"part", "lineitem", "supplier", "orders"},
			Preds: []engine.Predicate{
				{Col: "p_brand", Op: engine.Eq, Lo: int64(r.Intn(25))},
			},
			Joins: []plan.JoinCond{
				fkJoin("part", "p_partkey", "lineitem", "l_partkey"),
				fkJoin("lineitem", "l_suppkey", "supplier", "s_suppkey"),
				fkJoin("lineitem", "l_orderkey", "orders", "o_orderkey"),
			},
			Agg: &plan.AggSpec{GroupCol: "s_nationkey"},
		}, nil
	}},
	// Q10: returned item reporting.
	{10, func(cat *catalog.Catalog, r *rand.Rand, i int) (*plan.Query, error) {
		lo := dateParam(r, 0.2, 0.7)
		return &plan.Query{
			Name:   fmt.Sprintf("q10-%02d", i),
			Tables: []string{"customer", "orders", "lineitem"},
			Preds: []engine.Predicate{
				{Col: "o_orderdate", Op: engine.Between, Lo: lo, Hi: lo + datagen.DateDays/4},
				{Col: "l_returnflag", Op: engine.Eq, Lo: int64(r.Intn(3))},
			},
			Joins: []plan.JoinCond{
				fkJoin("customer", "c_custkey", "orders", "o_custkey"),
				fkJoin("orders", "o_orderkey", "lineitem", "l_orderkey"),
			},
			Agg: &plan.AggSpec{GroupCol: "c_nationkey"},
		}, nil
	}},
	// Q12: shipping modes and order priority.
	{12, func(cat *catalog.Catalog, r *rand.Rand, i int) (*plan.Query, error) {
		return &plan.Query{
			Name:   fmt.Sprintf("q12-%02d", i),
			Tables: []string{"orders", "lineitem"},
			Preds: []engine.Predicate{
				{Col: "l_shipmode", Op: engine.Eq, Lo: int64(r.Intn(7))},
				{Col: "l_receiptdate", Op: engine.Ge, Lo: dateParam(r, 0.3, 0.8)},
			},
			Joins: []plan.JoinCond{
				fkJoin("orders", "o_orderkey", "lineitem", "l_orderkey"),
			},
			Agg: &plan.AggSpec{GroupCol: "l_shipmode"},
		}, nil
	}},
	// Q13: customer distribution.
	{13, func(cat *catalog.Catalog, r *rand.Rand, i int) (*plan.Query, error) {
		ps, err := lePred(cat, "orders", "o_totalprice", 0.2+0.7*r.Float64())
		if err != nil {
			return nil, err
		}
		return &plan.Query{
			Name:   fmt.Sprintf("q13-%02d", i),
			Tables: []string{"customer", "orders"},
			Preds:  []engine.Predicate{ps},
			Joins: []plan.JoinCond{
				fkJoin("customer", "c_custkey", "orders", "o_custkey"),
			},
			Agg: &plan.AggSpec{GroupCol: "c_nationkey"},
		}, nil
	}},
	// Q14: promotion effect — lineitem/part with a ship-date month.
	{14, func(cat *catalog.Catalog, r *rand.Rand, i int) (*plan.Query, error) {
		lo := dateParam(r, 0.1, 0.9)
		return &plan.Query{
			Name:   fmt.Sprintf("q14-%02d", i),
			Tables: []string{"lineitem", "part"},
			Preds: []engine.Predicate{
				{Col: "l_shipdate", Op: engine.Between, Lo: lo, Hi: lo + datagen.DateDays/12},
			},
			Joins: []plan.JoinCond{
				fkJoin("lineitem", "l_partkey", "part", "p_partkey"),
			},
			Agg: &plan.AggSpec{},
		}, nil
	}},
	// Q18: large volume customers — sorted group aggregate over a 3-way
	// join.
	{18, func(cat *catalog.Catalog, r *rand.Rand, i int) (*plan.Query, error) {
		qs, err := lePred(cat, "lineitem", "l_quantity", 0.5+0.45*r.Float64())
		if err != nil {
			return nil, err
		}
		return &plan.Query{
			Name:   fmt.Sprintf("q18-%02d", i),
			Tables: []string{"customer", "orders", "lineitem"},
			Preds:  []engine.Predicate{qs},
			Joins: []plan.JoinCond{
				fkJoin("customer", "c_custkey", "orders", "o_custkey"),
				fkJoin("orders", "o_orderkey", "lineitem", "l_orderkey"),
			},
			Agg: &plan.AggSpec{GroupCol: "c_nationkey", SortInput: true},
		}, nil
	}},
	// Q19: discounted revenue — part/lineitem with brand and quantity.
	{19, func(cat *catalog.Catalog, r *rand.Rand, i int) (*plan.Query, error) {
		return &plan.Query{
			Name:   fmt.Sprintf("q19-%02d", i),
			Tables: []string{"lineitem", "part"},
			Preds: []engine.Predicate{
				{Col: "p_brand", Op: engine.Eq, Lo: int64(r.Intn(25))},
				{Col: "l_quantity", Op: engine.Between, Lo: int64(1 + r.Intn(10)), Hi: int64(20 + r.Intn(30))},
			},
			Joins: []plan.JoinCond{
				fkJoin("lineitem", "l_partkey", "part", "p_partkey"),
			},
			Agg: &plan.AggSpec{},
		}, nil
	}},
}

func genTPCH(cat *catalog.Catalog, n int, r *rand.Rand) ([]*plan.Query, error) {
	queries := make([]*plan.Query, 0, n)
	for i := 0; i < n; i++ {
		tpl := tpchTemplates[i%len(tpchTemplates)]
		q, err := tpl.gen(cat, r, i)
		if err != nil {
			return nil, err
		}
		queries = append(queries, q)
	}
	return queries, nil
}
