package workload

import (
	"testing"

	"repro/internal/catalog"
	"repro/internal/datagen"
	"repro/internal/engine"
	"repro/internal/plan"
)

func testEnv(t *testing.T) (*engine.DB, *catalog.Catalog) {
	t.Helper()
	db := datagen.Generate(datagen.Config{ScaleFactor: 0.002, Seed: 1})
	return db, catalog.Build(db)
}

func TestGenerateCounts(t *testing.T) {
	_, cat := testEnv(t)
	for _, b := range Benchmarks {
		qs, err := Generate(b, cat, 20, 1)
		if err != nil {
			t.Fatalf("%v: %v", b, err)
		}
		if len(qs) != 20 {
			t.Errorf("%v: got %d queries", b, len(qs))
		}
	}
}

func TestGenerateRejectsBadCount(t *testing.T) {
	_, cat := testEnv(t)
	if _, err := Generate(Micro, cat, 0, 1); err == nil {
		t.Error("expected error for zero count")
	}
}

func TestAllQueriesBuildAndExecute(t *testing.T) {
	db, cat := testEnv(t)
	for _, b := range Benchmarks {
		qs, err := Generate(b, cat, 16, 2)
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range qs {
			p, err := plan.Build(q, cat)
			if err != nil {
				t.Fatalf("%v/%s: build: %v", b, q.Name, err)
			}
			if _, err := engine.Run(db, p); err != nil {
				t.Fatalf("%v/%s: run: %v", b, q.Name, err)
			}
		}
	}
}

func TestMicroScansSpanSelectivitySpace(t *testing.T) {
	db, cat := testEnv(t)
	qs, err := Generate(Micro, cat, 24, 3)
	if err != nil {
		t.Fatal(err)
	}
	var sels []float64
	for _, q := range qs {
		if len(q.Tables) != 1 {
			continue
		}
		p, err := plan.Build(q, cat)
		if err != nil {
			t.Fatal(err)
		}
		res, err := engine.Run(db, p)
		if err != nil {
			t.Fatal(err)
		}
		sels = append(sels, res.Selectivity)
	}
	if len(sels) < 10 {
		t.Fatalf("only %d scan queries", len(sels))
	}
	var low, high bool
	for _, s := range sels {
		if s < 0.25 {
			low = true
		}
		if s > 0.75 {
			high = true
		}
	}
	if !low || !high {
		t.Errorf("scan selectivities do not span the space: %v", sels)
	}
}

func TestSelJoinQueriesAreAggregateFree(t *testing.T) {
	_, cat := testEnv(t)
	qs, err := Generate(SelJoin, cat, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range qs {
		if q.Agg != nil {
			t.Errorf("%s has an aggregate", q.Name)
		}
		if len(q.Tables) < 2 {
			t.Errorf("%s is not a join query", q.Name)
		}
	}
}

func TestTPCHQueriesHaveAggregates(t *testing.T) {
	_, cat := testEnv(t)
	qs, err := Generate(TPCH, cat, 14, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range qs {
		if q.Agg == nil {
			t.Errorf("%s has no aggregate", q.Name)
		}
	}
	// All 14 templates represented in the first 14 queries.
	seen := make(map[string]bool)
	for _, q := range qs {
		seen[q.Name[:3]] = true
	}
	if len(seen) != 14 {
		t.Errorf("only %d distinct templates in first 14 queries", len(seen))
	}
}

func TestGenerateDeterministic(t *testing.T) {
	_, cat := testEnv(t)
	a, err := Generate(TPCH, cat, 20, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(TPCH, cat, 20, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Name != b[i].Name || len(a[i].Preds) != len(b[i].Preds) {
			t.Fatalf("query %d differs", i)
		}
		for j := range a[i].Preds {
			if a[i].Preds[j] != b[i].Preds[j] {
				t.Fatalf("query %d predicate %d differs", i, j)
			}
		}
	}
}

func TestBenchmarkStrings(t *testing.T) {
	want := []string{"MICRO", "SELJOIN", "TPCH"}
	for i, b := range Benchmarks {
		if b.String() != want[i] {
			t.Errorf("%d: %s", i, b)
		}
	}
}
