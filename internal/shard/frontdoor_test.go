package shard

import "testing"

// TestFrontDoorTokenBucket pins the throttle mechanics: a burst drains
// the bucket, refill is proportional to elapsed virtual time, and the
// bucket never exceeds its burst capacity.
func TestFrontDoorTokenBucket(t *testing.T) {
	fd := NewFrontDoor(FrontDoorConfig{Rate: 2, Burst: 3})
	for i := 0; i < 3; i++ {
		if v := fd.Admit("gold", 0, 1, 0.5); v != VerdictAdmit {
			t.Fatalf("request %d within burst: %s", i, v)
		}
	}
	if v := fd.Admit("gold", 0, 1, 0.5); v != VerdictShedThrottle {
		t.Fatalf("burst exhausted but verdict %s", v)
	}
	// 1 second at rate 2 refills 2 tokens.
	if v := fd.Admit("gold", 1, 1, 0.5); v != VerdictAdmit {
		t.Fatalf("after refill: %s", v)
	}
	if v := fd.Admit("gold", 1, 1, 0.5); v != VerdictAdmit {
		t.Fatalf("second refilled token: %s", v)
	}
	if v := fd.Admit("gold", 1, 1, 0.5); v != VerdictShedThrottle {
		t.Fatalf("refill over-credited: %s", v)
	}
	// A long idle stretch caps at burst, not rate×dt.
	for i := 0; i < 3; i++ {
		if v := fd.Admit("gold", 100, 1, 0.5); v != VerdictAdmit {
			t.Fatalf("request %d after idle: %s", i, v)
		}
	}
	if v := fd.Admit("gold", 100, 1, 0.5); v != VerdictShedThrottle {
		t.Fatalf("idle refill exceeded burst: %s", v)
	}

	c := fd.Counters()["gold"]
	if c.Admitted != 8 || c.ShedThrottled != 3 || c.ShedPredictive != 0 {
		t.Fatalf("counters %+v, want 8 admitted / 3 throttled / 0 predictive", c)
	}
}

// TestFrontDoorPredictiveBeforeTokens pins the check order that makes
// predictive shedding pay off: a hopeless request is shed without
// spending a token, so the token it would have burned still admits a
// feasible one.
func TestFrontDoorPredictiveBeforeTokens(t *testing.T) {
	fd := NewFrontDoor(FrontDoorConfig{Rate: 1, Burst: 1, Predictive: true})
	// Hopeless: bestP far below confidence. Must not consume the token.
	if v := fd.Admit("storm", 0, 0.01, 0.9); v != VerdictShedPredictive {
		t.Fatalf("hopeless request verdict %s", v)
	}
	// The single token is still there for the feasible request.
	if v := fd.Admit("gold", 0, 0.99, 0.9); v != VerdictAdmit {
		t.Fatalf("feasible request after predictive shed: %s", v)
	}
	if v := fd.Admit("gold", 0, 0.99, 0.9); v != VerdictShedThrottle {
		t.Fatalf("token double-spent: %s", v)
	}

	// The same sequence with predictive off: the hopeless request
	// takes the token and the feasible one is throttled — the naive
	// baseline the pinned sim test measures against.
	naive := NewFrontDoor(FrontDoorConfig{Rate: 1, Burst: 1})
	if v := naive.Admit("storm", 0, 0.01, 0.9); v != VerdictAdmit {
		t.Fatalf("naive front door shed unexpectedly: %s", v)
	}
	if v := naive.Admit("gold", 0, 0.99, 0.9); v != VerdictShedThrottle {
		t.Fatalf("naive front door had a spare token: %s", v)
	}

	if got := fd.Classes(); len(got) != 2 || got[0] != "gold" || got[1] != "storm" {
		t.Fatalf("classes %v, want [gold storm]", got)
	}
}

// TestFrontDoorUnlimited pins that Rate <= 0 disables the throttle but
// leaves the predictive check live.
func TestFrontDoorUnlimited(t *testing.T) {
	fd := NewFrontDoor(FrontDoorConfig{Predictive: true})
	for i := 0; i < 100; i++ {
		if v := fd.Admit("c", 0, 1, 0.5); v != VerdictAdmit {
			t.Fatalf("unlimited front door shed request %d: %s", i, v)
		}
	}
	if v := fd.Admit("c", 0, 0.1, 0.5); v != VerdictShedPredictive {
		t.Fatalf("predictive check inactive without a rate: %s", v)
	}
}
