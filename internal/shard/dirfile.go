package shard

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
)

// FileShard is one registered serving shard in a directory file.
type FileShard struct {
	Name string `json:"name"`
	Addr string `json:"addr"`
}

// File is the static directory the multi-process topology shares:
// `uaqp serve -shard` processes register themselves in it and `uaqp
// front` builds its Directory from it. The seed and vnode count live
// in the file so every process derives the identical ring.
type File struct {
	Seed   int64       `json:"seed"`
	VNodes int         `json:"vnodes,omitempty"`
	Shards []FileShard `json:"shards"`
}

// LoadFile reads and validates a directory file.
func LoadFile(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("shard: directory file %s: %w", path, err)
	}
	seen := make(map[string]bool, len(f.Shards))
	for _, s := range f.Shards {
		if s.Name == "" {
			return nil, fmt.Errorf("shard: directory file %s: shard with empty name", path)
		}
		if seen[s.Name] {
			return nil, fmt.Errorf("shard: directory file %s: duplicate shard %q", path, s.Name)
		}
		seen[s.Name] = true
	}
	return &f, nil
}

// Save writes the file atomically (write-then-rename), so a front
// re-reading the directory never observes a torn write.
func (f *File) Save(path string) error {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// Register adds the shard, or updates its address if the name is
// already present.
func (f *File) Register(name, addr string) {
	for i := range f.Shards {
		if f.Shards[i].Name == name {
			f.Shards[i].Addr = addr
			return
		}
	}
	f.Shards = append(f.Shards, FileShard{Name: name, Addr: addr})
}

// Addrs returns the shard-name → address map.
func (f *File) Addrs() map[string]string {
	out := make(map[string]string, len(f.Shards))
	for _, s := range f.Shards {
		out[s.Name] = s.Addr
	}
	return out
}

// Directory builds the consistent-hash directory the file describes.
func (f *File) Directory() (*Directory, error) {
	names := make([]string, len(f.Shards))
	for i, s := range f.Shards {
		names[i] = s.Name
	}
	return NewDirectory(names, f.VNodes, f.Seed)
}
