package shard

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
)

func tenantNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("tenant-%05d", i)
	}
	return out
}

// TestDirectoryDeterministicPlacement pins the determinism contract at
// 10k tenants: placement is a pure function of (shard set, vnodes,
// seed, tenant) — identical across independently built directories,
// across shard-insertion order, and across concurrent readers at any
// GOMAXPROCS.
func TestDirectoryDeterministicPlacement(t *testing.T) {
	shards := []string{"shard-a", "shard-b", "shard-c", "shard-d"}
	tenants := tenantNames(10000)

	d1, err := NewDirectory(shards, 0, 42)
	if err != nil {
		t.Fatal(err)
	}
	// Same inputs, different construction order.
	d2, err := NewDirectory([]string{"shard-d", "shard-b", "shard-a", "shard-c"}, 0, 42)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]string, len(tenants))
	for i, tn := range tenants {
		want[i] = d1.Place(tn)
		if got := d2.Place(tn); got != want[i] {
			t.Fatalf("placement of %s differs across construction order: %s vs %s", tn, want[i], got)
		}
	}

	// Concurrent replay on every GOMAXPROCS level up to NumCPU.
	for _, procs := range []int{1, 2, runtime.NumCPU()} {
		prev := runtime.GOMAXPROCS(procs)
		var wg sync.WaitGroup
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < len(tenants); i += 8 {
					if got := d1.Place(tenants[i]); got != want[i] {
						t.Errorf("GOMAXPROCS=%d: placement of %s = %s, want %s", procs, tenants[i], got, want[i])
					}
				}
			}(w)
		}
		wg.Wait()
		runtime.GOMAXPROCS(prev)
	}

	// A different seed is a genuinely different ring (placements must
	// not be seed-independent).
	d3, err := NewDirectory(shards, 0, 43)
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for i, tn := range tenants {
		if d3.Place(tn) != want[i] {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("changing the seed moved no tenants — placement ignores the seed")
	}
}

// TestDirectoryBalance pins that virtual nodes spread 10k tenants
// across 4 shards within a reasonable band of even (no shard starved
// or doubled).
func TestDirectoryBalance(t *testing.T) {
	d, err := NewDirectory([]string{"s0", "s1", "s2", "s3"}, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	counts := d.Counts(tenantNames(10000))
	for s, n := range counts {
		if n < 1500 || n > 3500 {
			t.Errorf("shard %s holds %d of 10000 tenants (want within [1500, 3500])", s, n)
		}
	}
}

// TestDirectoryMinimalMovement pins the consistent-hashing property:
// adding a fifth shard to a four-shard ring moves roughly 1/5 of the
// tenants — all of them to the new shard — and removing it restores
// the original placement exactly.
func TestDirectoryMinimalMovement(t *testing.T) {
	tenants := tenantNames(10000)
	d, err := NewDirectory([]string{"s0", "s1", "s2", "s3"}, 0, 99)
	if err != nil {
		t.Fatal(err)
	}
	before := make([]string, len(tenants))
	for i, tn := range tenants {
		before[i] = d.Place(tn)
	}

	if err := d.Add("s4"); err != nil {
		t.Fatal(err)
	}
	moved := 0
	for i, tn := range tenants {
		after := d.Place(tn)
		if after != before[i] {
			moved++
			if after != "s4" {
				t.Fatalf("tenant %s moved %s -> %s: movement not confined to the new shard", tn, before[i], after)
			}
		}
	}
	// Expected moved fraction is 1/5; allow a generous band around it.
	if frac := float64(moved) / float64(len(tenants)); frac < 0.10 || frac > 0.32 {
		t.Errorf("moved fraction %.3f far from 1/5 on shard add", frac)
	}

	if err := d.Remove("s4"); err != nil {
		t.Fatal(err)
	}
	for i, tn := range tenants {
		if got := d.Place(tn); got != before[i] {
			t.Fatalf("tenant %s on %s after add+remove, want original %s", tn, got, before[i])
		}
	}
}

// TestDirectoryValidation pins the constructor and mutation errors.
func TestDirectoryValidation(t *testing.T) {
	if _, err := NewDirectory(nil, 0, 1); err == nil {
		t.Error("empty shard set accepted")
	}
	if _, err := NewDirectory([]string{"a", "a"}, 0, 1); err == nil {
		t.Error("duplicate shard accepted")
	}
	if _, err := NewDirectory([]string{""}, 0, 1); err == nil {
		t.Error("empty shard name accepted")
	}
	d, err := NewDirectory([]string{"a"}, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Add("a"); err == nil {
		t.Error("duplicate Add accepted")
	}
	if err := d.Remove("zzz"); err == nil {
		t.Error("Remove of unknown shard accepted")
	}
	if err := d.Remove("a"); err == nil {
		t.Error("Remove of last shard accepted")
	}
}
