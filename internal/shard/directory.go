// Package shard is the horizontal serving topology: a tenant Directory
// that places tenants over N serving shards by consistent hashing, a
// FrontDoor that sheds load before placement (token bucket plus
// predictive admission), and an HTTP front that routes tenant traffic
// to `uaqp serve -shard` processes registered in a static directory
// file. The topology is validated first in internal/sim — the same
// Directory and FrontDoor drive the simulator's sharded scenarios —
// then realized over HTTP (examples/shard), so the simulator and the
// real serving path share one cluster abstraction.
package shard

import (
	"fmt"
	"sort"
	"sync"
)

// DefaultVNodes is the virtual-node count per shard when a directory
// (or directory file) does not choose one: enough ring points that a
// handful of shards split the key space within a few percent of even.
const DefaultVNodes = 128

// ringEntry is one virtual node on the hash ring.
type ringEntry struct {
	hash  uint64
	shard string
}

// Directory places tenants over serving shards with a consistent-hash
// ring of virtual nodes. Placement is a pure function of (shard set,
// vnodes, seed, tenant): rebuilding a directory from the same inputs —
// in any order, on any GOMAXPROCS — yields byte-identical placements,
// which is what lets the simulator report on 10k-tenant topologies
// deterministically. Adding or removing a shard moves only the tenants
// whose arc the change captures (≈ 1/N of them), never reshuffling the
// rest.
type Directory struct {
	mu     sync.RWMutex
	vnodes int
	seed   int64
	shards []string // sorted
	ring   []ringEntry
}

// NewDirectory builds a directory over the given shard names. vnodes
// < 1 selects DefaultVNodes. Shard names must be non-empty and unique;
// order does not matter (the ring is built from the sorted set).
func NewDirectory(shards []string, vnodes int, seed int64) (*Directory, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("shard: directory needs at least one shard")
	}
	if vnodes < 1 {
		vnodes = DefaultVNodes
	}
	d := &Directory{vnodes: vnodes, seed: seed}
	seen := make(map[string]bool, len(shards))
	for _, s := range shards {
		if s == "" {
			return nil, fmt.Errorf("shard: empty shard name")
		}
		if seen[s] {
			return nil, fmt.Errorf("shard: duplicate shard %q", s)
		}
		seen[s] = true
		d.shards = append(d.shards, s)
	}
	sort.Strings(d.shards)
	d.rebuild()
	return d, nil
}

// rebuild recomputes the ring from the sorted shard set; callers hold
// the write lock (or own the directory exclusively).
func (d *Directory) rebuild() {
	d.ring = d.ring[:0]
	if cap(d.ring) < len(d.shards)*d.vnodes {
		d.ring = make([]ringEntry, 0, len(d.shards)*d.vnodes)
	}
	for _, s := range d.shards {
		for v := 0; v < d.vnodes; v++ {
			d.ring = append(d.ring, ringEntry{
				hash:  hash64(d.seed, fmt.Sprintf("%s#%d", s, v)),
				shard: s,
			})
		}
	}
	sort.Slice(d.ring, func(i, j int) bool {
		if d.ring[i].hash != d.ring[j].hash {
			return d.ring[i].hash < d.ring[j].hash
		}
		// A full-width hash collision is vanishingly rare; break it by
		// name so the ring order is still a pure function of the inputs.
		return d.ring[i].shard < d.ring[j].shard
	})
}

// Place returns the shard owning tenant: the first virtual node at or
// clockwise of the tenant's hash.
func (d *Directory) Place(tenant string) string {
	h := hash64(d.seed, tenant)
	d.mu.RLock()
	defer d.mu.RUnlock()
	i := sort.Search(len(d.ring), func(i int) bool { return d.ring[i].hash >= h })
	if i == len(d.ring) {
		i = 0
	}
	return d.ring[i].shard
}

// Add inserts a shard and rebuilds the ring; only tenants on arcs the
// new shard's virtual nodes capture move to it.
func (d *Directory) Add(shard string) error {
	if shard == "" {
		return fmt.Errorf("shard: empty shard name")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	i := sort.SearchStrings(d.shards, shard)
	if i < len(d.shards) && d.shards[i] == shard {
		return fmt.Errorf("shard: duplicate shard %q", shard)
	}
	d.shards = append(d.shards, "")
	copy(d.shards[i+1:], d.shards[i:])
	d.shards[i] = shard
	d.rebuild()
	return nil
}

// Remove deletes a shard and rebuilds the ring; its tenants scatter to
// the next virtual node clockwise of each vacated arc.
func (d *Directory) Remove(shard string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.shards) == 1 {
		return fmt.Errorf("shard: cannot remove the last shard")
	}
	i := sort.SearchStrings(d.shards, shard)
	if i == len(d.shards) || d.shards[i] != shard {
		return fmt.Errorf("shard: unknown shard %q", shard)
	}
	d.shards = append(d.shards[:i], d.shards[i+1:]...)
	d.rebuild()
	return nil
}

// Shards returns the sorted shard names.
func (d *Directory) Shards() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]string, len(d.shards))
	copy(out, d.shards)
	return out
}

// Counts places every tenant and tallies per shard — the directory
// half of the /metrics vocabulary.
func (d *Directory) Counts(tenants []string) map[string]int {
	out := make(map[string]int)
	for _, s := range d.Shards() {
		out[s] = 0
	}
	for _, t := range tenants {
		out[d.Place(t)]++
	}
	return out
}

// hash64 is the directory's placement hash: FNV-1a over the seed and
// key, finished with a splitmix-style avalanche so structured names
// (tenant-0001, tenant-0002, ...) still spread evenly around the ring.
func hash64(seed int64, key string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	x := uint64(offset64)
	s := uint64(seed)
	for i := 0; i < 8; i++ {
		x ^= (s >> (8 * i)) & 0xff
		x *= prime64
	}
	for i := 0; i < len(key); i++ {
		x ^= uint64(key[i])
		x *= prime64
	}
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
