package shard

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	uaqetp "repro"
	"repro/internal/stats"
)

// FrontConfig shapes the HTTP front.
type FrontConfig struct {
	FrontDoor FrontDoorConfig
	// Confidence is the SLO confidence the predictive shed compares
	// against when a submission does not carry one; 0 selects 0.5.
	Confidence float64
}

// Front is the HTTP routing tier: it owns the Directory and FrontDoor
// and forwards tenant traffic to the registered shard processes. The
// front holds no tenant state of its own beyond verdict counters and
// the set of tenants it has routed — all serving state lives in the
// shards.
type Front struct {
	dir    *Directory
	addrs  map[string]string
	fd     *FrontDoor
	cfg    FrontConfig
	client *http.Client
	start  time.Time

	mu          sync.Mutex
	forwarded   map[string]uint64 // completed forwards per shard
	tenantShard map[string]string // distinct tenants seen → placed shard
}

// NewFront builds the routing tier from a directory file.
func NewFront(file *File, cfg FrontConfig) (*Front, error) {
	dir, err := file.Directory()
	if err != nil {
		return nil, err
	}
	if cfg.Confidence <= 0 {
		cfg.Confidence = 0.5
	}
	return &Front{
		dir:         dir,
		addrs:       file.Addrs(),
		fd:          NewFrontDoor(cfg.FrontDoor),
		cfg:         cfg,
		client:      &http.Client{Timeout: 60 * time.Second},
		start:       time.Now(),
		forwarded:   make(map[string]uint64),
		tenantShard: make(map[string]string),
	}, nil
}

// Directory exposes the front's directory (the `uaqp front` process
// also answers placement queries with it).
func (f *Front) Directory() *Directory { return f.dir }

// Handler returns the front's HTTP surface:
//
//	GET  /healthz   liveness + shard roster
//	POST /predict   {"tenant", "query"}                       -> forwarded to the tenant's shard
//	POST /submit    {"tenant", "query", "deadline", "class"}  -> front-door verdict, then forwarded
//	GET  /place     ?tenant=name                              -> the shard owning the tenant
//	GET  /metrics   directory + front-door counters (Prometheus text)
func (f *Front) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", f.handleHealthz)
	mux.HandleFunc("POST /predict", f.handlePredict)
	mux.HandleFunc("POST /submit", f.handleSubmit)
	mux.HandleFunc("GET /place", f.handlePlace)
	mux.HandleFunc("GET /metrics", f.handleMetrics)
	return mux
}

type frontError struct {
	Error string `json:"error"`
}

func frontJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func (f *Front) handleHealthz(w http.ResponseWriter, r *http.Request) {
	shards := f.dir.Shards()
	roster := make([]FileShard, 0, len(shards))
	for _, s := range shards {
		roster = append(roster, FileShard{Name: s, Addr: f.addrs[s]})
	}
	frontJSON(w, http.StatusOK, struct {
		Status string      `json:"status"`
		Shards []FileShard `json:"shards"`
	}{Status: "ok", Shards: roster})
}

func (f *Front) handlePlace(w http.ResponseWriter, r *http.Request) {
	tenant := r.URL.Query().Get("tenant")
	if tenant == "" {
		frontJSON(w, http.StatusBadRequest, frontError{Error: "missing tenant parameter"})
		return
	}
	s := f.dir.Place(tenant)
	frontJSON(w, http.StatusOK, struct {
		Tenant string `json:"tenant"`
		Shard  string `json:"shard"`
		Addr   string `json:"addr"`
	}{Tenant: tenant, Shard: s, Addr: f.addrs[s]})
}

// forward relays body to the placed shard's endpoint and copies the
// response through verbatim.
func (f *Front) forward(w http.ResponseWriter, shard, path string, body []byte) {
	addr, ok := f.addrs[shard]
	if !ok || addr == "" {
		frontJSON(w, http.StatusBadGateway, frontError{Error: fmt.Sprintf("shard %q has no registered address", shard)})
		return
	}
	resp, err := f.client.Post(addr+path, "application/json", bytes.NewReader(body))
	if err != nil {
		frontJSON(w, http.StatusBadGateway, frontError{Error: fmt.Sprintf("shard %q: %v", shard, err)})
		return
	}
	defer resp.Body.Close()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
	f.mu.Lock()
	f.forwarded[shard]++
	f.mu.Unlock()
}

type frontRequest struct {
	Tenant   string        `json:"tenant"`
	Query    *uaqetp.Query `json:"query"`
	Deadline float64       `json:"deadline,omitempty"`
	// Class labels the submission's SLO class in the front-door
	// counters; empty selects the tenant name.
	Class string `json:"class,omitempty"`
	// Confidence overrides the front's predictive-shed confidence for
	// this submission.
	Confidence float64 `json:"confidence,omitempty"`
}

func (f *Front) place(tenant string) string {
	s := f.dir.Place(tenant)
	f.mu.Lock()
	f.tenantShard[tenant] = s
	f.mu.Unlock()
	return s
}

func (f *Front) handlePredict(w http.ResponseWriter, r *http.Request) {
	var req frontRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		frontJSON(w, http.StatusBadRequest, frontError{Error: "bad request body: " + err.Error()})
		return
	}
	if req.Tenant == "" {
		frontJSON(w, http.StatusBadRequest, frontError{Error: "missing tenant"})
		return
	}
	body, _ := json.Marshal(struct {
		Tenant string        `json:"tenant"`
		Query  *uaqetp.Query `json:"query"`
	}{req.Tenant, req.Query})
	f.forward(w, f.place(req.Tenant), "/predict", body)
}

// shedResponse is the front's refusal body; its verdict vocabulary
// matches the simulator's trace verdicts.
type shedResponse struct {
	Verdict Verdict `json:"verdict"`
	Reason  string  `json:"reason"`
	Shard   string  `json:"shard"`
	PMeet   float64 `json:"p_meet,omitempty"`
}

func (f *Front) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req frontRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		frontJSON(w, http.StatusBadRequest, frontError{Error: "bad request body: " + err.Error()})
		return
	}
	if req.Tenant == "" {
		frontJSON(w, http.StatusBadRequest, frontError{Error: "missing tenant"})
		return
	}
	shardName := f.place(req.Tenant)
	class := req.Class
	if class == "" {
		class = req.Tenant
	}
	confidence := req.Confidence
	if confidence <= 0 {
		confidence = f.cfg.Confidence
	}

	// The front's predictive bound is optimistic: P(T_q <= d) with
	// zero queue wait, from the shard's own (cached) prediction. If
	// even that is below the confidence, no queue state anywhere in
	// the fleet can save the request. Without a deadline there is no
	// bound to check, so bestP saturates.
	bestP := 1.0
	if f.fd.Predictive() && req.Deadline > 0 {
		if pred, err := f.predictOn(shardName, req); err == nil {
			total := stats.Normal{Mu: pred.Mean, Sigma: pred.Sigma}
			bestP = total.CDF(req.Deadline)
		}
	}
	now := time.Since(f.start).Seconds()
	verdict := f.fd.Admit(class, now, bestP, confidence)
	if verdict != VerdictAdmit {
		reason := "token bucket empty"
		if verdict == VerdictShedPredictive {
			reason = fmt.Sprintf("P(T_q <= %.4g) = %.4f below confidence %.4f with zero wait", req.Deadline, bestP, confidence)
		}
		frontJSON(w, http.StatusTooManyRequests, shedResponse{
			Verdict: verdict, Reason: reason, Shard: shardName, PMeet: bestP,
		})
		return
	}
	body, _ := json.Marshal(struct {
		Tenant   string        `json:"tenant"`
		Query    *uaqetp.Query `json:"query"`
		Deadline float64       `json:"deadline"`
	}{req.Tenant, req.Query, req.Deadline})
	f.forward(w, shardName, "/submit", body)
}

// predictedCost is the slice of the shard /predict response the
// front's predictive check needs.
type predictedCost struct {
	Mean  float64 `json:"mean"`
	Sigma float64 `json:"sigma"`
}

func (f *Front) predictOn(shard string, req frontRequest) (*predictedCost, error) {
	addr, ok := f.addrs[shard]
	if !ok || addr == "" {
		return nil, fmt.Errorf("shard %q has no registered address", shard)
	}
	body, _ := json.Marshal(struct {
		Tenant string        `json:"tenant"`
		Query  *uaqetp.Query `json:"query"`
	}{req.Tenant, req.Query})
	resp, err := f.client.Post(addr+"/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("shard %q predict: status %d", shard, resp.StatusCode)
	}
	var pc predictedCost
	if err := json.NewDecoder(resp.Body).Decode(&pc); err != nil {
		return nil, err
	}
	if pc.Sigma <= 0 || math.IsNaN(pc.Mean) {
		return nil, fmt.Errorf("shard %q predict: degenerate prediction", shard)
	}
	return &pc, nil
}

func (f *Front) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")

	f.mu.Lock()
	tenants := make(map[string]int)
	for _, s := range f.dir.Shards() {
		tenants[s] = 0
	}
	for _, s := range f.tenantShard {
		tenants[s]++
	}
	forwarded := make(map[string]uint64, len(f.forwarded))
	for k, v := range f.forwarded {
		forwarded[k] = v
	}
	f.mu.Unlock()

	shards := f.dir.Shards()
	fmt.Fprintf(w, "# HELP uaqp_front_shards Serving shards in the directory.\n# TYPE uaqp_front_shards gauge\nuaqp_front_shards %d\n", len(shards))
	fmt.Fprintf(w, "# HELP uaqp_front_shard_tenants Distinct tenants routed, by shard.\n# TYPE uaqp_front_shard_tenants gauge\n")
	for _, s := range shards {
		fmt.Fprintf(w, "uaqp_front_shard_tenants{shard=%q} %d\n", s, tenants[s])
	}
	fmt.Fprintf(w, "# HELP uaqp_front_forwarded_total Requests forwarded, by shard.\n# TYPE uaqp_front_forwarded_total counter\n")
	for _, s := range shards {
		fmt.Fprintf(w, "uaqp_front_forwarded_total{shard=%q} %d\n", s, forwarded[s])
	}

	counters := f.fd.Counters()
	classes := make([]string, 0, len(counters))
	for c := range counters {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	fmt.Fprintf(w, "# HELP uaqp_front_admitted_total Front-door admissions, by SLO class.\n# TYPE uaqp_front_admitted_total counter\n")
	for _, c := range classes {
		fmt.Fprintf(w, "uaqp_front_admitted_total{class=%q} %d\n", c, counters[c].Admitted)
	}
	fmt.Fprintf(w, "# HELP uaqp_front_shed_total Front-door sheds, by SLO class and reason.\n# TYPE uaqp_front_shed_total counter\n")
	for _, c := range classes {
		fmt.Fprintf(w, "uaqp_front_shed_total{class=%q,reason=\"predictive\"} %d\n", c, counters[c].ShedPredictive)
		fmt.Fprintf(w, "uaqp_front_shed_total{class=%q,reason=\"throttle\"} %d\n", c, counters[c].ShedThrottled)
	}
	var rates []float64
	for _, c := range classes {
		ct := counters[c]
		if total := ct.Admitted + ct.ShedPredictive + ct.ShedThrottled; total > 0 {
			rates = append(rates, float64(ct.Admitted)/float64(total))
		}
	}
	fmt.Fprintf(w, "# HELP uaqp_front_admission_fairness Jain fairness index over per-class admission rates.\n# TYPE uaqp_front_admission_fairness gauge\n")
	fmt.Fprintf(w, "uaqp_front_admission_fairness %s\n", strconv.FormatFloat(stats.JainIndex(rates), 'g', -1, 64))
}
