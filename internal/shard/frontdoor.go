package shard

import (
	"sort"
	"sync"
)

// Verdict is the front door's decision on one submission.
type Verdict string

const (
	// VerdictAdmit forwards the request to its placed shard.
	VerdictAdmit Verdict = "admit"
	// VerdictShedPredictive sheds a request whose best achievable
	// P(T_wait + T_q <= d) anywhere in the fleet is already below the
	// SLO confidence: forwarding it would only burn a token (and queue
	// capacity) on a query that is hopeless before placement.
	VerdictShedPredictive Verdict = "shed-predictive"
	// VerdictShedThrottle sheds a request the token bucket cannot
	// cover: the fleet-wide intake rate cap is exceeded.
	VerdictShedThrottle Verdict = "shed-throttle"
)

// FrontDoorConfig shapes the front door.
type FrontDoorConfig struct {
	// Rate is the token refill rate in requests per (virtual) second;
	// <= 0 disables the token bucket (no throttle shedding).
	Rate float64 `json:"rate"`
	// Burst is the bucket capacity (and initial fill); < 1 selects
	// Rate (a one-second burst).
	Burst float64 `json:"burst"`
	// Predictive enables hopelessness shedding: a submission whose
	// best fleet-wide P(T_wait + T_q <= d) falls below its SLO
	// confidence is shed before it can spend a token. This is the
	// mechanism by which the predictive front door beats a naive
	// token-only one under flash load — hopeless queries stop
	// competing with feasible ones for intake capacity.
	Predictive bool `json:"predictive"`
}

// ClassCounters tallies front-door verdicts for one SLO class.
type ClassCounters struct {
	Admitted       uint64 `json:"admitted"`
	ShedPredictive uint64 `json:"shed_predictive"`
	ShedThrottled  uint64 `json:"shed_throttled"`
}

// FrontDoor is the fleet's intake valve: a token bucket over a virtual
// (or wall) clock plus an optional predictive check, with verdicts
// tallied per SLO class. The caller supplies time and the best
// fleet-wide P(T_wait + T_q <= d) it computed for the request — the
// front door itself owns no predictor, so the same valve serves the
// simulator (virtual clock, exact per-machine queue states) and the
// HTTP front (wall clock, optimistic zero-wait bound).
//
// Order of checks is deliberate: predictive first, so hopeless
// requests never consume tokens, then the bucket. Deterministic given
// a deterministic call sequence.
type FrontDoor struct {
	mu      sync.Mutex
	cfg     FrontDoorConfig
	tokens  float64
	last    float64
	started bool
	classes map[string]*ClassCounters
}

// NewFrontDoor returns a front door per cfg; the bucket starts full.
func NewFrontDoor(cfg FrontDoorConfig) *FrontDoor {
	if cfg.Burst < 1 {
		cfg.Burst = cfg.Rate
	}
	return &FrontDoor{
		cfg:     cfg,
		tokens:  cfg.Burst,
		classes: make(map[string]*ClassCounters),
	}
}

// Admit runs the front-door checks for one submission of the given SLO
// class at time now (seconds on the caller's clock; must be
// non-decreasing across calls). bestP is the best fleet-wide
// P(T_wait + T_q <= d) the caller could find for this request, and
// confidence the SLO confidence it must clear; the predictive check
// compares the two only when the front door is configured predictive.
func (f *FrontDoor) Admit(class string, now, bestP, confidence float64) Verdict {
	f.mu.Lock()
	defer f.mu.Unlock()
	c := f.classes[class]
	if c == nil {
		c = &ClassCounters{}
		f.classes[class] = c
	}
	if f.cfg.Rate > 0 {
		if !f.started {
			f.started, f.last = true, now
		}
		if dt := now - f.last; dt > 0 {
			f.tokens += dt * f.cfg.Rate
			if f.tokens > f.cfg.Burst {
				f.tokens = f.cfg.Burst
			}
			f.last = now
		}
	}
	if f.cfg.Predictive && bestP < confidence {
		c.ShedPredictive++
		return VerdictShedPredictive
	}
	if f.cfg.Rate > 0 {
		if f.tokens < 1 {
			c.ShedThrottled++
			return VerdictShedThrottle
		}
		f.tokens--
	}
	c.Admitted++
	return VerdictAdmit
}

// Predictive reports whether the predictive check is enabled (callers
// skip computing bestP when it is not).
func (f *FrontDoor) Predictive() bool { return f.cfg.Predictive }

// Counters snapshots the per-class tallies.
func (f *FrontDoor) Counters() map[string]ClassCounters {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[string]ClassCounters, len(f.classes))
	for k, v := range f.classes {
		out[k] = *v
	}
	return out
}

// Classes returns the sorted class names seen so far — the stable
// iteration order reports and metrics pages need.
func (f *FrontDoor) Classes() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]string, 0, len(f.classes))
	for k := range f.classes {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
