package hardware

import (
	"strings"
	"testing"
)

// TestPresetsAreSpecs pins that the data-driven path reconstructs the
// presets exactly: Spec() → FromSpec is the identity, and the preset
// values are bit-identical profile values (the byte-determinism of
// every downstream report rests on this).
func TestPresetsAreSpecs(t *testing.T) {
	for _, p := range []*Profile{PC1(), PC2()} {
		back, err := FromSpec(p.Spec())
		if err != nil {
			t.Fatalf("%s: FromSpec(Spec()): %v", p.Name, err)
		}
		if *back != *p {
			t.Errorf("%s: spec round-trip changed the profile:\n%+v\nvs\n%+v", p.Name, back, p)
		}
	}
	if a, b := PC1(), PC1(); *a != *b {
		t.Error("PC1() not a stable value")
	}
}

func TestParseProfileJSON(t *testing.T) {
	data := []byte(`{
		"name": "edge-node",
		"units": {
			"cs": {"mean": 100e-6, "cv": 0.2},
			"cr": {"mean": 1200e-6, "cv": 0.25},
			"ct": {"mean": 2e-6, "sigma": 0.4e-6},
			"ci": {"mean": 5e-6, "cv": 0.2},
			"co": {"mean": 3e-6, "cv": 0.2}
		},
		"model_err_sigma": 0.15
	}`)
	p, err := ParseProfile(data)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "edge-node" || p.ModelErrSigma != 0.15 {
		t.Fatalf("parsed %+v", p)
	}
	if got := p.True[CS].Sigma; got != 0.2*100e-6 {
		t.Errorf("cs sigma from CV = %g", got)
	}
	if got := p.True[CT].Sigma; got != 0.4e-6 {
		t.Errorf("ct sigma (explicit) = %g", got)
	}
	if _, err := ParseProfile([]byte(`{"name":"x","units":{},"extra":1}`)); err == nil {
		t.Error("unknown field accepted")
	}
}

func TestFromSpecValidation(t *testing.T) {
	base := PC1().Spec()
	cases := []func(*Spec){
		func(sp *Spec) { sp.Name = "" },
		func(sp *Spec) { delete(sp.Units, "cr") },
		func(sp *Spec) { sp.Units["cx"] = UnitSpec{Mean: 1e-6} },
		func(sp *Spec) { sp.Units["cs"] = UnitSpec{Mean: 0, CV: 0.1} },
		func(sp *Spec) { sp.Units["cs"] = UnitSpec{Mean: 1e-6, CV: -0.1} },
		func(sp *Spec) { sp.ModelErrSigma = -1 },
	}
	for i, mutate := range cases {
		sp := PC1().Spec()
		sp.Name = base.Name
		mutate(&sp)
		if _, err := FromSpec(sp); err == nil {
			t.Errorf("case %d: invalid spec accepted", i)
		}
	}
}

func TestScaleAndDrift(t *testing.T) {
	p := PC1()
	slow, err := p.Scale(1.5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < NumUnits; i++ {
		if slow.True[i].Mu != 1.5*p.True[i].Mu || slow.True[i].Sigma != 1.5*p.True[i].Sigma {
			t.Errorf("unit %v not uniformly scaled", Unit(i))
		}
	}
	if slow.Name != "PC1*1.5" || slow.ModelErrSigma != p.ModelErrSigma {
		t.Errorf("scaled profile labeled %q, model err %g", slow.Name, slow.ModelErrSigma)
	}
	if _, err := p.Scale(0); err == nil {
		t.Error("zero scale accepted")
	}

	drifted, err := p.WithDrift(0.3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < NumUnits; i++ {
		if drifted.True[i].Mu != 1.3*p.True[i].Mu {
			t.Errorf("unit %v mean not drifted", Unit(i))
		}
		if drifted.True[i].Sigma != p.True[i].Sigma {
			t.Errorf("unit %v sigma changed by mean drift", Unit(i))
		}
	}
	if drifted.Name != "PC1+d0.3" {
		t.Errorf("drifted profile labeled %q", drifted.Name)
	}
	if _, err := p.WithDrift(-1); err == nil {
		t.Error("drift -1 accepted")
	}
	// Deriving never mutates the receiver.
	if *p != *PC1() {
		t.Error("derivation mutated the base profile")
	}
}

func TestRegistry(t *testing.T) {
	_, err := ProfileByName("PC9")
	if err == nil {
		t.Fatal("unknown profile accepted")
	}
	// The error lists the registered vocabulary (the serving/sim layers
	// surface it directly to scenario authors).
	if msg := err.Error(); !strings.Contains(msg, "PC1") || !strings.Contains(msg, "PC2") {
		t.Errorf("unknown-profile error does not list registered profiles: %s", msg)
	}

	custom, err := PC2().Scale(2)
	if err != nil {
		t.Fatal(err)
	}
	custom.Name = "test-custom"
	if err := Register(custom); err != nil {
		t.Fatal(err)
	}
	got, err := ProfileByName("test-custom")
	if err != nil || *got != *custom {
		t.Fatalf("registered profile not resolvable: %v, %v", got, err)
	}
	// Resolving hands out copies: mutating one must not poison the
	// registry.
	got.True[CS].Mu = 1
	again, _ := ProfileByName("test-custom")
	if again.True[CS].Mu == 1 {
		t.Error("ProfileByName returned a shared pointer")
	}
	if err := Register(custom); err == nil {
		t.Error("duplicate registration accepted")
	}
	names := RegisteredProfiles()
	want := map[string]bool{"PC1": true, "PC2": true, "test-custom": true}
	for _, n := range names {
		delete(want, n)
	}
	if len(want) != 0 {
		t.Errorf("RegisteredProfiles() = %v missing %v", names, want)
	}
}
