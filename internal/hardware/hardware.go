// Package hardware simulates the execution environment of the paper's
// experiments: machines whose five PostgreSQL cost units c = (cs, cr,
// ct, ci, co) are true Gaussian random variables, plus a multiplicative
// model-error term standing in for the simplifications in the cost
// model function g (error source (iii) of Section 1).
//
// A machine is a Profile — a plain data value (per-unit means and
// coefficients of variation, one model-error sigma) constructible from
// a JSON Spec, derivable from another profile (Scale, WithDrift), or
// looked up by name in the registry (ProfileByName, Register). The
// paper's two physical machines survive as the preset profiles PC1 and
// PC2, themselves defined as specs.
//
// The paper ran PostgreSQL 9.0.4 on physical machines; this simulator is
// the documented substitution (see DESIGN.md §3). Prediction-side code —
// calibration, sampling, fitting, propagation — is identical to what
// would run against a real DBMS; only the source of "actual" running
// times differs.
package hardware

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/engine"
	"repro/internal/stats"
)

// NumUnits is the number of cost units in the model.
const NumUnits = 5

// Unit indexes the five cost units of Table 1.
type Unit int

// The five cost units (Table 1 of the paper).
const (
	CS Unit = iota // I/O cost to sequentially access a page
	CR             // I/O cost to randomly access a page
	CT             // CPU cost to process a tuple
	CI             // CPU cost to process a tuple via index access
	CO             // CPU cost to perform an operation (hash, comparison)
)

// String implements fmt.Stringer.
func (u Unit) String() string {
	switch u {
	case CS:
		return "cs"
	case CR:
		return "cr"
	case CT:
		return "ct"
	case CI:
		return "ci"
	case CO:
		return "co"
	default:
		return fmt.Sprintf("Unit(%d)", int(u))
	}
}

// Units lists all cost units in index order.
var Units = [NumUnits]Unit{CS, CR, CT, CI, CO}

// Profile describes a simulated machine: the true (unobservable)
// distribution of each cost unit in seconds per operation, and the
// standard deviation of the per-operator log-scale model error. A
// Profile is a plain comparable value — two profiles with equal fields
// are the same machine — constructed from a preset (PC1, PC2), a JSON
// Spec (FromSpec, ParseProfile), the registry (ProfileByName), or
// derived from another profile (Scale, WithDrift).
type Profile struct {
	Name string
	// True distribution of each cost unit; the calibration framework
	// estimates these, it never reads them directly.
	True [NumUnits]stats.Normal
	// ModelErrSigma is the sigma of the lognormal factor exp(eps),
	// eps ~ N(0, ModelErrSigma^2), applied per operator. It models the
	// errors in g itself (interleaving of CPU and I/O, constant factors
	// the logical cost functions miss).
	ModelErrSigma float64
}

// The preset machines of the paper's experiments, as data. PC1 is the
// slower machine (dual 1.86 GHz CPU, 4 GB); PC2 (8-core 2.40 GHz,
// 16 GB) has roughly 2x cheaper CPU units, moderately cheaper I/O, and
// slightly tighter variation.
var (
	pc1Spec = Spec{
		Name: "PC1",
		Units: map[string]UnitSpec{
			"cs": {Mean: 80e-6, Sigma: 14e-6},   // sequential page read
			"cr": {Mean: 900e-6, Sigma: 220e-6}, // random page read
			"ct": {Mean: 1.0e-6, Sigma: 0.18e-6},
			"ci": {Mean: 2.5e-6, Sigma: 0.50e-6},
			"co": {Mean: 1.4e-6, Sigma: 0.26e-6},
		},
		ModelErrSigma: 0.12,
	}
	pc2Spec = Spec{
		Name: "PC2",
		Units: map[string]UnitSpec{
			"cs": {Mean: 60e-6, Sigma: 9e-6},
			"cr": {Mean: 700e-6, Sigma: 150e-6},
			"ct": {Mean: 0.45e-6, Sigma: 0.07e-6},
			"ci": {Mean: 1.1e-6, Sigma: 0.19e-6},
			"co": {Mean: 0.6e-6, Sigma: 0.10e-6},
		},
		ModelErrSigma: 0.10,
	}
)

// PC1 returns the slower machine of the paper (dual 1.86 GHz CPU, 4 GB).
func PC1() *Profile { return mustFromSpec(pc1Spec) }

// PC2 returns the faster machine (8-core 2.40 GHz, 16 GB).
func PC2() *Profile { return mustFromSpec(pc2Spec) }

// drawUnit samples one realization of cost unit u.
func (p *Profile) drawUnit(u Unit, r *rand.Rand) float64 {
	d := p.True[u]
	v := d.Mu + d.Sigma*r.NormFloat64()
	// Cost units are physically positive; resample the rare negative tail.
	for v <= 0 {
		v = d.Mu + d.Sigma*r.NormFloat64()
	}
	return v
}

// OperatorTime realizes the running time of one operator with resource
// counts n: t = exp(eps) * sum_c n_c * c_draw, with fresh unit draws per
// operator (the paper's observation that e.g. the cost of a random I/O
// differs from operator to operator).
func (p *Profile) OperatorTime(counts engine.Counts, r *rand.Rand) float64 {
	var t float64
	for i := 0; i < NumUnits; i++ {
		n := counts.Get(i)
		if n > 0 {
			t += n * p.drawUnit(Unit(i), r)
		}
	}
	if p.ModelErrSigma > 0 {
		t *= math.Exp(p.ModelErrSigma * r.NormFloat64())
	}
	return t
}

// PlanTime realizes the total running time of an executed plan. The
// cost units are drawn once per run — they model the machine state
// (disk layout, cache temperature, background load) during that
// execution, the "fluctuations in the system state" of Section 1 — and
// shared by all operators; each operator additionally gets an
// independent lognormal model-error factor for the imperfection of g.
func (p *Profile) PlanTime(res *engine.OpResult, r *rand.Rand) float64 {
	var units [NumUnits]float64
	for i := 0; i < NumUnits; i++ {
		units[i] = p.drawUnit(Unit(i), r)
	}
	return p.opTreeTime(res, &units, r, 0)
}

// opTreeTime realizes the subtree rooted at op in preorder — the same
// order Results flattens in — folding each operator's time into the
// running total t left to right, so both the model-error draw sequence
// and the floating-point summation order (and thus every pinned
// measured time, bit for bit) are unchanged, without materializing the
// result slice per run.
func (p *Profile) opTreeTime(op *engine.OpResult, units *[NumUnits]float64, r *rand.Rand, t float64) float64 {
	var ot float64
	for i := 0; i < NumUnits; i++ {
		if n := op.Counts.Get(i); n > 0 {
			ot += n * units[i]
		}
	}
	if p.ModelErrSigma > 0 {
		ot *= math.Exp(p.ModelErrSigma * r.NormFloat64())
	}
	t += ot
	if op.Left != nil {
		t = p.opTreeTime(op.Left, units, r, t)
	}
	if op.Right != nil {
		t = p.opTreeTime(op.Right, units, r, t)
	}
	return t
}

// AverageRuns mirrors the paper's measurement protocol: run the query
// Runs times with cold caches and average the measured times.
const AverageRuns = 5

// MeasurePlan returns the "actual running time" of an executed plan:
// the mean of AverageRuns independent realizations.
func (p *Profile) MeasurePlan(res *engine.OpResult, r *rand.Rand) float64 {
	var sum float64
	for i := 0; i < AverageRuns; i++ {
		sum += p.PlanTime(res, r)
	}
	return sum / AverageRuns
}

// ExpectedCost returns the deterministic cost sum_c n_c * mu_c of a count
// vector under the profile's true means — used by the overhead
// experiments to compare sample-run cost against full-run cost.
func (p *Profile) ExpectedCost(counts engine.Counts) float64 {
	var t float64
	for i := 0; i < NumUnits; i++ {
		t += counts.Get(i) * p.True[i].Mu
	}
	return t
}
