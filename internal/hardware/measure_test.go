package hardware

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/engine"
	"repro/internal/rng"
)

// measureFixture builds a small executed plan to draw measured times
// against.
func measureFixture(t testing.TB) *engine.OpResult {
	t.Helper()
	db := engine.NewDB()
	rows := make([][]int64, 1000)
	for i := range rows {
		rows[i] = []int64{int64(i)}
	}
	db.Add(engine.NewTable("t", []string{"x"}, rows))
	plan := &engine.Node{Kind: engine.SeqScan, Table: "t"}
	plan.Finalize()
	res, err := engine.Run(db, plan)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestMeasurePlanSeededV1BitCompatible pins the seam's whole reason to
// exist: the v1 path is the historical math/rand measurement bit for
// bit, so every golden pinned before the seam survives.
func TestMeasurePlanSeededV1BitCompatible(t *testing.T) {
	p := PC1()
	res := measureFixture(t)
	for key := int64(-3); key < 40; key += 7 {
		want := p.MeasurePlan(res, rand.New(rand.NewSource(key)))
		if got := p.MeasurePlanSeeded(res, rng.V1, key); got != want {
			t.Fatalf("key %d: v1 seeded = %v, historical = %v", key, got, want)
		}
	}
}

// TestMeasurePlanSeededV2Deterministic: same (version, key) → same
// measured time; distinct keys → distinct times.
func TestMeasurePlanSeededV2Deterministic(t *testing.T) {
	p := PC2()
	res := measureFixture(t)
	a := p.MeasurePlanSeeded(res, rng.V2, 99)
	if b := p.MeasurePlanSeeded(res, rng.V2, 99); b != a {
		t.Fatalf("v2 not deterministic: %v vs %v", a, b)
	}
	if c := p.MeasurePlanSeeded(res, rng.V2, 100); c == a {
		t.Fatalf("distinct keys coincided: %v", a)
	}
	if a <= 0 {
		t.Fatalf("non-positive measured time %v", a)
	}
}

// TestMeasurePlanSeededVersionsAgreeInDistribution: v2 changes the
// generator, never the model — across many keys, the two versions'
// measured times must agree in mean and spread.
func TestMeasurePlanSeededVersionsAgreeInDistribution(t *testing.T) {
	p := PC1()
	res := measureFixture(t)
	const n = 2000
	var s1, s2, q1, q2 float64
	for key := int64(0); key < n; key++ {
		a := p.MeasurePlanSeeded(res, rng.V1, key)
		b := p.MeasurePlanSeeded(res, rng.V2, key)
		s1 += a
		s2 += b
		q1 += a * a
		q2 += b * b
	}
	m1, m2 := s1/n, s2/n
	if math.Abs(m1-m2)/m1 > 0.02 {
		t.Errorf("v1 mean %v vs v2 mean %v: differ by >2%%", m1, m2)
	}
	sd1 := math.Sqrt(q1/n - m1*m1)
	sd2 := math.Sqrt(q2/n - m2*m2)
	cv1, cv2 := sd1/m1, sd2/m2
	if math.Abs(cv1-cv2)/cv1 > 0.25 {
		t.Errorf("v1 CV %v vs v2 CV %v: differ by >25%%", cv1, cv2)
	}
}

// TestMeasurePlanSeededV2Allocs pins the tentpole's zero-allocation
// claim at the layer that owns the hot loop.
func TestMeasurePlanSeededV2Allocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under the race detector")
	}
	p := PC1()
	res := measureFixture(t)
	key := int64(0)
	allocs := testing.AllocsPerRun(200, func() {
		p.MeasurePlanSeeded(res, rng.V2, key)
		key++
	})
	if allocs != 0 {
		t.Errorf("v2 measurement path allocates %.1f/op, want 0", allocs)
	}
}

func BenchmarkMeasurePlanSeededV1(b *testing.B) {
	p := PC1()
	res := measureFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.MeasurePlanSeeded(res, rng.V1, int64(i))
	}
}

func BenchmarkMeasurePlanSeededV2(b *testing.B) {
	p := PC1()
	res := measureFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.MeasurePlanSeeded(res, rng.V2, int64(i))
	}
}
