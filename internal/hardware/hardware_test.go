package hardware

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/engine"
	"repro/internal/stats"
)

func TestProfilesDistinct(t *testing.T) {
	p1, p2 := PC1(), PC2()
	if p1.Name != "PC1" || p2.Name != "PC2" {
		t.Fatal("profile names wrong")
	}
	// PC2 is the faster machine: every unit mean strictly cheaper.
	for i := 0; i < NumUnits; i++ {
		if p2.True[i].Mu >= p1.True[i].Mu {
			t.Errorf("unit %v: PC2 mean %v >= PC1 mean %v",
				Unit(i), p2.True[i].Mu, p1.True[i].Mu)
		}
	}
}

func TestProfileByName(t *testing.T) {
	for _, n := range []string{"PC1", "PC2"} {
		p, err := ProfileByName(n)
		if err != nil || p.Name != n {
			t.Errorf("ProfileByName(%s) = %v, %v", n, p, err)
		}
	}
	if _, err := ProfileByName("PC3"); err == nil {
		t.Error("expected error for unknown profile")
	}
}

func TestOperatorTimePositiveAndScales(t *testing.T) {
	p := PC1()
	r := rand.New(rand.NewSource(1))
	small := engine.Counts{NT: 100}
	big := engine.Counts{NT: 100000}
	var sSum, bSum float64
	for i := 0; i < 200; i++ {
		s, b := p.OperatorTime(small, r), p.OperatorTime(big, r)
		if s <= 0 || b <= 0 {
			t.Fatal("non-positive operator time")
		}
		sSum += s
		bSum += b
	}
	if bSum/sSum < 500 || bSum/sSum > 2000 {
		t.Errorf("scaling ratio %v, want ~1000", bSum/sSum)
	}
}

func TestOperatorTimeMeanMatchesModel(t *testing.T) {
	// E[t] = exp(sigma_g^2/2) * sum n_c mu_c for lognormal model error.
	p := PC2()
	r := rand.New(rand.NewSource(2))
	counts := engine.Counts{NS: 50, NR: 10, NT: 5000, NI: 100, NO: 2000}
	const iters = 200000
	var sum float64
	for i := 0; i < iters; i++ {
		sum += p.OperatorTime(counts, r)
	}
	got := sum / iters
	want := p.ExpectedCost(counts) * math.Exp(p.ModelErrSigma*p.ModelErrSigma/2)
	if math.Abs(got-want)/want > 0.02 {
		t.Errorf("mean operator time %v, want %v", got, want)
	}
}

func TestMeasurePlanAveragesRuns(t *testing.T) {
	p := PC1()
	db := engine.NewDB()
	rows := make([][]int64, 1000)
	for i := range rows {
		rows[i] = []int64{int64(i)}
	}
	db.Add(engine.NewTable("t", []string{"x"}, rows))
	plan := &engine.Node{Kind: engine.SeqScan, Table: "t"}
	plan.Finalize()
	res, err := engine.Run(db, plan)
	if err != nil {
		t.Fatal(err)
	}
	// Averaging must reduce variance vs a single run.
	r1 := rand.New(rand.NewSource(3))
	r2 := rand.New(rand.NewSource(3))
	var singles, averaged []float64
	for i := 0; i < 300; i++ {
		singles = append(singles, p.PlanTime(res, r1))
		averaged = append(averaged, p.MeasurePlan(res, r2))
	}
	vs, va := stats.Variance(singles), stats.Variance(averaged)
	if va >= vs {
		t.Errorf("averaged variance %v not below single-run variance %v", va, vs)
	}
}

func TestExpectedCostDeterministic(t *testing.T) {
	p := PC1()
	counts := engine.Counts{NS: 10, NT: 1000}
	want := 10*p.True[CS].Mu + 1000*p.True[CT].Mu
	if got := p.ExpectedCost(counts); math.Abs(got-want) > 1e-15 {
		t.Errorf("ExpectedCost = %v, want %v", got, want)
	}
}

func TestUnitStrings(t *testing.T) {
	want := []string{"cs", "cr", "ct", "ci", "co"}
	for i, u := range Units {
		if u.String() != want[i] {
			t.Errorf("unit %d = %s, want %s", i, u, want[i])
		}
	}
}
