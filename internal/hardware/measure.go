package hardware

import (
	"math"
	"math/rand"

	"repro/internal/engine"
	"repro/internal/rng"
)

// MeasurePlanSeeded returns the "actual running time" of an executed
// plan under measurement-stream version v, seeding the stream from key
// (an rng.ExecKey). It is the versioned entry point the execution
// pipeline uses:
//
//   - rng.V1 constructs the historical math/rand source — bit-for-bit
//     the stream MeasurePlan has always consumed, so every pinned
//     golden survives — at the historical cost (the ~607-word
//     lagged-Fibonacci seeding ritual plus a heap-allocated generator
//     per execution).
//   - rng.V2 runs a counter-based splitmix64 stream on the stack
//     through concrete-typed mirrors of the draw path: no seeding loop,
//     no interface boxing, zero heap allocation per measurement
//     (pinned by TestMeasurePlanSeededV2Allocs).
//
// Both versions implement the same measurement protocol: AverageRuns
// realizations of PlanTime, cost units drawn once per run, per-operator
// lognormal model error.
func (p *Profile) MeasurePlanSeeded(res *engine.OpResult, v rng.Version, key int64) float64 {
	if v == rng.V2 {
		s := rng.NewStream(key)
		return p.measurePlanStream(res, &s)
	}
	return p.MeasurePlan(res, rand.New(rand.NewSource(key)))
}

// drawUnitStream mirrors drawUnit on the concrete V2 stream.
func (p *Profile) drawUnitStream(u Unit, s *rng.Stream) float64 {
	d := p.True[u]
	v := d.Mu + d.Sigma*s.NormFloat64()
	// Cost units are physically positive; resample the rare negative tail.
	for v <= 0 {
		v = d.Mu + d.Sigma*s.NormFloat64()
	}
	return v
}

// planTimeStream mirrors PlanTime on the concrete V2 stream, walking
// the result tree directly (same preorder as Results, no slice).
func (p *Profile) planTimeStream(res *engine.OpResult, s *rng.Stream) float64 {
	var units [NumUnits]float64
	for i := 0; i < NumUnits; i++ {
		units[i] = p.drawUnitStream(Unit(i), s)
	}
	return p.opTreeTimeStream(res, &units, s, 0)
}

// opTreeTimeStream realizes the subtree rooted at op in preorder,
// folding into the running total t left to right — the same draw and
// summation order as the v1 path, so v1 and v2 differ only in
// generator, never in arithmetic.
func (p *Profile) opTreeTimeStream(op *engine.OpResult, units *[NumUnits]float64, s *rng.Stream, t float64) float64 {
	var ot float64
	for i := 0; i < NumUnits; i++ {
		if n := op.Counts.Get(i); n > 0 {
			ot += n * units[i]
		}
	}
	if p.ModelErrSigma > 0 {
		ot *= math.Exp(p.ModelErrSigma * s.NormFloat64())
	}
	t += ot
	if op.Left != nil {
		t = p.opTreeTimeStream(op.Left, units, s, t)
	}
	if op.Right != nil {
		t = p.opTreeTimeStream(op.Right, units, s, t)
	}
	return t
}

// measurePlanStream mirrors MeasurePlan on the concrete V2 stream.
func (p *Profile) measurePlanStream(res *engine.OpResult, s *rng.Stream) float64 {
	var sum float64
	for i := 0; i < AverageRuns; i++ {
		sum += p.planTimeStream(res, s)
	}
	return sum / AverageRuns
}
