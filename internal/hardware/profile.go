package hardware

// Profiles as data: the JSON Spec a Profile is constructible from, the
// name registry behind ProfileByName, and the derivation helpers
// (Scale, WithDrift) that synthesize heterogeneous fleets from a few
// base machines.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/stats"
)

// UnitSpec describes one cost unit's true distribution in a Spec. Mean
// is in seconds per operation; the spread is given either as Sigma
// (seconds, exact) or as CV, the coefficient of variation sigma/mean.
// When both are set, Sigma wins.
type UnitSpec struct {
	Mean  float64 `json:"mean"`
	CV    float64 `json:"cv,omitempty"`
	Sigma float64 `json:"sigma,omitempty"`
}

// Spec is the JSON-loadable description of a Profile: one UnitSpec per
// cost unit, keyed by unit name (cs, cr, ct, ci, co), plus the
// model-error sigma. The preset profiles PC1 and PC2 are themselves
// defined as Specs.
type Spec struct {
	Name          string              `json:"name"`
	Units         map[string]UnitSpec `json:"units"`
	ModelErrSigma float64             `json:"model_err_sigma"`
}

// unitByName maps the spec keys back to unit indexes.
func unitByName(name string) (Unit, bool) {
	for _, u := range Units {
		if u.String() == name {
			return u, true
		}
	}
	return 0, false
}

// FromSpec constructs a Profile from its data description, validating
// that every cost unit is present exactly once with a positive mean and
// a nonnegative spread.
func FromSpec(sp Spec) (*Profile, error) {
	if sp.Name == "" {
		return nil, fmt.Errorf("hardware: profile spec has no name")
	}
	if len(sp.Units) != NumUnits {
		return nil, fmt.Errorf("hardware: profile %q specifies %d units, want all %d (cs, cr, ct, ci, co)",
			sp.Name, len(sp.Units), NumUnits)
	}
	if sp.ModelErrSigma < 0 {
		return nil, fmt.Errorf("hardware: profile %q: negative model-error sigma %g", sp.Name, sp.ModelErrSigma)
	}
	p := &Profile{Name: sp.Name, ModelErrSigma: sp.ModelErrSigma}
	for name, us := range sp.Units {
		u, ok := unitByName(name)
		if !ok {
			return nil, fmt.Errorf("hardware: profile %q: unknown cost unit %q (want cs, cr, ct, ci, or co)", sp.Name, name)
		}
		if us.Mean <= 0 {
			return nil, fmt.Errorf("hardware: profile %q: unit %s mean %g must be positive", sp.Name, name, us.Mean)
		}
		sigma := us.Sigma
		if sigma == 0 {
			sigma = us.CV * us.Mean
		}
		if sigma < 0 {
			return nil, fmt.Errorf("hardware: profile %q: unit %s has negative spread", sp.Name, name)
		}
		p.True[u] = stats.Normal{Mu: us.Mean, Sigma: sigma}
	}
	return p, nil
}

// mustFromSpec builds a preset; preset specs are package constants, so
// a failure is a programming error.
func mustFromSpec(sp Spec) *Profile {
	p, err := FromSpec(sp)
	if err != nil {
		panic(err)
	}
	return p
}

// ParseProfile constructs a Profile from its JSON Spec, rejecting
// unknown fields.
func ParseProfile(data []byte) (*Profile, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var sp Spec
	if err := dec.Decode(&sp); err != nil {
		return nil, fmt.Errorf("hardware: parse profile: %w", err)
	}
	return FromSpec(sp)
}

// Spec returns the data description of the profile: the value that,
// fed back through FromSpec, reconstructs it exactly (spreads are
// reported as exact Sigmas).
func (p *Profile) Spec() Spec {
	sp := Spec{Name: p.Name, Units: make(map[string]UnitSpec, NumUnits), ModelErrSigma: p.ModelErrSigma}
	for _, u := range Units {
		d := p.True[u]
		sp.Units[u.String()] = UnitSpec{Mean: d.Mu, Sigma: d.Sigma}
	}
	return sp
}

// Scale derives an f-times-slower (factor > 1) or -faster (factor < 1)
// machine: every unit mean and sigma is multiplied by factor, so
// relative variability is preserved; the model-error term is unchanged.
// The derived profile is named "<name>*<factor>".
func (p *Profile) Scale(factor float64) (*Profile, error) {
	if factor <= 0 {
		return nil, fmt.Errorf("hardware: scale factor %g must be positive", factor)
	}
	d := *p
	d.Name = fmt.Sprintf("%s*%g", p.Name, factor)
	for i := range d.True {
		d.True[i].Mu *= factor
		d.True[i].Sigma *= factor
	}
	return &d, nil
}

// WithDrift derives a machine whose unit means have drifted by the
// given fraction — means are multiplied by (1+frac), sigmas left as
// they are — modeling a machine (aging disk, background load) whose
// true cost units have moved away from what calibrating the base
// profile would find. The derived profile is named "<name>+d<frac>"
// (or "-d" for negative drift).
func (p *Profile) WithDrift(frac float64) (*Profile, error) {
	if frac <= -1 {
		return nil, fmt.Errorf("hardware: drift %g must be above -1 (unit means stay positive)", frac)
	}
	d := *p
	if frac < 0 {
		d.Name = fmt.Sprintf("%s-d%g", p.Name, -frac)
	} else {
		d.Name = fmt.Sprintf("%s+d%g", p.Name, frac)
	}
	for i := range d.True {
		d.True[i].Mu *= 1 + frac
	}
	return &d, nil
}

// ---------------------------------------------------------------------
// The profile registry.

var (
	registryMu sync.RWMutex
	registry   = map[string]*Profile{
		"PC1": PC1(),
		"PC2": PC2(),
	}
)

// Register adds a profile to the registry under its Name, making it
// resolvable by ProfileByName (e.g. for scenario files referencing
// custom machines). Registering a name twice, or one of the presets,
// is an error.
func Register(p *Profile) error {
	if p == nil {
		return fmt.Errorf("hardware: register nil profile")
	}
	if p.Name == "" {
		return fmt.Errorf("hardware: register profile with no name")
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, ok := registry[p.Name]; ok {
		return fmt.Errorf("hardware: profile %q already registered", p.Name)
	}
	cp := *p
	registry[p.Name] = &cp
	return nil
}

// RegisteredProfiles returns the registered profile names in sorted
// order — the vocabulary configuration errors cite.
func RegisteredProfiles() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ProfileByName resolves a registered profile name to a copy of its
// profile (presets PC1 and PC2 are always registered). Unknown names
// report the registered vocabulary.
func ProfileByName(name string) (*Profile, error) {
	registryMu.RLock()
	p, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("hardware: unknown profile %q (registered: %s)",
			name, strings.Join(RegisteredProfiles(), ", "))
	}
	cp := *p
	return &cp, nil
}
