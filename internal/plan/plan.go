// Package plan turns declarative selection–join(+aggregate) query
// specifications into executable engine plans. The builder mimics a
// System-R style optimizer: predicates are pushed into scans (choosing
// index scans for selective predicates), joins are ordered left-deep by
// estimated output cardinality, and small inner inputs may use a
// nested-loop join behind a materialize.
//
// The paper takes the plan as a given input from the DBMS optimizer, so
// any deterministic plan source suffices for the reproduction; this one
// produces the operator variety (all six cost-function types C1–C6) the
// predictor must handle.
package plan

import (
	"fmt"
	"sort"

	"repro/internal/catalog"
	"repro/internal/engine"
)

// JoinCond is an equijoin condition between two columns of two tables.
type JoinCond struct {
	LeftTable, LeftCol   string
	RightTable, RightCol string
}

// AggSpec requests an aggregate on top of the join tree. An empty
// GroupCol means a scalar aggregate.
type AggSpec struct {
	GroupCol string
	// SortInput inserts a Sort below the aggregate (a sorted
	// group-aggregate), exercising the C4' quadratic cost path.
	SortInput bool
}

// Query is a declarative selection–join query over named tables.
type Query struct {
	Name   string
	Tables []string
	Preds  []engine.Predicate // each references a column of one table
	Joins  []JoinCond
	Agg    *AggSpec
}

// IndexScanThreshold is the estimated selectivity below which the builder
// prefers an index scan over a sequential scan.
const IndexScanThreshold = 0.08

// NestLoopThreshold is the estimated inner cardinality below which the
// builder may choose a nested-loop join.
const NestLoopThreshold = 200.0

// Build produces a finalized engine plan for q using catalog estimates.
func Build(q *Query, cat *catalog.Catalog) (*engine.Node, error) {
	if len(q.Tables) == 0 {
		return nil, fmt.Errorf("plan: query %q has no tables", q.Name)
	}
	predsByTable := make(map[string][]engine.Predicate)
	for _, p := range q.Preds {
		tab, _, err := cat.FindColumn(p.Col)
		if err != nil {
			return nil, fmt.Errorf("plan: query %q: %w", q.Name, err)
		}
		predsByTable[tab] = append(predsByTable[tab], p)
	}

	// Build a scan per table with its estimated output cardinality.
	type rel struct {
		node *engine.Node
		card float64
		tabs map[string]bool
	}
	rels := make([]*rel, 0, len(q.Tables))
	for _, tname := range q.Tables {
		ts, err := cat.Table(tname)
		if err != nil {
			return nil, err
		}
		node := &engine.Node{Kind: engine.SeqScan, Table: tname}
		card := float64(ts.Rows)
		if ps := predsByTable[tname]; len(ps) > 0 {
			// Push the whole conjunction, ordered most-selective first so
			// the leading predicate can serve as the index condition.
			sels := make([]float64, len(ps))
			for i := range ps {
				sel, err := cat.PredicateSelectivity(tname, &ps[i])
				if err != nil {
					return nil, err
				}
				sels[i] = sel
			}
			sort.Sort(&predsBySel{preds: ps, sels: sels})
			node.Preds = append([]engine.Predicate{}, ps...)
			for _, sel := range sels {
				card *= sel
			}
			if sels[0] < IndexScanThreshold {
				node.Kind = engine.IndexScan
			}
		}
		rels = append(rels, &rel{node: node, card: card, tabs: map[string]bool{tname: true}})
	}

	// Greedy left-deep join ordering: start from the smallest relation,
	// repeatedly join with the connected relation minimizing the
	// estimated result size.
	if len(rels) > 1 {
		if len(q.Joins) < len(q.Tables)-1 {
			return nil, fmt.Errorf("plan: query %q is not fully connected (%d joins for %d tables)",
				q.Name, len(q.Joins), len(q.Tables))
		}
		sort.Slice(rels, func(i, j int) bool { return rels[i].card < rels[j].card })
		cur := rels[0]
		remaining := rels[1:]
		used := make([]bool, len(q.Joins))
		for len(remaining) > 0 {
			bestIdx, bestJoin := -1, -1
			bestCard := 0.0
			var bestCond JoinCond
			for ji, jc := range q.Joins {
				if used[ji] {
					continue
				}
				var other string
				var cond JoinCond
				switch {
				case cur.tabs[jc.LeftTable] && !cur.tabs[jc.RightTable]:
					other, cond = jc.RightTable, jc
				case cur.tabs[jc.RightTable] && !cur.tabs[jc.LeftTable]:
					// Flip so the already-built side is on the left.
					other = jc.LeftTable
					cond = JoinCond{
						LeftTable: jc.RightTable, LeftCol: jc.RightCol,
						RightTable: jc.LeftTable, RightCol: jc.LeftCol,
					}
				default:
					continue
				}
				for ri, r := range remaining {
					if !r.tabs[other] {
						continue
					}
					f, err := cat.JoinSelectivityFactor(
						cond.LeftTable, cond.LeftCol, cond.RightTable, cond.RightCol)
					if err != nil {
						return nil, err
					}
					card := cur.card * r.card * f
					if bestIdx < 0 || card < bestCard {
						bestIdx, bestJoin, bestCard, bestCond = ri, ji, card, cond
					}
				}
			}
			if bestIdx < 0 {
				return nil, fmt.Errorf("plan: query %q join graph is disconnected", q.Name)
			}
			inner := remaining[bestIdx]
			kind := engine.HashJoin
			right := inner.node
			if inner.card < NestLoopThreshold {
				kind = engine.NestLoopJoin
				right = &engine.Node{Kind: engine.Materialize, Left: inner.node}
			}
			cur = &rel{
				node: &engine.Node{
					Kind:     kind,
					LeftCol:  bestCond.LeftCol,
					RightCol: bestCond.RightCol,
					Left:     cur.node,
					Right:    right,
				},
				card: bestCard,
				tabs: cur.tabs,
			}
			for t := range inner.tabs {
				cur.tabs[t] = true
			}
			used[bestJoin] = true
			remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
		}
		rels = []*rel{cur}
	}

	root := rels[0].node
	if q.Agg != nil {
		if q.Agg.SortInput {
			root = &engine.Node{Kind: engine.Sort, Left: root}
		}
		root = &engine.Node{Kind: engine.Aggregate, GroupCol: q.Agg.GroupCol, Left: root}
	}
	root.Finalize()
	if err := root.Validate(); err != nil {
		return nil, err
	}
	return root, nil
}

// EstimateCardinalities returns the optimizer's estimated output
// cardinality per node ID for a finalized plan — the fallback estimates
// the predictor uses above aggregates.
func EstimateCardinalities(root *engine.Node, cat *catalog.Catalog) (map[int]float64, error) {
	est := make(map[int]float64)
	var walk func(n *engine.Node) (float64, error)
	walk = func(n *engine.Node) (float64, error) {
		switch {
		case n.Kind.IsScan():
			ts, err := cat.Table(n.Table)
			if err != nil {
				return 0, err
			}
			card := float64(ts.Rows)
			for pi := range n.Preds {
				sel, err := cat.PredicateSelectivity(n.Table, &n.Preds[pi])
				if err != nil {
					return 0, err
				}
				card *= sel
			}
			est[n.ID] = card
			return card, nil
		case n.Kind.IsJoin():
			l, err := walk(n.Left)
			if err != nil {
				return 0, err
			}
			r, err := walk(n.Right)
			if err != nil {
				return 0, err
			}
			lt, _, err := findColAmong(cat, n.Left.LeafTables, n.LeftCol)
			if err != nil {
				return 0, err
			}
			rt, _, err := findColAmong(cat, n.Right.LeafTables, n.RightCol)
			if err != nil {
				return 0, err
			}
			f, err := cat.JoinSelectivityFactor(lt, n.LeftCol, rt, n.RightCol)
			if err != nil {
				return 0, err
			}
			card := l * r * f
			est[n.ID] = card
			return card, nil
		case n.Kind == engine.Aggregate:
			in, err := walk(n.Left)
			if err != nil {
				return 0, err
			}
			var card float64 = 1
			if n.GroupCol != "" {
				tab, _, err := cat.FindColumn(n.GroupCol)
				if err != nil {
					return 0, err
				}
				card, err = cat.GroupCount(tab, n.GroupCol, in)
				if err != nil {
					return 0, err
				}
			}
			est[n.ID] = card
			return card, nil
		default: // Sort, Materialize
			in, err := walk(n.Left)
			if err != nil {
				return 0, err
			}
			est[n.ID] = in
			return in, nil
		}
	}
	if _, err := walk(root); err != nil {
		return nil, err
	}
	return est, nil
}

// predsBySel sorts a predicate slice by estimated selectivity
// (ascending) keeping the two slices aligned.
type predsBySel struct {
	preds []engine.Predicate
	sels  []float64
}

func (p *predsBySel) Len() int           { return len(p.preds) }
func (p *predsBySel) Less(i, j int) bool { return p.sels[i] < p.sels[j] }
func (p *predsBySel) Swap(i, j int) {
	p.preds[i], p.preds[j] = p.preds[j], p.preds[i]
	p.sels[i], p.sels[j] = p.sels[j], p.sels[i]
}

func findColAmong(cat *catalog.Catalog, tables []string, col string) (string, *catalog.ColumnStats, error) {
	for _, t := range tables {
		if cs, err := cat.Column(t, col); err == nil {
			return t, cs, nil
		}
	}
	return "", nil, fmt.Errorf("plan: column %q not found among %v", col, tables)
}
