package plan

import (
	"fmt"

	"repro/internal/catalog"
	"repro/internal/engine"
)

// BuildOrdered builds a left-deep plan joining the tables in exactly the
// given order (order[0] is the leftmost relation). Every consecutive
// prefix must be connected by some join condition of the query. It is
// the mechanism behind least-expected-cost plan selection (Section
// 6.5.1 / Chu et al. [15]): callers enumerate orders, predict each
// plan's running-time distribution, and pick by expected cost or by a
// risk quantile.
func BuildOrdered(q *Query, cat *catalog.Catalog, order []string) (*engine.Node, error) {
	if len(order) != len(q.Tables) {
		return nil, fmt.Errorf("plan: order has %d tables, query has %d", len(order), len(q.Tables))
	}
	want := make(map[string]bool, len(q.Tables))
	for _, t := range q.Tables {
		want[t] = true
	}
	for _, t := range order {
		if !want[t] {
			return nil, fmt.Errorf("plan: order table %q not in query", t)
		}
		delete(want, t)
	}

	predsByTable := make(map[string][]engine.Predicate)
	for _, p := range q.Preds {
		tab, _, err := cat.FindColumn(p.Col)
		if err != nil {
			return nil, err
		}
		predsByTable[tab] = append(predsByTable[tab], p)
	}

	scan := func(tname string) (*engine.Node, float64, error) {
		ts, err := cat.Table(tname)
		if err != nil {
			return nil, 0, err
		}
		node := &engine.Node{Kind: engine.SeqScan, Table: tname}
		card := float64(ts.Rows)
		if ps := predsByTable[tname]; len(ps) > 0 {
			sels := make([]float64, len(ps))
			for i := range ps {
				sel, err := cat.PredicateSelectivity(tname, &ps[i])
				if err != nil {
					return nil, 0, err
				}
				sels[i] = sel
			}
			sortPredsBySel(ps, sels)
			node.Preds = append([]engine.Predicate{}, ps...)
			for _, s := range sels {
				card *= s
			}
			if sels[0] < IndexScanThreshold {
				node.Kind = engine.IndexScan
			}
		}
		return node, card, nil
	}

	cur, card, err := scan(order[0])
	if err != nil {
		return nil, err
	}
	inTree := map[string]bool{order[0]: true}
	used := make([]bool, len(q.Joins))
	for _, next := range order[1:] {
		// Find an unused join condition connecting the tree to next.
		found := -1
		var cond JoinCond
		for ji, jc := range q.Joins {
			if used[ji] {
				continue
			}
			switch {
			case inTree[jc.LeftTable] && jc.RightTable == next:
				found, cond = ji, jc
			case inTree[jc.RightTable] && jc.LeftTable == next:
				found = ji
				cond = JoinCond{
					LeftTable: jc.RightTable, LeftCol: jc.RightCol,
					RightTable: jc.LeftTable, RightCol: jc.LeftCol,
				}
			}
			if found >= 0 {
				break
			}
		}
		if found < 0 {
			return nil, fmt.Errorf("plan: order %v disconnects at %q", order, next)
		}
		used[found] = true
		inner, innerCard, err := scan(next)
		if err != nil {
			return nil, err
		}
		f, err := cat.JoinSelectivityFactor(cond.LeftTable, cond.LeftCol, cond.RightTable, cond.RightCol)
		if err != nil {
			return nil, err
		}
		kind := engine.HashJoin
		right := inner
		if innerCard < NestLoopThreshold {
			kind = engine.NestLoopJoin
			right = &engine.Node{Kind: engine.Materialize, Left: inner}
		}
		cur = &engine.Node{
			Kind: kind, LeftCol: cond.LeftCol, RightCol: cond.RightCol,
			Left: cur, Right: right,
		}
		card *= innerCard * f
		inTree[next] = true
	}
	_ = card

	root := cur
	if q.Agg != nil {
		if q.Agg.SortInput {
			root = &engine.Node{Kind: engine.Sort, Left: root}
		}
		root = &engine.Node{Kind: engine.Aggregate, GroupCol: q.Agg.GroupCol, Left: root}
	}
	root.Finalize()
	if err := root.Validate(); err != nil {
		return nil, err
	}
	return root, nil
}

// sortPredsBySel sorts preds (and sels, kept aligned) ascending by
// estimated selectivity.
func sortPredsBySel(preds []engine.Predicate, sels []float64) {
	for i := 1; i < len(preds); i++ {
		for j := i; j > 0 && sels[j] < sels[j-1]; j-- {
			preds[j], preds[j-1] = preds[j-1], preds[j]
			sels[j], sels[j-1] = sels[j-1], sels[j]
		}
	}
}

// Alternatives enumerates distinct left-deep join orders for the query:
// every valid rotation starting from each table, joined greedily by
// connectivity. At most maxAlts plans are returned, the default greedy
// plan first. Single-table queries return just the default plan.
func Alternatives(q *Query, cat *catalog.Catalog, maxAlts int) ([]*engine.Node, error) {
	def, err := Build(q, cat)
	if err != nil {
		return nil, err
	}
	plans := []*engine.Node{def}
	if len(q.Tables) < 2 || maxAlts <= 1 {
		return plans, nil
	}
	seen := map[string]bool{def.String(): true}
	for _, start := range q.Tables {
		order, ok := connectedOrder(q, start)
		if !ok {
			continue
		}
		p, err := BuildOrdered(q, cat, order)
		if err != nil {
			continue
		}
		if s := p.String(); !seen[s] {
			seen[s] = true
			plans = append(plans, p)
			if len(plans) >= maxAlts {
				break
			}
		}
	}
	return plans, nil
}

// connectedOrder produces a join order starting at start by repeatedly
// appending any table connected to the current prefix.
func connectedOrder(q *Query, start string) ([]string, bool) {
	order := []string{start}
	in := map[string]bool{start: true}
	for len(order) < len(q.Tables) {
		added := false
		for _, jc := range q.Joins {
			var next string
			switch {
			case in[jc.LeftTable] && !in[jc.RightTable]:
				next = jc.RightTable
			case in[jc.RightTable] && !in[jc.LeftTable]:
				next = jc.LeftTable
			default:
				continue
			}
			order = append(order, next)
			in[next] = true
			added = true
			break
		}
		if !added {
			return nil, false
		}
	}
	return order, true
}
