package plan

import (
	"testing"

	"repro/internal/engine"
)

func altQuery() *Query {
	return &Query{
		Name:   "alt",
		Tables: []string{"customer", "orders", "lineitem"},
		Preds: []engine.Predicate{
			{Col: "c_acctbal", Op: engine.Le, Lo: 5000},
		},
		Joins: []JoinCond{
			{LeftTable: "customer", LeftCol: "c_custkey", RightTable: "orders", RightCol: "o_custkey"},
			{LeftTable: "orders", LeftCol: "o_orderkey", RightTable: "lineitem", RightCol: "l_orderkey"},
		},
	}
}

func TestBuildOrderedRespectsOrder(t *testing.T) {
	db, cat := testEnv(t)
	q := altQuery()
	p, err := BuildOrdered(q, cat, []string{"lineitem", "orders", "customer"})
	if err != nil {
		t.Fatal(err)
	}
	// Leftmost leaf must be lineitem.
	if p.LeafTables[0] != "lineitem" {
		t.Errorf("leftmost leaf %q, want lineitem:\n%s", p.LeafTables[0], p)
	}
	res, err := engine.Run(db, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.M <= 0 {
		t.Error("ordered plan produced empty result")
	}
}

func TestBuildOrderedSameResultAsDefault(t *testing.T) {
	db, cat := testEnv(t)
	q := altQuery()
	def, err := Build(q, cat)
	if err != nil {
		t.Fatal(err)
	}
	alt, err := BuildOrdered(q, cat, []string{"lineitem", "orders", "customer"})
	if err != nil {
		t.Fatal(err)
	}
	r1, err := engine.Run(db, def)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := engine.Run(db, alt)
	if err != nil {
		t.Fatal(err)
	}
	if r1.M != r2.M {
		t.Errorf("join orders disagree on cardinality: %v vs %v", r1.M, r2.M)
	}
}

func TestBuildOrderedRejectsDisconnected(t *testing.T) {
	_, cat := testEnv(t)
	q := altQuery()
	// customer -> lineitem skips orders: not connected at step 2.
	if _, err := BuildOrdered(q, cat, []string{"customer", "lineitem", "orders"}); err == nil {
		t.Error("expected error for disconnected order")
	}
}

func TestBuildOrderedRejectsWrongTables(t *testing.T) {
	_, cat := testEnv(t)
	q := altQuery()
	if _, err := BuildOrdered(q, cat, []string{"customer", "orders"}); err == nil {
		t.Error("expected error for short order")
	}
	if _, err := BuildOrdered(q, cat, []string{"customer", "orders", "part"}); err == nil {
		t.Error("expected error for foreign table")
	}
}

func TestAlternativesDistinctAndEquivalent(t *testing.T) {
	db, cat := testEnv(t)
	q := altQuery()
	plans, err := Alternatives(q, cat, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) < 2 {
		t.Fatalf("got %d alternatives, want >= 2", len(plans))
	}
	seen := map[string]bool{}
	var card float64 = -1
	for _, p := range plans {
		s := p.String()
		if seen[s] {
			t.Error("duplicate plan among alternatives")
		}
		seen[s] = true
		res, err := engine.Run(db, p)
		if err != nil {
			t.Fatal(err)
		}
		if card < 0 {
			card = res.M
		} else if res.M != card {
			t.Errorf("alternative disagrees on cardinality: %v vs %v", res.M, card)
		}
	}
}

func TestAlternativesSingleTable(t *testing.T) {
	_, cat := testEnv(t)
	q := &Query{Name: "one", Tables: []string{"lineitem"}}
	plans, err := Alternatives(q, cat, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) != 1 {
		t.Errorf("single-table query produced %d plans", len(plans))
	}
}
