package plan

import (
	"testing"

	"repro/internal/catalog"
	"repro/internal/datagen"
	"repro/internal/engine"
)

func testEnv(t *testing.T) (*engine.DB, *catalog.Catalog) {
	t.Helper()
	db := datagen.Generate(datagen.Config{ScaleFactor: 0.002, Seed: 1})
	return db, catalog.Build(db)
}

func TestBuildSingleTableScan(t *testing.T) {
	db, cat := testEnv(t)
	q := &Query{
		Name:   "scan",
		Tables: []string{"lineitem"},
		Preds: []engine.Predicate{
			{Col: "l_quantity", Op: engine.Le, Lo: 25},
		},
	}
	p, err := Build(q, cat)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Kind.IsScan() || p.Table != "lineitem" || len(p.Preds) == 0 {
		t.Fatalf("unexpected plan:\n%s", p)
	}
	res, err := engine.Run(db, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Selectivity <= 0.3 || res.Selectivity >= 0.7 {
		t.Errorf("selectivity %v, expected near 0.5", res.Selectivity)
	}
}

func TestBuildChoosesIndexScanForSelectivePredicate(t *testing.T) {
	_, cat := testEnv(t)
	q := &Query{
		Name:   "selective",
		Tables: []string{"lineitem"},
		Preds: []engine.Predicate{
			{Col: "l_quantity", Op: engine.Eq, Lo: 7},
		},
	}
	p, err := Build(q, cat)
	if err != nil {
		t.Fatal(err)
	}
	if p.Kind != engine.IndexScan {
		t.Errorf("kind=%v, want IndexScan", p.Kind)
	}
}

func TestBuildTwoWayJoin(t *testing.T) {
	db, cat := testEnv(t)
	q := &Query{
		Name:   "join2",
		Tables: []string{"orders", "lineitem"},
		Joins: []JoinCond{{
			LeftTable: "orders", LeftCol: "o_orderkey",
			RightTable: "lineitem", RightCol: "l_orderkey",
		}},
	}
	p, err := Build(q, cat)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Kind.IsJoin() {
		t.Fatalf("root is %v, want a join:\n%s", p.Kind, p)
	}
	res, err := engine.Run(db, p)
	if err != nil {
		t.Fatal(err)
	}
	li := db.MustTable("lineitem")
	// FK join: every lineitem matches exactly one order.
	if res.M != float64(li.NumRows()) {
		t.Errorf("join cardinality %v, want %d", res.M, li.NumRows())
	}
}

func TestBuildMultiWayJoinExecutes(t *testing.T) {
	db, cat := testEnv(t)
	q := &Query{
		Name:   "join4",
		Tables: []string{"customer", "orders", "lineitem", "supplier"},
		Preds: []engine.Predicate{
			{Col: "c_mktsegment", Op: engine.Eq, Lo: 1},
		},
		Joins: []JoinCond{
			{LeftTable: "customer", LeftCol: "c_custkey", RightTable: "orders", RightCol: "o_custkey"},
			{LeftTable: "orders", LeftCol: "o_orderkey", RightTable: "lineitem", RightCol: "l_orderkey"},
			{LeftTable: "lineitem", LeftCol: "l_suppkey", RightTable: "supplier", RightCol: "s_suppkey"},
		},
	}
	p, err := Build(q, cat)
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.Run(db, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.M <= 0 {
		t.Error("empty multi-way join result")
	}
	// Exactly 3 joins and 4 scans in the tree.
	joins, scans := 0, 0
	for _, n := range p.Nodes() {
		if n.Kind.IsJoin() {
			joins++
		}
		if n.Kind.IsScan() {
			scans++
		}
	}
	if joins != 3 || scans != 4 {
		t.Errorf("joins=%d scans=%d:\n%s", joins, scans, p)
	}
}

func TestBuildAggregate(t *testing.T) {
	db, cat := testEnv(t)
	q := &Query{
		Name:   "agg",
		Tables: []string{"lineitem"},
		Preds: []engine.Predicate{
			{Col: "l_shipdate", Op: engine.Le, Lo: 1200},
		},
		Agg: &AggSpec{GroupCol: "l_returnflag", SortInput: true},
	}
	p, err := Build(q, cat)
	if err != nil {
		t.Fatal(err)
	}
	if p.Kind != engine.Aggregate {
		t.Fatalf("root %v, want Aggregate:\n%s", p.Kind, p)
	}
	if p.Left.Kind != engine.Sort {
		t.Fatalf("expected Sort under Aggregate:\n%s", p)
	}
	res, err := engine.Run(db, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.M < 1 || res.M > 3 {
		t.Errorf("groups=%v, want 1..3", res.M)
	}
}

func TestBuildDisconnectedJoinGraphFails(t *testing.T) {
	_, cat := testEnv(t)
	q := &Query{
		Name:   "disconnected",
		Tables: []string{"orders", "lineitem", "part"},
		Joins: []JoinCond{
			{LeftTable: "orders", LeftCol: "o_orderkey", RightTable: "lineitem", RightCol: "l_orderkey"},
		},
	}
	if _, err := Build(q, cat); err == nil {
		t.Error("expected error for disconnected join graph")
	}
}

func TestBuildUnknownColumnFails(t *testing.T) {
	_, cat := testEnv(t)
	q := &Query{
		Name:   "bad",
		Tables: []string{"lineitem"},
		Preds:  []engine.Predicate{{Col: "no_such_col", Op: engine.Le, Lo: 1}},
	}
	if _, err := Build(q, cat); err == nil {
		t.Error("expected error for unknown predicate column")
	}
}

func TestEstimateCardinalities(t *testing.T) {
	db, cat := testEnv(t)
	q := &Query{
		Name:   "est",
		Tables: []string{"orders", "lineitem"},
		Preds: []engine.Predicate{
			{Col: "o_orderdate", Op: engine.Le, Lo: datagen.DateDays / 2},
		},
		Joins: []JoinCond{{
			LeftTable: "orders", LeftCol: "o_orderkey",
			RightTable: "lineitem", RightCol: "l_orderkey",
		}},
		Agg: &AggSpec{GroupCol: "l_returnflag"},
	}
	p, err := Build(q, cat)
	if err != nil {
		t.Fatal(err)
	}
	est, err := EstimateCardinalities(p, cat)
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.Run(db, p)
	if err != nil {
		t.Fatal(err)
	}
	// Root (aggregate) estimate should be within 2x of truth; join
	// estimates within an order of magnitude for this FK join.
	for _, r := range res.Results() {
		e, ok := est[r.Node.ID]
		if !ok {
			t.Fatalf("no estimate for node %d (%v)", r.Node.ID, r.Node.Kind)
		}
		if r.M > 0 && (e < r.M/20 || e > r.M*20) {
			t.Errorf("node %d (%v): estimate %v vs actual %v", r.Node.ID, r.Node.Kind, e, r.M)
		}
	}
}

func TestBuildDeterministic(t *testing.T) {
	_, cat := testEnv(t)
	q := &Query{
		Name:   "det",
		Tables: []string{"customer", "orders", "lineitem"},
		Joins: []JoinCond{
			{LeftTable: "customer", LeftCol: "c_custkey", RightTable: "orders", RightCol: "o_custkey"},
			{LeftTable: "orders", LeftCol: "o_orderkey", RightTable: "lineitem", RightCol: "l_orderkey"},
		},
	}
	p1, err := Build(q, cat)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Build(q, cat)
	if err != nil {
		t.Fatal(err)
	}
	if p1.String() != p2.String() {
		t.Errorf("plans differ:\n%s\nvs\n%s", p1, p2)
	}
}
