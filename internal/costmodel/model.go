package costmodel

import (
	"fmt"
	"math"

	"repro/internal/catalog"
	"repro/internal/engine"
	"repro/internal/hardware"
)

// NodeModel is the optimizer-side analytic cost model of one plan
// operator: a deterministic mapping from (hypothetical) input
// selectivities to the resource counts n of Equation (1). Fitting probes
// this mapping ("invoke the cost model", Section 4.2).
type NodeModel struct {
	Node *engine.Node

	// VarA and VarB identify the selectivity variables: the node IDs of
	// the operators whose output selectivities drive this node's cost.
	// Scans use their own ID; unary operators use their child's variable;
	// joins use both children's variables.
	VarA, VarB int

	// SizeL and SizeR are Π|R| over the left and right child subtrees'
	// leaf tables (full database sizes), so Nl = Xl*SizeL, Nr = Xr*SizeR.
	SizeL, SizeR float64
	// Size is Π|R| over this node's leaf tables.
	Size float64

	// Theta scales the node's own output: M = Theta * Xl * Xr * Size for
	// joins, calibrated at the estimated selectivities so that M matches
	// rho_self there. Scans use M = X * Size directly.
	Theta float64

	// NumPreds is the number of pushed-down predicates on a scan.
	NumPreds int
	// ResidFactor is the optimizer's estimated combined selectivity of
	// an index scan's residual predicates (those after the index
	// predicate); the index fetch count is M / ResidFactor.
	ResidFactor float64
}

// varOwner resolves which operator's selectivity variable represents the
// output of a subtree: pass-through nodes (Sort, Materialize) delegate to
// their input.
func varOwner(n *engine.Node) int {
	switch n.Kind {
	case engine.Sort, engine.Materialize:
		return varOwner(n.Left)
	default:
		return n.ID
	}
}

// BuildModels constructs a NodeModel per plan node. selfRho maps node ID
// to the operator's estimated selectivity, used only to calibrate Theta.
func BuildModels(root *engine.Node, cat *catalog.Catalog, selfRho map[int]float64) (map[int]*NodeModel, error) {
	models := make(map[int]*NodeModel)
	var walk func(n *engine.Node) error
	walk = func(n *engine.Node) error {
		size, err := leafProduct(n, cat)
		if err != nil {
			return err
		}
		m := &NodeModel{Node: n, VarA: -1, VarB: -1, Size: size}
		switch {
		case n.Kind.IsScan():
			m.VarA = n.ID
			m.SizeL = size
			m.NumPreds = len(n.Preds)
			m.ResidFactor = 1
			for i := 1; i < len(n.Preds); i++ {
				sel, err := cat.PredicateSelectivity(n.Table, &n.Preds[i])
				if err != nil {
					return err
				}
				if sel > 0 && sel < 1 {
					m.ResidFactor *= sel
				}
			}
		case n.Kind.IsJoin():
			if err := walk(n.Left); err != nil {
				return err
			}
			if err := walk(n.Right); err != nil {
				return err
			}
			m.VarA = varOwner(n.Left)
			m.VarB = varOwner(n.Right)
			sl, err := leafProduct(n.Left, cat)
			if err != nil {
				return err
			}
			sr, err := leafProduct(n.Right, cat)
			if err != nil {
				return err
			}
			m.SizeL, m.SizeR = sl, sr
			// Calibrate Theta at the estimated point; fall back to the
			// optimizer's join selectivity factor (M = Nl*Nr*f implies
			// Theta = f) when estimates are unavailable or degenerate.
			xa, xb := selfRho[m.VarA], selfRho[m.VarB]
			self := selfRho[n.ID]
			if xa > 0 && xb > 0 && self > 0 {
				m.Theta = self / (xa * xb)
			} else if f, err := optimizerJoinFactor(n, cat); err == nil {
				m.Theta = f
			}
		default: // unary
			if err := walk(n.Left); err != nil {
				return err
			}
			m.VarA = varOwner(n.Left)
			sl, err := leafProduct(n.Left, cat)
			if err != nil {
				return err
			}
			m.SizeL = sl
		}
		models[n.ID] = m
		return nil
	}
	if err := walk(root); err != nil {
		return nil, err
	}
	return models, nil
}

// optimizerJoinFactor returns the catalog's System-R style join
// selectivity factor for a join node.
func optimizerJoinFactor(n *engine.Node, cat *catalog.Catalog) (float64, error) {
	var lt, rt string
	for _, t := range n.Left.LeafTables {
		if _, err := cat.Column(t, n.LeftCol); err == nil {
			lt = t
			break
		}
	}
	for _, t := range n.Right.LeafTables {
		if _, err := cat.Column(t, n.RightCol); err == nil {
			rt = t
			break
		}
	}
	if lt == "" || rt == "" {
		return 0, fmt.Errorf("costmodel: join columns %q/%q not found", n.LeftCol, n.RightCol)
	}
	return cat.JoinSelectivityFactor(lt, n.LeftCol, rt, n.RightCol)
}

func leafProduct(n *engine.Node, cat *catalog.Catalog) (float64, error) {
	p := 1.0
	for _, t := range n.LeafTables {
		ts, err := cat.Table(t)
		if err != nil {
			return 0, err
		}
		p *= float64(ts.Rows)
	}
	return p, nil
}

// Counts invokes the cost model at hypothetical selectivities (xa, xb):
// the optimizer's estimate of the resource counts this operator would
// incur. xb is ignored for unary operators and scans.
func (m *NodeModel) Counts(xa, xb float64) engine.Counts {
	n := m.Node
	switch n.Kind {
	case engine.SeqScan:
		rows := m.SizeL
		return engine.Counts{
			NS: rows / engine.TuplesPerPage,
			NT: rows,
			NO: rows * float64(m.NumPreds),
		}
	case engine.IndexScan:
		// The index fetches the tuples satisfying the index predicate;
		// with residual selectivity ResidFactor, that is M / ResidFactor.
		mIdx := xa * m.SizeL
		if m.ResidFactor > 0 {
			mIdx /= m.ResidFactor
		}
		if mIdx > m.SizeL {
			mIdx = m.SizeL
		}
		return engine.Counts{
			NR: mIdx, NT: mIdx, NI: mIdx,
			NO: mIdx * float64(m.NumPreds-1),
		}
	case engine.Sort:
		nl := xa * m.SizeL
		return engine.Counts{NT: nl, NO: nl * math.Log2(math.Max(nl, 2))}
	case engine.Materialize:
		nl := xa * m.SizeL
		return engine.Counts{NT: nl}
	case engine.Aggregate:
		nl := xa * m.SizeL
		return engine.Counts{NT: nl, NO: 2 * nl}
	case engine.HashJoin, engine.MergeJoin:
		nl, nr := xa*m.SizeL, xb*m.SizeR
		mOut := m.Theta * xa * xb * m.Size
		return engine.Counts{NT: nl + nr + mOut, NO: nl + nr}
	case engine.NestLoopJoin:
		nl, nr := xa*m.SizeL, xb*m.SizeR
		mOut := m.Theta * xa * xb * m.Size
		return engine.Counts{NT: nl + nr + mOut, NO: nl * nr}
	default:
		panic(fmt.Sprintf("costmodel: counts for %v", n.Kind))
	}
}

// KindFor returns the canonical cost-function type used to fit unit u of
// this operator (the classification of Section 4.1).
func (m *NodeModel) KindFor(u hardware.Unit) FuncKind {
	switch m.Node.Kind {
	case engine.SeqScan:
		return C1 // all counts constant in X
	case engine.IndexScan:
		switch u {
		case hardware.CR, hardware.CT, hardware.CI, hardware.CO:
			// All proportional to the index fetch count (CO covers the
			// residual predicate evaluations; it fits to zero when the
			// scan has a single predicate).
			return C2
		default:
			return C1
		}
	case engine.Sort:
		switch u {
		case hardware.CT:
			return C3
		case hardware.CO:
			return C4 // N log N approximated by a quadratic
		default:
			return C1
		}
	case engine.Materialize:
		if u == hardware.CT {
			return C3
		}
		return C1
	case engine.Aggregate:
		if u == hardware.CT || u == hardware.CO {
			return C3
		}
		return C1
	case engine.HashJoin, engine.MergeJoin:
		switch u {
		case hardware.CT:
			return C6 // Nl + Nr + M with M ∝ Xl*Xr
		case hardware.CO:
			return C5
		default:
			return C1
		}
	case engine.NestLoopJoin:
		switch u {
		case hardware.CT, hardware.CO:
			return C6
		default:
			return C1
		}
	default:
		panic(fmt.Sprintf("costmodel: kind for %v", m.Node.Kind))
	}
}
