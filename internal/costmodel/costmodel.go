// Package costmodel implements the logical cost functions of Section 4:
// the six canonical function types C1–C6 (C1'–C6' when rewritten over
// selectivities), the optimizer-side analytic cost model that maps
// selectivities to the resource counts n of Equation (1), the 3-sigma
// grid probing strategy of Section 4.2, and the NNLS fit of the unknown
// coefficients b (the paper's quadratic program with b_i >= 0).
package costmodel

import (
	"fmt"

	"repro/internal/stats"
)

// FuncKind enumerates the canonical cost-function types C1'–C6'.
type FuncKind int

// Cost function types (Section 4.1). The variable names follow the
// rewritten forms: X is a selectivity in [0,1].
const (
	C1 FuncKind = iota // f = b0
	C2                 // f = b0*X + b1            (X = own output selectivity)
	C3                 // f = b0*Xl + b1           (unary, input selectivity)
	C4                 // f = b0*Xl^2 + b1*Xl + b2 (nonlinear unary)
	C5                 // f = b0*Xl + b1*Xr + b2   (linear binary)
	C6                 // f = b0*Xl*Xr + b1*Xl + b2*Xr + b3
)

// String implements fmt.Stringer.
func (k FuncKind) String() string {
	names := [...]string{"C1", "C2", "C3", "C4", "C5", "C6"}
	if int(k) < len(names) {
		return names[k]
	}
	return fmt.Sprintf("FuncKind(%d)", int(k))
}

// NumCoef returns the number of coefficients of the kind.
func (k FuncKind) NumCoef() int {
	switch k {
	case C1:
		return 1
	case C2, C3:
		return 2
	case C4, C5:
		return 3
	case C6:
		return 4
	default:
		panic(fmt.Sprintf("costmodel: bad kind %d", int(k)))
	}
}

// Binary reports whether the kind takes two selectivity variables.
func (k FuncKind) Binary() bool { return k == C5 || k == C6 }

// Func is a fitted cost function: a polynomial over one or two
// selectivity random variables, identified by the plan-node IDs that own
// them (a scan or join operator's output selectivity).
type Func struct {
	Kind FuncKind
	// B holds the coefficients in the layout documented on FuncKind.
	B []float64
	// VarA and VarB are the owning node IDs of Xl (or X) and Xr; -1 when
	// unused. Constant functions have both -1.
	VarA, VarB int
}

// Zero returns the constant-zero cost function.
func Zero() *Func { return &Func{Kind: C1, B: []float64{0}, VarA: -1, VarB: -1} }

// Constant returns the constant cost function f = v.
func Constant(v float64) *Func { return &Func{Kind: C1, B: []float64{v}, VarA: -1, VarB: -1} }

// IsZero reports whether the function is identically zero.
func (f *Func) IsZero() bool {
	for _, b := range f.B {
		if b != 0 {
			return false
		}
	}
	return true
}

// Eval evaluates the function at the given variable assignment.
func (f *Func) Eval(x map[int]float64) float64 {
	switch f.Kind {
	case C1:
		return f.B[0]
	case C2, C3:
		return f.B[0]*x[f.VarA] + f.B[1]
	case C4:
		xa := x[f.VarA]
		return f.B[0]*xa*xa + f.B[1]*xa + f.B[2]
	case C5:
		return f.B[0]*x[f.VarA] + f.B[1]*x[f.VarB] + f.B[2]
	case C6:
		xa, xb := x[f.VarA], x[f.VarB]
		return f.B[0]*xa*xb + f.B[1]*xa + f.B[2]*xb + f.B[3]
	default:
		panic(fmt.Sprintf("costmodel: bad kind %d", int(f.Kind)))
	}
}

// EvalVec evaluates the function at a dense variable assignment indexed
// by node ID — the scratch-buffer counterpart of Eval for hot loops
// (e.g. the Monte-Carlo draw loop) that evaluate many functions against
// one assignment. x must cover every referenced VarA/VarB index; the
// arithmetic is exactly Eval's, so the two agree bit for bit.
func (f *Func) EvalVec(x []float64) float64 {
	switch f.Kind {
	case C1:
		return f.B[0]
	case C2, C3:
		return f.B[0]*x[f.VarA] + f.B[1]
	case C4:
		xa := x[f.VarA]
		return f.B[0]*xa*xa + f.B[1]*xa + f.B[2]
	case C5:
		return f.B[0]*x[f.VarA] + f.B[1]*x[f.VarB] + f.B[2]
	case C6:
		xa, xb := x[f.VarA], x[f.VarB]
		return f.B[0]*xa*xb + f.B[1]*xa + f.B[2]*xb + f.B[3]
	default:
		panic(fmt.Sprintf("costmodel: bad kind %d", int(f.Kind)))
	}
}

// Term is one monomial of a cost function: Coef * Π Vars[i]^Pows[i],
// with NVars in {0, 1, 2}. The covariance machinery in internal/core
// consumes this representation.
type Term struct {
	Coef  float64
	Vars  [2]int
	Pows  [2]int
	NVars int
}

// Terms expands the function into monomials (constants included).
func (f *Func) Terms() []Term {
	switch f.Kind {
	case C1:
		return []Term{{Coef: f.B[0]}}
	case C2, C3:
		return []Term{
			{Coef: f.B[0], Vars: [2]int{f.VarA}, Pows: [2]int{1}, NVars: 1},
			{Coef: f.B[1]},
		}
	case C4:
		return []Term{
			{Coef: f.B[0], Vars: [2]int{f.VarA}, Pows: [2]int{2}, NVars: 1},
			{Coef: f.B[1], Vars: [2]int{f.VarA}, Pows: [2]int{1}, NVars: 1},
			{Coef: f.B[2]},
		}
	case C5:
		return []Term{
			{Coef: f.B[0], Vars: [2]int{f.VarA}, Pows: [2]int{1}, NVars: 1},
			{Coef: f.B[1], Vars: [2]int{f.VarB}, Pows: [2]int{1}, NVars: 1},
			{Coef: f.B[2]},
		}
	case C6:
		return []Term{
			{Coef: f.B[0], Vars: [2]int{f.VarA, f.VarB}, Pows: [2]int{1, 1}, NVars: 2},
			{Coef: f.B[1], Vars: [2]int{f.VarA}, Pows: [2]int{1}, NVars: 1},
			{Coef: f.B[2], Vars: [2]int{f.VarB}, Pows: [2]int{1}, NVars: 1},
			{Coef: f.B[3]},
		}
	default:
		panic(fmt.Sprintf("costmodel: bad kind %d", int(f.Kind)))
	}
}

// Mean returns E[term] under independent normal variables.
func (t Term) Mean(vars map[int]stats.Normal) float64 {
	m := t.Coef
	for i := 0; i < t.NVars; i++ {
		m *= vars[t.Vars[i]].Moment(t.Pows[i])
	}
	return m
}

// Dist returns the mean and variance of the cost function given the
// marginal distributions of its variables. Distinct variables within one
// function are independent (Lemma 2: sibling subtrees use different
// sample tables). For C4 this reproduces Lemma 4; for C6, Lemma 8.
func (f *Func) Dist(vars map[int]stats.Normal) (mean, variance float64) {
	terms := f.Terms()
	for _, t := range terms {
		mean += t.Mean(vars)
	}
	for i, a := range terms {
		for j, b := range terms {
			if i > j {
				continue
			}
			c := termCovSameFunc(a, b, vars)
			if i == j {
				variance += c
			} else {
				variance += 2 * c
			}
		}
	}
	if variance < 0 {
		variance = 0
	}
	return mean, variance
}

// termCovSameFunc computes Cov(a, b) for two monomials whose distinct
// variables are mutually independent (terms of a single operator's cost
// function). E[ab] factors per variable using normal moments up to 4.
func termCovSameFunc(a, b Term, vars map[int]stats.Normal) float64 {
	if a.NVars == 0 || b.NVars == 0 {
		return 0
	}
	// Joint power per variable, accumulated in term order — NOT via a
	// map — so the product's floating-point rounding (and hence the
	// predicted variance) is bit-identical from run to run.
	var ids, pows [4]int
	n := 0
	add := func(v, p int) {
		for i := 0; i < n; i++ {
			if ids[i] == v {
				pows[i] += p
				return
			}
		}
		ids[n], pows[n] = v, p
		n++
	}
	for i := 0; i < a.NVars; i++ {
		add(a.Vars[i], a.Pows[i])
	}
	for i := 0; i < b.NVars; i++ {
		add(b.Vars[i], b.Pows[i])
	}
	eab := a.Coef * b.Coef
	for i := 0; i < n; i++ {
		eab *= vars[ids[i]].Moment(pows[i])
	}
	return eab - a.Mean(vars)*b.Mean(vars)
}
