package costmodel

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/catalog"
	"repro/internal/engine"
	"repro/internal/hardware"
	"repro/internal/stats"
)

func almostEq(a, b, tol float64) bool {
	d := math.Abs(a - b)
	if d <= tol {
		return true
	}
	m := math.Max(math.Abs(a), math.Abs(b))
	return d <= tol*m
}

// env builds a two-table db, catalog, and a finalized join plan.
func env(t *testing.T) (*engine.DB, *catalog.Catalog, *engine.Node) {
	t.Helper()
	r := rand.New(rand.NewSource(1))
	mk := func(name string, cols []string, n, dom int) *engine.Table {
		rows := make([][]int64, n)
		for i := range rows {
			row := make([]int64, len(cols))
			row[0] = int64(i)
			for j := 1; j < len(cols); j++ {
				row[j] = int64(r.Intn(dom))
			}
			rows[i] = row
		}
		return engine.NewTable(name, cols, rows)
	}
	db := engine.NewDB()
	db.Add(mk("r", []string{"a", "b"}, 5000, 50))
	db.Add(mk("s", []string{"c", "d"}, 3000, 50))
	plan := &engine.Node{
		Kind: engine.HashJoin, LeftCol: "b", RightCol: "d",
		Left: &engine.Node{Kind: engine.IndexScan, Table: "r",
			Preds: []engine.Predicate{{Col: "b", Op: engine.Lt, Lo: 5}}},
		Right: &engine.Node{Kind: engine.SeqScan, Table: "s"},
	}
	plan.Finalize()
	return db, catalog.Build(db), plan
}

func TestBuildModelsVariables(t *testing.T) {
	_, cat, plan := env(t)
	selfRho := map[int]float64{
		plan.ID:       0.001,
		plan.Left.ID:  0.1,
		plan.Right.ID: 1.0,
	}
	models, err := BuildModels(plan, cat, selfRho)
	if err != nil {
		t.Fatal(err)
	}
	jm := models[plan.ID]
	if jm.VarA != plan.Left.ID || jm.VarB != plan.Right.ID {
		t.Errorf("join variables %d/%d", jm.VarA, jm.VarB)
	}
	if jm.SizeL != 5000 || jm.SizeR != 3000 || jm.Size != 15000000 {
		t.Errorf("sizes %v %v %v", jm.SizeL, jm.SizeR, jm.Size)
	}
	if !almostEq(jm.Theta, 0.001/(0.1*1.0), 1e-12) {
		t.Errorf("theta %v", jm.Theta)
	}
	sm := models[plan.Left.ID]
	if sm.VarA != plan.Left.ID || sm.VarB != -1 {
		t.Errorf("scan variables %d/%d", sm.VarA, sm.VarB)
	}
}

func TestVarOwnerSkipsPassThrough(t *testing.T) {
	_, cat, _ := env(t)
	plan := &engine.Node{Kind: engine.Aggregate, GroupCol: "b",
		Left: &engine.Node{Kind: engine.Sort,
			Left: &engine.Node{Kind: engine.SeqScan, Table: "r",
				Preds: []engine.Predicate{{Col: "b", Op: engine.Lt, Lo: 25}}}}}
	plan.Finalize()
	models, err := BuildModels(plan, cat, map[int]float64{})
	if err != nil {
		t.Fatal(err)
	}
	scanID := plan.Left.Left.ID
	if models[plan.Left.ID].VarA != scanID {
		t.Errorf("sort variable %d, want scan %d", models[plan.Left.ID].VarA, scanID)
	}
	if models[plan.ID].VarA != scanID {
		t.Errorf("aggregate variable %d, want scan %d", models[plan.ID].VarA, scanID)
	}
}

func TestCountsMatchEngineFormulas(t *testing.T) {
	_, cat, plan := env(t)
	selfRho := map[int]float64{plan.ID: 0.002, plan.Left.ID: 0.1, plan.Right.ID: 1.0}
	models, _ := BuildModels(plan, cat, selfRho)

	// Index scan at X = 0.1: engine formula with m = 500.
	sc := models[plan.Left.ID].Counts(0.1, 0)
	want := engine.ScanCounts(engine.IndexScan, 5000, 500, 1)
	if sc != want {
		t.Errorf("index scan counts %+v, want %+v", sc, want)
	}

	// Join at (0.1, 1.0): Nl=500, Nr=3000, M=theta*0.1*1*15e6.
	jc := models[plan.ID].Counts(0.1, 1.0)
	m := 0.002 / (0.1 * 1.0) * 0.1 * 1.0 * 15000000
	wantJ := engine.JoinCounts(engine.HashJoin, 500, 3000, m)
	if !almostEq(jc.NT, wantJ.NT, 1e-9) || !almostEq(jc.NO, wantJ.NO, 1e-9) {
		t.Errorf("join counts %+v, want %+v", jc, wantJ)
	}
}

func TestFitRecoversLinearExactly(t *testing.T) {
	_, cat, plan := env(t)
	selfRho := map[int]float64{plan.ID: 0.002, plan.Left.ID: 0.1, plan.Right.ID: 1.0}
	models, _ := BuildModels(plan, cat, selfRho)
	vars := map[int]stats.Normal{
		plan.Left.ID:  stats.NewNormal(0.1, 0.01),
		plan.Right.ID: stats.NewNormal(1.0, 0),
	}

	// Index scan: nr = M = X*5000, so C2 with b0 = 5000, b1 = 0.
	funcs, err := FitNode(models[plan.Left.ID], vars, DefaultGridW)
	if err != nil {
		t.Fatal(err)
	}
	nr := funcs[hardware.CR]
	if nr.Kind != C2 || !almostEq(nr.B[0], 5000, 1e-6) || math.Abs(nr.B[1]) > 1e-3 {
		t.Errorf("index scan nr fit: %+v", nr)
	}

	// Join nt = Nl + Nr + theta*Xl*Xr*|R| -> C6 exact.
	jf, err := FitNode(models[plan.ID], vars, DefaultGridW)
	if err != nil {
		t.Fatal(err)
	}
	nt := jf[hardware.CT]
	if nt.Kind != C6 {
		t.Fatalf("join nt kind %v", nt.Kind)
	}
	theta := 0.002 / 0.1
	if !almostEq(nt.B[0], theta*15000000, 1e-5) ||
		!almostEq(nt.B[1], 5000, 1e-5) || !almostEq(nt.B[2], 3000, 1e-5) {
		t.Errorf("join nt coefficients %v", nt.B)
	}
	// no = Nl + Nr -> C5 exact.
	no := jf[hardware.CO]
	if no.Kind != C5 || !almostEq(no.B[0], 5000, 1e-5) || !almostEq(no.B[1], 3000, 1e-5) {
		t.Errorf("join no fit %+v", no)
	}
}

func TestFitSortQuadraticApproximation(t *testing.T) {
	_, cat, _ := env(t)
	plan := &engine.Node{Kind: engine.Sort,
		Left: &engine.Node{Kind: engine.SeqScan, Table: "r",
			Preds: []engine.Predicate{{Col: "b", Op: engine.Lt, Lo: 25}}}}
	plan.Finalize()
	models, _ := BuildModels(plan, cat, map[int]float64{})
	scanID := plan.Left.ID
	x := stats.NewNormal(0.5, 0.03)
	vars := map[int]stats.Normal{scanID: x}
	funcs, err := FitNode(models[plan.ID], vars, DefaultGridW)
	if err != nil {
		t.Fatal(err)
	}
	no := funcs[hardware.CO]
	if no.Kind != C4 {
		t.Fatalf("sort no kind %v", no.Kind)
	}
	// The quadratic should track N log2 N within a few percent on the
	// probe interval.
	for _, xv := range []float64{0.42, 0.5, 0.58} {
		n := xv * 5000
		truth := n * math.Log2(n)
		got := no.Eval(map[int]float64{scanID: xv})
		if math.Abs(got-truth)/truth > 0.05 {
			t.Errorf("x=%v: fit %v vs N log N %v", xv, got, truth)
		}
	}
}

func TestFitConstantSeqScan(t *testing.T) {
	_, cat, _ := env(t)
	plan := &engine.Node{Kind: engine.SeqScan, Table: "r",
		Preds: []engine.Predicate{{Col: "b", Op: engine.Lt, Lo: 25}}}
	plan.Finalize()
	models, _ := BuildModels(plan, cat, map[int]float64{})
	vars := map[int]stats.Normal{plan.ID: stats.NewNormal(0.5, 0.05)}
	funcs, err := FitNode(models[plan.ID], vars, DefaultGridW)
	if err != nil {
		t.Fatal(err)
	}
	for ui, f := range funcs {
		if f.Kind != C1 {
			t.Errorf("unit %v: kind %v, want C1", hardware.Unit(ui), f.Kind)
		}
	}
	if funcs[hardware.CS].B[0] != 50 { // 5000/100 pages
		t.Errorf("ns = %v, want 50", funcs[hardware.CS].B[0])
	}
	if funcs[hardware.CT].B[0] != 5000 || funcs[hardware.CO].B[0] != 5000 {
		t.Errorf("nt/no constants wrong: %v / %v",
			funcs[hardware.CT].B[0], funcs[hardware.CO].B[0])
	}
}

func TestDistMatchesLemma4(t *testing.T) {
	// C4 variance must equal sigma^2[(b1+2 b0 mu)^2 + 2 b0^2 sigma^2].
	f := &Func{Kind: C4, B: []float64{3, 2, 1}, VarA: 7, VarB: -1}
	x := stats.NewNormal(0.4, 0.05)
	vars := map[int]stats.Normal{7: x}
	mean, variance := f.Dist(vars)
	s2 := x.Var()
	wantVar := s2 * (math.Pow(2+2*3*0.4, 2) + 2*9*s2)
	wantMean := 3*(0.4*0.4+s2) + 2*0.4 + 1
	if !almostEq(variance, wantVar, 1e-12) {
		t.Errorf("Var = %v, want %v (Lemma 4)", variance, wantVar)
	}
	if !almostEq(mean, wantMean, 1e-12) {
		t.Errorf("Mean = %v, want %v", mean, wantMean)
	}
}

func TestDistMatchesLemma8(t *testing.T) {
	// C6 variance must equal sigma_l^2(b0 mu_r + b1)^2 +
	// sigma_r^2(b0 mu_l + b2)^2 + b0^2 sigma_l^2 sigma_r^2.
	f := &Func{Kind: C6, B: []float64{5, 3, 2, 1}, VarA: 1, VarB: 2}
	xl := stats.NewNormal(0.3, 0.04)
	xr := stats.NewNormal(0.6, 0.07)
	vars := map[int]stats.Normal{1: xl, 2: xr}
	_, variance := f.Dist(vars)
	sl2, sr2 := xl.Var(), xr.Var()
	want := sl2*math.Pow(5*0.6+3, 2) + sr2*math.Pow(5*0.3+2, 2) + 25*sl2*sr2
	if !almostEq(variance, want, 1e-12) {
		t.Errorf("Var = %v, want %v (Lemma 8)", variance, want)
	}
}

func TestDistLinearForms(t *testing.T) {
	f := &Func{Kind: C3, B: []float64{10, 4}, VarA: 3, VarB: -1}
	x := stats.NewNormal(0.2, 0.03)
	mean, variance := f.Dist(map[int]stats.Normal{3: x})
	if !almostEq(mean, 10*0.2+4, 1e-12) || !almostEq(variance, 100*x.Var(), 1e-12) {
		t.Errorf("C3 dist = (%v, %v)", mean, variance)
	}
	f5 := &Func{Kind: C5, B: []float64{10, 20, 4}, VarA: 1, VarB: 2}
	xl := stats.NewNormal(0.2, 0.03)
	xr := stats.NewNormal(0.5, 0.01)
	m5, v5 := f5.Dist(map[int]stats.Normal{1: xl, 2: xr})
	if !almostEq(m5, 10*0.2+20*0.5+4, 1e-12) ||
		!almostEq(v5, 100*xl.Var()+400*xr.Var(), 1e-12) {
		t.Errorf("C5 dist = (%v, %v)", m5, v5)
	}
}

// Property: Dist variance is never negative and Eval at the mean is close
// to the distribution mean for linear kinds.
func TestDistProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		fn := &Func{Kind: C5, B: []float64{r.Float64() * 100, r.Float64() * 100, r.Float64() * 10},
			VarA: 1, VarB: 2}
		vars := map[int]stats.Normal{
			1: stats.NewNormal(r.Float64(), r.Float64()*0.1),
			2: stats.NewNormal(r.Float64(), r.Float64()*0.1),
		}
		mean, variance := fn.Dist(vars)
		if variance < 0 {
			return false
		}
		at := fn.Eval(map[int]float64{1: vars[1].Mu, 2: vars[2].Mu})
		return almostEq(mean, at, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestTermsRoundTrip(t *testing.T) {
	// Sum of term means equals Dist mean for every kind.
	vars := map[int]stats.Normal{
		1: stats.NewNormal(0.3, 0.05),
		2: stats.NewNormal(0.7, 0.02),
	}
	fns := []*Func{
		Constant(5),
		{Kind: C2, B: []float64{3, 1}, VarA: 1, VarB: -1},
		{Kind: C4, B: []float64{2, 3, 4}, VarA: 1, VarB: -1},
		{Kind: C5, B: []float64{1, 2, 3}, VarA: 1, VarB: 2},
		{Kind: C6, B: []float64{1, 2, 3, 4}, VarA: 1, VarB: 2},
	}
	for _, fn := range fns {
		mean, _ := fn.Dist(vars)
		var sum float64
		for _, tm := range fn.Terms() {
			sum += tm.Mean(vars)
		}
		if !almostEq(mean, sum, 1e-12) {
			t.Errorf("%v: term means %v != dist mean %v", fn.Kind, sum, mean)
		}
	}
}

func TestZeroAndConstant(t *testing.T) {
	if !Zero().IsZero() {
		t.Error("Zero not zero")
	}
	c := Constant(3)
	if c.IsZero() || c.Eval(nil) != 3 {
		t.Error("Constant wrong")
	}
	m, v := c.Dist(nil)
	if m != 3 || v != 0 {
		t.Errorf("Constant dist = (%v, %v)", m, v)
	}
}

func TestProbeIntervalClamps(t *testing.T) {
	lo, hi := probeInterval(stats.NewNormal(0.01, 0.05))
	if lo != 0 {
		t.Errorf("lo = %v, want 0", lo)
	}
	lo, hi = probeInterval(stats.NewNormal(0.99, 0.05))
	if hi != 1 {
		t.Errorf("hi = %v, want 1", hi)
	}
	lo, hi = probeInterval(stats.NewNormal(0.5, 0))
	if hi <= lo {
		t.Errorf("degenerate interval [%v,%v]", lo, hi)
	}
}
