package costmodel

import (
	"fmt"
	"math"

	"repro/internal/hardware"
	"repro/internal/solve"
	"repro/internal/stats"
)

// DefaultGridW is the number of subintervals W used to probe the cost
// model over the 3-sigma interval (Section 4.2); W+1 boundary points per
// dimension.
const DefaultGridW = 8

// probeInterval returns the probe interval [lo, hi] ⊆ [0, 1] around the
// variable's distribution: [mu-3sigma, mu+3sigma] clipped to the unit
// interval (Pr(X in I) ~ 0.997), widened to a minimum span so the design
// matrix stays full-rank even for near-deterministic estimates.
func probeInterval(x stats.Normal) (lo, hi float64) {
	half := 3 * x.Sigma
	if min := 0.05*x.Mu + 1e-6; half < min {
		half = min
	}
	lo, hi = x.Mu-half, x.Mu+half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	if hi <= lo {
		hi = lo + 1e-9
	}
	return lo, hi
}

func gridPoints(lo, hi float64, w int) []float64 {
	pts := make([]float64, w+1)
	for i := 0; i <= w; i++ {
		pts[i] = lo + (hi-lo)*float64(i)/float64(w)
	}
	return pts
}

// FitNode fits the five per-unit cost functions of one operator by
// probing its analytic cost model on the grid and solving the
// non-negative least-squares program of Section 4.2. Variables are
// scaled by their interval maximum before fitting; the scaling preserves
// the sign constraints and keeps the normal equations well-conditioned.
func FitNode(m *NodeModel, vars map[int]stats.Normal, gridW int) ([hardware.NumUnits]*Func, error) {
	if gridW < 2 {
		gridW = DefaultGridW
	}
	var funcs [hardware.NumUnits]*Func

	xa, okA := vars[m.VarA], m.VarA >= 0
	xb, okB := vars[m.VarB], m.VarB >= 0

	for ui := 0; ui < hardware.NumUnits; ui++ {
		u := hardware.Unit(ui)
		kind := m.KindFor(u)
		switch {
		case kind == C1:
			mu := 0.0
			if okA {
				mu = xa.Mu
			}
			mb := 0.0
			if okB {
				mb = xb.Mu
			}
			funcs[ui] = Constant(m.Counts(mu, mb).Get(ui))
		case !kind.Binary():
			if !okA {
				return funcs, fmt.Errorf("costmodel: node %d kind %v needs a variable", m.Node.ID, kind)
			}
			f, err := fitUnary(m, ui, kind, xa, gridW)
			if err != nil {
				return funcs, err
			}
			funcs[ui] = f
		default:
			if !okA || !okB {
				return funcs, fmt.Errorf("costmodel: node %d kind %v needs two variables", m.Node.ID, kind)
			}
			f, err := fitBinary(m, ui, kind, xa, xb, gridW)
			if err != nil {
				return funcs, err
			}
			funcs[ui] = f
		}
	}
	return funcs, nil
}

func fitUnary(m *NodeModel, unit int, kind FuncKind, xa stats.Normal, w int) (*Func, error) {
	lo, hi := probeInterval(xa)
	pts := gridPoints(lo, hi, w)
	scale := hi
	if scale <= 0 {
		scale = 1
	}
	ncoef := kind.NumCoef()
	a := solve.NewMatrix(len(pts), ncoef)
	y := make([]float64, len(pts))
	for i, x := range pts {
		v := x / scale
		switch kind {
		case C2, C3:
			a.Set(i, 0, v)
			a.Set(i, 1, 1)
		case C4:
			a.Set(i, 0, v*v)
			a.Set(i, 1, v)
			a.Set(i, 2, 1)
		default:
			return nil, fmt.Errorf("costmodel: fitUnary with %v", kind)
		}
		y[i] = m.Counts(x, 0).Get(unit)
	}
	// The paper constrains the leading coefficients to be non-negative;
	// the intercept is free.
	mask := make([]bool, ncoef)
	for i := 0; i < ncoef-1; i++ {
		mask[i] = true
	}
	b, err := solve.NNLS(a, y, mask)
	if err != nil {
		return nil, err
	}
	// Undo the variable scaling.
	switch kind {
	case C2, C3:
		b[0] /= scale
	case C4:
		b[0] /= scale * scale
		b[1] /= scale
	}
	return &Func{Kind: kind, B: cleanCoefs(b), VarA: m.VarA, VarB: -1}, nil
}

func fitBinary(m *NodeModel, unit int, kind FuncKind, xa, xb stats.Normal, w int) (*Func, error) {
	loA, hiA := probeInterval(xa)
	loB, hiB := probeInterval(xb)
	ptsA := gridPoints(loA, hiA, w)
	ptsB := gridPoints(loB, hiB, w)
	sa, sb := hiA, hiB
	if sa <= 0 {
		sa = 1
	}
	if sb <= 0 {
		sb = 1
	}
	ncoef := kind.NumCoef()
	rows := len(ptsA) * len(ptsB)
	a := solve.NewMatrix(rows, ncoef)
	y := make([]float64, rows)
	r := 0
	for _, pa := range ptsA {
		for _, pb := range ptsB {
			va, vb := pa/sa, pb/sb
			switch kind {
			case C5:
				a.Set(r, 0, va)
				a.Set(r, 1, vb)
				a.Set(r, 2, 1)
			case C6:
				a.Set(r, 0, va*vb)
				a.Set(r, 1, va)
				a.Set(r, 2, vb)
				a.Set(r, 3, 1)
			default:
				return nil, fmt.Errorf("costmodel: fitBinary with %v", kind)
			}
			y[r] = m.Counts(pa, pb).Get(unit)
			r++
		}
	}
	mask := make([]bool, ncoef)
	for i := 0; i < ncoef-1; i++ {
		mask[i] = true
	}
	b, err := solve.NNLS(a, y, mask)
	if err != nil {
		return nil, err
	}
	switch kind {
	case C5:
		b[0] /= sa
		b[1] /= sb
	case C6:
		b[0] /= sa * sb
		b[1] /= sa
		b[2] /= sb
	}
	return &Func{Kind: kind, B: cleanCoefs(b), VarA: m.VarA, VarB: m.VarB}, nil
}

// cleanCoefs zeroes numerical dust so downstream variance terms do not
// accumulate noise from coefficients that should be exactly zero.
func cleanCoefs(b []float64) []float64 {
	var scale float64
	for _, v := range b {
		scale = math.Max(scale, math.Abs(v))
	}
	tol := 1e-9 * scale
	for i, v := range b {
		if math.Abs(v) < tol {
			b[i] = 0
		}
	}
	return b
}
