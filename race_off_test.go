//go:build !race

package uaqetp

// raceEnabled reports whether the race detector instruments this build;
// allocation-count assertions are skipped under it (instrumentation
// allocates).
const raceEnabled = false
