# Canonical build/test entrypoints. `make test` is the tier-1 gate:
# everything must build, vet clean, and pass the full suite under the
# race detector (the concurrency contract of the System API is part of
# the public surface).

GO ?= go

.PHONY: test build vet race bench bench-check sim-smoke fmt

# The benchmarks recorded in the BENCH_* trajectory (and guarded by
# bench-check): the batched-prediction, plan-alternative, serve-path,
# and simulator hot loops.
BENCH_PATTERN = PredictBatch|PredictorLatency|Serve|Alternatives|Sim

test:
	$(GO) build ./... && $(GO) vet ./... && $(GO) test -race -timeout 30m ./...

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# race runs only the concurrency-focused suites, for a quick signal.
race:
	$(GO) test -race -count=1 -run 'Concurrent|Parallel|Batch|LRU|Sharded|Admission|Drain|Dispatcher|Feedback|SharedCache|Grid|Flight|Sim' ./...

# sim-smoke runs the shipped cluster-simulation scenarios — the
# homogeneous bursty showcase, the heterogeneous mixed-profile fleet,
# the 1000-machine million-arrival cluster (parallel stepping on), the
# 4-shard 10k-tenant sharded topology (front door + cache tier), and
# the drift-injection experiment (mid-run truth flip, time-to-detection)
# — twice each and fails on any nondeterminism: same config + seed must
# produce byte-identical reports. The scenarios also span both
# measurement-stream versions: scenario.json carries no "rng" key (the
# v1 compatibility gate — its report is further pinned byte-for-byte by
# TestV1ReportGolden), while the other four declare "rng": "v2", the
# counter-based fast path. The second run pins GOMAXPROCS=2 so
# the comparison also covers the scheduler-independence half of the
# contract. The heterogeneous scenario additionally runs with full
# decision tracing on, and the drift scenario with the calibration
# stream on, byte-comparing the JSONL as well — both streams are part
# of the determinism contract. It is the cheap end-to-end gate on the
# simulator's core determinism.
sim-smoke:
	@for sc in scenario scenario-hetero scenario-cluster scenario-sharded scenario-drift; do \
		$(GO) run ./cmd/uaqp sim -config examples/sim/$$sc.json -o sim-smoke-1.json 2>/dev/null || exit 1; \
		GOMAXPROCS=2 $(GO) run ./cmd/uaqp sim -config examples/sim/$$sc.json -o sim-smoke-2.json 2>/dev/null || exit 1; \
		cmp sim-smoke-1.json sim-smoke-2.json \
			|| { echo "sim-smoke: $$sc reports differ across identical runs"; rm -f sim-smoke-1.json sim-smoke-2.json; exit 1; }; \
		rm sim-smoke-1.json sim-smoke-2.json; \
		echo "sim-smoke: $$sc deterministic"; \
	done
	@$(GO) run ./cmd/uaqp sim -config examples/sim/scenario-hetero.json -trace-level full -trace sim-smoke-trace-1.jsonl -o sim-smoke-1.json 2>/dev/null || exit 1; \
	GOMAXPROCS=2 $(GO) run ./cmd/uaqp sim -config examples/sim/scenario-hetero.json -trace-level full -trace sim-smoke-trace-2.jsonl -o sim-smoke-2.json 2>/dev/null || exit 1; \
	cmp sim-smoke-1.json sim-smoke-2.json \
		|| { echo "sim-smoke: traced scenario-hetero reports differ"; rm -f sim-smoke-1.json sim-smoke-2.json sim-smoke-trace-1.jsonl sim-smoke-trace-2.jsonl; exit 1; }; \
	cmp sim-smoke-trace-1.jsonl sim-smoke-trace-2.jsonl \
		|| { echo "sim-smoke: scenario-hetero traces differ across identical runs"; rm -f sim-smoke-1.json sim-smoke-2.json sim-smoke-trace-1.jsonl sim-smoke-trace-2.jsonl; exit 1; }; \
	rm sim-smoke-1.json sim-smoke-2.json sim-smoke-trace-1.jsonl sim-smoke-trace-2.jsonl; \
	echo "sim-smoke: scenario-hetero trace deterministic"
	@$(GO) run ./cmd/uaqp sim -config examples/sim/scenario-drift.json -calib sim-smoke-calib-1.jsonl -o sim-smoke-1.json 2>/dev/null || exit 1; \
	GOMAXPROCS=2 $(GO) run ./cmd/uaqp sim -config examples/sim/scenario-drift.json -calib sim-smoke-calib-2.jsonl -o sim-smoke-2.json 2>/dev/null || exit 1; \
	cmp sim-smoke-1.json sim-smoke-2.json \
		|| { echo "sim-smoke: calib-streamed scenario-drift reports differ"; rm -f sim-smoke-1.json sim-smoke-2.json sim-smoke-calib-1.jsonl sim-smoke-calib-2.jsonl; exit 1; }; \
	cmp sim-smoke-calib-1.jsonl sim-smoke-calib-2.jsonl \
		|| { echo "sim-smoke: scenario-drift calibration streams differ across identical runs"; rm -f sim-smoke-1.json sim-smoke-2.json sim-smoke-calib-1.jsonl sim-smoke-calib-2.jsonl; exit 1; }; \
	rm sim-smoke-1.json sim-smoke-2.json sim-smoke-calib-1.jsonl sim-smoke-calib-2.jsonl; \
	echo "sim-smoke: scenario-drift calibration stream deterministic"

# bench runs the batched-prediction and serve-path benchmarks with
# allocation reporting and records the parsed results in
# BENCH_batch.json (the BENCH_* trajectory). The raw output goes
# through a temp file so a failing bench run aborts before clobbering
# the trajectory.
bench:
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchmem . ./internal/serve/ ./internal/sim/ > bench.out \
		|| { cat bench.out; rm -f bench.out; exit 1; }
	cat bench.out
	$(GO) run ./internal/tools/benchjson < bench.out > BENCH_batch.json.tmp \
		|| { rm -f bench.out BENCH_batch.json.tmp; exit 1; }
	mv BENCH_batch.json.tmp BENCH_batch.json
	rm bench.out

# bench-check reruns the benchmarks and fails if any benchmark's
# throughput fell more than 25% below the committed BENCH_batch.json
# trajectory (benchjson -compare). Absolute ns/op are hardware-sensitive,
# so treat failures on unfamiliar machines as a prompt to re-record with
# `make bench`; in CI (same runner class run to run) the gate catches
# large structural regressions.
bench-check:
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchmem . ./internal/serve/ ./internal/sim/ > bench-check.out \
		|| { cat bench-check.out; rm -f bench-check.out; exit 1; }
	$(GO) run ./internal/tools/benchjson -compare BENCH_batch.json < bench-check.out > /dev/null \
		|| { cat bench-check.out; rm -f bench-check.out; exit 1; }
	rm bench-check.out

fmt:
	gofmt -l -w .
