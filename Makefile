# Canonical build/test entrypoints. `make test` is the tier-1 gate:
# everything must build, vet clean, and pass the full suite under the
# race detector (the concurrency contract of the System API is part of
# the public surface).

GO ?= go

.PHONY: test build vet race bench fmt

test:
	$(GO) build ./... && $(GO) vet ./... && $(GO) test -race -timeout 30m ./...

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# race runs only the concurrency-focused suites, for a quick signal.
race:
	$(GO) test -race -count=1 -run 'Concurrent|Parallel|Batch|LRU|Sharded|Admission|Drain|Dispatcher|Feedback|SharedCache|Grid' ./...

# bench runs the batched-prediction and serve-path benchmarks with
# allocation reporting and records the parsed results in
# BENCH_batch.json (the BENCH_* trajectory). The raw output goes
# through a temp file so a failing bench run aborts before clobbering
# the trajectory.
bench:
	$(GO) test -run '^$$' -bench 'PredictBatch|PredictorLatency|Serve' -benchmem . ./internal/serve/ > bench.out \
		|| { cat bench.out; rm -f bench.out; exit 1; }
	cat bench.out
	$(GO) run ./internal/tools/benchjson < bench.out > BENCH_batch.json.tmp \
		|| { rm -f bench.out BENCH_batch.json.tmp; exit 1; }
	mv BENCH_batch.json.tmp BENCH_batch.json
	rm bench.out

fmt:
	gofmt -l -w .
