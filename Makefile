# Canonical build/test entrypoints. `make test` is the tier-1 gate:
# everything must build, vet clean, and pass the full suite under the
# race detector (the concurrency contract of the System API is part of
# the public surface).

GO ?= go

.PHONY: test build vet race bench fmt

test:
	$(GO) build ./... && $(GO) vet ./... && $(GO) test -race -timeout 30m ./...

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# race runs only the concurrency-focused suites, for a quick signal.
race:
	$(GO) test -race -count=1 -run 'Concurrent|Parallel|Batch|LRU' ./...

# bench exercises the batched-prediction throughput benchmark with
# allocation reporting (BENCH_* trajectory input).
bench:
	$(GO) test -run '^$$' -bench 'PredictBatch|PredictorLatency' -benchmem .

fmt:
	gofmt -l -w .
