package uaqetp

// Drift injection: the controlled experiment behind the calibration
// observatory. A drift-injected System starts life perfectly
// calibrated — its executor measures on a "before" profile and its
// predictor units were calibrated against that same profile — until a
// TruthSwitch fires, after which executions measure on the System's
// own (drifted) profile while the units silently go stale. Recalibrate
// targets whichever profile is the truth *right now* — pre-drift before
// the switch (a recalibration then is a no-op by construction), drifted
// after — so the feedback loop's auto-recalibration is what closes the
// gap: time from switch to recovery is the time-to-detection the
// simulator reports.

import (
	"context"
	"fmt"
	"sync/atomic"

	"repro/internal/calibrate"
	"repro/internal/hardware"
)

// TruthSwitch flips a drift-injected System's ground truth from its
// pre-drift profile to its drifted one. Safe for concurrent use;
// executions that begin after Switch measure on the drifted profile.
type TruthSwitch struct {
	flag atomic.Bool
}

// Switch makes the drift take effect. Idempotent.
func (t *TruthSwitch) Switch() { t.flag.Store(true) }

// Switched reports whether the drift has taken effect.
func (t *TruthSwitch) Switched() bool { return t.flag.Load() }

// switchExecutor routes Execute through the pre-drift executor until
// the switch fires, then through the post-drift one. Both sides use
// the same deterministic per-call measurement seeding, so flipping the
// switch changes *which profile* measures, never the random stream.
type switchExecutor struct {
	sw            *TruthSwitch
	before, after Executor
}

func (x *switchExecutor) Execute(ctx context.Context, q *Query, p *Plan) (float64, error) {
	if x.sw.Switched() {
		return x.after.Execute(ctx, q, p)
	}
	return x.before.Execute(ctx, q, p)
}

// WithDriftInjection derives, from a System on a drifted profile
// (typically a WithMachine sibling on profile.WithDrift(...)), a System
// whose observable truth starts at the given pre-drift profile: its
// executor measures on `before` until the returned TruthSwitch fires,
// and its predictor units are freshly calibrated against `before`
// (deterministic per Config.Seed, exactly as Open would produce), so
// predictions and reality agree. After Switch, executions measure on
// the receiver's own drifted profile while the units stay stale — the
// PR 5 "machine whose truth moved" story made runnable mid-flight.
// Recalibrate on the derived System (and on façades derived from it)
// calibrates against the current truth: the pre-drift profile until the
// switch fires — so a spurious advisory cannot poison a still-accurate
// predictor — and the drifted profile after, so a drift-advised
// recalibration genuinely recovers.
//
// The receiver must use the built-in executor; shared layers (database,
// samples, estimate cache) are shared as with any derived System.
func (s *System) WithDriftInjection(before *hardware.Profile) (*System, *TruthSwitch, error) {
	if before == nil {
		return nil, nil, fmt.Errorf("uaqetp: nil pre-drift profile")
	}
	after, ok := s.executor.(simExecutor)
	if !ok {
		return nil, nil, fmt.Errorf("uaqetp: drift injection needs the built-in executor (custom Executor stage installed)")
	}
	prof := *before // private copy: profiles are values, callers may mutate theirs
	cal, err := calibrate.Run(&prof, calibrate.DefaultConfig(s.cfg.Seed+1))
	if err != nil {
		return nil, nil, fmt.Errorf("uaqetp: calibrate pre-drift %q: %w", prof.Name, err)
	}
	sw := &TruthSwitch{}
	preExec := simExecutor{db: s.db, profile: &prof, seed: s.cfg.Seed, cache: s.estCache, runNS: s.runNS, ver: s.cfg.RNG}
	derived := s.With(WithExecutor(&switchExecutor{sw: sw, before: preExec, after: after}))
	derived.pred = newPredictorHandle(defaultPredictorState(s.cat, cal.Units, s.cfg.Variant))
	derived.truth = func() *hardware.Profile {
		if sw.Switched() {
			return s.profile
		}
		return &prof
	}
	return derived, sw, nil
}
