package uaqetp

import (
	"context"
	"encoding/binary"
	"hash/fnv"
	"math"
	"sync/atomic"

	"repro/internal/engine"
	"repro/internal/sample"
)

// TierConfig shapes a TieredCache: what fraction of the key space is
// resident in the local (in-process) tier, and what each lookup that
// has to go to the remote tier costs.
type TierConfig struct {
	// LocalFraction is the fraction of the key space classified as
	// local-tier resident, in [0, 1]. Clamped; 1 makes every lookup
	// local (the tiered cache degenerates to its inner MemoryCache).
	LocalFraction float64 `json:"local_fraction"`
	// RemoteLatency is the modeled cost, in seconds, of one lookup
	// that resolves through the remote tier.
	RemoteLatency float64 `json:"remote_latency"`
	// Seed salts the key-space classification so distinct deployments
	// partition differently but each is deterministic.
	Seed int64 `json:"seed"`
	// Capacity sizes the backing MemoryCache; <1 selects the default.
	Capacity int `json:"capacity,omitempty"`
}

// TierStats is a point-in-time snapshot of a TieredCache's tier
// counters. ModeledRemoteSeconds is the aggregate modeled cost of all
// remote-tier lookups so far (RemoteLookups times the configured
// per-lookup latency) — a report field, not wall time spent.
type TierStats struct {
	LocalLookups         uint64  `json:"local_lookups"`
	RemoteLookups        uint64  `json:"remote_lookups"`
	LocalFraction        float64 `json:"local_fraction"`
	RemoteLatencySeconds float64 `json:"remote_latency_seconds"`
	ModeledRemoteSeconds float64 `json:"modeled_remote_seconds"`
}

// TieredCache is an EstimateCache that models a two-tier (in-process +
// remote) deployment over a single in-process store. Every value is
// really kept in the inner MemoryCache — correctness is identical to
// the in-process tier — but each key is deterministically classified,
// by a seeded hash of the key against LocalFraction, as local- or
// remote-resident, and lookups are tallied per tier. The modeled
// remote cost is derived from the counters at read time
// (remoteLookups × RemoteLatency), so the aggregate is a pure sum of
// atomic increments: independent of the order concurrent callers
// interleave in, which keeps simulator reports byte-identical under
// parallel machine stepping.
type TieredCache struct {
	inner *MemoryCache
	cfg   TierConfig

	// threshold is the precomputed cut in hash space below which a key
	// classifies as local: hash64(key, seed) < threshold.
	threshold uint64

	localLookups  atomic.Uint64
	remoteLookups atomic.Uint64
}

// NewTieredCache returns a tiered EstimateCache per cfg. The local
// fraction is clamped to [0, 1].
func NewTieredCache(cfg TierConfig) *TieredCache {
	if cfg.LocalFraction < 0 {
		cfg.LocalFraction = 0
	}
	if cfg.LocalFraction > 1 {
		cfg.LocalFraction = 1
	}
	var threshold uint64
	if cfg.LocalFraction >= 1 {
		threshold = math.MaxUint64
	} else {
		threshold = uint64(cfg.LocalFraction * float64(math.MaxUint64))
	}
	return &TieredCache{
		inner:     NewEstimateCache(cfg.Capacity),
		cfg:       cfg,
		threshold: threshold,
	}
}

// classify tallies one lookup of key against the tier model.
func (c *TieredCache) classify(key string) {
	h := fnv.New64a()
	var seed [8]byte
	binary.LittleEndian.PutUint64(seed[:], uint64(c.cfg.Seed))
	h.Write(seed[:])
	h.Write([]byte(key))
	// FNV alone is biased on structured keys sharing long prefixes;
	// a splitmix-style avalanche spreads the classification evenly.
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	if x < c.threshold {
		c.localLookups.Add(1)
	} else {
		c.remoteLookups.Add(1)
	}
}

func (c *TieredCache) getOrCompute(ctx context.Context, key string, compute func() (*sample.Estimates, error)) (*sample.Estimates, error) {
	c.classify(key)
	return c.inner.getOrCompute(ctx, key, compute)
}

func (c *TieredCache) getOrComputePass(ctx context.Context, key string, compute func() (*sample.Pass, error)) (*sample.Pass, error) {
	c.classify(key)
	return c.inner.getOrComputePass(ctx, key, compute)
}

func (c *TieredCache) getOrComputeRun(ctx context.Context, key string, compute func() (*engine.OpResult, error)) (*engine.OpResult, error) {
	c.classify(key)
	return c.inner.getOrComputeRun(ctx, key, compute)
}

// Stats aggregates the inner store's counters; the tier split is
// reported separately by TierStats.
func (c *TieredCache) Stats() CacheStats { return c.inner.Stats() }

// TierStats snapshots the tier counters and the modeled remote cost.
func (c *TieredCache) TierStats() TierStats {
	remote := c.remoteLookups.Load()
	return TierStats{
		LocalLookups:         c.localLookups.Load(),
		RemoteLookups:        remote,
		LocalFraction:        c.cfg.LocalFraction,
		RemoteLatencySeconds: c.cfg.RemoteLatency,
		ModeledRemoteSeconds: float64(remote) * c.cfg.RemoteLatency,
	}
}
