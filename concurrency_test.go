// Concurrency tests: one System shared by many goroutines must be
// race-free (run with -race) and fully deterministic — for a fixed
// Config.Seed, every Predict/PredictBatch/Execute result is
// byte-identical to the serial baseline no matter how calls interleave
// or how many workers a batch uses.
package uaqetp

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
)

// predFingerprint renders every float of a prediction via its exact bit
// pattern, so equality means byte-identical results.
func predFingerprint(p *Prediction) string {
	s := fmt.Sprintf("mu=%x sigma=%x covD=%x covB=%x",
		math.Float64bits(p.Dist.Mu), math.Float64bits(p.Dist.Sigma),
		math.Float64bits(p.CovDirect), math.Float64bits(p.CovBound))
	for _, op := range p.PerOperator {
		s += fmt.Sprintf(" %d:%v:%x:%x", op.NodeID, op.Kind,
			math.Float64bits(op.Mean), math.Float64bits(op.Var))
	}
	return s
}

// stressQueries is a small mixed workload: scans, 2-way and 3-way joins.
func stressQueries() []*Query {
	return []*Query{
		{
			Name:   "c-scan",
			Tables: []string{"customer"},
			Preds:  []Predicate{{Col: "c_acctbal", Op: Le, Lo: 3000}},
		},
		{
			Name:   "l-scan",
			Tables: []string{"lineitem"},
			Preds:  []Predicate{{Col: "l_quantity", Op: Le, Lo: 30}},
		},
		{
			Name:   "ol-join",
			Tables: []string{"orders", "lineitem"},
			Preds:  []Predicate{{Col: "o_totalprice", Op: Le, Lo: 40000}},
			Joins: []JoinCond{{
				LeftTable: "orders", LeftCol: "o_orderkey",
				RightTable: "lineitem", RightCol: "l_orderkey",
			}},
		},
		{
			Name:   "co-join",
			Tables: []string{"customer", "orders"},
			Preds:  []Predicate{{Col: "c_acctbal", Op: Le, Lo: 5000}},
			Joins: []JoinCond{{
				LeftTable: "customer", LeftCol: "c_custkey",
				RightTable: "orders", RightCol: "o_custkey",
			}},
		},
		{
			Name:   "col-3way",
			Tables: []string{"customer", "orders", "lineitem"},
			Preds:  []Predicate{{Col: "o_orderdate", Op: Le, Lo: 1500}},
			Joins: []JoinCond{
				{LeftTable: "customer", LeftCol: "c_custkey", RightTable: "orders", RightCol: "o_custkey"},
				{LeftTable: "orders", LeftCol: "o_orderkey", RightTable: "lineitem", RightCol: "l_orderkey"},
			},
		},
	}
}

// TestConcurrentUseDeterministic fires 64+ goroutines through Predict,
// PredictBatch, and Execute on one System and asserts every result
// matches the serial baseline bit for bit.
func TestConcurrentUseDeterministic(t *testing.T) {
	sys := testSystem(t)
	queries := stressQueries()

	// Serial baselines, computed before any concurrency. Use a second
	// System with the same seed for the baselines so memo state cannot
	// mask a divergence.
	base, err := Open(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	wantPred := make([]string, len(queries))
	wantExec := make([]float64, len(queries))
	for i, q := range queries {
		p, err := base.Predict(q)
		if err != nil {
			t.Fatal(err)
		}
		wantPred[i] = predFingerprint(p)
		a, err := base.Execute(q)
		if err != nil {
			t.Fatal(err)
		}
		wantExec[i] = a
	}

	const goroutines = 64
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			qi := g % len(queries)
			switch g % 3 {
			case 0: // single prediction
				p, err := sys.Predict(queries[qi])
				if err != nil {
					errc <- err
					return
				}
				if got := predFingerprint(p); got != wantPred[qi] {
					errc <- fmt.Errorf("goroutine %d: Predict(%s) diverged:\n got %s\nwant %s",
						g, queries[qi].Name, got, wantPred[qi])
				}
			case 1: // batch with a goroutine-dependent worker count
				preds, err := sys.PredictBatch(queries, BatchOptions{Workers: 1 + g%8})
				if err != nil {
					errc <- err
					return
				}
				for i, p := range preds {
					if got := predFingerprint(p); got != wantPred[i] {
						errc <- fmt.Errorf("goroutine %d: PredictBatch[%d] diverged", g, i)
						return
					}
				}
			case 2: // simulated execution
				a, err := sys.Execute(queries[qi])
				if err != nil {
					errc <- err
					return
				}
				if a != wantExec[qi] {
					errc <- fmt.Errorf("goroutine %d: Execute(%s) = %v, want %v",
						g, queries[qi].Name, a, wantExec[qi])
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// TestPredictBatchMatchesSerialAcrossWorkerCounts is the acceptance
// check for batch determinism: for a fixed seed, PredictBatch returns
// byte-identical predictions for every worker count, equal to a serial
// Predict loop.
func TestPredictBatchMatchesSerialAcrossWorkerCounts(t *testing.T) {
	sys := testSystem(t)
	queries := stressQueries()

	want := make([]string, len(queries))
	for i, q := range queries {
		p, err := sys.Predict(q)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = predFingerprint(p)
	}
	for _, workers := range []int{0, 1, 2, 4, 8, 32} {
		preds, err := sys.PredictBatch(queries, BatchOptions{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(preds) != len(queries) {
			t.Fatalf("workers=%d: %d predictions for %d queries", workers, len(preds), len(queries))
		}
		for i, p := range preds {
			if got := predFingerprint(p); got != want[i] {
				t.Errorf("workers=%d: query %d (%s) diverged from serial",
					workers, i, queries[i].Name)
			}
		}
	}
}

// TestPredictBatchErrors: a failing query yields an error naming it,
// while the healthy queries still produce predictions.
func TestPredictBatchErrors(t *testing.T) {
	sys := testSystem(t)
	queries := []*Query{
		stressQueries()[0],
		{Name: "broken", Tables: []string{"no_such_table"}},
		stressQueries()[1],
	}
	preds, err := sys.PredictBatch(queries, BatchOptions{Workers: 2})
	if err == nil {
		t.Fatal("expected an error for the broken query")
	}
	if preds[0] == nil || preds[2] == nil {
		t.Error("healthy queries lost their predictions")
	}
	if preds[1] != nil {
		t.Error("broken query produced a prediction")
	}

	if _, err := sys.PredictBatch([]*Query{nil}, BatchOptions{}); err == nil {
		t.Error("expected an error for a nil query")
	}
	empty, err := sys.PredictBatch(nil, BatchOptions{})
	if err != nil || len(empty) != 0 {
		t.Errorf("empty batch: %v, %v", empty, err)
	}
}

// TestExecuteBatchErrors mirrors the PredictBatch error contract on the
// execution path: nil and invalid queries mid-batch fail without taking
// down the healthy entries, and the reported error is the first in
// input order, naming the query.
func TestExecuteBatchErrors(t *testing.T) {
	sys := testSystem(t)
	queries := []*Query{
		stressQueries()[0],
		nil,
		{Name: "broken", Tables: []string{"no_such_table"}},
		stressQueries()[1],
	}
	times, err := sys.ExecuteBatch(queries, BatchOptions{Workers: 2})
	if err == nil {
		t.Fatal("expected an error for the nil query")
	}
	if !strings.Contains(err.Error(), "query 1") {
		t.Errorf("error %q does not name the first failing index", err)
	}
	if times[0] <= 0 || times[3] <= 0 {
		t.Errorf("healthy queries lost their measurements: %v", times)
	}
	if times[1] != 0 || times[2] != 0 {
		t.Errorf("failed queries produced measurements: %v", times)
	}

	empty, err := sys.ExecuteBatch(nil, BatchOptions{})
	if err != nil || len(empty) != 0 {
		t.Errorf("empty batch: %v, %v", empty, err)
	}
}

// TestExecuteBatchDeterministic: batched execution matches serial
// Execute for every worker count.
func TestExecuteBatchDeterministic(t *testing.T) {
	sys := testSystem(t)
	queries := stressQueries()[:3]
	want := make([]float64, len(queries))
	for i, q := range queries {
		a, err := sys.Execute(q)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = a
	}
	for _, workers := range []int{1, 3, 8} {
		got, err := sys.ExecuteBatch(queries, BatchOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("workers=%d: ExecuteBatch[%d] = %v, want %v", workers, i, got[i], want[i])
			}
		}
	}
}

// TestEstimateMemoHits: repeated predictions of the same query must be
// served from the plan-signature memo.
func TestEstimateMemoHits(t *testing.T) {
	sys := testSystem(t)
	q := stressQueries()[2]
	if _, err := sys.Predict(q); err != nil {
		t.Fatal(err)
	}
	h0, _ := sys.MemoStats()
	if _, err := sys.Predict(q); err != nil {
		t.Fatal(err)
	}
	h1, _ := sys.MemoStats()
	if h1 != h0+1 {
		t.Errorf("second Predict did not hit the memo: hits %d -> %d", h0, h1)
	}
}
