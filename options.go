package uaqetp

// Per-call functional options for the v2 API. Every *Context entry
// point accepts a trailing ...CallOption; each option tunes exactly one
// knob of that call, and unset knobs fall back to the documented
// defaults. The same options compose across methods: a plan signature
// chosen by ChoosePlanContext can be replayed through PredictContext or
// ExecuteContext with WithPlanHint, and WithWorkers sizes the worker
// pool of the batch entry points.

const (
	// DefaultMaxAlts bounds the alternative join orders a call considers
	// when WithMaxAlts is absent.
	DefaultMaxAlts = 8
	// DefaultQuantile is the risk quantile plan selection uses when
	// WithQuantile is absent: 0.5 approximates least expected cost.
	DefaultQuantile = 0.5
)

// callOpts is the resolved per-call configuration.
type callOpts struct {
	maxAlts  int
	quantile float64
	planHint string
	workers  int
}

// CallOption tunes one call to a *Context method.
type CallOption func(*callOpts)

// newCallOpts applies opts over the defaults.
func newCallOpts(opts []CallOption) callOpts {
	o := callOpts{maxAlts: DefaultMaxAlts, quantile: DefaultQuantile}
	for _, f := range opts {
		if f != nil {
			f(&o)
		}
	}
	return o
}

// WithMaxAlts bounds the number of alternative join orders considered
// (AlternativesContext, ChoosePlanContext, and plan-hint resolution);
// k < 1 keeps the default.
func WithMaxAlts(k int) CallOption {
	return func(o *callOpts) {
		if k >= 1 {
			o.maxAlts = k
		}
	}
}

// WithQuantile selects the risk quantile of the predicted distribution
// used to rank plans in ChoosePlanContext: 0.5 approximates least
// expected cost, higher values are risk-averse. Values outside (0, 1)
// are rejected by the call.
func WithQuantile(p float64) CallOption {
	return func(o *callOpts) { o.quantile = p }
}

// WithPlanHint pins the call to the alternative whose canonical
// signature equals sig — as previously returned by PlanChoice.Plan,
// Plan.String, or System.Plan — instead of the planner's default plan.
// The hint is resolved among the planner's alternatives (bounded by
// WithMaxAlts); if none matches, the call fails with
// ErrPlanHintNotFound. An empty sig is a no-op.
func WithPlanHint(sig string) CallOption {
	return func(o *callOpts) { o.planHint = sig }
}

// WithWorkers bounds the goroutines the batch entry points
// (PredictBatchContext, ExecuteBatchContext) fan out over; 0 (the
// default) selects GOMAXPROCS, 1 degenerates to a serial loop. Results
// are byte-identical for every value.
func WithWorkers(n int) CallOption {
	return func(o *callOpts) {
		if n >= 0 {
			o.workers = n
		}
	}
}
