package uaqetp

// Tests for the v2 pipeline seams: stage injection via Config and With,
// per-call options, context cancellation through the batch pool, the
// hot-swappable predictor, and subtree-granular estimate memoization.

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync/atomic"
	"testing"

	"repro/internal/plan"
	"repro/internal/stats"
)

// stubPredictor returns a fixed distribution and counts its calls.
type stubPredictor struct {
	calls atomic.Int64
	mu    float64
}

func (p *stubPredictor) Predict(ctx context.Context, pl *Plan, est *Estimates) (*Prediction, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	p.calls.Add(1)
	return &Prediction{Dist: stats.Normal{Mu: p.mu, Sigma: 1}}, nil
}

// blockingPredictor parks every call until its context fires.
type blockingPredictor struct {
	started chan struct{} // closed once the first call is inside
	once    atomic.Bool
}

func (p *blockingPredictor) Predict(ctx context.Context, pl *Plan, est *Estimates) (*Prediction, error) {
	if p.once.CompareAndSwap(false, true) {
		close(p.started)
	}
	<-ctx.Done()
	return nil, ctx.Err()
}

// emptyPlanner produces no candidate plans at all.
type emptyPlanner struct{}

func (emptyPlanner) BuildPlan(ctx context.Context, q *Query) (*Plan, error) {
	return nil, fmt.Errorf("emptyPlanner has no default plan")
}
func (emptyPlanner) Alternatives(ctx context.Context, q *Query, maxAlts int) ([]*Plan, error) {
	return nil, nil
}

// fourWayJoinQuery joins customer-orders-lineitem-supplier so
// Alternatives has join orders to permute.
func fourWayJoinQuery() *Query {
	return &Query{
		Name:   "v2-4way",
		Tables: []string{"customer", "orders", "lineitem", "supplier"},
		Preds:  []Predicate{{Col: "c_acctbal", Op: Le, Lo: 5000}},
		Joins: []JoinCond{
			{LeftTable: "customer", LeftCol: "c_custkey", RightTable: "orders", RightCol: "o_custkey"},
			{LeftTable: "orders", LeftCol: "o_orderkey", RightTable: "lineitem", RightCol: "l_orderkey"},
			{LeftTable: "lineitem", LeftCol: "l_suppkey", RightTable: "supplier", RightCol: "s_suppkey"},
		},
	}
}

// TestStubPredictorViaConfig proves the façade routes every prediction
// through the injected stage: Predict, PredictBatch, and Alternatives
// all report the stub's distribution, and the stub sees every call.
func TestStubPredictorViaConfig(t *testing.T) {
	stub := &stubPredictor{mu: 42}
	cfg := DefaultConfig()
	cfg.Predictor = stub
	sys, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	q := joinQuery()
	p, err := sys.Predict(q)
	if err != nil {
		t.Fatal(err)
	}
	if p.Mean() != 42 {
		t.Errorf("Predict did not route through the stub: mean %v", p.Mean())
	}
	preds, err := sys.PredictBatchContext(context.Background(), []*Query{q, q, q}, WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	for i, pr := range preds {
		if pr.Mean() != 42 {
			t.Errorf("batch[%d] mean %v, want 42", i, pr.Mean())
		}
	}
	alts, err := sys.AlternativesContext(context.Background(), q, WithMaxAlts(4))
	if err != nil {
		t.Fatal(err)
	}
	want := int64(1 + 3 + len(alts))
	if got := stub.calls.Load(); got != want {
		t.Errorf("stub saw %d calls, want %d", got, want)
	}

	// With() swaps it back out without touching the original façade.
	def, err := Open(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	derived := def.With(WithPredictor(stub))
	dp, err := derived.Predict(q)
	if err != nil {
		t.Fatal(err)
	}
	if dp.Mean() != 42 {
		t.Errorf("derived façade ignored WithPredictor: mean %v", dp.Mean())
	}
	op, err := def.Predict(q)
	if err != nil {
		t.Fatal(err)
	}
	if op.Mean() == 42 {
		t.Error("original façade was mutated by With(WithPredictor)")
	}
}

// TestPredictBatchContextCancel pins prompt cancellation mid-batch: a
// predictor stage blocks on ctx, the batch is canceled, and the call
// returns ctx.Err() instead of hanging.
func TestPredictBatchContextCancel(t *testing.T) {
	blocker := &blockingPredictor{started: make(chan struct{})}
	cfg := DefaultConfig()
	cfg.Predictor = blocker
	sys, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	queries := make([]*Query, 8)
	for i := range queries {
		q := *joinQuery()
		q.Name = fmt.Sprintf("cancel-%d", i)
		queries[i] = &q
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		<-blocker.started // at least one query is mid-predict
		cancel()
	}()
	preds, err := sys.PredictBatchContext(ctx, queries, WithWorkers(2))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	for i, p := range preds {
		if p != nil {
			t.Errorf("canceled batch returned prediction %d", i)
		}
	}
	// A pre-canceled context never reaches the stages at all.
	pre, preCancel := context.WithCancel(context.Background())
	preCancel()
	if _, err := sys.PredictBatchContext(pre, queries); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled err = %v", err)
	}
}

// TestChoosePlanNoPlans pins the satellite fix: a planner producing zero
// plans yields ErrNoPlans instead of the old index-out-of-range panic.
func TestChoosePlanNoPlans(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Planner = emptyPlanner{}
	sys, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = sys.ChoosePlan(joinQuery(), 0.9, 4)
	if !errors.Is(err, ErrNoPlans) {
		t.Fatalf("err = %v, want ErrNoPlans", err)
	}
	// The same seam through the context API, and quantile validation.
	_, _, err = sys.ChoosePlanContext(context.Background(), joinQuery(), WithQuantile(0.5))
	if !errors.Is(err, ErrNoPlans) {
		t.Fatalf("ctx err = %v, want ErrNoPlans", err)
	}
	def, err := Open(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := def.ChoosePlanContext(context.Background(), joinQuery(), WithQuantile(1.5)); err == nil {
		t.Error("quantile 1.5 accepted")
	}
}

// TestTableNamesDeterministic pins the satellite fix: sorted output,
// identical across calls and Systems.
func TestTableNamesDeterministic(t *testing.T) {
	sys := testSystem(t)
	names := sys.TableNames()
	if !sort.StringsAreSorted(names) {
		t.Fatalf("TableNames not sorted: %v", names)
	}
	sys2, err := Open(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		again := sys.TableNames()
		other := sys2.TableNames()
		for j := range names {
			if again[j] != names[j] || other[j] != names[j] {
				t.Fatalf("TableNames unstable: %v vs %v vs %v", names, again, other)
			}
		}
	}
}

// TestPlanHint replays a chosen plan through Predict and Execute.
func TestPlanHint(t *testing.T) {
	sys := testSystem(t)
	ctx := context.Background()
	q := fourWayJoinQuery()
	best, all, err := sys.ChoosePlanContext(ctx, q, WithQuantile(0.9), WithMaxAlts(6))
	if err != nil {
		t.Fatal(err)
	}
	if len(all) < 2 {
		t.Fatalf("only %d alternatives; hint test needs a choice", len(all))
	}
	// Hint at a non-default alternative and check the prediction matches
	// the choice's (same plan → same deterministic prediction).
	var target PlanChoice
	for _, c := range all {
		if c.Plan != all[0].Plan {
			target = c
			break
		}
	}
	pred, sig, err := sys.PredictPlannedContext(ctx, q, WithPlanHint(target.Plan), WithMaxAlts(6))
	if err != nil {
		t.Fatal(err)
	}
	if sig != target.Plan {
		t.Errorf("hint resolved to %q, want %q", sig, target.Plan)
	}
	if pred.Mean() != target.Pred.Mean() || pred.Sigma() != target.Pred.Sigma() {
		t.Errorf("hinted prediction (%v,%v) differs from choice (%v,%v)",
			pred.Mean(), pred.Sigma(), target.Pred.Mean(), target.Pred.Sigma())
	}
	if _, err := sys.ExecuteContext(ctx, q, WithPlanHint(best.Plan), WithMaxAlts(6)); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.PredictContext(ctx, q, WithPlanHint("no such plan")); !errors.Is(err, ErrPlanHintNotFound) {
		t.Fatalf("bogus hint err = %v, want ErrPlanHintNotFound", err)
	}
}

// TestSubtreeMemoSharesAcrossAlternatives is the acceptance check for
// subtree-granular memoization: across the alternatives of a 4-way
// join, sampling passes are computed once per distinct subplan
// signature and every further occurrence is a cache hit.
func TestSubtreeMemoSharesAcrossAlternatives(t *testing.T) {
	sys := testSystem(t)
	q := fourWayJoinQuery()

	// Ground truth from the planner: total memoized subtrees across all
	// alternatives, and how many are distinct. Every operator memoizes —
	// scans, joins, and the unary/aggregate nodes above them — so every
	// plan node counts.
	nodes, err := plan.Alternatives(q, sys.cat, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) < 2 {
		t.Fatalf("only %d alternatives", len(nodes))
	}
	total := 0
	distinct := map[string]bool{}
	for _, root := range nodes {
		for _, n := range root.Nodes() {
			total++
			distinct[n.String()] = true
		}
	}
	if total == len(distinct) {
		t.Fatalf("alternatives share no subtrees; query too simple (total=%d)", total)
	}

	before := sys.CacheStats()
	if _, err := sys.AlternativesContext(context.Background(), q, WithMaxAlts(6)); err != nil {
		t.Fatal(err)
	}
	after := sys.CacheStats()
	hits := after.SubtreeHits - before.SubtreeHits
	misses := after.SubtreeMisses - before.SubtreeMisses
	if misses != uint64(len(distinct)) {
		t.Errorf("subtree passes computed %d times, want once per %d distinct subplans", misses, len(distinct))
	}
	if hits != uint64(total-len(distinct)) {
		t.Errorf("subtree hits = %d, want %d (total %d - distinct %d)",
			hits, total-len(distinct), total, len(distinct))
	}
	if hits == 0 {
		t.Error("no shared-subtree hits for a 4-way join's alternatives")
	}
}

// TestRecalibrateDeterministicSwap checks the root-level hot swap: same
// seed → same units and predictions, derived façades isolated.
func TestRecalibrateDeterministicSwap(t *testing.T) {
	q := joinQuery()
	run := func() (before, after float64, units string) {
		sys := testSystem(t)
		derived := sys.With() // own handle, shared layers
		p, err := sys.Predict(q)
		if err != nil {
			t.Fatal(err)
		}
		before = p.Mean()
		if _, err := derived.Recalibrate(99); err != nil {
			t.Fatal(err)
		}
		pa, err := derived.Predict(q)
		if err != nil {
			t.Fatal(err)
		}
		after = pa.Mean()
		// The parent façade is untouched by the derived swap.
		pp, err := sys.Predict(q)
		if err != nil {
			t.Fatal(err)
		}
		if pp.Mean() != before {
			t.Errorf("parent prediction moved with derived recalibration: %v vs %v", pp.Mean(), before)
		}
		return before, after, fmt.Sprint(derived.UnitDists())
	}
	b1, a1, u1 := run()
	b2, a2, u2 := run()
	if b1 != b2 || a1 != a2 || u1 != u2 {
		t.Errorf("recalibration not deterministic: (%v,%v) vs (%v,%v)", b1, a1, b2, a2)
	}
	if a1 == b1 {
		t.Error("recalibration with a different seed left predictions unchanged")
	}

	// A custom stage has no units to recalibrate.
	sys := testSystem(t)
	custom := sys.With(WithPredictor(&stubPredictor{mu: 1}))
	if _, err := custom.Recalibrate(1); err == nil {
		t.Error("Recalibrate on a custom predictor stage succeeded")
	}
	// SwapPredictor returns the previous stage and installs the new one.
	stub := &stubPredictor{mu: 7}
	old := sys.With().SwapPredictor(stub)
	if old == nil {
		t.Error("SwapPredictor returned nil previous stage")
	}
}

// cappingPlanner demonstrates the supported custom-Planner shape: a
// decorator over the built-in stage (Plan values can only originate
// there), here capping alternatives to the default plan.
type cappingPlanner struct{ inner Planner }

func (p cappingPlanner) BuildPlan(ctx context.Context, q *Query) (*Plan, error) {
	return p.inner.BuildPlan(ctx, q)
}
func (p cappingPlanner) Alternatives(ctx context.Context, q *Query, maxAlts int) ([]*Plan, error) {
	alts, err := p.inner.Alternatives(ctx, q, maxAlts)
	if err != nil || len(alts) <= 1 {
		return alts, err
	}
	return alts[:1], nil
}

// TestPlannerDecorator wires a decorating planner via With and checks
// the façade routes through it.
func TestPlannerDecorator(t *testing.T) {
	sys := testSystem(t)
	capped := sys.With(WithPlanner(cappingPlanner{inner: sys.Planner()}))
	all, err := capped.AlternativesContext(context.Background(), fourWayJoinQuery(), WithMaxAlts(6))
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 1 {
		t.Errorf("decorating planner not routed: %d alternatives", len(all))
	}
	full, err := sys.AlternativesContext(context.Background(), fourWayJoinQuery(), WithMaxAlts(6))
	if err != nil {
		t.Fatal(err)
	}
	if len(full) < 2 {
		t.Errorf("original façade affected by derived planner: %d alternatives", len(full))
	}
}

// TestV1WrapperMaxAltsSemantics pins the v1 contract through the
// wrappers: maxAlts < 1 returns only the default plan (not the v2
// DefaultMaxAlts fallback).
func TestV1WrapperMaxAltsSemantics(t *testing.T) {
	sys := testSystem(t)
	q := fourWayJoinQuery()
	for _, k := range []int{0, -3, 1} {
		choices, err := sys.Alternatives(q, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(choices) != 1 {
			t.Errorf("Alternatives(q, %d) returned %d plans, want 1 (v1 semantics)", k, len(choices))
		}
		best, all, err := sys.ChoosePlan(q, 0.5, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(all) != 1 || best.Plan != all[0].Plan {
			t.Errorf("ChoosePlan(q, 0.5, %d) considered %d plans, want 1", k, len(all))
		}
	}
}
