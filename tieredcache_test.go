package uaqetp

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"repro/internal/sample"
)

// TestTieredCacheClassification pins the tier model: classification is
// a pure function of (key, seed), the extremes of LocalFraction send
// every lookup to one tier, and the modeled remote cost is exactly
// remote lookups times the configured per-lookup latency.
func TestTieredCacheClassification(t *testing.T) {
	ctx := context.Background()
	compute := func() (*sample.Estimates, error) { return &sample.Estimates{}, nil }

	allLocal := NewTieredCache(TierConfig{LocalFraction: 1, RemoteLatency: 0.01, Seed: 7})
	allRemote := NewTieredCache(TierConfig{LocalFraction: 0, RemoteLatency: 0.01, Seed: 7})
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("k%03d", i)
		if _, err := allLocal.getOrCompute(ctx, key, compute); err != nil {
			t.Fatal(err)
		}
		if _, err := allRemote.getOrCompute(ctx, key, compute); err != nil {
			t.Fatal(err)
		}
	}
	if st := allLocal.TierStats(); st.LocalLookups != 100 || st.RemoteLookups != 0 {
		t.Fatalf("LocalFraction=1: got %d local / %d remote lookups", st.LocalLookups, st.RemoteLookups)
	}
	st := allRemote.TierStats()
	if st.LocalLookups != 0 || st.RemoteLookups != 100 {
		t.Fatalf("LocalFraction=0: got %d local / %d remote lookups", st.LocalLookups, st.RemoteLookups)
	}
	if want := 100 * 0.01; st.ModeledRemoteSeconds != want {
		t.Fatalf("modeled remote seconds = %g, want %g", st.ModeledRemoteSeconds, want)
	}
}

// TestTieredCacheDeterministicSplit pins that the key-space split is
// deterministic per seed (two caches with the same config tally the
// same way over the same keys), roughly proportional to LocalFraction,
// and order-independent: a parallel replay of the same lookups lands
// on identical tier counters, which is what keeps sharded simulator
// reports byte-identical under parallel machine stepping.
func TestTieredCacheDeterministicSplit(t *testing.T) {
	ctx := context.Background()
	compute := func() (*sample.Estimates, error) { return &sample.Estimates{}, nil }
	cfg := TierConfig{LocalFraction: 0.75, RemoteLatency: 0.002, Seed: 42}

	keys := make([]string, 2000)
	for i := range keys {
		keys[i] = fmt.Sprintf("plan|%d|sig-%04d", i%7, i)
	}

	serial := NewTieredCache(cfg)
	for _, k := range keys {
		if _, err := serial.getOrCompute(ctx, k, compute); err != nil {
			t.Fatal(err)
		}
	}
	parallel := NewTieredCache(cfg)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(keys); i += 8 {
				if _, err := parallel.getOrCompute(ctx, keys[i], compute); err != nil {
					t.Error(err)
				}
			}
		}(w)
	}
	wg.Wait()

	ss, ps := serial.TierStats(), parallel.TierStats()
	if ss != ps {
		t.Fatalf("tier stats differ between serial and parallel replay:\n serial  %+v\n parallel %+v", ss, ps)
	}
	frac := float64(ss.LocalLookups) / float64(ss.LocalLookups+ss.RemoteLookups)
	if frac < 0.70 || frac > 0.80 {
		t.Fatalf("local fraction %g far from configured 0.75", frac)
	}
}

// TestTieredCacheServesThroughSystem pins that a TieredCache is a
// drop-in Config.Cache: values resolve correctly through it and the
// inner store's hit counters move exactly as the in-process tier's
// would.
func TestTieredCacheServesThroughSystem(t *testing.T) {
	tc := NewTieredCache(TierConfig{LocalFraction: 0.5, RemoteLatency: 0.001, Seed: 1})
	sys, err := Open(Config{DB: Uniform1G, SamplingRatio: 0.05, Seed: 11, Cache: tc})
	if err != nil {
		t.Fatal(err)
	}
	q := joinQuery()
	first, err := sys.Predict(q)
	if err != nil {
		t.Fatal(err)
	}
	second, err := sys.Predict(q)
	if err != nil {
		t.Fatal(err)
	}
	if first.Dist.Mu != second.Dist.Mu {
		t.Fatalf("tiered cache changed prediction: %g vs %g", first.Dist.Mu, second.Dist.Mu)
	}
	if st := tc.Stats(); st.Hits == 0 {
		t.Fatal("repeat prediction did not hit the tiered cache")
	}
	if ts := tc.TierStats(); ts.LocalLookups+ts.RemoteLookups == 0 {
		t.Fatal("no lookups tallied against the tier model")
	}
}
