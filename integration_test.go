// Integration tests: end-to-end invariants across the whole stack
// (generator -> catalog -> samples -> calibration -> plans -> predictor
// -> simulated execution).
package uaqetp_test

import (
	"math"
	"testing"

	uaqetp "repro"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/exper"
	"repro/internal/stats"
	"repro/internal/workload"
)

// TestEndToEndAllConfigurations exercises every database kind and both
// machines with a small mixed workload and checks basic sanity of each
// outcome.
func TestEndToEndAllConfigurations(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	lab := exper.NewLab()
	for _, db := range []datagen.DBKind{datagen.Uniform1G, datagen.Skewed1G} {
		for _, machine := range []string{"PC1", "PC2"} {
			res, err := lab.Run(exper.Setting{
				Bench: workload.TPCH, DB: db, Machine: machine,
				SR: 0.05, Variant: core.All, NumQueries: 10, Seed: 1,
			})
			if err != nil {
				t.Fatalf("%v/%s: %v", db, machine, err)
			}
			for _, o := range res.Outcomes {
				if o.PredMean <= 0 || o.Actual <= 0 || o.PredSigma <= 0 {
					t.Errorf("%v/%s/%s: degenerate outcome %+v", db, machine, o.Name, o)
				}
				if o.PredSigma > o.PredMean*5 {
					t.Errorf("%v/%s/%s: sigma %v implausible vs mean %v",
						db, machine, o.Name, o.PredSigma, o.PredMean)
				}
			}
		}
	}
}

// TestIntervalCoverage checks the calibration claim behind Figure 5: the
// central 95% predicted interval should contain the actual running time
// for the large majority of queries. (The paper found mild
// overconfidence for simple queries, so the bound is deliberately
// lenient.)
func TestIntervalCoverage(t *testing.T) {
	lab := exper.NewLab()
	var inside, total int
	for _, b := range workload.Benchmarks {
		res, err := lab.Run(exper.Setting{
			Bench: b, DB: datagen.Uniform1G, Machine: "PC1",
			SR: 0.05, Variant: core.All, NumQueries: 16, Seed: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, o := range res.Outcomes {
			d := stats.NormalFromVar(o.PredMean, o.PredSigma*o.PredSigma)
			lo, hi := d.Interval(0.95)
			if o.Actual >= lo && o.Actual <= hi {
				inside++
			}
			total++
		}
	}
	cover := float64(inside) / float64(total)
	if cover < 0.6 {
		t.Errorf("95%% interval coverage = %.2f (%d/%d), want >= 0.6", cover, inside, total)
	}
}

// TestSigmaShrinksWithSamplingRatio: more samples mean less selectivity
// uncertainty, so the average predicted sigma (relative to the mean)
// must not grow with the sampling ratio.
func TestSigmaShrinksWithSamplingRatio(t *testing.T) {
	lab := exper.NewLab()
	relSigma := func(sr float64) float64 {
		res, err := lab.Run(exper.Setting{
			Bench: workload.SelJoin, DB: datagen.Uniform1G, Machine: "PC1",
			SR: sr, Variant: core.All, NumQueries: 16, Seed: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		var s []float64
		for _, o := range res.Outcomes {
			if o.PredMean > 0 {
				s = append(s, o.PredSigma/o.PredMean)
			}
		}
		return stats.Mean(s)
	}
	lo, hi := relSigma(0.01), relSigma(0.2)
	if hi > lo*1.1 {
		t.Errorf("relative sigma grew with sampling ratio: SR=0.01 -> %v, SR=0.2 -> %v", lo, hi)
	}
}

// TestScaleConsistency: the same workload template on the 10x database
// should predict roughly 10x the time (the engine and cost model are
// near-linear for these FK joins).
func TestScaleConsistency(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	lab := exper.NewLab()
	mean := func(db datagen.DBKind) float64 {
		res, err := lab.Run(exper.Setting{
			Bench: workload.Micro, DB: db, Machine: "PC1",
			SR: 0.05, Variant: core.All, NumQueries: 8, Seed: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		var ms []float64
		for _, o := range res.Outcomes {
			ms = append(ms, o.PredMean)
		}
		return stats.Mean(ms)
	}
	small, big := mean(datagen.Uniform1G), mean(datagen.Uniform10G)
	ratio := big / small
	if ratio < 4 || ratio > 25 {
		t.Errorf("10G/1G mean prediction ratio = %v, want ~10", ratio)
	}
}

// TestFullSamplingNearExactSelectivities: with SR = 1 the "samples" are
// the tables themselves, so scan selectivity estimates are exact and
// scan-only predictions carry (almost) no X-variance.
func TestFullSamplingNearExactSelectivities(t *testing.T) {
	cfg := uaqetp.DefaultConfig()
	cfg.SamplingRatio = 1.0
	sys, err := uaqetp.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	q := &uaqetp.Query{
		Name:   "full-sample-scan",
		Tables: []string{"lineitem"},
		Preds:  []uaqetp.Predicate{{Col: "l_quantity", Op: uaqetp.Le, Lo: 25}},
	}
	pred, actual, err := sys.PredictAndRun(q)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(pred.Mean()-actual) / actual; rel > 0.5 {
		t.Errorf("full-sampling prediction off by %.2f", rel)
	}
}

// TestHeadlineCorrelationAcrossBenchmarks is the repository-level
// acceptance check for result (R1): strong positive rank correlation on
// every benchmark with a reasonable workload size.
func TestHeadlineCorrelationAcrossBenchmarks(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	lab := exper.NewLab()
	for _, b := range workload.Benchmarks {
		res, err := lab.Run(exper.Setting{
			Bench: b, DB: datagen.Skewed1G, Machine: "PC1",
			SR: 0.05, Variant: core.All, NumQueries: 32, Seed: 5,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.RS < 0.5 {
			t.Errorf("%v: r_s = %v, want strong positive correlation", b, res.RS)
		}
		if res.Dn > 0.35 {
			t.Errorf("%v: D_n = %v, want < 0.35", b, res.Dn)
		}
	}
}
